package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestScopeCounterRollsUp(t *testing.T) {
	withEnabled(t)
	root := NewRegistry()
	a := root.Scope("session", "a")
	b := root.Scope("session", "b")
	a.Counter("x.events").Add(10)
	b.Counter("x.events").Add(5)
	root.Counter("x.events").Inc() // direct root write on top of the rollup
	if got := a.Counter("x.events").Load(); got != 10 {
		t.Fatalf("scope a = %d, want 10", got)
	}
	if got := b.Counter("x.events").Load(); got != 5 {
		t.Fatalf("scope b = %d, want 5", got)
	}
	if got := root.Counter("x.events").Load(); got != 16 {
		t.Fatalf("root = %d, want 16 (10+5+1)", got)
	}
}

func TestScopeIsIdempotentAndSharesMetrics(t *testing.T) {
	root := NewRegistry()
	a1 := root.Scope("session", "a")
	a2 := root.Scope("session", "a")
	if a1 != a2 {
		t.Fatal("Scope must be get-or-create")
	}
	if a1.Counter("x") != a2.Counter("x") {
		t.Fatal("metrics inside one scope must be shared by name")
	}
	if root.Scope("session", "b") == a1 {
		t.Fatal("distinct ids must get distinct scopes")
	}
	if root.Scope("shard", "a") == a1 {
		t.Fatal("distinct kinds must get distinct scopes")
	}
}

func TestScopeGaugeRollup(t *testing.T) {
	withEnabled(t)
	root := NewRegistry()
	a := root.Scope("session", "a")
	b := root.Scope("session", "b")
	ag, bg, rg := a.Gauge("q.depth"), b.Gauge("q.depth"), root.Gauge("q.depth")

	ag.Add(3)
	bg.Add(4)
	if rg.Load() != 7 {
		t.Fatalf("root gauge = %d, want 7", rg.Load())
	}
	// Set on a scope moves the parent by the delta, preserving sum-of-children.
	ag.Set(10)
	if ag.Load() != 10 || rg.Load() != 14 {
		t.Fatalf("after Set(10): scope=%d root=%d, want 10/14", ag.Load(), rg.Load())
	}
	ag.Set(0)
	if rg.Load() != 4 {
		t.Fatalf("after Set(0): root=%d, want 4", rg.Load())
	}
	// Peaks are per level: the root peak saw the combined high-water mark.
	if ag.Peak() != 10 {
		t.Fatalf("scope peak = %d, want 10", ag.Peak())
	}
	if rg.Peak() < 10 {
		t.Fatalf("root peak = %d, want >= 10", rg.Peak())
	}

	// Enter/release walks the chain both ways, still exactly once.
	rel := ag.Enter()
	if ag.Load() != 1 || rg.Load() != 5 {
		t.Fatalf("after Enter: scope=%d root=%d, want 1/5", ag.Load(), rg.Load())
	}
	rel()
	rel()
	if ag.Load() != 0 || rg.Load() != 4 {
		t.Fatalf("after release x2: scope=%d root=%d, want 0/4", ag.Load(), rg.Load())
	}
}

func TestScopeHistogramAndSpanRollup(t *testing.T) {
	withEnabled(t)
	root := NewRegistry()
	a := root.Scope("session", "a")
	b := root.Scope("session", "b")
	a.Histogram("lat_ns").Observe(100)
	a.Histogram("lat_ns").Observe(100)
	b.Histogram("lat_ns").Observe(1_000_000)
	rs := root.Histogram("lat_ns").Snapshot()
	if rs.Count != 3 || rs.SumNs != 1_000_200 {
		t.Fatalf("root hist = %d spans sum %d, want 3/1000200", rs.Count, rs.SumNs)
	}
	// Bucket counts roll up bucket-for-bucket, not just in aggregate.
	want := map[uint64]uint64{bucketUpper(bucketIndex(100)): 2, bucketUpper(bucketIndex(1_000_000)): 1}
	for _, bk := range rs.Bkts {
		if want[bk.UpperNs] != bk.Count {
			t.Fatalf("root bucket %d = %d, want %d", bk.UpperNs, bk.Count, want[bk.UpperNs])
		}
		delete(want, bk.UpperNs)
	}
	if len(want) != 0 {
		t.Fatalf("root missing buckets: %v", want)
	}

	// Spans: latency rolls up through the timer chain, items through the
	// counter chain.
	sp := a.Span(StageDecode)
	st := sp.Start()
	if st <= 0 {
		t.Fatal("span Start must be positive while enabled")
	}
	sp.End(st, 42)
	if got := root.Span(StageDecode).Items(); got != 42 {
		t.Fatalf("root span items = %d, want 42", got)
	}
	if got := root.Timer(StageDecode + "_ns").Histogram.Snapshot().Count; got != 1 {
		t.Fatalf("root span latency count = %d, want 1", got)
	}
	if a.Span(StageDecode) != sp {
		t.Fatal("Span must be get-or-create")
	}
}

func TestScopeLifecycle(t *testing.T) {
	withEnabled(t)
	root := NewRegistry()
	a := root.Scope("session", "a")
	c := a.Counter("x")
	c.Add(3)
	if root.FindScope("session", "a") != a {
		t.Fatal("FindScope must return the live scope")
	}
	if root.FindScope("session", "zzz") != nil {
		t.Fatal("FindScope must return nil for unknown scopes")
	}
	refs := root.Snapshot().Scopes
	if len(refs) != 1 || refs[0] != (ScopeRef{Kind: "session", ID: "a"}) {
		t.Fatalf("snapshot scopes = %v", refs)
	}
	if path := a.Snapshot().Scope; len(path) != 1 || path[0].ID != "a" {
		t.Fatalf("scope snapshot label path = %v", path)
	}

	root.DropScope("session", "a")
	if root.FindScope("session", "a") != nil {
		t.Fatal("dropped scope still findable")
	}
	// A straggling writer keeps rolling up (counts are never lost), it just
	// loses per-scope visibility.
	c.Inc()
	if got := root.Counter("x").Load(); got != 4 {
		t.Fatalf("root after post-drop write = %d, want 4", got)
	}
	// Re-scoping the same id starts a fresh scope.
	a2 := root.Scope("session", "a")
	if a2 == a {
		t.Fatal("re-created scope must be fresh")
	}
	if a2.Counter("x").Load() != 0 {
		t.Fatal("fresh scope must start at zero")
	}
}

func TestScopeNestingAndReset(t *testing.T) {
	withEnabled(t)
	root := NewRegistry()
	leaf := root.Scope("session", "s").Scope("shard", "0")
	leaf.Counter("deep").Add(2)
	if root.Counter("deep").Load() != 2 {
		t.Fatal("two-level rollup broken")
	}
	if p := leaf.ScopePath(); len(p) != 2 || p[0].Kind != "session" || p[1].Kind != "shard" {
		t.Fatalf("label path = %v", p)
	}
	root.Reset()
	if leaf.Counter("deep").Load() != 0 {
		t.Fatal("Reset must recurse into child scopes")
	}
}

// TestScopeChurnConcurrent exercises scope creation, writes, snapshots,
// Prometheus rendering, and drops all racing — the shape of a fleet daemon
// with sessions starting and expiring mid-scrape. Run under -race.
func TestScopeChurnConcurrent(t *testing.T) {
	withEnabled(t)
	root := NewRegistry()
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("s%d-%d", w, i%7)
				sc := root.Scope("session", id)
				sc.Counter("churn.events").Add(3)
				sc.Gauge("churn.depth").Set(int64(i % 11))
				sc.Span(StageDetect).End(sc.Span(StageDetect).Start(), 1)
				if i%5 == 0 {
					root.DropScope("session", id)
				}
			}
		}(w)
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := root.Snapshot()
			if s.TakenUnixNs == 0 {
				t.Error("zero snapshot timestamp")
				return
			}
			if err := WritePrometheus(discard{}, root); err != nil {
				t.Errorf("prom render during churn: %v", err)
				return
			}
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()

	// Every write survived somewhere: the root counter is the total.
	if got := root.Counter("churn.events").Load(); got != 4*200*3 {
		t.Fatalf("root total = %d, want %d", got, 4*200*3)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
