package obs

import (
	"testing"
)

// BenchmarkObsDisabled is the overhead gate for instrumented hot loops:
// with the global switch off, every metric operation must be a single
// load-and-branch — 0 allocs/op and nanosecond-scale ns/op. The ns_op
// baseline in BENCH_baseline.json keeps `make benchcmp` watching the
// timing, and ci.sh gates allocs/op at exactly zero (-allocs-slack 0).
func BenchmarkObsDisabled(b *testing.B) {
	SetEnabled(false)
	var c Counter
	var g Gauge
	var h Histogram
	var tm Timer
	b.Run("counter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("gauge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Add(1)
		}
	})
	b.Run("histogram", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(int64(i))
		}
	})
	b.Run("timer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tm.ObserveSince(tm.Start())
		}
	})
	// Scoped metrics and spans ride the same single load-and-branch when
	// disabled: the rollup chain is only walked after the enabled check.
	scope := NewRegistry().Scope("session", "bench")
	sc := scope.Counter("bench.scoped")
	sg := scope.Gauge("bench.scoped_depth")
	sh := scope.Histogram("bench.scoped_ns")
	sp := scope.Span("bench.scoped_stage")
	b.Run("scoped_counter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc.Inc()
		}
	})
	b.Run("scoped_gauge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sg.Add(1)
		}
	})
	b.Run("scoped_histogram", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sh.Observe(int64(i))
		}
	})
	b.Run("span", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp.End(sp.Start(), 1)
		}
	})
}

// BenchmarkObsEnabled documents the live cost of each operation (not
// gated: uncontended atomics plus, for timers, two monotonic clock reads).
func BenchmarkObsEnabled(b *testing.B) {
	SetEnabled(true)
	defer SetEnabled(false)
	var c Counter
	var h Histogram
	var tm Timer
	b.Run("counter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("histogram", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(int64(i & 4095))
		}
	})
	b.Run("timer_span", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tm.ObserveSince(tm.Start())
		}
	})
	// Live cost of a two-level rollup (session scope → root): one extra
	// atomic add per level.
	sc := NewRegistry().Scope("session", "bench").Counter("bench.scoped")
	b.Run("scoped_counter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc.Inc()
		}
	})
}

// TestObsDisabledZeroAlloc pins the disabled path at zero allocations even
// without the bench gate (testing.AllocsPerRun is deterministic).
func TestObsDisabledZeroAlloc(t *testing.T) {
	SetEnabled(false)
	var c Counter
	var g Gauge
	var h Histogram
	var tm Timer
	scope := NewRegistry().Scope("session", "za")
	sc := scope.Counter("za.c")
	sg := scope.Gauge("za.g")
	sh := scope.Histogram("za.h")
	sp := scope.Span("za.stage")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Add(1)
		g.Set(2)
		h.Observe(500)
		tm.ObserveSince(tm.Start())
		sc.Inc()
		sg.Add(1)
		sg.Set(2)
		sh.Observe(500)
		sp.End(sp.Start(), 7)
		_ = Clock()
	}); n != 0 {
		t.Fatalf("disabled path allocates %v per op, want 0", n)
	}
}

// TestObsDisabledFast is a coarse sanity bound on the disabled counter
// path (the precise <2ns/op expectation lives in BENCH_baseline.json,
// where benchgate's relative headroom applies; this only catches gross
// regressions like an accidental time syscall on the disabled path).
func TestObsDisabledFast(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sanity check")
	}
	if raceEnabled {
		t.Skip("-race instruments atomics; timing not meaningful")
	}
	SetEnabled(false)
	var c Counter
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	if ns := res.NsPerOp(); ns >= 25 {
		t.Fatalf("disabled Counter.Inc = %dns/op, want well under 25ns", ns)
	}
	if res.AllocsPerOp() != 0 {
		t.Fatalf("disabled Counter.Inc allocates %d/op", res.AllocsPerOp())
	}
}
