package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// withEnabled flips the global switch for one test and restores it.
func withEnabled(t *testing.T) {
	t.Helper()
	SetEnabled(true)
	t.Cleanup(func() { SetEnabled(false) })
}

func TestDisabledMetricsDropUpdates(t *testing.T) {
	SetEnabled(false)
	var c Counter
	var g Gauge
	var h Histogram
	c.Inc()
	c.Add(10)
	g.Add(5)
	g.Set(7)
	h.Observe(100)
	if c.Load() != 0 || g.Load() != 0 || g.Peak() != 0 || h.Snapshot().Count != 0 {
		t.Fatalf("disabled metrics recorded: counter=%d gauge=%d/%d hist=%d",
			c.Load(), g.Load(), g.Peak(), h.Snapshot().Count)
	}
	if Clock() != 0 {
		t.Fatal("Clock() must return 0 while disabled")
	}
}

func TestCounterAndGauge(t *testing.T) {
	withEnabled(t)
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Add(10)
	g.Add(-7)
	if g.Load() != 3 || g.Peak() != 10 {
		t.Fatalf("gauge = %d peak %d, want 3 peak 10", g.Load(), g.Peak())
	}
	g.Add(4) // 7 < old peak: peak must not move
	if g.Peak() != 10 {
		t.Fatalf("peak moved to %d on a sub-peak rise", g.Peak())
	}
	g.Set(25)
	if g.Load() != 25 || g.Peak() != 25 {
		t.Fatalf("set: gauge = %d peak %d, want 25/25", g.Load(), g.Peak())
	}
}

func TestGaugeConcurrentPeak(t *testing.T) {
	withEnabled(t)
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if g.Load() != 0 {
		t.Fatalf("gauge settled at %d, want 0", g.Load())
	}
	if p := g.Peak(); p < 1 || p > 8 {
		t.Fatalf("peak = %d, want within [1,8]", p)
	}
}

// TestGaugeEnterReleasesExactlyOnce is the regression test for the
// active-session gauge: a session that ends through more than one path
// (panic recovery AND idle-timeout cleanup both firing, say) must decrement
// the gauge exactly once, no matter how many times release runs.
func TestGaugeEnterReleasesExactlyOnce(t *testing.T) {
	withEnabled(t)
	var g Gauge
	release := g.Enter()
	if g.Load() != 1 {
		t.Fatalf("gauge after Enter = %d, want 1", g.Load())
	}
	release()
	release() // second (and any further) release is a no-op
	release()
	if g.Load() != 0 {
		t.Fatalf("gauge after repeated release = %d, want 0", g.Load())
	}

	// Concurrent double-release: still exactly one decrement per Enter.
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		rel := g.Enter()
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rel()
			}()
		}
	}
	wg.Wait()
	if g.Load() != 0 {
		t.Fatalf("gauge settled at %d after concurrent releases, want 0", g.Load())
	}
	if p := g.Peak(); p < 1 {
		t.Fatalf("peak = %d, want >= 1", p)
	}
}

// TestGaugeEnterDisabled: when metrics are off at Enter time the increment
// is suppressed, and the returned release must not decrement either — even
// if metrics get enabled in between.
func TestGaugeEnterDisabled(t *testing.T) {
	SetEnabled(false)
	var g Gauge
	release := g.Enter()
	SetEnabled(true)
	t.Cleanup(func() { SetEnabled(false) })
	release()
	if g.Load() != 0 {
		t.Fatalf("gauge = %d after disabled Enter + enabled release, want 0", g.Load())
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	withEnabled(t)
	var h Histogram
	// 90 fast (≤16ns bucket), 9 medium, 1 slow observation.
	for i := 0; i < 90; i++ {
		h.Observe(10)
	}
	for i := 0; i < 9; i++ {
		h.Observe(1000)
	}
	h.Observe(1_000_000)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if want := uint64(90*10 + 9*1000 + 1_000_000); s.SumNs != want {
		t.Fatalf("sum = %d, want %d", s.SumNs, want)
	}
	if s.P50Ns != bucketUpper(bucketIndex(10)) {
		t.Fatalf("p50 = %d, want the 10ns bucket bound %d", s.P50Ns, bucketUpper(bucketIndex(10)))
	}
	if s.P99Ns != bucketUpper(bucketIndex(1000)) {
		t.Fatalf("p99 = %d, want the 1000ns bucket bound %d", s.P99Ns, bucketUpper(bucketIndex(1000)))
	}
	if s.MaxNs != bucketUpper(bucketIndex(1_000_000)) {
		t.Fatalf("max = %d, want the 1ms bucket bound", s.MaxNs)
	}
	if s.P50Ns > s.P90Ns || s.P90Ns > s.P99Ns {
		t.Fatalf("quantiles not monotone: %d %d %d", s.P50Ns, s.P90Ns, s.P99Ns)
	}
}

func TestBucketIndexEdges(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2},
		{1 << 20, 20}, {1<<62 + 1, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestTimerSpans(t *testing.T) {
	withEnabled(t)
	var tm Timer
	start := tm.Start()
	if start <= 0 {
		t.Fatal("Start() must be positive while enabled")
	}
	time.Sleep(time.Millisecond)
	tm.ObserveSince(start)
	s := tm.Histogram.Snapshot()
	if s.Count != 1 {
		t.Fatalf("span count = %d, want 1", s.Count)
	}
	if s.SumNs < uint64(500*time.Microsecond) {
		t.Fatalf("span = %dns, want >= 0.5ms", s.SumNs)
	}
	// A token from the disabled era is dropped.
	tm.ObserveSince(0)
	if tm.Histogram.Snapshot().Count != 1 {
		t.Fatal("zero token must be ignored")
	}
}

func TestRegistrySharingAndReset(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	c1 := r.Counter("x.same")
	c2 := r.Counter("x.same")
	if c1 != c2 {
		t.Fatal("same name must return the same counter")
	}
	c1.Inc()
	g := r.Gauge("x.g")
	g.Add(3)
	r.Timer("x.t").Observe(50)
	r.Histogram("x.h").Observe(50)
	r.Reset()
	if c1.Load() != 0 || g.Load() != 0 || g.Peak() != 0 {
		t.Fatal("Reset must zero counters and gauges")
	}
	if r.Timer("x.t").Histogram.Snapshot().Count != 0 || r.Histogram("x.h").Snapshot().Count != 0 {
		t.Fatal("Reset must zero histograms and timers")
	}
}

func TestSnapshotJSONRoundTripAndValidate(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	r.Counter("a.count").Add(7)
	r.Gauge("a.depth").Add(2)
	r.Timer("a.span_ns").Observe(123)
	r.Histogram("a.lat_ns").Observe(456)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSnapshot(data); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a.count"] != 7 || back.Gauges["a.depth"].Value != 2 {
		t.Fatalf("round trip lost values: %+v", back)
	}
}

func TestValidateSnapshotRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":        `[`,
		"not object":      `[1,2]`,
		"missing section": `{"taken_unix_ns":1,"uptime_ns":1,"enabled":true,"counters":{},"gauges":{},"histograms":{}}`,
		"bad types":       `{"taken_unix_ns":1,"uptime_ns":1,"enabled":true,"counters":{"x":"y"},"gauges":{},"histograms":{},"timers":{}}`,
		"zero timestamp":  `{"taken_unix_ns":0,"uptime_ns":1,"enabled":true,"counters":{},"gauges":{},"histograms":{},"timers":{}}`,
		"peak below":      `{"taken_unix_ns":1,"uptime_ns":1,"enabled":true,"counters":{},"gauges":{"g":{"value":5,"peak":1}},"histograms":{},"timers":{}}`,
		"quantile order":  `{"taken_unix_ns":1,"uptime_ns":1,"enabled":true,"counters":{},"gauges":{},"histograms":{"h":{"count":1,"sum_ns":1,"mean_ns":1,"p50_ns":9,"p90_ns":3,"p99_ns":9,"max_ns":9}},"timers":{}}`,
	}
	for name, data := range cases {
		if err := ValidateSnapshot([]byte(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestFormatSnapshotAndStats(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	r.Counter("z.events").Add(3)
	r.Gauge("z.depth").Add(1)
	r.Timer("z.span_ns").Observe(200)
	out := FormatSnapshot(r.Snapshot())
	for _, want := range []string{"z.events", "z.depth", "z.span_ns", "peak 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatSnapshot missing %q in:\n%s", want, out)
		}
	}
	stats := FormatStats("RD2", []Stat{{"actions", 10}, {"races", 2}})
	if !strings.Contains(stats, "RD2:") || !strings.Contains(stats, "actions") || !strings.Contains(stats, "races") {
		t.Errorf("FormatStats output malformed:\n%s", stats)
	}
}

func TestEmitterJSONAndText(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	r.Counter("e.ticks").Add(1)
	var buf bytes.Buffer
	e := StartEmitter(&buf, r, time.Hour, true) // only the Stop flush fires
	e.Stop()
	line := strings.TrimSpace(buf.String())
	if err := ValidateSnapshot([]byte(line)); err != nil {
		t.Fatalf("emitted JSONL line invalid: %v\n%s", err, line)
	}
	buf.Reset()
	e = StartEmitter(&buf, r, 5*time.Millisecond, false)
	time.Sleep(30 * time.Millisecond)
	e.Stop()
	if !strings.Contains(buf.String(), "e.ticks") {
		t.Fatalf("text emitter produced no snapshot:\n%s", buf.String())
	}
}
