package obs

import (
	"encoding/json"
	"fmt"
)

// ValidateSnapshot checks that data is a well-formed Snapshot: all four
// metric sections present with the right types, a positive timestamp, and
// internally consistent histograms and gauges. ci.sh -obs curls /metrics
// and pipes the body through cmd/obscheck, which is this function behind
// an exit code.
func ValidateSnapshot(data []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("obs: snapshot is not a JSON object: %w", err)
	}
	for _, key := range []string{
		"taken_unix_ns", "uptime_ns", "enabled",
		"counters", "gauges", "histograms", "timers",
	} {
		if _, ok := raw[key]; !ok {
			return fmt.Errorf("obs: snapshot missing required key %q", key)
		}
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("obs: snapshot fields have wrong types: %w", err)
	}
	if s.TakenUnixNs <= 0 {
		return fmt.Errorf("obs: taken_unix_ns = %d, want > 0", s.TakenUnixNs)
	}
	if s.UptimeNs < 0 {
		return fmt.Errorf("obs: uptime_ns = %d, want >= 0", s.UptimeNs)
	}
	for name, g := range s.Gauges {
		if g.Peak < g.Value {
			return fmt.Errorf("obs: gauge %q peak %d < value %d", name, g.Peak, g.Value)
		}
	}
	check := func(section string, m map[string]HistogramSnapshot) error {
		for name, h := range m {
			var bucketed uint64
			for _, b := range h.Bkts {
				bucketed += b.Count
			}
			// Lock-free snapshots may tear between reading the count and
			// the buckets while writers run; only outright corruption
			// (buckets exceeding the count by far more than plausible
			// in-flight observations) fails.
			if bucketed > h.Count+h.Count/8+64 {
				return fmt.Errorf("obs: %s %q bucket sum %d > count %d", section, name, bucketed, h.Count)
			}
			if h.P50Ns > h.P90Ns || h.P90Ns > h.P99Ns {
				return fmt.Errorf("obs: %s %q quantiles not monotone: p50=%d p90=%d p99=%d",
					section, name, h.P50Ns, h.P90Ns, h.P99Ns)
			}
		}
		return nil
	}
	if err := check("histogram", s.Histograms); err != nil {
		return err
	}
	return check("timer", s.Timers)
}
