package obs

import (
	"encoding/json"
	"io"
	"time"
)

// Emitter periodically writes registry snapshots to a writer — the
// long-run path (-stats-interval on the commands): a JSONL stream for
// machines or text blocks for eyeballs.
type Emitter struct {
	stop chan struct{}
	done chan struct{}
}

// StartEmitter begins emitting a snapshot of reg to w every interval. When
// jsonFormat is true each snapshot is one JSON line (JSONL); otherwise a
// human-readable block (FormatSnapshot). All writes happen on the
// emitter's own goroutine, including the final snapshot flushed by Stop,
// so an unsynchronized writer is safe as long as nothing else writes it.
func StartEmitter(w io.Writer, reg *Registry, interval time.Duration, jsonFormat bool) *Emitter {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	e := &Emitter{stop: make(chan struct{}), done: make(chan struct{})}
	emit := func() {
		if jsonFormat {
			json.NewEncoder(w).Encode(reg.Snapshot()) //nolint:errcheck // monitoring is best-effort
			return
		}
		io.WriteString(w, FormatSnapshot(reg.Snapshot())) //nolint:errcheck
	}
	go func() {
		defer close(e.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				emit()
			case <-e.stop:
				emit() // final snapshot so short runs emit at least once
				return
			}
		}
	}()
	return e
}

// Stop flushes one final snapshot and stops the emitter. Safe to call
// once; blocks until the final write lands.
func (e *Emitter) Stop() {
	close(e.stop)
	<-e.done
}
