package obs

// Span names for the six stages of the online detection pipeline, in
// stream order. Each names a Span (a "<name>_ns" latency timer plus a
// "<name>_items" throughput counter) recorded per session scope and rolled
// up globally, so operators can see where time goes between the wire and
// the race report — per tenant and fleet-wide.
const (
	StageDecode   = "stage.decode"   // wire frame → decoded events
	StageSkeleton = "stage.skeleton" // serial skeleton pass over sync events
	StageStamp    = "stage.stamp"    // body-event vector-clock stamping
	StageDispatch = "stage.dispatch" // shard routing + queue handoff
	StageDetect   = "stage.detect"   // per-shard commutativity race detection
	StageReport   = "stage.report"   // race record serialization / JSONL emit
	StageSchedule = "stage.schedule" // fleet-mode run quantum (wait + execute)
)

// Span is a start/stop pair over a named histogram pair: span latency in
// nanoseconds and a count of items the span covered (events decoded,
// events stamped, races written...). It is deliberately tiny — two metric
// pointers — so stages can hold one per instance and the disabled path
// stays one branch per call with zero allocation:
//
//	sp := reg.Span(obs.StageDecode)
//	start := sp.Start()            // 0 when disabled
//	... decode a batch ...
//	sp.End(start, nEvents)         // no-op when start == 0
type Span struct {
	lat   *Timer
	items *Counter
}

// Span returns the named span, creating its backing "<name>_ns" timer and
// "<name>_items" counter if needed (scoped registries link both up their
// rollup chains, like any other metric).
func (r *Registry) Span(name string) *Span {
	r.mu.Lock()
	sp, ok := r.spans[name]
	r.mu.Unlock()
	if ok {
		return sp
	}
	// Create the backing metrics outside our lock (Timer/Counter retake
	// it), then publish under the lock, keeping the first-created span.
	lat := r.Timer(name + "_ns")
	items := r.Counter(name + "_items")
	r.mu.Lock()
	defer r.mu.Unlock()
	if sp, ok := r.spans[name]; ok {
		return sp
	}
	sp = &Span{lat: lat, items: items}
	if r.spans == nil {
		r.spans = map[string]*Span{}
	}
	r.spans[name] = sp
	return sp
}

// GetSpan returns the named span from the Default registry.
func GetSpan(name string) *Span { return Default.Span(name) }

// Start returns an opaque span start token (0 when disabled).
func (s *Span) Start() int64 { return Clock() }

// End records the span from a Start token and adds items to the span's
// throughput counter. A zero token (span started while disabled) is
// ignored, so enable/disable races drop the span instead of recording
// garbage.
func (s *Span) End(start int64, items int) {
	if start <= 0 || !enabled.Load() {
		return
	}
	s.lat.ObserveSince(start)
	if items > 0 {
		s.items.Add(uint64(items))
	}
}

// Items returns the span's throughput counter value.
func (s *Span) Items() uint64 { return s.items.Load() }

// Latency returns a snapshot of the span's latency histogram.
func (s *Span) Latency() HistogramSnapshot { return s.lat.Histogram.Snapshot() }
