package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func TestServeMetricsAndVars(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	r.Counter("h.requests").Add(5)
	r.Gauge("h.depth").Add(2)
	r.Timer("h.span_ns").Observe(1500)

	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	body := get("/metrics")
	if err := ValidateSnapshot(body); err != nil {
		t.Fatalf("/metrics schema: %v\n%s", err, body)
	}
	var s Snapshot
	if err := json.Unmarshal(body, &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["h.requests"] != 5 || s.Timers["h.span_ns"].Count != 1 {
		t.Fatalf("snapshot content wrong: %+v", s)
	}

	var flat map[string]any
	if err := json.Unmarshal(get("/debug/vars"), &flat); err != nil {
		t.Fatal(err)
	}
	if flat["h.requests"].(float64) != 5 || flat["h.depth.peak"].(float64) != 2 {
		t.Fatalf("/debug/vars content wrong: %v", flat)
	}

	if string(get("/healthz")) != "ok\n" {
		t.Fatal("healthz body wrong")
	}
	// pprof index answers (the profile endpoints themselves are stdlib).
	get("/debug/pprof/")
}
