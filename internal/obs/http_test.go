package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func TestServeMetricsAndVars(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	r.Counter("h.requests").Add(5)
	r.Gauge("h.depth").Add(2)
	r.Timer("h.span_ns").Observe(1500)

	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	body := get("/metrics")
	if err := ValidateSnapshot(body); err != nil {
		t.Fatalf("/metrics schema: %v\n%s", err, body)
	}
	var s Snapshot
	if err := json.Unmarshal(body, &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["h.requests"] != 5 || s.Timers["h.span_ns"].Count != 1 {
		t.Fatalf("snapshot content wrong: %+v", s)
	}

	var flat map[string]any
	if err := json.Unmarshal(get("/debug/vars"), &flat); err != nil {
		t.Fatal(err)
	}
	if flat["h.requests"].(float64) != 5 || flat["h.depth.peak"].(float64) != 2 {
		t.Fatalf("/debug/vars content wrong: %v", flat)
	}

	if string(get("/healthz")) != "ok\n" {
		t.Fatal("healthz body wrong")
	}
	// pprof index answers (the profile endpoints themselves are stdlib).
	get("/debug/pprof/")
}

func TestServeMetricsScopedAndProm(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	r.Scope("session", "s1").Counter("h.events").Add(3)
	r.Scope("session", "s2").Counter("h.events").Add(4)

	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string, wantStatus int) []byte {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, wantStatus)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	// Session scoping: only that scope's view, with its label path.
	var s Snapshot
	if err := json.Unmarshal(get("/metrics?session=s1", http.StatusOK), &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["h.events"] != 3 || len(s.Scope) != 1 || s.Scope[0].ID != "s1" {
		t.Fatalf("scoped snapshot wrong: %+v", s)
	}
	get("/metrics?session=nope", http.StatusNotFound)

	// Prometheus exposition parses and carries the per-session series.
	samples, err := ParsePrometheus(bytes.NewReader(get("/metrics?format=prom", http.StatusOK)))
	if err != nil {
		t.Fatalf("prom scrape unparseable: %v", err)
	}
	bySession := map[string]float64{}
	for _, smp := range samples {
		if smp.Name == "h_events" {
			bySession[smp.Labels["session"]] = smp.Value
		}
	}
	if bySession["s1"] != 3 || bySession["s2"] != 4 || bySession[""] != 7 {
		t.Fatalf("prom series wrong: %v", bySession)
	}

	// Scoped prom scrape: only the one subtree, labels intact.
	samples, err = ParsePrometheus(bytes.NewReader(get("/metrics?session=s2&format=prom", http.StatusOK)))
	if err != nil {
		t.Fatal(err)
	}
	for _, smp := range samples {
		if smp.Name == "h_events" && smp.Labels["session"] != "s2" {
			t.Fatalf("scoped prom scrape leaked series %+v", smp)
		}
	}
}
