package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestWritePrometheusGolden(t *testing.T) {
	withEnabled(t)
	root := NewRegistry()
	root.Counter("core.actions").Add(7)
	root.Gauge("pipeline.shard.0.queue_batches").Set(3)
	s := root.Scope("session", "conn-1")
	s.Counter("core.actions").Add(2) // also +2 at root via rollup
	s.Histogram("stage.detect_ns").Observe(100)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, root); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE core_actions counter\n",
		"core_actions 9\n", // 7 direct + 2 rolled up
		`core_actions{session="conn-1"} 2` + "\n",
		"# TYPE pipeline_shard_0_queue_batches gauge\n",
		"pipeline_shard_0_queue_batches 3\n",
		"pipeline_shard_0_queue_batches_peak 3\n",
		"# TYPE stage_detect_ns histogram\n",
		`stage_detect_ns_bucket{session="conn-1",le="+Inf"} 1` + "\n",
		`stage_detect_ns_count{session="conn-1"} 1` + "\n",
		`stage_detect_ns_sum{session="conn-1"} 100` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q in:\n%s", want, out)
		}
	}

	// Histogram buckets must be cumulative and carry the rolled-up root
	// series too (no labels).
	if !strings.Contains(out, `stage_detect_ns_bucket{le="+Inf"} 1`) {
		t.Errorf("root histogram series missing:\n%s", out)
	}

	// Deterministic: two renders byte-match.
	var buf2 bytes.Buffer
	if err := WritePrometheus(&buf2, root); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("prom output not deterministic across renders")
	}
}

func TestPrometheusRoundTripEscaping(t *testing.T) {
	withEnabled(t)
	root := NewRegistry()
	// Hostile scope id and metric name: escaping must round-trip exactly.
	hostile := "we\"ird\\id\nwith-everything"
	sc := root.Scope("session id", hostile)
	sc.Counter("1bad name-with.stuff").Add(5)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, root); err != nil {
		t.Fatal(err)
	}
	samples, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("self-parse failed: %v\n%s", err, buf.String())
	}
	found := false
	for _, s := range samples {
		if s.Name == "_bad_name_with_stuff" && s.Labels["session_id"] == hostile {
			found = true
			if s.Value != 5 {
				t.Fatalf("value = %v, want 5", s.Value)
			}
		}
	}
	if !found {
		t.Fatalf("escaped series not recovered from:\n%s", buf.String())
	}
}

func TestParsePrometheusRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad name":            "9metric 1\n",
		"bad label name":      `m{9l="x"} 1` + "\n",
		"unquoted label":      `m{l=x} 1` + "\n",
		"unterminated labels": `m{l="x" 1` + "\n",
		"bad escape":          `m{l="\q"} 1` + "\n",
		"no value":            "m\n",
		"bad value":           "m pizza\n",
		"bad TYPE":            "# TYPE m frobnicator\n",
		"short TYPE":          "# TYPE m\n",
	}
	for name, in := range cases {
		if _, err := ParsePrometheus(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
	// Benign inputs parse.
	ok := "# HELP m whatever\n# TYPE m counter\nm 1\nm{a=\"b\",c=\"d\"} 2.5 1700000000\n\n"
	samples, err := ParsePrometheus(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("benign input rejected: %v", err)
	}
	if len(samples) != 2 || samples[1].Value != 2.5 || samples[1].Labels["c"] != "d" {
		t.Fatalf("parsed %+v", samples)
	}
}

// TestPromScopeSeriesSumToRoot is the exposition-level statement of the
// rollup invariant: for counters, summing the per-session series of a
// family reproduces the unlabeled root series.
func TestPromScopeSeriesSumToRoot(t *testing.T) {
	withEnabled(t)
	root := NewRegistry()
	for i, n := range []uint64{3, 11, 40} {
		root.Scope("session", string(rune('a'+i))).Counter("x.events").Add(n)
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, root); err != nil {
		t.Fatal(err)
	}
	samples, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var rootV, sum float64
	for _, s := range samples {
		if s.Name != "x_events" {
			continue
		}
		if len(s.Labels) == 0 {
			rootV = s.Value
		} else {
			sum += s.Value
		}
	}
	if rootV != 54 || sum != 54 {
		t.Fatalf("root=%v sum-of-sessions=%v, want 54/54", rootV, sum)
	}
}
