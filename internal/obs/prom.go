package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) over a registry tree.
// Metric names map by replacing every character outside [a-zA-Z0-9_:] with
// '_' ("pipeline.shard.3.queue_batches" → "pipeline_shard_3_queue_batches");
// scopes become labels, outermost first ({session="conn-3"}); label values
// are escaped per the spec (backslash, double quote, newline). Gauges emit
// a companion "<name>_peak" gauge for the high-water mark; histograms and
// timers emit the conventional cumulative _bucket{le=...} / _sum / _count
// triple with nanosecond bounds (bucket bounds are powers of two; the
// open-ended top bucket folds into +Inf). Because scoped writes roll up on
// the chain, summing a family's per-session series reproduces the
// unlabeled global series exactly — the property stock dashboards sum() on.

// WritePrometheus renders reg and every (transitive) child scope in
// Prometheus text exposition format. Output is deterministic: families
// sorted by name, series within a family sorted by label path.
func WritePrometheus(w io.Writer, reg *Registry) error {
	type series struct {
		key   string // sort key: rendered label set
		lines []string
	}
	type family struct {
		typ    string
		series []series
	}
	fams := map[string]*family{}
	add := func(name, typ, labels string, lines []string) {
		f := fams[name]
		if f == nil {
			f = &family{typ: typ}
			fams[name] = f
		}
		f.series = append(f.series, series{key: labels, lines: lines})
	}
	var walk func(r *Registry)
	walk = func(r *Registry) {
		labels := promLabelSet(r.ScopePath())
		s := r.Snapshot()
		for name, v := range s.Counters {
			n := promName(name)
			add(n, "counter", labels, []string{
				fmt.Sprintf("%s%s %d", n, labels, v),
			})
		}
		for name, g := range s.Gauges {
			n := promName(name)
			add(n, "gauge", labels, []string{
				fmt.Sprintf("%s%s %d", n, labels, g.Value),
			})
			add(n+"_peak", "gauge", labels, []string{
				fmt.Sprintf("%s_peak%s %d", n, labels, g.Peak),
			})
		}
		hist := func(name string, h HistogramSnapshot) {
			n := promName(name)
			lines := make([]string, 0, len(h.Bkts)+3)
			cum := uint64(0)
			for _, b := range h.Bkts {
				cum += b.Count
				lines = append(lines, fmt.Sprintf("%s_bucket%s %d",
					n, promBucketLabels(labels, strconv.FormatUint(b.UpperNs, 10)), cum))
			}
			lines = append(lines,
				fmt.Sprintf("%s_bucket%s %d", n, promBucketLabels(labels, "+Inf"), cum),
				fmt.Sprintf("%s_sum%s %d", n, labels, h.SumNs),
				fmt.Sprintf("%s_count%s %d", n, labels, h.Count))
			add(n, "histogram", labels, lines)
		}
		for name, h := range s.Histograms {
			hist(name, h)
		}
		for name, t := range s.Timers {
			hist(name, t)
		}
		for _, c := range r.Scopes() {
			walk(c)
		}
	}
	walk(reg)

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	for _, n := range names {
		f := fams[n]
		fmt.Fprintf(bw, "# TYPE %s %s\n", n, f.typ)
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].key < f.series[j].key })
		for _, s := range f.series {
			for _, line := range s.lines {
				bw.WriteString(line)
				bw.WriteByte('\n')
			}
		}
	}
	return bw.Flush()
}

// promName maps a dotted obs metric name onto the Prometheus metric-name
// alphabet [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(s string) string {
	if s == "" {
		return "_"
	}
	b := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b[i] = c
		case c >= '0' && c <= '9' && i > 0:
			b[i] = c
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// promLabelName maps a scope kind onto the label-name alphabet
// [a-zA-Z_][a-zA-Z0-9_]* (no colon, unlike metric names).
func promLabelName(s string) string {
	if s == "" {
		return "_"
	}
	b := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b[i] = c
		case c >= '0' && c <= '9' && i > 0:
			b[i] = c
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// promEscape escapes a label value: backslash, double quote, newline.
func promEscape(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// promLabelSet renders a scope path as a label set, `{kind="id",...}`, or
// "" for a root registry.
func promLabelSet(path []ScopeRef) string {
	if len(path) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, s := range path {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, promLabelName(s.Kind), promEscape(s.ID))
	}
	b.WriteByte('}')
	return b.String()
}

// promBucketLabels splices le="<bound>" into an existing label set.
func promBucketLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// PromSample is one parsed sample line of a Prometheus scrape.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Key renders the sample's identity (name plus sorted labels) — convenient
// for cross-scrape comparisons in tests.
func (s PromSample) Key() string {
	names := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(s.Name)
	for _, k := range names {
		fmt.Fprintf(&b, `|%s=%q`, k, s.Labels[k])
	}
	return b.String()
}

// ParsePrometheus parses (and thereby validates) text in the Prometheus
// 0.0.4 exposition format: metric-name and label-name alphabets, label
// value escape sequences, float sample values, and TYPE comment lines. It
// returns every sample. obscheck -prom and the ci.sh -obs smoke use it to
// prove a live rd2d scrape round-trips through a strict reader.
func ParsePrometheus(r io.Reader) ([]PromSample, error) {
	var out []PromSample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("prom line %d: malformed TYPE comment", lineno)
				}
				if !validPromName(fields[2]) {
					return nil, fmt.Errorf("prom line %d: bad metric name %q in TYPE", lineno, fields[2])
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("prom line %d: unknown metric type %q", lineno, fields[3])
				}
			}
			continue
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("prom line %d: %v", lineno, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

func validPromLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

func parsePromSample(line string) (PromSample, error) {
	var s PromSample
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	s.Name = line[:i]
	if !validPromName(s.Name) {
		return s, fmt.Errorf("bad metric name %q", s.Name)
	}
	if i < len(line) && line[i] == '{' {
		s.Labels = map[string]string{}
		i++
		for {
			if i >= len(line) {
				return s, fmt.Errorf("unterminated label set")
			}
			if line[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(line) && line[j] != '=' {
				j++
			}
			if j >= len(line) {
				return s, fmt.Errorf("label without '='")
			}
			name := line[i:j]
			if !validPromLabelName(name) {
				return s, fmt.Errorf("bad label name %q", name)
			}
			j++ // past '='
			if j >= len(line) || line[j] != '"' {
				return s, fmt.Errorf("label value for %q not quoted", name)
			}
			j++
			var val strings.Builder
			for {
				if j >= len(line) {
					return s, fmt.Errorf("unterminated label value for %q", name)
				}
				c := line[j]
				if c == '"' {
					j++
					break
				}
				if c == '\\' {
					j++
					if j >= len(line) {
						return s, fmt.Errorf("dangling escape in label value for %q", name)
					}
					switch line[j] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return s, fmt.Errorf("bad escape \\%c in label value for %q", line[j], name)
					}
					j++
					continue
				}
				val.WriteByte(c)
				j++
			}
			s.Labels[name] = val.String()
			if j < len(line) && line[j] == ',' {
				j++
			}
			i = j
		}
	}
	rest := strings.Fields(line[i:])
	if len(rest) < 1 || len(rest) > 2 {
		return s, fmt.Errorf("want value (and optional timestamp), got %q", line[i:])
	}
	v, err := strconv.ParseFloat(rest[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %v", rest[0], err)
	}
	s.Value = v
	if len(rest) == 2 {
		if _, err := strconv.ParseInt(rest[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", rest[1])
		}
	}
	return s, nil
}
