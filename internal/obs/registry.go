package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry holds named metrics. Get-or-create accessors make registration
// idempotent: two packages (or two pipeline instances) asking for the same
// name share one metric, so counts aggregate process-wide.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	timers   map[string]*Timer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		timers:   map[string]*Timer{},
	}
}

// Default is the process-wide registry every in-tree instrumentation site
// registers into.
var Default = NewRegistry()

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Timer returns the named timer, creating it if needed.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Reset zeroes every registered metric in place. Metric pointers held by
// instrumentation sites stay valid — only their values clear. Benchmarks
// and tests use this to isolate passes.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
	for _, t := range r.timers {
		t.Histogram.reset()
	}
}

// Package-level shorthands for the Default registry; instrumentation
// sites typically call these once in a var block.

// GetCounter returns the named counter from the Default registry.
func GetCounter(name string) *Counter { return Default.Counter(name) }

// GetGauge returns the named gauge from the Default registry.
func GetGauge(name string) *Gauge { return Default.Gauge(name) }

// GetHistogram returns the named histogram from the Default registry.
func GetHistogram(name string) *Histogram { return Default.Histogram(name) }

// GetTimer returns the named timer from the Default registry.
func GetTimer(name string) *Timer { return Default.Timer(name) }

// GaugeSnapshot is the JSON-stable read of one gauge.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Peak  int64 `json:"peak"`
}

// Snapshot is a point-in-time read of a whole registry — the schema served
// by /metrics, emitted by the periodic emitter, and validated by
// ValidateSnapshot. All four maps are always present (possibly empty) so
// consumers can rely on the shape.
type Snapshot struct {
	TakenUnixNs int64                        `json:"taken_unix_ns"`
	UptimeNs    int64                        `json:"uptime_ns"`
	Enabled     bool                         `json:"enabled"`
	Counters    map[string]uint64            `json:"counters"`
	Gauges      map[string]GaugeSnapshot     `json:"gauges"`
	Histograms  map[string]HistogramSnapshot `json:"histograms"`
	Timers      map[string]HistogramSnapshot `json:"timers"`
}

// Snapshot reads every metric. Values are read lock-free while writers may
// be running, so cross-metric consistency is approximate — fine for
// monitoring, not for settlement.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		TakenUnixNs: time.Now().UnixNano(),
		UptimeNs:    int64(time.Since(base)),
		Enabled:     enabled.Load(),
		Counters:    make(map[string]uint64, len(r.counters)),
		Gauges:      make(map[string]GaugeSnapshot, len(r.gauges)),
		Histograms:  make(map[string]HistogramSnapshot, len(r.hists)),
		Timers:      make(map[string]HistogramSnapshot, len(r.timers)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeSnapshot{Value: g.Load(), Peak: g.Peak()}
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	for name, t := range r.timers {
		s.Timers[name] = t.Histogram.Snapshot()
	}
	return s
}

// TakeSnapshot reads the Default registry.
func TakeSnapshot() Snapshot { return Default.Snapshot() }

// FormatSnapshot renders a snapshot as an aligned human-readable block —
// the text mode of the periodic emitter and the commands' -obs dumps.
// Zero-valued metrics are skipped so quiet runs stay short.
func FormatSnapshot(s Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- obs snapshot @ %s (enabled=%v) --\n",
		time.Duration(s.UptimeNs).Round(time.Millisecond), s.Enabled)
	names := make([]string, 0, len(s.Counters))
	for name, v := range s.Counters {
		if v != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "  %-36s %14d\n", name, s.Counters[name])
	}
	names = names[:0]
	for name := range s.Gauges {
		if g := s.Gauges[name]; g.Value != 0 || g.Peak != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		g := s.Gauges[name]
		fmt.Fprintf(&b, "  %-36s %14d  (peak %d)\n", name, g.Value, g.Peak)
	}
	appendHists := func(m map[string]HistogramSnapshot) {
		names = names[:0]
		for name, h := range m {
			if h.Count > 0 {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			h := m[name]
			fmt.Fprintf(&b, "  %-36s %14d spans  mean %.0fns  p50 %dns  p99 %dns  max %dns\n",
				name, h.Count, h.MeanNs, h.P50Ns, h.P99Ns, h.MaxNs)
		}
	}
	appendHists(s.Timers)
	appendHists(s.Histograms)
	return b.String()
}
