package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry holds named metrics. Get-or-create accessors make registration
// idempotent: two packages (or two pipeline instances) asking for the same
// name share one metric, so counts aggregate process-wide.
//
// A registry can grow child scopes (Scope): a child is a full registry
// whose metrics carry up-links to the same-named metric in the parent, so
// every write rolls up the chain — one atomic add per level. rd2d gives
// each detection session a scope under obs.Default; the global series then
// always read as the sum over sessions, and /metrics?session=ID or a
// Prometheus scrape (WritePrometheus, scopes become labels) can attribute
// the same counters per tenant.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	timers   map[string]*Timer
	spans    map[string]*Span

	// Scope identity: immutable after creation, so label paths can be
	// walked without the lock.
	parent   *Registry
	kind, id string
	children map[scopeKey]*Registry
}

type scopeKey struct{ kind, id string }

// NewRegistry returns an empty root registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		timers:   map[string]*Timer{},
		spans:    map[string]*Span{},
	}
}

// Default is the process-wide registry every in-tree instrumentation site
// registers into.
var Default = NewRegistry()

// Scope returns the child registry labeled kind=id, creating it if needed.
// Metrics created in the child roll up into the same-named metric here (and
// transitively to every ancestor) on each write. Scopes nest; in practice
// the tree is two levels (process root → "session" scopes).
func (r *Registry) Scope(kind, id string) *Registry {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := scopeKey{kind, id}
	c, ok := r.children[k]
	if !ok {
		c = NewRegistry()
		c.parent = r
		c.kind, c.id = kind, id
		if r.children == nil {
			r.children = map[scopeKey]*Registry{}
		}
		r.children[k] = c
	}
	return c
}

// FindScope returns the child scope labeled kind=id, or nil if it does not
// exist (it never creates — the read-side counterpart of Scope for HTTP
// handlers that must 404 on unknown sessions).
func (r *Registry) FindScope(kind, id string) *Registry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.children[scopeKey{kind, id}]
}

// DropScope detaches the child scope labeled kind=id from snapshots and
// Prometheus output. Metric pointers inside the dropped scope stay valid
// and keep rolling up into this registry — a straggling writer loses
// per-scope visibility, never global counts. A later Scope with the same
// key starts fresh.
func (r *Registry) DropScope(kind, id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.children, scopeKey{kind, id})
}

// Scopes returns the direct child scopes, sorted by kind then id.
func (r *Registry) Scopes() []*Registry {
	r.mu.Lock()
	out := make([]*Registry, 0, len(r.children))
	for _, c := range r.children {
		out = append(out, c)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].kind != out[j].kind {
			return out[i].kind < out[j].kind
		}
		return out[i].id < out[j].id
	})
	return out
}

// ScopeKind returns this registry's scope label name ("" at a root).
func (r *Registry) ScopeKind() string { return r.kind }

// ScopeID returns this registry's scope label value ("" at a root).
func (r *Registry) ScopeID() string { return r.id }

// ScopePath returns the label path from the root to this registry,
// outermost first. A root registry returns nil.
func (r *Registry) ScopePath() []ScopeRef {
	var path []ScopeRef
	for p := r; p.parent != nil; p = p.parent {
		path = append([]ScopeRef{{Kind: p.kind, ID: p.id}}, path...)
	}
	return path
}

// Counter returns the named counter, creating it if needed. In a child
// scope, creation links the counter to the parent's same-named counter
// (created on demand, recursively), establishing the rollup chain.
// Lock order is always leaf→root, so nested creation cannot deadlock.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		if r.parent != nil {
			c.up = r.parent.Counter(name)
		}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		if r.parent != nil {
			g.up = r.parent.Gauge(name)
		}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		if r.parent != nil {
			h.up = r.parent.Histogram(name)
		}
		r.hists[name] = h
	}
	return h
}

// Timer returns the named timer, creating it if needed.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		if r.parent != nil {
			t.Histogram.up = &r.parent.Timer(name).Histogram
		}
		r.timers[name] = t
	}
	return t
}

// Reset zeroes every registered metric in place, recursively through child
// scopes. Metric pointers held by instrumentation sites stay valid — only
// their values clear. Benchmarks and tests use this to isolate passes.
func (r *Registry) Reset() {
	r.mu.Lock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
	for _, t := range r.timers {
		t.Histogram.reset()
	}
	kids := make([]*Registry, 0, len(r.children))
	for _, c := range r.children {
		kids = append(kids, c)
	}
	r.mu.Unlock()
	for _, c := range kids {
		c.Reset()
	}
}

// Package-level shorthands for the Default registry; instrumentation
// sites typically call these once in a var block.

// GetCounter returns the named counter from the Default registry.
func GetCounter(name string) *Counter { return Default.Counter(name) }

// GetGauge returns the named gauge from the Default registry.
func GetGauge(name string) *Gauge { return Default.Gauge(name) }

// GetHistogram returns the named histogram from the Default registry.
func GetHistogram(name string) *Histogram { return Default.Histogram(name) }

// GetTimer returns the named timer from the Default registry.
func GetTimer(name string) *Timer { return Default.Timer(name) }

// GaugeSnapshot is the JSON-stable read of one gauge.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Peak  int64 `json:"peak"`
}

// ScopeRef names one scope level: the label pair a child registry hangs
// under ("session" = "conn-3").
type ScopeRef struct {
	Kind string `json:"kind"`
	ID   string `json:"id"`
}

// Snapshot is a point-in-time read of a whole registry — the schema served
// by /metrics, emitted by the periodic emitter, and validated by
// ValidateSnapshot. All four maps are always present (possibly empty) so
// consumers can rely on the shape.
type Snapshot struct {
	TakenUnixNs int64                        `json:"taken_unix_ns"`
	UptimeNs    int64                        `json:"uptime_ns"`
	Enabled     bool                         `json:"enabled"`
	Scope       []ScopeRef                   `json:"scope,omitempty"`  // label path of this registry, root→leaf
	Scopes      []ScopeRef                   `json:"scopes,omitempty"` // direct child scopes at snapshot time
	Counters    map[string]uint64            `json:"counters"`
	Gauges      map[string]GaugeSnapshot     `json:"gauges"`
	Histograms  map[string]HistogramSnapshot `json:"histograms"`
	Timers      map[string]HistogramSnapshot `json:"timers"`
}

// Snapshot reads every metric. Values are read lock-free while writers may
// be running, so cross-metric consistency is approximate — fine for
// monitoring, not for settlement.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		TakenUnixNs: time.Now().UnixNano(),
		UptimeNs:    int64(time.Since(base)),
		Enabled:     enabled.Load(),
		Scope:       r.ScopePath(),
		Counters:    make(map[string]uint64, len(r.counters)),
		Gauges:      make(map[string]GaugeSnapshot, len(r.gauges)),
		Histograms:  make(map[string]HistogramSnapshot, len(r.hists)),
		Timers:      make(map[string]HistogramSnapshot, len(r.timers)),
	}
	for k := range r.children {
		s.Scopes = append(s.Scopes, ScopeRef{Kind: k.kind, ID: k.id})
	}
	sort.Slice(s.Scopes, func(i, j int) bool {
		if s.Scopes[i].Kind != s.Scopes[j].Kind {
			return s.Scopes[i].Kind < s.Scopes[j].Kind
		}
		return s.Scopes[i].ID < s.Scopes[j].ID
	})
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeSnapshot{Value: g.Load(), Peak: g.Peak()}
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	for name, t := range r.timers {
		s.Timers[name] = t.Histogram.Snapshot()
	}
	return s
}

// TakeSnapshot reads the Default registry.
func TakeSnapshot() Snapshot { return Default.Snapshot() }

// FormatSnapshot renders a snapshot as an aligned human-readable block —
// the text mode of the periodic emitter and the commands' -obs dumps.
// Zero-valued metrics are skipped so quiet runs stay short.
func FormatSnapshot(s Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- obs snapshot @ %s (enabled=%v) --\n",
		time.Duration(s.UptimeNs).Round(time.Millisecond), s.Enabled)
	names := make([]string, 0, len(s.Counters))
	for name, v := range s.Counters {
		if v != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "  %-36s %14d\n", name, s.Counters[name])
	}
	names = names[:0]
	for name := range s.Gauges {
		if g := s.Gauges[name]; g.Value != 0 || g.Peak != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		g := s.Gauges[name]
		fmt.Fprintf(&b, "  %-36s %14d  (peak %d)\n", name, g.Value, g.Peak)
	}
	appendHists := func(m map[string]HistogramSnapshot) {
		names = names[:0]
		for name, h := range m {
			if h.Count > 0 {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			h := m[name]
			fmt.Fprintf(&b, "  %-36s %14d spans  mean %.0fns  p50 %dns  p99 %dns  max %dns\n",
				name, h.Count, h.MeanNs, h.P50Ns, h.P99Ns, h.MaxNs)
		}
	}
	appendHists(s.Timers)
	appendHists(s.Histograms)
	return b.String()
}
