package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the observability mux for a registry:
//
//	/metrics       — the full Snapshot as JSON (the schema ValidateSnapshot checks)
//	                 ?session=ID scopes to one session (404 on unknown id);
//	                 ?format=prom switches to Prometheus text exposition
//	                 (scopes become labels; combine with ?session= to scrape
//	                 one subtree)
//	/debug/vars    — expvar-style flat JSON (counters and gauges only)
//	/debug/pprof/  — the standard net/http/pprof handlers
//	/healthz       — liveness probe ("ok")
//
// The pprof handlers are mounted explicitly so nothing leaks onto
// http.DefaultServeMux.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		target := reg
		if sid := req.URL.Query().Get("session"); sid != "" {
			if target = reg.FindScope("session", sid); target == nil {
				http.Error(w, "unknown session "+sid, http.StatusNotFound)
				return
			}
		}
		if req.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			WritePrometheus(w, target) //nolint:errcheck // client went away
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(target.Snapshot()) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		s := reg.Snapshot()
		flat := make(map[string]any, len(s.Counters)+len(s.Gauges))
		for name, v := range s.Counters {
			flat[name] = v
		}
		for name, g := range s.Gauges {
			flat[name] = g.Value
			flat[name+".peak"] = g.Peak
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(flat) //nolint:errcheck
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n")) //nolint:errcheck
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a live observability endpoint returned by Serve.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve binds addr (e.g. ":6060" or "127.0.0.1:0") and serves Handler(reg)
// on a background goroutine. It does not flip the global enabled switch —
// callers decide when collection starts.
func Serve(addr string, reg *Registry) (*Server, error) {
	return ServeHandler(addr, Handler(reg))
}

// ServeHandler binds addr and serves an arbitrary handler — for daemons
// that wrap Handler with extra routes (rd2d adds /sessions).
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Close
	return &Server{ln: ln, srv: srv}, nil
}
