package obs

import (
	"fmt"
	"strings"
)

// Stat is one named counter value in a detector's post-run summary.
type Stat struct {
	Name  string
	Value int64
}

// StatSource is the common snapshot surface of the detectors: core.Detector,
// fasttrack.Detector, and pipeline.Pipeline all expose their end-of-run
// counters as an ordered []Stat, so every front-end (cmd/rd2bench's tables,
// cmd/rd2's summary) prints any detector with the one FormatStats code path
// instead of per-detector fmt strings.
type StatSource interface {
	StatSnapshot() []Stat
}

// FormatStats renders one detector's stat list under a label:
//
//	RD2:
//	  actions                    12034
//	  checks                     24068
func FormatStats(label string, stats []Stat) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", label)
	for _, s := range stats {
		fmt.Fprintf(&b, "  %-24s %14d\n", s.Name, s.Value)
	}
	return b.String()
}
