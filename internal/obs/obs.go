// Package obs is the runtime observability layer of the reproduction: a
// small, dependency-free metrics and tracing facility the whole detection
// stack instruments itself with. The paper's evaluation (Section 7, Fig 4)
// argues RD2's practicality entirely through counters — conflict checks,
// active access points, overhead vs. FASTTRACK — and the sharded pipeline
// added since makes several more quantities load-bearing (per-shard skew,
// stamping vs. detection split, clock-pool hit rates). This package makes
// all of them visible at runtime instead of only in a post-run struct.
//
// Four metric kinds are provided:
//
//	Counter   — monotonically increasing atomic uint64
//	Gauge     — atomic level with a high-water mark (peak)
//	Histogram — bounded power-of-two ns-scale latency buckets
//	Timer     — a Histogram plus Start/ObserveSince span helpers
//
// Metrics are registered by name in a Registry (obs.Default for the
// process-wide one) and read via Snapshot, which the HTTP endpoint
// (Serve), the periodic emitter (StartEmitter), and the text formatter all
// consume.
//
// # The disabled path
//
// Instrumentation is off by default (SetEnabled). Every metric operation
// first loads one package-level atomic bool and returns on the cold value,
// so the disabled path is a single predictable branch: no allocation, no
// atomic read-modify-write, no time syscall. BenchmarkObsDisabled pins
// this at 0 allocs/op and nanosecond-scale ns/op, and the benchmark gate
// (cmd/benchgate, BENCH_baseline.json) fails CI when it regresses — hot
// loops may therefore call these unconditionally.
//
// Naming scheme: "<package>.<metric>" in snake_case, with a unit suffix
// for durations ("core.phase1_ns"). Per-shard metrics insert the shard
// index: "pipeline.shard.3.queue_batches". The full inventory lives in
// DESIGN.md §7.
package obs

import (
	"sync/atomic"
	"time"
)

// enabled is the single global instrumentation switch. A package-level
// atomic.Bool keeps the disabled fast path to one load and one branch.
var enabled atomic.Bool

// Enabled reports whether instrumentation is on.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns instrumentation on or off. Metrics updated while
// disabled are silently dropped (they do not buffer), so counters read as
// "since enable".
func SetEnabled(on bool) { enabled.Store(on) }

// base anchors the process-monotonic clock used by Clock and the timers.
var base = time.Now()

// Clock returns a monotonic nanosecond reading for span timing, or 0 when
// instrumentation is disabled — pass the value to Timer.ObserveSince,
// which treats 0 as "span never started". The reading is strictly
// positive when enabled.
func Clock() int64 {
	if !enabled.Load() {
		return 0
	}
	n := int64(time.Since(base))
	if n <= 0 {
		n = 1
	}
	return n
}

// Counter is a monotonically increasing counter. The zero value is ready
// to use; registry-created counters are shared by name. A counter created
// inside a child scope (Registry.Scope) carries an up-link to the
// same-named counter one scope up: every write walks the chain, so parent
// scopes always read as the sum of their children plus their own direct
// writes — one atomic add per level, no locks.
type Counter struct {
	v  atomic.Uint64
	up *Counter // same-named counter in the parent scope; nil at the root
}

// Inc adds 1.
func (c *Counter) Inc() {
	if !enabled.Load() {
		return
	}
	for p := c; p != nil; p = p.up {
		p.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if !enabled.Load() {
		return
	}
	for p := c; p != nil; p = p.up {
		p.v.Add(n)
	}
}

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// reset zeroes the counter (Registry.Reset).
func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an instantaneous level with a high-water mark. Levels may go
// negative transiently (e.g. a decrement observed before the matching
// increment when producer and consumer race to update), but the peak only
// ever rises. Scoped gauges (Registry.Scope) propagate every level change
// up the parent chain, so a parent gauge reads as the sum of its children;
// each level keeps its own independent peak.
type Gauge struct {
	cur  atomic.Int64
	peak atomic.Int64
	up   *Gauge // same-named gauge in the parent scope; nil at the root
}

// Add moves the level by d (negative to decrease) and raises the peak if
// the new level exceeds it.
func (g *Gauge) Add(d int64) {
	if !enabled.Load() {
		return
	}
	for p := g; p != nil; p = p.up {
		v := p.cur.Add(d)
		if d > 0 {
			p.raise(v)
		}
	}
}

// Enter increments the gauge and returns a release function that
// decrements it exactly once, no matter how many times — or from how many
// deferred recovery paths — it is called. The decrement is paired with the
// increment even if metrics are toggled in between: if the increment was
// suppressed (metrics disabled), the release is a no-op, so a session that
// ends via panic recovery AND idle timeout AND normal teardown still moves
// the gauge by net zero.
func (g *Gauge) Enter() (release func()) {
	if !enabled.Load() {
		return func() {}
	}
	for p := g; p != nil; p = p.up {
		p.raise(p.cur.Add(1))
	}
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			for p := g; p != nil; p = p.up {
				p.cur.Add(-1)
			}
		}
	}
}

// Set replaces the level of this gauge and moves every ancestor by the
// delta, preserving the sum-of-children invariant: setting a session's
// queue depth from 3 to 7 adds 4 to the rolled-up global queue depth, it
// does not overwrite it.
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	d := v - g.cur.Swap(v)
	g.raise(v)
	for p := g.up; p != nil; p = p.up {
		nv := p.cur.Add(d)
		if d > 0 {
			p.raise(nv)
		}
	}
}

// raise lifts the peak to at least v.
func (g *Gauge) raise(v int64) {
	for {
		p := g.peak.Load()
		if v <= p || g.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.cur.Load() }

// Peak returns the high-water mark.
func (g *Gauge) Peak() int64 { return g.peak.Load() }

// reset zeroes level and peak (Registry.Reset).
func (g *Gauge) reset() {
	g.cur.Store(0)
	g.peak.Store(0)
}
