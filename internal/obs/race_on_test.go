//go:build race

package obs

// raceEnabled reports whether the test binary was built with -race, which
// instruments every atomic op and invalidates timing expectations.
const raceEnabled = true
