package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count: bucket i holds observations whose
// nanosecond value has bit length i+1, i.e. the range [2^i, 2^(i+1)), with
// bucket 0 also absorbing 0–1 ns and the last bucket everything from
// 2^(histBuckets-1) ns (~2.1 s) up. Powers of two make bucketing one
// bits.Len64 — no search, no float math — and 32 buckets span the whole
// useful latency range of the detector (single-digit ns conflict checks to
// whole-run spans) in a fixed 256-byte array.
const histBuckets = 32

// Histogram is a bounded latency histogram with ns-scale exponential
// buckets. All fields are atomics, so concurrent Observe calls (e.g. from
// pipeline shards) need no lock; Snapshot reads are lock-free and may be
// slightly torn across fields, which is fine for monitoring.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	up      *Histogram // same-named histogram in the parent scope; nil at the root
	buckets [histBuckets]atomic.Uint64
}

// Observe records one duration in nanoseconds, into this histogram and
// every ancestor scope (the bucket index is computed once and reused up
// the chain). Negative values clamp to zero.
func (h *Histogram) Observe(ns int64) {
	if !enabled.Load() {
		return
	}
	if ns < 0 {
		ns = 0
	}
	b := bucketIndex(ns)
	for p := h; p != nil; p = p.up {
		p.count.Add(1)
		p.sum.Add(uint64(ns))
		p.buckets[b].Add(1)
	}
}

// bucketIndex maps a non-negative ns value to its bucket.
func bucketIndex(ns int64) int {
	if ns <= 1 {
		return 0
	}
	i := bits.Len64(uint64(ns)) - 1
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// bucketUpper is the inclusive upper bound of bucket i (the last bucket is
// open-ended; its bound is reported as-is and read as "≥").
func bucketUpper(i int) uint64 {
	return 1<<(uint(i)+1) - 1
}

// reset zeroes the histogram (Registry.Reset).
func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Bucket is one nonzero histogram bucket in a snapshot.
type Bucket struct {
	UpperNs uint64 `json:"le_ns"` // inclusive upper bound (last bucket: lower bound of the open tail)
	Count   uint64 `json:"n"`
}

// HistogramSnapshot is the JSON-stable read of one histogram. Quantiles
// are bucket-upper-bound approximations (within 2× of the true value, the
// resolution of power-of-two buckets).
type HistogramSnapshot struct {
	Count  uint64   `json:"count"`
	SumNs  uint64   `json:"sum_ns"`
	MeanNs float64  `json:"mean_ns"`
	P50Ns  uint64   `json:"p50_ns"`
	P90Ns  uint64   `json:"p90_ns"`
	P99Ns  uint64   `json:"p99_ns"`
	MaxNs  uint64   `json:"max_ns"` // upper bound of the highest populated bucket
	Bkts   []Bucket `json:"buckets,omitempty"`
}

// Snapshot reads the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), SumNs: h.sum.Load()}
	if s.Count > 0 {
		s.MeanNs = float64(s.SumNs) / float64(s.Count)
	}
	var counts [histBuckets]uint64
	total := uint64(0)
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
		if counts[i] > 0 {
			s.MaxNs = bucketUpper(i)
			s.Bkts = append(s.Bkts, Bucket{UpperNs: bucketUpper(i), Count: counts[i]})
		}
	}
	// Quantiles over the bucket counts actually read (total), which may
	// drift from the count field under concurrent writes.
	quantile := func(q float64) uint64 {
		if total == 0 {
			return 0
		}
		// Nearest-rank: the ⌈q·total⌉-th smallest observation (0-indexed).
		rank := uint64(math.Ceil(q * float64(total)))
		if rank > 0 {
			rank--
		}
		if rank >= total {
			rank = total - 1
		}
		cum := uint64(0)
		for i := range counts {
			cum += counts[i]
			if cum > rank {
				return bucketUpper(i)
			}
		}
		return s.MaxNs
	}
	s.P50Ns = quantile(0.50)
	s.P90Ns = quantile(0.90)
	s.P99Ns = quantile(0.99)
	return s
}

// Timer is a named phase-span timer: a Histogram of span durations plus
// allocation-free start/stop helpers.
//
//	start := t.Start()            // 0 when disabled
//	...
//	t.ObserveSince(start)         // no-op when start == 0
type Timer struct {
	Histogram
}

// Start returns an opaque span start token (0 when disabled).
func (t *Timer) Start() int64 { return Clock() }

// ObserveSince records the span from a Start token. A zero token (span
// started while disabled) is ignored, so enable/disable races drop the
// span instead of recording garbage.
func (t *Timer) ObserveSince(start int64) {
	if start <= 0 || !enabled.Load() {
		return
	}
	d := int64(time.Since(base)) - start
	if d < 0 {
		d = 0
	}
	t.Observe(d)
}
