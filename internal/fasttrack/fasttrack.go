// Package fasttrack implements the FASTTRACK low-level data race detector
// (Flanagan & Freund, PLDI 2009) — the comparison baseline of the paper's
// evaluation (Table 2).
//
// FASTTRACK detects read/write races on individual memory locations using
// the same happens-before relation as the commutativity detector but with an
// adaptive shadow representation: most locations carry lightweight epochs
// (a single thread/clock pair) and are promoted to full vector clocks only
// while reads are genuinely concurrent.
//
// Event clocks may be segment snapshots shared across events (the hb
// package's Event.Clock immutability contract); this detector only reads
// them — epoch comparisons, LEQ, Get, and copies into its own read vector
// clocks — never writes through them.
package fasttrack

import (
	"fmt"

	"repro/internal/hb"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Adaptive-representation counters: a promotion creates a read vector
// clock for genuinely concurrent reads, a demotion collapses it back to an
// epoch at the next write. Both are rare relative to reads/writes (that is
// FASTTRACK's whole point), so they update the shared atomics directly
// rather than batching like the core hot path does.
var (
	obsPromotions = obs.GetCounter("fasttrack.read_promotions")
	obsDemotions  = obs.GetCounter("fasttrack.read_demotions")
	obsFTRaces    = obs.GetCounter("fasttrack.races")
)

// epoch is the c@t of the FASTTRACK paper: thread t at clock value c. The
// zero epoch (clock 0) happens before everything.
type epoch struct {
	t vclock.Tid
	c uint64
}

func (e epoch) String() string { return fmt.Sprintf("%d@t%d", e.c, e.t) }

// leq reports e ⊑ C.
func (e epoch) leq(c vclock.VC) bool { return e.c <= c.Get(e.t) }

// RaceKind discriminates the flavor of a data race.
type RaceKind uint8

// The race kinds.
const (
	WriteWrite RaceKind = iota
	WriteRead           // earlier write races with current read
	ReadWrite           // earlier read races with current write
)

func (k RaceKind) String() string {
	switch k {
	case WriteWrite:
		return "write-write"
	case WriteRead:
		return "write-read"
	case ReadWrite:
		return "read-write"
	default:
		return fmt.Sprintf("RaceKind(%d)", int(k))
	}
}

// Race is one reported data race on a memory location.
type Race struct {
	Var    trace.VarID
	Kind   RaceKind
	Thread vclock.Tid // current accessor
	Prev   vclock.Tid // conflicting earlier accessor
	Seq    int        // current event sequence number
}

func (r Race) String() string {
	return fmt.Sprintf("data race on v%d: %s, t%d vs t%d (event %d)",
		int(r.Var), r.Kind, r.Thread, r.Prev, r.Seq)
}

// varState is the shadow word of one location: a write epoch plus either a
// read epoch or, when reads are shared, a read vector clock.
type varState struct {
	w   epoch
	r   epoch
	rvc vclock.VC // non-nil ⇒ shared reads
}

// Stats aggregates the detector's counters.
type Stats struct {
	Reads      int
	Writes     int
	Races      int
	SharedVars int // locations promoted to vector-clock reads
	Demotions  int // shared-read clocks collapsed back to epochs by a write
}

// StatSnapshot exposes the counters through the unified obs.StatSource
// surface, so harness tables render FASTTRACK and RD2 stats with one code
// path.
func (s Stats) StatSnapshot() []obs.Stat {
	return []obs.Stat{
		{Name: "reads", Value: int64(s.Reads)},
		{Name: "writes", Value: int64(s.Writes)},
		{Name: "races", Value: int64(s.Races)},
		{Name: "shared_vars", Value: int64(s.SharedVars)},
		{Name: "read_demotions", Value: int64(s.Demotions)},
	}
}

// Detector is a FASTTRACK analysis instance. Like core.Detector it is
// single-threaded; the monitored runtime serializes events into it.
type Detector struct {
	vars   map[trace.VarID]*varState
	races  []Race
	stats  Stats
	onRace func(Race)
	max    int
}

// DefaultMaxRaces caps retained race reports.
const DefaultMaxRaces = 10000

// New returns a FASTTRACK detector. onRace may be nil.
func New(onRace func(Race)) *Detector {
	return &Detector{vars: map[trace.VarID]*varState{}, onRace: onRace, max: DefaultMaxRaces}
}

// Process consumes one stamped event; only read and write events are
// examined.
func (d *Detector) Process(e *trace.Event) error {
	switch e.Kind {
	case trace.ReadEvent:
		return d.read(e)
	case trace.WriteEvent:
		return d.write(e)
	default:
		return nil
	}
}

func (d *Detector) state(v trace.VarID) *varState {
	st, ok := d.vars[v]
	if !ok {
		st = &varState{}
		d.vars[v] = st
	}
	return st
}

func (d *Detector) report(e *trace.Event, kind RaceKind, prev vclock.Tid) {
	d.stats.Races++
	obsFTRaces.Inc()
	r := Race{Var: e.Var, Kind: kind, Thread: e.Thread, Prev: prev, Seq: e.Seq}
	if len(d.races) < d.max {
		d.races = append(d.races, r)
	}
	if d.onRace != nil {
		d.onRace(r)
	}
}

// read implements FASTTRACK's read rules.
func (d *Detector) read(e *trace.Event) error {
	if e.Clock == nil {
		return fmt.Errorf("fasttrack: event %d has no clock", e.Seq)
	}
	d.stats.Reads++
	st := d.state(e.Var)
	cur := epoch{t: e.Thread, c: e.Clock.Get(e.Thread)}

	// Same epoch: redundant read.
	if st.rvc == nil && st.r == cur {
		return nil
	}
	// Write-read check.
	if !st.w.leq(e.Clock) {
		d.report(e, WriteRead, st.w.t)
	}
	if st.rvc != nil {
		// Shared: record in the read vector clock.
		st.rvc = st.rvc.Set(e.Thread, cur.c)
		return nil
	}
	if st.r.leq(e.Clock) {
		// Exclusive: the previous read happens before us.
		st.r = cur
		return nil
	}
	// Concurrent reads: promote to a shared read vector clock.
	st.rvc = vclock.VC(nil).Set(st.r.t, st.r.c).Set(e.Thread, cur.c)
	d.stats.SharedVars++
	obsPromotions.Inc()
	return nil
}

// write implements FASTTRACK's write rules.
func (d *Detector) write(e *trace.Event) error {
	if e.Clock == nil {
		return fmt.Errorf("fasttrack: event %d has no clock", e.Seq)
	}
	d.stats.Writes++
	st := d.state(e.Var)
	cur := epoch{t: e.Thread, c: e.Clock.Get(e.Thread)}

	// Same epoch: redundant write.
	if st.w == cur {
		return nil
	}
	// Write-write check.
	if !st.w.leq(e.Clock) {
		d.report(e, WriteWrite, st.w.t)
	}
	// Read-write checks.
	if st.rvc != nil {
		if !st.rvc.LEQ(e.Clock) {
			prev := e.Thread
			for _, t := range st.rvc.Support() {
				if st.rvc.Get(t) > e.Clock.Get(t) {
					prev = t
					break
				}
			}
			d.report(e, ReadWrite, prev)
		}
		// Demote back to exclusive tracking.
		st.rvc = nil
		st.r = epoch{}
		d.stats.Demotions++
		obsDemotions.Inc()
	} else if !st.r.leq(e.Clock) {
		d.report(e, ReadWrite, st.r.t)
	}
	st.w = cur
	return nil
}

// Races returns the retained race reports.
func (d *Detector) Races() []Race { return d.races }

// Stats returns a snapshot of the counters.
func (d *Detector) Stats() Stats { return d.stats }

// StatSnapshot implements obs.StatSource: the counters plus the exact
// distinct racy-location count.
func (d *Detector) StatSnapshot() []obs.Stat {
	return append(d.stats.StatSnapshot(),
		obs.Stat{Name: "distinct_vars", Value: int64(d.DistinctVars())})
}

// DistinctVars returns the number of distinct locations with at least one
// race — the "(distinct)" column of Table 2 for FASTTRACK.
func (d *Detector) DistinctVars() int {
	seen := map[trace.VarID]bool{}
	for _, r := range d.races {
		seen[r.Var] = true
	}
	return len(seen)
}

// RunTrace stamps the trace with a fresh happens-before engine and feeds
// every event through the detector.
func (d *Detector) RunTrace(tr *trace.Trace) error {
	en := hb.New()
	for i := range tr.Events {
		e := &tr.Events[i]
		if _, err := en.Process(e); err != nil {
			return fmt.Errorf("fasttrack: event %d (%s): %w", i, e, err)
		}
		if err := d.Process(e); err != nil {
			return err
		}
	}
	return nil
}
