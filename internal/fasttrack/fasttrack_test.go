package fasttrack

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hb"
	"repro/internal/trace"
	"repro/internal/vclock"
)

func run(t *testing.T, tr *trace.Trace) *Detector {
	t.Helper()
	d := New(nil)
	if err := d.RunTrace(tr); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWriteWriteRace(t *testing.T) {
	tr := trace.NewBuilder().
		Fork(0, 1).Fork(0, 2).
		Write(1, 0).
		Write(2, 0).
		Trace()
	d := run(t, tr)
	if len(d.Races()) != 1 || d.Races()[0].Kind != WriteWrite {
		t.Fatalf("races = %v", d.Races())
	}
}

func TestWriteReadRace(t *testing.T) {
	tr := trace.NewBuilder().
		Fork(0, 1).Fork(0, 2).
		Write(1, 0).
		Read(2, 0).
		Trace()
	d := run(t, tr)
	if len(d.Races()) != 1 || d.Races()[0].Kind != WriteRead {
		t.Fatalf("races = %v", d.Races())
	}
}

func TestReadWriteRace(t *testing.T) {
	tr := trace.NewBuilder().
		Fork(0, 1).Fork(0, 2).
		Read(1, 0).
		Write(2, 0).
		Trace()
	d := run(t, tr)
	if len(d.Races()) != 1 || d.Races()[0].Kind != ReadWrite {
		t.Fatalf("races = %v", d.Races())
	}
}

func TestSharedReadsThenWriteRace(t *testing.T) {
	// Three concurrent readers promote to a read VC; a later concurrent
	// write races with them.
	tr := trace.NewBuilder().
		Fork(0, 1).Fork(0, 2).Fork(0, 3).
		Read(1, 0).
		Read(2, 0).
		Read(3, 0).
		Write(0, 0). // t0 has not joined anyone: concurrent with all reads
		Trace()
	d := run(t, tr)
	if len(d.Races()) != 1 || d.Races()[0].Kind != ReadWrite {
		t.Fatalf("races = %v", d.Races())
	}
	if d.Stats().SharedVars != 1 {
		t.Errorf("shared vars = %d, want 1", d.Stats().SharedVars)
	}
}

func TestJoinedReadsDoNotRace(t *testing.T) {
	tr := trace.NewBuilder().
		Fork(0, 1).Fork(0, 2).
		Read(1, 0).
		Read(2, 0).
		Join(0, 1).Join(0, 2).
		Write(0, 0).
		Trace()
	d := run(t, tr)
	if len(d.Races()) != 0 {
		t.Fatalf("races = %v", d.Races())
	}
}

func TestLockProtectedAccessesDoNotRace(t *testing.T) {
	tr := trace.NewBuilder().
		Fork(0, 1).Fork(0, 2).
		Acquire(1, 0).Write(1, 0).Release(1, 0).
		Acquire(2, 0).Write(2, 0).Read(2, 0).Release(2, 0).
		Trace()
	d := run(t, tr)
	if len(d.Races()) != 0 {
		t.Fatalf("races = %v", d.Races())
	}
}

func TestSameThreadNeverRaces(t *testing.T) {
	tr := trace.NewBuilder().
		Write(0, 0).Read(0, 0).Write(0, 0).Read(0, 0).
		Trace()
	d := run(t, tr)
	if len(d.Races()) != 0 {
		t.Fatalf("races = %v", d.Races())
	}
	st := d.Stats()
	if st.Reads != 2 || st.Writes != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDistinctVars(t *testing.T) {
	tr := trace.NewBuilder().
		Fork(0, 1).Fork(0, 2).
		Write(1, 0).Write(2, 0). // race on v0
		Write(1, 1).Write(2, 1). // race on v1
		Write(1, 0).Write(2, 0). // more races on v0
		Trace()
	d := run(t, tr)
	if got := d.DistinctVars(); got != 2 {
		t.Errorf("distinct vars = %d, want 2", got)
	}
	if d.Stats().Races < 3 {
		t.Errorf("races = %d", d.Stats().Races)
	}
}

func TestUnstampedEventFails(t *testing.T) {
	d := New(nil)
	r := trace.Read(0, 0)
	if err := d.Process(&r); err == nil {
		t.Error("unstamped read must fail")
	}
	w := trace.Write(0, 0)
	if err := d.Process(&w); err == nil {
		t.Error("unstamped write must fail")
	}
}

func TestNonMemoryEventsIgnored(t *testing.T) {
	d := New(nil)
	a := trace.Act(0, trace.Action{Obj: 0, Method: "m"})
	if err := d.Process(&a); err != nil {
		t.Fatal(err)
	}
}

func TestOnRaceCallback(t *testing.T) {
	var got []Race
	d := New(func(r Race) { got = append(got, r) })
	tr := trace.NewBuilder().Fork(0, 1).Fork(0, 2).Write(1, 0).Write(2, 0).Trace()
	if err := d.RunTrace(tr); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("callback fired %d times", len(got))
	}
}

func TestRaceAndKindStrings(t *testing.T) {
	r := Race{Var: 3, Kind: WriteWrite, Thread: 1, Prev: 2, Seq: 9}
	s := r.String()
	for _, frag := range []string{"v3", "write-write", "t1", "t2"} {
		if !contains(s, frag) {
			t.Errorf("race string %q missing %q", s, frag)
		}
	}
	if RaceKind(9).String() == "" || WriteRead.String() != "write-read" || ReadWrite.String() != "read-write" {
		t.Error("kind strings broken")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// oracle computes read/write races pairwise from the stamped trace: two
// accesses to the same location race iff at least one is a write and their
// clocks are concurrent.
func oracle(tr *trace.Trace) map[int]bool {
	racy := map[int]bool{}
	var accesses []*trace.Event
	for i := range tr.Events {
		e := &tr.Events[i]
		if e.Kind != trace.ReadEvent && e.Kind != trace.WriteEvent {
			continue
		}
		for _, prev := range accesses {
			if prev.Var != e.Var {
				continue
			}
			if prev.Kind == trace.ReadEvent && e.Kind == trace.ReadEvent {
				continue
			}
			if prev.Clock.Concurrent(e.Clock) {
				racy[e.Seq] = true
			}
		}
		accesses = append(accesses, e)
	}
	return racy
}

// genMemTrace builds a random well-formed trace of reads and writes.
func genMemTrace(r *rand.Rand) *trace.Trace {
	b := trace.NewBuilder()
	threads := 2 + r.Intn(3)
	vars := 1 + r.Intn(3)
	locks := 2
	for i := 1; i <= threads; i++ {
		b.Fork(0, vclock.Tid(i))
	}
	ops := 3 + r.Intn(15)
	for i := 0; i < ops; i++ {
		t := vclock.Tid(1 + r.Intn(threads))
		v := trace.VarID(r.Intn(vars))
		locked := r.Intn(100) < 30
		var l trace.LockID
		if locked {
			l = trace.LockID(r.Intn(locks))
			b.Acquire(t, l)
		}
		if r.Intn(2) == 0 {
			b.Read(t, v)
		} else {
			b.Write(t, v)
		}
		if locked {
			b.Release(t, l)
		}
	}
	return b.Trace()
}

// TestPropFastTrackFindsFirstRacePrecisely: FASTTRACK is precise for the
// first race on each variable; at minimum, it must report at least one race
// iff the oracle finds any, and never report on a race-free trace.
func TestPropFastTrackSoundOnRaceFreeAndCompleteOnFirst(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := genMemTrace(r)
		d := New(nil)
		if err := d.RunTrace(tr); err != nil {
			t.Log(err)
			return false
		}
		want := oracle(tr)
		if len(want) == 0 {
			if len(d.Races()) != 0 {
				t.Logf("seed %d: false positive %v", seed, d.Races())
				return false
			}
			return true
		}
		if len(d.Races()) == 0 {
			t.Logf("seed %d: missed races %v\n%s", seed, want, trace.Format(tr))
			return false
		}
		// Every reported race must be confirmed by the oracle at that event.
		for _, rc := range d.Races() {
			if !want[rc.Seq] {
				t.Logf("seed %d: spurious race %v", seed, rc)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPropPerVarFirstRaceDetected: for each variable, the first racy access
// (per the oracle) must be flagged by FASTTRACK (its precision guarantee).
func TestPropPerVarFirstRaceDetected(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := genMemTrace(r)
		if err := hb.StampAll(tr); err != nil {
			t.Log(err)
			return false
		}
		want := oracle(tr)
		firstBad := map[trace.VarID]int{}
		for i := range tr.Events {
			e := &tr.Events[i]
			if want[e.Seq] {
				if _, ok := firstBad[e.Var]; !ok {
					firstBad[e.Var] = e.Seq
				}
			}
		}
		d := New(nil)
		flagged := map[int]bool{}
		d.onRace = func(rc Race) { flagged[rc.Seq] = true }
		for i := range tr.Events {
			if err := d.Process(&tr.Events[i]); err != nil {
				t.Log(err)
				return false
			}
		}
		for v, seq := range firstBad {
			if !flagged[seq] {
				t.Logf("seed %d: first race on v%d at event %d missed\n%s", seed, v, seq, trace.Format(tr))
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFastTrackReadSameEpoch(b *testing.B) {
	d := New(nil)
	en := hb.New()
	w := trace.Write(0, 0)
	if _, err := en.Process(&w); err != nil {
		b.Fatal(err)
	}
	if err := d.Process(&w); err != nil {
		b.Fatal(err)
	}
	rd := trace.Read(0, 0)
	if _, err := en.Process(&rd); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := d.Process(&rd); err != nil {
			b.Fatal(err)
		}
	}
}
