// Package specs provides a library of ready-made ECL commutativity
// specifications and their translated access point representations for
// common shared objects: the paper's dictionary (Fig 6), plus set, counter,
// queue, register and multiset specifications built the same way.
//
// Each specification is available as its source text (for tooling and
// documentation), as a parsed *ecl.Spec, and as a translated *translate.Rep
// shared by all objects of that type.
package specs

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ecl"
	"repro/internal/translate"
)

// DictionarySrc is the dictionary specification of Fig 6. The abstract
// state is a total map key → value∪{nil} (Fig 5); put returns the previous
// value, get the current one, size the number of non-nil entries.
const DictionarySrc = `
# Dictionary commutativity specification (Fig 6 of the paper).
object dict

method put(k, v) / (p)
method get(k) / (v)
method size() / (r)

commute put(k1, v1)/(p1), put(k2, v2)/(p2)
    when k1 != k2 || (v1 == p1 && v2 == p2)
commute put(k1, v1)/(p1), get(k2)/(v2) when k1 != k2 || v1 == p1
commute put(k1, v1)/(p1), size()/(r)
    when (v1 == nil && p1 == nil) || (v1 != nil && p1 != nil)
commute get(k1)/(v1), get(k2)/(v2) when true
commute get(k1)/(v1), size()/(r) when true
commute size()/(r1), size()/(r2) when true
`

// SetSrc is a mathematical-set specification. add/remove return whether the
// element was inserted/deleted; failed mutations are observationally reads.
// The paper highlights sets as expressible in ECL but not in SIMPLE.
const SetSrc = `
# Set commutativity: failed adds/removes behave as membership reads.
object set

method add(x) / (ok)
method remove(x) / (ok)
method contains(x) / (ok)
method size() / (n)

commute add(x1)/(k1), add(x2)/(k2) when x1 != x2 || (k1 == false && k2 == false)
commute add(x1)/(k1), remove(x2)/(k2) when x1 != x2 || (k1 == false && k2 == false)
commute add(x1)/(k1), contains(x2)/(k2) when x1 != x2 || k1 == false
commute add(x1)/(k1), size()/(n) when k1 == false
commute remove(x1)/(k1), remove(x2)/(k2) when x1 != x2 || (k1 == false && k2 == false)
commute remove(x1)/(k1), contains(x2)/(k2) when x1 != x2 || k1 == false
commute remove(x1)/(k1), size()/(n) when k1 == false
commute contains(x1)/(k1), contains(x2)/(k2) when true
commute contains(x1)/(k1), size()/(n) when true
commute size()/(n1), size()/(n2) when true
`

// CounterSrc is a shared counter. Increments commute with each other (the
// abstract effect is +delta regardless of order) but not with reads, because
// an increment's return value exposes the prior count.
const CounterSrc = `
# Counter: adds commute with adds; reads commute with reads.
object counter

method add(delta) / (old)
method read() / (v)

commute add(d1)/(o1), add(d2)/(o2) when d1 == 0 && d2 == 0
commute add(d1)/(o1), read()/(v) when d1 == 0
commute read()/(v1), read()/(v2) when true
`

// RegisterSrc is a single-cell register with read/write. Writes of the same
// value commute with each other; a write commutes with a read that already
// observed the written value only if it did not change the cell.
const RegisterSrc = `
# Register: last-writer-wins cell.
object register

method write(v) / (old)
method read() / (v)

commute write(v1)/(o1), write(v2)/(o2) when v1 == o1 && v2 == o2
commute write(v1)/(o1), read()/(v2) when v1 == o1
commute read()/(v1), read()/(v2) when true
`

// QueueSrc is a FIFO queue: enqueues conflict with enqueues (order is
// observable), dequeues with dequeues, and enqueue/dequeue conflict unless
// the dequeue came up empty... which still does not commute with a
// successful enqueue, so only trivially-empty operations commute.
const QueueSrc = `
# FIFO queue: element order makes almost nothing commute.
object queue

method enq(x)
method deq() / (x)
method len() / (n)

commute enq(x1), enq(x2) when false
commute enq(x1), deq()/(y) when false
commute enq(x1), len()/(n) when false
commute deq()/(x), deq()/(y) when x == nil && y == nil
commute deq()/(x), len()/(n) when x == nil
commute len()/(n1), len()/(n2) when true
`

// MultisetSrc is a bag with add/count: adds always commute (no return
// exposes order), counts commute with counts, and add conflicts with count
// of the same element.
const MultisetSrc = `
# Multiset (bag): blind adds commute.
object multiset

method add(x)
method count(x) / (n)
method size() / (n)

commute add(x1), add(x2) when true
commute add(x1), count(x2)/(n) when x1 != x2
commute add(x1), size()/(n) when false
commute count(x1)/(n1), count(x2)/(n2) when true
commute count(x1)/(n1), size()/(n2) when true
commute size()/(n1), size()/(n2) when true
`

// sources maps names to spec sources.
var sources = map[string]string{
	"dict":     DictionarySrc,
	"set":      SetSrc,
	"counter":  CounterSrc,
	"register": RegisterSrc,
	"queue":    QueueSrc,
	"multiset": MultisetSrc,
}

var (
	mu       sync.Mutex
	specMemo = map[string]*ecl.Spec{}
	repMemo  = map[string]*translate.Rep{}
)

// Names lists the available specification names, sorted.
func Names() []string {
	out := make([]string, 0, len(sources))
	for n := range sources {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Source returns the specification source text for the named object type.
func Source(name string) (string, error) {
	src, ok := sources[name]
	if !ok {
		return "", fmt.Errorf("specs: unknown specification %q (have %v)", name, Names())
	}
	return src, nil
}

// Spec returns the parsed specification, memoized.
func Spec(name string) (*ecl.Spec, error) {
	mu.Lock()
	defer mu.Unlock()
	if s, ok := specMemo[name]; ok {
		return s, nil
	}
	src, ok := sources[name]
	if !ok {
		return nil, fmt.Errorf("specs: unknown specification %q (have %v)", name, Names())
	}
	s, err := ecl.ParseSpec(src)
	if err != nil {
		return nil, fmt.Errorf("specs: %s: %w", name, err)
	}
	specMemo[name] = s
	return s, nil
}

// Rep returns the translated access point representation, memoized; the
// representation is immutable and may be shared across objects and
// detectors.
func Rep(name string) (*translate.Rep, error) {
	mu.Lock()
	if r, ok := repMemo[name]; ok {
		mu.Unlock()
		return r, nil
	}
	mu.Unlock()
	s, err := Spec(name)
	if err != nil {
		return nil, err
	}
	r, err := translate.Translate(s)
	if err != nil {
		return nil, fmt.Errorf("specs: %s: %w", name, err)
	}
	mu.Lock()
	repMemo[name] = r
	mu.Unlock()
	return r, nil
}

// MustSpec returns the parsed spec or panics; for initialization paths.
func MustSpec(name string) *ecl.Spec {
	s, err := Spec(name)
	if err != nil {
		panic(err)
	}
	return s
}

// MustRep returns the translated representation or panics.
func MustRep(name string) *translate.Rep {
	r, err := Rep(name)
	if err != nil {
		panic(err)
	}
	return r
}
