package specs

import (
	"testing"

	"repro/internal/trace"
)

func TestAllSpecsParseAndTranslate(t *testing.T) {
	for _, name := range Names() {
		src, err := Source(name)
		if err != nil {
			t.Fatal(err)
		}
		if src == "" {
			t.Errorf("%s: empty source", name)
		}
		spec, err := Spec(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := spec.CheckECL(); err != nil {
			t.Errorf("%s: not ECL: %v", name, err)
		}
		rep, err := Rep(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !rep.Bounded() {
			t.Errorf("%s: representation must be bounded", name)
		}
		if rep.MaxConflicts() > 8 {
			t.Errorf("%s: max conflicts %d is suspiciously large\n%s", name, rep.MaxConflicts(), rep.Dump())
		}
	}
}

func TestMemoization(t *testing.T) {
	a, err := Rep("dict")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Rep("dict")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Rep must memoize")
	}
	s1, _ := Spec("set")
	s2, _ := Spec("set")
	if s1 != s2 {
		t.Error("Spec must memoize")
	}
}

func TestUnknownSpec(t *testing.T) {
	if _, err := Source("nope"); err == nil {
		t.Error("unknown Source must fail")
	}
	if _, err := Spec("nope"); err == nil {
		t.Error("unknown Spec must fail")
	}
	if _, err := Rep("nope"); err == nil {
		t.Error("unknown Rep must fail")
	}
}

func TestMustHelpers(t *testing.T) {
	if MustSpec("dict") == nil || MustRep("dict") == nil {
		t.Fatal("Must helpers broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSpec should panic on unknown name")
		}
	}()
	MustSpec("nope")
}

func TestDictRepIsFig7(t *testing.T) {
	rep := MustRep("dict")
	if rep.NumClasses() != 4 {
		t.Errorf("dictionary classes = %d, want 4 (Fig 7)", rep.NumClasses())
	}
	if rep.MaxConflicts() != 2 {
		t.Errorf("dictionary max conflicts = %d, want 2", rep.MaxConflicts())
	}
}

func TestCounterSemantics(t *testing.T) {
	spec := MustSpec("counter")
	add := func(d, old int64) trace.Action {
		return trace.Action{Method: "add", Args: []trace.Value{trace.IntValue(d)},
			Rets: []trace.Value{trace.IntValue(old)}}
	}
	read := func(v int64) trace.Action {
		return trace.Action{Method: "read", Rets: []trace.Value{trace.IntValue(v)}}
	}
	if ok, _ := spec.Commutes(add(1, 5), add(1, 6)); ok {
		t.Error("real adds expose prior count; must not commute")
	}
	if ok, _ := spec.Commutes(add(0, 5), add(0, 5)); !ok {
		t.Error("zero adds commute")
	}
	if ok, _ := spec.Commutes(add(1, 5), read(6)); ok {
		t.Error("add vs read must not commute")
	}
	if ok, _ := spec.Commutes(read(5), read(5)); !ok {
		t.Error("reads commute")
	}
}

func TestQueueSemantics(t *testing.T) {
	spec := MustSpec("queue")
	enq := trace.Action{Method: "enq", Args: []trace.Value{trace.IntValue(1)}}
	deqEmpty := trace.Action{Method: "deq", Rets: []trace.Value{trace.NilValue}}
	deqHit := trace.Action{Method: "deq", Rets: []trace.Value{trace.IntValue(1)}}
	if ok, _ := spec.Commutes(enq, enq); ok {
		t.Error("enqueues must not commute")
	}
	if ok, _ := spec.Commutes(deqEmpty, deqEmpty); !ok {
		t.Error("empty dequeues commute")
	}
	if ok, _ := spec.Commutes(deqHit, deqEmpty); ok {
		t.Error("successful dequeue must not commute with empty dequeue")
	}
}

func TestMultisetSemantics(t *testing.T) {
	spec := MustSpec("multiset")
	add := func(x int64) trace.Action {
		return trace.Action{Method: "add", Args: []trace.Value{trace.IntValue(x)}}
	}
	count := func(x, n int64) trace.Action {
		return trace.Action{Method: "count", Args: []trace.Value{trace.IntValue(x)},
			Rets: []trace.Value{trace.IntValue(n)}}
	}
	if ok, _ := spec.Commutes(add(1), add(1)); !ok {
		t.Error("blind adds commute")
	}
	if ok, _ := spec.Commutes(add(1), count(1, 2)); ok {
		t.Error("add vs count of same element must not commute")
	}
	if ok, _ := spec.Commutes(add(1), count(2, 0)); !ok {
		t.Error("add vs count of different element commutes")
	}
}

func TestRegisterSemantics(t *testing.T) {
	spec := MustSpec("register")
	w := func(v, old int64) trace.Action {
		return trace.Action{Method: "write", Args: []trace.Value{trace.IntValue(v)},
			Rets: []trace.Value{trace.IntValue(old)}}
	}
	r := func(v int64) trace.Action {
		return trace.Action{Method: "read", Rets: []trace.Value{trace.IntValue(v)}}
	}
	if ok, _ := spec.Commutes(w(5, 3), w(6, 5)); ok {
		t.Error("real writes must not commute")
	}
	if ok, _ := spec.Commutes(w(5, 5), w(5, 5)); !ok {
		t.Error("no-op writes commute")
	}
	if ok, _ := spec.Commutes(w(5, 3), r(5)); ok {
		t.Error("real write vs read must not commute")
	}
	if ok, _ := spec.Commutes(w(5, 5), r(5)); !ok {
		t.Error("no-op write vs read commutes")
	}
}
