//go:build clockcheck

package hb

import (
	"fmt"

	"repro/internal/vclock"
)

// ClockCheck reports whether this binary enforces the Event.Clock
// immutability contract at runtime.
const ClockCheck = true

// snapGuard "poisons" every frozen segment snapshot: record keeps both the
// live shared slice and a private copy of its bytes at freeze time. Any
// later write through a shared Event.Clock (or lock clock, or in-flight
// channel message) makes the two diverge; the divergence is caught at the
// owning thread's next segment rollover (Engine.mutable) and, for every
// snapshot, in Engine.VerifySnapshots / hb.StampAll.
//
// The guard retains every snapshot for the engine's lifetime, so the
// clockcheck build trades memory for detection — it is a debug/CI
// configuration (ci.sh -clockcheck), not a production one.
type snapGuard struct {
	snaps []guardEntry
}

type guardEntry struct {
	live vclock.VC // the shared snapshot handed out to events/locks/messages
	want vclock.VC // private copy of its bytes, taken at freeze time
}

func (g *snapGuard) record(c vclock.VC) int {
	g.snaps = append(g.snaps, guardEntry{live: c, want: c.Clone()})
	return len(g.snaps) - 1
}

func (g *snapGuard) verify(tok int) {
	ge := &g.snaps[tok]
	for i, v := range ge.live {
		if ge.want.Get(vclock.Tid(i)) != v {
			panic(fmt.Sprintf(
				"hb: clockcheck: frozen snapshot %d mutated: froze as %s, now %s — a consumer wrote through a shared Event.Clock",
				tok, ge.want, ge.live))
		}
	}
}

func (g *snapGuard) verifyAll() {
	for tok := range g.snaps {
		g.verify(tok)
	}
}
