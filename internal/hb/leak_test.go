package hb

import (
	"testing"

	"repro/internal/trace"
)

// TestChannelQueueReleasesPoppedClocks is the regression test for the
// channel-queue memory leak: popping with `cs.queue = cs.queue[1:]` kept
// the popped clock reachable through the backing array forever on
// send-heavy traces. The fix nils the popped slot before reslicing and
// releases the whole array once the queue drains.
func TestChannelQueueReleasesPoppedClocks(t *testing.T) {
	en := New()
	const n = 8
	for i := 0; i < n; i++ {
		ev := trace.Send(0, 0)
		if _, err := en.Process(&ev); err != nil {
			t.Fatal(err)
		}
	}
	backing := en.chans[0].queue[:n] // aliases the backing array the pops walk

	// Partial drain: popped slots must be nil-ed even while the queue is
	// still non-empty.
	half := n / 2
	for i := 0; i < half; i++ {
		ev := trace.Recv(1, 0)
		if _, err := en.Process(&ev); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < half; i++ {
		if backing[i] != nil {
			t.Errorf("popped slot %d still retains its clock %s", i, backing[i])
		}
	}
	if got := len(en.chans[0].queue); got != n-half {
		t.Fatalf("queue length = %d, want %d", got, n-half)
	}

	// Full drain: the queue must drop the backing array entirely.
	for i := half; i < n; i++ {
		ev := trace.Recv(1, 0)
		if _, err := en.Process(&ev); err != nil {
			t.Fatal(err)
		}
	}
	for i, c := range backing {
		if c != nil {
			t.Errorf("popped slot %d still retains its clock %s", i, c)
		}
	}
	if en.chans[0].queue != nil {
		t.Error("drained queue should release its backing array")
	}
}

// TestSegmentSnapshotSharing pins the tentpole's zero-clone property: every
// action event between two synchronization events of one thread is stamped
// with the *same* underlying clock slice, and a sync event rolls the
// segment over without disturbing earlier stamps.
func TestSegmentSnapshotSharing(t *testing.T) {
	k := trace.StrValue("k")
	tr := trace.NewBuilder().
		Get(0, 0, k, trace.NilValue).
		Get(0, 0, k, trace.NilValue).
		Release(0, 0).
		Get(0, 0, k, trace.NilValue).
		Trace()
	if err := StampAll(tr); err != nil {
		t.Fatal(err)
	}
	a, b := tr.Events[0].Clock, tr.Events[1].Clock
	rel := tr.Events[2].Clock
	c := tr.Events[3].Clock
	if &a[0] != &b[0] || &a[0] != &rel[0] {
		t.Error("events of one segment (and its closing release) must share one snapshot")
	}
	if &c[0] == &a[0] {
		t.Error("post-release event must be stamped with a fresh segment snapshot")
	}
	if !a.LEQ(c) || c.LEQ(a) {
		t.Errorf("segment rollover must strictly advance the clock: %s then %s", a, c)
	}
}
