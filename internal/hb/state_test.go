package hb

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
	"repro/internal/vclock"
)

func stateTestTraces(t *testing.T) []*trace.Trace {
	t.Helper()
	var out []*trace.Trace
	for seed := int64(1); seed <= 4; seed++ {
		cfg := trace.GenConfig{
			Threads: 5, Objects: 3, Keys: 6, Vals: 4, Locks: 3,
			OpsMin: 40, OpsMax: 120, PSize: 10, PGet: 35, PLocked: 35, PRemove: 20,
		}
		out = append(out, trace.Generate(rand.New(rand.NewSource(seed)), cfg))
	}
	// A hand-built trace driving channels and thread death explicitly, so
	// chanState queues and dead flags cross the export boundary.
	tr := &trace.Trace{}
	tr.Append(trace.Fork(0, 1))
	tr.Append(trace.Fork(0, 2))
	tr.Append(trace.Send(1, 0))
	tr.Append(trace.Send(1, 0))
	tr.Append(trace.Send(2, 1))
	tr.Append(trace.Acquire(1, 0))
	tr.Append(trace.Release(1, 0))
	tr.Append(trace.Event{Kind: trace.EndEvent, Thread: 2})
	tr.Append(trace.Recv(0, 0))
	tr.Append(trace.Recv(0, 1))
	tr.Append(trace.Acquire(0, 0))
	tr.Append(trace.Recv(0, 0))
	tr.Append(trace.Join(0, 2))
	tr.Append(trace.Release(0, 0))
	tr.Append(trace.Fork(0, 3))
	tr.Append(trace.Send(3, 0))
	tr.Append(trace.Recv(1, 0))
	tr.Append(trace.Join(0, 1))
	out = append(out, tr)
	return out
}

// stampVia runs the trace through an engine that is exported/imported at
// the split point, returning the stamp clock of every event (deep-copied).
func stampVia(t *testing.T, tr *trace.Trace, split int) []vclock.VC {
	t.Helper()
	en := New()
	var clocks []vclock.VC
	for i := range tr.Events {
		if i == split {
			st := en.ExportState()
			en2 := New()
			if err := en2.ImportState(st); err != nil {
				t.Fatalf("ImportState: %v", err)
			}
			// The old engine keeps working after export; mutate it to prove
			// the export shares nothing.
			for j := 0; j < 3; j++ {
				e := trace.Acquire(0, 99)
				en.Process(&e)
				r := trace.Release(0, 99)
				en.Process(&r)
			}
			en = en2
		}
		e := tr.Events[i]
		c, err := en.Process(&e)
		if err != nil {
			t.Fatalf("Process(%v): %v", e, err)
		}
		var cp vclock.VC
		if c != nil {
			cp = append(vclock.VC(nil), c...)
		}
		clocks = append(clocks, cp)
	}
	return clocks
}

// An engine rebuilt from an export at any split point must stamp the rest
// of the trace with clocks value-equal to the uninterrupted run, and agree
// on MeetLive (the compaction threshold).
func TestEngineExportImportDifferential(t *testing.T) {
	for ti, tr := range stateTestTraces(t) {
		want := stampVia(t, tr, -1)
		for split := 0; split <= tr.Len(); split += 1 + tr.Len()/7 {
			got := stampVia(t, tr, split)
			for i := range want {
				if !want[i].Equal(got[i]) {
					t.Fatalf("trace %d split %d: event %d (%v): clock %v != %v",
						ti, split, i, tr.Events[i], got[i], want[i])
				}
			}
		}
	}
}

func TestEngineExportImportMeetLive(t *testing.T) {
	for _, tr := range stateTestTraces(t) {
		en := New()
		for i := range tr.Events {
			e := tr.Events[i]
			if _, err := en.Process(&e); err != nil {
				t.Fatalf("Process: %v", err)
			}
		}
		en2 := New()
		if err := en2.ImportState(en.ExportState()); err != nil {
			t.Fatalf("ImportState: %v", err)
		}
		if a, b := en.MeetLive(), en2.MeetLive(); !a.Equal(b) {
			t.Fatalf("MeetLive diverged: %v vs %v", a, b)
		}
		if en.Threads() != en2.Threads() {
			t.Fatalf("Threads diverged: %d vs %d", en.Threads(), en2.Threads())
		}
	}
}

// The parallel two-pass stamper over an imported engine must agree with the
// serial uninterrupted run — the chunked-session recovery path in rd2d.
func TestParallelStamperOverImportedEngine(t *testing.T) {
	for ti, tr := range stateTestTraces(t) {
		want := stampVia(t, tr, -1)
		split := tr.Len() / 2
		en := New()
		for i := 0; i < split; i++ {
			e := tr.Events[i]
			if _, err := en.Process(&e); err != nil {
				t.Fatalf("Process: %v", err)
			}
		}
		ps := NewParallelStamper(4)
		if err := ps.Engine().ImportState(en.ExportState()); err != nil {
			t.Fatalf("ImportState: %v", err)
		}
		rest := make([]trace.Event, tr.Len()-split)
		copy(rest, tr.Events[split:])
		n, err := ps.StampChunk(rest)
		if err != nil {
			t.Fatalf("StampChunk: %v", err)
		}
		if n != len(rest) {
			t.Fatalf("StampChunk stamped %d of %d", n, len(rest))
		}
		for i, e := range rest {
			if want[split+i] == nil {
				continue
			}
			if !e.Clock.Equal(want[split+i]) {
				t.Fatalf("trace %d: event %d (%v): parallel clock %v != serial %v",
					ti, split+i, e, e.Clock, want[split+i])
			}
		}
	}
}
