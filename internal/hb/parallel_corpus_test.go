package hb_test

import (
	"os"
	"path/filepath"
	"slices"
	"testing"

	"repro/internal/hb"
	"repro/internal/trace"
	"repro/internal/wire"
)

// corpusTraces loads every trace in examples/traces (text and binary wire
// formats alike). This is the satellite differential of ISSUE 6: parallel
// stamping must be clock-byte-identical to serial over the whole corpus.
func corpusTraces(t *testing.T) map[string]*trace.Trace {
	t.Helper()
	dir := filepath.Join("..", "..", "examples", "traces")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus dir: %v", err)
	}
	out := map[string]*trace.Trace{}
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		f, err := os.Open(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		tr, err := wire.ParseAny(f)
		f.Close()
		if err != nil {
			t.Fatalf("parsing %s: %v", ent.Name(), err)
		}
		out[ent.Name()] = tr
	}
	if len(out) == 0 {
		t.Fatal("empty trace corpus")
	}
	return out
}

func unstamped(tr *trace.Trace) *trace.Trace {
	ev := make([]trace.Event, len(tr.Events))
	copy(ev, tr.Events)
	for i := range ev {
		ev[i].Clock = nil
	}
	return &trace.Trace{Events: ev}
}

func TestCorpusParallelStampingByteIdentical(t *testing.T) {
	for name, tr := range corpusTraces(t) {
		serial := unstamped(tr)
		if err := hb.StampAll(serial); err != nil {
			t.Fatalf("%s: serial: %v", name, err)
		}
		for _, workers := range []int{1, 2, 4} {
			par := unstamped(tr)
			if err := hb.StampAllParallel(par, workers); err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			for i := range serial.Events {
				if !slices.Equal(serial.Events[i].Clock, par.Events[i].Clock) {
					t.Fatalf("%s workers=%d event %d (%s): clock mismatch: %v vs %v",
						name, workers, i, serial.Events[i].String(),
						serial.Events[i].Clock, par.Events[i].Clock)
				}
			}
			// The streaming path must agree too, with chunk boundaries
			// cutting through segments.
			ps := hb.NewParallelStream(unstamped(tr).Source(),
				hb.ParallelStreamConfig{Workers: workers, ChunkSize: 13})
			for i := 0; ; i++ {
				e, err := ps.Next()
				if err != nil {
					if i != len(serial.Events) {
						t.Fatalf("%s workers=%d: stream ended after %d of %d events: %v",
							name, workers, i, len(serial.Events), err)
					}
					break
				}
				if !slices.Equal(serial.Events[i].Clock, e.Clock) {
					t.Fatalf("%s workers=%d stream event %d: clock mismatch", name, workers, i)
				}
			}
		}
	}
}
