package hb

import (
	"fmt"
	"sort"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// Durable-session state transfer (DESIGN.md §15): an Engine's entire
// analysis state is its thread clocks, lock clocks, and in-flight channel
// message clocks — all plain vector clocks once the segment-sharing
// discipline is stripped. ExportState deep-copies them into a
// self-contained EngineState; ImportState rebuilds a fresh engine that
// stamps the continuation of the stream with clocks equal (as values) to
// the uninterrupted run's. Segment bookkeeping (shared/tok/gen) is *not*
// carried over: imported clocks start as private mutable segment heads, and
// the first freeze re-enters the sharing discipline. That changes which
// events share snapshot pointers, never the clock values, so detection
// verdicts are unaffected.

// ThreadClock is one thread's exported slot.
type ThreadClock struct {
	Seen  bool
	Dead  bool
	Clock vclock.VC
}

// ChanClocks is one channel's in-flight message clocks, oldest first.
type ChanClocks struct {
	Chan  trace.ChanID
	Queue []vclock.VC
}

// LockClock is one lock's exported clock L(l).
type LockClock struct {
	Lock  trace.LockID
	Clock vclock.VC
}

// EngineState is a self-contained export of an Engine. Locks and channels
// are sorted by id so serializations are deterministic.
type EngineState struct {
	Threads []ThreadClock
	Locks   []LockClock
	Chans   []ChanClocks
}

// ExportState deep-copies the engine's analysis state. The engine remains
// usable; the export shares no memory with it.
func (en *Engine) ExportState() *EngineState {
	st := &EngineState{Threads: make([]ThreadClock, len(en.threads))}
	for i, ts := range en.threads {
		st.Threads[i] = ThreadClock{Seen: ts.seen, Dead: ts.dead, Clock: cloneVC(ts.clock)}
	}
	for l, c := range en.locks {
		st.Locks = append(st.Locks, LockClock{Lock: l, Clock: cloneVC(c)})
	}
	sort.Slice(st.Locks, func(i, j int) bool { return st.Locks[i].Lock < st.Locks[j].Lock })
	for ch, cs := range en.chans {
		if cs == nil || len(cs.queue) == 0 {
			continue
		}
		q := make([]vclock.VC, len(cs.queue))
		for i, c := range cs.queue {
			q[i] = cloneVC(c)
		}
		st.Chans = append(st.Chans, ChanClocks{Chan: ch, Queue: q})
	}
	sort.Slice(st.Chans, func(i, j int) bool { return st.Chans[i].Chan < st.Chans[j].Chan })
	return st
}

// ImportState loads an export into the engine, which must be fresh (no
// events processed). Clocks are copied in as private mutable segment heads
// with clean segment bookkeeping.
func (en *Engine) ImportState(st *EngineState) error {
	if len(en.threads) != 0 || en.seen != 0 || len(en.locks) != 0 || len(en.chans) != 0 {
		return fmt.Errorf("hb: ImportState into a non-fresh engine")
	}
	en.threads = make([]threadState, len(st.Threads))
	for i, tc := range st.Threads {
		en.threads[i] = threadState{clock: cloneVC(tc.Clock), seen: tc.Seen, dead: tc.Dead}
		if tc.Seen {
			en.seen++
		}
	}
	for _, lc := range st.Locks {
		en.locks[lc.Lock] = cloneVC(lc.Clock)
	}
	for _, cc := range st.Chans {
		q := make([]vclock.VC, len(cc.Queue))
		for i, c := range cc.Queue {
			q[i] = cloneVC(c)
		}
		en.chans[cc.Chan] = &chanState{queue: q}
	}
	return nil
}

func cloneVC(c vclock.VC) vclock.VC {
	if c == nil {
		return nil
	}
	return append(vclock.VC(nil), c...)
}
