// Package hb implements the happens-before engine of Table 1 in the paper:
// it maintains the auxiliary maps T : Tid → VC and L : Lock → VC, updates
// them at every synchronization event, and stamps action (and memory) events
// with the vector clock of their thread.
//
// The update rules (Table 1):
//
//	τ fork υ:  T(υ) ← inc_υ(T(τ));  T(τ) ← inc_τ(T(τ))
//	τ join υ:  T(τ) ← T(τ) ⊔ T(υ)
//	τ acq l:   T(τ) ← T(τ) ⊔ L(l)
//	τ rel l:   L(l) ← T(τ);  T(τ) ← inc_τ(T(τ))
//	τ action:  vc(e) ← T(τ)
//
// A thread's very first appearance initializes T(τ) = inc_τ(⊥) so distinct
// root threads start incomparable.
package hb

import (
	"fmt"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// Engine tracks the happens-before relation of an event stream. It is not
// safe for concurrent use; the monitored runtime serializes events into it.
type Engine struct {
	threads map[vclock.Tid]vclock.VC
	locks   map[trace.LockID]vclock.VC
	chans   map[trace.ChanID]*chanState
	dead    map[vclock.Tid]bool // joined or ended threads
}

// chanState carries the in-flight message clocks of one FIFO channel: the
// i-th receive joins the clock captured by the i-th send.
type chanState struct {
	queue []vclock.VC
}

// New returns an empty engine.
func New() *Engine {
	return &Engine{
		threads: map[vclock.Tid]vclock.VC{},
		locks:   map[trace.LockID]vclock.VC{},
		chans:   map[trace.ChanID]*chanState{},
		dead:    map[vclock.Tid]bool{},
	}
}

// ThreadClock returns the current clock T(τ), initializing the thread on
// first sight. The returned clock is owned by the engine; callers must Clone
// before retaining it.
func (en *Engine) ThreadClock(t vclock.Tid) vclock.VC {
	c, ok := en.threads[t]
	if !ok {
		c = vclock.VC(nil).Inc(t)
		en.threads[t] = c
	}
	return c
}

// LockClock returns L(l) (bottom if the lock has never been released).
func (en *Engine) LockClock(l trace.LockID) vclock.VC { return en.locks[l] }

// Process applies an event to the auxiliary state per Table 1 and, for all
// event kinds, stamps e.Clock with a snapshot of the acting thread's clock
// taken before any post-event increment. It returns the stamped clock.
func (en *Engine) Process(e *trace.Event) (vclock.VC, error) {
	t := e.Thread
	ct := en.ThreadClock(t)
	switch e.Kind {
	case trace.ForkEvent:
		if _, exists := en.threads[e.Other]; exists {
			return nil, fmt.Errorf("hb: thread t%d forked twice", e.Other)
		}
		e.Clock = ct.Clone()
		child := ct.Clone().Inc(e.Other)
		en.threads[e.Other] = child
		en.threads[t] = ct.Inc(t)
	case trace.JoinEvent:
		cu, ok := en.threads[e.Other]
		if !ok {
			return nil, fmt.Errorf("hb: join on unknown thread t%d", e.Other)
		}
		en.threads[t] = ct.Join(cu)
		e.Clock = en.threads[t].Clone()
		en.dead[e.Other] = true
	case trace.AcquireEvent:
		en.threads[t] = ct.Join(en.locks[e.Lock])
		e.Clock = en.threads[t].Clone()
	case trace.ReleaseEvent:
		e.Clock = ct.Clone()
		en.locks[e.Lock] = ct.Clone()
		en.threads[t] = ct.Inc(t)
	case trace.SendEvent:
		// Like a release: the message carries the sender's clock, and the
		// sender advances so later sends are distinguishable.
		e.Clock = ct.Clone()
		cs := en.chans[e.Chan]
		if cs == nil {
			cs = &chanState{}
			en.chans[e.Chan] = cs
		}
		cs.queue = append(cs.queue, ct.Clone())
		en.threads[t] = ct.Inc(t)
	case trace.RecvEvent:
		cs := en.chans[e.Chan]
		if cs == nil || len(cs.queue) == 0 {
			return nil, fmt.Errorf("hb: receive on channel c%d with no pending send", e.Chan)
		}
		msg := cs.queue[0]
		cs.queue = cs.queue[1:]
		en.threads[t] = ct.Join(msg)
		e.Clock = en.threads[t].Clone()
	case trace.EndEvent:
		e.Clock = ct.Clone()
		en.dead[t] = true
	case trace.ActionEvent, trace.ReadEvent, trace.WriteEvent,
		trace.BeginEvent, trace.DieEvent:
		e.Clock = ct.Clone()
	default:
		return nil, fmt.Errorf("hb: unknown event kind %v", e.Kind)
	}
	return e.Clock, nil
}

// MeetLive returns the pointwise minimum of all live (not joined, not
// ended) threads' clocks. Every access point whose accumulated clock is ⊑
// this meet is dominated by every possible future event and can never
// participate in a race again (the Section 5.3 reclamation the paper leaves
// as future work). It returns nil (bottom) when no thread is live.
func (en *Engine) MeetLive() vclock.VC {
	var live []vclock.VC
	for t, c := range en.threads {
		if !en.dead[t] {
			live = append(live, c)
		}
	}
	return vclock.Meet(live...)
}

// StampAll runs the whole trace through a fresh engine, stamping every
// event's Clock in place.
func StampAll(tr *trace.Trace) error {
	en := New()
	for i := range tr.Events {
		if _, err := en.Process(&tr.Events[i]); err != nil {
			return fmt.Errorf("event %d (%s): %w", i, tr.Events[i].String(), err)
		}
	}
	return nil
}

// Threads returns the number of threads seen so far.
func (en *Engine) Threads() int { return len(en.threads) }
