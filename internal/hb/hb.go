// Package hb implements the happens-before engine of Table 1 in the paper:
// it maintains the auxiliary maps T : Tid → VC and L : Lock → VC, updates
// them at every synchronization event, and stamps action (and memory) events
// with the vector clock of their thread.
//
// The update rules (Table 1):
//
//	τ fork υ:  T(υ) ← inc_υ(T(τ));  T(τ) ← inc_τ(T(τ))
//	τ join υ:  T(τ) ← T(τ) ⊔ T(υ)
//	τ acq l:   T(τ) ← T(τ) ⊔ L(l)
//	τ rel l:   L(l) ← T(τ);  T(τ) ← inc_τ(T(τ))
//	τ action:  vc(e) ← T(τ)
//
// A thread's very first appearance initializes T(τ) = inc_τ(⊥) so distinct
// root threads start incomparable.
//
// # Snapshot stamping and the Event.Clock immutability contract
//
// Between two synchronization events a thread's clock is constant — the
// same observation FastTrack (Flanagan & Freund, PLDI 2009) exploits with
// epochs — so cloning T(τ) for every stamped event is pure waste. The
// engine instead maintains one frozen snapshot per thread *segment* (the
// span between two clock-changing events) and stamps every event in the
// segment with the same shared vclock.VC. Lock clocks L(l) and in-flight
// channel message clocks alias the releasing/sending thread's segment
// snapshot too. A synchronization event that must change T(τ) starts a new
// segment by copy-on-write from the shared vclock pool; the old snapshot
// lives on, unwritten, in whatever events retained it.
//
// The price of zero-clone stamping is a contract: every Event.Clock (and
// every clock returned by ThreadClock/LockClock/Process) is IMMUTABLE.
// Consumers may read it, Clone it, or Join it into *other* clocks, but must
// never write through it (no Inc/Set/Join-receiver/element assignment).
// All in-tree consumers — core, pipeline, fasttrack, lockset, explore,
// replay, the monitor — are read-only; the debug build tag `clockcheck`
// poisons every frozen snapshot (records its bytes at freeze time) and
// panics on the first divergence, catching contract violations across the
// whole test suite (see ci.sh -clockcheck).
package hb

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Segment-discipline counters ("hb.segments_frozen", "hb.segment_rollovers"):
// a freeze opens a shared snapshot (one per thread segment), a rollover is
// the copy-on-write that ends one. Their ratio to stamped events is the
// zero-clone win (DESIGN.md §7); these sit on the synchronization path
// only, never on the per-action hot path. The counters are per-engine
// fields resolved from a registry (NewObs) so sessions can scope them.

// Engine tracks the happens-before relation of an event stream. It is not
// safe for concurrent use; the monitored runtime serializes events into it.
type Engine struct {
	threads []threadState // dense per-thread state, indexed by Tid
	seen    int           // threads initialized so far
	locks   map[trace.LockID]vclock.VC
	chans   map[trace.ChanID]*chanState
	guard   snapGuard // clockcheck-only snapshot poisoning (no-op otherwise)

	// Segment counters; the process-global metrics by default (New), a
	// session scope's when built via NewObs. Scoped counters roll up, so
	// the global series stays whole either way.
	segFrozen    *obs.Counter
	segRollovers *obs.Counter
}

// threadState is the per-thread slot: the current clock T(τ) plus the
// segment-sharing discipline. While shared is set, clock is a frozen
// snapshot aliased by stamped events (and possibly lock clocks and channel
// messages) and must not be written; the next clock-changing event
// copies-on-write first.
type threadState struct {
	clock  vclock.VC
	seen   bool
	dead   bool // joined or ended
	shared bool // clock is frozen: stamped on events, locks, or messages
	tok    int  // clockcheck poison token for the frozen snapshot
	gen    int  // segment generation, bumped on every copy-on-write rollover
}

// chanState carries the in-flight message clocks of one FIFO channel: the
// i-th receive joins the clock captured by the i-th send. Popped slots are
// nil-ed so the backing array never retains received clocks, and a drained
// queue releases the array entirely.
type chanState struct {
	queue []vclock.VC
}

// New returns an empty engine recording into the process-global metrics.
func New() *Engine { return NewObs(nil) }

// NewObs returns an empty engine whose segment counters live in reg — an
// rd2d session passes its own scope so per-session stamping activity is
// attributable. A nil reg means obs.Default.
func NewObs(reg *obs.Registry) *Engine {
	if reg == nil {
		reg = obs.Default
	}
	return &Engine{
		locks:        map[trace.LockID]vclock.VC{},
		chans:        map[trace.ChanID]*chanState{},
		segFrozen:    reg.Counter("hb.segments_frozen"),
		segRollovers: reg.Counter("hb.segment_rollovers"),
	}
}

// reserve grows the dense thread table to cover t.
func (en *Engine) reserve(t vclock.Tid) {
	for len(en.threads) <= int(t) {
		en.threads = append(en.threads, threadState{})
	}
}

// state returns t's slot, initializing T(τ) = inc_τ(⊥) on first sight. The
// returned pointer is invalidated by the next reserve/state call for a
// higher tid.
func (en *Engine) state(t vclock.Tid) *threadState {
	en.reserve(t)
	ts := &en.threads[t]
	if !ts.seen {
		ts.seen = true
		ts.clock = vclock.VC(nil).Inc(t)
		en.seen++
	}
	return ts
}

// peek returns t's current clock without initializing the thread.
func (en *Engine) peek(t vclock.Tid) (vclock.VC, bool) {
	if int(t) >= len(en.threads) || !en.threads[t].seen {
		return nil, false
	}
	return en.threads[t].clock, true
}

// freeze marks the thread's current clock as the segment snapshot and
// returns it. The snapshot is shared from here on: the engine will not
// write it again (mutable copies first), and neither may any consumer.
func (en *Engine) freeze(ts *threadState) vclock.VC {
	if !ts.shared {
		ts.shared = true
		ts.tok = en.guard.record(ts.clock)
		en.segFrozen.Inc()
	}
	return ts.clock
}

// mutable returns the thread's clock with the right to write it in place,
// starting a new segment (copy-on-write) if the current clock is a frozen
// snapshot. The copy comes from the shared clock pool the detector shards
// recycle into.
func (en *Engine) mutable(ts *threadState) vclock.VC {
	if ts.shared {
		en.guard.verify(ts.tok)
		ts.clock = vclock.SharedPool.Clone(ts.clock)
		ts.shared = false
		ts.gen++
		en.segRollovers.Inc()
	}
	return ts.clock
}

// joinInto folds clock d into ts's clock. When d adds no information the
// segment is left intact — no copy, and byte-identical stamps to the
// historical clone-per-event engine, whose in-place Join was a no-op in
// exactly this case (the length guard matters: a longer d, even one that is
// all trailing zeros beyond len(clock), would have grown the clock there).
func (en *Engine) joinInto(ts *threadState, d vclock.VC) {
	if len(d) <= len(ts.clock) && d.LEQ(ts.clock) {
		return
	}
	ts.clock = en.mutable(ts).Join(d)
}

// ThreadClock returns the current clock T(τ), initializing the thread on
// first sight. The returned clock is owned by the engine and may be a live
// shared snapshot; callers must treat it as read-only and Clone before
// retaining or mutating.
func (en *Engine) ThreadClock(t vclock.Tid) vclock.VC {
	return en.state(t).clock
}

// LockClock returns L(l) (bottom if the lock has never been released). The
// returned clock aliases the releasing thread's segment snapshot; read-only.
func (en *Engine) LockClock(l trace.LockID) vclock.VC { return en.locks[l] }

// Process applies an event to the auxiliary state per Table 1 and, for all
// event kinds, stamps e.Clock with the acting thread's segment snapshot
// taken before any post-event increment. The stamped clock is shared — see
// the package comment for the immutability contract. It returns the
// stamped clock.
func (en *Engine) Process(e *trace.Event) (vclock.VC, error) {
	t := e.Thread
	if e.Kind == trace.ForkEvent {
		// Reserve the child slot first so ts stays valid below.
		en.reserve(e.Other)
	}
	ts := en.state(t)
	switch e.Kind {
	case trace.ForkEvent:
		child := &en.threads[e.Other]
		if child.seen {
			return nil, fmt.Errorf("hb: thread t%d forked twice", e.Other)
		}
		snap := en.freeze(ts)
		e.Clock = snap
		child.seen = true
		child.clock = vclock.SharedPool.Clone(snap).Inc(e.Other)
		en.seen++
		ts.clock = en.mutable(ts).Inc(t)
	case trace.JoinEvent:
		cu, ok := en.peek(e.Other)
		if !ok {
			return nil, fmt.Errorf("hb: join on unknown thread t%d", e.Other)
		}
		en.joinInto(ts, cu)
		e.Clock = en.freeze(ts)
		en.threads[e.Other].dead = true
	case trace.AcquireEvent:
		en.joinInto(ts, en.locks[e.Lock])
		e.Clock = en.freeze(ts)
	case trace.ReleaseEvent:
		// The event and L(l) share one snapshot (the old engine cloned
		// twice here); the post-event increment opens a fresh segment.
		snap := en.freeze(ts)
		e.Clock = snap
		en.locks[e.Lock] = snap
		ts.clock = en.mutable(ts).Inc(t)
	case trace.SendEvent:
		// Like a release: the message carries the sender's snapshot, and
		// the sender advances so later sends are distinguishable.
		snap := en.freeze(ts)
		e.Clock = snap
		cs := en.chans[e.Chan]
		if cs == nil {
			cs = &chanState{}
			en.chans[e.Chan] = cs
		}
		cs.queue = append(cs.queue, snap)
		ts.clock = en.mutable(ts).Inc(t)
	case trace.RecvEvent:
		cs := en.chans[e.Chan]
		if cs == nil || len(cs.queue) == 0 {
			return nil, fmt.Errorf("hb: receive on channel c%d with no pending send", e.Chan)
		}
		msg := cs.queue[0]
		cs.queue[0] = nil // drop the clock reference the backing array held
		cs.queue = cs.queue[1:]
		if len(cs.queue) == 0 {
			cs.queue = nil // drained: release the backing array too
		}
		en.joinInto(ts, msg)
		e.Clock = en.freeze(ts)
	case trace.EndEvent:
		e.Clock = en.freeze(ts)
		ts.dead = true
	case trace.ActionEvent, trace.ReadEvent, trace.WriteEvent,
		trace.BeginEvent, trace.DieEvent:
		// The hot path: zero allocations, the segment snapshot is reused.
		e.Clock = en.freeze(ts)
	default:
		return nil, fmt.Errorf("hb: unknown event kind %v", e.Kind)
	}
	return e.Clock, nil
}

// MeetLive returns the pointwise minimum of all live (not joined, not
// ended) threads' clocks. Every access point whose accumulated clock is ⊑
// this meet is dominated by every possible future event and can never
// participate in a race again (the Section 5.3 reclamation the paper leaves
// as future work). It returns nil (bottom) when no thread is live. The
// result is fresh (never aliases engine state): one clone of the first live
// clock, then an in-place pointwise meet per remaining live thread — no
// intermediate []VC is materialized (Compact calls this periodically).
func (en *Engine) MeetLive() vclock.VC {
	var out vclock.VC
	for i := range en.threads {
		ts := &en.threads[i]
		if !ts.seen || ts.dead {
			continue
		}
		if out == nil {
			out = ts.clock.Clone()
			continue
		}
		out = out.MeetWith(ts.clock)
	}
	return out
}

// VerifySnapshots re-validates every frozen snapshot handed out so far
// against the bytes recorded at freeze time. It is a no-op unless built
// with -tags=clockcheck, where a divergence (a consumer wrote through a
// shared Event.Clock) panics with both versions.
func (en *Engine) VerifySnapshots() { en.guard.verifyAll() }

// StampAll runs the whole trace through a fresh engine, stamping every
// event's Clock in place. Events within one thread segment share one
// immutable clock value. Under -tags=clockcheck every snapshot is
// re-verified after the run.
func StampAll(tr *trace.Trace) error {
	en := New()
	for i := range tr.Events {
		if _, err := en.Process(&tr.Events[i]); err != nil {
			return fmt.Errorf("event %d (%s): %w", i, tr.Events[i].String(), err)
		}
	}
	en.VerifySnapshots()
	return nil
}

// Threads returns the number of threads seen so far.
func (en *Engine) Threads() int { return en.seen }
