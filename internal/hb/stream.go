package hb

import (
	"fmt"
	"io"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Stream stamps the events of a trace.Source incrementally: each Next call
// pulls one raw event, applies it to the engine per Table 1, and returns
// it with Clock set to the acting thread's segment snapshot. It is itself
// a trace.Source, so detectors consume stamped streams and raw in-memory
// traces through one interface — the online front-end of the rd2d
// ingestion daemon is exactly a Stream over a wire.Decoder.
//
// The stamped clocks obey the package's immutability contract: they are
// shared segment snapshots and must never be written by consumers.
type Stream struct {
	src trace.Source
	en  *Engine
	n   int
}

// NewStream returns a stamping stream over src with a fresh engine.
func NewStream(src trace.Source) *Stream {
	return &Stream{src: src, en: New()}
}

// NewStreamObs is NewStream with the engine's obs instruments resolved from
// reg (nil means obs.Default).
func NewStreamObs(src trace.Source, reg *obs.Registry) *Stream {
	return &Stream{src: src, en: NewObs(reg)}
}

// Engine exposes the underlying happens-before engine (for MeetLive-based
// compaction and thread accounting). The engine remains owned by the
// stream; callers must not feed it events of their own.
func (s *Stream) Engine() *Engine { return s.en }

// Events returns the number of events stamped so far.
func (s *Stream) Events() int { return s.n }

// Next returns the next stamped event, io.EOF at the end of the source,
// or the first stamping/decoding error.
func (s *Stream) Next() (trace.Event, error) {
	e, err := s.src.Next()
	if err == io.EOF {
		s.en.VerifySnapshots()
		return trace.Event{}, io.EOF
	}
	if err != nil {
		return trace.Event{}, err
	}
	if _, err := s.en.Process(&e); err != nil {
		return trace.Event{}, fmt.Errorf("event %d (%s): %w", e.Seq, e.String(), err)
	}
	s.n++
	return e, nil
}
