package hb

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// benchGenConfig returns a generator config whose traces are dominated by
// action events (the realistic regime: Table 2 workloads interleave long
// runs of dictionary operations between synchronization points).
func benchGenConfig(opsPerThread, pLocked int) trace.GenConfig {
	return trace.GenConfig{
		Threads: 8, Objects: 16, Keys: 64, Vals: 8, Locks: 4,
		OpsMin: opsPerThread, OpsMax: opsPerThread,
		PSize: 5, PGet: 45, PLocked: pLocked, PRemove: 20,
	}
}

// BenchmarkStampAll measures the happens-before front-end alone: stamping a
// fixed pre-generated trace with a fresh engine per iteration. One op is one
// whole-trace StampAll, so allocs/op is the total front-end allocation count
// for the trace — the quantity the snapshot-stamping tentpole targets.
func BenchmarkStampAll(b *testing.B) {
	for _, bc := range []struct {
		name    string
		ops     int
		pLocked int
	}{
		// ~10% sync events: the action-dominated regime of real traces.
		{"action", 2000, 10},
		// ~55% sync events: stresses the segment-rollover slow path.
		{"syncheavy", 500, 60},
	} {
		b.Run(bc.name, func(b *testing.B) {
			tr := trace.Generate(rand.New(rand.NewSource(42)), benchGenConfig(bc.ops, bc.pLocked))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := StampAll(tr); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(tr.Len()*b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkStampParallel measures the two-pass engine on the
// action-dominated trace across worker counts. workers=1 vs
// BenchmarkStampAll/action isolates the two-pass overhead (skeleton walk +
// boundary log + table replay); higher counts show body-pass scaling with
// cores (flat on a single-core box, where the win comes from the
// pipeline's zero-copy chunk dispatch instead).
func BenchmarkStampParallel(b *testing.B) {
	tr := trace.Generate(rand.New(rand.NewSource(42)), benchGenConfig(2000, 10))
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := StampAllParallel(tr, workers); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(tr.Len()*b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}
