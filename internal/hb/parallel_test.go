package hb

import (
	"io"
	"math/rand"
	"slices"
	"strings"
	"testing"

	"repro/internal/trace"
)

// rawCopy returns an unstamped copy of the trace (fresh event slice, all
// clocks nil) so serial and parallel stampers each work on private events.
func rawCopy(tr *trace.Trace) *trace.Trace {
	ev := make([]trace.Event, len(tr.Events))
	copy(ev, tr.Events)
	for i := range ev {
		ev[i].Clock = nil
	}
	return &trace.Trace{Events: ev}
}

// requireSameClocks fails unless both traces carry byte-identical clocks
// event by event.
func requireSameClocks(t *testing.T, want, got *trace.Trace) {
	t.Helper()
	if len(want.Events) != len(got.Events) {
		t.Fatalf("event count mismatch: %d vs %d", len(want.Events), len(got.Events))
	}
	for i := range want.Events {
		w, g := want.Events[i].Clock, got.Events[i].Clock
		if !slices.Equal(w, g) {
			t.Fatalf("event %d (%s): clock mismatch: serial %v, parallel %v",
				i, want.Events[i].String(), w, g)
		}
	}
}

// mixedTrace exercises every event kind the engine knows, including
// channel edges, memory accesses, begin/end, die, and a thread whose very
// first appearance is a body event (first-sight init on the hot path).
func mixedTrace() *trace.Trace {
	tr := &trace.Trace{}
	tr.Append(trace.Fork(0, 1))
	tr.Append(trace.Fork(0, 2))
	tr.Append(trace.Event{Kind: trace.BeginEvent, Thread: 1})
	tr.Append(trace.Send(0, 0))
	tr.Append(trace.Write(1, 5))
	tr.Append(trace.Recv(1, 0))
	tr.Append(trace.Write(1, 5))
	tr.Append(trace.Read(2, 5))
	tr.Append(trace.Write(3, 9)) // thread 3 first seen at a body event
	tr.Append(trace.Acquire(2, 0))
	tr.Append(trace.Act(2, trace.Action{Obj: 1, Method: "get", Args: []trace.Value{trace.StrValue("k")}}))
	tr.Append(trace.Release(2, 0))
	tr.Append(trace.Acquire(1, 0))
	tr.Append(trace.Act(1, trace.Action{Obj: 1, Method: "size"}))
	tr.Append(trace.Die(1, 1))
	tr.Append(trace.Release(1, 0))
	tr.Append(trace.Send(1, 1))
	tr.Append(trace.Recv(0, 1))
	tr.Append(trace.Event{Kind: trace.EndEvent, Thread: 3})
	tr.Append(trace.Join(0, 1))
	tr.Append(trace.Join(0, 2))
	tr.Append(trace.Act(0, trace.Action{Obj: 1, Method: "size"}))
	return tr
}

// differentialTraces is the shared test corpus: generated dictionaries in
// both regimes plus the hand-built mixed-kind trace.
func differentialTraces(tb testing.TB) map[string]*trace.Trace {
	out := map[string]*trace.Trace{"mixed": mixedTrace()}
	for _, cfg := range []struct {
		name    string
		ops     int
		pLocked int
		seed    int64
	}{
		{"action", 400, 10, 1},
		{"syncheavy", 120, 60, 2},
		{"action-big", 2500, 10, 3},
	} {
		out[cfg.name] = trace.Generate(rand.New(rand.NewSource(cfg.seed)),
			benchGenConfig(cfg.ops, cfg.pLocked))
	}
	return out
}

// TestStampAllParallelMatchesSerial is the core differential: for every
// trace and worker count, StampAllParallel must produce clocks
// byte-identical to StampAll.
func TestStampAllParallelMatchesSerial(t *testing.T) {
	for name, tr := range differentialTraces(t) {
		serial := rawCopy(tr)
		if err := StampAll(serial); err != nil {
			t.Fatalf("%s: serial: %v", name, err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			par := rawCopy(tr)
			if err := StampAllParallel(par, workers); err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			requireSameClocks(t, serial, par)
		}
	}
}

// TestStampAllParallelPostCoversPrefix checks the per-span hook: the
// post(lo, hi) calls must tile the stamped range exactly once.
func TestStampAllParallelPostCoversPrefix(t *testing.T) {
	tr := differentialTraces(t)["action-big"]
	par := rawCopy(tr)
	covered := make([]int32, len(par.Events))
	err := StampAllParallelPost(par, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			covered[i]++ // disjoint ranges: no two goroutines share an index
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range covered {
		if n != 1 {
			t.Fatalf("event %d covered %d times", i, n)
		}
	}
}

// TestParallelStamperChunked drives the synchronous chunked stamper with
// pathological chunk sizes (1, 3, 7, ...) so segment snapshots constantly
// cross chunk boundaries, and requires byte-identical clocks throughout.
func TestParallelStamperChunked(t *testing.T) {
	for name, tr := range differentialTraces(t) {
		serial := rawCopy(tr)
		if err := StampAll(serial); err != nil {
			t.Fatalf("%s: serial: %v", name, err)
		}
		for _, chunk := range []int{1, 3, 7, 64, 1000} {
			par := rawCopy(tr)
			ps := NewParallelStamper(3)
			for lo := 0; lo < len(par.Events); lo += chunk {
				hi := lo + chunk
				if hi > len(par.Events) {
					hi = len(par.Events)
				}
				n, err := ps.StampChunk(par.Events[lo:hi])
				if err != nil {
					t.Fatalf("%s chunk=%d at %d: %v", name, chunk, lo, err)
				}
				if n != hi-lo {
					t.Fatalf("%s chunk=%d at %d: stamped %d of %d", name, chunk, lo, n, hi-lo)
				}
			}
			ps.Engine().VerifySnapshots()
			requireSameClocks(t, serial, par)
		}
	}
}

// TestStampAllParallelErrors checks stop-at-first-error parity: same error
// text as the serial stamper and a fully stamped valid prefix.
func TestStampAllParallelErrors(t *testing.T) {
	cases := map[string]*trace.Trace{}

	forkTwice := &trace.Trace{}
	forkTwice.Append(trace.Fork(0, 1))
	forkTwice.Append(trace.Write(1, 1))
	forkTwice.Append(trace.Fork(0, 1))
	cases["fork-twice"] = forkTwice

	orphanRecv := &trace.Trace{}
	orphanRecv.Append(trace.Write(0, 1))
	orphanRecv.Append(trace.Recv(0, 3))
	cases["orphan-recv"] = orphanRecv

	unknownJoin := &trace.Trace{}
	unknownJoin.Append(trace.Write(0, 1))
	unknownJoin.Append(trace.Join(0, 9))
	cases["unknown-join"] = unknownJoin

	for name, tr := range cases {
		serial := rawCopy(tr)
		serr := StampAll(serial)
		if serr == nil {
			t.Fatalf("%s: serial stamp unexpectedly succeeded", name)
		}
		for _, workers := range []int{1, 4} {
			par := rawCopy(tr)
			perr := StampAllParallel(par, workers)
			if perr == nil {
				t.Fatalf("%s workers=%d: parallel stamp unexpectedly succeeded", name, workers)
			}
			if serr.Error() != perr.Error() {
				t.Fatalf("%s workers=%d: error mismatch:\n  serial:   %v\n  parallel: %v",
					name, workers, serr, perr)
			}
			requireSameClocks(t, serial, par)
		}
	}
}

// TestParallelStreamMatchesStream compares the pipelined chunked stream
// against the serial Stream event by event, across worker counts and
// chunk sizes that force cross-chunk segment carry.
func TestParallelStreamMatchesStream(t *testing.T) {
	for name, tr := range differentialTraces(t) {
		want := rawCopy(tr)
		ss := NewStream(want.Source())
		var serial []trace.Event
		for {
			e, err := ss.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%s: serial stream: %v", name, err)
			}
			serial = append(serial, e)
		}
		for _, tc := range []struct{ workers, chunk int }{
			{1, 7}, {2, 3}, {4, 64}, {3, 100000},
		} {
			src := rawCopy(tr).Source()
			ps := NewParallelStream(src, ParallelStreamConfig{Workers: tc.workers, ChunkSize: tc.chunk})
			i := 0
			for {
				e, err := ps.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("%s workers=%d chunk=%d: %v", name, tc.workers, tc.chunk, err)
				}
				if i >= len(serial) {
					t.Fatalf("%s: parallel stream yields extra event %d", name, i)
				}
				if !slices.Equal(serial[i].Clock, e.Clock) {
					t.Fatalf("%s workers=%d chunk=%d event %d (%s): clock mismatch: %v vs %v",
						name, tc.workers, tc.chunk, i, e.String(), serial[i].Clock, e.Clock)
				}
				i++
			}
			if i != len(serial) {
				t.Fatalf("%s workers=%d chunk=%d: got %d events, want %d", name, tc.workers, tc.chunk, i, len(serial))
			}
			if ps.Events() != len(serial) {
				t.Fatalf("%s: Events() = %d, want %d", name, ps.Events(), len(serial))
			}
		}
	}
}

// TestParallelStreamChunksAndRoutes exercises the chunk-level API: route
// bytes computed by the workers, chunk retain/release recycling, and the
// trace-order guarantee.
func TestParallelStreamChunksAndRoutes(t *testing.T) {
	tr := differentialTraces(t)["action"]
	want := rawCopy(tr)
	if err := StampAll(want); err != nil {
		t.Fatal(err)
	}
	src := rawCopy(tr).Source()
	ps := NewParallelStream(src, ParallelStreamConfig{
		Workers:   3,
		ChunkSize: 37,
		Route:     func(e *trace.Event) uint8 { return uint8(e.Thread) + 1 },
	})
	pos := 0
	var retained []*Chunk
	for {
		c, err := ps.NextChunk()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(c.Routes) != len(c.Events) {
			t.Fatalf("chunk routes len %d, events %d", len(c.Routes), len(c.Events))
		}
		for i := range c.Events {
			e := &c.Events[i]
			if e.Seq != pos {
				t.Fatalf("out of order: event %d has seq %d", pos, e.Seq)
			}
			if !slices.Equal(want.Events[pos].Clock, e.Clock) {
				t.Fatalf("event %d: clock mismatch", pos)
			}
			if c.Routes[i] != uint8(e.Thread)+1 {
				t.Fatalf("event %d: route %d, want %d", pos, c.Routes[i], uint8(e.Thread)+1)
			}
			pos++
		}
		c.Retain() // second holder: keep alive past the consumer release
		retained = append(retained, c)
		c.Release()
	}
	if pos != len(want.Events) {
		t.Fatalf("streamed %d events, want %d", pos, len(want.Events))
	}
	// Retained chunks must still be intact after the stream finished.
	seq := 0
	for _, c := range retained {
		for i := range c.Events {
			if c.Events[i].Seq != seq {
				t.Fatalf("retained chunk corrupted at seq %d", seq)
			}
			seq++
		}
		c.Release()
	}
}

// TestParallelStreamError checks that a mid-stream stamping error delivers
// the stamped prefix first and then the positioned error, like Stream.
func TestParallelStreamError(t *testing.T) {
	tr := &trace.Trace{}
	tr.Append(trace.Fork(0, 1))
	tr.Append(trace.Write(1, 1))
	tr.Append(trace.Write(0, 2))
	tr.Append(trace.Recv(1, 5)) // no pending send: stamping error at seq 3
	tr.Append(trace.Write(1, 9))

	for _, chunk := range []int{1, 2, 100} {
		src := rawCopy(tr).Source()
		ps := NewParallelStream(src, ParallelStreamConfig{Workers: 2, ChunkSize: chunk})
		var got []trace.Event
		var err error
		for {
			var e trace.Event
			e, err = ps.Next()
			if err != nil {
				break
			}
			got = append(got, e)
		}
		if err == io.EOF {
			t.Fatalf("chunk=%d: error swallowed", chunk)
		}
		if !strings.Contains(err.Error(), "event 3") || !strings.Contains(err.Error(), "no pending send") {
			t.Fatalf("chunk=%d: unexpected error %v", chunk, err)
		}
		if len(got) != 3 {
			t.Fatalf("chunk=%d: delivered %d events before the error, want 3", chunk, len(got))
		}
		for i, e := range got {
			if e.Clock == nil {
				t.Fatalf("chunk=%d: event %d unstamped", chunk, i)
			}
		}
	}
}

// TestParallelStreamClose abandons a stream mid-flight; the goroutines
// must unwind without deadlocking (the test would time out otherwise).
func TestParallelStreamClose(t *testing.T) {
	tr := differentialTraces(t)["action-big"]
	src := rawCopy(tr).Source()
	ps := NewParallelStream(src, ParallelStreamConfig{Workers: 4, ChunkSize: 16})
	if _, err := ps.Next(); err != nil {
		t.Fatal(err)
	}
	ps.Close()
	ps.Close() // idempotent
}
