//go:build !clockcheck

package hb

import "repro/internal/vclock"

// ClockCheck reports whether this binary enforces the Event.Clock
// immutability contract at runtime. Build with -tags=clockcheck to turn the
// no-op guard below into real snapshot poisoning (see clockcheck_on.go).
const ClockCheck = false

// snapGuard is compiled out in regular builds: zero size, no-op methods,
// fully inlinable, so the stamping fast path pays nothing for the debug
// machinery.
type snapGuard struct{}

func (snapGuard) record(vclock.VC) int { return 0 }
func (snapGuard) verify(int)           {}
func (snapGuard) verifyAll()           {}
