package hb

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// DefaultChunkSize is the events-per-chunk target of ParallelStream. Large
// enough to amortize the per-chunk skeleton bookkeeping and channel hops,
// small enough that a few in-flight chunks bound memory.
const DefaultChunkSize = 4096

// ParallelStreamConfig configures a ParallelStream.
type ParallelStreamConfig struct {
	// Workers is the body-pass worker pool size; values below 1 mean 1.
	Workers int
	// ChunkSize is the events-per-chunk target (DefaultChunkSize if <= 0).
	ChunkSize int
	// Route, when set, is evaluated by the body-pass workers for every
	// event of a chunk (sync events included) and collected into
	// Chunk.Routes. The pipeline uses it to compute shard routing in
	// parallel, so dispatch needs no extra pass over the events.
	Route func(*trace.Event) uint8
	// Obs is the registry the stream's engine, stamper, and worker-pool
	// instruments record into (an rd2d session scope); nil means
	// obs.Default.
	Obs *obs.Registry
}

// Chunk is one stamped run of events delivered by a ParallelStream. The
// consumer receives it holding one reference; Retain/Release manage
// additional holders (pipeline shards reading events out of the shared
// chunk), and the final Release recycles the buffers into the stream's
// free list. Events and Routes are read-only for all holders.
type Chunk struct {
	Events []trace.Event
	// Routes holds the per-event routing byte when the stream was
	// configured with a Route func; len(Routes) == len(Events) then.
	Routes []uint8

	log  []boundary
	base []vclock.VC
	wg   sync.WaitGroup
	refs atomic.Int32
	ps   *ParallelStream
}

// Retain adds a reference to the chunk, keeping its buffers alive until
// the matching Release.
func (c *Chunk) Retain() { c.refs.Add(1) }

// Release drops a reference; the last release recycles the chunk. The
// caller must not touch the chunk afterwards.
func (c *Chunk) Release() {
	if c.refs.Add(-1) != 0 {
		return
	}
	c.Events = c.Events[:0]
	c.Routes = c.Routes[:0]
	c.log = c.log[:0]
	c.base = c.base[:0]
	select {
	case c.ps.free <- c:
	default: // free list full: let the GC have it
	}
}

// outMsg carries one delivery from the sequencer to the consumer: a
// stamped chunk, and on the final delivery of a failed stream, the error
// (attached to the partial chunk when the failing chunk had a stamped
// prefix, or to a nil chunk otherwise).
type outMsg struct {
	c   *Chunk
	err error
}

// ParallelStream is the pipelined form of two-pass stamping: a filler
// goroutine reads chunks from the source and runs the serial skeleton
// pass, a persistent worker pool stamps chunk bodies (and computes
// routes), and a sequencer delivers finished chunks in trace order. The
// skeleton pass of chunk N+1 overlaps the body pass and downstream
// consumption of chunk N, so the serial fraction of the front end shrinks
// to the sync-event walk.
//
// It is a trace.Source (Next) and a chunk source (NextChunk); use one or
// the other, not both. Not safe for concurrent consumers.
type ParallelStream struct {
	cfg  ParallelStreamConfig
	en   *Engine
	ob   *pstampObs
	jobs chan bodyJob
	seq  chan outMsg
	out  chan outMsg
	free chan *Chunk
	quit chan struct{}
	once sync.Once

	cur    *Chunk // chunk Next is iterating
	pos    int
	n      int
	sticky error
}

// bodyJob is one worker-span of a chunk's body pass.
type bodyJob struct {
	c      *Chunk
	lo, hi int
}

// NewParallelStream starts the filler, sequencer, and worker goroutines
// over src. The source is owned by the stream from here on. Call Close to
// tear the goroutines down if the stream is abandoned before io.EOF or an
// error is observed.
func NewParallelStream(src trace.Source, cfg ParallelStreamConfig) *ParallelStream {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = DefaultChunkSize
	}
	ps := &ParallelStream{
		cfg:  cfg,
		en:   NewObs(cfg.Obs),
		ob:   newPStampObs(cfg.Obs),
		jobs: make(chan bodyJob, cfg.Workers*2),
		seq:  make(chan outMsg, 2),
		out:  make(chan outMsg, 2),
		free: make(chan *Chunk, cfg.Workers+6),
		quit: make(chan struct{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		go ps.worker()
	}
	go ps.sequence()
	go ps.fill(src)
	return ps
}

// Engine exposes the happens-before engine. The filler goroutine owns it
// while the stream runs; callers may only use it after NextChunk/Next has
// returned io.EOF or an error (the filler has exited by then).
func (ps *ParallelStream) Engine() *Engine { return ps.en }

// Events returns the number of events handed out via Next.
func (ps *ParallelStream) Events() int { return ps.n }

// Close tears down the stream's goroutines. It is only needed when the
// consumer abandons the stream before draining it; after io.EOF or an
// error it is a harmless no-op. Outstanding retained chunks stay valid.
func (ps *ParallelStream) Close() { ps.once.Do(func() { close(ps.quit) }) }

// worker stamps body-pass spans until the jobs channel closes. The
// park/idle metrics separate "pool starved waiting for the skeleton pass"
// from useful work.
func (ps *ParallelStream) worker() {
	for {
		var j bodyJob
		var ok bool
		select {
		case j, ok = <-ps.jobs:
		default:
			ps.ob.parks.Inc()
			idle := ps.ob.idle.Start()
			j, ok = <-ps.jobs
			ps.ob.idle.ObserveSince(idle)
		}
		if !ok {
			return
		}
		c := j.c
		var routes []uint8
		if ps.cfg.Route != nil {
			routes = c.Routes
		}
		stampRange(c.Events, c.log, c.base, j.lo, j.hi, ps.cfg.Route, routes)
		c.wg.Done()
	}
}

// sequence delivers chunks to the consumer in trace order, waiting for
// each chunk's body pass to finish first. Ordering is inherited from the
// seq channel: the filler enqueues chunks in the order it read them.
func (ps *ParallelStream) sequence() {
	defer close(ps.out)
	for m := range ps.seq {
		if m.c != nil {
			m.c.wg.Wait()
		}
		select {
		case ps.out <- m:
		case <-ps.quit:
			if m.c != nil {
				m.c.Release()
			}
			// Keep draining so the filler can finish and close seq.
			for m := range ps.seq {
				if m.c != nil {
					m.c.wg.Wait()
					m.c.Release()
				}
			}
			return
		}
	}
}

// getChunk recycles a chunk from the free list or allocates a fresh one.
func (ps *ParallelStream) getChunk() *Chunk {
	select {
	case c := <-ps.free:
		return c
	default:
		return &Chunk{ps: ps}
	}
}

// fill is the filler goroutine: read a chunk, skeleton-stamp it, dispatch
// its body spans to the pool, hand it to the sequencer, advance the carry
// table, repeat. On a source or stamping error the stamped prefix is
// delivered first and the error rides the same message.
func (ps *ParallelStream) fill(src trace.Source) {
	defer close(ps.seq)
	defer close(ps.jobs)
	stamper := &ParallelStamper{en: ps.en, workers: ps.cfg.Workers, ob: ps.ob}
	for {
		c := ps.getChunk()
		var srcErr error
		for len(c.Events) < ps.cfg.ChunkSize {
			e, err := src.Next()
			if err != nil {
				srcErr = err
				break
			}
			c.Events = append(c.Events, e)
		}
		n, stampErr := stamper.skeleton(c.Events)
		// fin, when non-nil, ends the stream after this delivery: either
		// the first source/stamping error or a clean io.EOF.
		var fin error
		switch {
		case stampErr != nil:
			bad := c.Events[n]
			fin = fmt.Errorf("event %d (%s): %w", bad.Seq, bad.String(), stampErr)
		case srcErr == io.EOF:
			ps.en.VerifySnapshots()
			fin = io.EOF
		default:
			fin = srcErr
		}
		// Only the skeleton-valid prefix is stamped and delivered.
		c.Events = c.Events[:n]
		if n == 0 {
			c.Release() // nothing to deliver; recycle the empty chunk
			if fin != nil && fin != io.EOF {
				ps.emit(outMsg{err: fin})
			}
			return
		}
		if ps.cfg.Route != nil {
			if cap(c.Routes) < n {
				c.Routes = make([]uint8, n)
			} else {
				c.Routes = c.Routes[:n]
			}
		}
		// Snapshot the carry state into the chunk, then advance it for the
		// next chunk: workers read c.base/c.log while the skeleton pass
		// mutates stamper.table and appends to a fresh log.
		c.base = append(c.base, stamper.table...)
		c.log = append(c.log, stamper.log...)
		stamper.advance()
		c.refs.Store(1)
		cuts := split(n, ps.cfg.Workers)
		c.wg.Add(len(cuts) - 1)
		for w := 0; w+1 < len(cuts); w++ {
			ps.jobs <- bodyJob{c: c, lo: cuts[w], hi: cuts[w+1]}
		}
		if !ps.emit(outMsg{c: c, err: fin}) {
			return
		}
		if fin != nil {
			return
		}
	}
}

// emit sends a delivery to the sequencer, aborting on Close. It reports
// whether the send happened.
func (ps *ParallelStream) emit(m outMsg) bool {
	select {
	case ps.seq <- m:
		return true
	case <-ps.quit:
		if m.c != nil {
			m.c.wg.Wait()
			m.c.Release()
		}
		return false
	}
}

// NextChunk returns the next stamped chunk (the caller holds one reference
// and must Release it), io.EOF at clean end of stream, or the first
// source/stamping error. When the failing chunk had a stamped prefix, that
// partial chunk is returned first and the error is returned by the
// following call.
func (ps *ParallelStream) NextChunk() (*Chunk, error) {
	if ps.sticky != nil {
		err := ps.sticky
		return nil, err
	}
	m, ok := <-ps.out
	if !ok {
		ps.sticky = io.EOF
		return nil, io.EOF
	}
	if m.c != nil {
		if m.err != nil {
			ps.sticky = m.err
		}
		return m.c, nil
	}
	ps.sticky = m.err
	return nil, m.err
}

// Next implements trace.Source over the chunk stream: events are handed
// out one at a time in trace order, chunks are released as they drain.
// The returned event's Clock obeys the package immutability contract.
func (ps *ParallelStream) Next() (trace.Event, error) {
	for ps.cur == nil || ps.pos >= len(ps.cur.Events) {
		if ps.cur != nil {
			ps.cur.Release()
			ps.cur = nil
		}
		c, err := ps.NextChunk()
		if err != nil {
			return trace.Event{}, err
		}
		ps.cur, ps.pos = c, 0
	}
	e := ps.cur.Events[ps.pos]
	ps.pos++
	ps.n++
	return e, nil
}
