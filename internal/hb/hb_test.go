package hb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
	"repro/internal/vclock"
)

func mustStamp(t *testing.T, tr *trace.Trace) {
	t.Helper()
	if err := StampAll(tr); err != nil {
		t.Fatal(err)
	}
}

func TestForkOrdersParentBeforeChild(t *testing.T) {
	tr := trace.NewBuilder().
		Get(0, 0, trace.StrValue("k"), trace.NilValue). // before fork
		Fork(0, 1).
		Get(1, 0, trace.StrValue("k"), trace.NilValue). // child
		Get(0, 0, trace.StrValue("k"), trace.NilValue). // parent after fork
		Trace()
	mustStamp(t, tr)
	before, child, after := tr.Events[0].Clock, tr.Events[2].Clock, tr.Events[3].Clock
	if !before.LEQ(child) {
		t.Error("pre-fork parent event must happen before child events")
	}
	if !child.Concurrent(after) {
		t.Error("child and post-fork parent events must be concurrent")
	}
}

func TestJoinOrdersChildBeforeParent(t *testing.T) {
	tr := trace.NewBuilder().
		Fork(0, 1).
		Get(1, 0, trace.StrValue("k"), trace.NilValue).
		Join(0, 1).
		Size(0, 0, 0).
		Trace()
	mustStamp(t, tr)
	child, after := tr.Events[1].Clock, tr.Events[3].Clock
	if !child.LEQ(after) {
		t.Error("joined child's events must happen before parent's later events")
	}
}

func TestLockOrdersCriticalSections(t *testing.T) {
	tr := trace.NewBuilder().
		Fork(0, 1).Fork(0, 2).
		Acquire(1, 0).
		Get(1, 0, trace.StrValue("k"), trace.NilValue).
		Release(1, 0).
		Acquire(2, 0).
		Get(2, 0, trace.StrValue("k"), trace.NilValue).
		Release(2, 0).
		Trace()
	mustStamp(t, tr)
	first, second := tr.Events[3].Clock, tr.Events[6].Clock
	if !first.LEQ(second) {
		t.Error("critical sections on the same lock must be ordered")
	}
}

func TestDifferentLocksDoNotOrder(t *testing.T) {
	tr := trace.NewBuilder().
		Fork(0, 1).Fork(0, 2).
		Acquire(1, 0).
		Get(1, 0, trace.StrValue("k"), trace.NilValue).
		Release(1, 0).
		Acquire(2, 1).
		Get(2, 0, trace.StrValue("k"), trace.NilValue).
		Release(2, 1).
		Trace()
	mustStamp(t, tr)
	first, second := tr.Events[3].Clock, tr.Events[6].Clock
	if !first.Concurrent(second) {
		t.Error("critical sections on different locks must stay concurrent")
	}
}

func TestFig3Structure(t *testing.T) {
	// The execution of Fig 3: main forks τ2 and τ3; both put 'a.com'; main
	// joins both and calls size. The two puts must be concurrent, and both
	// must happen before the size.
	aCom := trace.StrValue("a.com")
	tr := trace.NewBuilder().
		Fork(0, 1).Fork(0, 2).
		Put(2, 0, aCom, trace.IntValue(1), trace.NilValue).
		Put(1, 0, aCom, trace.IntValue(2), trace.IntValue(1)).
		JoinAll(0, 1, 2).
		Size(0, 0, 1).
		Trace()
	mustStamp(t, tr)
	a1, a2 := tr.Events[2].Clock, tr.Events[3].Clock
	a3 := tr.Events[6].Clock
	if !a1.Concurrent(a2) {
		t.Errorf("a1 %v and a2 %v must be concurrent", a1, a2)
	}
	if !a1.LEQ(a3) || !a2.LEQ(a3) {
		t.Errorf("a1 %v and a2 %v must both precede a3 %v", a1, a2, a3)
	}
}

func TestSameThreadOrdered(t *testing.T) {
	tr := trace.NewBuilder().
		Get(0, 0, trace.StrValue("a"), trace.NilValue).
		Get(0, 0, trace.StrValue("b"), trace.NilValue).
		Trace()
	mustStamp(t, tr)
	if tr.Events[0].Clock.Concurrent(tr.Events[1].Clock) {
		t.Error("same-thread events are never concurrent")
	}
}

func TestErrors(t *testing.T) {
	en := New()
	ev := trace.Join(0, 9)
	if _, err := en.Process(&ev); err == nil {
		t.Error("join of unknown thread should fail")
	}
	f1 := trace.Fork(0, 1)
	if _, err := en.Process(&f1); err != nil {
		t.Fatal(err)
	}
	f2 := trace.Fork(0, 1)
	if _, err := en.Process(&f2); err == nil {
		t.Error("double fork should fail")
	}
	bad := trace.Event{Kind: trace.EventKind(99), Thread: 0}
	if _, err := en.Process(&bad); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestStampAllErrorMentionsEvent(t *testing.T) {
	tr := trace.NewBuilder().Fork(0, 1).Join(0, 7).Trace()
	if err := StampAll(tr); err == nil {
		t.Fatal("expected error")
	}
}

func TestThreadsAndLockClock(t *testing.T) {
	en := New()
	en.ThreadClock(0)
	en.ThreadClock(3)
	if en.Threads() != 2 {
		t.Fatalf("Threads = %d", en.Threads())
	}
	if !en.LockClock(5).Bottom() {
		t.Fatal("unreleased lock clock must be bottom")
	}
	rel := trace.Release(0, 5)
	if _, err := en.Process(&rel); err != nil {
		t.Fatal(err)
	}
	if en.LockClock(5).Bottom() {
		t.Fatal("released lock clock must carry the releaser's clock")
	}
}

func TestRootThreadsConcurrent(t *testing.T) {
	// Two threads that appear without any fork relation are incomparable.
	tr := trace.NewBuilder().
		Get(0, 0, trace.StrValue("k"), trace.NilValue).
		Get(1, 0, trace.StrValue("k"), trace.NilValue).
		Trace()
	mustStamp(t, tr)
	if !tr.Events[0].Clock.Concurrent(tr.Events[1].Clock) {
		t.Error("unrelated root threads must be concurrent")
	}
}

// reachable computes the reference happens-before relation of a well-formed
// trace as the transitive closure of program order, fork edges, join edges
// and lock-chain edges.
func reachable(tr *trace.Trace) [][]bool {
	n := tr.Len()
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	lastOf := map[vclock.Tid]int{}
	forkOf := map[vclock.Tid]int{}
	lastRel := map[trace.LockID]int{}
	for i, e := range tr.Events {
		if p, ok := lastOf[e.Thread]; ok {
			adj[p][i] = true
		} else if f, ok := forkOf[e.Thread]; ok {
			adj[f][i] = true
		}
		lastOf[e.Thread] = i
		switch e.Kind {
		case trace.ForkEvent:
			forkOf[e.Other] = i
		case trace.JoinEvent:
			if p, ok := lastOf[e.Other]; ok {
				adj[p][i] = true
			} else if f, ok := forkOf[e.Other]; ok {
				adj[f][i] = true
			}
		case trace.AcquireEvent:
			if p, ok := lastRel[e.Lock]; ok {
				adj[p][i] = true
			}
		case trace.ReleaseEvent:
			lastRel[e.Lock] = i
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !adj[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if adj[k][j] {
					adj[i][j] = true
				}
			}
		}
	}
	return adj
}

func TestPropClocksMatchReferenceHB(t *testing.T) {
	cfg := trace.DefaultGenConfig()
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := trace.Generate(r, cfg)
		if err := StampAll(tr); err != nil {
			t.Logf("stamp: %v", err)
			return false
		}
		reach := reachable(tr)
		for i := 0; i < tr.Len(); i++ {
			for j := i + 1; j < tr.Len(); j++ {
				ei, ej := tr.Events[i], tr.Events[j]
				if ei.Thread == ej.Thread {
					// Program order: clocks must not claim the reverse.
					if !ei.Clock.LEQ(ej.Clock) {
						t.Logf("seed %d: program order violated at %d,%d", seed, i, j)
						return false
					}
					continue
				}
				want := reach[i][j]
				got := ei.Clock.LEQ(ej.Clock)
				if got != want {
					t.Logf("seed %d: events %d(%s) and %d(%s): vc says %v, reference says %v",
						seed, i, ei.String(), j, ej.String(), got, want)
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkProcessAction(b *testing.B) {
	en := New()
	f := trace.Fork(0, 1)
	if _, err := en.Process(&f); err != nil {
		b.Fatal(err)
	}
	ev := trace.Act(1, trace.Action{Obj: 0, Method: "get",
		Args: []trace.Value{trace.StrValue("k")}, Rets: []trace.Value{trace.NilValue}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := en.Process(&ev); err != nil {
			b.Fatal(err)
		}
	}
}

func TestChannelOrdersSendBeforeRecv(t *testing.T) {
	tr := trace.NewBuilder().
		Fork(0, 1).Fork(0, 2).
		Put(1, 0, trace.StrValue("k"), trace.IntValue(1), trace.NilValue).
		Trace()
	tr.Append(trace.Send(1, 0))
	tr.Append(trace.Recv(2, 0))
	tr.Append(trace.Act(2, trace.Action{Obj: 0, Method: "get",
		Args: []trace.Value{trace.StrValue("k")}, Rets: []trace.Value{trace.IntValue(1)}}))
	mustStamp(t, tr)
	putClock := tr.Events[2].Clock
	getClock := tr.Events[5].Clock
	if !putClock.LEQ(getClock) {
		t.Errorf("channel handoff must order put %s before get %s", putClock, getClock)
	}
}

func TestChannelFIFOMatching(t *testing.T) {
	// Two sends by different threads, two receives: first recv pairs with
	// first send.
	tr := &trace.Trace{}
	tr.Append(trace.Fork(0, 1))
	tr.Append(trace.Fork(0, 2))
	tr.Append(trace.Fork(0, 3))
	tr.Append(trace.Send(1, 0)) // msg 1
	tr.Append(trace.Send(2, 0)) // msg 2
	tr.Append(trace.Recv(3, 0)) // gets msg 1: ordered after t1's send only
	mustStamp(t, tr)
	send1 := tr.Events[3].Clock
	send2 := tr.Events[4].Clock
	recv := tr.Events[5].Clock
	if !send1.LEQ(recv) {
		t.Error("first send must order before first recv")
	}
	if send2.LEQ(recv) {
		t.Error("second send must stay concurrent with first recv")
	}
}

func TestRecvWithoutSendFails(t *testing.T) {
	tr := &trace.Trace{}
	tr.Append(trace.Recv(0, 0))
	if err := StampAll(tr); err == nil {
		t.Fatal("recv without send must fail")
	}
}
