//go:build clockcheck

package hb

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestClockCheckCatchesSnapshotMutation verifies the poisoned build does
// its job: writing through a stamped Event.Clock — a violation of the
// immutability contract — must panic at the next verification point.
func TestClockCheckCatchesSnapshotMutation(t *testing.T) {
	en := New()
	ev := trace.Act(0, trace.Action{Obj: 0, Method: "get",
		Args: []trace.Value{trace.StrValue("k")}, Rets: []trace.Value{trace.NilValue}})
	if _, err := en.Process(&ev); err != nil {
		t.Fatal(err)
	}

	ev.Clock[0] += 100 // the forbidden write

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("clockcheck build must panic when a frozen snapshot is mutated")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "clockcheck") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	en.VerifySnapshots()
}

// TestClockCheckCatchesMutationAtRollover checks the incremental detection
// point: the owning thread's next segment rollover re-verifies the snapshot
// being retired, so violations surface even without an explicit
// VerifySnapshots call.
func TestClockCheckCatchesMutationAtRollover(t *testing.T) {
	en := New()
	act := trace.Act(0, trace.Action{Obj: 0, Method: "size",
		Rets: []trace.Value{trace.IntValue(0)}})
	if _, err := en.Process(&act); err != nil {
		t.Fatal(err)
	}
	act.Clock[0] += 7

	defer func() {
		if recover() == nil {
			t.Fatal("segment rollover must re-verify the retiring snapshot")
		}
	}()
	rel := trace.Release(0, 0)
	en.Process(&rel) // release rolls the segment: mutable() verifies first
}
