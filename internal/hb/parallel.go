package hb

import (
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// This file implements two-pass parallel stamping. The serial engine
// (Process/StampAll) interleaves two very different kinds of work: the
// synchronization events that actually change engine state (fork, join,
// acquire, release, send, recv, end — a small minority of real traces) and
// the body events (actions, reads, writes, begin, die) whose entire
// processing is `e.Clock = <current segment snapshot>`. The segment
// discipline of PR 2 makes the split exploitable: within a segment every
// body event receives the same frozen snapshot, so once the segment
// boundary clocks are known the body stamps are embarrassingly parallel.
//
// Pass 1 (the skeleton pass) walks the chunk in order, feeding sync events
// through Process exactly as the serial stamper would and, at each body
// event, freezing the acting thread's segment — but deferring the
// `e.Clock =` store. The first body event of each (thread, segment) pair
// appends one boundary{pos, tid, snap} record to the boundary log. Pass 2
// partitions the chunk into contiguous subranges; each worker replays the
// boundary-log prefix for its range into a thread → snapshot table and then
// stamps its body events from the table. Workers write disjoint events and
// never touch the engine, so the passes are race-free by construction, and
// because the skeleton pass mutates engine state in exactly the order the
// serial stamper does, the stamped clocks are not merely equal but the
// *same* shared snapshot values — byte-identical, pointer-identical, and
// subject to the same clockcheck poisoning (DESIGN.md §10).

// Parallel-stamping instruments: segments is the boundary-log length (one
// per thread segment containing body events), body_events the stamps
// deferred to workers. The skeleton/body timer split shows how much of the
// front end the two-pass refactor actually parallelized; parks and idle_ns
// expose worker-pool starvation in the streaming path. On top of the
// hb.pstamp.* inventory, the skeleton and body passes double as the
// pipeline's stage.skeleton / stage.stamp spans (obs.Span), so scoped
// per-session stage latency exists wherever the stamper records.
//
// The instruments are resolved from a registry per stamper/stream
// (pstampObs), defaulting to obs.Default; sessions pass their own scope.
type pstampObs struct {
	chunks   *obs.Counter
	segments *obs.Counter
	bodies   *obs.Counter
	skeleton *obs.Timer
	body     *obs.Timer
	parks    *obs.Counter
	idle     *obs.Timer

	spanSkeleton *obs.Span
	spanStamp    *obs.Span
}

func newPStampObs(reg *obs.Registry) *pstampObs {
	if reg == nil {
		reg = obs.Default
	}
	return &pstampObs{
		chunks:       reg.Counter("hb.pstamp.chunks"),
		segments:     reg.Counter("hb.pstamp.segments"),
		bodies:       reg.Counter("hb.pstamp.body_events"),
		skeleton:     reg.Timer("hb.pstamp.skeleton_ns"),
		body:         reg.Timer("hb.pstamp.body_ns"),
		parks:        reg.Counter("hb.pstamp.worker_parks"),
		idle:         reg.Timer("hb.pstamp.worker_idle_ns"),
		spanSkeleton: reg.Span(obs.StageSkeleton),
		spanStamp:    reg.Span(obs.StageStamp),
	}
}

// boundary marks the first body event of one thread segment within a
// chunk: every body event of thread tid from pos until tid's next boundary
// (or the end of the chunk) is stamped with snap.
type boundary struct {
	pos  int32
	tid  vclock.Tid
	snap vclock.VC
}

// isBody reports whether k is a body event: one whose processing does not
// change engine state and reduces to stamping the segment snapshot.
func isBody(k trace.EventKind) bool {
	switch k {
	case trace.ActionEvent, trace.ReadEvent, trace.WriteEvent,
		trace.BeginEvent, trace.DieEvent:
		return true
	}
	return false
}

// IsBodyEvent reports whether k is a body event (see isBody) — exported so
// serial stamping loops (the rd2d session worker) can attribute per-event
// time to the same skeleton/stamp stage spans as the two-pass engine.
func IsBodyEvent(k trace.EventKind) bool { return isBody(k) }

// minWorkerSpan is the smallest per-worker subrange worth a goroutine;
// chunks smaller than two spans are stamped inline by the caller.
const minWorkerSpan = 256

// ParallelStamper stamps successive chunks of one logical trace with the
// two-pass scheme, carrying engine and segment state across chunks. It is
// the synchronous building block: StampChunk returns only when every event
// of the chunk is stamped, which suits callers that interleave stamping
// with per-chunk work of their own (the rd2d session worker). For
// pipelined overlap of skeleton and body passes across chunks, use
// ParallelStream.
//
// Not safe for concurrent use; successive StampChunk calls must come from
// one goroutine (or be externally serialized).
type ParallelStamper struct {
	en      *Engine
	workers int
	ob      *pstampObs
	logged  []int       // per-tid: gen+1 of the segment last boundary-logged
	table   []vclock.VC // per-tid snapshot as of the current chunk start
	log     []boundary  // scratch boundary log, reused across chunks
}

// NewParallelStamper returns a stamper over a fresh engine using the given
// worker count for body passes (values below 1 are treated as 1),
// recording into the process-global metrics.
func NewParallelStamper(workers int) *ParallelStamper {
	return NewParallelStamperObs(workers, nil)
}

// NewParallelStamperObs is NewParallelStamper recording into reg (a
// session scope in rd2d; nil means obs.Default). The underlying engine's
// segment counters land in the same registry.
func NewParallelStamperObs(workers int, reg *obs.Registry) *ParallelStamper {
	if workers < 1 {
		workers = 1
	}
	return &ParallelStamper{en: NewObs(reg), workers: workers, ob: newPStampObs(reg)}
}

// Engine exposes the underlying happens-before engine (for MeetLive-based
// compaction and thread accounting). The engine is owned by the stamper;
// callers may query it between StampChunk calls but must not feed it
// events of their own.
func (ps *ParallelStamper) Engine() *Engine { return ps.en }

// skeleton runs pass 1 over events: sync events go through en.Process
// (stamping them in place), body events freeze the segment and append a
// boundary record on first sight per segment. It returns the number of
// events processed and the first error. Body events are counted but not
// stamped; bodies get their clocks in pass 2.
func (ps *ParallelStamper) skeleton(events []trace.Event) (int, error) {
	start := ps.ob.skeleton.Start()
	en := ps.en
	bodies := 0
	if cap(ps.log) == 0 && len(events) >= 4*minWorkerSpan {
		// One boundary per thread segment with bodies; sizing for one
		// segment per few events skips most of the append-doubling churn
		// on the first (or only) chunk without overcommitting on
		// sync-light traces.
		ps.log = make([]boundary, 0, len(events)/4)
	}
	for i := range events {
		e := &events[i]
		if !isBody(e.Kind) {
			if _, err := en.Process(e); err != nil {
				ps.ob.skeleton.ObserveSince(start)
				ps.ob.spanSkeleton.End(start, i-bodies)
				ps.ob.bodies.Add(uint64(bodies))
				return i, err
			}
			continue
		}
		bodies++
		ts := en.state(e.Thread)
		snap := en.freeze(ts)
		t := int(e.Thread)
		for len(ps.logged) <= t {
			ps.logged = append(ps.logged, 0)
		}
		if ps.logged[t] != ts.gen+1 {
			ps.logged[t] = ts.gen + 1
			ps.log = append(ps.log, boundary{pos: int32(i), tid: e.Thread, snap: snap})
		}
	}
	ps.ob.skeleton.ObserveSince(start)
	ps.ob.spanSkeleton.End(start, len(events)-bodies)
	ps.ob.bodies.Add(uint64(bodies))
	ps.ob.segments.Add(uint64(len(ps.log)))
	ps.ob.chunks.Inc()
	return len(events), nil
}

// setSnap records tid's segment snapshot in a thread table, growing it as
// needed.
func setSnap(tbl []vclock.VC, tid vclock.Tid, snap vclock.VC) []vclock.VC {
	for len(tbl) <= int(tid) {
		tbl = append(tbl, nil)
	}
	tbl[tid] = snap
	return tbl
}

// stampRange runs pass 2 over events[lo:hi]: it builds the thread →
// snapshot table as of position lo (chunk-start base plus the boundary-log
// prefix) and stamps every body event in the range. Ranges are disjoint
// and the table is private, so concurrent calls over one chunk are
// race-free. If route is non-nil, routes[i] = route(&events[i]) is filled
// for the whole range (sync events included), letting pipeline callers
// compute shard routing inside the worker.
func stampRange(events []trace.Event, log []boundary, base []vclock.VC, lo, hi int,
	route func(*trace.Event) uint8, routes []uint8) {
	tbl := make([]vclock.VC, len(base))
	copy(tbl, base)
	li := 0
	for li < len(log) && int(log[li].pos) < lo {
		tbl = setSnap(tbl, log[li].tid, log[li].snap)
		li++
	}
	for i := lo; i < hi; i++ {
		if li < len(log) && int(log[li].pos) == i {
			tbl = setSnap(tbl, log[li].tid, log[li].snap)
			li++
		}
		e := &events[i]
		if isBody(e.Kind) {
			// The table entry is the same shared snapshot the serial
			// stamper would assign; a missing entry would be a skeleton
			// bug and panics on the nil/short index.
			e.Clock = tbl[e.Thread]
		}
		if route != nil {
			routes[i] = route(e)
		}
	}
}

// advance folds the chunk's boundary log into the carry table: after the
// call, table[t] is t's segment snapshot as of the end of the chunk, which
// is exactly the base the next chunk's body pass starts from. Entries for
// threads whose segment rolled over mid-chunk are stale until their next
// boundary, but stale entries are never read: a body event after any
// clock-changing sync event always has a fresh boundary record first.
func (ps *ParallelStamper) advance() {
	for _, b := range ps.log {
		ps.table = setSnap(ps.table, b.tid, b.snap)
	}
	ps.log = ps.log[:0]
}

// split partitions n events into near-equal contiguous worker spans,
// capping the part count so no span is smaller than minWorkerSpan.
func split(n, workers int) []int {
	parts := workers
	if parts > n/minWorkerSpan {
		parts = n / minWorkerSpan
	}
	if parts < 1 {
		parts = 1
	}
	cuts := make([]int, parts+1)
	for i := 1; i < parts; i++ {
		cuts[i] = i * n / parts
	}
	cuts[parts] = n
	return cuts
}

// StampChunk stamps the next chunk of the trace in place and returns the
// number of events stamped. On error the valid prefix (all events before
// the returned index) is fully stamped, matching the serial stamper's
// stop-at-first-error behavior. The error is not position-wrapped; callers
// prepend the event context they track (sequence number or trace index).
func (ps *ParallelStamper) StampChunk(events []trace.Event) (int, error) {
	return ps.StampChunkPost(events, nil)
}

// StampChunkPost is StampChunk plus a per-span hook: post(lo, hi) runs in
// the worker goroutine after events[lo:hi] is stamped, before the chunk is
// considered done. The pipeline uses it to hash-route its span without an
// extra pass over the chunk.
func (ps *ParallelStamper) StampChunkPost(events []trace.Event, post func(lo, hi int)) (int, error) {
	n, err := ps.skeleton(events)
	ps.stampBodies(events[:n], nil, nil, post)
	ps.advance()
	return n, err
}

// stampBodies runs pass 2 over a skeleton-processed prefix, fanning out to
// worker goroutines when the chunk is large enough to pay for them.
func (ps *ParallelStamper) stampBodies(events []trace.Event, route func(*trace.Event) uint8,
	routes []uint8, post func(lo, hi int)) {
	n := len(events)
	if n == 0 {
		return
	}
	start := ps.ob.body.Start()
	cuts := split(n, ps.workers)
	if len(cuts) == 2 {
		stampRange(events, ps.log, ps.table, 0, n, route, routes)
		if post != nil {
			post(0, n)
		}
		ps.ob.body.ObserveSince(start)
		ps.ob.spanStamp.End(start, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w+1 < len(cuts); w++ {
		lo, hi := cuts[w], cuts[w+1]
		wg.Add(1)
		go func() {
			defer wg.Done()
			stampRange(events, ps.log, ps.table, lo, hi, route, routes)
			if post != nil {
				post(lo, hi)
			}
		}()
	}
	wg.Wait()
	ps.ob.body.ObserveSince(start)
	ps.ob.spanStamp.End(start, n)
}

// StampAllParallel stamps the whole trace with the two-pass engine,
// producing clocks byte-identical to StampAll (the same shared snapshot
// values, the same freeze/rollover discipline, the same clockcheck
// poisoning). workers bounds the body-pass parallelism; 1 degrades to a
// two-pass serial stamp. Under -tags=clockcheck every snapshot is
// re-verified after the run.
func StampAllParallel(tr *trace.Trace, workers int) error {
	return StampAllParallelPost(tr, workers, nil)
}

// StampAllParallelPost is StampAllParallel with stampChunkPost's per-span
// hook: post(lo, hi) runs in the worker goroutine once tr.Events[lo:hi] is
// stamped. On error, post still covers the stamped valid prefix.
func StampAllParallelPost(tr *trace.Trace, workers int, post func(lo, hi int)) error {
	ps := NewParallelStamper(workers)
	n, err := ps.StampChunkPost(tr.Events, post)
	ps.en.VerifySnapshots()
	if err != nil {
		return fmt.Errorf("event %d (%s): %w", n, tr.Events[n].String(), err)
	}
	return nil
}
