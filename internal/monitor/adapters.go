package monitor

import (
	"fmt"

	"repro/internal/ap"
	"repro/internal/atomicity"
	"repro/internal/core"
	"repro/internal/fasttrack"
	"repro/internal/pipeline"
	"repro/internal/specs"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// RD2 glues a core.Detector to a monitored runtime: it forwards events and
// registers each newly created object's access point representation by kind.
// It is the tool of the paper's evaluation ("RD2").
type RD2 struct {
	Detector *core.Detector
	reps     map[string]ap.Rep
}

// NewRD2 wraps a commutativity race detector with the standard spec library
// (dict, set, counter, queue, register, multiset).
func NewRD2(cfg core.Config) *RD2 {
	r := &RD2{Detector: core.New(cfg), reps: map[string]ap.Rep{}}
	for _, name := range specs.Names() {
		r.reps[name] = specs.MustRep(name)
	}
	return r
}

// RegisterKind installs (or overrides) the representation used for objects
// of the given kind.
func (r *RD2) RegisterKind(kind string, rep ap.Rep) {
	r.reps[kind] = rep
}

// WrapReps rewrites every registered representation through wrap — the
// fault-injection hook (e.g. faultinject.WrapAllReps) and, generally, the
// way to interpose on Touch for all kinds at once. Call before the
// workload creates objects.
func (r *RD2) WrapReps(wrap func(ap.Rep) ap.Rep) {
	for kind, rep := range r.reps {
		r.reps[kind] = wrap(rep)
	}
}

// Process implements Analysis.
func (r *RD2) Process(e *trace.Event) error { return r.Detector.Process(e) }

// ObjectCreated implements ObjectObserver.
func (r *RD2) ObjectCreated(obj trace.ObjID, kind string) {
	if rep, ok := r.reps[kind]; ok {
		r.Detector.Register(obj, rep)
	}
}

// Compact implements Compactor: the runtime triggers it after joins so the
// detector sheds points that can never race again.
func (r *RD2) Compact(threshold vclock.VC) int {
	return r.Detector.Compact(threshold)
}

// AttachRD2 creates an RD2 analysis, attaches it to the runtime, and
// returns it.
func AttachRD2(rt *Runtime, cfg core.Config) *RD2 {
	r := NewRD2(cfg)
	rt.Attach(r)
	return r
}

// RD2Parallel glues the sharded detection pipeline to a monitored runtime:
// happens-before stamping stays on the runtime's serial emit path, while
// conflict checking runs on the pipeline's shard goroutines. Close must be
// called after the workload quiesces (all monitored threads joined) to
// flush the shards and merge results.
type RD2Parallel struct {
	Pipeline *pipeline.Pipeline
	reps     map[string]ap.Rep
}

// NewRD2Parallel wraps a detection pipeline with the standard spec library.
func NewRD2Parallel(cfg pipeline.Config) *RD2Parallel {
	r := &RD2Parallel{Pipeline: pipeline.New(cfg), reps: map[string]ap.Rep{}}
	for _, name := range specs.Names() {
		r.reps[name] = specs.MustRep(name)
	}
	return r
}

// RegisterKind installs (or overrides) the representation used for objects
// of the given kind. The rep must be immutable (shards share it).
func (r *RD2Parallel) RegisterKind(kind string, rep ap.Rep) {
	r.reps[kind] = rep
}

// WrapReps rewrites every registered representation through wrap (see
// RD2.WrapReps). Wrapped reps must stay shard-safe.
func (r *RD2Parallel) WrapReps(wrap func(ap.Rep) ap.Rep) {
	for kind, rep := range r.reps {
		r.reps[kind] = wrap(rep)
	}
}

// Process implements Analysis. Calls arrive serialized under the runtime's
// emit lock — exactly the single-producer discipline the pipeline needs.
func (r *RD2Parallel) Process(e *trace.Event) error { return r.Pipeline.Process(e) }

// ObjectCreated implements ObjectObserver; the registration travels the
// owning shard's ordered stream ahead of the object's first action.
func (r *RD2Parallel) ObjectCreated(obj trace.ObjID, kind string) {
	if rep, ok := r.reps[kind]; ok {
		r.Pipeline.Register(obj, rep)
	}
}

// Compact implements Compactor; the request is asynchronous (see
// pipeline.Pipeline.Compact).
func (r *RD2Parallel) Compact(threshold vclock.VC) int {
	return r.Pipeline.Compact(threshold)
}

// Close flushes and joins the shards; results are available afterwards via
// r.Pipeline. Idempotent.
func (r *RD2Parallel) Close() error { return r.Pipeline.Close() }

// AttachRD2Parallel creates a sharded RD2 analysis, attaches it to the
// runtime, and returns it.
func AttachRD2Parallel(rt *Runtime, cfg pipeline.Config) *RD2Parallel {
	r := NewRD2Parallel(cfg)
	rt.Attach(r)
	return r
}

// ReplayRecorded re-analyzes a recorded execution offline: the recorded
// trace is re-stamped from scratch through the two-pass parallel front end
// (pipeline.Config.StampWorkers) and re-detected on the sharded pipeline,
// with every monitored object re-registered by kind. Live analyses attached
// during recording are untouched — the recorded events are copied with
// their clocks stripped, so the live run's shared snapshots stay immutable.
// The returned pipeline is closed: results are ready to read. Use it to
// re-check a live session's verdicts with different detection settings
// (shard count, stamp workers, retention caps) without re-running the
// workload.
func ReplayRecorded(rt *Runtime, cfg pipeline.Config) (*pipeline.Pipeline, error) {
	tr := rt.Trace()
	if tr == nil {
		return nil, fmt.Errorf("monitor: no recorded trace (call Record before the workload)")
	}
	ev := make([]trace.Event, len(tr.Events))
	copy(ev, tr.Events)
	for i := range ev {
		ev[i].Clock = nil
	}
	p := pipeline.New(cfg)
	reps := map[string]ap.Rep{}
	for _, name := range specs.Names() {
		reps[name] = specs.MustRep(name)
	}
	for _, ok := range rt.ObjectKinds() {
		if rep, found := reps[ok.Kind]; found {
			p.Register(ok.Obj, rep)
		}
	}
	err := p.RunTrace(&trace.Trace{Events: ev})
	return p, err
}

// AttachFastTrack creates a FASTTRACK detector, attaches it, and returns it.
func AttachFastTrack(rt *Runtime) *fasttrack.Detector {
	d := fasttrack.New(nil)
	rt.Attach(d)
	return d
}

// Atomicity glues the commutativity atomicity checker to a monitored
// runtime, registering representations by object kind like RD2 does.
type Atomicity struct {
	Checker *atomicity.Checker
	reps    map[string]ap.Rep
}

// NewAtomicity wraps an atomicity checker with the standard spec library.
func NewAtomicity() *Atomicity {
	a := &Atomicity{Checker: atomicity.New(), reps: map[string]ap.Rep{}}
	for _, name := range specs.Names() {
		a.reps[name] = specs.MustRep(name)
	}
	return a
}

// Process implements Analysis.
func (a *Atomicity) Process(e *trace.Event) error { return a.Checker.Process(e) }

// ObjectCreated implements ObjectObserver.
func (a *Atomicity) ObjectCreated(obj trace.ObjID, kind string) {
	if rep, ok := a.reps[kind]; ok {
		a.Checker.Register(obj, rep)
	}
}

// AttachAtomicity creates an atomicity analysis, attaches it, and returns
// it.
func AttachAtomicity(rt *Runtime) *Atomicity {
	a := NewAtomicity()
	rt.Attach(a)
	return a
}
