package monitor

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/ap"
	"repro/internal/core"
	"repro/internal/trace"
)

// connections runs the Fig 1 program: one thread per host, each storing a
// connection into a shared dictionary, then joinall and size.
func connections(rt *Runtime, hosts []string) int64 {
	main := rt.Main()
	dict := rt.NewDict()
	var threads []*Thread
	for i, h := range hosts {
		host := trace.StrValue(h)
		conn := trace.IntValue(int64(1000 + i))
		threads = append(threads, main.Go(func(t *Thread) {
			dict.Put(t, host, conn)
		}))
	}
	main.JoinAll(threads...)
	return dict.Size(main)
}

func TestFig1DuplicateHostsRace(t *testing.T) {
	rt := NewRuntime()
	rd2 := AttachRD2(rt, core.Config{})
	n := connections(rt, []string{"a.com", "a.com"})
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("size = %d, want 1", n)
	}
	races := rd2.Detector.Races()
	if len(races) != 1 {
		t.Fatalf("races = %v, want exactly the duplicate-host put/put race", races)
	}
	if !strings.Contains(races[0].SecondPoint, "a.com") {
		t.Errorf("racing point %q should mention the key", races[0].SecondPoint)
	}
}

func TestFig1DistinctHostsNoRace(t *testing.T) {
	rt := NewRuntime()
	rd2 := AttachRD2(rt, core.Config{})
	n := connections(rt, []string{"a.com", "b.com", "c.com"})
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("size = %d, want 3", n)
	}
	if races := rd2.Detector.Races(); len(races) != 0 {
		t.Fatalf("unexpected races: %v", races)
	}
}

func TestUninstrumentedEmitsNothing(t *testing.T) {
	rt := NewRuntime()
	if rt.Instrumented() {
		t.Fatal("fresh runtime must be uninstrumented")
	}
	n := connections(rt, []string{"a.com", "a.com"})
	if n != 1 {
		t.Fatalf("size = %d", n)
	}
	if rt.Trace() != nil {
		t.Fatal("no trace should be recorded")
	}
}

func TestRecordingRoundTrips(t *testing.T) {
	rt := NewRuntime()
	rt.Record()
	connections(rt, []string{"a.com", "b.com"})
	tr := rt.Trace()
	if tr == nil || tr.Len() == 0 {
		t.Fatal("recording empty")
	}
	back, err := trace.ParseString(trace.Format(tr))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round trip %d -> %d events", tr.Len(), back.Len())
	}
	// The recorded trace replays to the same verdict.
	rd2 := NewRD2(core.Config{})
	for i := 0; i < tr.Len(); i++ {
		// Object kinds are notified at creation; replay registers manually.
		rd2.ObjectCreated(0, "dict")
	}
	if err := rd2.Detector.RunTrace(back); err != nil {
		t.Fatal(err)
	}
	if len(rd2.Detector.Races()) != 0 {
		t.Fatal("distinct hosts should stay race-free on replay")
	}
}

func TestLocksOrderCriticalSections(t *testing.T) {
	rt := NewRuntime()
	rd2 := AttachRD2(rt, core.Config{})
	main := rt.Main()
	dict := rt.NewDict()
	lock := rt.NewLock()
	key := trace.StrValue("k")
	var threads []*Thread
	for i := 0; i < 4; i++ {
		v := trace.IntValue(int64(i + 1))
		threads = append(threads, main.Go(func(t *Thread) {
			lock.Lock(t)
			dict.Put(t, key, v)
			lock.Unlock(t)
		}))
	}
	main.JoinAll(threads...)
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	if races := rd2.Detector.Races(); len(races) != 0 {
		t.Fatalf("lock-protected puts raced: %v", races)
	}
}

func TestCellFastTrack(t *testing.T) {
	rt := NewRuntime()
	ft := AttachFastTrack(rt)
	main := rt.Main()
	cell := rt.NewCell()
	u := main.Go(func(t *Thread) { cell.Store(t, 1) })
	v := main.Go(func(t *Thread) { cell.Store(t, 2) })
	main.JoinAll(u, v)
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	if len(ft.Races()) == 0 {
		t.Fatal("concurrent unsynchronized stores must race")
	}
	// Synchronized accesses are clean.
	rt2 := NewRuntime()
	ft2 := AttachFastTrack(rt2)
	main2 := rt2.Main()
	cell2 := rt2.NewCell()
	lock := rt2.NewLock()
	a := main2.Go(func(t *Thread) { lock.Lock(t); cell2.Add(t, 1); lock.Unlock(t) })
	b := main2.Go(func(t *Thread) { lock.Lock(t); cell2.Add(t, 1); lock.Unlock(t) })
	main2.JoinAll(a, b)
	if err := rt2.Err(); err != nil {
		t.Fatal(err)
	}
	if len(ft2.Races()) != 0 {
		t.Fatalf("locked adds raced: %v", ft2.Races())
	}
	if got := cell2.Load(main2); got != 2 {
		t.Fatalf("cell = %d, want 2", got)
	}
}

func TestBothDetectorsSimultaneously(t *testing.T) {
	rt := NewRuntime()
	rd2 := AttachRD2(rt, core.Config{})
	ft := AttachFastTrack(rt)
	main := rt.Main()
	dict := rt.NewDict()
	cell := rt.NewCell()
	key := trace.StrValue("k")
	u := main.Go(func(t *Thread) {
		dict.Put(t, key, trace.IntValue(1))
		cell.Store(t, 1)
	})
	v := main.Go(func(t *Thread) {
		dict.Put(t, key, trace.IntValue(2))
		cell.Store(t, 2)
	})
	main.JoinAll(u, v)
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rd2.Detector.Races()) == 0 {
		t.Error("RD2 should flag the dictionary race")
	}
	if len(ft.Races()) == 0 {
		t.Error("FASTTRACK should flag the cell race")
	}
}

func TestPutIfAbsent(t *testing.T) {
	rt := NewRuntime()
	rd2 := AttachRD2(rt, core.Config{})
	main := rt.Main()
	dict := rt.NewDict()
	k := trace.StrValue("k")
	got, added := dict.PutIfAbsent(main, k, trace.IntValue(1))
	if !added || got != trace.IntValue(1) {
		t.Fatalf("first PutIfAbsent = %v, %v", got, added)
	}
	got, added = dict.PutIfAbsent(main, k, trace.IntValue(2))
	if added || got != trace.IntValue(1) {
		t.Fatalf("second PutIfAbsent = %v, %v", got, added)
	}
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	_ = rd2
}

func TestDictRemovalAndGet(t *testing.T) {
	rt := NewRuntime()
	AttachRD2(rt, core.Config{})
	main := rt.Main()
	dict := rt.NewDict()
	k := trace.StrValue("k")
	if prev := dict.Put(main, k, trace.IntValue(5)); !prev.IsNil() {
		t.Fatalf("prev = %v", prev)
	}
	if got := dict.Get(main, k); got != trace.IntValue(5) {
		t.Fatalf("get = %v", got)
	}
	if prev := dict.Put(main, k, trace.NilValue); prev != trace.IntValue(5) {
		t.Fatalf("removal prev = %v", prev)
	}
	if got := dict.Get(main, k); !got.IsNil() {
		t.Fatalf("after removal get = %v", got)
	}
	if n := dict.Size(main); n != 0 {
		t.Fatalf("size = %d", n)
	}
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestMonitoredSetCounterQueueRegister(t *testing.T) {
	rt := NewRuntime()
	rd2 := AttachRD2(rt, core.Config{})
	main := rt.Main()

	s := rt.NewSet()
	if !s.Add(main, trace.IntValue(1)) || s.Add(main, trace.IntValue(1)) {
		t.Error("set add semantics broken")
	}
	if !s.Contains(main, trace.IntValue(1)) || s.Size(main) != 1 {
		t.Error("set query semantics broken")
	}
	if !s.Remove(main, trace.IntValue(1)) || s.Remove(main, trace.IntValue(1)) {
		t.Error("set remove semantics broken")
	}

	c := rt.NewCounter()
	if c.Add(main, 5) != 0 || c.Read(main) != 5 || c.Add(main, 2) != 5 {
		t.Error("counter semantics broken")
	}

	q := rt.NewQueue()
	q.Enq(main, trace.IntValue(1))
	q.Enq(main, trace.IntValue(2))
	if q.Len(main) != 2 || q.Deq(main) != trace.IntValue(1) || q.Deq(main) != trace.IntValue(2) || !q.Deq(main).IsNil() {
		t.Error("queue semantics broken")
	}

	r := rt.NewRegister()
	if !r.Write(main, trace.IntValue(7)).IsNil() || r.Read(main) != trace.IntValue(7) {
		t.Error("register semantics broken")
	}

	s.Kill(main)
	c.Kill(main)
	q.Kill(main)
	r.Kill(main)
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	if n := len(rd2.Detector.Races()); n != 0 {
		t.Fatalf("sequential usage raced: %v", rd2.Detector.Races())
	}
}

func TestConcurrentSetRace(t *testing.T) {
	rt := NewRuntime()
	rd2 := AttachRD2(rt, core.Config{})
	main := rt.Main()
	s := rt.NewSet()
	x := trace.IntValue(42)
	u := main.Go(func(t *Thread) { s.Add(t, x) })
	v := main.Go(func(t *Thread) { s.Add(t, x) })
	main.JoinAll(u, v)
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	// One add succeeds, one fails: success does not commute with failure.
	if len(rd2.Detector.Races()) == 0 {
		t.Fatal("duplicate concurrent adds must race")
	}
}

func TestKillReclaims(t *testing.T) {
	rt := NewRuntime()
	rd2 := AttachRD2(rt, core.Config{})
	main := rt.Main()
	dict := rt.NewDict()
	dict.Put(main, trace.StrValue("k"), trace.IntValue(1))
	before := rd2.Detector.Stats().ActivePoints
	dict.Kill(main)
	after := rd2.Detector.Stats().ActivePoints
	if before == 0 || after != 0 {
		t.Fatalf("active %d -> %d; kill should reclaim", before, after)
	}
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownKindSurfacesError(t *testing.T) {
	// An analysis with no representation for a kind leaves the object
	// unregistered; the first action on it surfaces a sticky runtime error.
	rt := NewRuntime()
	rd2 := &RD2{Detector: core.New(core.Config{}), reps: map[string]ap.Rep{}}
	rt.Attach(rd2)
	main := rt.Main()
	dict := rt.NewDict()
	dict.Put(main, trace.StrValue("k"), trace.IntValue(1))
	if err := rt.Err(); err == nil || !strings.Contains(err.Error(), "no registered representation") {
		t.Fatalf("want registration error, got %v", err)
	}
}

func TestRegisterKindOverride(t *testing.T) {
	rt := NewRuntime()
	rd2 := NewRD2(core.Config{})
	rd2.RegisterKind("dict", ap.DictRep{})
	rt.Attach(rd2)
	main := rt.Main()
	dict := rt.NewDict()
	dict.Put(main, trace.StrValue("k"), trace.IntValue(1))
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestHighContentionStress(t *testing.T) {
	rt := NewRuntime()
	rd2 := AttachRD2(rt, core.Config{MaxRaces: 100})
	main := rt.Main()
	dict := rt.NewDict()
	lock := rt.NewLock()
	var threads []*Thread
	for i := 0; i < 8; i++ {
		i := i
		threads = append(threads, main.Go(func(t *Thread) {
			for j := 0; j < 50; j++ {
				k := trace.IntValue(int64(j % 10))
				if j%3 == 0 {
					lock.Lock(t)
					dict.Put(t, k, trace.IntValue(int64(i*100+j)))
					lock.Unlock(t)
				} else {
					dict.Get(t, k)
				}
			}
		}))
	}
	main.JoinAll(threads...)
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	// Unlocked gets race with locked puts; the detector must survive the
	// load and report something.
	if rd2.Detector.Stats().Races == 0 {
		t.Error("expected races under contention")
	}
}

func TestManyThreadsManyObjects(t *testing.T) {
	rt := NewRuntime()
	rd2 := AttachRD2(rt, core.Config{})
	main := rt.Main()
	var dicts []*Dict
	for i := 0; i < 4; i++ {
		dicts = append(dicts, rt.NewDict())
	}
	var wgThreads []*Thread
	for i := 0; i < 6; i++ {
		i := i
		wgThreads = append(wgThreads, main.Go(func(t *Thread) {
			d := dicts[i%len(dicts)]
			d.Put(t, trace.IntValue(int64(i)), trace.IntValue(1))
		}))
	}
	main.JoinAll(wgThreads...)
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	if n := len(rd2.Detector.Races()); n != 0 {
		t.Fatalf("distinct keys on separate objects raced: %v", n)
	}
}

func TestEmitConcurrencySafety(t *testing.T) {
	// Hammer the runtime from many goroutines to shake out ordering bugs
	// (run with -race in CI).
	rt := NewRuntime()
	AttachRD2(rt, core.Config{MaxRaces: 10})
	main := rt.Main()
	dict := rt.NewDict()
	var wg sync.WaitGroup
	var threads []*Thread
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		threads = append(threads, main.Go(func(t *Thread) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				dict.Put(t, trace.IntValue(int64((i*7+j)%13)), trace.IntValue(int64(j)))
			}
		}))
	}
	wg.Wait()
	main.JoinAll(threads...)
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestRuntimeCompactsAfterJoins(t *testing.T) {
	rt := NewRuntime()
	rd2 := AttachRD2(rt, core.Config{})
	main := rt.Main()
	dict := rt.NewDict()
	var workers []*Thread
	for i := 0; i < 4; i++ {
		k := trace.IntValue(int64(i))
		workers = append(workers, main.Go(func(th *Thread) {
			dict.Put(th, k, trace.IntValue(1))
		}))
	}
	main.JoinAll(workers...)
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	st := rd2.Detector.Stats()
	if st.ActivePoints != 0 {
		t.Errorf("active points = %d after joinall; runtime compaction should have dropped them (peak %d)",
			st.ActivePoints, st.PeakActive)
	}
	if st.Reclaimed == 0 {
		t.Error("no points reclaimed")
	}
}

func TestChannelSynchronizesHandoff(t *testing.T) {
	rt := NewRuntime()
	rd2 := AttachRD2(rt, core.Config{})
	main := rt.Main()
	dict := rt.NewDict()
	ch := rt.NewChan(1)
	k := trace.StrValue("k")
	producer := main.Go(func(t *Thread) {
		dict.Put(t, k, trace.IntValue(1))
		ch.Send(t, trace.IntValue(0)) // publish
	})
	consumer := main.Go(func(t *Thread) {
		ch.Recv(t) // acquire
		dict.Put(t, k, trace.IntValue(2))
	})
	main.JoinAll(producer, consumer)
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	if n := rd2.Detector.Stats().Races; n != 0 {
		t.Fatalf("channel-ordered puts raced: %d", n)
	}
	// Without the channel, the same puts race.
	rt2 := NewRuntime()
	rd22 := AttachRD2(rt2, core.Config{})
	main2 := rt2.Main()
	dict2 := rt2.NewDict()
	p2 := main2.Go(func(t *Thread) { dict2.Put(t, k, trace.IntValue(1)) })
	c2 := main2.Go(func(t *Thread) { dict2.Put(t, k, trace.IntValue(2)) })
	main2.JoinAll(p2, c2)
	if err := rt2.Err(); err != nil {
		t.Fatal(err)
	}
	if n := rd22.Detector.Stats().Races; n == 0 {
		t.Fatal("unordered puts must race")
	}
}

func TestChannelBufferAndBlocking(t *testing.T) {
	rt := NewRuntime()
	main := rt.Main()
	ch := rt.NewChan(2)
	ch.Send(main, trace.IntValue(1))
	ch.Send(main, trace.IntValue(2))
	if got := ch.Recv(main); got != trace.IntValue(1) {
		t.Fatalf("recv = %v", got)
	}
	if got := ch.Recv(main); got != trace.IntValue(2) {
		t.Fatalf("recv = %v", got)
	}
	// Capacity clamp.
	if c := rt.NewChan(0); c.cap != 1 {
		t.Fatalf("cap = %d", c.cap)
	}
	// Blocking send/recv across threads.
	ch2 := rt.NewChan(1)
	w := main.Go(func(t *Thread) {
		ch2.Send(t, trace.IntValue(10))
		ch2.Send(t, trace.IntValue(11)) // blocks until main receives
	})
	if got := ch2.Recv(main); got != trace.IntValue(10) {
		t.Fatalf("recv = %v", got)
	}
	if got := ch2.Recv(main); got != trace.IntValue(11) {
		t.Fatalf("recv = %v", got)
	}
	main.Join(w)
}
