package monitor

import (
	"hash/fnv"
	"sync"

	"repro/internal/trace"
)

// hashValue hashes a trace.Value for shard selection.
func hashValue(v trace.Value) uint64 {
	h := fnv.New64a()
	switch v.Kind() {
	case trace.Str:
		_, _ = h.Write([]byte{1})
		_, _ = h.Write([]byte(v.Str()))
	default:
		b := [9]byte{byte(v.Kind())}
		x := uint64(v.Int())
		for i := 0; i < 8; i++ {
			b[i+1] = byte(x >> (8 * i))
		}
		_, _ = h.Write(b[:])
	}
	return h.Sum64()
}

// Dict is a monitored concurrent dictionary — the ConcurrentHashMap
// equivalent of the paper's evaluation. Its abstract state is the total map
// of Fig 5 (absent keys read nil); put(k, nil) removes the key. The
// implementation is shard-locked for realistic concurrency; every operation
// emits an action event matching the Fig 6 specification signatures.
type Dict struct {
	rt     *Runtime
	id     trace.ObjID
	shards []dictShard
}

type dictShard struct {
	mu sync.Mutex
	m  map[trace.Value]trace.Value
}

// DictShards is the shard count of monitored dictionaries.
const DictShards = 16

// NewDict creates a monitored dictionary.
func (rt *Runtime) NewDict() *Dict {
	d := &Dict{rt: rt, id: rt.newObjID("dict"), shards: make([]dictShard, DictShards)}
	for i := range d.shards {
		d.shards[i].m = map[trace.Value]trace.Value{}
	}
	return d
}

// ID returns the dictionary's object id.
func (d *Dict) ID() trace.ObjID { return d.id }

func (d *Dict) shard(k trace.Value) *dictShard {
	return &d.shards[hashValue(k)%DictShards]
}

// Put associates k with v and returns the previous value (nil if absent).
// Putting nil removes the key.
func (d *Dict) Put(t *Thread, k, v trace.Value) trace.Value {
	s := d.shard(k)
	s.mu.Lock()
	prev, ok := s.m[k]
	if !ok {
		prev = trace.NilValue
	}
	if v.IsNil() {
		delete(s.m, k)
	} else {
		s.m[k] = v
	}
	d.rt.emit(trace.Act(t.ID, trace.Action{
		Obj: d.id, Method: "put",
		Args: []trace.Value{k, v},
		Rets: []trace.Value{prev},
	}))
	s.mu.Unlock()
	return prev
}

// Get returns the value associated with k (nil if absent).
func (d *Dict) Get(t *Thread, k trace.Value) trace.Value {
	s := d.shard(k)
	s.mu.Lock()
	v, ok := s.m[k]
	if !ok {
		v = trace.NilValue
	}
	d.rt.emit(trace.Act(t.ID, trace.Action{
		Obj: d.id, Method: "get",
		Args: []trace.Value{k},
		Rets: []trace.Value{v},
	}))
	s.mu.Unlock()
	return v
}

// PutIfAbsent stores v under k only when k is absent; it returns the value
// now associated with k and whether the store happened. At the event level
// it is a put (when it stores) or a get (when it does not), matching its
// observational behavior.
func (d *Dict) PutIfAbsent(t *Thread, k, v trace.Value) (trace.Value, bool) {
	s := d.shard(k)
	s.mu.Lock()
	cur, ok := s.m[k]
	if ok {
		d.rt.emit(trace.Act(t.ID, trace.Action{
			Obj: d.id, Method: "get",
			Args: []trace.Value{k},
			Rets: []trace.Value{cur},
		}))
		s.mu.Unlock()
		return cur, false
	}
	s.m[k] = v
	d.rt.emit(trace.Act(t.ID, trace.Action{
		Obj: d.id, Method: "put",
		Args: []trace.Value{k, v},
		Rets: []trace.Value{trace.NilValue},
	}))
	s.mu.Unlock()
	return v, true
}

// Size returns the number of present (non-nil) keys.
func (d *Dict) Size(t *Thread) int64 {
	for i := range d.shards {
		d.shards[i].mu.Lock()
	}
	var n int64
	for i := range d.shards {
		n += int64(len(d.shards[i].m))
	}
	d.rt.emit(trace.Act(t.ID, trace.Action{
		Obj: d.id, Method: "size",
		Rets: []trace.Value{trace.IntValue(n)},
	}))
	for i := len(d.shards) - 1; i >= 0; i-- {
		d.shards[i].mu.Unlock()
	}
	return n
}

// Kill reclaims the dictionary's analysis state (Section 5.3).
func (d *Dict) Kill(t *Thread) {
	d.rt.emit(trace.Die(t.ID, d.id))
}

// Set is a monitored concurrent set matching the specs.SetSrc signatures.
type Set struct {
	rt *Runtime
	id trace.ObjID
	mu sync.Mutex
	m  map[trace.Value]struct{}
}

// NewSet creates a monitored set.
func (rt *Runtime) NewSet() *Set {
	return &Set{rt: rt, id: rt.newObjID("set"), m: map[trace.Value]struct{}{}}
}

// ID returns the set's object id.
func (s *Set) ID() trace.ObjID { return s.id }

// Add inserts x, reporting whether it was newly added.
func (s *Set) Add(t *Thread, x trace.Value) bool {
	s.mu.Lock()
	_, present := s.m[x]
	if !present {
		s.m[x] = struct{}{}
	}
	s.rt.emit(trace.Act(t.ID, trace.Action{
		Obj: s.id, Method: "add",
		Args: []trace.Value{x},
		Rets: []trace.Value{trace.BoolValue(!present)},
	}))
	s.mu.Unlock()
	return !present
}

// Remove deletes x, reporting whether it was present.
func (s *Set) Remove(t *Thread, x trace.Value) bool {
	s.mu.Lock()
	_, present := s.m[x]
	delete(s.m, x)
	s.rt.emit(trace.Act(t.ID, trace.Action{
		Obj: s.id, Method: "remove",
		Args: []trace.Value{x},
		Rets: []trace.Value{trace.BoolValue(present)},
	}))
	s.mu.Unlock()
	return present
}

// Contains reports membership of x.
func (s *Set) Contains(t *Thread, x trace.Value) bool {
	s.mu.Lock()
	_, present := s.m[x]
	s.rt.emit(trace.Act(t.ID, trace.Action{
		Obj: s.id, Method: "contains",
		Args: []trace.Value{x},
		Rets: []trace.Value{trace.BoolValue(present)},
	}))
	s.mu.Unlock()
	return present
}

// Size returns the cardinality.
func (s *Set) Size(t *Thread) int64 {
	s.mu.Lock()
	n := int64(len(s.m))
	s.rt.emit(trace.Act(t.ID, trace.Action{
		Obj: s.id, Method: "size",
		Rets: []trace.Value{trace.IntValue(n)},
	}))
	s.mu.Unlock()
	return n
}

// Kill reclaims the set's analysis state.
func (s *Set) Kill(t *Thread) {
	s.rt.emit(trace.Die(t.ID, s.id))
}

// Counter is a monitored shared counter matching specs.CounterSrc.
type Counter struct {
	rt *Runtime
	id trace.ObjID
	mu sync.Mutex
	v  int64
}

// NewCounter creates a monitored counter.
func (rt *Runtime) NewCounter() *Counter {
	return &Counter{rt: rt, id: rt.newObjID("counter")}
}

// ID returns the counter's object id.
func (c *Counter) ID() trace.ObjID { return c.id }

// Add adds delta and returns the previous value.
func (c *Counter) Add(t *Thread, delta int64) int64 {
	c.mu.Lock()
	old := c.v
	c.v += delta
	c.rt.emit(trace.Act(t.ID, trace.Action{
		Obj: c.id, Method: "add",
		Args: []trace.Value{trace.IntValue(delta)},
		Rets: []trace.Value{trace.IntValue(old)},
	}))
	c.mu.Unlock()
	return old
}

// Read returns the current value.
func (c *Counter) Read(t *Thread) int64 {
	c.mu.Lock()
	v := c.v
	c.rt.emit(trace.Act(t.ID, trace.Action{
		Obj: c.id, Method: "read",
		Rets: []trace.Value{trace.IntValue(v)},
	}))
	c.mu.Unlock()
	return v
}

// Kill reclaims the counter's analysis state.
func (c *Counter) Kill(t *Thread) {
	c.rt.emit(trace.Die(t.ID, c.id))
}

// Queue is a monitored FIFO queue matching specs.QueueSrc.
type Queue struct {
	rt *Runtime
	id trace.ObjID
	mu sync.Mutex
	q  []trace.Value
}

// NewQueue creates a monitored queue.
func (rt *Runtime) NewQueue() *Queue {
	return &Queue{rt: rt, id: rt.newObjID("queue")}
}

// ID returns the queue's object id.
func (q *Queue) ID() trace.ObjID { return q.id }

// Enq appends x.
func (q *Queue) Enq(t *Thread, x trace.Value) {
	q.mu.Lock()
	q.q = append(q.q, x)
	q.rt.emit(trace.Act(t.ID, trace.Action{
		Obj: q.id, Method: "enq",
		Args: []trace.Value{x},
	}))
	q.mu.Unlock()
}

// Deq removes and returns the head (nil when empty).
func (q *Queue) Deq(t *Thread) trace.Value {
	q.mu.Lock()
	x := trace.NilValue
	if len(q.q) > 0 {
		x = q.q[0]
		q.q = q.q[1:]
	}
	q.rt.emit(trace.Act(t.ID, trace.Action{
		Obj: q.id, Method: "deq",
		Rets: []trace.Value{x},
	}))
	q.mu.Unlock()
	return x
}

// Len returns the queue length.
func (q *Queue) Len(t *Thread) int64 {
	q.mu.Lock()
	n := int64(len(q.q))
	q.rt.emit(trace.Act(t.ID, trace.Action{
		Obj: q.id, Method: "len",
		Rets: []trace.Value{trace.IntValue(n)},
	}))
	q.mu.Unlock()
	return n
}

// Kill reclaims the queue's analysis state.
func (q *Queue) Kill(t *Thread) {
	q.rt.emit(trace.Die(t.ID, q.id))
}

// Register is a monitored single-value register matching specs.RegisterSrc.
type Register struct {
	rt *Runtime
	id trace.ObjID
	mu sync.Mutex
	v  trace.Value
}

// NewRegister creates a monitored register (initially nil).
func (rt *Runtime) NewRegister() *Register {
	return &Register{rt: rt, id: rt.newObjID("register")}
}

// ID returns the register's object id.
func (r *Register) ID() trace.ObjID { return r.id }

// Write stores v and returns the previous value.
func (r *Register) Write(t *Thread, v trace.Value) trace.Value {
	r.mu.Lock()
	old := r.v
	r.v = v
	r.rt.emit(trace.Act(t.ID, trace.Action{
		Obj: r.id, Method: "write",
		Args: []trace.Value{v},
		Rets: []trace.Value{old},
	}))
	r.mu.Unlock()
	return old
}

// Read returns the current value.
func (r *Register) Read(t *Thread) trace.Value {
	r.mu.Lock()
	v := r.v
	r.rt.emit(trace.Act(t.ID, trace.Action{
		Obj: r.id, Method: "read",
		Rets: []trace.Value{v},
	}))
	r.mu.Unlock()
	return v
}

// Kill reclaims the register's analysis state.
func (r *Register) Kill(t *Thread) {
	r.rt.emit(trace.Die(t.ID, r.id))
}
