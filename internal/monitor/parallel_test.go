package monitor

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// TestParallelMatchesSerialLive attaches the serial detector and the
// sharded pipeline to the same runtime, so both consume the identical
// stamped event stream of a live concurrent workload, and asserts they
// agree on every verdict. This is the live-mode differential counterpart
// of the trace-replay tests in internal/pipeline.
func TestParallelMatchesSerialLive(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		rt := NewRuntime()
		serial := AttachRD2(rt, core.Config{})
		par := AttachRD2Parallel(rt, pipeline.Config{Shards: shards, BatchSize: 8})

		main := rt.Main()
		d1, d2 := rt.NewDict(), rt.NewDict()
		workers := make([]*Thread, 0, 4)
		for w := 0; w < 4; w++ {
			w := w
			workers = append(workers, main.Go(func(th *Thread) {
				for i := 0; i < 50; i++ {
					k := trace.IntValue(int64(i % 8))
					d1.Put(th, k, trace.IntValue(int64(w*100+i+1)))
					if i%3 == 0 {
						d2.Put(th, k, trace.IntValue(int64(i+1)))
					}
					d1.Get(th, k)
					if i%7 == 0 {
						d1.Size(th)
					}
				}
			}))
		}
		main.JoinAll(workers...)
		d1.Size(main)
		if err := rt.Err(); err != nil {
			t.Fatal(err)
		}
		if err := par.Close(); err != nil {
			t.Fatal(err)
		}

		name := fmt.Sprintf("shards=%d", shards)
		sst, pst := serial.Detector.Stats(), par.Pipeline.Stats()
		if pst.Races != sst.Races {
			t.Errorf("%s: races = %d, want %d", name, pst.Races, sst.Races)
		}
		if pst.Checks != sst.Checks {
			t.Errorf("%s: checks = %d, want %d", name, pst.Checks, sst.Checks)
		}
		if pst.Actions != sst.Actions {
			t.Errorf("%s: actions = %d, want %d", name, pst.Actions, sst.Actions)
		}
		if got, want := par.Pipeline.DistinctObjects(), serial.Detector.DistinctObjects(); got != want {
			t.Errorf("%s: distinct = %d, want %d", name, got, want)
		}

		wantRaces := append([]core.Race(nil), serial.Detector.Races()...)
		core.SortRaces(wantRaces)
		gotRaces := par.Pipeline.Races()
		if len(gotRaces) != len(wantRaces) {
			t.Fatalf("%s: %d retained races, want %d", name, len(gotRaces), len(wantRaces))
		}
		for i := range gotRaces {
			g, w := gotRaces[i], wantRaces[i]
			if g.Obj != w.Obj || g.FirstSeq != w.FirstSeq || g.SecondSeq != w.SecondSeq {
				t.Errorf("%s: race[%d] = (o%d,%d,%d), want (o%d,%d,%d)", name, i,
					g.Obj, g.FirstSeq, g.SecondSeq, w.Obj, w.FirstSeq, w.SecondSeq)
			}
		}
	}
}

// TestParallelCompactsThroughRuntime: the runtime's post-join compaction
// hook reaches the pipeline shards (asynchronously) without changing race
// verdicts.
func TestParallelCompactsThroughRuntime(t *testing.T) {
	rt := NewRuntime()
	par := AttachRD2Parallel(rt, pipeline.Config{Shards: 2})
	main := rt.Main()
	d := rt.NewDict()
	w := main.Go(func(th *Thread) {
		for i := 0; i < 30; i++ {
			d.Put(th, trace.IntValue(int64(i)), trace.IntValue(1))
		}
	})
	main.Join(w) // triggers Compact(MeetLive) on the emit path
	d.Size(main)
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	if err := par.Close(); err != nil {
		t.Fatal(err)
	}
	if par.Pipeline.Stats().Races != 0 {
		t.Errorf("joined workload raced: %v", par.Pipeline.Races())
	}
	if par.Pipeline.Stats().Reclaimed == 0 {
		t.Error("post-join compaction reclaimed nothing")
	}
}
