// Package monitor is the instrumentation layer of the reproduction — the
// role RoadRunner plays for the paper's RD2 tool. It provides a monitored
// runtime (threads, forks, joins, locks) and monitored shared objects
// (dictionaries, sets, counters, queues, registers, and raw memory cells)
// that are themselves thread-safe and emit a totally ordered, vector-clock
// stamped event stream to attached analyses.
//
// Workloads written against this package can run in three modes, matching
// the three columns of Table 2:
//
//	uninstrumented — no analyses attached: events are not even constructed
//	FASTTRACK      — a fasttrack.Detector attached: consumes read/write
//	RD2            — a core.Detector attached: consumes action events
//
// Both detectors can be attached simultaneously.
package monitor

import (
	"sync"
	"sync/atomic"

	"repro/internal/hb"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// monObs bundles the emission-path metrics: the events counter advances per
// emitted event; the stamping-vs-detection latency split is sampled (1
// event in 64) so the monitored hot path pays for the two monotonic clock
// reads only on sampled events, and never when obs is disabled. Runtimes
// built with NewRuntime record into the process-global set; NewRuntimeObs
// points one at a scope.
type monObs struct {
	emitted  *obs.Counter
	stampNs  *obs.Timer
	detectNs *obs.Timer
}

func newMonObs(reg *obs.Registry) *monObs {
	if reg == nil {
		reg = obs.Default
	}
	return &monObs{
		emitted:  reg.Counter("monitor.events"),
		stampNs:  reg.Timer("monitor.stamp_ns"),
		detectNs: reg.Timer("monitor.detect_ns"),
	}
}

// defaultMonObs is the process-global instrument set.
var defaultMonObs = newMonObs(nil)

// obsSampleMask selects the sampled events: Seq & mask == 0.
const obsSampleMask = 63

// Analysis consumes stamped events. core.Detector and fasttrack.Detector
// both satisfy it.
type Analysis interface {
	Process(e *trace.Event) error
}

// ObjectObserver is implemented by analyses that want to know when shared
// objects are created, e.g. to register an access point representation for
// the object's kind. See RD2Analysis.
type ObjectObserver interface {
	ObjectCreated(obj trace.ObjID, kind string)
}

// Compactor is implemented by analyses that can drop state dominated by
// every live thread's clock (core.Detector.Compact). The runtime invokes it
// after every join event with the meet of the live threads' clocks.
type Compactor interface {
	Compact(threshold vclock.VC) int
}

// Runtime is a monitored execution environment. All event emission is
// serialized under an internal mutex, which both orders the trace and
// stamps every event with the emitting thread's vector clock.
type Runtime struct {
	mu       sync.Mutex
	ob       *monObs
	hb       *hb.Engine
	analyses []Analysis
	record   *trace.Trace
	objKinds []ObjectKind
	seq      int
	err      error

	nextTid  int32
	nextObj  int32
	nextVar  int32
	nextLock int32
	nextChan int32

	instrumented atomic.Bool
	main         *Thread
}

// NewRuntime returns a monitored runtime with a main thread (t0).
func NewRuntime() *Runtime {
	return NewRuntimeObs(nil)
}

// NewRuntimeObs is NewRuntime with the emission-path and happens-before
// instruments resolved from reg (nil means obs.Default).
func NewRuntimeObs(reg *obs.Registry) *Runtime {
	rt := &Runtime{ob: defaultMonObs, hb: hb.NewObs(reg), nextTid: 1}
	if reg != nil {
		rt.ob = newMonObs(reg)
	}
	rt.main = &Thread{rt: rt, ID: 0, done: make(chan struct{})}
	return rt
}

// Attach registers an analysis. Must be called before any monitored
// activity; attaching an analysis turns instrumentation on.
func (rt *Runtime) Attach(a Analysis) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.analyses = append(rt.analyses, a)
	rt.instrumented.Store(true)
}

// Record turns on trace recording (implies instrumentation).
func (rt *Runtime) Record() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.record = &trace.Trace{}
	rt.instrumented.Store(true)
}

// Trace returns the recorded trace (nil unless Record was called).
func (rt *Runtime) Trace() *trace.Trace {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.record
}

// Err returns the first error reported by any analysis (sticky).
func (rt *Runtime) Err() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.err
}

// Main returns the main thread t0.
func (rt *Runtime) Main() *Thread { return rt.main }

// Instrumented reports whether events are being emitted.
func (rt *Runtime) Instrumented() bool { return rt.instrumented.Load() }

// emit stamps and dispatches one event. It is the single serialization
// point of the runtime. No-op when uninstrumented. The stamped clock is
// the acting thread's shared segment snapshot (see package hb): analyses
// and the recorded trace all alias it, and must only read it — the
// -tags=clockcheck build enforces this.
func (rt *Runtime) emit(e trace.Event) {
	if !rt.instrumented.Load() {
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	e.Seq = rt.seq
	rt.seq++
	rt.ob.emitted.Inc()
	sampled := obs.Enabled() && e.Seq&obsSampleMask == 0

	t0 := int64(0)
	if sampled {
		t0 = rt.ob.stampNs.Start()
	}
	if _, err := rt.hb.Process(&e); err != nil {
		if rt.err == nil {
			rt.err = err
		}
		return
	}
	rt.ob.stampNs.ObserveSince(t0)
	if rt.record != nil {
		rt.record.Append(e)
	}
	t1 := int64(0)
	if sampled {
		t1 = rt.ob.detectNs.Start()
	}
	for _, a := range rt.analyses {
		if err := a.Process(&e); err != nil && rt.err == nil {
			rt.err = err
		}
	}
	rt.ob.detectNs.ObserveSince(t1)
	if e.Kind == trace.JoinEvent {
		var threshold vclock.VC
		for _, a := range rt.analyses {
			if c, ok := a.(Compactor); ok {
				if threshold == nil {
					threshold = rt.hb.MeetLive()
				}
				c.Compact(threshold)
			}
		}
	}
}

// notifyObject tells object observers about a new object.
func (rt *Runtime) notifyObject(obj trace.ObjID, kind string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, a := range rt.analyses {
		if oo, ok := a.(ObjectObserver); ok {
			oo.ObjectCreated(obj, kind)
		}
	}
}

// Thread is a monitored thread. Operations on monitored objects take the
// acting thread so events carry the right thread id.
type Thread struct {
	rt   *Runtime
	ID   vclock.Tid
	done chan struct{}
}

// Runtime returns the owning runtime.
func (t *Thread) Runtime() *Runtime { return t.rt }

// Go forks a monitored thread running fn and returns its handle. The fork
// event is emitted before fn can start, establishing the happens-before
// edge of Table 1.
func (t *Thread) Go(fn func(*Thread)) *Thread {
	id := vclock.Tid(atomic.AddInt32(&t.rt.nextTid, 1) - 1)
	child := &Thread{rt: t.rt, ID: id, done: make(chan struct{})}
	t.rt.emit(trace.Fork(t.ID, id))
	go func() {
		defer close(child.done)
		fn(child)
	}()
	return child
}

// Join blocks until u terminates, then emits the join event that orders
// u's events before t's subsequent ones.
func (t *Thread) Join(u *Thread) {
	<-u.done
	t.rt.emit(trace.Join(t.ID, u.ID))
}

// JoinAll joins every thread, modeling the paper's joinall.
func (t *Thread) JoinAll(us ...*Thread) {
	for _, u := range us {
		t.Join(u)
	}
}

// Begin opens a transaction on this thread (consumed by atomicity
// analyses; ignored by the race detectors).
func (t *Thread) Begin() {
	t.rt.emit(trace.Event{Kind: trace.BeginEvent, Thread: t.ID})
}

// End closes the thread's open transaction.
func (t *Thread) End() {
	t.rt.emit(trace.Event{Kind: trace.EndEvent, Thread: t.ID})
}

// Atomic runs fn inside a Begin/End transaction span.
func (t *Thread) Atomic(fn func()) {
	t.Begin()
	defer t.End()
	fn()
}

// Lock is a monitored mutex.
type Lock struct {
	rt *Runtime
	id trace.LockID
	mu sync.Mutex
}

// NewLock creates a monitored lock.
func (rt *Runtime) NewLock() *Lock {
	return &Lock{rt: rt, id: trace.LockID(atomic.AddInt32(&rt.nextLock, 1) - 1)}
}

// Lock acquires the lock as thread t. The acquire event is emitted while
// holding the real mutex, after the matching release's event, so the
// happens-before edges mirror the real synchronization order.
func (l *Lock) Lock(t *Thread) {
	l.mu.Lock()
	l.rt.emit(trace.Acquire(t.ID, l.id))
}

// Unlock releases the lock as thread t.
func (l *Lock) Unlock(t *Thread) {
	l.rt.emit(trace.Release(t.ID, l.id))
	l.mu.Unlock()
}

// Chan is a monitored buffered FIFO channel of values. Sends and receives
// emit synchronization events: the i-th receive happens after the i-th
// send, giving channel-synchronized code the happens-before edges Go's
// memory model promises. (The reverse capacity edge — the k-th receive
// happening before the (k+cap)-th send returns — is not modeled; omitting
// edges can only make the detectors report more potential concurrency,
// never less, so the analyses stay sound.)
type Chan struct {
	rt   *Runtime
	id   trace.ChanID
	mu   sync.Mutex
	cond *sync.Cond
	buf  []trace.Value
	cap  int
}

// NewChan creates a monitored channel with the given capacity (minimum 1;
// rendezvous channels are modeled as capacity 1, which has the same
// happens-before edges).
func (rt *Runtime) NewChan(capacity int) *Chan {
	if capacity < 1 {
		capacity = 1
	}
	c := &Chan{rt: rt, id: trace.ChanID(atomic.AddInt32(&rt.nextChan, 1) - 1), cap: capacity}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// ID returns the channel id.
func (c *Chan) ID() trace.ChanID { return c.id }

// Send enqueues v as thread t, blocking while the buffer is full. The send
// event is emitted in enqueue order, so the happens-before engine matches
// messages exactly.
func (c *Chan) Send(t *Thread, v trace.Value) {
	c.mu.Lock()
	for len(c.buf) == c.cap {
		c.cond.Wait()
	}
	c.rt.emit(trace.Send(t.ID, c.id))
	c.buf = append(c.buf, v)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Recv dequeues the oldest value as thread t, blocking while empty.
func (c *Chan) Recv(t *Thread) trace.Value {
	c.mu.Lock()
	for len(c.buf) == 0 {
		c.cond.Wait()
	}
	v := c.buf[0]
	c.buf = c.buf[1:]
	c.rt.emit(trace.Recv(t.ID, c.id))
	c.cond.Broadcast()
	c.mu.Unlock()
	return v
}

// Cell is a monitored memory location holding a single value — the
// granularity at which the FASTTRACK baseline checks for races. The backing
// store is synchronized (so the simulator itself is well-defined Go), but
// reads and writes emit unsynchronized-access events exactly like a plain
// field would in the paper's Java setting.
type Cell struct {
	rt  *Runtime
	id  trace.VarID
	val atomic.Int64
}

// NewCell creates a monitored memory cell.
func (rt *Runtime) NewCell() *Cell {
	return &Cell{rt: rt, id: trace.VarID(atomic.AddInt32(&rt.nextVar, 1) - 1)}
}

// ID returns the cell's variable id.
func (c *Cell) ID() trace.VarID { return c.id }

// Load reads the cell as thread t.
func (c *Cell) Load(t *Thread) int64 {
	v := c.val.Load()
	c.rt.emit(trace.Read(t.ID, c.id))
	return v
}

// Store writes the cell as thread t.
func (c *Cell) Store(t *Thread, v int64) {
	c.val.Store(v)
	c.rt.emit(trace.Write(t.ID, c.id))
}

// Add increments the cell (a read-modify-write: emits a read then a write).
func (c *Cell) Add(t *Thread, delta int64) int64 {
	c.rt.emit(trace.Read(t.ID, c.id))
	v := c.val.Add(delta)
	c.rt.emit(trace.Write(t.ID, c.id))
	return v
}

// newObjID allocates an object id and notifies observers.
func (rt *Runtime) newObjID(kind string) trace.ObjID {
	id := trace.ObjID(atomic.AddInt32(&rt.nextObj, 1) - 1)
	rt.mu.Lock()
	rt.objKinds = append(rt.objKinds, ObjectKind{Obj: id, Kind: kind})
	rt.mu.Unlock()
	rt.notifyObject(id, kind)
	return id
}

// ObjectKind records one monitored object's creation: its id and the kind
// string that selects its access point representation.
type ObjectKind struct {
	Obj  trace.ObjID
	Kind string
}

// ObjectKinds returns every monitored object created so far, in creation
// order — the registration set an offline re-analysis of the recorded
// trace needs (see ReplayRecorded).
func (rt *Runtime) ObjectKinds() []ObjectKind {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]ObjectKind, len(rt.objKinds))
	copy(out, rt.objKinds)
	return out
}
