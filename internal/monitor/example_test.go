package monitor_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/trace"
)

// Example_onlineDetection runs the paper's Fig 1 connection program under
// the online detector: duplicate hosts race, and the race names the key.
func Example_onlineDetection() {
	rt := monitor.NewRuntime()
	rd2 := monitor.AttachRD2(rt, core.Config{})

	main := rt.Main()
	dict := rt.NewDict()
	hosts := []string{"a.com", "a.com"}
	var workers []*monitor.Thread
	for i, h := range hosts {
		host, conn := trace.StrValue(h), trace.IntValue(int64(9000+i))
		workers = append(workers, main.Go(func(t *monitor.Thread) {
			dict.Put(t, host, conn)
		}))
	}
	main.JoinAll(workers...)

	if err := rt.Err(); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("connections: %d, races: %d\n",
		dict.Size(main), rd2.Detector.Stats().Races)
	// Output: connections: 1, races: 1
}

// Example_atomicBlocks marks a composed operation as a transaction for the
// atomicity analysis.
func Example_atomicBlocks() {
	rt := monitor.NewRuntime()
	atom := monitor.AttachAtomicity(rt)
	main := rt.Main()
	dict := rt.NewDict()
	main.Atomic(func() {
		if dict.Get(main, trace.StrValue("k")).IsNil() {
			dict.Put(main, trace.StrValue("k"), trace.IntValue(1))
		}
	})
	fmt.Printf("transactions: %d, violations: %d\n",
		atom.Checker.Transactions(), len(atom.Checker.Violations()))
	// Output: transactions: 1, violations: 0
}
