package monitor

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// TestReplayRecorded records a live concurrent workload with a serial
// detector attached, then re-analyzes the recorded trace offline through
// the parallel-stamping pipeline at several shard/worker settings, and
// requires every verdict to match the live run — the offline re-analysis
// leg of the ISSUE 6 differential.
func TestReplayRecorded(t *testing.T) {
	rt := NewRuntime()
	rt.Record()
	live := AttachRD2(rt, core.Config{})

	main := rt.Main()
	d1, d2 := rt.NewDict(), rt.NewDict()
	lock := rt.NewLock()
	workers := make([]*Thread, 0, 4)
	for w := 0; w < 4; w++ {
		w := w
		workers = append(workers, main.Go(func(th *Thread) {
			for i := 0; i < 40; i++ {
				k := trace.IntValue(int64(i % 6))
				d1.Put(th, k, trace.IntValue(int64(w*100+i+1)))
				if i%3 == 0 {
					lock.Lock(th)
					d2.Put(th, k, trace.IntValue(int64(i+1)))
					lock.Unlock(th)
				}
				d1.Get(th, k)
			}
		}))
	}
	main.JoinAll(workers...)
	d1.Size(main)
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}

	kinds := rt.ObjectKinds()
	if len(kinds) != 2 {
		t.Fatalf("ObjectKinds = %v, want two dicts", kinds)
	}

	liveStats := live.Detector.Stats()
	for _, cfg := range []pipeline.Config{
		{Shards: 1, StampWorkers: 2},
		{Shards: 4, StampWorkers: 2},
		{Shards: 4, StampWorkers: 4},
	} {
		label := fmt.Sprintf("shards=%d stamp=%d", cfg.Shards, cfg.StampWorkers)
		p, err := ReplayRecorded(rt, cfg)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		st := p.Stats()
		if st.Races != liveStats.Races || st.Checks != liveStats.Checks ||
			st.Actions != liveStats.Actions {
			t.Fatalf("%s: stats %+v, live %+v", label, st, liveStats)
		}
		if p.DistinctObjects() != live.Detector.DistinctObjects() {
			t.Fatalf("%s: distinct objects %d, live %d",
				label, p.DistinctObjects(), live.Detector.DistinctObjects())
		}
	}

	// The recorded trace's clocks must have survived the replays intact
	// (ReplayRecorded strips clocks on a copy, never in place).
	for i, e := range rt.Trace().Events {
		if e.Clock == nil {
			t.Fatalf("recorded event %d lost its clock", i)
		}
	}

	// Without a recording, ReplayRecorded must refuse.
	if _, err := ReplayRecorded(NewRuntime(), pipeline.Config{}); err == nil {
		t.Fatal("ReplayRecorded without Record should fail")
	}
}
