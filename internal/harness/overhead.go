package harness

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fasttrack"
	"repro/internal/hb"
	"repro/internal/lockset"
	"repro/internal/specs"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// The paper attributes RD2's overhead being "similar to FASTTRACK" to
// RoadRunner instrumenting all memory accesses in both configurations. Our
// simulators emit far fewer memory events than a JVM application, so the
// per-row overheads of Table 2 are not directly comparable between the two
// detectors — but the per-event analysis costs are. This experiment feeds
// the three analyses equivalent pre-stamped event streams and reports
// nanoseconds per event.

// OverheadRow is one analysis's per-event cost.
type OverheadRow struct {
	Analysis string
	Events   int
	PerEvent time.Duration
}

// RunOverhead measures per-event cost for the commutativity detector (on an
// action stream), FASTTRACK (on an equivalent read/write stream), and the
// Eraser lockset baseline (same read/write stream).
func RunOverhead(events int, seed int64) ([]OverheadRow, error) {
	if events <= 0 {
		events = 50000
	}
	r := rand.New(rand.NewSource(seed))

	// Action stream: puts/gets over a bounded key space from 4 threads.
	actions := &trace.Trace{}
	for t := 1; t <= 4; t++ {
		actions.Append(trace.Fork(0, vclock.Tid(t)))
	}
	state := map[trace.Value]trace.Value{}
	for i := 0; i < events; i++ {
		t := vclock.Tid(1 + r.Intn(4))
		k := trace.IntValue(int64(r.Intn(256)))
		if r.Intn(2) == 0 {
			prev, ok := state[k]
			if !ok {
				prev = trace.NilValue
			}
			v := trace.IntValue(int64(r.Intn(64) + 1))
			state[k] = v
			actions.Append(trace.Act(t, trace.Action{Obj: 0, Method: "put",
				Args: []trace.Value{k, v}, Rets: []trace.Value{prev}}))
		} else {
			cur, ok := state[k]
			if !ok {
				cur = trace.NilValue
			}
			actions.Append(trace.Act(t, trace.Action{Obj: 0, Method: "get",
				Args: []trace.Value{k}, Rets: []trace.Value{cur}}))
		}
	}
	if err := hb.StampAll(actions); err != nil {
		return nil, err
	}

	// Memory stream: reads/writes over the same number of events.
	memory := &trace.Trace{}
	for t := 1; t <= 4; t++ {
		memory.Append(trace.Fork(0, vclock.Tid(t)))
	}
	for i := 0; i < events; i++ {
		t := vclock.Tid(1 + r.Intn(4))
		v := trace.VarID(r.Intn(256))
		if r.Intn(2) == 0 {
			memory.Append(trace.Write(t, v))
		} else {
			memory.Append(trace.Read(t, v))
		}
	}
	if err := hb.StampAll(memory); err != nil {
		return nil, err
	}

	var rows []OverheadRow
	// RD2 on the action stream.
	det := core.New(core.Config{MaxRaces: 1})
	det.Register(0, specs.MustRep("dict"))
	start := time.Now()
	for i := range actions.Events {
		if err := det.Process(&actions.Events[i]); err != nil {
			return nil, err
		}
	}
	rows = append(rows, OverheadRow{"RD2 (actions)", events,
		time.Since(start) / time.Duration(events)})

	// FASTTRACK on the memory stream.
	ft := fasttrack.New(nil)
	start = time.Now()
	for i := range memory.Events {
		if err := ft.Process(&memory.Events[i]); err != nil {
			return nil, err
		}
	}
	rows = append(rows, OverheadRow{"FASTTRACK (reads/writes)", events,
		time.Since(start) / time.Duration(events)})

	// Eraser lockset on the memory stream.
	ls := lockset.New()
	start = time.Now()
	for i := range memory.Events {
		if err := ls.Process(&memory.Events[i]); err != nil {
			return nil, err
		}
	}
	rows = append(rows, OverheadRow{"Eraser lockset (reads/writes)", events,
		time.Since(start) / time.Duration(events)})
	return rows, nil
}

// RenderOverhead formats the per-event cost table.
func RenderOverhead(rows []OverheadRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %10s %14s\n", "analysis", "events", "ns/event")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-32s %10d %14d\n", r.Analysis, r.Events, r.PerEvent.Nanoseconds())
	}
	return b.String()
}
