package harness

import (
	"strings"
	"testing"
)

// TestRunStampScaling runs the worker-scaling experiment at a small scale
// and checks its invariants: one baseline row plus one per worker count,
// identical race verdicts at every setting, and a renderable table.
func TestRunStampScaling(t *testing.T) {
	rows, err := RunStampScaling([]int{1, 2, 4}, 4, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	if rows[0].Workers != 0 {
		t.Fatalf("first row should be the serial baseline, got workers=%d", rows[0].Workers)
	}
	for i, r := range rows {
		if r.Events != rows[0].Events {
			t.Fatalf("row %d events %d, want %d", i, r.Events, rows[0].Events)
		}
		if r.Races != rows[0].Races {
			t.Fatalf("row %d races %d, want %d (verdicts must not depend on workers)",
				i, r.Races, rows[0].Races)
		}
		if r.QPS <= 0 || r.Time <= 0 {
			t.Fatalf("row %d has no timing: %+v", i, r)
		}
	}
	out := RenderStampScaling(rows)
	if !strings.Contains(out, "serial") || !strings.Contains(out, "stampers") {
		t.Fatalf("render missing columns:\n%s", out)
	}
}
