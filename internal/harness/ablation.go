package harness

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/hb"
	"repro/internal/specs"
	"repro/internal/trace"
	"repro/internal/translate"
	"repro/internal/vclock"
)

// AblationRow is one design-choice ablation measurement.
type AblationRow struct {
	Name        string
	Description string
	Classes     int // representation size (where applicable)
	Checks      int // phase-1 conflict checks
	LivePoints  int // active points at the end of the run
	PeakPoints  int // peak active points
	Races       int
	Time        time.Duration
}

// RunAblations measures the design choices DESIGN.md calls out on a common
// dictionary workload: the translated representation with and without the
// appendix optimizations, and the detector with and without §5.3 point
// compaction. The workload is a fork–join phase structure (wavefronts of
// workers that are joined before the next wave) so compaction has join
// points to exploit.
func RunAblations(actionsPerWave, waves int) ([]AblationRow, error) {
	if actionsPerWave <= 0 {
		actionsPerWave = 500
	}
	if waves <= 0 {
		waves = 8
	}
	// Build the waved workload.
	tr := &trace.Trace{}
	nextTid := vclock.Tid(1)
	key := 0
	for w := 0; w < waves; w++ {
		t1, t2 := nextTid, nextTid+1
		nextTid += 2
		tr.Append(trace.Fork(0, t1))
		tr.Append(trace.Fork(0, t2))
		for i := 0; i < actionsPerWave; i++ {
			tid := t1
			if i%2 == 1 {
				tid = t2
			}
			tr.Append(trace.Act(tid, trace.Action{Obj: 0, Method: "put",
				Args: []trace.Value{trace.IntValue(int64(key)), trace.IntValue(1)},
				Rets: []trace.Value{trace.NilValue}}))
			key++
		}
		tr.Append(trace.Join(0, t1))
		tr.Append(trace.Join(0, t2))
	}

	spec := specs.MustSpec("dict")
	optimized, err := translate.Translate(spec)
	if err != nil {
		return nil, err
	}
	raw, err := translate.TranslateOpts(spec, translate.Options{})
	if err != nil {
		return nil, err
	}

	run := func(name, desc string, rep *translate.Rep, compact bool) (AblationRow, error) {
		d := core.New(core.Config{MaxRaces: 16})
		d.Register(0, rep)
		en := hb.New()
		start := time.Now()
		for i := range tr.Events {
			e := &tr.Events[i]
			if _, err := en.Process(e); err != nil {
				return AblationRow{}, err
			}
			if err := d.Process(e); err != nil {
				return AblationRow{}, err
			}
			if compact && e.Kind == trace.JoinEvent {
				d.Compact(en.MeetLive())
			}
		}
		st := d.Stats()
		return AblationRow{
			Name: name, Description: desc,
			Classes: rep.NumClasses(), Checks: st.Checks,
			LivePoints: st.ActivePoints, PeakPoints: st.PeakActive,
			Races: st.Races, Time: time.Since(start),
		}, nil
	}

	var rows []AblationRow
	for _, cfg := range []struct {
		name, desc string
		rep        *translate.Rep
		compact    bool
	}{
		{"optimized", "Fig 7 representation (cleanup + congruence)", optimized, false},
		{"raw", "unoptimized §6.2 representation", raw, false},
		{"optimized+compaction", "Fig 7 representation with §5.3 point compaction at joins", optimized, true},
	} {
		row, err := run(cfg.name, cfg.desc, cfg.rep, cfg.compact)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderAblations formats the ablation table.
func RenderAblations(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %8s %10s %10s %10s %7s %12s\n",
		"variant", "classes", "checks", "live pts", "peak pts", "races", "time")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %8d %10d %10d %10d %7d %12s\n",
			r.Name, r.Classes, r.Checks, r.LivePoints, r.PeakPoints, r.Races,
			r.Time.Round(time.Microsecond))
	}
	return b.String()
}
