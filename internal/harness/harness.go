// Package harness runs the paper's evaluation (Section 7) end to end: every
// benchmark in the three instrumentation modes of Table 2 (uninstrumented,
// FASTTRACK, RD2), plus the measurable figure experiments — the Fig 4
// check-count comparison and the Section 5.4 complexity scaling.
package harness

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/ap"
	"repro/internal/core"
	"repro/internal/h2sim"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/snitch"
	"repro/internal/specs"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Mode selects the instrumentation of one run.
type Mode int

// The three columns of Table 2.
const (
	Uninstrumented Mode = iota
	FastTrack
	RD2
)

func (m Mode) String() string {
	switch m {
	case Uninstrumented:
		return "Uninstrumented"
	case FastTrack:
		return "FASTTRACK"
	case RD2:
		return "RD2"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Row is one benchmark row of Table 2.
type Row struct {
	App       string
	Benchmark string
	// TimeBased rows report seconds (the Cassandra row); others report qps.
	TimeBased bool

	QPS  [3]float64       // indexed by Mode (qps rows)
	Time [3]time.Duration // wall time of each mode

	FTRaces     int // FASTTRACK: total races
	FTDistinct  int // FASTTRACK: distinct variables
	RD2Races    int // RD2: total commutativity races
	RD2Distinct int // RD2: distinct objects

	// Sharded-pipeline pass (only filled when Config.Shards > 1).
	ParShards   int           // shard count of the parallel pass (0 = not run)
	ParQPS      float64       // qps with the sharded pipeline
	ParTime     time.Duration // wall time with the sharded pipeline
	ParRaces    int           // races found by the sharded pipeline
	ParDistinct int           // distinct racy objects (sharded pipeline)

	// Full detector counters through the unified obs.StatSource surface
	// (fasttrack.Detector.StatSnapshot / core.Detector.StatSnapshot /
	// pipeline.Pipeline.StatSnapshot). RenderDetectorStats prints all three
	// with one code path.
	FTStats  []obs.Stat
	RD2Stats []obs.Stat
	ParStats []obs.Stat
}

// Config scales the Table 2 run.
type Config struct {
	// Scale multiplies the per-thread operation counts (1 = quick smoke,
	// 10+ = stable measurements).
	Scale int
	Seed  int64
	// Shards > 1 adds a fourth pass per benchmark running RD2 through the
	// sharded detection pipeline with that many shards.
	Shards int
	// WrapRep, when set, rewrites every representation the RD2 passes
	// register (monitor.RD2.WrapReps) — the fault-injection hook used by the
	// chaos tests to arm faultinject.WrapAllReps under a real benchmark.
	WrapRep func(ap.Rep) ap.Rep
}

// DefaultConfig returns a configuration that finishes in a few seconds.
func DefaultConfig() Config { return Config{Scale: 2, Seed: 42} }

// RunTable2 executes every benchmark of Table 2 in all three modes.
func RunTable2(cfg Config) []Row {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	var rows []Row
	for _, c := range h2sim.Circuits() {
		scaled := c.Scaled(c.Ops * cfg.Scale / 2)
		rows = append(rows, runH2Row(scaled, cfg))
	}
	rows = append(rows, runSnitchRow(cfg))
	return rows
}

func runH2Row(c h2sim.Circuit, cfg Config) Row {
	seed, shards := cfg.Seed, cfg.Shards
	row := Row{App: "H2 database", Benchmark: c.Name}
	for _, mode := range []Mode{Uninstrumented, FastTrack, RD2} {
		rt := monitor.NewRuntime()
		switch mode {
		case FastTrack:
			d := monitor.AttachFastTrack(rt)
			res := c.Run(rt, seed)
			row.QPS[mode] = res.QPS()
			row.Time[mode] = res.Duration
			row.FTRaces = d.Stats().Races
			row.FTDistinct = d.DistinctVars()
			row.FTStats = d.StatSnapshot()
		case RD2:
			rd2 := monitor.AttachRD2(rt, core.Config{})
			if cfg.WrapRep != nil {
				rd2.WrapReps(cfg.WrapRep)
			}
			res := c.Run(rt, seed)
			row.QPS[mode] = res.QPS()
			row.Time[mode] = res.Duration
			row.RD2Races = rd2.Detector.Stats().Races
			row.RD2Distinct = rd2.Detector.DistinctObjects()
			row.RD2Stats = rd2.Detector.StatSnapshot()
		default:
			res := c.Run(rt, seed)
			row.QPS[mode] = res.QPS()
			row.Time[mode] = res.Duration
		}
	}
	if shards > 1 {
		rt := monitor.NewRuntime()
		par := monitor.AttachRD2Parallel(rt, pipeline.Config{Shards: shards})
		if cfg.WrapRep != nil {
			par.WrapReps(cfg.WrapRep)
		}
		start := time.Now()
		res := c.Run(rt, seed)
		par.Close() // shard drain counts toward the measured pass
		row.ParShards = shards
		row.ParTime = time.Since(start)
		row.ParQPS = float64(res.Ops) / row.ParTime.Seconds()
		row.ParRaces = par.Pipeline.Stats().Races
		row.ParDistinct = par.Pipeline.DistinctObjects()
		row.ParStats = par.Pipeline.StatSnapshot()
	}
	return row
}

func runSnitchRow(cfg Config) Row {
	row := Row{App: "Cassandra", Benchmark: "DynamicEndpointSnitch test", TimeBased: true}
	sc := snitch.DefaultTestConfig()
	sc.TimingsPerHost *= cfg.Scale
	sc.ScoreRounds *= cfg.Scale
	for _, mode := range []Mode{Uninstrumented, FastTrack, RD2} {
		rt := monitor.NewRuntime()
		start := time.Now()
		switch mode {
		case FastTrack:
			d := monitor.AttachFastTrack(rt)
			snitch.RunTest(rt, sc, cfg.Seed)
			row.Time[mode] = time.Since(start)
			row.FTRaces = d.Stats().Races
			row.FTDistinct = d.DistinctVars()
			row.FTStats = d.StatSnapshot()
		case RD2:
			rd2 := monitor.AttachRD2(rt, core.Config{})
			if cfg.WrapRep != nil {
				rd2.WrapReps(cfg.WrapRep)
			}
			snitch.RunTest(rt, sc, cfg.Seed)
			row.Time[mode] = time.Since(start)
			row.RD2Races = rd2.Detector.Stats().Races
			row.RD2Distinct = rd2.Detector.DistinctObjects()
			row.RD2Stats = rd2.Detector.StatSnapshot()
		default:
			snitch.RunTest(rt, sc, cfg.Seed)
			row.Time[mode] = time.Since(start)
		}
	}
	if cfg.Shards > 1 {
		rt := monitor.NewRuntime()
		par := monitor.AttachRD2Parallel(rt, pipeline.Config{Shards: cfg.Shards})
		if cfg.WrapRep != nil {
			par.WrapReps(cfg.WrapRep)
		}
		start := time.Now()
		snitch.RunTest(rt, sc, cfg.Seed)
		par.Close()
		row.ParShards = cfg.Shards
		row.ParTime = time.Since(start)
		row.ParRaces = par.Pipeline.Stats().Races
		row.ParDistinct = par.Pipeline.DistinctObjects()
		row.ParStats = par.Pipeline.StatSnapshot()
	}
	return row
}

// RenderDetectorStats renders every row's full detector counters — the
// FASTTRACK baseline, serial RD2, and (when run) the sharded pipeline —
// through the one obs.FormatStats code path, so the three detectors need no
// bespoke formatting and new counters appear automatically.
func RenderDetectorStats(rows []Row) string {
	var b strings.Builder
	for _, r := range rows {
		blocks := []struct {
			label string
			stats []obs.Stat
		}{
			{"FASTTRACK", r.FTStats},
			{"RD2", r.RD2Stats},
			{fmt.Sprintf("RD2(%d shards)", r.ParShards), r.ParStats},
		}
		for _, bl := range blocks {
			if len(bl.stats) == 0 {
				continue
			}
			b.WriteString(obs.FormatStats(
				fmt.Sprintf("%s / %s — %s", r.App, r.Benchmark, bl.label), bl.stats))
		}
	}
	return b.String()
}

// RenderTable2 formats the rows like the paper's Table 2. When any row ran
// the sharded-pipeline pass (Config.Shards > 1), an extra RD2(n shards)
// column appears between RD2 and the race counts.
func RenderTable2(rows []Row) string {
	parallel := false
	for _, r := range rows {
		if r.ParShards > 0 {
			parallel = true
			break
		}
	}
	var b strings.Builder
	if parallel {
		shards := 0
		for _, r := range rows {
			if r.ParShards > shards {
				shards = r.ParShards
			}
		}
		fmt.Fprintf(&b, "%-13s %-45s | %15s %15s %15s %15s | %18s %18s\n",
			"Application", "Benchmark", "Uninstrumented", "FASTTRACK", "RD2",
			fmt.Sprintf("RD2(%d shards)", shards),
			"FASTTRACK races", "RD2 races")
		fmt.Fprintln(&b, strings.Repeat("-", 168))
	} else {
		fmt.Fprintf(&b, "%-13s %-45s | %15s %15s %15s | %18s %18s\n",
			"Application", "Benchmark", "Uninstrumented", "FASTTRACK", "RD2",
			"FASTTRACK races", "RD2 races")
		fmt.Fprintln(&b, strings.Repeat("-", 152))
	}
	for _, r := range rows {
		perf := func(m Mode) string {
			if r.TimeBased {
				return fmt.Sprintf("%.3f s", r.Time[m].Seconds())
			}
			return fmt.Sprintf("%.0f qps", r.QPS[m])
		}
		if parallel {
			par := "-"
			if r.ParShards > 0 {
				if r.TimeBased {
					par = fmt.Sprintf("%.3f s", r.ParTime.Seconds())
				} else {
					par = fmt.Sprintf("%.0f qps", r.ParQPS)
				}
			}
			fmt.Fprintf(&b, "%-13s %-45s | %15s %15s %15s %15s | %12d (%d) %13d (%d)\n",
				r.App, r.Benchmark,
				perf(Uninstrumented), perf(FastTrack), perf(RD2), par,
				r.FTRaces, r.FTDistinct, r.RD2Races, r.RD2Distinct)
			continue
		}
		fmt.Fprintf(&b, "%-13s %-45s | %15s %15s %15s | %12d (%d) %13d (%d)\n",
			r.App, r.Benchmark,
			perf(Uninstrumented), perf(FastTrack), perf(RD2),
			r.FTRaces, r.FTDistinct, r.RD2Races, r.RD2Distinct)
	}
	return b.String()
}

// ShardScalingRow is one point of the shard-scaling experiment: the same
// benchmark run with the sharded pipeline at a given shard count. Shards ==
// 0 denotes the serial RD2 baseline.
type ShardScalingRow struct {
	Shards int
	QPS    float64
	Time   time.Duration
	Races  int
}

// RunShardScaling runs the heaviest H2 circuit once serially and once per
// shard count, reporting throughput at each. On a multicore host the qps
// column should grow with shards until detection stops being the
// bottleneck; at GOMAXPROCS=1 it mainly measures pipeline overhead.
func RunShardScaling(shardCounts []int, scale int, seed int64) []ShardScalingRow {
	if scale <= 0 {
		scale = 1
	}
	var circuit h2sim.Circuit
	for _, c := range h2sim.Circuits() {
		if c.Threads >= circuit.Threads {
			circuit = c
		}
	}
	circuit = circuit.Scaled(circuit.Ops * scale / 2)

	var rows []ShardScalingRow
	{
		rt := monitor.NewRuntime()
		rd2 := monitor.AttachRD2(rt, core.Config{})
		start := time.Now()
		res := circuit.Run(rt, seed)
		elapsed := time.Since(start)
		rows = append(rows, ShardScalingRow{
			Shards: 0,
			QPS:    float64(res.Ops) / elapsed.Seconds(),
			Time:   elapsed,
			Races:  rd2.Detector.Stats().Races,
		})
	}
	for _, n := range shardCounts {
		if n < 1 {
			continue
		}
		rt := monitor.NewRuntime()
		par := monitor.AttachRD2Parallel(rt, pipeline.Config{Shards: n})
		start := time.Now()
		res := circuit.Run(rt, seed)
		par.Close()
		elapsed := time.Since(start)
		rows = append(rows, ShardScalingRow{
			Shards: n,
			QPS:    float64(res.Ops) / elapsed.Seconds(),
			Time:   elapsed,
			Races:  par.Pipeline.Stats().Races,
		})
	}
	return rows
}

// RenderShardScaling formats the scaling series.
func RenderShardScaling(rows []ShardScalingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %12s %14s %8s\n", "shards", "qps", "time", "races")
	for _, r := range rows {
		label := "serial"
		if r.Shards > 0 {
			label = fmt.Sprintf("%d", r.Shards)
		}
		fmt.Fprintf(&b, "%10s %12.0f %14s %8d\n",
			label, r.QPS, r.Time.Round(time.Microsecond), r.Races)
	}
	return b.String()
}

// Fig4Row is one point of the Fig 4 experiment: conflict checks performed
// by a single size() after n concurrent resizing puts, with access points
// (one check) versus the direct approach (n checks).
type Fig4Row struct {
	Puts          int
	BoundedChecks int
	DirectChecks  int
}

// RunFig4 measures the Fig 4 series for put counts 1..max.
func RunFig4(max int) ([]Fig4Row, error) {
	spec := specs.MustSpec("dict")
	rep := specs.MustRep("dict")
	var rows []Fig4Row
	for n := 1; n <= max; n++ {
		buildPrefix := func() *trace.Trace {
			b := trace.NewBuilder()
			for i := 1; i <= n; i++ {
				b.Fork(0, vclock.Tid(i))
			}
			for i := 1; i <= n; i++ {
				b.Put(vclock.Tid(i), 0,
					trace.StrValue(fmt.Sprintf("host%d.com", i)),
					trace.IntValue(int64(i)), trace.NilValue)
			}
			return b.Trace()
		}
		withSize := buildPrefix()
		withSize.Append(trace.Act(0, trace.Action{Obj: 0, Method: "size",
			Rets: []trace.Value{trace.IntValue(int64(n))}}))

		sizeChecks := func(mk func() (ap.Rep, core.Engine)) (int, error) {
			repX, engine := mk()
			d := core.New(core.Config{Engine: engine})
			d.Register(0, repX)
			if err := d.RunTrace(buildPrefix()); err != nil {
				return 0, err
			}
			prefix := d.Stats().Checks
			repY, engineY := mk()
			d2 := core.New(core.Config{Engine: engineY})
			d2.Register(0, repY)
			if err := d2.RunTrace(withSize); err != nil {
				return 0, err
			}
			return d2.Stats().Checks - prefix, nil
		}
		bounded, err := sizeChecks(func() (ap.Rep, core.Engine) {
			return rep, core.EngineBounded
		})
		if err != nil {
			return nil, err
		}
		direct, err := sizeChecks(func() (ap.Rep, core.Engine) {
			return ap.NewNaiveRep(func(a, b trace.Action) bool {
				ok, err := spec.Commutes(a, b)
				return err == nil && ok
			}), core.EngineEnumerating
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig4Row{Puts: n, BoundedChecks: bounded, DirectChecks: direct})
	}
	return rows, nil
}

// RenderFig4 formats the Fig 4 series.
func RenderFig4(rows []Fig4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %26s %26s\n", "puts", "checks (access points)", "checks (invocations)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %26d %26d\n", r.Puts, r.BoundedChecks, r.DirectChecks)
	}
	return b.String()
}

// ComplexityRow is one point of the Section 5.4 scaling experiment: total
// conflict checks and wall time for a trace of n actions, under the bounded
// engine (Θ(1) per action) and the enumerating engine (Θ(|A|) per action).
type ComplexityRow struct {
	Actions           int
	BoundedChecks     int
	EnumeratingChecks int
	BoundedTime       time.Duration
	EnumeratingTime   time.Duration
}

// RunComplexity measures the scaling series for the given trace sizes. The
// workload is distinct-key puts from two unsynchronized threads — every put
// stays active forever, so the enumerating engine's per-action cost grows
// linearly while the bounded engine's stays constant.
func RunComplexity(sizes []int) ([]ComplexityRow, error) {
	rep := specs.MustRep("dict")
	var rows []ComplexityRow
	for _, n := range sizes {
		b := trace.NewBuilder().Fork(0, 1).Fork(0, 2)
		for i := 0; i < n; i++ {
			tid := vclock.Tid(1 + i%2)
			b.Put(tid, 0, trace.IntValue(int64(i)), trace.IntValue(1), trace.NilValue)
		}
		tr := b.Trace()
		row := ComplexityRow{Actions: n}
		for _, engine := range []core.Engine{core.EngineBounded, core.EngineEnumerating} {
			d := core.New(core.Config{Engine: engine, MaxRaces: 1})
			d.Register(0, rep)
			start := time.Now()
			if err := d.RunTrace(tr); err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			if engine == core.EngineBounded {
				row.BoundedChecks = d.Stats().Checks
				row.BoundedTime = elapsed
			} else {
				row.EnumeratingChecks = d.Stats().Checks
				row.EnumeratingTime = elapsed
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderComplexity formats the scaling series.
func RenderComplexity(rows []ComplexityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %18s %18s %16s %16s\n",
		"actions", "checks (bounded)", "checks (enum)", "time (bounded)", "time (enum)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10d %18d %18d %16s %16s\n",
			r.Actions, r.BoundedChecks, r.EnumeratingChecks,
			r.BoundedTime.Round(time.Microsecond), r.EnumeratingTime.Round(time.Microsecond))
	}
	return b.String()
}

// RaceReport summarizes the harmful races rediscovered by RD2 (experiment
// E6): which monitored maps race in each application scenario.
type RaceReport struct {
	Scenario string
	Findings []string
}

// RunRaceDiscovery reruns the two applications under RD2 and attributes
// the races to their objects, mirroring the three findings of Section 7.
func RunRaceDiscovery(seed int64) ([]RaceReport, error) {
	var reports []RaceReport

	// H2: two concurrent writers over separate tables.
	rt := monitor.NewRuntime()
	rd2 := monitor.AttachRD2(rt, core.Config{})
	main := rt.Main()
	db := h2sim.NewDB(rt)
	ta, tb := db.Table("accounts"), db.Table("audit")
	w1 := main.Go(func(t *monitor.Thread) {
		for i := int64(0); i < 300; i++ {
			ta.Insert(t, i, fmt.Sprintf("acct-%d", i))
			ta.Update(t, i, fmt.Sprintf("acct-%d'", i))
		}
	})
	w2 := main.Go(func(t *monitor.Thread) {
		for i := int64(0); i < 300; i++ {
			tb.Insert(t, i, fmt.Sprintf("audit-%d", i))
			tb.Update(t, i, fmt.Sprintf("audit-%d'", i))
		}
	})
	main.JoinAll(w1, w2)
	if err := rt.Err(); err != nil {
		return nil, err
	}
	h2rep := RaceReport{Scenario: "H2 MVStore (concurrent commits)"}
	byObj := map[trace.ObjID]int{}
	for _, r := range rd2.Detector.Races() {
		byObj[r.Obj]++
	}
	if n := byObj[db.Store().FreedPageSpaceID()]; n > 0 {
		h2rep.Findings = append(h2rep.Findings, fmt.Sprintf(
			"freedPageSpace map: %d commutativity races — lost free-space accounting can corrupt server state (paper finding 1)", n))
	}
	if n := byObj[db.Store().ChunksID()]; n > 0 {
		h2rep.Findings = append(h2rep.Findings, fmt.Sprintf(
			"chunks map: %d commutativity races — chunk metadata recomputed multiple times (paper finding 2)", n))
	}
	reports = append(reports, h2rep)

	// Cassandra: snitch test.
	rt2 := monitor.NewRuntime()
	rd22 := monitor.AttachRD2(rt2, core.Config{})
	sn2cfg := snitch.DefaultTestConfig()
	snitch.RunTest(rt2, sn2cfg, seed)
	if err := rt2.Err(); err != nil {
		return nil, err
	}
	snrep := RaceReport{Scenario: "Cassandra DynamicEndpointSnitch"}
	sizeRaces, sampleRaces, scoreObjs := 0, 0, map[trace.ObjID]int{}
	for _, r := range rd22.Detector.Races() {
		scoreObjs[r.Obj]++
		if r.Second.Method == "size" || r.First.Method == "size" {
			sizeRaces++
		} else {
			sampleRaces++
		}
	}
	if sizeRaces > 0 {
		snrep.Findings = append(snrep.Findings, fmt.Sprintf(
			"samples map size hint: %d races — entries added while size() is used as a performance hint (paper finding 3)", sizeRaces))
	}
	if sampleRaces > 0 {
		snrep.Findings = append(snrep.Findings, fmt.Sprintf(
			"sample/score accumulators: %d further commutativity races across %d objects", sampleRaces, len(scoreObjs)))
	}
	reports = append(reports, snrep)
	return reports, nil
}

// RenderRaceReports formats the discovery output.
func RenderRaceReports(reports []RaceReport) string {
	var b strings.Builder
	for _, r := range reports {
		fmt.Fprintf(&b, "%s:\n", r.Scenario)
		if len(r.Findings) == 0 {
			fmt.Fprintln(&b, "  no races found")
		}
		for _, f := range r.Findings {
			fmt.Fprintf(&b, "  - %s\n", f)
		}
	}
	return b.String()
}
