package harness

import (
	"strings"
	"testing"
)

// TestTable2ParallelPass: with Shards > 1 every row gains the sharded
// pipeline pass. The circuits are live concurrent executions, so exact race
// counts vary with goroutine scheduling between the serial and parallel
// passes; the test checks the pass ran and agrees on whether racing
// happened at all. (Exact-verdict equality on an identical event stream is
// covered by internal/monitor's TestParallelMatchesSerialLive.)
func TestTable2ParallelPass(t *testing.T) {
	cfg := Config{Scale: 1, Seed: 42, Shards: 2}
	rows := RunTable2(cfg)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.ParShards != 2 {
			t.Errorf("%s: ParShards = %d, want 2", r.Benchmark, r.ParShards)
		}
		if (r.ParRaces > 0) != (r.RD2Races > 0) {
			t.Errorf("%s: parallel races = %d, serial = %d (racy/raceless disagreement)",
				r.Benchmark, r.ParRaces, r.RD2Races)
		}
		if (r.ParDistinct > 0) != (r.RD2Distinct > 0) {
			t.Errorf("%s: parallel distinct = %d, serial = %d", r.Benchmark, r.ParDistinct, r.RD2Distinct)
		}
		if r.ParTime <= 0 {
			t.Errorf("%s: parallel pass not timed", r.Benchmark)
		}
	}

	out := RenderTable2(rows)
	if !strings.Contains(out, "RD2(2 shards)") {
		t.Errorf("render misses the parallel column:\n%s", out)
	}
}

// TestRenderTable2WithoutParallel: rows without a parallel pass render in
// the original three-mode shape.
func TestRenderTable2WithoutParallel(t *testing.T) {
	rows := []Row{{App: "H2 database", Benchmark: "x", QPS: [3]float64{1, 2, 3}}}
	out := RenderTable2(rows)
	if strings.Contains(out, "shards") {
		t.Errorf("serial render mentions shards:\n%s", out)
	}
}

// TestRunShardScaling: serial baseline plus one row per shard count. Exact
// race counts vary across live executions, so the check is on shape and on
// every row finding races in this racy circuit.
func TestRunShardScaling(t *testing.T) {
	rows := RunShardScaling([]int{1, 2, 4}, 1, 42)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (serial + 3 shard counts)", len(rows))
	}
	if rows[0].Shards != 0 {
		t.Errorf("first row must be the serial baseline, got shards=%d", rows[0].Shards)
	}
	for i, r := range rows {
		if r.QPS <= 0 || r.Time <= 0 {
			t.Errorf("row %d not measured: %+v", i, r)
		}
		if r.Races == 0 {
			t.Errorf("shards=%d: found no races in the racy scaling circuit", r.Shards)
		}
	}
	out := RenderShardScaling(rows)
	if !strings.Contains(out, "serial") || !strings.Contains(out, "qps") {
		t.Errorf("render:\n%s", out)
	}
}
