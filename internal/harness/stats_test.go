package harness

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestRenderDetectorStats asserts the unified stats surface: Table 2 rows
// carry both detectors' full counters as obs.Stat lists, and one renderer
// prints FASTTRACK, RD2, and the sharded pipeline without per-detector
// format code.
func TestRenderDetectorStats(t *testing.T) {
	rows := RunTable2(Config{Scale: 1, Seed: 42, Shards: 2})
	find := func(stats []obs.Stat, name string) (int64, bool) {
		for _, s := range stats {
			if s.Name == name {
				return s.Value, true
			}
		}
		return 0, false
	}
	for _, r := range rows {
		if len(r.FTStats) == 0 || len(r.RD2Stats) == 0 || len(r.ParStats) == 0 {
			t.Fatalf("%s: missing stat snapshots (ft %d, rd2 %d, par %d)",
				r.Benchmark, len(r.FTStats), len(r.RD2Stats), len(r.ParStats))
		}
		if v, ok := find(r.FTStats, "races"); !ok || v != int64(r.FTRaces) {
			t.Errorf("%s: FT stat races = %d (%v), want %d", r.Benchmark, v, ok, r.FTRaces)
		}
		if v, ok := find(r.RD2Stats, "races"); !ok || v != int64(r.RD2Races) {
			t.Errorf("%s: RD2 stat races = %d (%v), want %d", r.Benchmark, v, ok, r.RD2Races)
		}
		if v, ok := find(r.ParStats, "shards"); !ok || v != 2 {
			t.Errorf("%s: pipeline stat shards = %d (%v), want 2", r.Benchmark, v, ok)
		}
		// The pipeline's own columns must agree with its stat snapshot
		// (serial-vs-pipeline race counts are separate live runs with
		// different interleavings, so they are not compared here).
		if pv, ok := find(r.ParStats, "races"); !ok || pv != int64(r.ParRaces) {
			t.Errorf("%s: pipeline stat races = %d (%v), want %d", r.Benchmark, pv, ok, r.ParRaces)
		}
	}

	out := RenderDetectorStats(rows)
	for _, want := range []string{"FASTTRACK", "RD2(2 shards)", "read_demotions", "peak_active", "distinct_objects"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered stats missing %q:\n%s", want, out)
		}
	}
}
