package harness

import (
	"strings"
	"testing"
	"time"
)

func TestRunTable2SmokeAndShape(t *testing.T) {
	rows := RunTable2(Config{Scale: 1, Seed: 42})
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7 (6 H2 circuits + Cassandra)", len(rows))
	}
	byName := map[string]Row{}
	for _, r := range rows {
		byName[r.Benchmark] = r
		for m := Uninstrumented; m <= RD2; m++ {
			if r.Time[m] <= 0 {
				t.Errorf("%s: mode %s has no time", r.Benchmark, m)
			}
			if !r.TimeBased && r.QPS[m] <= 0 {
				t.Errorf("%s: mode %s has no qps", r.Benchmark, m)
			}
		}
	}

	// Shape claims of Table 2.
	cc := byName["ComplexConcurrency"]
	if cc.RD2Races == 0 || cc.RD2Distinct != 2 {
		t.Errorf("ComplexConcurrency RD2 = %d (%d), want races on exactly 2 objects",
			cc.RD2Races, cc.RD2Distinct)
	}
	if cc.FTRaces == 0 {
		t.Error("ComplexConcurrency FASTTRACK should find low-level races")
	}
	qc := byName["QueryCentricConcurrency"]
	if qc.RD2Races != 0 {
		t.Errorf("QueryCentric RD2 races = %d, want 0", qc.RD2Races)
	}
	if qc.FTRaces == 0 {
		t.Error("QueryCentric FASTTRACK should still find low-level races")
	}
	ic := byName["InsertCentricConcurrency"]
	if ic.RD2Races == 0 || ic.RD2Distinct != 2 {
		t.Errorf("InsertCentric RD2 = %d (%d), want races on exactly 2 objects",
			ic.RD2Races, ic.RD2Distinct)
	}
	for _, single := range []string{"Complex", "NestedLists"} {
		r := byName[single]
		if r.RD2Races != 0 || r.FTRaces != 0 {
			t.Errorf("%s is single-threaded but raced: FT %d, RD2 %d", single, r.FTRaces, r.RD2Races)
		}
	}
	cs := byName["DynamicEndpointSnitch test"]
	if !cs.TimeBased {
		t.Error("Cassandra row must be time-based")
	}
	if cs.RD2Races == 0 || cs.RD2Distinct != 2 {
		t.Errorf("snitch RD2 = %d (%d), want races on exactly 2 objects", cs.RD2Races, cs.RD2Distinct)
	}
}

func TestRenderTable2(t *testing.T) {
	rows := []Row{
		{App: "H2 database", Benchmark: "X", QPS: [3]float64{2000, 600, 400},
			FTRaces: 1784, FTDistinct: 26, RD2Races: 200, RD2Distinct: 2},
		{App: "Cassandra", Benchmark: "Y", TimeBased: true,
			Time: [3]time.Duration{2907 * time.Millisecond, 12226 * time.Millisecond, 13527 * time.Millisecond}},
	}
	out := RenderTable2(rows)
	for _, frag := range []string{"H2 database", "2000 qps", "1784 (26)", "200 (2)", "2.907 s", "FASTTRACK"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		Uninstrumented: "Uninstrumented", FastTrack: "FASTTRACK", RD2: "RD2", Mode(9): "Mode(9)",
	} {
		if got := m.String(); got != want {
			t.Errorf("%d: %q != %q", int(m), got, want)
		}
	}
}

func TestRunFig4ShapeMatchesPaper(t *testing.T) {
	rows, err := RunFig4(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Fig 4: access points need exactly one check for size; the direct
		// approach needs one per recorded put.
		if r.BoundedChecks != 1 {
			t.Errorf("n=%d: bounded checks = %d, want 1", r.Puts, r.BoundedChecks)
		}
		if r.DirectChecks != r.Puts {
			t.Errorf("n=%d: direct checks = %d, want %d", r.Puts, r.DirectChecks, r.Puts)
		}
	}
	out := RenderFig4(rows)
	if !strings.Contains(out, "access points") || !strings.Contains(out, "invocations") {
		t.Errorf("render: %s", out)
	}
}

func TestRunComplexityScaling(t *testing.T) {
	rows, err := RunComplexity([]int{200, 400, 800})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Bounded checks grow linearly with n (constant per action);
	// enumerating checks grow quadratically (linear per action).
	for i := 1; i < len(rows); i++ {
		prev, cur := rows[i-1], rows[i]
		bRatio := float64(cur.BoundedChecks) / float64(prev.BoundedChecks)
		eRatio := float64(cur.EnumeratingChecks) / float64(prev.EnumeratingChecks)
		if bRatio > 2.5 {
			t.Errorf("bounded checks ratio %f for 2x actions; want ~2 (constant per action)", bRatio)
		}
		if eRatio < 3 {
			t.Errorf("enumerating checks ratio %f for 2x actions; want ~4 (linear per action)", eRatio)
		}
	}
	// Per-action bounded checks must be a small constant.
	for _, r := range rows {
		perAction := float64(r.BoundedChecks) / float64(r.Actions)
		if perAction > 4 {
			t.Errorf("bounded checks per action = %f", perAction)
		}
	}
	out := RenderComplexity(rows)
	if !strings.Contains(out, "actions") {
		t.Errorf("render: %s", out)
	}
}

func TestRunRaceDiscovery(t *testing.T) {
	reports, err := RunRaceDiscovery(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	joined := RenderRaceReports(reports)
	for _, frag := range []string{
		"freedPageSpace", "paper finding 1",
		"chunks", "paper finding 2",
		"size hint", "paper finding 3",
	} {
		if !strings.Contains(joined, frag) {
			t.Errorf("race discovery missing %q:\n%s", frag, joined)
		}
	}
}

func TestRenderRaceReportsEmpty(t *testing.T) {
	out := RenderRaceReports([]RaceReport{{Scenario: "clean"}})
	if !strings.Contains(out, "no races found") {
		t.Errorf("render: %s", out)
	}
}

func TestRunOverhead(t *testing.T) {
	rows, err := RunOverhead(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PerEvent <= 0 {
			t.Errorf("%s: per-event = %v", r.Analysis, r.PerEvent)
		}
	}
	// The commutativity detector's per-event cost must stay within a small
	// factor of FASTTRACK's — the paper's overhead-comparability claim at
	// event granularity.
	rd2, ft := rows[0].PerEvent, rows[1].PerEvent
	if rd2 > 15*ft {
		t.Errorf("RD2 %v per event vs FASTTRACK %v: not comparable", rd2, ft)
	}
	out := RenderOverhead(rows)
	if !strings.Contains(out, "ns/event") || !strings.Contains(out, "RD2") {
		t.Errorf("render: %s", out)
	}
}

func TestRunAblations(t *testing.T) {
	rows, err := RunAblations(200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.Races != 0 {
			t.Errorf("%s: distinct-key waved puts should not race (%d)", r.Name, r.Races)
		}
	}
	opt, raw, comp := byName["optimized"], byName["raw"], byName["optimized+compaction"]
	if opt.Classes >= raw.Classes {
		t.Errorf("optimized classes %d !< raw %d", opt.Classes, raw.Classes)
	}
	if opt.PeakPoints >= raw.PeakPoints {
		t.Errorf("optimized peak points %d !< raw %d", opt.PeakPoints, raw.PeakPoints)
	}
	if comp.LivePoints >= opt.LivePoints {
		t.Errorf("compaction live points %d !< plain %d", comp.LivePoints, opt.LivePoints)
	}
	out := RenderAblations(rows)
	if !strings.Contains(out, "optimized+compaction") {
		t.Errorf("render: %s", out)
	}
}
