package harness

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/pipeline"
	"repro/internal/specs"
	"repro/internal/trace"
)

// StampScalingRow is one point of the worker-scaling experiment (ISSUE 6):
// the full detection front end — stamping plus shard dispatch plus
// detection — over one action-dominated trace, at one stamp-worker count.
// Workers 0 is the serial front end (the baseline the parallel two-pass
// engine must beat); workers >= 1 run the two-pass engine.
type StampScalingRow struct {
	Workers int // 0 = serial front end
	Events  int
	Time    time.Duration
	QPS     float64 // events per second
	Races   int
}

// RunStampScaling generates one action-dominated trace (scaled by scale)
// and runs it through the sharded pipeline once per stamp-worker count,
// re-stamping from scratch each run. On a multicore host throughput should
// grow with workers until the skeleton pass or detection dominates; at
// GOMAXPROCS=1 it measures how much front-end overhead the two-pass chunk
// path removes (the benchgate ratio check pins that regime).
func RunStampScaling(workerCounts []int, shards, scale int, seed int64) ([]StampScalingRow, error) {
	if scale <= 0 {
		scale = 1
	}
	if shards <= 0 {
		shards = 4
	}
	gcfg := trace.GenConfig{
		Threads: 8, Objects: 32, Keys: 64, Vals: 8, Locks: 4,
		OpsMin: 1500 * scale, OpsMax: 1500 * scale,
		PSize: 5, PGet: 45, PLocked: 10, PRemove: 20,
	}
	master := trace.Generate(rand.New(rand.NewSource(seed)), gcfg)
	rep := specs.MustRep("dict")

	run := func(workers int) (StampScalingRow, error) {
		ev := make([]trace.Event, len(master.Events))
		copy(ev, master.Events)
		for i := range ev {
			ev[i].Clock = nil
		}
		tr := &trace.Trace{Events: ev}
		p := pipeline.New(pipeline.Config{Shards: shards, StampWorkers: workers})
		for o := 0; o < gcfg.Objects; o++ {
			p.Register(trace.ObjID(o), rep)
		}
		start := time.Now()
		if err := p.RunTrace(tr); err != nil {
			return StampScalingRow{}, err
		}
		elapsed := time.Since(start)
		return StampScalingRow{
			Workers: workers,
			Events:  tr.Len(),
			Time:    elapsed,
			QPS:     float64(tr.Len()) / elapsed.Seconds(),
			Races:   p.Stats().Races,
		}, nil
	}

	rows := []StampScalingRow{}
	base, err := run(0)
	if err != nil {
		return nil, err
	}
	rows = append(rows, base)
	for _, w := range workerCounts {
		if w < 1 {
			continue
		}
		row, err := run(w)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderStampScaling formats the worker-scaling series.
func RenderStampScaling(rows []StampScalingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %10s %12s %14s %8s\n",
		"stampers", "events", "events/s", "time", "races")
	for _, r := range rows {
		label := "serial"
		if r.Workers > 0 {
			label = fmt.Sprintf("%d", r.Workers)
		}
		fmt.Fprintf(&b, "%10s %10d %12.0f %14s %8d\n",
			label, r.Events, r.QPS, r.Time.Round(time.Microsecond), r.Races)
	}
	return b.String()
}
