package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
)

// The paper observes that "most races are highly redundant (meaning that
// they occur on the same memory locations or on the same concurrent hash
// map objects)". Summarize groups raw race reports into equivalence groups
// so tools can present the distinct phenomena instead of thousands of
// repeats — the "(distinct)" numbers of Table 2 are per-object; the groups
// here are finer: per object and conflicting method pair.

// Group is one equivalence class of races: same object, same unordered
// method pair.
type Group struct {
	Obj     trace.ObjID
	MethodA string // lexicographically ≤ MethodB
	MethodB string
	Count   int
	Example Race
}

// String renders the group headline.
func (g Group) String() string {
	return fmt.Sprintf("o%d: %s vs %s — %d race(s), e.g. %s",
		int(g.Obj), g.MethodA, g.MethodB, g.Count, g.Example)
}

// Summarize groups races by (object, method pair), most frequent first.
func Summarize(races []Race) []Group {
	type key struct {
		obj  trace.ObjID
		a, b string
	}
	groups := map[key]*Group{}
	for _, r := range races {
		a, b := r.First.Method, r.Second.Method
		if a > b {
			a, b = b, a
		}
		k := key{r.Obj, a, b}
		g, ok := groups[k]
		if !ok {
			g = &Group{Obj: r.Obj, MethodA: a, MethodB: b, Example: r}
			groups[k] = g
		}
		g.Count++
	}
	out := make([]Group, 0, len(groups))
	for _, g := range groups {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Obj != out[j].Obj {
			return out[i].Obj < out[j].Obj
		}
		if out[i].MethodA != out[j].MethodA {
			return out[i].MethodA < out[j].MethodA
		}
		return out[i].MethodB < out[j].MethodB
	})
	return out
}

// RenderSummary formats groups one per line.
func RenderSummary(groups []Group) string {
	var b strings.Builder
	for _, g := range groups {
		fmt.Fprintf(&b, "%s\n", g)
	}
	return b.String()
}
