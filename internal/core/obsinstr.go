package core

import "repro/internal/obs"

// coreObs bundles every obs instrument the detector, its store layout, and
// its arena record into. One instance per registry: detectors built with a
// nil Config.Obs share the process-global set (defaultCoreObs, resolved
// from obs.Default — the pipeline's shards aggregate there exactly as
// before), while an rd2d session passes its scope and gets per-session
// series that roll up into the global ones on write.
//
// Hot-path updates are batched in pendingObs and flushed every
// obsFlushInterval actions (and on reclaim/compaction), so the per-action
// cost is a few integer adds — the shared atomics are touched ~1/64th as
// often. Structural changes (spill, grow, reclaim, arena traffic) update
// their gauges directly; they are rare.
type coreObs struct {
	actions   *obs.Counter
	checks    *obs.Counter
	races     *obs.Counter
	racyEvts  *obs.Counter
	reclaimed *obs.Counter
	active    *obs.Gauge
	phase1    *obs.Timer

	// Table-layout gauges (DESIGN.md §7 naming): inline-vs-spilled object
	// counts, total spill-table slots and live entries (load factor =
	// live/slots), and probe traffic (mean probe length = probes/lookups).
	tblInline  *obs.Gauge
	tblSpilled *obs.Gauge
	tblSlots   *obs.Gauge
	tblLive    *obs.Gauge
	tblLookups *obs.Counter
	tblProbes  *obs.Counter

	// Arena occupancy gauges (population across the registry's detectors).
	arenaObjInUse  *obs.Gauge
	arenaObjFree   *obs.Gauge
	arenaTblFree   *obs.Gauge
	arenaClockFree *obs.Gauge
}

func newCoreObs(reg *obs.Registry) *coreObs {
	if reg == nil {
		reg = obs.Default
	}
	return &coreObs{
		actions:   reg.Counter("core.actions"),
		checks:    reg.Counter("core.checks"),
		races:     reg.Counter("core.races"),
		racyEvts:  reg.Counter("core.racy_events"),
		reclaimed: reg.Counter("core.reclaimed_points"),
		active:    reg.Gauge("core.active_points"),
		phase1:    reg.Timer("core.phase1_ns"),

		tblInline:  reg.Gauge("core.table.inline_objects"),
		tblSpilled: reg.Gauge("core.table.spilled_objects"),
		tblSlots:   reg.Gauge("core.table.slots"),
		tblLive:    reg.Gauge("core.table.live"),
		tblLookups: reg.Counter("core.table.lookups"),
		tblProbes:  reg.Counter("core.table.probes"),

		arenaObjInUse:  reg.Gauge("core.arena.obj_inuse"),
		arenaObjFree:   reg.Gauge("core.arena.obj_free"),
		arenaTblFree:   reg.Gauge("core.arena.table_free"),
		arenaClockFree: reg.Gauge("core.arena.clock_free"),
	}
}

// defaultCoreObs is the process-global instrument set, shared by every
// detector whose config names no registry.
var defaultCoreObs = newCoreObs(nil)
