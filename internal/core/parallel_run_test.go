package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// rawTrace returns a private unstamped copy so each run stamps its own
// events.
func rawTrace(tr *trace.Trace) *trace.Trace {
	ev := make([]trace.Event, len(tr.Events))
	copy(ev, tr.Events)
	for i := range ev {
		ev[i].Clock = nil
	}
	return &trace.Trace{Events: ev}
}

// TestRunParallelMatchesSerial: the parallel front-end entry points
// (RunTraceParallel, RunSourceParallel) report byte-for-byte the verdicts
// of the serial ones on randomized traces — same races in the same order,
// same stats.
func TestRunParallelMatchesSerial(t *testing.T) {
	cfg := trace.DefaultGenConfig()
	cfg.Threads, cfg.Objects = 6, 12
	cfg.OpsMin, cfg.OpsMax = 50, 120
	newDet := func() *Detector {
		d := New(Config{})
		for o := 0; o < cfg.Objects; o++ {
			d.Register(trace.ObjID(o), dictRep)
		}
		return d
	}
	for _, seed := range []int64{1, 2, 3, 4} {
		tr := trace.Generate(rand.New(rand.NewSource(seed)), cfg)
		serial := newDet()
		if err := serial.RunTrace(rawTrace(tr)); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4} {
			for _, mode := range []string{"trace", "source"} {
				label := fmt.Sprintf("seed=%d workers=%d %s", seed, workers, mode)
				d := newDet()
				var err error
				if mode == "trace" {
					err = d.RunTraceParallel(rawTrace(tr), workers)
				} else {
					err = d.RunSourceParallel(rawTrace(tr).Source(), workers)
				}
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				want, have := serial.Races(), d.Races()
				if len(want) != len(have) {
					t.Fatalf("%s: race count %d, want %d", label, len(have), len(want))
				}
				for i := range want {
					if want[i].Obj != have[i].Obj ||
						want[i].FirstSeq != have[i].FirstSeq ||
						want[i].SecondSeq != have[i].SecondSeq {
						t.Fatalf("%s: race %d differs: %+v vs %+v",
							label, i, have[i], want[i])
					}
				}
				if ws, hs := serial.Stats(), d.Stats(); ws != hs {
					t.Fatalf("%s: stats %+v, want %+v", label, hs, ws)
				}
			}
		}
	}
}

// TestRunTraceParallelErrorParity: a malformed trace produces the same
// positioned error through the parallel entry point, with the valid prefix
// detected exactly as the serial loop would.
func TestRunTraceParallelErrorParity(t *testing.T) {
	tr := &trace.Trace{}
	tr.Append(trace.Fork(0, 1))
	tr.Append(trace.Act(1, trace.Action{Obj: 0, Method: "size", Rets: []trace.Value{trace.IntValue(0)}}))
	tr.Append(trace.Recv(1, 9)) // no pending send

	newDet := func() *Detector {
		d := New(Config{})
		d.Register(0, dictRep)
		return d
	}
	serial := newDet()
	serialErr := serial.RunTrace(rawTrace(tr))
	if serialErr == nil {
		t.Fatal("serial run unexpectedly succeeded")
	}
	par := newDet()
	parErr := par.RunTraceParallel(rawTrace(tr), 2)
	if parErr == nil {
		t.Fatal("parallel run unexpectedly succeeded")
	}
	if serialErr.Error() != parErr.Error() {
		t.Fatalf("error mismatch:\n  serial:   %v\n  parallel: %v", serialErr, parErr)
	}
	if s, p := serial.Stats().Actions, par.Stats().Actions; s != p || s != 1 {
		t.Fatalf("prefix actions: serial %d, parallel %d (want 1)", s, p)
	}
}
