package core

// This file is the allocation-free, cache-resident object-state layout the
// detector's back-end runs on (DESIGN.md §12). The paper's bound makes the
// per-action check O(1) (Theorem 6.6); this layout makes the *memory
// traffic* match that bound the way the FastTrack epochs of ptState match
// the clock representation:
//
//   - inline small-set: most objects have at most inlineCap live access
//     points; their ptState values live in a fixed array inside objState,
//     found by a linear scan over a contiguous key array — no hashing, no
//     pointer chase, no heap at all.
//   - open-addressed spill table: hot objects (wide key spaces) spill into
//     a power-of-two table with linear probing and *inline* ptState values
//     in a parallel array — one hash, a short contiguous probe, and the
//     state on the same cache path; no per-point heap allocation, no
//     map-bucket indirection.
//   - arena recycling: objStates, spill tables, and promoted clocks come
//     from the detector-private free-lists of arena.go, so DieEvent-heavy
//     traces run at steady-state zero allocation.
//
// The layout is semantics-free: lookups and inserts reproduce exactly what
// map[ap.Point]*ptState did, which backend_differential_test.go and the
// corpus differential in ci.sh pin against the retained RefDetector.

import (
	"repro/internal/ap"
)

// inlineCap is the number of access points stored inline in objState before
// spilling to an open-addressed table. Four covers the common case (a
// handful of live points per object) while keeping the inline key scan
// within a few cache lines.
const inlineCap = 4

// minTableCap is the smallest spill table (power of two, > inlineCap so a
// fresh spill is already under the 3/4 load bound).
const minTableCap = 16

// objState is the per-object detection state: the representation and the
// active access points with their shadow state. While table is nil the
// points live in the inline arrays keys[:n]/states[:n] (parallel arrays: a
// lookup scans the contiguous keys without dragging the fat states through
// the cache); after a spill they live in the table exclusively.
type objState struct {
	rep    ap.Rep
	n      int
	table  *ptTable
	keys   [inlineCap]ap.Point
	states [inlineCap]ptState
}

// ptTable is an open-addressed, linear-probed point table with inline
// states. Parallel arrays again: probes touch used/keys only. Capacity is a
// power of two; load is kept at or below 3/4.
type ptTable struct {
	mask   uint64
	live   int
	used   []bool
	keys   []ap.Point
	states []ptState
}

// ptEntry pairs a point with its state value — the scratch element Compact
// uses to rebuild tables in place.
type ptEntry struct {
	pt ap.Point
	ps ptState
}

// lookup returns the state of pt, or nil when pt is not active. It is the
// phase-1 candidate probe: one hash and a short contiguous scan for spilled
// objects, a linear scan of at most inlineCap contiguous keys otherwise.
func (d *Detector) lookup(st *objState, pt ap.Point) *ptState {
	if t := st.table; t != nil {
		d.pend.lookups++
		i := pt.Hash() & t.mask
		for probes := 1; ; probes++ {
			if !t.used[i] {
				d.pend.probes += probes
				return nil
			}
			if t.keys[i] == pt {
				d.pend.probes += probes
				return &t.states[i]
			}
			i = (i + 1) & t.mask
		}
	}
	for i := 0; i < st.n; i++ {
		if st.keys[i] == pt {
			return &st.states[i]
		}
	}
	return nil
}

// lookupOrInsert returns the state of pt, inserting a zeroed state when the
// point is not yet active (existed reports which). The returned pointer is
// valid until the next insert into the same object. It is the phase-2
// entry point: the probe that finds the point is the probe that finds its
// slot.
func (d *Detector) lookupOrInsert(st *objState, pt ap.Point) (ps *ptState, existed bool) {
	if st.table != nil {
		return d.tableInsert(st, pt)
	}
	for i := 0; i < st.n; i++ {
		if st.keys[i] == pt {
			return &st.states[i], true
		}
	}
	if st.n < inlineCap {
		i := st.n
		st.n = i + 1
		st.keys[i] = pt
		return &st.states[i], false
	}
	d.spill(st)
	return d.tableInsert(st, pt)
}

// tableInsert is lookupOrInsert's spilled path.
func (d *Detector) tableInsert(st *objState, pt ap.Point) (*ptState, bool) {
	t := st.table
	d.pend.lookups++
	i := pt.Hash() & t.mask
	probes := 1
	for t.used[i] {
		if t.keys[i] == pt {
			d.pend.probes += probes
			return &t.states[i], true
		}
		i = (i + 1) & t.mask
		probes++
	}
	d.pend.probes += probes
	if (t.live+1)*4 > len(t.used)*3 {
		d.growTable(st)
		t = st.table
		i = pt.Hash() & t.mask
		for t.used[i] {
			i = (i + 1) & t.mask
		}
	}
	t.used[i] = true
	t.keys[i] = pt
	t.live++
	d.pend.tableLive++
	return &t.states[i], false
}

// spill moves an object's inline points into a fresh (recycled) table.
func (d *Detector) spill(st *objState) {
	t := d.arena.newTable(minTableCap)
	for i := 0; i < st.n; i++ {
		j := st.keys[i].Hash() & t.mask
		for t.used[j] {
			j = (j + 1) & t.mask
		}
		t.used[j] = true
		t.keys[j] = st.keys[i]
		t.states[j] = st.states[i]
	}
	t.live = st.n
	d.pend.tableLive += st.n
	st.keys = [inlineCap]ap.Point{}
	st.states = [inlineCap]ptState{}
	st.n = 0
	st.table = t
	d.ob.tblInline.Add(-1)
	d.ob.tblSpilled.Add(1)
	d.ob.tblSlots.Add(int64(len(t.used)))
}

// growTable doubles an object's spill table, rehashing every entry.
// Pointers into the old state array are invalid afterwards — callers hold
// none across an insert.
func (d *Detector) growTable(st *objState) {
	old := st.table
	t := d.arena.newTable(2 * len(old.used))
	for i, u := range old.used {
		if !u {
			continue
		}
		j := old.keys[i].Hash() & t.mask
		for t.used[j] {
			j = (j + 1) & t.mask
		}
		t.used[j] = true
		t.keys[j] = old.keys[i]
		t.states[j] = old.states[i]
	}
	t.live = old.live
	st.table = t
	d.ob.tblSlots.Add(int64(len(t.used) - len(old.used)))
	d.arena.putTable(old)
}

// compactObj removes every point of st whose accumulated clock is ⊑
// threshold, releasing its promoted clock to the arena, and returns the
// number removed. Spilled tables are rebuilt from the survivors (open
// addressing has no cheap single-slot delete); an object whose survivors
// fit inline is un-spilled, so compaction returns churny objects to the
// cache-resident fast path.
func (d *Detector) compactObj(st *objState, threshold []uint64) int {
	if t := st.table; t != nil {
		d.scratch = d.scratch[:0]
		removed := 0
		for i, u := range t.used {
			if !u {
				continue
			}
			if t.states[i].ordered(threshold) {
				d.arena.freeClock(t.states[i].vc)
				removed++
				continue
			}
			d.scratch = append(d.scratch, ptEntry{pt: t.keys[i], ps: t.states[i]})
		}
		if removed == 0 {
			return 0
		}
		d.pend.tableLive -= t.live
		if len(d.scratch) <= inlineCap {
			// Un-spill: the survivors fit inline again.
			st.table = nil
			st.n = len(d.scratch)
			for i, e := range d.scratch {
				st.keys[i] = e.pt
				st.states[i] = e.ps
			}
			d.ob.tblSpilled.Add(-1)
			d.ob.tblInline.Add(1)
			d.ob.tblSlots.Add(-int64(len(t.used)))
			d.arena.putTable(t)
		} else {
			// Rebuild in place (shrinking when the table is mostly empty).
			capacity := len(t.used)
			for capacity > minTableCap && len(d.scratch)*4 <= capacity {
				capacity /= 2
			}
			if capacity != len(t.used) {
				d.ob.tblSlots.Add(int64(capacity - len(t.used)))
				d.arena.putTable(t)
				t = d.arena.newTable(capacity)
				st.table = t
			} else {
				clear(t.used)
				clear(t.keys)
				clear(t.states)
			}
			for _, e := range d.scratch {
				j := e.pt.Hash() & t.mask
				for t.used[j] {
					j = (j + 1) & t.mask
				}
				t.used[j] = true
				t.keys[j] = e.pt
				t.states[j] = e.ps
			}
			t.live = len(d.scratch)
			d.pend.tableLive += t.live
		}
		clear(d.scratch)
		return removed
	}
	w := 0
	removed := 0
	for i := 0; i < st.n; i++ {
		if st.states[i].ordered(threshold) {
			d.arena.freeClock(st.states[i].vc)
			removed++
			continue
		}
		if w != i {
			st.keys[w] = st.keys[i]
			st.states[w] = st.states[i]
		}
		w++
	}
	for i := w; i < st.n; i++ {
		st.keys[i] = ap.Point{}
		st.states[i] = ptState{}
	}
	st.n = w
	return removed
}

// releaseObj frees every point of st (clocks back to the arena), recycles
// its spill table and the objState itself, and returns the number of points
// released. The object-death path of reclaim.
func (d *Detector) releaseObj(st *objState) int {
	released := 0
	if t := st.table; t != nil {
		for i, u := range t.used {
			if u {
				d.arena.freeClock(t.states[i].vc)
				released++
			}
		}
		d.pend.tableLive -= t.live
		d.ob.tblSpilled.Add(-1)
		d.ob.tblSlots.Add(-int64(len(t.used)))
		d.arena.putTable(t)
		st.table = nil
	} else {
		for i := 0; i < st.n; i++ {
			d.arena.freeClock(st.states[i].vc)
			released++
		}
		d.ob.tblInline.Add(-1)
	}
	st.keys = [inlineCap]ap.Point{}
	st.states = [inlineCap]ptState{}
	st.n = 0
	st.rep = nil
	d.arena.putObjState(st)
	return released
}
