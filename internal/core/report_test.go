package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestReportWriterJSONL runs the Fig 3 trace with every race streamed
// through a ReportWriter and checks the JSONL output: one valid object per
// line carrying both sides' actions, threads, points, and clocks.
func TestReportWriterJSONL(t *testing.T) {
	var buf bytes.Buffer
	rw := NewReportWriter(&buf)
	d := newDictDetector(Config{OnRace: func(r Race) {
		if err := rw.Write(r, "dict"); err != nil {
			t.Fatal(err)
		}
	}})
	if err := d.RunTrace(fig3Trace()); err != nil {
		t.Fatal(err)
	}
	if rw.Count() != d.Stats().Races || rw.Count() == 0 {
		t.Fatalf("wrote %d records, detector found %d races", rw.Count(), d.Stats().Races)
	}

	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		var rec RaceRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", lines, err, sc.Text())
		}
		if rec.Spec != "dict" {
			t.Errorf("line %d: spec = %q, want dict", lines, rec.Spec)
		}
		if rec.First.Method == "" || rec.Second.Method == "" {
			t.Errorf("line %d: missing method: %+v", lines, rec)
		}
		if rec.First.Thread == rec.Second.Thread {
			t.Errorf("line %d: both sides on t%d", lines, rec.First.Thread)
		}
		if len(rec.Second.Clock) == 0 {
			t.Errorf("line %d: second side has no clock", lines)
		}
		if !strings.Contains(rec.First.Action, rec.First.Method) {
			t.Errorf("line %d: action %q does not mention method %q",
				lines, rec.First.Action, rec.First.Method)
		}
		if rec.First.Point == "" || rec.Second.Point == "" {
			t.Errorf("line %d: missing access point: %+v", lines, rec)
		}
	}
	if lines != rw.Count() {
		t.Fatalf("output has %d lines, writer counted %d", lines, rw.Count())
	}
}

// TestReportWriterConcurrent exercises the writer from many goroutines (the
// pipeline's OnRace callbacks run on shard goroutines) and checks every
// line stays a valid, untorn JSON object.
func TestReportWriterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	rw := NewReportWriter(&buf)
	race := Race{Obj: 1, SecondClock: []uint64{1, 2}, FirstClock: []uint64{2, 1}}
	var wg sync.WaitGroup
	const writers, per = 8, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := rw.Write(race, "dict"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if rw.Count() != writers*per {
		t.Fatalf("count = %d, want %d", rw.Count(), writers*per)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		var rec RaceRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("torn line %d: %v", lines, err)
		}
	}
	if lines != writers*per {
		t.Fatalf("lines = %d, want %d", lines, writers*per)
	}
}
