// Package core implements the paper's commutativity race detector
// (Algorithm 1, Section 5). The detector consumes an event stream whose
// events carry vector clocks (stamped by internal/hb or by the monitored
// runtime) and maintains, per shared object:
//
//	active(o)  — the set of access points touched so far
//	pt.vc      — for each active point, the join of the clocks of all
//	             events that touched it
//
// For an action event e with points η(a), phase 1 looks for an active
// conflicting point whose accumulated clock is not ⊑ vc(e) — exactly when
// some earlier event that touched the point may happen in parallel with e
// (Theorem 5.1) — and reports a commutativity race. Phase 2 folds vc(e)
// into the touched points' clocks.
//
// Two engines are provided, matching Section 5.4:
//
//	EngineBounded     — iterate Conflicts(pt) and look each candidate up in
//	                    active(o): Θ(1) work per action for representations
//	                    translated from ECL (Theorem 6.6).
//	EngineEnumerating — iterate active(o) and test ConflictsWith: Θ(|A|)
//	                    work per action; the paper's "direct approach".
//
// EngineAuto picks Bounded when the object's representation supports it.
package core

import (
	"fmt"
	"io"

	"repro/internal/ap"
	"repro/internal/hb"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// obsFlushInterval is the batched-flush cadence in actions; it doubles as
// the phase-1 latency sampling rate (one timed action per interval), which
// keeps the two monotonic clock reads off 63 of every 64 actions.
const obsFlushInterval = 64

// pendingObs accumulates metric deltas between flushes.
type pendingObs struct {
	actions   int
	checks    int
	races     int
	racyEvts  int
	reclaimed int
	active    int
	lookups   int // spill-table probe sequences (core.table.lookups)
	probes    int // spill-table slot inspections (core.table.probes)
	tableLive int // delta of live spill-table entries (core.table.live)
}

// Engine selects the conflict-lookup strategy.
type Engine int

// The engines of Section 5.4.
const (
	EngineAuto Engine = iota
	EngineBounded
	EngineEnumerating
)

func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineBounded:
		return "bounded"
	case EngineEnumerating:
		return "enumerating"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Race is one reported commutativity race: the current event races with an
// earlier event that touched a conflicting access point.
type Race struct {
	Obj trace.ObjID

	// The current (second) event.
	Second       trace.Action
	SecondThread vclock.Tid
	SecondSeq    int
	SecondClock  vclock.VC
	SecondPoint  string

	// The conflicting active point and the last event that touched it.
	// FirstClock is the point's accumulated clock (the join over all
	// touching events), so the event actually concurrent with Second may
	// be an earlier toucher of the same point than First — the algorithm
	// retains only the join (see the proof of Theorem 5.1).
	First       trace.Action
	FirstThread vclock.Tid
	FirstSeq    int
	FirstClock  vclock.VC
	FirstPoint  string
}

// String renders the race report.
func (r Race) String() string {
	return fmt.Sprintf(
		"commutativity race on o%d: t%d %s (event %d, %s, point %s) conflicts with t%d %s (event %d, clock %s, point %s)",
		int(r.Obj),
		r.SecondThread, r.Second, r.SecondSeq, r.SecondClock, r.SecondPoint,
		r.FirstThread, r.First, r.FirstSeq, r.FirstClock, r.FirstPoint)
}

// Stats aggregates detector counters. Checks is the number of conflict
// lookups in phase 1 — the quantity Section 5.4 and Fig 4 reason about.
type Stats struct {
	Actions      int // action events processed
	Checks       int // phase-1 conflict checks (candidate lookups or active scans)
	Races        int // race reports (point pairs)
	RacyEvents   int // events that participated in at least one race
	ActivePoints int // currently active points across live objects
	PeakActive   int // maximum of ActivePoints over time
	Reclaimed    int // points reclaimed by object death
}

// Config configures a Detector.
type Config struct {
	Engine Engine
	// OnRace, when set, is invoked for every race found.
	OnRace func(Race)
	// MaxRaces caps the retained Races slice (counters keep counting).
	// Zero means DefaultMaxRaces.
	MaxRaces int
	// Obs is the registry the detector's metrics record into. Nil means
	// obs.Default (all detectors aggregate process-wide, the historical
	// behavior); rd2d passes each session's scope so the same series also
	// exist per session.
	Obs *obs.Registry
}

// DefaultMaxRaces is the default cap on retained race reports.
const DefaultMaxRaces = 10000

// Detector is the commutativity race detector. It is not safe for
// concurrent use; the monitored runtime serializes events into it.
//
// Object state lives in the allocation-free layout of store.go (inline
// small-sets spilling to open-addressed tables) backed by the detector's
// private arena (arena.go); the map-based layout it replaced survives as
// RefDetector (reference.go), which differential tests hold it to.
type Detector struct {
	cfg      Config
	ob       *coreObs
	reps     map[trace.ObjID]ap.Rep
	objects  map[trace.ObjID]*objState
	races    []Race
	racyObjs map[trace.ObjID]struct{}
	deadRacy int // racy objects already reclaimed (still counted as distinct)
	stats    Stats
	pend     pendingObs
	ptBuf    []ap.Point
	cfBuf    []ap.Point
	arena    backendArena
	scratch  []ptEntry // Compact's table-rebuild buffer

	// Last-object memoization: consecutive actions on the same object (the
	// common case in sharded streams) skip the d.objects map hit. lastSt is
	// invalidated when the object dies.
	lastObj trace.ObjID
	lastSt  *objState
}

// ptState is the per-access-point shadow state. Points touched so far by a
// single thread are stored in FastTrack epoch form (vc == nil, epoch = c@t):
// by the epoch lemma (see vclock.Epoch) the one-comparison check
// epoch.LEQ(d) gives the same verdict as the full accumulated clock, and no
// clock is allocated. The first cross-thread touch promotes the point to a
// full clock (carved from the detector's arena) that folds in the epoch.
// ptState is stored by value in objState's inline array or spill table; it
// holds no pointers into either, so table rebuilds may copy it freely.
type ptState struct {
	epoch      vclock.Epoch // valid while vc == nil
	vc         vclock.VC    // full accumulated clock after promotion
	lastAct    trace.Action
	lastThread vclock.Tid
	lastSeq    int
	desc       string // memoized rep.Describe of this point ("" until first race)
}

// ordered reports whether the point's accumulated clock is ⊑ c — the
// phase-1 test of Algorithm 1.
func (ps *ptState) ordered(c vclock.VC) bool {
	if ps.vc == nil {
		return ps.epoch.LEQ(c)
	}
	return ps.vc.LEQ(c)
}

// clock returns an independent copy of the point's accumulated clock for
// race reports (epoch points expand to their sparse equivalent).
func (ps *ptState) clock() vclock.VC {
	if ps.vc == nil {
		return ps.epoch.VC()
	}
	return ps.vc.Clone()
}

// New returns a detector with the given configuration.
func New(cfg Config) *Detector {
	if cfg.MaxRaces == 0 {
		cfg.MaxRaces = DefaultMaxRaces
	}
	ob := defaultCoreObs
	if cfg.Obs != nil {
		ob = newCoreObs(cfg.Obs)
	}
	d := &Detector{
		cfg:      cfg,
		ob:       ob,
		reps:     map[trace.ObjID]ap.Rep{},
		objects:  map[trace.ObjID]*objState{},
		racyObjs: map[trace.ObjID]struct{}{},
	}
	d.arena.ob = ob
	return d
}

// Register associates an object with its access point representation.
// Objects must be registered before their first action.
func (d *Detector) Register(obj trace.ObjID, rep ap.Rep) {
	d.reps[obj] = rep
}

// Process consumes one stamped event. Only action and die events are
// examined; synchronization events are handled upstream by the
// happens-before engine. e.Clock may be a segment snapshot shared with
// other events (the hb immutability contract): the detector only reads it
// — LEQ checks, Get, and clones into its own shadow state — never writes
// through it.
func (d *Detector) Process(e *trace.Event) error {
	switch e.Kind {
	case trace.ActionEvent:
		return d.action(e)
	case trace.DieEvent:
		d.reclaim(e.Act.Obj)
		return nil
	default:
		return nil
	}
}

// action runs Algorithm 1 on one action event.
func (d *Detector) action(e *trace.Event) error {
	if e.Clock == nil {
		return fmt.Errorf("core: event %d (%s) has no vector clock; stamp events before detection", e.Seq, e)
	}
	obj := e.Act.Obj
	st := d.lastSt
	if st == nil || obj != d.lastObj {
		st = d.objects[obj]
		if st == nil {
			rep, ok := d.reps[obj]
			if !ok {
				return fmt.Errorf("core: object o%d has no registered representation", obj)
			}
			st = d.arena.newObjState()
			st.rep = rep
			d.objects[obj] = st
			d.ob.tblInline.Add(1)
		}
		d.lastObj, d.lastSt = obj, st
	}
	d.stats.Actions++
	d.pend.actions++

	pts, err := st.rep.Touch(d.ptBuf[:0], e.Act)
	if err != nil {
		return err
	}
	d.ptBuf = pts[:0]

	// Phase 1: check for commutativity races. Checks are counted locally
	// and folded into stats once per action; one action per flush interval
	// is span-timed for the core.phase1_ns latency histogram.
	t0 := int64(0)
	if d.stats.Actions&(obsFlushInterval-1) == 0 {
		t0 = d.ob.phase1.Start()
	}
	checks := 0
	raced := false
	useBounded := st.rep.Bounded() && d.cfg.Engine != EngineEnumerating
	for _, pt := range pts {
		if useBounded {
			cands := st.rep.Conflicts(d.cfBuf[:0], pt)
			d.cfBuf = cands[:0]
			for _, cand := range cands {
				checks++
				if ps := d.lookup(st, cand); ps != nil && !ps.ordered(e.Clock) {
					d.report(e, st, pt, cand, ps)
					raced = true
				}
			}
		} else if t := st.table; t != nil {
			for i, u := range t.used {
				if !u {
					continue
				}
				checks++
				cand, ps := t.keys[i], &t.states[i]
				if st.rep.ConflictsWith(pt, cand) && !ps.ordered(e.Clock) {
					d.report(e, st, pt, cand, ps)
					raced = true
				}
			}
		} else {
			for i := 0; i < st.n; i++ {
				checks++
				cand, ps := st.keys[i], &st.states[i]
				if st.rep.ConflictsWith(pt, cand) && !ps.ordered(e.Clock) {
					d.report(e, st, pt, cand, ps)
					raced = true
				}
			}
		}
	}
	d.ob.phase1.ObserveSince(t0)
	d.stats.Checks += checks
	d.pend.checks += checks
	if raced {
		d.stats.RacyEvents++
		d.pend.racyEvts++
	}

	// Phase 2: fold the event's clock into the touched points. The state
	// pointer from lookupOrInsert stays valid for the body of one iteration
	// (nothing else inserts into st before the next lookupOrInsert).
	for _, pt := range pts {
		if ps, existed := d.lookupOrInsert(st, pt); existed {
			switch {
			case ps.vc != nil:
				ps.vc = ps.vc.Join(e.Clock)
			case e.Thread == ps.epoch.T:
				// Same writer: same-thread clocks are pointwise monotone,
				// so the join collapses to overwriting the epoch.
				ps.epoch.C = e.Clock.Get(e.Thread)
			default:
				// Second thread: promote to a full clock. The accumulated
				// history of the old writer is represented by its epoch,
				// which the lemma makes order-equivalent to its full clock.
				// The carve is wide enough that JoinEpoch cannot grow it.
				w := len(e.Clock)
				if t := int(ps.epoch.T) + 1; t > w {
					w = t
				}
				ps.vc = d.arena.cloneClock(e.Clock, w).JoinEpoch(ps.epoch)
			}
			ps.lastAct = e.Act
			ps.lastThread = e.Thread
			ps.lastSeq = e.Seq
		} else {
			ps.lastAct = e.Act
			ps.lastThread = e.Thread
			ps.lastSeq = e.Seq
			if ep := vclock.EpochOf(e.Thread, e.Clock); ep.C > 0 {
				ps.epoch = ep
			} else {
				// Clock without an own-entry (not produced by internal/hb):
				// the epoch lemma does not apply, keep the full clock.
				ps.vc = d.arena.cloneClock(e.Clock, 0)
			}
			d.addActive(1)
		}
	}
	if d.stats.Actions&(obsFlushInterval-1) == 0 {
		d.FlushObs()
	}
	return nil
}

// addActive moves the active-point count by n and maintains the peak at
// every change — including the negative deltas of reclaim and Compact, so
// the invariant PeakActive == max-over-time(ActivePoints) holds locally
// wherever the count moves rather than only on the action path.
func (d *Detector) addActive(n int) {
	d.stats.ActivePoints += n
	if d.stats.ActivePoints > d.stats.PeakActive {
		d.stats.PeakActive = d.stats.ActivePoints
	}
	d.pend.active += n
}

// FlushObs publishes the batched metric deltas to the process-global obs
// counters. It runs automatically every obsFlushInterval actions and on
// reclaim/compaction; call it after a run (RunTrace and pipeline shard
// drain do) so final snapshots are exact.
func (d *Detector) FlushObs() {
	p := &d.pend
	if p.actions != 0 {
		d.ob.actions.Add(uint64(p.actions))
	}
	if p.checks != 0 {
		d.ob.checks.Add(uint64(p.checks))
	}
	if p.races != 0 {
		d.ob.races.Add(uint64(p.races))
	}
	if p.racyEvts != 0 {
		d.ob.racyEvts.Add(uint64(p.racyEvts))
	}
	if p.reclaimed != 0 {
		d.ob.reclaimed.Add(uint64(p.reclaimed))
	}
	if p.active != 0 {
		d.ob.active.Add(int64(p.active))
	}
	if p.lookups != 0 {
		d.ob.tblLookups.Add(uint64(p.lookups))
	}
	if p.probes != 0 {
		d.ob.tblProbes.Add(uint64(p.probes))
	}
	if p.tableLive != 0 {
		d.ob.tblLive.Add(int64(p.tableLive))
	}
	*p = pendingObs{}
}

func (d *Detector) report(e *trace.Event, st *objState, pt, cand ap.Point, ps *ptState) {
	d.stats.Races++
	d.pend.races++
	d.racyObjs[e.Act.Obj] = struct{}{}
	if len(d.races) >= d.cfg.MaxRaces && d.cfg.OnRace == nil {
		// Beyond the retention cap with nobody listening: count only and
		// skip the (comparatively expensive) report construction.
		return
	}
	// Report construction dominates the allocation profile of racy traces
	// (string formatting plus clock snapshots), so both are de-duplicated:
	// Describe strings are memoized in the point state (racy points race
	// repeatedly) and clock snapshots are carved from the never-recycled
	// report slab. Contents are identical to Describe/Clone output.
	if ps.desc == "" {
		ps.desc = st.rep.Describe(cand)
	}
	r := Race{
		Obj:          e.Act.Obj,
		Second:       e.Act,
		SecondThread: e.Thread,
		SecondSeq:    e.Seq,
		SecondClock:  d.arena.reportClock(e.Clock),
		SecondPoint:  d.describe(st, pt),
		First:        ps.lastAct,
		FirstThread:  ps.lastThread,
		FirstSeq:     ps.lastSeq,
		FirstClock:   d.reportPtClock(ps),
		FirstPoint:   ps.desc,
	}
	if len(d.races) < d.cfg.MaxRaces {
		d.races = append(d.races, r)
	}
	if d.cfg.OnRace != nil {
		d.cfg.OnRace(r)
	}
}

// describe renders pt for a race report, memoizing in the point's state
// when pt is already active (the second point of one race is routinely the
// first point of the next).
func (d *Detector) describe(st *objState, pt ap.Point) string {
	if ps := d.lookup(st, pt); ps != nil {
		if ps.desc == "" {
			ps.desc = st.rep.Describe(pt)
		}
		return ps.desc
	}
	return st.rep.Describe(pt)
}

// reportPtClock snapshots a point's accumulated clock for a race report,
// carving from the report slab (promoted clocks by copy, epochs by their
// sparse ⟨…, C, …⟩ expansion — the same contents ptState.clock returns).
func (d *Detector) reportPtClock(ps *ptState) vclock.VC {
	if ps.vc != nil {
		return d.arena.reportClock(ps.vc)
	}
	return d.arena.reportEpochVC(ps.epoch)
}

// Compact removes every active point whose accumulated clock is ⊑
// threshold — the Section 5.3 "remove unnecessary active access points"
// optimization the paper leaves as future work. Pass the meet of all live
// threads' clocks (hb.Engine.MeetLive): a point dominated by that meet is
// ordered before every possible future event, so it can never participate
// in a race again and dropping it cannot change any verdict. Soundness
// assumes future threads are forked by currently live threads (true for
// fork–join programs; a root thread appearing from nowhere would not
// dominate the threshold).
func (d *Detector) Compact(threshold vclock.VC) int {
	if threshold.Bottom() {
		return 0
	}
	removed := 0
	for _, st := range d.objects {
		removed += d.compactObj(st, threshold)
	}
	d.addActive(-removed)
	d.stats.Reclaimed += removed
	d.pend.reclaimed += removed
	d.FlushObs()
	return removed
}

// reclaim implements the Section 5.3 optimization: when an object dies, all
// of its access points, clocks, and registration state are released. The
// representation entry and the racy-object marker go too — under object
// churn (millions of short-lived objects) they would otherwise grow without
// bound; the distinct-object count is preserved in a counter. A dead
// object's id must not be reused (the monitored runtime never does).
func (d *Detector) reclaim(obj trace.ObjID) {
	st := d.objects[obj]
	if st == nil {
		delete(d.reps, obj)
		return
	}
	if obj == d.lastObj {
		// Drop the memo before the objState is recycled: the arena may hand
		// it to a different object while lastObj still names this one.
		d.lastSt = nil
	}
	released := d.releaseObj(st)
	d.stats.Reclaimed += released
	d.pend.reclaimed += released
	d.addActive(-released)
	// Flush so live snapshots see the drop (and its gauge churn)
	// immediately after a burst of frees, not an interval later.
	d.FlushObs()
	delete(d.objects, obj)
	delete(d.reps, obj)
	if _, ok := d.racyObjs[obj]; ok {
		delete(d.racyObjs, obj)
		d.deadRacy++
	}
}

// Races returns the retained race reports (capped at Config.MaxRaces).
func (d *Detector) Races() []Race { return d.races }

// Stats returns a snapshot of the counters.
func (d *Detector) Stats() Stats { return d.stats }

// ArenaBytes returns the total bytes the detector's arena has requested
// from the heap. The arena recycles internally and never frees, so this is
// a monotone upper bound on the detector's resident detection-state
// footprint — the figure the fleet scheduler charges against per-tenant
// arena-byte quotas.
func (d *Detector) ArenaBytes() int64 { return d.arena.allocBytes }

// StatSnapshot exposes the counters through the unified obs.StatSource
// surface (the order matches the Stats struct).
func (s Stats) StatSnapshot() []obs.Stat {
	return []obs.Stat{
		{Name: "actions", Value: int64(s.Actions)},
		{Name: "checks", Value: int64(s.Checks)},
		{Name: "races", Value: int64(s.Races)},
		{Name: "racy_events", Value: int64(s.RacyEvents)},
		{Name: "active_points", Value: int64(s.ActivePoints)},
		{Name: "peak_active", Value: int64(s.PeakActive)},
		{Name: "reclaimed_points", Value: int64(s.Reclaimed)},
	}
}

// StatSnapshot implements obs.StatSource: the counters plus the exact
// distinct racy-object count.
func (d *Detector) StatSnapshot() []obs.Stat {
	return append(d.stats.StatSnapshot(),
		obs.Stat{Name: "distinct_objects", Value: int64(d.DistinctObjects())})
}

// DistinctObjects returns the number of distinct objects with at least one
// race — the "(distinct)" column of Table 2 for RD2. Unlike Races, this
// count is exact even when the retained reports are capped, and it survives
// object reclamation.
func (d *Detector) DistinctObjects() int {
	return len(d.racyObjs) + d.deadRacy
}

// RunTrace stamps the trace with a fresh happens-before engine and runs the
// detector over every event. Objects must already be registered.
func (d *Detector) RunTrace(tr *trace.Trace) error {
	defer d.FlushObs()
	en := hb.New()
	for i := range tr.Events {
		e := &tr.Events[i]
		if _, err := en.Process(e); err != nil {
			return fmt.Errorf("core: event %d (%s): %w", i, e, err)
		}
		if err := d.Process(e); err != nil {
			return err
		}
	}
	return nil
}

// RunSource stamps and detects over a streaming event source (a wire
// decoder, a text scanner, an in-memory slice) without materializing the
// trace: one event is live at a time. Objects must already be registered.
// It reports the identical race set as RunTrace over the same events.
func (d *Detector) RunSource(src trace.Source) error {
	defer d.FlushObs()
	st := hb.NewStream(src)
	for {
		e, err := st.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
		if err := d.Process(&e); err != nil {
			return err
		}
	}
}

// RunTraceParallel is RunTrace with the two-pass parallel stamping front
// end (hb.StampAllParallel): the skeleton pass walks synchronization
// events serially, worker goroutines stamp the action bodies, and
// detection then runs over the stamped events. Clocks — and therefore race
// verdicts, stats, and error positions — are identical to RunTrace's.
// workers <= 1 degrades to a serial two-pass stamp.
func (d *Detector) RunTraceParallel(tr *trace.Trace, workers int) error {
	defer d.FlushObs()
	ps := hb.NewParallelStamper(workers)
	n, serr := ps.StampChunk(tr.Events)
	ps.Engine().VerifySnapshots()
	// The stamped valid prefix is detected either way, matching the
	// serial loop's stop-at-first-error behavior.
	for i := 0; i < n; i++ {
		if err := d.Process(&tr.Events[i]); err != nil {
			return err
		}
	}
	if serr != nil {
		return fmt.Errorf("core: event %d (%s): %w", n, tr.Events[n].String(), serr)
	}
	return nil
}

// RunSourceParallel is RunSource with the chunked pipelined front end
// (hb.ParallelStream): skeleton stamping of the next chunk overlaps body
// stamping of the current one, and detection consumes stamped chunks in
// order. Race verdicts are identical to RunSource's.
func (d *Detector) RunSourceParallel(src trace.Source, workers int) error {
	defer d.FlushObs()
	st := hb.NewParallelStream(src, hb.ParallelStreamConfig{Workers: workers})
	defer st.Close()
	for {
		e, err := st.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
		if err := d.Process(&e); err != nil {
			return err
		}
	}
}
