package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ap"
	"repro/internal/hb"
	"repro/internal/trace"
)

// runSplit stamps tr and feeds it through a detector that is exported at
// the split point and imported into a fresh one (split < 0 disables the
// handoff), compacting every compactEvery events. It returns the imported
// (or sole) detector and the concatenated OnRace stream.
func runSplit(t *testing.T, tr *trace.Trace, reps map[trace.ObjID]ap.Rep,
	engine Engine, split, compactEvery int) (*Detector, []string) {
	t.Helper()
	var raceLog []string
	cfg := Config{Engine: engine, MaxRaces: 1 << 20,
		OnRace: func(r Race) { raceLog = append(raceLog, r.String()) }}
	repFor := func(obj trace.ObjID) (ap.Rep, error) {
		rep, ok := reps[obj]
		if !ok {
			return nil, fmt.Errorf("no rep for o%d", obj)
		}
		return rep, nil
	}
	d := New(cfg)
	for obj, rep := range reps {
		d.Register(obj, rep)
	}
	en := hb.New()
	for i := range tr.Events {
		if i == split {
			st := d.ExportState()
			d2 := New(cfg)
			if err := d2.ImportState(st, repFor); err != nil {
				t.Fatalf("ImportState at %d: %v", split, err)
			}
			for obj, rep := range reps {
				d2.Register(obj, rep)
			}
			// Keep driving the old detector to prove the export is
			// independent of it.
			d.Compact(en.MeetLive())
			d = d2
		}
		e := &tr.Events[i]
		if _, err := en.Process(e); err != nil {
			t.Fatal(err)
		}
		if err := d.Process(e); err != nil {
			t.Fatal(err)
		}
		if compactEvery > 0 && i > 0 && i%compactEvery == 0 {
			d.Compact(en.MeetLive())
		}
	}
	d.FlushObs()
	return d, raceLog
}

func stateReps(n int) map[trace.ObjID]ap.Rep {
	reps := map[trace.ObjID]ap.Rep{}
	for o := 0; o < n; o++ {
		reps[trace.ObjID(o)] = ap.DictRep{}
	}
	return reps
}

// A detector rebuilt from an export at any split point must report the
// remaining races identically to the uninterrupted run and land on the same
// stats — across compaction, spilled tables, promoted clocks, and object
// death, for both engines.
func TestDetectorExportImportDifferential(t *testing.T) {
	type caseT struct {
		name         string
		tr           *trace.Trace
		reps         map[trace.ObjID]ap.Rep
		compactEvery int
	}
	var cases []caseT
	for seed := int64(1); seed <= 3; seed++ {
		gcfg := trace.GenConfig{Threads: 4, Objects: 3, Keys: 12, Vals: 3, Locks: 2,
			OpsMin: 120, OpsMax: 240, PSize: 10, PGet: 30, PLocked: 30, PRemove: 20}
		tr := trace.Generate(rand.New(rand.NewSource(seed)), gcfg)
		cases = append(cases,
			caseT{fmt.Sprintf("gen%d", seed), tr, stateReps(gcfg.Objects), 0},
			caseT{fmt.Sprintf("gen%d-compact", seed), tr, stateReps(gcfg.Objects), 25},
		)
	}
	tr, reps := churnTrace(8, 30) // spill + growth + die/reclaim
	cases = append(cases, caseT{"churn", tr, reps, 0})

	for _, tc := range cases {
		for _, engine := range []Engine{EngineAuto, EngineEnumerating} {
			want, wantLog := runSplit(t, tc.tr, tc.reps, engine, -1, tc.compactEvery)
			for split := 0; split <= tc.tr.Len(); split += 1 + tc.tr.Len()/5 {
				got, gotLog := runSplit(t, tc.tr, tc.reps, engine, split, tc.compactEvery)
				if len(gotLog) != len(wantLog) {
					t.Fatalf("%s/%v split %d: %d races, want %d",
						tc.name, engine, split, len(gotLog), len(wantLog))
				}
				for i := range wantLog {
					if gotLog[i] != wantLog[i] {
						t.Fatalf("%s/%v split %d: race %d:\n  got  %s\n  want %s",
							tc.name, engine, split, i, gotLog[i], wantLog[i])
					}
				}
				if gs, ws := got.Stats(), want.Stats(); gs != ws {
					t.Fatalf("%s/%v split %d: stats diverge:\n  got  %+v\n  want %+v",
						tc.name, engine, split, gs, ws)
				}
				if gd, wd := got.DistinctObjects(), want.DistinctObjects(); gd != wd {
					t.Fatalf("%s/%v split %d: distinct %d, want %d",
						tc.name, engine, split, gd, wd)
				}
			}
		}
	}
}

// Export must survive a round through itself: exporting the imported
// detector yields the same state (deterministic ordering).
func TestDetectorExportDeterministic(t *testing.T) {
	tr, reps := churnTrace(6, 20)
	repFor := func(obj trace.ObjID) (ap.Rep, error) { return reps[obj], nil }
	d, _ := runSplit(t, tr, reps, EngineAuto, -1, 0)
	st := d.ExportState()
	d2 := New(Config{MaxRaces: 1 << 20})
	if err := d2.ImportState(st, repFor); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	a, b := fmt.Sprintf("%+v", st), fmt.Sprintf("%+v", d2.ExportState())
	if a != b {
		t.Fatalf("export not stable across import:\n%s\nvs\n%s", a, b)
	}
}

// The suppression window: a restored reporter replays already-durable
// records silently, keeps numbering intact, and resumes writing past the
// mark.
func TestSessionReporterRestore(t *testing.T) {
	var buf1, buf2 []byte
	mk := func(buf *[]byte) *SessionReporter {
		rw := NewReportWriter(writerFunc(func(p []byte) (int, error) {
			*buf = append(*buf, p...)
			return len(p), nil
		}))
		return rw.Session("s1")
	}
	race := Race{Obj: 3, First: trace.Action{Obj: 3, Method: "put"},
		Second: trace.Action{Obj: 3, Method: "get"}}

	// Uninterrupted: four records.
	sr := mk(&buf1)
	for i := 0; i < 4; i++ {
		if err := sr.Write(race, "dict"); err != nil {
			t.Fatal(err)
		}
	}

	// Restarted: two records before the crash, then a reporter restored to
	// snapshot seq 1 with durable mark 2 regenerates records 2..4.
	sr2 := mk(&buf2)
	for i := 0; i < 2; i++ {
		if err := sr2.Write(race, "dict"); err != nil {
			t.Fatal(err)
		}
	}
	sr2.Restore(1, 2)
	if got := sr2.Seq(); got != 1 {
		t.Fatalf("Seq after Restore = %d, want 1", got)
	}
	for i := 0; i < 3; i++ {
		if err := sr2.Write(race, "dict"); err != nil {
			t.Fatal(err)
		}
	}
	if got := sr2.Seq(); got != 4 {
		t.Fatalf("Seq after replay = %d, want 4", got)
	}
	if string(buf1) != string(buf2) {
		t.Fatalf("restored stream diverges:\n%s\nvs\n%s", buf1, buf2)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
