package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hb"
	"repro/internal/trace"
	"repro/internal/vclock"
)

func TestCompactRemovesDominatedPoints(t *testing.T) {
	// After joinall, every point accumulated before the join is dominated
	// by the sole live thread's clock and can be compacted away.
	tr := trace.NewBuilder().
		Fork(0, 1).Fork(0, 2).
		Put(1, 0, aCom, c1, trace.NilValue).
		Put(2, 0, bCom, c2, trace.NilValue).
		JoinAll(0, 1, 2).
		Trace()
	d := newDictDetector(Config{})
	en := hb.New()
	for i := range tr.Events {
		if _, err := en.Process(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
		if err := d.Process(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	before := d.Stats().ActivePoints
	if before == 0 {
		t.Fatal("no active points accumulated")
	}
	removed := d.Compact(en.MeetLive())
	if removed != before {
		t.Fatalf("removed %d of %d; all pre-join points are dominated", removed, before)
	}
	if d.Stats().ActivePoints != 0 {
		t.Fatalf("active = %d after full compaction", d.Stats().ActivePoints)
	}
}

func TestCompactKeepsConcurrentPoints(t *testing.T) {
	// Without the joins, t1's and t2's points stay potentially racy and
	// must survive compaction.
	tr := trace.NewBuilder().
		Fork(0, 1).Fork(0, 2).
		Put(1, 0, aCom, c1, trace.NilValue).
		Put(2, 0, bCom, c2, trace.NilValue).
		Trace()
	d := newDictDetector(Config{})
	en := hb.New()
	for i := range tr.Events {
		if _, err := en.Process(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
		if err := d.Process(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if removed := d.Compact(en.MeetLive()); removed != 0 {
		t.Fatalf("removed %d live points", removed)
	}
}

func TestCompactBottomThresholdIsNoop(t *testing.T) {
	d := newDictDetector(Config{})
	if d.Compact(nil) != 0 {
		t.Fatal("bottom threshold must remove nothing")
	}
}

func TestMeetLiveTracksJoinsAndEnds(t *testing.T) {
	en := hb.New()
	events := []trace.Event{
		trace.Fork(0, 1),
		trace.Fork(0, 2),
		{Kind: trace.EndEvent, Thread: 2},
		trace.Join(0, 1),
	}
	for i := range events {
		if _, err := en.Process(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Only t0 is live; the meet equals t0's clock.
	meet := en.MeetLive()
	if !meet.Equal(en.ThreadClock(0)) {
		t.Fatalf("meet = %s, want t0's clock %s", meet, en.ThreadClock(0))
	}
}

// TestPropCompactionPreservesRaces: running the detector with aggressive
// periodic compaction reports exactly the same number of races as running
// it without, on random realizable traces.
func TestPropCompactionPreservesRaces(t *testing.T) {
	cfg := trace.DefaultGenConfig()
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := trace.Generate(r, cfg)

		runWith := func(compactEvery int) (int, int) {
			d := New(Config{})
			for o := 0; o < cfg.Objects; o++ {
				d.Register(trace.ObjID(o), dictRep)
			}
			en := hb.New()
			for i := range tr.Events {
				if _, err := en.Process(&tr.Events[i]); err != nil {
					t.Fatal(err)
				}
				if err := d.Process(&tr.Events[i]); err != nil {
					t.Fatal(err)
				}
				if compactEvery > 0 && i%compactEvery == 0 {
					d.Compact(en.MeetLive())
				}
			}
			return d.Stats().Races, d.Stats().Reclaimed
		}
		plain, _ := runWith(0)
		compacted, _ := runWith(1)
		if plain != compacted {
			t.Logf("seed %d: races %d without compaction vs %d with", seed, plain, compacted)
			return false
		}
		return true
	}, &quick.Config{MaxCount: 80})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVClockMeet(t *testing.T) {
	a := vclock.VC{3, 0, 1}
	b := vclock.VC{2, 1}
	got := vclock.Meet(a, b)
	if !got.Equal(vclock.VC{2, 0, 0}) {
		t.Fatalf("meet = %s", got)
	}
	if vclock.Meet() != nil {
		t.Fatal("empty meet must be bottom")
	}
	if !vclock.Meet(a).Equal(a) {
		t.Fatal("unary meet is identity")
	}
	// Meet is a lower bound of both.
	if !got.LEQ(a) || !got.LEQ(b) {
		t.Fatal("meet must be a lower bound")
	}
}
