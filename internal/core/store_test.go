package core

// White-box tests of the inline/open-addressed object-state layout
// (store.go) and its arena (arena.go): spill, growth, compaction rebuilds,
// un-spill, recycling, and the headline property — a DieEvent-heavy cycle
// runs at steady-state zero allocation.

import (
	"testing"

	"repro/internal/ap"
	"repro/internal/hb"
	"repro/internal/trace"
	"repro/internal/vclock"
)

func ipt(i int) ap.Point { return ap.Point{Class: ap.DictWrite, Val: trace.IntValue(int64(i))} }

func TestStoreInlineThenSpillThenGrow(t *testing.T) {
	d := New(Config{})
	st := d.arena.newObjState()
	const n = 100
	for i := 0; i < n; i++ {
		ps, existed := d.lookupOrInsert(st, ipt(i))
		if existed {
			t.Fatalf("point %d reported as existing on first insert", i)
		}
		ps.epoch = vclock.Epoch{T: 0, C: uint64(i + 1)}
		if i < inlineCap && st.table != nil {
			t.Fatalf("spilled at %d points; inline capacity is %d", i+1, inlineCap)
		}
	}
	if st.table == nil {
		t.Fatalf("%d points did not spill", n)
	}
	if st.table.live != n {
		t.Fatalf("table live = %d, want %d", st.table.live, n)
	}
	if cap := len(st.table.used); cap*3 < n*4 {
		t.Fatalf("table capacity %d over the 3/4 load bound for %d entries", cap, n)
	}
	for i := 0; i < n; i++ {
		ps := d.lookup(st, ipt(i))
		if ps == nil || ps.epoch.C != uint64(i+1) {
			t.Fatalf("point %d lost after growth: %+v", i, ps)
		}
		if ps2, existed := d.lookupOrInsert(st, ipt(i)); !existed || ps2 != ps {
			t.Fatalf("lookupOrInsert of existing point %d: existed=%v", i, existed)
		}
	}
	if d.lookup(st, ipt(n+1)) != nil {
		t.Fatal("lookup of absent point returned state")
	}
	d.releaseObj(st)
}

func TestStoreCompactRebuildShrinkAndUnspill(t *testing.T) {
	d := New(Config{})
	st := d.arena.newObjState()
	const n = 100
	for i := 0; i < n; i++ {
		ps, _ := d.lookupOrInsert(st, ipt(i))
		// Points below 90 are dominated by threshold ⟨10⟩; the rest survive.
		if i < 90 {
			ps.epoch = vclock.Epoch{T: 0, C: 1}
		} else {
			ps.epoch = vclock.Epoch{T: 0, C: 99}
		}
	}
	bigCap := len(st.table.used)
	if removed := d.compactObj(st, []uint64{10}); removed != 90 {
		t.Fatalf("removed %d, want 90", removed)
	}
	if st.table == nil {
		t.Fatal("10 survivors cannot fit inline; table must remain")
	}
	if got := len(st.table.used); got >= bigCap || got < minTableCap {
		t.Fatalf("rebuild capacity %d, want shrunk below %d", got, bigCap)
	}
	if st.table.live != 10 {
		t.Fatalf("live = %d after compaction", st.table.live)
	}
	for i := 90; i < n; i++ {
		if d.lookup(st, ipt(i)) == nil {
			t.Fatalf("survivor %d lost in rebuild", i)
		}
	}
	for i := 0; i < 90; i++ {
		if d.lookup(st, ipt(i)) != nil {
			t.Fatalf("dominated point %d survived", i)
		}
	}
	// Dominate all but 3: the survivors fit inline again (un-spill).
	for i := 90; i < 97; i++ {
		d.lookup(st, ipt(i)).epoch = vclock.Epoch{T: 0, C: 1}
	}
	if removed := d.compactObj(st, []uint64{10}); removed != 7 {
		t.Fatalf("removed %d, want 7", removed)
	}
	if st.table != nil {
		t.Fatal("3 survivors must un-spill to the inline set")
	}
	if st.n != 3 {
		t.Fatalf("inline count %d, want 3", st.n)
	}
	for i := 97; i < n; i++ {
		if d.lookup(st, ipt(i)) == nil {
			t.Fatalf("survivor %d lost in un-spill", i)
		}
	}
	d.releaseObj(st)
}

func TestStoreInlineCompactShifts(t *testing.T) {
	d := New(Config{})
	st := d.arena.newObjState()
	for i := 0; i < 3; i++ {
		ps, _ := d.lookupOrInsert(st, ipt(i))
		ps.epoch = vclock.Epoch{T: 0, C: 5}
	}
	d.lookup(st, ipt(1)).epoch = vclock.Epoch{T: 0, C: 1} // only the middle is dominated
	if removed := d.compactObj(st, []uint64{3}); removed != 1 {
		t.Fatalf("removed %d, want 1", removed)
	}
	if st.n != 2 || d.lookup(st, ipt(0)) == nil || d.lookup(st, ipt(2)) == nil {
		t.Fatalf("inline compaction lost survivors: n=%d", st.n)
	}
	if d.lookup(st, ipt(1)) != nil {
		t.Fatal("dominated inline point survived")
	}
	d.releaseObj(st)
}

func TestStoreArenaRecycles(t *testing.T) {
	d := New(Config{})
	st := d.arena.newObjState()
	for i := 0; i < 10; i++ {
		ps, _ := d.lookupOrInsert(st, ipt(i))
		ps.epoch = vclock.Epoch{T: 0, C: 1}
	}
	tbl := st.table
	d.releaseObj(st)
	st2 := d.arena.newObjState()
	if st2 != st {
		t.Fatal("released objState was not recycled")
	}
	got := d.arena.newTable(minTableCap)
	if got != tbl {
		t.Fatal("released table was not recycled through its size class")
	}
	if got.live != 0 {
		t.Fatalf("recycled table not cleared: live=%d", got.live)
	}
	for i := range got.used {
		if got.used[i] {
			t.Fatalf("recycled table slot %d still marked used", i)
		}
	}
}

// steadyStateTrace is one arena cycle: t0 and t1 touch disjoint key ranges
// of one dictionary (wide enough to spill, with nil→v puts so the shared
// resize point promotes to a full clock), then the object dies. No two
// touched points conflict concurrently, so no races are constructed.
func steadyStateTrace() *trace.Trace {
	b := trace.NewBuilder()
	b.Fork(0, 1)
	for k := 0; k < 8; k++ {
		b.Put(0, 0, trace.IntValue(int64(k)), trace.IntValue(1), trace.NilValue)
		b.Put(1, 0, trace.IntValue(int64(100+k)), trace.IntValue(1), trace.NilValue)
	}
	b.Die(0, 0)
	b.Join(0, 1)
	return b.Trace()
}

// TestStoreSteadyStateZeroAlloc: after warm-up, a full
// register→touch→spill→promote→die cycle allocates nothing — objStates,
// spill tables, and promoted clocks all come back through the arena.
func TestStoreSteadyStateZeroAlloc(t *testing.T) {
	tr := steadyStateTrace()
	en := hb.New()
	for i := range tr.Events {
		if _, err := en.Process(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	d := New(Config{})
	cycle := func() {
		d.Register(0, ap.DictRep{})
		for i := range tr.Events {
			if err := d.Process(&tr.Events[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	cycle() // warm-up: slabs, free-lists, point buffers
	cycle()
	if allocs := testing.AllocsPerRun(50, cycle); allocs != 0 {
		t.Fatalf("steady-state cycle allocates %.1f times; want 0", allocs)
	}
	if d.Stats().Races != 0 {
		t.Fatal("steady-state trace raced; the zero-alloc claim would be vacuous")
	}
	if d.Stats().Reclaimed == 0 {
		t.Fatal("steady-state trace reclaimed nothing; the arena path was not exercised")
	}
}
