package core

// Differential tests pinning the allocation-free back-end (store.go +
// arena.go) to the frozen map-based reference (reference.go): identical
// Races, Stats, DistinctObjects, and JSONL reports on random realizable
// traces, compaction interleavings, die-churn traces that recycle the
// arena, and the shipped example corpus. ci.sh runs these under -race and
// -tags=clockcheck (the TestDifferential prefix is part of its gate).

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ap"
	"repro/internal/hb"
	"repro/internal/trace"
	"repro/internal/wire"
)

// diffConfig is the retention config used by the differential runs: a cap
// high enough that no generated trace truncates (truncation under a cap is
// iteration-order-sensitive for the enumerating engine, which is exactly
// the freedom SortRaces grants it).
func diffConfig(engine Engine) Config {
	return Config{Engine: engine, MaxRaces: 1 << 20}
}

// runBoth stamps tr once and feeds every event to both back-ends,
// compacting both every compactEvery events (0 disables compaction).
func runBoth(t *testing.T, tr *trace.Trace, cfg Config, reps map[trace.ObjID]ap.Rep, compactEvery int) (*Detector, *RefDetector) {
	t.Helper()
	d := New(cfg)
	ref := NewReference(cfg)
	for obj, rep := range reps {
		d.Register(obj, rep)
		ref.Register(obj, rep)
	}
	en := hb.New()
	for i := range tr.Events {
		e := &tr.Events[i]
		if _, err := en.Process(e); err != nil {
			t.Fatal(err)
		}
		if err := d.Process(e); err != nil {
			t.Fatal(err)
		}
		if err := ref.Process(e); err != nil {
			t.Fatal(err)
		}
		if compactEvery > 0 && i%compactEvery == 0 {
			meet := en.MeetLive()
			d.Compact(meet)
			ref.Compact(meet)
		}
	}
	d.FlushObs()
	return d, ref
}

// compareBackends fails unless both back-ends produced identical verdicts.
// With sorted, races are compared as sets ordered by RaceLess (the
// enumerating engine's scan order legitimately differs between a Go map and
// an open-addressed table); otherwise element-for-element.
func compareBackends(t *testing.T, d *Detector, ref *RefDetector, sorted bool) {
	t.Helper()
	if ds, rs := d.Stats(), ref.Stats(); ds != rs {
		t.Fatalf("stats diverge:\n  layout %+v\n  map    %+v", ds, rs)
	}
	if dd, rd := d.DistinctObjects(), ref.DistinctObjects(); dd != rd {
		t.Fatalf("distinct objects: layout %d, map %d", dd, rd)
	}
	got := append([]Race(nil), d.Races()...)
	want := append([]Race(nil), ref.Races()...)
	if sorted {
		SortRaces(got)
		SortRaces(want)
	}
	if len(got) != len(want) {
		t.Fatalf("race counts: layout %d, map %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("race %d diverges:\n  layout %+v\n  map    %+v", i, got[i], want[i])
		}
	}
}

// genReps registers the translated dictionary rep for every generated
// object.
func genReps(cfg trace.GenConfig) map[trace.ObjID]ap.Rep {
	reps := map[trace.ObjID]ap.Rep{}
	for o := 0; o < cfg.Objects; o++ {
		reps[trace.ObjID(o)] = dictRep
	}
	return reps
}

// TestDifferentialBackendRandom: on random realizable traces, the bounded
// engine produces element-for-element identical races (its candidate
// enumeration order is layout-independent) and identical stats.
func TestDifferentialBackendRandom(t *testing.T) {
	gcfgs := []trace.GenConfig{
		trace.DefaultGenConfig(),
		// Wide key universe + hot objects: spills the inline sets and grows
		// the open-addressed tables.
		{Threads: 4, Objects: 3, Keys: 10, Vals: 3, Locks: 2,
			OpsMin: 30, OpsMax: 60, PSize: 10, PGet: 30, PLocked: 20, PRemove: 25},
	}
	for _, gcfg := range gcfgs {
		for seed := int64(0); seed < 30; seed++ {
			tr := trace.Generate(rand.New(rand.NewSource(seed)), gcfg)
			d, ref := runBoth(t, tr, diffConfig(EngineAuto), genReps(gcfg), 0)
			compareBackends(t, d, ref, false)
		}
	}
}

// TestDifferentialBackendEnumerating: the enumerating engine scans the
// active set, so its verdict set (not order) must match, and Checks — the
// scan cardinality Fig 4 reasons about — must match exactly.
func TestDifferentialBackendEnumerating(t *testing.T) {
	gcfg := trace.GenConfig{Threads: 4, Objects: 2, Keys: 8, Vals: 3, Locks: 1,
		OpsMin: 20, OpsMax: 40, PSize: 15, PGet: 35, PLocked: 25, PRemove: 25}
	for seed := int64(0); seed < 30; seed++ {
		tr := trace.Generate(rand.New(rand.NewSource(seed)), gcfg)
		d, ref := runBoth(t, tr, diffConfig(EngineEnumerating), genReps(gcfg), 0)
		compareBackends(t, d, ref, true)
	}
}

// TestDifferentialBackendCompaction: interleaving Compact (at the meet of
// live thread clocks) exercises table rebuilds, shrinks, and un-spills
// mid-trace; verdicts must be unaffected and identical.
func TestDifferentialBackendCompaction(t *testing.T) {
	gcfg := trace.GenConfig{Threads: 4, Objects: 3, Keys: 10, Vals: 3, Locks: 2,
		OpsMin: 30, OpsMax: 60, PSize: 10, PGet: 30, PLocked: 30, PRemove: 25}
	for seed := int64(0); seed < 20; seed++ {
		tr := trace.Generate(rand.New(rand.NewSource(seed)), gcfg)
		for _, every := range []int{1, 7} {
			d, ref := runBoth(t, tr, diffConfig(EngineAuto), genReps(gcfg), every)
			compareBackends(t, d, ref, false)
		}
	}
}

// churnTrace builds a die-heavy trace: generations of objects are touched
// on enough keys to spill and grow their tables (two threads per object so
// points promote to full clocks), raced deliberately, then died — the
// workload the arena free-lists exist for.
func churnTrace(nGens, keysPerObj int) (*trace.Trace, map[trace.ObjID]ap.Rep) {
	b := trace.NewBuilder()
	reps := map[trace.ObjID]ap.Rep{}
	b.Fork(0, 1).Fork(0, 2)
	for g := 0; g < nGens; g++ {
		obj := trace.ObjID(g)
		reps[obj] = dictRep
		for k := 0; k < keysPerObj; k++ {
			key := trace.IntValue(int64(k))
			// Concurrent puts on the same key race (and promote the point).
			b.Put(1, obj, key, trace.IntValue(1), trace.NilValue)
			b.Put(2, obj, key, trace.IntValue(2), trace.IntValue(1))
		}
		b.Die(1, obj)
	}
	b.JoinAll(0, 1, 2)
	return b.Trace(), reps
}

// TestDifferentialBackendChurn: object death recycles tables, objStates,
// and promoted clocks through the arena; later generations run on recycled
// memory and must still report identically.
func TestDifferentialBackendChurn(t *testing.T) {
	for _, keys := range []int{3, 20, 60} { // inline-only, one spill, grown tables
		tr, reps := churnTrace(12, keys)
		d, ref := runBoth(t, tr, diffConfig(EngineAuto), reps, 0)
		compareBackends(t, d, ref, false)
		if d.Stats().Races == 0 {
			t.Fatal("churn trace found no races; the differential is vacuous")
		}
		if d.Stats().Reclaimed == 0 {
			t.Fatal("churn trace reclaimed nothing; the arena path was not exercised")
		}
	}
}

// TestDifferentialBackendCorpus: over every shipped example trace (text and
// binary), the two back-ends agree race-for-race, stat-for-stat, and
// byte-for-byte on the JSONL report stream.
func TestDifferentialBackendCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "traces", "*"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example traces found: %v", err)
	}
	for _, path := range paths {
		name := filepath.Base(path)
		t.Run(name, func(t *testing.T) {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			tr, err := wire.ParseAny(f)
			if err != nil {
				t.Fatal(err)
			}
			reps := map[trace.ObjID]ap.Rep{}
			for i := range tr.Events {
				if tr.Events[i].Kind == trace.ActionEvent {
					reps[tr.Events[i].Act.Obj] = dictRep
				}
			}
			d, ref := runBoth(t, tr, diffConfig(EngineAuto), reps, 0)
			compareBackends(t, d, ref, false)

			var got, want bytes.Buffer
			gw, ww := NewReportWriter(&got), NewReportWriter(&want)
			for _, r := range d.Races() {
				if err := gw.Write(r, "dict"); err != nil {
					t.Fatal(err)
				}
			}
			for _, r := range ref.Races() {
				if err := ww.Write(r, "dict"); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("JSONL reports diverge on %s:\nlayout:\n%s\nmap:\n%s",
					name, got.String(), want.String())
			}
		})
	}
}

// TestDifferentialBackendNaive: the unbounded naive representation drives
// the enumerating engine through the structural interning fast path of
// ap.NaiveRep; verdict sets must match the reference (each back-end interns
// through its own rep instance, proving id assignment is deterministic).
func TestDifferentialBackendNaive(t *testing.T) {
	gcfg := trace.GenConfig{Threads: 3, Objects: 2, Keys: 5, Vals: 2, Locks: 1,
		OpsMin: 10, OpsMax: 25, PSize: 15, PGet: 35, PLocked: 25, PRemove: 25}
	naive := func() ap.Rep {
		return ap.NewNaiveRep(func(a, b trace.Action) bool {
			ok, err := dictSpec.Commutes(a, b)
			return err == nil && ok
		})
	}
	for seed := int64(0); seed < 15; seed++ {
		tr := trace.Generate(rand.New(rand.NewSource(seed)), gcfg)
		cfg := diffConfig(EngineAuto) // naive reps are unbounded: auto enumerates
		d := New(cfg)
		ref := NewReference(cfg)
		for o := 0; o < gcfg.Objects; o++ {
			d.Register(trace.ObjID(o), naive())
			ref.Register(trace.ObjID(o), naive())
		}
		en := hb.New()
		for i := range tr.Events {
			e := &tr.Events[i]
			if _, err := en.Process(e); err != nil {
				t.Fatal(err)
			}
			if err := d.Process(e); err != nil {
				t.Fatal(err)
			}
			if err := ref.Process(e); err != nil {
				t.Fatal(err)
			}
		}
		compareBackends(t, d, ref, true)
	}
}

// TestDifferentialBackendDescribeMemo: the memoized Describe strings in race
// reports must equal fresh Describe output even when the same point races
// repeatedly (the memo hit path).
func TestDifferentialBackendDescribeMemo(t *testing.T) {
	b := trace.NewBuilder()
	b.Fork(0, 1).Fork(0, 2)
	key := trace.StrValue("hot")
	for i := 0; i < 10; i++ {
		b.Put(1, 0, key, trace.IntValue(int64(i+1)), prevVal(i))
		b.Put(2, 0, key, trace.IntValue(int64(100+i)), trace.IntValue(int64(i+1)))
	}
	b.JoinAll(0, 1, 2)
	d, ref := runBoth(t, b.Trace(), diffConfig(EngineAuto),
		map[trace.ObjID]ap.Rep{0: dictRep}, 0)
	compareBackends(t, d, ref, false)
	if len(d.Races()) < 2 {
		t.Fatalf("want repeated races on the hot key, got %d", len(d.Races()))
	}
	for _, r := range d.Races() {
		if !strings.Contains(r.FirstPoint, "hot") || !strings.Contains(r.SecondPoint, "hot") {
			t.Fatalf("memoized point descriptions wrong: %q / %q", r.FirstPoint, r.SecondPoint)
		}
	}
}

func prevVal(i int) trace.Value {
	if i == 0 {
		return trace.NilValue
	}
	return trace.IntValue(int64(100 + i - 1))
}
