package core

// BenchmarkDetectBackend isolates the detection back-end (Algorithm 1's two
// phases) from stamping: traces are built and stamped once, then replayed
// through a detector per iteration. Each distribution targets one hot path
// of the store.go layout, and each runs on both the allocation-free layout
// (layout=table) and the frozen map-based reference (layout=map) — the
// pair ci.sh's interleaved -ratio gate compares.
//
//	dist=hotkey  — Phase 1: repeated conflict checks against a small live
//	               point set (lock-ordered, so no race reports pollute it)
//	dist=fold    — Phase 2 fold: one promoted point joining clocks forever
//	dist=widekey — Phase 2 insert: monotone fresh keys; spill and growth
//	dist=churn   — arena: objects spill, promote, die, recycle
//
// All variants are race-free by construction (every op is ordered through
// one lock or a single thread), so the numbers measure the check/fold
// machinery, not report construction.

import (
	"fmt"
	"testing"

	"repro/internal/ap"
	"repro/internal/hb"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// benchBackend is the surface shared by Detector and RefDetector.
type benchBackend interface {
	Register(obj trace.ObjID, rep ap.Rep)
	Process(e *trace.Event) error
	Stats() Stats
}

// stampedTrace builds and stamps a benchmark trace once.
func stampedTrace(b *testing.B, build func(*trace.Builder)) *trace.Trace {
	b.Helper()
	bd := trace.NewBuilder()
	build(bd)
	tr := bd.Trace()
	en := hb.New()
	for i := range tr.Events {
		if _, err := en.Process(&tr.Events[i]); err != nil {
			b.Fatal(err)
		}
	}
	return tr
}

// hotkeyTrace: two threads hammer 4 keys of one object, every op ordered
// through one lock — Phase 1 candidate lookups against a stable live set.
func hotkeyTrace(b *testing.B, ops int) *trace.Trace {
	return stampedTrace(b, func(bd *trace.Builder) {
		bd.Fork(0, 1).Fork(0, 2)
		val := trace.IntValue(1)
		for i := 0; i < ops; i++ {
			t := vclock.Tid(1 + i%2)
			k := trace.IntValue(int64(i % 4))
			bd.Acquire(t, 0)
			if i%3 == 0 {
				bd.Get(t, 0, k, val)
			} else {
				bd.Put(t, 0, k, val, val) // no-op put: a read point, no resize
			}
			bd.Release(t, 0)
		}
		bd.JoinAll(0, 1, 2)
	})
}

// foldTrace: two threads alternate writes to one key under a lock — the
// point promotes once, then every action folds a clock (Phase 2 fold).
func foldTrace(b *testing.B, ops int) *trace.Trace {
	return stampedTrace(b, func(bd *trace.Builder) {
		bd.Fork(0, 1).Fork(0, 2)
		k := trace.StrValue("k")
		for i := 0; i < ops; i++ {
			t := vclock.Tid(1 + i%2)
			bd.Acquire(t, 0)
			bd.Put(t, 0, k, trace.IntValue(int64(i+2)), trace.IntValue(int64(i+1)))
			bd.Release(t, 0)
		}
		bd.JoinAll(0, 1, 2)
	})
}

// widekeyTrace: one thread writes monotonically fresh keys — the pure
// insert path: inline fill, spill, table growth.
func widekeyTrace(b *testing.B, ops int) *trace.Trace {
	return stampedTrace(b, func(bd *trace.Builder) {
		for i := 0; i < ops; i++ {
			bd.Put(0, 0, trace.IntValue(int64(i)), trace.IntValue(1), trace.NilValue)
		}
	})
}

// churnTraceBench: generations of objects spill, promote on two disjoint
// key ranges, and die — the arena recycling path.
func churnTraceBench(b *testing.B, gens, keys int) *trace.Trace {
	return stampedTrace(b, func(bd *trace.Builder) {
		bd.Fork(0, 1)
		for g := 0; g < gens; g++ {
			obj := trace.ObjID(g)
			for k := 0; k < keys; k++ {
				bd.Put(0, obj, trace.IntValue(int64(k)), trace.IntValue(1), trace.NilValue)
				bd.Put(1, obj, trace.IntValue(int64(1000+k)), trace.IntValue(1), trace.NilValue)
			}
			bd.Die(0, obj)
		}
		bd.Join(0, 1)
	})
}

// objectsIn returns the distinct objects acted on, for registration.
func objectsIn(tr *trace.Trace) []trace.ObjID {
	seen := map[trace.ObjID]bool{}
	var objs []trace.ObjID
	for i := range tr.Events {
		if tr.Events[i].Kind == trace.ActionEvent && !seen[tr.Events[i].Act.Obj] {
			seen[tr.Events[i].Act.Obj] = true
			objs = append(objs, tr.Events[i].Act.Obj)
		}
	}
	return objs
}

func runBackendBench(b *testing.B, tr *trace.Trace, mk func() benchBackend) {
	objs := objectsIn(tr)
	actions := 0
	for i := range tr.Events {
		if tr.Events[i].Kind == trace.ActionEvent {
			actions++
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := mk()
		for _, o := range objs {
			d.Register(o, ap.DictRep{})
		}
		for j := range tr.Events {
			if err := d.Process(&tr.Events[j]); err != nil {
				b.Fatal(err)
			}
		}
		if d.Stats().Races != 0 {
			b.Fatal("benchmark trace raced; numbers would measure report construction")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(actions*b.N)/b.Elapsed().Seconds(), "actions/s")
}

func BenchmarkDetectBackend(b *testing.B) {
	const ops = 4096
	dists := []struct {
		name  string
		trace func(*testing.B) *trace.Trace
	}{
		{"hotkey", func(b *testing.B) *trace.Trace { return hotkeyTrace(b, ops) }},
		{"fold", func(b *testing.B) *trace.Trace { return foldTrace(b, ops) }},
		{"widekey", func(b *testing.B) *trace.Trace { return widekeyTrace(b, ops) }},
		{"churn", func(b *testing.B) *trace.Trace { return churnTraceBench(b, 64, 32) }},
	}
	layouts := []struct {
		name string
		mk   func() benchBackend
	}{
		{"table", func() benchBackend { return New(Config{}) }},
		{"map", func() benchBackend { return NewReference(Config{}) }},
	}
	for _, dist := range dists {
		for _, layout := range layouts {
			b.Run(fmt.Sprintf("dist=%s/layout=%s", dist.name, layout.name), func(b *testing.B) {
				runBackendBench(b, dist.trace(b), layout.mk)
			})
		}
	}
}
