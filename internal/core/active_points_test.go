package core

import (
	"fmt"
	"testing"

	"repro/internal/hb"
	"repro/internal/obs"
	"repro/internal/trace"
)

// TestActivePointsAcrossReclaim is the regression test for the peak
// accounting bug: ActivePoints/PeakActive were only maintained on the
// action path, so after a reclaim the count went stale until the next
// action touched it — a snapshot taken between a die event and the next
// action over-reported the live set, and a churning workload (grow, die,
// grow smaller) computed its peak from a stale base. Every count change
// now goes through addActive, so the invariants hold at every event
// boundary:
//
//	ActivePoints == points currently active
//	PeakActive   == max over time of ActivePoints
//
// The test asserts the invariants structurally (against the detector's own
// counts) rather than hard-coding point totals, since the ECL translation
// may touch several points per call.
func TestActivePointsAcrossReclaim(t *testing.T) {
	d := New(Config{})
	en := hb.New()
	feed := func(e trace.Event) {
		t.Helper()
		if _, err := en.Process(&e); err != nil {
			t.Fatal(err)
		}
		if err := d.Process(&e); err != nil {
			t.Fatal(err)
		}
	}
	touch := func(obj trace.ObjID, key trace.Value) {
		feed(trace.Act(0, trace.Action{Obj: obj, Method: "put",
			Args: []trace.Value{key, c1}, Rets: []trace.Value{trace.NilValue}}))
	}
	key := func(i int) trace.Value { return trace.StrValue(fmt.Sprintf("k%d.com", i)) }

	// Grow object 1: monotone growth from zero, so peak tracks active.
	d.Register(1, dictRep)
	for i := 0; i < 3; i++ {
		touch(1, key(i))
	}
	high := d.Stats().ActivePoints
	if high == 0 {
		t.Fatal("no active points after three puts")
	}
	if got := d.Stats().PeakActive; got != high {
		t.Fatalf("PeakActive = %d during monotone growth, want %d", got, high)
	}

	// The die event must drop the count immediately — not on the next
	// action — and the peak must stay at the high-water mark.
	feed(trace.Die(0, 1))
	if got := d.Stats().ActivePoints; got != 0 {
		t.Fatalf("ActivePoints = %d after reclaim, want 0", got)
	}
	if got := d.Stats().PeakActive; got != high {
		t.Fatalf("PeakActive = %d after reclaim, want %d", got, high)
	}

	// Re-grow on a fresh object with fewer keys: the live count restarts
	// from the post-reclaim zero (the stale-base bug double-counted here,
	// reporting roughly old+new) and the peak must not move.
	d.Register(2, dictRep)
	for i := 0; i < 2; i++ {
		touch(2, key(i))
	}
	low := d.Stats().ActivePoints
	if low == 0 || low >= high {
		t.Fatalf("ActivePoints = %d after smaller re-grow, want in (0, %d)", low, high)
	}
	if got := d.Stats().PeakActive; got != high {
		t.Fatalf("PeakActive = %d after smaller re-grow, want %d", got, high)
	}

	// Exceed the old peak: the peak follows the live count again.
	for i := 2; d.Stats().ActivePoints <= high; i++ {
		touch(2, key(i))
	}
	if got, want := d.Stats().PeakActive, d.Stats().ActivePoints; got != want {
		t.Fatalf("PeakActive = %d after exceeding old peak, want %d", got, want)
	}
}

// TestActivePointsGaugeOnReclaim asserts the obs-side view of the same
// invariant: a die event flushes the batched deltas so the process-global
// core.active_points gauge drops at the reclaim, not an interval later.
func TestActivePointsGaugeOnReclaim(t *testing.T) {
	obs.Default.Reset()
	obs.SetEnabled(true)
	defer func() {
		obs.SetEnabled(false)
		obs.Default.Reset()
	}()

	d := New(Config{})
	en := hb.New()
	feed := func(e trace.Event) {
		t.Helper()
		if _, err := en.Process(&e); err != nil {
			t.Fatal(err)
		}
		if err := d.Process(&e); err != nil {
			t.Fatal(err)
		}
	}
	g := obs.GetGauge("core.active_points")
	base := g.Load()

	d.Register(1, dictRep)
	for _, key := range []trace.Value{aCom, bCom, trace.StrValue("c.com")} {
		feed(trace.Act(0, trace.Action{Obj: 1, Method: "put",
			Args: []trace.Value{key, c1}, Rets: []trace.Value{trace.NilValue}}))
	}
	d.FlushObs()
	want := int64(d.Stats().ActivePoints)
	if got := g.Load() - base; got != want {
		t.Fatalf("gauge delta after growth = %d, want %d", got, want)
	}

	// reclaim() flushes internally; no FlushObs call here on purpose.
	feed(trace.Die(0, 1))
	if got := g.Load() - base; got != 0 {
		t.Fatalf("gauge delta after reclaim = %d, want 0 (reclaim must flush)", got)
	}
	if peak := g.Peak() - base; peak < want {
		t.Fatalf("gauge peak delta = %d, want >= %d", peak, want)
	}
}
