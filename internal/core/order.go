package core

import "slices"

// RaceLess is the canonical deterministic order on race reports:
// (SecondSeq, FirstSeq, Obj, SecondPoint, FirstPoint). SecondSeq is the
// primary key because serial detection emits races in nondecreasing order
// of the second (current) event; the remaining keys break ties between the
// several point pairs one event can race on.
func RaceLess(a, b Race) bool {
	if a.SecondSeq != b.SecondSeq {
		return a.SecondSeq < b.SecondSeq
	}
	if a.FirstSeq != b.FirstSeq {
		return a.FirstSeq < b.FirstSeq
	}
	if a.Obj != b.Obj {
		return a.Obj < b.Obj
	}
	if a.SecondPoint != b.SecondPoint {
		return a.SecondPoint < b.SecondPoint
	}
	return a.FirstPoint < b.FirstPoint
}

// SortRaces sorts race reports into the canonical order in place. The
// sharded pipeline uses it to merge per-shard reports into an order
// independent of shard count and scheduling; comparing a serial run's
// reports requires sorting them with the same function (serial emission
// order from the enumerating engine depends on map iteration).
//
// Race is a fat struct (clock clones plus description strings), so the
// obvious sort.Slice spends most of its time in the reflect swapper moving
// elements — ~25% of a whole sharded pipeline run on a merge of per-shard
// reports. Sorting a compact index permutation instead keeps the
// O(n log n) work on 4-byte indices; the permutation is then applied in
// place by cycle-walking, moving each Race at most once. Ties are broken
// by original position, which both makes the result stable and leaves
// already-sorted input (the single-shard case) as the identity
// permutation, where no Race moves at all.
func SortRaces(races []Race) {
	if len(races) < 2 {
		return
	}
	idx := make([]int32, len(races))
	for i := range idx {
		idx[i] = int32(i)
	}
	slices.SortFunc(idx, func(a, b int32) int {
		if RaceLess(races[a], races[b]) {
			return -1
		}
		if RaceLess(races[b], races[a]) {
			return 1
		}
		return int(a - b)
	})
	for i := range races {
		if idx[i] == int32(i) {
			continue
		}
		tmp := races[i]
		k := i
		for {
			j := int(idx[k])
			idx[k] = int32(k)
			if j == i {
				races[k] = tmp
				break
			}
			races[k] = races[j]
			k = j
		}
	}
}
