package core

import "sort"

// RaceLess is the canonical deterministic order on race reports:
// (SecondSeq, FirstSeq, Obj, SecondPoint, FirstPoint). SecondSeq is the
// primary key because serial detection emits races in nondecreasing order
// of the second (current) event; the remaining keys break ties between the
// several point pairs one event can race on.
func RaceLess(a, b Race) bool {
	if a.SecondSeq != b.SecondSeq {
		return a.SecondSeq < b.SecondSeq
	}
	if a.FirstSeq != b.FirstSeq {
		return a.FirstSeq < b.FirstSeq
	}
	if a.Obj != b.Obj {
		return a.Obj < b.Obj
	}
	if a.SecondPoint != b.SecondPoint {
		return a.SecondPoint < b.SecondPoint
	}
	return a.FirstPoint < b.FirstPoint
}

// SortRaces sorts race reports into the canonical order in place. The
// sharded pipeline uses it to merge per-shard reports into an order
// independent of shard count and scheduling; comparing a serial run's
// reports requires sorting them with the same function (serial emission
// order from the enumerating engine depends on map iteration).
func SortRaces(races []Race) {
	sort.Slice(races, func(i, j int) bool { return RaceLess(races[i], races[j]) })
}
