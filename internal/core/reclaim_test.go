package core

import (
	"testing"

	"repro/internal/hb"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// TestReclaimReleasesRegistration is the regression test for the unbounded
// per-object state leak: reclaim dropped objects[obj] but kept the reps
// entry (and the racy-object marker) alive forever, so a workload churning
// through short-lived objects grew the detector without bound.
func TestReclaimReleasesRegistration(t *testing.T) {
	const churn = 200
	d := New(Config{})
	en := hb.New()
	feed := func(e trace.Event) {
		t.Helper()
		if _, err := en.Process(&e); err != nil {
			t.Fatal(err)
		}
		if err := d.Process(&e); err != nil {
			t.Fatal(err)
		}
	}
	feed(trace.Fork(0, 1))
	for o := 0; o < churn; o++ {
		obj := trace.ObjID(o)
		d.Register(obj, dictRep)
		// Two concurrent puts on the same key: one race per object.
		feed(trace.Act(1, trace.Action{Obj: obj, Method: "put",
			Args: []trace.Value{aCom, c1}, Rets: []trace.Value{trace.NilValue}}))
		feed(trace.Act(0, trace.Action{Obj: obj, Method: "put",
			Args: []trace.Value{aCom, c2}, Rets: []trace.Value{trace.NilValue}}))
		feed(trace.Die(0, obj))
	}

	if n := len(d.reps); n != 0 {
		t.Errorf("reps retains %d entries after all objects died", n)
	}
	if n := len(d.objects); n != 0 {
		t.Errorf("objects retains %d entries after all objects died", n)
	}
	if n := len(d.racyObjs); n != 0 {
		t.Errorf("racyObjs retains %d entries after all objects died", n)
	}
	// The distinct-object count must survive reclamation.
	if got := d.DistinctObjects(); got != churn {
		t.Errorf("DistinctObjects = %d, want %d", got, churn)
	}
	if d.Stats().Races != churn {
		t.Errorf("races = %d, want %d", d.Stats().Races, churn)
	}
	if d.Stats().ActivePoints != 0 {
		t.Errorf("active points = %d after full churn", d.Stats().ActivePoints)
	}
}

// TestReclaimUnknownObjectDropsStaleRegistration: a die event for an object
// that was registered but never acted on still frees the registration.
func TestReclaimUnknownObjectDropsStaleRegistration(t *testing.T) {
	d := New(Config{})
	d.Register(7, dictRep)
	ev := trace.Die(0, 7)
	ev.Clock = vclock.VC{1}
	if err := d.Process(&ev); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.reps[7]; ok {
		t.Error("reps entry survives death of an untouched object")
	}
}
