package core

// This file implements structured race reporting: a machine-readable JSONL
// record per race, so race output can be diffed, aggregated, and
// post-processed without parsing the human-oriented Race.String rendering.
// cmd/rd2's -report flag streams every race through a ReportWriter as it is
// found.

import (
	"encoding/json"
	"io"
	"sync"
)

// RaceSide is one side of a reported race: the action, who performed it,
// where in the trace, which access point it touched, and the vector clock
// under which it was evaluated. For the first (earlier) side the clock is
// the point's accumulated clock — the join over all events that touched the
// point (see Race.FirstClock).
type RaceSide struct {
	Action string   `json:"action"`
	Method string   `json:"method"`
	Thread int      `json:"thread"`
	Seq    int      `json:"seq"`
	Point  string   `json:"point"`
	Clock  []uint64 `json:"clock"`
}

// RaceRecord is the JSONL schema of one commutativity race. Session and
// Seq are stamped by a SessionReporter (rd2d): the owning session's id and
// a monotonic per-session sequence number assigned in file order, so a
// resumed session's corpus can be checked for continuity. They are the
// first fields so offline tools can strip the session prefix textually
// when diffing against a session-less report.
type RaceRecord struct {
	Session string   `json:"session,omitempty"`
	Seq     uint64   `json:"seq,omitempty"`
	Object  int      `json:"object"`
	Spec    string   `json:"spec,omitempty"` // responsible specification (object kind)
	First   RaceSide `json:"first"`
	Second  RaceSide `json:"second"`
}

// Record converts the race to its structured form. spec names the
// commutativity specification of the racing object ("" if unknown).
func (r Race) Record(spec string) RaceRecord {
	return RaceRecord{
		Object: int(r.Obj),
		Spec:   spec,
		First: RaceSide{
			Action: r.First.String(),
			Method: r.First.Method,
			Thread: int(r.FirstThread),
			Seq:    r.FirstSeq,
			Point:  r.FirstPoint,
			Clock:  r.FirstClock,
		},
		Second: RaceSide{
			Action: r.Second.String(),
			Method: r.Second.Method,
			Thread: int(r.SecondThread),
			Seq:    r.SecondSeq,
			Point:  r.SecondPoint,
			Clock:  r.SecondClock,
		},
	}
}

// ReportWriter streams RaceRecords as JSON Lines. It is safe for concurrent
// use (pipeline shards report from their own goroutines).
type ReportWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
	n   int
	err error
}

// NewReportWriter returns a writer emitting one JSON object per line to w.
func NewReportWriter(w io.Writer) *ReportWriter {
	return &ReportWriter{enc: json.NewEncoder(w)}
}

// Write emits one race. The first encode error is sticky and returned by
// this and every later call.
func (rw *ReportWriter) Write(r Race, spec string) error {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	if rw.err != nil {
		return rw.err
	}
	if err := rw.enc.Encode(r.Record(spec)); err != nil {
		rw.err = err
		return err
	}
	rw.n++
	return nil
}

// WriteNote emits an arbitrary JSONL record alongside the race records —
// rd2d uses it for per-session markers (session start, degraded-session
// annotations), so a report file is self-describing about sessions whose
// race set may be incomplete. Notes do not count toward Count.
func (rw *ReportWriter) WriteNote(v any) error {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	if rw.err != nil {
		return rw.err
	}
	if err := rw.enc.Encode(v); err != nil {
		rw.err = err
		return err
	}
	return nil
}

// Session returns a view of the writer that stamps every record with the
// session id and a monotonic per-session sequence number. The seq is
// assigned under the writer's lock, so seq order equals file order even
// with other sessions interleaving on the same writer; a session resumed
// on a new connection keeps its reporter and the numbering continues
// without gaps.
func (rw *ReportWriter) Session(session string) *SessionReporter {
	return &SessionReporter{rw: rw, session: session}
}

// SessionReporter stamps one session's identity onto shared JSONL output.
// Safe for concurrent use (it serializes on the underlying writer's lock).
type SessionReporter struct {
	rw       *ReportWriter
	session  string
	seq      uint64 // guarded by rw.mu
	suppress uint64 // records with Seq <= suppress skip the file (guarded by rw.mu)
}

// Write emits one race stamped with the session id and the next seq.
// Records at or below the suppression mark (Restore) advance the numbering
// but are not written: they already sit in the report file from before a
// daemon restart, and replay determinism makes the regenerated copies
// byte-identical to the ones on disk.
func (sr *SessionReporter) Write(r Race, spec string) error {
	sr.rw.mu.Lock()
	defer sr.rw.mu.Unlock()
	if sr.rw.err != nil {
		return sr.rw.err
	}
	if sr.seq+1 <= sr.suppress {
		sr.seq++
		return nil
	}
	rec := r.Record(spec)
	rec.Session = sr.session
	rec.Seq = sr.seq + 1
	if err := sr.rw.enc.Encode(rec); err != nil {
		sr.rw.err = err
		return err
	}
	sr.seq++
	sr.rw.n++
	return nil
}

// Restore positions a rehydrated session's reporter: numbering resumes from
// seq (the checkpoint's last assigned number) and regenerated records up to
// durable — the highest number already durable in the report file — are
// suppressed instead of duplicated. rd2d calls it before WAL replay.
func (sr *SessionReporter) Restore(seq, durable uint64) {
	sr.rw.mu.Lock()
	defer sr.rw.mu.Unlock()
	sr.seq = seq
	sr.suppress = durable
}

// Seq returns the last sequence number assigned (0 before the first race).
func (sr *SessionReporter) Seq() uint64 {
	sr.rw.mu.Lock()
	defer sr.rw.mu.Unlock()
	return sr.seq
}

// Count returns the number of records written so far.
func (rw *ReportWriter) Count() int {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	return rw.n
}

// Err returns the sticky encode error, if any.
func (rw *ReportWriter) Err() error {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	return rw.err
}
