package core

// Durable-session state transfer for the detection back-end (DESIGN.md
// §15). A Detector's resumable state is the per-object active-point shadow
// store: for every live object, every active point with its accumulated
// clock (epoch or full form) and last-action metadata, plus the racy-object
// accounting and the lifetime counters. ExportState deep-copies that into a
// self-contained DetectorState; ImportState rebuilds it in a fresh detector
// through the ordinary arena/store insertion paths, so the restored
// detector's probe behavior, growth thresholds, and obs gauges are the ones
// a live detector would have.
//
// Not exported: the retained Races slice (verdicts already streamed through
// OnRace before the checkpoint; the slice only feeds offline Races() output)
// and memoized Describe strings (re-derived deterministically on the next
// race). Points are exported in sorted order, so snapshot bytes are
// deterministic for a given detector state; with an enumerating engine the
// rebuilt table's scan order may therefore differ from the pre-export
// table's insertion history, which can reorder same-action verdicts —
// bounded representations (every translated ECL spec) are unaffected.

import (
	"fmt"
	"sort"

	"repro/internal/ap"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// PointExport is one active point's shadow state. VC nil means the point is
// in epoch form.
type PointExport struct {
	Pt         ap.Point
	Epoch      vclock.Epoch
	VC         vclock.VC
	LastAct    trace.Action
	LastThread vclock.Tid
	LastSeq    int
}

// ObjectExport is one live object's active-point set.
type ObjectExport struct {
	Obj    trace.ObjID
	Points []PointExport
}

// DetectorState is a self-contained export of a Detector, ordered
// deterministically (objects and racy ids ascending, points sorted).
type DetectorState struct {
	Objects  []ObjectExport
	RacyObjs []trace.ObjID
	DeadRacy int
	Stats    Stats
}

// ExportState deep-copies the detector's resumable state. The detector
// remains usable; the export shares no mutable memory with it (Action
// value slices are shared but never written by the detector).
func (d *Detector) ExportState() *DetectorState {
	st := &DetectorState{DeadRacy: d.deadRacy, Stats: d.stats}
	for obj, os := range d.objects {
		oe := ObjectExport{Obj: obj}
		export := func(pt ap.Point, ps *ptState) {
			pe := PointExport{
				Pt:         pt,
				Epoch:      ps.epoch,
				LastAct:    ps.lastAct,
				LastThread: ps.lastThread,
				LastSeq:    ps.lastSeq,
			}
			if ps.vc != nil {
				pe.VC = append(vclock.VC(nil), ps.vc...)
			}
			oe.Points = append(oe.Points, pe)
		}
		if t := os.table; t != nil {
			for i, u := range t.used {
				if u {
					export(t.keys[i], &t.states[i])
				}
			}
		} else {
			for i := 0; i < os.n; i++ {
				export(os.keys[i], &os.states[i])
			}
		}
		sort.Slice(oe.Points, func(i, j int) bool {
			a, b := oe.Points[i].Pt, oe.Points[j].Pt
			if a.Class != b.Class {
				return a.Class < b.Class
			}
			return a.Val.Less(b.Val)
		})
		st.Objects = append(st.Objects, oe)
	}
	sort.Slice(st.Objects, func(i, j int) bool { return st.Objects[i].Obj < st.Objects[j].Obj })
	for obj := range d.racyObjs {
		st.RacyObjs = append(st.RacyObjs, obj)
	}
	sort.Slice(st.RacyObjs, func(i, j int) bool { return st.RacyObjs[i] < st.RacyObjs[j] })
	return st
}

// ImportState loads an export into the detector, which must be fresh (no
// objects, no processed events). repFor resolves each imported object's
// representation — the daemon's spec bindings, exactly as at Register time.
// Historical counters from the export are folded into the detector's stats;
// ActivePoints is re-derived from the inserted points.
func (d *Detector) ImportState(st *DetectorState, repFor func(trace.ObjID) (ap.Rep, error)) error {
	if len(d.objects) != 0 || d.stats.Actions != 0 {
		return fmt.Errorf("core: ImportState into a non-fresh detector")
	}
	for _, oe := range st.Objects {
		rep, err := repFor(oe.Obj)
		if err != nil {
			return fmt.Errorf("core: importing o%d: %w", oe.Obj, err)
		}
		d.reps[oe.Obj] = rep
		os := d.arena.newObjState()
		os.rep = rep
		d.objects[oe.Obj] = os
		d.ob.tblInline.Add(1)
		for _, pe := range oe.Points {
			ps, existed := d.lookupOrInsert(os, pe.Pt)
			if existed {
				return fmt.Errorf("core: importing o%d: duplicate point in snapshot", oe.Obj)
			}
			ps.epoch = pe.Epoch
			if pe.VC != nil {
				ps.vc = d.arena.cloneClock(pe.VC, 0)
			}
			ps.lastAct = pe.LastAct
			ps.lastThread = pe.LastThread
			ps.lastSeq = pe.LastSeq
			d.addActive(1)
		}
	}
	for _, obj := range st.RacyObjs {
		d.racyObjs[obj] = struct{}{}
	}
	d.deadRacy += st.DeadRacy
	d.stats.Actions += st.Stats.Actions
	d.stats.Checks += st.Stats.Checks
	d.stats.Races += st.Stats.Races
	d.stats.RacyEvents += st.Stats.RacyEvents
	d.stats.Reclaimed += st.Stats.Reclaimed
	if st.Stats.PeakActive > d.stats.PeakActive {
		d.stats.PeakActive = st.Stats.PeakActive
	}
	return nil
}
