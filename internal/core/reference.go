package core

// This file retains the original map-based detection back-end verbatim as
// RefDetector: per object a map[ap.Point]*refPtState with one heap-allocated
// state per point. It exists as the executable specification the
// allocation-free layout of store.go is differential-tested against
// (identical Races, Stats, DistinctObjects, and JSONL reports over the whole
// corpus — see backend_differential_test.go and ci.sh) and as the "map"
// side of BenchmarkDetectBackend's layout ratio gate. It deliberately does
// not publish obs metrics: running it next to a Detector must not
// double-count the process-global core.* counters.

import (
	"fmt"
	"io"

	"repro/internal/ap"
	"repro/internal/hb"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// RefDetector is the frozen map-based commutativity race detector. Its
// verdicts are the reference the arena-backed Detector must reproduce
// exactly. It is not safe for concurrent use.
type RefDetector struct {
	cfg      Config
	reps     map[trace.ObjID]ap.Rep
	objects  map[trace.ObjID]*refObjState
	races    []Race
	racyObjs map[trace.ObjID]struct{}
	deadRacy int
	stats    Stats
	ptBuf    []ap.Point
	cfBuf    []ap.Point
}

type refObjState struct {
	rep    ap.Rep
	active map[ap.Point]*refPtState
}

// refPtState is the reference per-point shadow state (see ptState for the
// epoch-or-clock semantics it shares).
type refPtState struct {
	epoch      vclock.Epoch
	vc         vclock.VC
	lastAct    trace.Action
	lastThread vclock.Tid
	lastSeq    int
}

func (ps *refPtState) ordered(c vclock.VC) bool {
	if ps.vc == nil {
		return ps.epoch.LEQ(c)
	}
	return ps.vc.LEQ(c)
}

func (ps *refPtState) clock() vclock.VC {
	if ps.vc == nil {
		return ps.epoch.VC()
	}
	return ps.vc.Clone()
}

// NewReference returns a map-based reference detector with the given
// configuration.
func NewReference(cfg Config) *RefDetector {
	if cfg.MaxRaces == 0 {
		cfg.MaxRaces = DefaultMaxRaces
	}
	return &RefDetector{
		cfg:      cfg,
		reps:     map[trace.ObjID]ap.Rep{},
		objects:  map[trace.ObjID]*refObjState{},
		racyObjs: map[trace.ObjID]struct{}{},
	}
}

// Register associates an object with its access point representation.
func (d *RefDetector) Register(obj trace.ObjID, rep ap.Rep) {
	d.reps[obj] = rep
}

// Process consumes one stamped event (see Detector.Process).
func (d *RefDetector) Process(e *trace.Event) error {
	switch e.Kind {
	case trace.ActionEvent:
		return d.action(e)
	case trace.DieEvent:
		d.reclaim(e.Act.Obj)
		return nil
	default:
		return nil
	}
}

func (d *RefDetector) action(e *trace.Event) error {
	if e.Clock == nil {
		return fmt.Errorf("core: event %d (%s) has no vector clock; stamp events before detection", e.Seq, e)
	}
	obj := e.Act.Obj
	st := d.objects[obj]
	if st == nil {
		rep, ok := d.reps[obj]
		if !ok {
			return fmt.Errorf("core: object o%d has no registered representation", obj)
		}
		st = &refObjState{rep: rep, active: map[ap.Point]*refPtState{}}
		d.objects[obj] = st
	}
	d.stats.Actions++

	pts, err := st.rep.Touch(d.ptBuf[:0], e.Act)
	if err != nil {
		return err
	}
	d.ptBuf = pts[:0]

	// Phase 1: check for commutativity races.
	checks := 0
	raced := false
	useBounded := st.rep.Bounded() && d.cfg.Engine != EngineEnumerating
	for _, pt := range pts {
		if useBounded {
			cands := st.rep.Conflicts(d.cfBuf[:0], pt)
			d.cfBuf = cands[:0]
			for _, cand := range cands {
				checks++
				if ps, ok := st.active[cand]; ok && !ps.ordered(e.Clock) {
					d.report(e, st, pt, cand, ps)
					raced = true
				}
			}
		} else {
			for cand, ps := range st.active {
				checks++
				if st.rep.ConflictsWith(pt, cand) && !ps.ordered(e.Clock) {
					d.report(e, st, pt, cand, ps)
					raced = true
				}
			}
		}
	}
	d.stats.Checks += checks
	if raced {
		d.stats.RacyEvents++
	}

	// Phase 2: fold the event's clock into the touched points.
	for _, pt := range pts {
		if ps, ok := st.active[pt]; ok {
			switch {
			case ps.vc != nil:
				ps.vc = ps.vc.Join(e.Clock)
			case e.Thread == ps.epoch.T:
				ps.epoch.C = e.Clock.Get(e.Thread)
			default:
				ps.vc = vclock.SharedPool.Clone(e.Clock).JoinEpoch(ps.epoch)
			}
			ps.lastAct = e.Act
			ps.lastThread = e.Thread
			ps.lastSeq = e.Seq
		} else {
			ps := &refPtState{
				lastAct:    e.Act,
				lastThread: e.Thread,
				lastSeq:    e.Seq,
			}
			if ep := vclock.EpochOf(e.Thread, e.Clock); ep.C > 0 {
				ps.epoch = ep
			} else {
				ps.vc = vclock.SharedPool.Clone(e.Clock)
			}
			st.active[pt] = ps
			d.addActive(1)
		}
	}
	return nil
}

func (d *RefDetector) addActive(n int) {
	d.stats.ActivePoints += n
	if d.stats.ActivePoints > d.stats.PeakActive {
		d.stats.PeakActive = d.stats.ActivePoints
	}
}

func (d *RefDetector) report(e *trace.Event, st *refObjState, pt, cand ap.Point, ps *refPtState) {
	d.stats.Races++
	d.racyObjs[e.Act.Obj] = struct{}{}
	if len(d.races) >= d.cfg.MaxRaces && d.cfg.OnRace == nil {
		return
	}
	r := Race{
		Obj:          e.Act.Obj,
		Second:       e.Act,
		SecondThread: e.Thread,
		SecondSeq:    e.Seq,
		SecondClock:  e.Clock.Clone(),
		SecondPoint:  st.rep.Describe(pt),
		First:        ps.lastAct,
		FirstThread:  ps.lastThread,
		FirstSeq:     ps.lastSeq,
		FirstClock:   ps.clock(),
		FirstPoint:   st.rep.Describe(cand),
	}
	if len(d.races) < d.cfg.MaxRaces {
		d.races = append(d.races, r)
	}
	if d.cfg.OnRace != nil {
		d.cfg.OnRace(r)
	}
}

// Compact removes every active point whose accumulated clock is ⊑ threshold
// (see Detector.Compact for the soundness argument).
func (d *RefDetector) Compact(threshold vclock.VC) int {
	if threshold.Bottom() {
		return 0
	}
	removed := 0
	for _, st := range d.objects {
		for pt, ps := range st.active {
			if ps.ordered(threshold) {
				vclock.SharedPool.Put(ps.vc)
				delete(st.active, pt)
				removed++
			}
		}
	}
	d.addActive(-removed)
	d.stats.Reclaimed += removed
	return removed
}

func (d *RefDetector) reclaim(obj trace.ObjID) {
	st := d.objects[obj]
	if st == nil {
		delete(d.reps, obj)
		return
	}
	for _, ps := range st.active {
		vclock.SharedPool.Put(ps.vc)
	}
	d.stats.Reclaimed += len(st.active)
	d.addActive(-len(st.active))
	delete(d.objects, obj)
	delete(d.reps, obj)
	if _, ok := d.racyObjs[obj]; ok {
		delete(d.racyObjs, obj)
		d.deadRacy++
	}
}

// Races returns the retained race reports (capped at Config.MaxRaces).
func (d *RefDetector) Races() []Race { return d.races }

// Stats returns a snapshot of the counters.
func (d *RefDetector) Stats() Stats { return d.stats }

// DistinctObjects returns the number of distinct objects with at least one
// race (exact under retention caps and reclamation, like Detector's).
func (d *RefDetector) DistinctObjects() int {
	return len(d.racyObjs) + d.deadRacy
}

// RunTrace stamps the trace with a fresh happens-before engine and runs the
// reference detector over every event.
func (d *RefDetector) RunTrace(tr *trace.Trace) error {
	en := hb.New()
	for i := range tr.Events {
		e := &tr.Events[i]
		if _, err := en.Process(e); err != nil {
			return fmt.Errorf("core: event %d (%s): %w", i, e, err)
		}
		if err := d.Process(e); err != nil {
			return err
		}
	}
	return nil
}

// RunSource stamps and detects over a streaming event source.
func (d *RefDetector) RunSource(src trace.Source) error {
	st := hb.NewStream(src)
	for {
		e, err := st.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
		if err := d.Process(&e); err != nil {
			return err
		}
	}
}
