package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ap"
	"repro/internal/ecl"
	"repro/internal/hb"
	"repro/internal/trace"
	"repro/internal/translate"
	"repro/internal/vclock"
)

const dictSrc = `
object dict
method put(k, v) / (p)
method get(k) / (v)
method size() / (r)
commute put(k1, v1)/(p1), put(k2, v2)/(p2)
    when k1 != k2 || (v1 == p1 && v2 == p2)
commute put(k1, v1)/(p1), get(k2)/(v2) when k1 != k2 || v1 == p1
commute put(k1, v1)/(p1), size()/(r)
    when (v1 == nil && p1 == nil) || (v1 != nil && p1 != nil)
commute get(k1)/(v1), get(k2)/(v2) when true
commute get(k1)/(v1), size()/(r) when true
commute size()/(r1), size()/(r2) when true
`

var (
	dictSpec = ecl.MustParseSpec(dictSrc)
	dictRep  = translate.MustTranslate(dictSpec)
	aCom     = trace.StrValue("a.com")
	bCom     = trace.StrValue("b.com")
	c1       = trace.IntValue(1)
	c2       = trace.IntValue(2)
)

// fig3Trace is the running example of Fig 3: two threads put the same key
// concurrently; the main thread joins both and reads the size.
func fig3Trace() *trace.Trace {
	return trace.NewBuilder().
		Fork(0, 1).Fork(0, 2).
		Put(2, 0, aCom, c1, trace.NilValue). // a1 (τ3 in the paper)
		Put(1, 0, aCom, c2, c1).             // a2 (τ2)
		JoinAll(0, 1, 2).
		Size(0, 0, 1). // a3
		Trace()
}

func newDictDetector(cfg Config) *Detector {
	d := New(cfg)
	d.Register(0, dictRep)
	return d
}

// TestFig3RaceDetected is experiment E2: the two concurrent puts of 'a.com'
// race; the size after joinall does not.
func TestFig3RaceDetected(t *testing.T) {
	for _, engine := range []Engine{EngineBounded, EngineEnumerating} {
		d := newDictDetector(Config{Engine: engine})
		if err := d.RunTrace(fig3Trace()); err != nil {
			t.Fatal(err)
		}
		races := d.Races()
		if len(races) != 1 {
			t.Fatalf("[%s] races = %d, want exactly 1: %v", engine, len(races), races)
		}
		r := races[0]
		if r.Second.Method != "put" || r.First.Method != "put" {
			t.Errorf("[%s] race between %s and %s, want the two puts", engine, r.First, r.Second)
		}
		if !strings.Contains(r.SecondPoint, `"a.com"`) {
			t.Errorf("[%s] racing point %q should name the key", engine, r.SecondPoint)
		}
		if !r.FirstClock.Concurrent(r.SecondClock) {
			t.Errorf("[%s] reported clocks must be concurrent: %s vs %s", engine, r.FirstClock, r.SecondClock)
		}
		if d.DistinctObjects() != 1 {
			t.Errorf("[%s] distinct objects = %d", engine, d.DistinctObjects())
		}
	}
}

// TestFig3NoJoinallSizeRaces: without the joinall, size races with the
// resizing put a1 (via o:size vs o:resize) but not with the non-resizing
// put a2 — the discussion at the end of Section 2.
func TestFig3NoJoinallSizeRaces(t *testing.T) {
	tr := trace.NewBuilder().
		Fork(0, 1).Fork(0, 2).
		Put(2, 0, aCom, c1, trace.NilValue). // resizes
		Put(1, 0, aCom, c2, c1).             // does not resize
		Size(0, 0, 1).                       // concurrent with both puts
		Trace()
	d := newDictDetector(Config{})
	if err := d.RunTrace(tr); err != nil {
		t.Fatal(err)
	}
	var sizeRaces []Race
	for _, r := range d.Races() {
		if r.Second.Method == "size" {
			sizeRaces = append(sizeRaces, r)
		}
	}
	if len(sizeRaces) != 1 {
		t.Fatalf("size races = %v, want exactly one (against the resizing put)", sizeRaces)
	}
	if sizeRaces[0].FirstSeq != 2 {
		t.Errorf("size should race with the resizing put (event 2), got event %d", sizeRaces[0].FirstSeq)
	}
}

func TestOrderedOperationsDoNotRace(t *testing.T) {
	// Sequential puts on one thread never race.
	tr := trace.NewBuilder().
		Put(0, 0, aCom, c1, trace.NilValue).
		Put(0, 0, aCom, c2, c1).
		Size(0, 0, 1).
		Trace()
	d := newDictDetector(Config{})
	if err := d.RunTrace(tr); err != nil {
		t.Fatal(err)
	}
	if n := len(d.Races()); n != 0 {
		t.Fatalf("sequential trace produced %d races", n)
	}
}

func TestLockProtectedOperationsDoNotRace(t *testing.T) {
	tr := trace.NewBuilder().
		Fork(0, 1).Fork(0, 2).
		Acquire(1, 0).
		Put(1, 0, aCom, c1, trace.NilValue).
		Release(1, 0).
		Acquire(2, 0).
		Put(2, 0, aCom, c2, c1).
		Release(2, 0).
		Trace()
	d := newDictDetector(Config{})
	if err := d.RunTrace(tr); err != nil {
		t.Fatal(err)
	}
	if n := len(d.Races()); n != 0 {
		t.Fatalf("lock-ordered trace produced %d races", n)
	}
}

func TestConcurrentDifferentKeysDoNotRace(t *testing.T) {
	tr := trace.NewBuilder().
		Fork(0, 1).Fork(0, 2).
		Put(1, 0, aCom, c1, trace.NilValue).
		Put(2, 0, bCom, c2, trace.NilValue).
		Trace()
	d := newDictDetector(Config{})
	if err := d.RunTrace(tr); err != nil {
		t.Fatal(err)
	}
	if n := len(d.Races()); n != 0 {
		t.Fatalf("different-key puts raced: %v", d.Races())
	}
}

func TestConcurrentResizingPutsOnDifferentKeysStillCommute(t *testing.T) {
	// Both puts touch o:resize — but resize does not conflict with resize
	// (Fig 7(c)); only size observations conflict with resizes.
	tr := trace.NewBuilder().
		Fork(0, 1).Fork(0, 2).
		Put(1, 0, aCom, c1, trace.NilValue).
		Put(2, 0, bCom, c2, trace.NilValue).
		Size(1, 0, 2).
		Trace()
	d := newDictDetector(Config{})
	if err := d.RunTrace(tr); err != nil {
		t.Fatal(err)
	}
	// size by t1 is concurrent with t2's resizing put: exactly one race.
	if n := len(d.Races()); n != 1 {
		t.Fatalf("races = %d, want 1 (size vs t2's resize): %v", n, d.Races())
	}
}

func TestUnregisteredObjectFails(t *testing.T) {
	d := New(Config{})
	tr := trace.NewBuilder().Size(0, 7, 0).Trace()
	if err := d.RunTrace(tr); err == nil {
		t.Fatal("unregistered object must error")
	}
}

func TestUnstampedEventFails(t *testing.T) {
	d := newDictDetector(Config{})
	ev := trace.Act(0, trace.Action{Obj: 0, Method: "size", Rets: []trace.Value{trace.IntValue(0)}})
	if err := d.Process(&ev); err == nil {
		t.Fatal("unstamped action must error")
	}
}

func TestBadActionFails(t *testing.T) {
	d := newDictDetector(Config{})
	tr := trace.NewBuilder().Act(0, 0, "frob", nil, nil).Trace()
	if err := d.RunTrace(tr); err == nil {
		t.Fatal("unknown method must error")
	}
}

func TestSyncEventsIgnoredByDetector(t *testing.T) {
	d := newDictDetector(Config{})
	for _, ev := range []trace.Event{
		trace.Fork(0, 1), trace.Join(0, 1), trace.Acquire(0, 0),
		trace.Release(0, 0), trace.Read(0, 0), trace.Write(0, 0),
		{Kind: trace.BeginEvent}, {Kind: trace.EndEvent},
	} {
		e := ev
		if err := d.Process(&e); err != nil {
			t.Fatalf("%s: %v", e.String(), err)
		}
	}
}

func TestObjectDeathReclaims(t *testing.T) {
	d := newDictDetector(Config{})
	d.Register(1, dictRep)
	tr := trace.NewBuilder().
		Put(0, 0, aCom, c1, trace.NilValue).
		Put(0, 1, aCom, c1, trace.NilValue).
		Die(0, 0).
		Trace()
	if err := d.RunTrace(tr); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Reclaimed == 0 {
		t.Error("death must reclaim points")
	}
	if st.ActivePoints >= st.PeakActive {
		t.Errorf("active %d should drop below peak %d after death", st.ActivePoints, st.PeakActive)
	}
	// Dying twice (or an unknown object) is harmless.
	ev := trace.Die(0, 0)
	if err := d.Process(&ev); err != nil {
		t.Fatal(err)
	}
}

// TestNoRaceAcrossDeath: races are only reported among accesses within an
// object's lifetime; after death, old accesses are forgotten and the
// object's registration is released (a fresh object reusing the id must be
// registered anew, as the monitored runtime does for every created object).
func TestNoRaceAcrossDeath(t *testing.T) {
	tr := trace.NewBuilder().
		Fork(0, 1).
		Put(1, 0, aCom, c1, trace.NilValue).
		Die(1, 0).
		Put(0, 0, aCom, c2, trace.NilValue). // concurrent with t1's put, but object is new
		Trace()
	d := newDictDetector(Config{})
	en := hb.New()
	for i := range tr.Events {
		if _, err := en.Process(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
		if tr.Events[i].Kind == trace.ActionEvent {
			if _, ok := d.reps[0]; !ok {
				d.Register(0, dictRep) // revival requires re-registration
			}
		}
		if err := d.Process(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(d.Races()); n != 0 {
		t.Fatalf("race across object death: %v", d.Races())
	}
}

// TestFig4CheckCounts is experiment E3: three concurrent resizing puts on
// distinct keys followed by a size. With access points the size performs one
// conflict check (o:size vs o:resize); the direct approach checks all three
// recorded put invocations.
func TestFig4CheckCounts(t *testing.T) {
	build := func() *trace.Trace {
		return trace.NewBuilder().
			Fork(0, 1).Fork(0, 2).Fork(0, 3).
			Put(1, 0, aCom, c1, trace.NilValue).
			Put(2, 0, bCom, c2, trace.NilValue).
			Put(3, 0, trace.StrValue("c.com"), c1, trace.NilValue).
			Size(0, 0, 3).
			Trace()
	}

	// Bounded engine on the translated representation. The size action's
	// own check count is the difference between running the trace with and
	// without the trailing size.
	d := newDictDetector(Config{Engine: EngineBounded})
	if err := d.RunTrace(build()); err != nil {
		t.Fatal(err)
	}
	checksWith := d.Stats().Checks

	d2 := newDictDetector(Config{Engine: EngineBounded})
	noSize := trace.NewBuilder().
		Fork(0, 1).Fork(0, 2).Fork(0, 3).
		Put(1, 0, aCom, c1, trace.NilValue).
		Put(2, 0, bCom, c2, trace.NilValue).
		Put(3, 0, trace.StrValue("c.com"), c1, trace.NilValue).
		Trace()
	if err := d2.RunTrace(noSize); err != nil {
		t.Fatal(err)
	}
	sizeChecks := checksWith - d2.Stats().Checks
	if sizeChecks != 1 {
		t.Errorf("bounded: size performed %d checks, want 1 (Fig 4)", sizeChecks)
	}

	// Direct approach: naive representation + enumerating engine.
	commute := func(a, b trace.Action) bool {
		ok, err := dictSpec.Commutes(a, b)
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}
	d3 := New(Config{Engine: EngineEnumerating})
	d3.Register(0, ap.NewNaiveRep(commute))
	if err := d3.RunTrace(build()); err != nil {
		t.Fatal(err)
	}
	d4 := New(Config{Engine: EngineEnumerating})
	d4.Register(0, ap.NewNaiveRep(commute))
	if err := d4.RunTrace(noSize); err != nil {
		t.Fatal(err)
	}
	naiveSizeChecks := d3.Stats().Checks - d4.Stats().Checks
	if naiveSizeChecks != 3 {
		t.Errorf("direct: size performed %d checks, want 3 (Fig 4)", naiveSizeChecks)
	}
}

// oracleRaces computes, per action event, whether it races with any earlier
// action event on the same object: ei ∥ ej and ¬ϕ(ai, aj). This is the
// specification-level definition (Definition 4.3) that Theorem 5.1 says
// Algorithm 1 matches.
func oracleRaces(t *testing.T, tr *trace.Trace) []bool {
	t.Helper()
	out := make([]bool, tr.Len())
	var acts []*trace.Event
	for i := range tr.Events {
		e := &tr.Events[i]
		if e.Kind != trace.ActionEvent {
			continue
		}
		for _, prev := range acts {
			if prev.Act.Obj != e.Act.Obj {
				continue
			}
			if !prev.Clock.Concurrent(e.Clock) {
				continue
			}
			ok, err := dictSpec.Commutes(prev.Act, e.Act)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				out[e.Seq] = true
			}
		}
		acts = append(acts, e)
	}
	return out
}

// TestPropTheorem51DetectorMatchesOracle: on random realizable dictionary
// traces, the detector flags exactly the events that the specification-level
// oracle says race — for both engines and for the hand-written
// representation.
func TestPropTheorem51DetectorMatchesOracle(t *testing.T) {
	cfg := trace.DefaultGenConfig()
	cfg.Objects = 2
	reps := map[string]func() (ap.Rep, Engine){
		"translated-bounded":    func() (ap.Rep, Engine) { return dictRep, EngineBounded },
		"translated-enumerated": func() (ap.Rep, Engine) { return dictRep, EngineEnumerating },
		"handwritten-bounded":   func() (ap.Rep, Engine) { return ap.DictRep{}, EngineBounded },
	}
	for name, mk := range reps {
		err := quick.Check(func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			tr := trace.Generate(r, cfg)
			rep, engine := mk()
			d := New(Config{Engine: engine})
			for o := 0; o < cfg.Objects; o++ {
				d.Register(trace.ObjID(o), rep)
			}
			flagged := make([]bool, tr.Len())
			d2 := New(Config{Engine: engine, OnRace: func(rc Race) {
				flagged[rc.SecondSeq] = true
			}})
			for o := 0; o < cfg.Objects; o++ {
				d2.Register(trace.ObjID(o), rep)
			}
			if err := d2.RunTrace(tr); err != nil {
				t.Log(err)
				return false
			}
			want := oracleRaces(t, tr)
			for i := range want {
				if want[i] != flagged[i] {
					t.Logf("%s seed %d: event %d (%s): oracle %v detector %v",
						name, seed, i, tr.Events[i].String(), want[i], flagged[i])
					return false
				}
			}
			return true
		}, &quick.Config{MaxCount: 60})
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestPropEnginesAgree: the bounded and enumerating engines report identical
// race sets on random traces.
func TestPropEnginesAgree(t *testing.T) {
	cfg := trace.DefaultGenConfig()
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := trace.Generate(r, cfg)
		counts := map[Engine]int{}
		for _, engine := range []Engine{EngineBounded, EngineEnumerating} {
			d := New(Config{Engine: engine})
			for o := 0; o < cfg.Objects; o++ {
				d.Register(trace.ObjID(o), dictRep)
			}
			if err := d.RunTrace(tr); err != nil {
				t.Log(err)
				return false
			}
			counts[engine] = d.Stats().Races
		}
		return counts[EngineBounded] == counts[EngineEnumerating]
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMaxRacesCap(t *testing.T) {
	// Many racing puts: reports capped but counters keep counting.
	b := trace.NewBuilder()
	for i := 1; i <= 8; i++ {
		b.Fork(0, vclock.Tid(i))
	}
	for i := 1; i <= 8; i++ {
		b.Put(vclock.Tid(i), 0, aCom, trace.IntValue(int64(i)), trace.NilValue)
	}
	d := newDictDetector(Config{MaxRaces: 3})
	if err := d.RunTrace(b.Trace()); err != nil {
		t.Fatal(err)
	}
	if len(d.Races()) != 3 {
		t.Errorf("retained races = %d, want 3", len(d.Races()))
	}
	if d.Stats().Races <= 3 {
		t.Errorf("race counter = %d, want > 3", d.Stats().Races)
	}
}

func TestEngineString(t *testing.T) {
	for e, want := range map[Engine]string{
		EngineAuto: "auto", EngineBounded: "bounded", EngineEnumerating: "enumerating",
		Engine(9): "Engine(9)",
	} {
		if got := e.String(); got != want {
			t.Errorf("Engine(%d) = %q, want %q", int(e), got, want)
		}
	}
}

func TestRaceString(t *testing.T) {
	d := newDictDetector(Config{})
	if err := d.RunTrace(fig3Trace()); err != nil {
		t.Fatal(err)
	}
	s := d.Races()[0].String()
	for _, frag := range []string{"commutativity race", "o0", "put", "conflicts with"} {
		if !strings.Contains(s, frag) {
			t.Errorf("race string %q missing %q", s, frag)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	d := newDictDetector(Config{})
	if err := d.RunTrace(fig3Trace()); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Actions != 3 {
		t.Errorf("actions = %d, want 3", st.Actions)
	}
	if st.Checks == 0 {
		t.Error("checks should be counted")
	}
	if st.RacyEvents != 1 {
		t.Errorf("racy events = %d, want 1", st.RacyEvents)
	}
	if st.ActivePoints == 0 || st.PeakActive < st.ActivePoints {
		t.Errorf("active accounting broken: %+v", st)
	}
}

func BenchmarkDetectorBounded(b *testing.B) {
	benchDetector(b, EngineBounded)
}

func BenchmarkDetectorEnumerating(b *testing.B) {
	benchDetector(b, EngineEnumerating)
}

func benchDetector(b *testing.B, engine Engine) {
	r := rand.New(rand.NewSource(42))
	cfg := trace.DefaultGenConfig()
	cfg.Threads = 4
	cfg.OpsMin, cfg.OpsMax = 200, 200
	tr := trace.Generate(r, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := New(Config{Engine: engine, MaxRaces: 1})
		for o := 0; o < cfg.Objects; o++ {
			d.Register(trace.ObjID(o), dictRep)
		}
		if err := d.RunTrace(tr); err != nil {
			b.Fatal(err)
		}
	}
}
