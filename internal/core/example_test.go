package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/specs"
	"repro/internal/trace"
)

// Example_offlineAnalysis replays a recorded trace — the paper's running
// example of Fig 3 — through the detector.
func Example_offlineAnalysis() {
	src := `
t0 fork t1
t0 fork t2
t2 act o0.put("a.com", 1)/nil
t1 act o0.put("a.com", 2)/1
t0 join t1
t0 join t2
t0 act o0.size()/1
`
	tr, err := trace.ParseString(src)
	if err != nil {
		fmt.Println(err)
		return
	}
	det := core.New(core.Config{})
	det.Register(0, specs.MustRep("dict"))
	if err := det.RunTrace(tr); err != nil {
		fmt.Println(err)
		return
	}
	for _, r := range det.Races() {
		fmt.Printf("race on o%d between %s and %s\n", int(r.Obj), r.First, r.Second)
	}
	fmt.Printf("%d race(s), %d distinct object(s)\n",
		det.Stats().Races, det.DistinctObjects())
	// Output:
	// race on o0 between o0.put("a.com", 1)/nil and o0.put("a.com", 2)/1
	// 1 race(s), 1 distinct object(s)
}

// ExampleSummarize groups redundant race reports, which the paper notes
// dominate raw race counts.
func ExampleSummarize() {
	races := []core.Race{
		{Obj: 0, First: trace.Action{Method: "put"}, Second: trace.Action{Method: "put"}},
		{Obj: 0, First: trace.Action{Method: "put"}, Second: trace.Action{Method: "put"}},
		{Obj: 0, First: trace.Action{Method: "size"}, Second: trace.Action{Method: "put"}},
	}
	for _, g := range core.Summarize(races) {
		fmt.Printf("o%d %s/%s ×%d\n", int(g.Obj), g.MethodA, g.MethodB, g.Count)
	}
	// Output:
	// o0 put/put ×2
	// o0 put/size ×1
}
