package core

import (
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/vclock"
)

func TestSummarizeGroupsAndOrders(t *testing.T) {
	mk := func(obj trace.ObjID, m1, m2 string) Race {
		return Race{Obj: obj,
			First:  trace.Action{Obj: obj, Method: m1},
			Second: trace.Action{Obj: obj, Method: m2}}
	}
	races := []Race{
		mk(0, "put", "put"),
		mk(0, "put", "put"),
		mk(0, "put", "put"),
		mk(0, "size", "put"), // same group as put/size
		mk(0, "put", "size"),
		mk(1, "get", "put"),
	}
	groups := Summarize(races)
	if len(groups) != 3 {
		t.Fatalf("groups = %d: %v", len(groups), groups)
	}
	if groups[0].Count != 3 || groups[0].MethodA != "put" || groups[0].MethodB != "put" {
		t.Errorf("top group = %+v", groups[0])
	}
	if groups[1].Count != 2 || groups[1].MethodA != "put" || groups[1].MethodB != "size" {
		t.Errorf("second group = %+v (method pair must be order-normalized)", groups[1])
	}
	if groups[2].Obj != 1 {
		t.Errorf("third group = %+v", groups[2])
	}
	out := RenderSummary(groups)
	if !strings.Contains(out, "3 race(s)") || !strings.Contains(out, "put vs size") {
		t.Errorf("render: %s", out)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if got := Summarize(nil); len(got) != 0 {
		t.Fatalf("Summarize(nil) = %v", got)
	}
	if RenderSummary(nil) != "" {
		t.Fatal("empty render")
	}
}

func TestSummarizeEndToEnd(t *testing.T) {
	// Many redundant same-key put races collapse into one group.
	b := trace.NewBuilder()
	for i := 1; i <= 6; i++ {
		b.Fork(0, vclock.Tid(i))
	}
	for i := 1; i <= 6; i++ {
		b.Put(vclock.Tid(i), 0, aCom, trace.IntValue(int64(i)), trace.NilValue)
	}
	d := newDictDetector(Config{})
	if err := d.RunTrace(b.Trace()); err != nil {
		t.Fatal(err)
	}
	groups := Summarize(d.Races())
	if len(groups) != 1 {
		t.Fatalf("groups = %v", groups)
	}
	if groups[0].Count != d.Stats().Races {
		t.Errorf("group count %d != races %d", groups[0].Count, d.Stats().Races)
	}
}
