package core

// backendArena is the detector-private allocator behind store.go: free-lists
// for objStates, spill tables (bucketed by size class), and promoted vector
// clocks, plus slab carving so even first allocations amortize. Everything a
// reclaim or Compact releases goes back here and is handed out again, so
// DieEvent-heavy traces reach steady-state zero allocation. The arena is
// owned by exactly one Detector (per-shard detectors each own one), so it
// needs no locking and — unlike vclock.SharedPool — no cross-shard
// synchronization on the promotion path.

import (
	"math/bits"
	"unsafe"

	"repro/internal/ap"
	"repro/internal/vclock"
)

const (
	// objSlabLen is how many objStates one slab carve covers.
	objSlabLen = 64
	// clockSlabWords is the size of one clock slab; carves beyond a quarter
	// of it go straight to the heap rather than waste most of a slab.
	clockSlabWords = 4096
	// minClockCap matches vclock's pool minimum so recycled clocks absorb
	// small growth without reallocating.
	minClockCap = 8
	// tableClasses bounds the spill-table size classes (log2 capacity).
	tableClasses = 32
	// freeListCap bounds each free-list so one pathological phase cannot
	// pin unbounded memory for the rest of the run.
	freeListCap = 1024
)

type backendArena struct {
	ob      *coreObs // owning detector's instrument set
	objFree []*objState
	objSlab []objState

	tblFree [tableClasses][]*ptTable

	clockFree []vclock.VC
	clockSlab []uint64

	// reportSlab backs the clock snapshots embedded in Race reports. Races
	// escape to the user, so these carves are never recycled — the slab only
	// amortizes their allocation.
	reportSlab []uint64

	// allocBytes counts every byte the arena has requested from the Go heap
	// (slabs, tables, oversized clocks). It is monotone — the arena recycles
	// internally and never returns memory to the GC — so it is an upper
	// bound on the detector's resident footprint, which the fleet scheduler
	// charges against per-tenant arena-byte quotas.
	allocBytes int64
}

// account charges n freshly heap-allocated bytes to the arena footprint.
func (a *backendArena) account(n int) { a.allocBytes += int64(n) }

// newObjState returns a zeroed objState, recycled or carved from a slab.
func (a *backendArena) newObjState() *objState {
	if n := len(a.objFree); n > 0 {
		st := a.objFree[n-1]
		a.objFree[n-1] = nil
		a.objFree = a.objFree[:n-1]
		a.ob.arenaObjFree.Add(-1)
		a.ob.arenaObjInUse.Add(1)
		return st
	}
	if len(a.objSlab) == 0 {
		a.objSlab = make([]objState, objSlabLen)
		a.account(objSlabLen * int(unsafe.Sizeof(objState{})))
	}
	st := &a.objSlab[0]
	a.objSlab = a.objSlab[1:]
	a.ob.arenaObjInUse.Add(1)
	return st
}

// putObjState recycles a released objState (already zeroed by releaseObj).
func (a *backendArena) putObjState(st *objState) {
	a.ob.arenaObjInUse.Add(-1)
	if len(a.objFree) >= freeListCap {
		return
	}
	a.objFree = append(a.objFree, st)
	a.ob.arenaObjFree.Add(1)
}

// newTable returns an empty table of the given power-of-two capacity,
// recycled from its size class when possible.
func (a *backendArena) newTable(capacity int) *ptTable {
	cl := bits.TrailingZeros(uint(capacity))
	if cl < tableClasses {
		if fl := a.tblFree[cl]; len(fl) > 0 {
			t := fl[len(fl)-1]
			fl[len(fl)-1] = nil
			a.tblFree[cl] = fl[:len(fl)-1]
			a.ob.arenaTblFree.Add(-1)
			return t
		}
	}
	a.account(int(unsafe.Sizeof(ptTable{})) +
		capacity*int(1+unsafe.Sizeof(ap.Point{})+unsafe.Sizeof(ptState{})))
	return &ptTable{
		mask:   uint64(capacity - 1),
		used:   make([]bool, capacity),
		keys:   make([]ap.Point, capacity),
		states: make([]ptState, capacity),
	}
}

// putTable clears a table and files it under its size class.
func (a *backendArena) putTable(t *ptTable) {
	clear(t.used)
	clear(t.keys)
	clear(t.states)
	t.live = 0
	cl := bits.TrailingZeros(uint(len(t.used)))
	if cl >= tableClasses || len(a.tblFree[cl]) >= freeListCap {
		return
	}
	a.tblFree[cl] = append(a.tblFree[cl], t)
	a.ob.arenaTblFree.Add(1)
}

// cloneClock returns a copy of c with capacity at least minCap, recycled
// from the clock free-list or carved from a slab. It is the promotion
// allocator: pass minCap ≥ the width the immediate JoinEpoch needs so the
// join never reallocates. A nil/empty c with minCap 0 stays nil (matching
// VC.Clone).
func (a *backendArena) cloneClock(c vclock.VC, minCap int) vclock.VC {
	w := len(c)
	if minCap < w {
		minCap = w
	}
	if minCap == 0 {
		return nil
	}
	if minCap < minClockCap {
		minCap = minClockCap
	}
	var out vclock.VC
	if n := len(a.clockFree); n > 0 {
		buf := a.clockFree[n-1]
		a.clockFree[n-1] = nil
		a.clockFree = a.clockFree[:n-1]
		a.ob.arenaClockFree.Add(-1)
		if cap(buf) >= minCap {
			out = buf[:w]
		}
		// A too-narrow recycled clock is dropped: thread counts only grow,
		// so narrow buffers would otherwise cycle uselessly forever.
	}
	if out == nil {
		if minCap > clockSlabWords/4 {
			out = make(vclock.VC, w, minCap)
			a.account(minCap * 8)
		} else {
			if len(a.clockSlab) < minCap {
				a.clockSlab = make([]uint64, clockSlabWords)
				a.account(clockSlabWords * 8)
			}
			// Three-index carve: cap is pinned to the carved region so a
			// later grow of this clock can never alias the next carve.
			out = vclock.VC(a.clockSlab[0:w:minCap])
			a.clockSlab = a.clockSlab[minCap:]
		}
	}
	copy(out, c)
	return out
}

// freeClock recycles a promoted clock released by Compact or reclaim. Only
// clocks are passed here (epoch-compressed points have vc == nil, which is
// ignored).
func (a *backendArena) freeClock(c vclock.VC) {
	if c == nil || cap(c) < minClockCap {
		return
	}
	if len(a.clockFree) >= freeListCap {
		return
	}
	a.clockFree = append(a.clockFree, c[:0])
	a.ob.arenaClockFree.Add(1)
}

// reportClock returns a copy of c carved from the never-recycled report
// slab. Race reports own their clocks and outlive the detector's recycling,
// so these buffers are never reused; the slab only batches their allocation.
func (a *backendArena) reportClock(c vclock.VC) vclock.VC {
	w := len(c)
	if w == 0 {
		return nil
	}
	if w > clockSlabWords/4 {
		out := make(vclock.VC, w)
		a.account(w * 8)
		copy(out, c)
		return out
	}
	if len(a.reportSlab) < w {
		a.reportSlab = make([]uint64, clockSlabWords)
		a.account(clockSlabWords * 8)
	}
	out := vclock.VC(a.reportSlab[0:w:w])
	a.reportSlab = a.reportSlab[w:]
	copy(out, c)
	return out
}

// reportEpochVC is reportClock for an epoch-form point: the sparse
// ⟨…, C, …⟩ expansion vclock.Epoch.VC returns, carved from the report slab.
// Report-slab regions are handed out once and never recycled, so a fresh
// carve is still in its make-zeroed state and only the T entry needs
// writing.
func (a *backendArena) reportEpochVC(e vclock.Epoch) vclock.VC {
	w := int(e.T) + 1
	if w > clockSlabWords/4 {
		a.account(w * 8)
		return e.VC()
	}
	if len(a.reportSlab) < w {
		a.reportSlab = make([]uint64, clockSlabWords)
		a.account(clockSlabWords * 8)
	}
	out := vclock.VC(a.reportSlab[0:w:w])
	a.reportSlab = a.reportSlab[w:]
	out[e.T] = e.C
	return out
}
