package semantics

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

var (
	vNil = trace.NilValue
	v1   = trace.IntValue(1)
	v2   = trace.IntValue(2)
	kA   = trace.StrValue("a")
	kB   = trace.StrValue("b")
)

func act(method string, args, rets []trace.Value) trace.Action {
	return trace.Action{Method: method, Args: args, Rets: rets}
}

func apply(t *testing.T, m Machine, a trace.Action) {
	t.Helper()
	if err := m.Apply(a); err != nil {
		t.Fatalf("Apply(%s): %v", a, err)
	}
}

func TestNewKinds(t *testing.T) {
	for _, kind := range []string{"dict", "set", "counter", "queue", "register", "multiset"} {
		m, err := New(kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if m.Fingerprint() == "" {
			t.Errorf("%s: empty fingerprint", kind)
		}
	}
	if _, err := New("nope"); err == nil {
		t.Error("unknown kind must fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic")
		}
	}()
	MustNew("nope")
}

func TestDictSemantics(t *testing.T) {
	m := MustNew("dict")
	apply(t, m, act("put", []trace.Value{kA, v1}, []trace.Value{vNil}))
	apply(t, m, act("get", []trace.Value{kA}, []trace.Value{v1}))
	apply(t, m, act("size", nil, []trace.Value{trace.IntValue(1)}))
	apply(t, m, act("put", []trace.Value{kA, v2}, []trace.Value{v1}))
	apply(t, m, act("put", []trace.Value{kA, vNil}, []trace.Value{v2})) // removal
	apply(t, m, act("size", nil, []trace.Value{trace.IntValue(0)}))
	// Inconsistent returns are rejected.
	if err := m.Apply(act("get", []trace.Value{kA}, []trace.Value{v1})); err == nil {
		t.Error("stale get return must fail")
	}
	if err := m.Apply(act("size", nil, []trace.Value{trace.IntValue(9)})); err == nil {
		t.Error("wrong size must fail")
	}
	if err := m.Apply(act("frob", nil, nil)); err == nil {
		t.Error("unknown method must fail")
	}
	if err := m.Apply(act("put", []trace.Value{kA}, []trace.Value{vNil})); err == nil {
		t.Error("bad arity must fail")
	}
}

func TestSetSemantics(t *testing.T) {
	m := MustNew("set")
	tr := trace.BoolValue(true)
	fa := trace.BoolValue(false)
	apply(t, m, act("add", []trace.Value{v1}, []trace.Value{tr}))
	apply(t, m, act("add", []trace.Value{v1}, []trace.Value{fa}))
	apply(t, m, act("contains", []trace.Value{v1}, []trace.Value{tr}))
	apply(t, m, act("size", nil, []trace.Value{trace.IntValue(1)}))
	apply(t, m, act("remove", []trace.Value{v1}, []trace.Value{tr}))
	apply(t, m, act("remove", []trace.Value{v1}, []trace.Value{fa}))
	if err := m.Apply(act("contains", []trace.Value{v1}, []trace.Value{tr})); err == nil {
		t.Error("contains of absent element returning true must fail")
	}
}

func TestCounterSemantics(t *testing.T) {
	m := MustNew("counter")
	apply(t, m, act("add", []trace.Value{trace.IntValue(5)}, []trace.Value{trace.IntValue(0)}))
	apply(t, m, act("read", nil, []trace.Value{trace.IntValue(5)}))
	apply(t, m, act("add", []trace.Value{trace.IntValue(-2)}, []trace.Value{trace.IntValue(5)}))
	apply(t, m, act("read", nil, []trace.Value{trace.IntValue(3)}))
	if err := m.Apply(act("read", nil, []trace.Value{trace.IntValue(0)})); err == nil {
		t.Error("wrong read must fail")
	}
}

func TestQueueSemantics(t *testing.T) {
	m := MustNew("queue")
	apply(t, m, act("deq", nil, []trace.Value{vNil})) // empty dequeue
	apply(t, m, act("enq", []trace.Value{v1}, nil))
	apply(t, m, act("enq", []trace.Value{v2}, nil))
	apply(t, m, act("len", nil, []trace.Value{trace.IntValue(2)}))
	apply(t, m, act("deq", nil, []trace.Value{v1}))
	apply(t, m, act("deq", nil, []trace.Value{v2}))
	if err := m.Apply(act("deq", nil, []trace.Value{v1})); err == nil {
		t.Error("dequeue of empty queue returning a value must fail")
	}
}

func TestRegisterSemantics(t *testing.T) {
	m := MustNew("register")
	apply(t, m, act("read", nil, []trace.Value{vNil}))
	apply(t, m, act("write", []trace.Value{v1}, []trace.Value{vNil}))
	apply(t, m, act("write", []trace.Value{v2}, []trace.Value{v1}))
	apply(t, m, act("read", nil, []trace.Value{v2}))
	if err := m.Apply(act("write", []trace.Value{v1}, []trace.Value{v1})); err == nil {
		t.Error("write with wrong old value must fail")
	}
}

func TestMultisetSemantics(t *testing.T) {
	m := MustNew("multiset")
	apply(t, m, act("add", []trace.Value{v1}, nil))
	apply(t, m, act("add", []trace.Value{v1}, nil))
	apply(t, m, act("count", []trace.Value{v1}, []trace.Value{trace.IntValue(2)}))
	apply(t, m, act("count", []trace.Value{v2}, []trace.Value{trace.IntValue(0)}))
	apply(t, m, act("size", nil, []trace.Value{trace.IntValue(2)}))
	if err := m.Apply(act("count", []trace.Value{v1}, []trace.Value{trace.IntValue(3)})); err == nil {
		t.Error("wrong count must fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	for _, kind := range []string{"dict", "set", "counter", "queue", "register", "multiset"} {
		m := MustNew(kind)
		// Mutate the original after cloning; fingerprints must diverge.
		c := m.Clone()
		var mut trace.Action
		switch kind {
		case "dict":
			mut = act("put", []trace.Value{kA, v1}, []trace.Value{vNil})
		case "set":
			mut = act("add", []trace.Value{v1}, []trace.Value{trace.BoolValue(true)})
		case "counter":
			mut = act("add", []trace.Value{v1}, []trace.Value{trace.IntValue(0)})
		case "queue":
			mut = act("enq", []trace.Value{v1}, nil)
		case "register":
			mut = act("write", []trace.Value{v1}, []trace.Value{vNil})
		case "multiset":
			mut = act("add", []trace.Value{v1}, nil)
		}
		apply(t, m, mut)
		if m.Fingerprint() == c.Fingerprint() {
			t.Errorf("%s: clone aliases original", kind)
		}
	}
}

func TestFingerprintCanonical(t *testing.T) {
	// Same abstract state via different histories fingerprints equally.
	a := MustNew("dict")
	apply(t, a, act("put", []trace.Value{kA, v1}, []trace.Value{vNil}))
	apply(t, a, act("put", []trace.Value{kB, v2}, []trace.Value{vNil}))
	b := MustNew("dict")
	apply(t, b, act("put", []trace.Value{kB, v2}, []trace.Value{vNil}))
	apply(t, b, act("put", []trace.Value{kA, v1}, []trace.Value{vNil}))
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("order-independent states differ: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
	if !strings.Contains(a.Fingerprint(), "dict{") {
		t.Errorf("fingerprint format: %s", a.Fingerprint())
	}
}

func TestCommute(t *testing.T) {
	m := MustNew("dict")
	apply(t, m, act("put", []trace.Value{kA, v1}, []trace.Value{vNil}))
	// Different keys commute.
	a := act("put", []trace.Value{kA, v2}, []trace.Value{v1})
	b := act("put", []trace.Value{kB, v2}, []trace.Value{vNil})
	ok, err := Commute(m, a, b)
	if err != nil || !ok {
		t.Errorf("different-key puts should commute: %v %v", ok, err)
	}
	// Same key real writes do not (returns differ across orders).
	c := act("put", []trace.Value{kA, v2}, []trace.Value{v1})
	d := act("put", []trace.Value{kA, v1}, []trace.Value{v2})
	ok, err = Commute(m, c, d)
	if err != nil || ok {
		t.Errorf("same-key writes should not commute: %v %v", ok, err)
	}
	// Commute must not mutate the machine.
	before := m.Fingerprint()
	if _, err := Commute(m, a, b); err != nil {
		t.Fatal(err)
	}
	if m.Fingerprint() != before {
		t.Error("Commute mutated the machine")
	}
}

func TestCommuteBothUndefined(t *testing.T) {
	m := MustNew("register") // holds nil
	// Both actions impossible at this state in either order.
	a := act("write", []trace.Value{v1}, []trace.Value{v2})
	b := act("write", []trace.Value{v2}, []trace.Value{v1})
	ok, err := Commute(m, a, b)
	if err != nil || !ok {
		t.Errorf("everywhere-undefined compositions agree: %v %v", ok, err)
	}
}

func TestReturnsMatchesApply(t *testing.T) {
	// For every kind and method, Returns must produce exactly the tuple
	// that makes the action enabled.
	cases := []struct {
		kind   string
		method string
		args   []trace.Value
	}{
		{"dict", "put", []trace.Value{kA, v1}},
		{"dict", "get", []trace.Value{kA}},
		{"dict", "size", nil},
		{"set", "add", []trace.Value{v1}},
		{"set", "remove", []trace.Value{v1}},
		{"set", "contains", []trace.Value{v1}},
		{"set", "size", nil},
		{"counter", "add", []trace.Value{v2}},
		{"counter", "read", nil},
		{"queue", "enq", []trace.Value{v1}},
		{"queue", "deq", nil},
		{"queue", "len", nil},
		{"register", "write", []trace.Value{v2}},
		{"register", "read", nil},
		{"multiset", "add", []trace.Value{v1}},
		{"multiset", "count", []trace.Value{v1}},
		{"multiset", "size", nil},
	}
	for _, c := range cases {
		m := MustNew(c.kind)
		rets, err := Returns(m, c.method, c.args)
		if err != nil {
			t.Fatalf("%s.%s: %v", c.kind, c.method, err)
		}
		a := trace.Action{Method: c.method, Args: c.args, Rets: rets}
		if err := m.Apply(a); err != nil {
			t.Errorf("%s: Returns-completed action %s not enabled: %v", c.kind, a, err)
		}
	}
}

func TestReturnsQueueNonEmptyAndErrors(t *testing.T) {
	q := MustNew("queue")
	apply(t, q, act("enq", []trace.Value{v2}, nil))
	rets, err := Returns(q, "deq", nil)
	if err != nil || len(rets) != 1 || rets[0] != v2 {
		t.Fatalf("deq returns = %v, %v", rets, err)
	}
	if _, err := Returns(q, "frob", nil); err == nil {
		t.Error("unknown method must fail")
	}
	d := MustNew("dict")
	if _, err := Returns(d, "put", nil); err == nil {
		t.Error("put without key must fail")
	}
}
