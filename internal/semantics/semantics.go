// Package semantics gives executable reference semantics — the partial maps
// ⟦a⟧ ∈ H ⇀ H of Section 3.1 — for every object type in the built-in
// specification library. Each Machine holds one object's abstract state and
// applies actions to it, failing when the action's recorded return values
// are inconsistent with the state (i.e. the action is not enabled, ⟦a⟧ is
// undefined at the current state).
//
// Two things are built on top:
//
//   - Soundness testing (Definition 4.2): a specification is sound iff
//     ϕ(a, b) implies a ⋈ b, i.e. ⟦a⟧∘⟦b⟧ = ⟦b⟧∘⟦a⟧. Commute checks this
//     on a concrete state by running both orders.
//   - The Theorem 5.2 determinism checker (package replay): replaying all
//     linearizations of a race-free trace must reach the same final state.
package semantics

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
)

// Machine is the reference semantics of one shared object: a stateful
// interpreter of its actions.
type Machine interface {
	// Apply transitions on the action. It fails when the action does not
	// match the object's methods, or when the recorded return values are
	// impossible in the current state (⟦a⟧ undefined here).
	Apply(a trace.Action) error
	// Clone returns an independent copy of the machine.
	Clone() Machine
	// Fingerprint renders the abstract state canonically; two machines are
	// in the same abstract state iff their fingerprints are equal.
	Fingerprint() string
}

// Returns computes, without modifying the machine, the return tuple the
// method invocation produces at the current state — the unique r̄ such that
// method(args)/r̄ is enabled.
func Returns(m Machine, method string, args []trace.Value) ([]trace.Value, error) {
	switch mm := m.(type) {
	case *Dict:
		switch method {
		case "put", "get":
			if len(args) == 0 {
				return nil, fmt.Errorf("semantics: %s needs a key", method)
			}
			prev, ok := mm.m[args[0]]
			if !ok {
				prev = trace.NilValue
			}
			return []trace.Value{prev}, nil
		case "size":
			return []trace.Value{trace.IntValue(int64(len(mm.m)))}, nil
		}
	case *Set:
		switch method {
		case "add":
			return []trace.Value{trace.BoolValue(!mm.m[args[0]])}, nil
		case "remove", "contains":
			return []trace.Value{trace.BoolValue(mm.m[args[0]])}, nil
		case "size":
			return []trace.Value{trace.IntValue(int64(len(mm.m)))}, nil
		}
	case *Counter:
		switch method {
		case "add", "read":
			return []trace.Value{trace.IntValue(mm.v)}, nil
		}
	case *Queue:
		switch method {
		case "enq":
			return nil, nil
		case "deq":
			if len(mm.q) == 0 {
				return []trace.Value{trace.NilValue}, nil
			}
			return []trace.Value{mm.q[0]}, nil
		case "len":
			return []trace.Value{trace.IntValue(int64(len(mm.q)))}, nil
		}
	case *Register:
		switch method {
		case "write", "read":
			return []trace.Value{mm.v}, nil
		}
	case *Multiset:
		switch method {
		case "add":
			return nil, nil
		case "count":
			return []trace.Value{trace.IntValue(mm.m[args[0]])}, nil
		case "size":
			return []trace.Value{trace.IntValue(mm.total)}, nil
		}
	}
	return nil, fmt.Errorf("semantics: no method %q on %T", method, m)
}

// New constructs a fresh machine for a built-in object kind (the names of
// package specs): dict, set, counter, queue, register, multiset.
func New(kind string) (Machine, error) {
	switch kind {
	case "dict":
		return &Dict{m: map[trace.Value]trace.Value{}}, nil
	case "set":
		return &Set{m: map[trace.Value]bool{}}, nil
	case "counter":
		return &Counter{}, nil
	case "queue":
		return &Queue{}, nil
	case "register":
		return &Register{v: trace.NilValue}, nil
	case "multiset":
		return &Multiset{m: map[trace.Value]int64{}}, nil
	default:
		return nil, fmt.Errorf("semantics: unknown object kind %q", kind)
	}
}

// MustNew is New, panicking on unknown kinds.
func MustNew(kind string) Machine {
	m, err := New(kind)
	if err != nil {
		panic(err)
	}
	return m
}

// mismatch builds the standard undefined-transition error.
func mismatch(a trace.Action, got trace.Value) error {
	return fmt.Errorf("semantics: %s: recorded return impossible here (state would return %s)", a, got)
}

func arity(a trace.Action, args, rets int) error {
	if len(a.Args) != args || len(a.Rets) != rets {
		return fmt.Errorf("semantics: %s: want %d args / %d rets", a, args, rets)
	}
	return nil
}

// Dict is the dictionary of Fig 5: a total map with nil as the no-value.
type Dict struct {
	m map[trace.Value]trace.Value
}

// Apply implements the Fig 5 transitions for put/get/size.
func (d *Dict) Apply(a trace.Action) error {
	switch a.Method {
	case "put":
		if err := arity(a, 2, 1); err != nil {
			return err
		}
		prev, ok := d.m[a.Args[0]]
		if !ok {
			prev = trace.NilValue
		}
		if a.Rets[0] != prev {
			return mismatch(a, prev)
		}
		if a.Args[1].IsNil() {
			delete(d.m, a.Args[0])
		} else {
			d.m[a.Args[0]] = a.Args[1]
		}
		return nil
	case "get":
		if err := arity(a, 1, 1); err != nil {
			return err
		}
		cur, ok := d.m[a.Args[0]]
		if !ok {
			cur = trace.NilValue
		}
		if a.Rets[0] != cur {
			return mismatch(a, cur)
		}
		return nil
	case "size":
		if err := arity(a, 0, 1); err != nil {
			return err
		}
		if a.Rets[0] != trace.IntValue(int64(len(d.m))) {
			return mismatch(a, trace.IntValue(int64(len(d.m))))
		}
		return nil
	default:
		return fmt.Errorf("semantics: dict has no method %q", a.Method)
	}
}

// Clone implements Machine.
func (d *Dict) Clone() Machine {
	out := &Dict{m: make(map[trace.Value]trace.Value, len(d.m))}
	for k, v := range d.m {
		out.m[k] = v
	}
	return out
}

// Fingerprint implements Machine.
func (d *Dict) Fingerprint() string {
	pairs := make([]string, 0, len(d.m))
	for k, v := range d.m {
		pairs = append(pairs, k.String()+"→"+v.String())
	}
	sort.Strings(pairs)
	return "dict{" + strings.Join(pairs, ",") + "}"
}

// Set is a mathematical set with add/remove/contains/size.
type Set struct {
	m map[trace.Value]bool
}

// Apply interprets set actions, checking the ok returns.
func (s *Set) Apply(a trace.Action) error {
	boolRet := func(want bool) error {
		if a.Rets[0] != trace.BoolValue(want) {
			return mismatch(a, trace.BoolValue(want))
		}
		return nil
	}
	switch a.Method {
	case "add":
		if err := arity(a, 1, 1); err != nil {
			return err
		}
		added := !s.m[a.Args[0]]
		if err := boolRet(added); err != nil {
			return err
		}
		s.m[a.Args[0]] = true
		return nil
	case "remove":
		if err := arity(a, 1, 1); err != nil {
			return err
		}
		present := s.m[a.Args[0]]
		if err := boolRet(present); err != nil {
			return err
		}
		delete(s.m, a.Args[0])
		return nil
	case "contains":
		if err := arity(a, 1, 1); err != nil {
			return err
		}
		return boolRet(s.m[a.Args[0]])
	case "size":
		if err := arity(a, 0, 1); err != nil {
			return err
		}
		if a.Rets[0] != trace.IntValue(int64(len(s.m))) {
			return mismatch(a, trace.IntValue(int64(len(s.m))))
		}
		return nil
	default:
		return fmt.Errorf("semantics: set has no method %q", a.Method)
	}
}

// Clone implements Machine.
func (s *Set) Clone() Machine {
	out := &Set{m: make(map[trace.Value]bool, len(s.m))}
	for k := range s.m {
		out.m[k] = true
	}
	return out
}

// Fingerprint implements Machine.
func (s *Set) Fingerprint() string {
	elems := make([]string, 0, len(s.m))
	for k := range s.m {
		elems = append(elems, k.String())
	}
	sort.Strings(elems)
	return "set{" + strings.Join(elems, ",") + "}"
}

// Counter is a shared counter with add(delta)/old and read()/v.
type Counter struct {
	v int64
}

// Apply interprets counter actions.
func (c *Counter) Apply(a trace.Action) error {
	switch a.Method {
	case "add":
		if err := arity(a, 1, 1); err != nil {
			return err
		}
		if a.Rets[0] != trace.IntValue(c.v) {
			return mismatch(a, trace.IntValue(c.v))
		}
		c.v += a.Args[0].Int()
		return nil
	case "read":
		if err := arity(a, 0, 1); err != nil {
			return err
		}
		if a.Rets[0] != trace.IntValue(c.v) {
			return mismatch(a, trace.IntValue(c.v))
		}
		return nil
	default:
		return fmt.Errorf("semantics: counter has no method %q", a.Method)
	}
}

// Clone implements Machine.
func (c *Counter) Clone() Machine { out := *c; return &out }

// Fingerprint implements Machine.
func (c *Counter) Fingerprint() string { return fmt.Sprintf("counter{%d}", c.v) }

// Queue is a FIFO queue with enq/deq/len; deq returns nil when empty.
type Queue struct {
	q []trace.Value
}

// Apply interprets queue actions.
func (q *Queue) Apply(a trace.Action) error {
	switch a.Method {
	case "enq":
		if err := arity(a, 1, 0); err != nil {
			return err
		}
		q.q = append(q.q, a.Args[0])
		return nil
	case "deq":
		if err := arity(a, 0, 1); err != nil {
			return err
		}
		head := trace.NilValue
		if len(q.q) > 0 {
			head = q.q[0]
		}
		if a.Rets[0] != head {
			return mismatch(a, head)
		}
		if len(q.q) > 0 {
			q.q = q.q[1:]
		}
		return nil
	case "len":
		if err := arity(a, 0, 1); err != nil {
			return err
		}
		if a.Rets[0] != trace.IntValue(int64(len(q.q))) {
			return mismatch(a, trace.IntValue(int64(len(q.q))))
		}
		return nil
	default:
		return fmt.Errorf("semantics: queue has no method %q", a.Method)
	}
}

// Clone implements Machine.
func (q *Queue) Clone() Machine {
	return &Queue{q: append([]trace.Value{}, q.q...)}
}

// Fingerprint implements Machine.
func (q *Queue) Fingerprint() string {
	parts := make([]string, len(q.q))
	for i, v := range q.q {
		parts[i] = v.String()
	}
	return "queue[" + strings.Join(parts, ",") + "]"
}

// Register is a single cell with write(v)/old and read()/v.
type Register struct {
	v trace.Value
}

// Apply interprets register actions.
func (r *Register) Apply(a trace.Action) error {
	switch a.Method {
	case "write":
		if err := arity(a, 1, 1); err != nil {
			return err
		}
		if a.Rets[0] != r.v {
			return mismatch(a, r.v)
		}
		r.v = a.Args[0]
		return nil
	case "read":
		if err := arity(a, 0, 1); err != nil {
			return err
		}
		if a.Rets[0] != r.v {
			return mismatch(a, r.v)
		}
		return nil
	default:
		return fmt.Errorf("semantics: register has no method %q", a.Method)
	}
}

// Clone implements Machine.
func (r *Register) Clone() Machine { out := *r; return &out }

// Fingerprint implements Machine.
func (r *Register) Fingerprint() string { return "register{" + r.v.String() + "}" }

// Multiset is a bag with blind add, count(x)/n and size()/n.
type Multiset struct {
	m     map[trace.Value]int64
	total int64
}

// Apply interprets multiset actions.
func (m *Multiset) Apply(a trace.Action) error {
	switch a.Method {
	case "add":
		if err := arity(a, 1, 0); err != nil {
			return err
		}
		m.m[a.Args[0]]++
		m.total++
		return nil
	case "count":
		if err := arity(a, 1, 1); err != nil {
			return err
		}
		if a.Rets[0] != trace.IntValue(m.m[a.Args[0]]) {
			return mismatch(a, trace.IntValue(m.m[a.Args[0]]))
		}
		return nil
	case "size":
		if err := arity(a, 0, 1); err != nil {
			return err
		}
		if a.Rets[0] != trace.IntValue(m.total) {
			return mismatch(a, trace.IntValue(m.total))
		}
		return nil
	default:
		return fmt.Errorf("semantics: multiset has no method %q", a.Method)
	}
}

// Clone implements Machine.
func (m *Multiset) Clone() Machine {
	out := &Multiset{m: make(map[trace.Value]int64, len(m.m)), total: m.total}
	for k, v := range m.m {
		out.m[k] = v
	}
	return out
}

// Fingerprint implements Machine.
func (m *Multiset) Fingerprint() string {
	pairs := make([]string, 0, len(m.m))
	for k, v := range m.m {
		if v != 0 {
			pairs = append(pairs, fmt.Sprintf("%s×%d", k, v))
		}
	}
	sort.Strings(pairs)
	return "multiset{" + strings.Join(pairs, ",") + "}"
}

// Commute checks whether two actions commute at a specific state
// (Definition 3.1 restricted to one start state): both application orders
// must be defined and reach the same abstract state. It does not modify m.
func Commute(m Machine, a, b trace.Action) (bool, error) {
	ab := m.Clone()
	abDefined := ab.Apply(a) == nil && ab.Apply(b) == nil
	ba := m.Clone()
	baDefined := ba.Apply(b) == nil && ba.Apply(a) == nil
	if !abDefined && !baDefined {
		// Both compositions undefined at this state: equal here.
		return true, nil
	}
	if abDefined != baDefined {
		return false, nil
	}
	return ab.Fingerprint() == ba.Fingerprint(), nil
}
