package semantics

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ecl"
	"repro/internal/specs"
	"repro/internal/trace"
)

// genEnabled draws a random action that is enabled at the machine's current
// state (its recorded returns are the ones the state produces). It uses
// in-package access to the machines' state.
func genEnabled(r *rand.Rand, m Machine, kind string) trace.Action {
	keys := []trace.Value{trace.StrValue("a"), trace.StrValue("b"), trace.StrValue("c")}
	vals := []trace.Value{trace.NilValue, trace.IntValue(1), trace.IntValue(2)}
	elems := []trace.Value{trace.IntValue(1), trace.IntValue(2), trace.IntValue(3)}
	switch kind {
	case "dict":
		d := m.(*Dict)
		k := keys[r.Intn(len(keys))]
		prev, ok := d.m[k]
		if !ok {
			prev = trace.NilValue
		}
		switch r.Intn(3) {
		case 0:
			return trace.Action{Method: "put", Args: []trace.Value{k, vals[r.Intn(len(vals))]},
				Rets: []trace.Value{prev}}
		case 1:
			return trace.Action{Method: "get", Args: []trace.Value{k}, Rets: []trace.Value{prev}}
		default:
			return trace.Action{Method: "size", Rets: []trace.Value{trace.IntValue(int64(len(d.m)))}}
		}
	case "set":
		s := m.(*Set)
		x := elems[r.Intn(len(elems))]
		present := s.m[x]
		switch r.Intn(4) {
		case 0:
			return trace.Action{Method: "add", Args: []trace.Value{x},
				Rets: []trace.Value{trace.BoolValue(!present)}}
		case 1:
			return trace.Action{Method: "remove", Args: []trace.Value{x},
				Rets: []trace.Value{trace.BoolValue(present)}}
		case 2:
			return trace.Action{Method: "contains", Args: []trace.Value{x},
				Rets: []trace.Value{trace.BoolValue(present)}}
		default:
			return trace.Action{Method: "size", Rets: []trace.Value{trace.IntValue(int64(len(s.m)))}}
		}
	case "counter":
		c := m.(*Counter)
		if r.Intn(2) == 0 {
			delta := int64(r.Intn(3)) // includes 0
			return trace.Action{Method: "add", Args: []trace.Value{trace.IntValue(delta)},
				Rets: []trace.Value{trace.IntValue(c.v)}}
		}
		return trace.Action{Method: "read", Rets: []trace.Value{trace.IntValue(c.v)}}
	case "queue":
		q := m.(*Queue)
		switch r.Intn(3) {
		case 0:
			return trace.Action{Method: "enq", Args: []trace.Value{elems[r.Intn(len(elems))]}}
		case 1:
			head := trace.NilValue
			if len(q.q) > 0 {
				head = q.q[0]
			}
			return trace.Action{Method: "deq", Rets: []trace.Value{head}}
		default:
			return trace.Action{Method: "len", Rets: []trace.Value{trace.IntValue(int64(len(q.q)))}}
		}
	case "register":
		reg := m.(*Register)
		if r.Intn(2) == 0 {
			// Sometimes a no-op write (same value), sometimes a real one.
			v := vals[r.Intn(len(vals))]
			if r.Intn(3) == 0 {
				v = reg.v
			}
			return trace.Action{Method: "write", Args: []trace.Value{v}, Rets: []trace.Value{reg.v}}
		}
		return trace.Action{Method: "read", Rets: []trace.Value{reg.v}}
	case "multiset":
		ms := m.(*Multiset)
		x := elems[r.Intn(len(elems))]
		switch r.Intn(3) {
		case 0:
			return trace.Action{Method: "add", Args: []trace.Value{x}}
		case 1:
			return trace.Action{Method: "count", Args: []trace.Value{x},
				Rets: []trace.Value{trace.IntValue(ms.m[x])}}
		default:
			return trace.Action{Method: "size", Rets: []trace.Value{trace.IntValue(ms.total)}}
		}
	default:
		panic("unknown kind " + kind)
	}
}

// TestPropBuiltinSpecsSound is the Definition 4.2 check for every built-in
// specification: whenever ϕ(a, b) holds, executing a;b and b;a from the
// same state must be equally defined and reach the same abstract state.
// The pair (a, b) is drawn sequentially enabled (a at s, b after a), which
// is how pairs arise in real traces.
func TestPropBuiltinSpecsSound(t *testing.T) {
	for _, kind := range specs.Names() {
		kind := kind
		spec := specs.MustSpec(kind)
		t.Run(kind, func(t *testing.T) {
			claimed, confirmedCommute := 0, 0
			err := quick.Check(func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				m := MustNew(kind)
				// Random reachable start state.
				for i := r.Intn(6); i > 0; i-- {
					warm := genEnabled(r, m, kind)
					if err := m.Apply(warm); err != nil {
						t.Logf("warmup failed: %v", err)
						return false
					}
				}
				a := genEnabled(r, m, kind)
				after := m.Clone()
				if err := after.Apply(a); err != nil {
					t.Logf("a not enabled: %v", err)
					return false
				}
				b := genEnabled(r, after, kind)
				phi, err := spec.Commutes(a, b)
				if err != nil {
					t.Logf("Commutes(%s, %s): %v", a, b, err)
					return false
				}
				if !phi {
					return true // spec may be conservative
				}
				claimed++
				ok, err := Commute(m, a, b)
				if err != nil {
					t.Log(err)
					return false
				}
				if ok {
					confirmedCommute++
				} else {
					t.Logf("UNSOUND %s: ϕ(%s, %s) holds but actions do not commute at %s",
						kind, a, b, m.Fingerprint())
				}
				return ok
			}, &quick.Config{MaxCount: 4000})
			if err != nil {
				t.Fatal(err)
			}
			if claimed == 0 {
				t.Errorf("%s: the generator never produced a commuting pair; test is vacuous", kind)
			}
		})
	}
}

// TestPropSpecPrecisionReport measures (but does not require) precision:
// how often the spec says "no" for pairs that do commute at the sampled
// state. Precision is allowed to be imperfect (Definition 4.2 is an
// implication), but a spec rejecting everything would make the detector
// useless, so we bound gross imprecision for the dictionary.
func TestPropSpecPrecisionReport(t *testing.T) {
	spec := specs.MustSpec("dict")
	r := rand.New(rand.NewSource(7))
	total, conservative := 0, 0
	for i := 0; i < 4000; i++ {
		m := MustNew("dict")
		for j := r.Intn(6); j > 0; j-- {
			if err := m.Apply(genEnabled(r, m, "dict")); err != nil {
				t.Fatal(err)
			}
		}
		a := genEnabled(r, m, "dict")
		after := m.Clone()
		if err := after.Apply(a); err != nil {
			t.Fatal(err)
		}
		b := genEnabled(r, after, "dict")
		phi, err := spec.Commutes(a, b)
		if err != nil {
			t.Fatal(err)
		}
		really, err := Commute(m, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if really {
			total++
			if !phi {
				conservative++
			}
		}
	}
	if total == 0 {
		t.Fatal("no commuting pairs sampled")
	}
	ratio := float64(conservative) / float64(total)
	t.Logf("dictionary spec conservatism: %d/%d (%.1f%%) truly-commuting pairs rejected",
		conservative, total, 100*ratio)
	if ratio > 0.5 {
		t.Errorf("dictionary spec rejects %.0f%% of commuting pairs; suspiciously imprecise", 100*ratio)
	}
}

func ExampleCommute() {
	m := MustNew("dict")
	a := trace.Action{Method: "put",
		Args: []trace.Value{trace.StrValue("x"), trace.IntValue(1)},
		Rets: []trace.Value{trace.NilValue}}
	b := trace.Action{Method: "get",
		Args: []trace.Value{trace.StrValue("y")},
		Rets: []trace.Value{trace.NilValue}}
	ok, _ := Commute(m, a, b)
	fmt.Println(ok)
	// Output: true
}

// TestUnsoundSpecIsDetected validates the soundness harness itself: a
// deliberately wrong specification (claiming all dictionary puts commute)
// must be caught by the same sampling the built-in specs pass.
func TestUnsoundSpecIsDetected(t *testing.T) {
	unsound, err := ecl.ParseSpec(`
object dict
method put(k, v) / (p)
method get(k) / (v)
method size() / (r)
commute put(k1, v1)/(p1), put(k2, v2)/(p2) when true
commute put(k1, v1)/(p1), get(k2)/(v2) when k1 != k2 || v1 == p1
commute put(k1, v1)/(p1), size()/(r) when false
commute get(k1)/(v1), get(k2)/(v2) when true
commute get(k1)/(v1), size()/(r) when true
commute size()/(r1), size()/(r2) when true
`)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	caught := false
	for i := 0; i < 2000 && !caught; i++ {
		m := MustNew("dict")
		for j := r.Intn(4); j > 0; j-- {
			if err := m.Apply(genEnabled(r, m, "dict")); err != nil {
				t.Fatal(err)
			}
		}
		a := genEnabled(r, m, "dict")
		after := m.Clone()
		if err := after.Apply(a); err != nil {
			t.Fatal(err)
		}
		b := genEnabled(r, after, "dict")
		phi, err := unsound.Commutes(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !phi {
			continue
		}
		ok, err := Commute(m, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			caught = true
		}
	}
	if !caught {
		t.Fatal("the soundness harness failed to catch a deliberately unsound specification")
	}
}
