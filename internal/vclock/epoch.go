package vclock

import "fmt"

// Epoch is the FastTrack-style compressed clock c@t (Flanagan & Freund,
// PLDI '09): it summarizes the accumulated clock of a single-writer shadow
// location by the writer's thread id and that thread's own timestamp.
//
// The compression is justified by the epoch lemma for clocks maintained
// under the Table 1 happens-before discipline (internal/hb): a thread's own
// entry only advances at its own events, and any clock d can acquire
// d(t) ≥ c only along a happens-before path from the event of t stamped
// with own-entry c — a path that carries that event's entire clock. Hence
// for an event clock e with e(t) = c,
//
//	e ⊑ d  iff  c ≤ d(t)
//
// so one comparison replaces an O(|Tid|) pointwise scan. The same lemma
// extends pointwise to meets of thread clocks (hb.Engine.MeetLive), which
// is what makes epoch-mode compaction in internal/core sound.
//
// The zero Epoch (0@t0) is not a valid epoch for stamped events: honest
// Table 1 clocks always carry an own-entry ≥ 1. Callers use C == 0 as the
// "not epochable" sentinel and fall back to full clocks.
type Epoch struct {
	T Tid
	C uint64
}

// EpochOf extracts the epoch of an event clock: the acting thread's own
// entry. A zero C signals a clock that does not follow the Table 1
// discipline (the caller must keep the full clock).
func EpochOf(t Tid, c VC) Epoch {
	return Epoch{T: t, C: c.Get(t)}
}

// LEQ reports e ⊑ d for the clock e summarizes — a single comparison by the
// epoch lemma.
func (e Epoch) LEQ(d VC) bool {
	return e.C <= d.Get(e.T)
}

// VC expands the epoch to an explicit (sparse) vector clock ⟨…, C, …⟩ with
// the single entry at T. By the epoch lemma this expansion is
// order-equivalent to the summarized clock against every honest clock.
func (e Epoch) VC() VC {
	return VC(nil).Set(e.T, e.C)
}

// String renders the epoch in FastTrack's c@t notation.
func (e Epoch) String() string {
	return fmt.Sprintf("%d@t%d", e.C, int(e.T))
}

// JoinEpoch folds an epoch into the clock in place: c(e.T) ← max(c(e.T),
// e.C). It is the promotion step when a single-writer point is touched by a
// second thread.
func (c VC) JoinEpoch(e Epoch) VC {
	if c.Get(e.T) < e.C {
		c = c.Set(e.T, e.C)
	}
	return c
}
