package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func vc(vals ...uint64) VC { return VC(vals) }

func TestBottom(t *testing.T) {
	var c VC
	if !c.Bottom() {
		t.Fatal("nil clock should be bottom")
	}
	if c.Get(5) != 0 {
		t.Fatal("bottom clock entries must read zero")
	}
	if !c.LEQ(vc(1, 2, 3)) {
		t.Fatal("bottom must be below everything")
	}
	if c.Set(2, 7).Get(2) != 7 {
		t.Fatal("Set after bottom failed")
	}
}

func TestBottomNonEmpty(t *testing.T) {
	if !vc(0, 0, 0).Bottom() {
		t.Fatal("all-zero clock is bottom")
	}
	if vc(0, 1).Bottom() {
		t.Fatal("nonzero clock is not bottom")
	}
}

func TestIncAndGet(t *testing.T) {
	var c VC
	c = c.Inc(3)
	if got := c.Get(3); got != 1 {
		t.Fatalf("Get(3) = %d, want 1", got)
	}
	if got := c.Get(0); got != 0 {
		t.Fatalf("Get(0) = %d, want 0", got)
	}
	c = c.Inc(3)
	if got := c.Get(3); got != 2 {
		t.Fatalf("Get(3) = %d after two incs, want 2", got)
	}
}

func TestLEQ(t *testing.T) {
	cases := []struct {
		a, b VC
		want bool
	}{
		{nil, nil, true},
		{vc(1, 0), vc(1, 1), true},
		{vc(1, 1), vc(1, 0), false},
		{vc(2, 0, 1), vc(4, 1, 1), true},
		{vc(3, 0, 1), vc(2, 1, 0), false}, // Fig 3: incomparable
		{vc(2, 1, 0), vc(3, 0, 1), false},
		{vc(1, 2, 3), vc(1, 2, 3), true},
		{vc(0, 0, 0, 5), vc(0, 0, 0), false},
		{vc(0, 0, 0), vc(0, 0, 0, 5), true},
	}
	for _, c := range cases {
		if got := c.a.LEQ(c.b); got != c.want {
			t.Errorf("%v ⊑ %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestFig3Clocks(t *testing.T) {
	// The example from Fig 3 of the paper: a1 = <3,0,1>, a2 = <2,1,0>,
	// a3 = <4,1,1>. a1 ∥ a2, a1 ≺ a3, a2 ≺ a3.
	a1, a2, a3 := vc(3, 0, 1), vc(2, 1, 0), vc(4, 1, 1)
	if !a1.Concurrent(a2) {
		t.Error("a1 and a2 must be concurrent")
	}
	if !a1.LEQ(a3) || !a2.LEQ(a3) {
		t.Error("a1 and a2 must both precede a3")
	}
	if a3.Concurrent(a1) || a3.Concurrent(a2) {
		t.Error("a3 is ordered after both")
	}
}

func TestJoin(t *testing.T) {
	got := vc(3, 0, 1).Clone().Join(vc(2, 1, 0))
	want := vc(3, 1, 1)
	if !got.Equal(want) {
		t.Fatalf("join = %v, want %v", got, want)
	}
}

func TestJoinGrows(t *testing.T) {
	got := vc(1).Clone().Join(vc(0, 0, 0, 9))
	if got.Get(3) != 9 || got.Get(0) != 1 {
		t.Fatalf("join across widths = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := vc(1, 2, 3)
	b := a.Clone()
	b = b.Inc(0)
	if a.Get(0) != 1 {
		t.Fatal("Clone must not alias")
	}
	if b.Get(0) != 2 {
		t.Fatal("Inc on clone lost")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b VC
		want Ordering
	}{
		{vc(1, 2), vc(1, 2), Same},
		{vc(1, 0), vc(1, 2), Before},
		{vc(1, 2), vc(1, 0), After},
		{vc(3, 0, 1), vc(2, 1, 0), Parallel},
		{nil, nil, Same},
		{nil, vc(0, 0), Same},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestOrderingString(t *testing.T) {
	for o, want := range map[Ordering]string{
		Same: "same", Before: "before", After: "after", Parallel: "parallel",
		Ordering(42): "Ordering(42)",
	} {
		if got := o.String(); got != want {
			t.Errorf("Ordering(%d).String() = %q, want %q", int(o), got, want)
		}
	}
}

func TestStringAndParse(t *testing.T) {
	for _, c := range []VC{nil, vc(0), vc(3, 0, 1), vc(1, 2, 3, 4, 5)} {
		s := c.String()
		back, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !back.Equal(c) {
			t.Fatalf("round trip %q -> %v, want %v", s, back, c)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "<", "1,2,3", "<a, b>", "<1 2>"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestParseWhitespace(t *testing.T) {
	c, err := Parse("  < 1 ,  2 , 3 >  ")
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(vc(1, 2, 3)) {
		t.Fatalf("got %v", c)
	}
}

func TestMax(t *testing.T) {
	got := Max(vc(1, 0, 0), vc(0, 2, 0), vc(0, 0, 3))
	if !got.Equal(vc(1, 2, 3)) {
		t.Fatalf("Max = %v", got)
	}
	if Max() != nil {
		t.Fatal("Max() should be bottom")
	}
}

func TestSupport(t *testing.T) {
	got := vc(0, 5, 0, 7).Support()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Support = %v", got)
	}
	if len(VC(nil).Support()) != 0 {
		t.Fatal("bottom has empty support")
	}
}

func TestSetGrowWithCapacity(t *testing.T) {
	c := make(VC, 1, 8)
	c[0] = 4
	c = c.Set(5, 9)
	if c.Get(0) != 4 || c.Get(5) != 9 || c.Get(3) != 0 {
		t.Fatalf("grow within capacity broken: %v", c)
	}
}

// randVC produces small random clocks for property tests.
func randVC(r *rand.Rand) VC {
	n := r.Intn(6)
	c := make(VC, n)
	for i := range c {
		c[i] = uint64(r.Intn(5))
	}
	return c
}

func TestPropPartialOrder(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	// Reflexivity.
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randVC(r)
		return a.LEQ(a)
	}, cfg); err != nil {
		t.Error(err)
	}
	// Antisymmetry (up to Equal).
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVC(r), randVC(r)
		if a.LEQ(b) && b.LEQ(a) {
			return a.Equal(b)
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
	// Transitivity.
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randVC(r), randVC(r), randVC(r)
		if a.LEQ(b) && b.LEQ(c) {
			return a.LEQ(c)
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropJoinIsLUB(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVC(r), randVC(r)
		j := a.Clone().Join(b)
		if !a.LEQ(j) || !b.LEQ(j) {
			return false
		}
		// Least: any upper bound dominates the join.
		u := a.Clone().Join(b).Join(randVC(r))
		return j.LEQ(u)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropJoinCommutativeAssociativeIdempotent(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randVC(r), randVC(r), randVC(r)
		ab := a.Clone().Join(b)
		ba := b.Clone().Join(a)
		if !ab.Equal(ba) {
			return false
		}
		abc1 := a.Clone().Join(b).Join(c)
		abc2 := a.Clone().Join(b.Clone().Join(c))
		if !abc1.Equal(abc2) {
			return false
		}
		return a.Clone().Join(a).Equal(a)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropIncStrictlyIncreases(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randVC(r)
		tid := Tid(r.Intn(6))
		before := a.Clone()
		after := a.Clone().Inc(tid)
		return before.LEQ(after) && !after.LEQ(before)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropConcurrentSymmetric(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVC(r), randVC(r)
		return a.Concurrent(b) == b.Concurrent(a)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkLEQ(b *testing.B) {
	x, y := vc(1, 2, 3, 4, 5, 6, 7, 8), vc(2, 3, 4, 5, 6, 7, 8, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.LEQ(y)
	}
}

func BenchmarkJoin(b *testing.B) {
	x, y := vc(1, 2, 3, 4, 5, 6, 7, 8), vc(2, 3, 4, 5, 6, 7, 8, 9)
	buf := x.Clone()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		buf.Join(y)
	}
}

func TestPropMeetIsGLB(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVC(r), randVC(r)
		m := Meet(a, b)
		if !m.LEQ(a) || !m.LEQ(b) {
			return false
		}
		// Greatest: any common lower bound is below the meet.
		l := randVC(r)
		if l.LEQ(a) && l.LEQ(b) && !l.LEQ(m) {
			return false
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}
