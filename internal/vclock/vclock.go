// Package vclock implements vector clocks, the classic device for tracking
// the happens-before relation in a concurrent execution (Mattern '88,
// Lamport '78; Section 3.2 of the paper).
//
// A vector clock is conceptually a total map Tid → N. We represent it as a
// dense slice indexed by thread id, with all entries beyond the slice length
// implicitly zero, which makes the bottom element the empty slice and keeps
// comparisons cheap for programs with few threads.
//
// The set of vector clocks forms a lattice under the pointwise order:
//
//	c1 ⊑ c2  iff  c1(τ) ≤ c2(τ) for all τ
//	c1 ⊔ c2  =  τ ↦ max(c1(τ), c2(τ))
//	⊥        =  τ ↦ 0
//
// plus the per-thread increment inc_υ used at fork and release events.
package vclock

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Tid identifies a thread. Thread ids are small dense integers assigned by
// the runtime in creation order.
type Tid int

// VC is a vector clock. The zero value (nil) is the bottom element ⊥ and is
// ready to use. VC values are mutable; use Clone when sharing. One sharing
// pattern is sanctioned without cloning: the happens-before engine
// (internal/hb) stamps whole thread segments with one frozen snapshot, so a
// clock received from an Event.Clock (or hb's accessors) is immutable —
// read it, Clone it, or Join it into another clock, but never use it as the
// receiver of Inc/Set/Join/MeetWith or assign its elements. The
// `clockcheck` build tag turns violations into panics.
type VC []uint64

// New returns a fresh bottom clock with capacity for n threads.
func New(n int) VC {
	return make(VC, n)
}

// Bottom reports whether the clock is the bottom element (all zeros).
func (c VC) Bottom() bool {
	for _, v := range c {
		if v != 0 {
			return false
		}
	}
	return true
}

// Get returns the timestamp recorded for thread t (zero if beyond the dense
// prefix).
func (c VC) Get(t Tid) uint64 {
	if int(t) < len(c) {
		return c[t]
	}
	return 0
}

// Set records timestamp v for thread t, growing the dense prefix as needed,
// and returns the (possibly reallocated) clock.
func (c VC) Set(t Tid, v uint64) VC {
	c = c.grow(int(t) + 1)
	c[t] = v
	return c
}

// grow extends the dense prefix to at least n entries.
func (c VC) grow(n int) VC {
	if len(c) >= n {
		return c
	}
	if cap(c) >= n {
		old := len(c)
		c = c[:n]
		for i := old; i < n; i++ {
			c[i] = 0
		}
		return c
	}
	out := make(VC, n)
	copy(out, c)
	return out
}

// Clone returns an independent copy of the clock.
func (c VC) Clone() VC {
	if len(c) == 0 {
		return nil
	}
	out := make(VC, len(c))
	copy(out, c)
	return out
}

// Inc performs the timestep increment inc_t, bumping thread t's component in
// place and returning the (possibly reallocated) clock.
func (c VC) Inc(t Tid) VC {
	c = c.grow(int(t) + 1)
	c[t]++
	return c
}

// LEQ reports the pointwise order c ⊑ d.
func (c VC) LEQ(d VC) bool {
	if len(c) <= len(d) {
		// Fast path (the common case: comparing against an equal-or-wider
		// clock): one bounds check up front, then a single branch per entry.
		d = d[:len(c)]
		for i, v := range c {
			if v > d[i] {
				return false
			}
		}
		return true
	}
	for i, v := range c[:len(d)] {
		if v > d[i] {
			return false
		}
	}
	// Entries beyond d's dense prefix are implicitly zero in d.
	for _, v := range c[len(d):] {
		if v != 0 {
			return false
		}
	}
	return true
}

// Concurrent reports whether neither c ⊑ d nor d ⊑ c, i.e. the clocks are
// incomparable and the stamped events may happen in parallel.
func (c VC) Concurrent(d VC) bool {
	return !c.LEQ(d) && !d.LEQ(c)
}

// Equal reports pointwise equality (treating missing entries as zero).
func (c VC) Equal(d VC) bool {
	return c.LEQ(d) && d.LEQ(c)
}

// Join computes the pointwise maximum c ⊔ d in place on c and returns the
// (possibly reallocated) result.
func (c VC) Join(d VC) VC {
	if len(d) <= len(c) {
		// Fast path: no grow call, single bounded loop.
		cd := c[:len(d)]
		for i, v := range d {
			if v > cd[i] {
				cd[i] = v
			}
		}
		return c
	}
	c = c.grow(len(d))
	for i, v := range d {
		if v > c[i] {
			c[i] = v
		}
	}
	return c
}

// JoinInto is like Join but never aliases d; it is a convenience for
// accumulating into shadow state.
func (c VC) JoinInto(d VC) VC { return c.Join(d) }

// Width returns the length of the dense prefix (an upper bound on the
// highest thread id with a nonzero entry, plus one).
func (c VC) Width() int { return len(c) }

// String renders the clock as ⟨v0, v1, …⟩ over its dense prefix.
func (c VC) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, v := range c {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte('>')
	return b.String()
}

// Parse parses the String form "<a, b, c>". It accepts optional whitespace
// and an empty body for bottom.
func Parse(s string) (VC, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '<' || s[len(s)-1] != '>' {
		return nil, fmt.Errorf("vclock: malformed clock %q", s)
	}
	body := strings.TrimSpace(s[1 : len(s)-1])
	if body == "" {
		return nil, nil
	}
	parts := strings.Split(body, ",")
	out := make(VC, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("vclock: bad component %q in %q", p, s)
		}
		out[i] = v
	}
	return out, nil
}

// Compare classifies the relationship between two clocks.
func Compare(c, d VC) Ordering {
	le, ge := c.LEQ(d), d.LEQ(c)
	switch {
	case le && ge:
		return Same
	case le:
		return Before
	case ge:
		return After
	default:
		return Parallel
	}
}

// Ordering is the outcome of comparing two vector clocks.
type Ordering int

// The four possible relationships between two vector clocks.
const (
	Same Ordering = iota
	Before
	After
	Parallel
)

func (o Ordering) String() string {
	switch o {
	case Same:
		return "same"
	case Before:
		return "before"
	case After:
		return "after"
	case Parallel:
		return "parallel"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// Max returns a fresh clock equal to the join of all arguments.
func Max(clocks ...VC) VC {
	var out VC
	for _, c := range clocks {
		out = out.Join(c)
	}
	return out
}

// Meet returns a fresh clock equal to the pointwise minimum of all
// arguments — the greatest lower bound in the vector clock lattice. The
// meet of no clocks is nil (bottom), which callers should treat as "nothing
// is dominated".
func Meet(clocks ...VC) VC {
	if len(clocks) == 0 {
		return nil
	}
	width := 0
	for _, c := range clocks {
		if len(c) > width {
			width = len(c)
		}
	}
	out := make(VC, width)
	for i := range out {
		out[i] = clocks[0].Get(Tid(i))
		for _, c := range clocks[1:] {
			if v := c.Get(Tid(i)); v < out[i] {
				out[i] = v
			}
		}
	}
	return out
}

// MeetWith computes the pointwise minimum c ⊓ d in place on c and returns
// it. Entries beyond d's dense prefix are implicitly zero, so c's tail is
// zeroed; c's length is preserved (trailing zeros are semantically inert —
// compare with Equal, not byte equality). It never allocates: this is the
// incremental building block hb.Engine.MeetLive folds live thread clocks
// with, replacing the []VC it used to materialize for Meet.
func (c VC) MeetWith(d VC) VC {
	n := len(c)
	if len(d) < n {
		n = len(d)
	}
	for i := 0; i < n; i++ {
		if d[i] < c[i] {
			c[i] = d[i]
		}
	}
	for i := n; i < len(c); i++ {
		c[i] = 0
	}
	return c
}

// Support returns the thread ids with nonzero entries, ascending.
func (c VC) Support() []Tid {
	var ts []Tid
	for i, v := range c {
		if v != 0 {
			ts = append(ts, Tid(i))
		}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts
}
