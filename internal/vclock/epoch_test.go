package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEpochLEQMatchesExpandedClock(t *testing.T) {
	d := VC{3, 1, 4}
	cases := []struct {
		e    Epoch
		want bool
	}{
		{Epoch{T: 0, C: 3}, true},
		{Epoch{T: 0, C: 4}, false},
		{Epoch{T: 2, C: 4}, true},
		{Epoch{T: 2, C: 5}, false},
		{Epoch{T: 7, C: 1}, false}, // beyond the dense prefix: d(7) = 0
	}
	for _, c := range cases {
		if got := c.e.LEQ(d); got != c.want {
			t.Errorf("%s ⊑ %s = %v, want %v", c.e, d, got, c.want)
		}
		// The explicit expansion must agree.
		if got := c.e.VC().LEQ(d); got != c.want {
			t.Errorf("expanded %s ⊑ %s = %v, want %v", c.e.VC(), d, got, c.want)
		}
	}
}

func TestEpochOfAndVC(t *testing.T) {
	c := VC{0, 5, 2}
	e := EpochOf(1, c)
	if e.T != 1 || e.C != 5 {
		t.Fatalf("epoch = %s", e)
	}
	if !e.VC().Equal(VC{0, 5}) {
		t.Fatalf("expanded = %s", e.VC())
	}
	if EpochOf(9, c).C != 0 {
		t.Fatal("entry beyond dense prefix must read 0 (not epochable)")
	}
	if e.String() != "5@t1" {
		t.Fatalf("String = %q", e.String())
	}
}

func TestJoinEpoch(t *testing.T) {
	c := VC{2, 2}.JoinEpoch(Epoch{T: 1, C: 7})
	if !c.Equal(VC{2, 7}) {
		t.Fatalf("join = %s", c)
	}
	c = c.JoinEpoch(Epoch{T: 1, C: 3}) // lower epoch is a no-op
	if !c.Equal(VC{2, 7}) {
		t.Fatalf("join = %s", c)
	}
	c = c.JoinEpoch(Epoch{T: 4, C: 1}) // grows the prefix
	if !c.Equal(VC{2, 7, 0, 0, 1}) {
		t.Fatalf("join = %s", c)
	}
}

// TestPropLEQFastPathsAgree: the length-specialized LEQ must agree with the
// naive pointwise definition on random clocks of mismatched lengths.
func TestPropLEQFastPathsAgree(t *testing.T) {
	naiveLEQ := func(c, d VC) bool {
		n := len(c)
		if len(d) > n {
			n = len(d)
		}
		for i := 0; i < n; i++ {
			if c.Get(Tid(i)) > d.Get(Tid(i)) {
				return false
			}
		}
		return true
	}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c, d := randClock(r), randClock(r)
		if r.Intn(3) == 0 {
			d = c.Clone() // force the comparable case sometimes
		}
		if c.LEQ(d) != naiveLEQ(c, d) {
			t.Logf("c=%s d=%s", c, d)
			return false
		}
		if got, want := c.Join(d.Clone()).Equal(naiveJoin(c, d)), true; got != want {
			t.Logf("join mismatch c=%s d=%s", c, d)
			return false
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func naiveJoin(c, d VC) VC {
	n := len(c)
	if len(d) > n {
		n = len(d)
	}
	out := make(VC, n)
	for i := range out {
		a, b := c.Get(Tid(i)), d.Get(Tid(i))
		if a > b {
			out[i] = a
		} else {
			out[i] = b
		}
	}
	return out
}

func randClock(r *rand.Rand) VC {
	c := make(VC, r.Intn(6))
	for i := range c {
		c[i] = uint64(r.Intn(4))
	}
	return c
}

func TestPoolCloneIsIndependent(t *testing.T) {
	var pl Pool
	src := VC{1, 2, 3}
	c := pl.Clone(src)
	if !c.Equal(src) {
		t.Fatalf("clone = %s", c)
	}
	c[0] = 99
	if src[0] != 1 {
		t.Fatal("clone aliases source")
	}
	pl.Put(c)
	// A recycled buffer must come back fully overwritten.
	d := pl.Clone(VC{7})
	if !d.Equal(VC{7}) {
		t.Fatalf("recycled clone = %s", d)
	}
	// Growing a recycled clock must zero the extension (grow contract).
	d = d.Set(2, 5)
	if !d.Equal(VC{7, 0, 5}) {
		t.Fatalf("grown recycled clone = %s", d)
	}
}

func TestPoolNilSafety(t *testing.T) {
	var pl Pool
	if pl.Clone(nil) != nil {
		t.Fatal("clone of bottom must be bottom")
	}
	pl.Put(nil) // must not panic
}
