package vclock

import (
	"math/rand"
	"testing"
)

// TestMeetWithMatchesMeet checks the in-place incremental meet against the
// materializing Meet on random clock sets (equality up to trailing zeros,
// which both representations treat as absent entries).
func TestMeetWithMatchesMeet(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(5)
		clocks := make([]VC, n)
		for i := range clocks {
			c := make(VC, 1+r.Intn(6))
			for j := range c {
				c[j] = uint64(r.Intn(4))
			}
			clocks[i] = c
		}
		want := Meet(clocks...)
		got := clocks[0].Clone()
		for _, c := range clocks[1:] {
			got = got.MeetWith(c)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d: MeetWith chain = %s, Meet = %s (inputs %v)", trial, got, want, clocks)
		}
	}
}

func TestMeetWithZeroesTailBeyondShorterClock(t *testing.T) {
	c := VC{3, 2, 5, 7}
	got := c.MeetWith(VC{1, 4})
	if want := (VC{1, 2, 0, 0}); !got.Equal(want) {
		t.Fatalf("MeetWith = %s, want %s", got, want)
	}
	if len(got) != 4 {
		t.Fatalf("MeetWith must preserve the receiver's length, got %d", len(got))
	}
}
