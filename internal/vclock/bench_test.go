package vclock

import (
	"fmt"
	"testing"
)

// The satellite benchmarks for the LEQ/Join fast paths: the pre-existing
// implementations went through Get (a bounds check and branch per entry) or
// grow on every call; the specialized paths do one length comparison up
// front. leqViaGet/joinViaGrow reproduce the old code as baselines.

func leqViaGet(c, d VC) bool {
	for i, v := range c {
		if v > d.Get(Tid(i)) {
			return false
		}
	}
	return true
}

func joinViaGrow(c, d VC) VC {
	c = c.grow(len(d))
	for i, v := range d {
		if v > c[i] {
			c[i] = v
		}
	}
	return c
}

func benchClocks(n int) (VC, VC) {
	c, d := make(VC, n), make(VC, n)
	for i := range c {
		c[i] = uint64(i)
		d[i] = uint64(i + 1) // c ⊑ d, full scan required
	}
	return c, d
}

func BenchmarkLEQFastPath(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		c, d := benchClocks(n)
		b.Run(fmt.Sprintf("fast/width=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !c.LEQ(d) {
					b.Fatal("order broken")
				}
			}
		})
		b.Run(fmt.Sprintf("viaGet/width=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !leqViaGet(c, d) {
					b.Fatal("order broken")
				}
			}
		})
	}
}

func BenchmarkJoinFastPath(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		c, d := benchClocks(n)
		b.Run(fmt.Sprintf("fast/width=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c = c.Join(d)
			}
		})
		b.Run(fmt.Sprintf("viaGrow/width=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c = joinViaGrow(c, d)
			}
		})
	}
}

func BenchmarkEpochLEQ(b *testing.B) {
	_, d := benchClocks(64)
	e := Epoch{T: 32, C: 30}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !e.LEQ(d) {
			b.Fatal("order broken")
		}
	}
}

func BenchmarkPoolClone(b *testing.B) {
	c, _ := benchClocks(16)
	b.Run("pooled", func(b *testing.B) {
		var pl Pool
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := pl.Clone(c)
			pl.Put(out)
		}
	})
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := c.Clone()
			_ = out
		}
	})
}
