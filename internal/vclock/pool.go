package vclock

import (
	"sync"

	"repro/internal/obs"
)

// Pool is a sync.Pool-backed clock allocator. Detector hot paths clone an
// event clock for every newly promoted access point; recycling those slices
// through a pool removes the allocation from the steady state (points are
// promoted and reclaimed continuously under object churn and compaction).
//
// Clocks handed out by Clone are ordinary VC values; they may grow (Join,
// Set) and be returned with any length. Clocks that escape to user-visible
// structures (race reports) must NOT be pooled — use VC.Clone for those.
type Pool struct {
	p sync.Pool
}

// poolMinCap avoids caching tiny slices that are cheaper to allocate fresh.
const poolMinCap = 8

// Pool traffic counters: a hit serves a Clone from a recycled buffer, a
// miss allocates fresh. The hit rate is the quantity that explains whether
// point promotion and segment rollover run allocation-free in the steady
// state (DESIGN.md §7).
var (
	obsPoolHits   = obs.GetCounter("vclock.pool_hits")
	obsPoolMisses = obs.GetCounter("vclock.pool_misses")
	obsPoolPuts   = obs.GetCounter("vclock.pool_puts")
)

// Clone returns a pooled copy of c. The result does not alias c.
func (pl *Pool) Clone(c VC) VC {
	if len(c) == 0 {
		return nil
	}
	if v := pl.p.Get(); v != nil {
		buf := v.(*[]uint64)
		if cap(*buf) >= len(c) {
			obsPoolHits.Inc()
			out := VC((*buf)[:len(c)])
			copy(out, c)
			return out
		}
		pl.p.Put(buf)
	}
	obsPoolMisses.Inc()
	n := len(c)
	if n < poolMinCap {
		n = poolMinCap
	}
	out := make(VC, len(c), n)
	copy(out, c)
	return out
}

// Put returns a clock to the pool. The caller must not use c afterwards.
// nil and tiny clocks are dropped.
func (pl *Pool) Put(c VC) {
	if cap(c) < poolMinCap {
		return
	}
	obsPoolPuts.Inc()
	buf := []uint64(c[:0])
	pl.p.Put(&buf)
}

// SharedPool is the process-wide clock pool used by the detector shards.
// sync.Pool is safe for concurrent use, so independent detectors (one per
// pipeline shard) share it freely.
var SharedPool Pool
