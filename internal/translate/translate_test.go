package translate

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ap"
	"repro/internal/ecl"
	"repro/internal/trace"
)

const dictSrc = `
object dict
method put(k, v) / (p)
method get(k) / (v)
method size() / (r)
commute put(k1, v1)/(p1), put(k2, v2)/(p2)
    when k1 != k2 || (v1 == p1 && v2 == p2)
commute put(k1, v1)/(p1), get(k2)/(v2) when k1 != k2 || v1 == p1
commute put(k1, v1)/(p1), size()/(r)
    when (v1 == nil && p1 == nil) || (v1 != nil && p1 != nil)
commute get(k1)/(v1), get(k2)/(v2) when true
commute get(k1)/(v1), size()/(r) when true
commute size()/(r1), size()/(r2) when true
`

var (
	vNil = trace.NilValue
	v1   = trace.IntValue(1)
	v2   = trace.IntValue(2)
	kA   = trace.StrValue("a.com")
	kB   = trace.StrValue("b.com")
)

func put(k, v, p trace.Value) trace.Action {
	return trace.Action{Method: "put", Args: []trace.Value{k, v}, Rets: []trace.Value{p}}
}

func get(k, v trace.Value) trace.Action {
	return trace.Action{Method: "get", Args: []trace.Value{k}, Rets: []trace.Value{v}}
}

func size(r int64) trace.Action {
	return trace.Action{Method: "size", Rets: []trace.Value{trace.IntValue(r)}}
}

func dictRep(t *testing.T) *Rep {
	t.Helper()
	spec, err := ecl.ParseSpec(dictSrc)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Translate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestDictionaryTranslationMatchesFig7 is experiment E5: the optimized
// translation of the Fig 6 specification must collapse to the four-class
// representation of Fig 7 — o:w:k, o:r:k, o:size, o:resize — with every
// class conflicting with at most two others.
func TestDictionaryTranslationMatchesFig7(t *testing.T) {
	rep := dictRep(t)
	if got := rep.NumClasses(); got != 4 {
		t.Fatalf("optimized dictionary representation has %d classes, want 4 (Fig 7)\n%s", got, rep.Dump())
	}
	if got := rep.MaxConflicts(); got != 2 {
		t.Fatalf("max conflicts = %d, want 2 (Fig 7(c))\n%s", got, rep.Dump())
	}
	if !rep.Bounded() {
		t.Fatal("translated representation must be bounded (Theorem 6.6)")
	}

	// Identify the classes structurally via Touch.
	wPts, err := rep.Touch(nil, put(kA, v2, v1)) // non-resizing write: only w
	if err != nil {
		t.Fatal(err)
	}
	if len(wPts) != 1 {
		t.Fatalf("non-resizing put touches %v, want a single o:w point", wPts)
	}
	w := wPts[0]
	rPtsGet, err := rep.Touch(nil, get(kA, v1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rPtsGet) != 1 {
		t.Fatalf("get touches %v, want single o:r point", rPtsGet)
	}
	r := rPtsGet[0]
	rPtsNoop, err := rep.Touch(nil, put(kA, v1, v1)) // no-op put behaves as read
	if err != nil {
		t.Fatal(err)
	}
	if len(rPtsNoop) != 1 || rPtsNoop[0] != r {
		t.Fatalf("no-op put touches %v, want the same o:r point as get (%v)", rPtsNoop, r)
	}
	szPts, err := rep.Touch(nil, size(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(szPts) != 1 {
		t.Fatalf("size touches %v", szPts)
	}
	sz := szPts[0]
	resizePts, err := rep.Touch(nil, put(kA, v1, vNil)) // insert: w + resize
	if err != nil {
		t.Fatal(err)
	}
	if len(resizePts) != 2 {
		t.Fatalf("inserting put touches %v, want w and resize", resizePts)
	}
	var resize ap.Point
	foundW := false
	for _, p := range resizePts {
		if p.Class == w.Class {
			foundW = true
		} else {
			resize = p
		}
	}
	if !foundW {
		t.Fatalf("inserting put %v missing the o:w point %v", resizePts, w)
	}

	// The Fig 7(c) conflict matrix.
	mustConflict := func(p, q ap.Point, want bool) {
		t.Helper()
		if got := rep.ConflictsWith(p, q); got != want {
			t.Errorf("ConflictsWith(%s, %s) = %v, want %v", rep.Describe(p), rep.Describe(q), got, want)
		}
	}
	mustConflict(w, w, true)
	mustConflict(w, r, true)
	mustConflict(r, r, false)
	mustConflict(sz, resize, true)
	mustConflict(resize, sz, true)
	mustConflict(sz, sz, false)
	mustConflict(resize, resize, false)
	mustConflict(w, sz, false)
	mustConflict(r, resize, false)
	// Value sensitivity: different keys do not conflict.
	wOther := ap.Point{Class: w.Class, Val: kB}
	mustConflict(w, wOther, false)
	mustConflict(r, wOther, false)
}

func TestDictRemovalTouchesResize(t *testing.T) {
	rep := dictRep(t)
	pts, err := rep.Touch(nil, put(kA, vNil, v1))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("removal put touches %v, want w + resize", pts)
	}
}

func TestTouchErrors(t *testing.T) {
	rep := dictRep(t)
	if _, err := rep.Touch(nil, trace.Action{Method: "frob"}); err == nil {
		t.Error("unknown method must fail")
	}
	if _, err := rep.Touch(nil, trace.Action{Method: "put", Args: []trace.Value{kA}}); err == nil {
		t.Error("bad arity must fail")
	}
}

func TestConflictsEnumerationMatchesMatrix(t *testing.T) {
	rep := dictRep(t)
	// Gather every point reachable by touching a spread of actions.
	actions := []trace.Action{
		put(kA, v1, vNil), put(kA, v2, v1), put(kA, v1, v1), put(kA, vNil, v1),
		put(kB, v1, vNil), get(kA, v1), get(kB, vNil), size(0),
	}
	var universe []ap.Point
	seen := map[ap.Point]bool{}
	for _, a := range actions {
		pts, err := rep.Touch(nil, a)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			if !seen[p] {
				seen[p] = true
				universe = append(universe, p)
			}
		}
	}
	for _, p := range universe {
		enum := map[ap.Point]bool{}
		for _, q := range rep.Conflicts(nil, p) {
			enum[q] = true
		}
		for _, q := range universe {
			if got, want := enum[q], rep.ConflictsWith(p, q); got != want {
				t.Errorf("point %s vs %s: enum %v, matrix %v", rep.Describe(p), rep.Describe(q), got, want)
			}
		}
	}
}

func randDictAction(r *rand.Rand) trace.Action {
	keys := []trace.Value{kA, kB, trace.StrValue("c.com")}
	vals := []trace.Value{vNil, v1, v2}
	switch r.Intn(3) {
	case 0:
		return put(keys[r.Intn(3)], vals[r.Intn(3)], vals[r.Intn(3)])
	case 1:
		return get(keys[r.Intn(3)], vals[r.Intn(3)])
	default:
		return size(int64(r.Intn(3)))
	}
}

// conflictBetween reports whether any touched points of the two actions
// conflict under the representation.
func conflictBetween(t *testing.T, rep ap.Rep, a, b trace.Action) bool {
	t.Helper()
	pa, err := rep.Touch(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := rep.Touch(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pa {
		for _, q := range pb {
			if rep.ConflictsWith(p, q) {
				return true
			}
		}
	}
	return false
}

// TestPropTheorem65Equivalence checks Definition 4.5 / Theorem 6.5: the
// translated representation conflicts exactly when the logical specification
// says the actions do not commute.
func TestPropTheorem65Equivalence(t *testing.T) {
	spec := ecl.MustParseSpec(dictSrc)
	for _, opts := range []Options{
		{},
		{Cleanup: true},
		{Congruence: true},
		{Cleanup: true, Congruence: true},
	} {
		rep, err := TranslateOpts(spec, opts)
		if err != nil {
			t.Fatal(err)
		}
		err = quick.Check(func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			a, b := randDictAction(r), randDictAction(r)
			commutes, err := spec.Commutes(a, b)
			if err != nil {
				t.Log(err)
				return false
			}
			conflict := conflictBetween(t, rep, a, b)
			if conflict == commutes {
				t.Logf("opts %+v: a=%s b=%s commutes=%v conflict=%v", opts, a, b, commutes, conflict)
				return false
			}
			return true
		}, &quick.Config{MaxCount: 1500})
		if err != nil {
			t.Errorf("opts %+v: %v", opts, err)
		}
	}
}

// TestPropMatchesHandWrittenDictRep cross-checks the translation against the
// hand-written Fig 7 representation in package ap.
func TestPropMatchesHandWrittenDictRep(t *testing.T) {
	rep := dictRep(t)
	hand := ap.DictRep{}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randDictAction(r), randDictAction(r)
		return conflictBetween(t, rep, a, b) == conflictBetween(t, hand, a, b)
	}, &quick.Config{MaxCount: 1500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOptimizationReducesClasses(t *testing.T) {
	spec := ecl.MustParseSpec(dictSrc)
	raw, err := TranslateOpts(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Translate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if raw.NumClasses() <= opt.NumClasses() {
		t.Errorf("raw %d classes vs optimized %d: optimization should shrink the representation",
			raw.NumClasses(), opt.NumClasses())
	}
	if opt.NumClasses() != 4 {
		t.Errorf("optimized classes = %d", opt.NumClasses())
	}
}

func TestTranslateRejectsNonECL(t *testing.T) {
	spec := ecl.NewSpec("bad")
	if _, err := spec.AddMethod("m", []string{"a", "b"}, nil); err != nil {
		t.Fatal(err)
	}
	// a1 != a2 || b1 != b2 is X ∨ X.
	f := ecl.Or{L: ecl.Neq{I: 0, J: 0}, R: ecl.Neq{I: 1, J: 1}}
	if err := spec.SetPair("m", "m", f); err != nil {
		t.Fatal(err)
	}
	if _, err := Translate(spec); err == nil {
		t.Error("non-ECL spec must be rejected")
	}
}

func TestTranslateRejectsHugeBetaSpace(t *testing.T) {
	spec := ecl.NewSpec("wide")
	args := make([]string, MaxAtomsPerMethod+1)
	for i := range args {
		args[i] = string(rune('a'+i%26)) + string(rune('a'+i/26))
	}
	if _, err := spec.AddMethod("m", args, nil); err != nil {
		t.Fatal(err)
	}
	// One LB atom per argument: m commutes with itself iff every arg is 0.
	var conj ecl.Formula = ecl.Bool(true)
	for i := range args {
		conj = ecl.And{L: conj, R: ecl.Atom{Side: 1, Op: ecl.OpEq, L: ecl.Var(1, i), R: ecl.Const(trace.IntValue(0))}}
	}
	if err := spec.SetPair("m", "m", conj); err != nil {
		t.Fatal(err)
	}
	if _, err := Translate(spec); err == nil {
		t.Error("over-wide β space must be rejected")
	}
}

func TestMissingPairsConservativelyConflict(t *testing.T) {
	spec := ecl.NewSpec("partial")
	if _, err := spec.AddMethod("a", nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := spec.AddMethod("b", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := spec.SetPair("a", "a", ecl.Bool(true)); err != nil {
		t.Fatal(err)
	}
	if err := spec.SetPair("b", "b", ecl.Bool(true)); err != nil {
		t.Fatal(err)
	}
	// a-b left unspecified: must conflict.
	rep, err := Translate(spec)
	if err != nil {
		t.Fatal(err)
	}
	aAct := trace.Action{Method: "a"}
	bAct := trace.Action{Method: "b"}
	if !conflictBetween(t, rep, aAct, bAct) {
		t.Error("unspecified pair must conservatively conflict")
	}
	if conflictBetween(t, rep, aAct, aAct) {
		t.Error("a commutes with itself per the spec")
	}
}

func TestMustTranslatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustTranslate should panic")
		}
	}()
	spec := ecl.NewSpec("bad")
	if _, err := spec.AddMethod("m", []string{"a", "b"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := spec.SetPair("m", "m", ecl.Or{L: ecl.Neq{I: 0, J: 0}, R: ecl.Neq{I: 1, J: 1}}); err != nil {
		t.Fatal(err)
	}
	MustTranslate(spec)
}

func TestDumpAndClasses(t *testing.T) {
	rep := dictRep(t)
	dump := rep.Dump()
	for _, frag := range []string{"object dict", "4 point classes", "max conflicts 2", "conflicts with"} {
		if !strings.Contains(dump, frag) {
			t.Errorf("Dump missing %q:\n%s", frag, dump)
		}
	}
	classes := rep.Classes()
	if len(classes) != 4 {
		t.Fatalf("Classes() = %d", len(classes))
	}
	valueClasses := 0
	for _, c := range classes {
		if c.Value {
			valueClasses++
		}
		if c.ID < 0 || c.Name == "" {
			t.Errorf("bad class %+v", c)
		}
	}
	if valueClasses != 2 {
		t.Errorf("value classes = %d, want 2 (o:r and o:w)", valueClasses)
	}
	if rep.Spec().Object != "dict" {
		t.Error("Spec() accessor broken")
	}
}

func TestDescribeUnknownClass(t *testing.T) {
	rep := dictRep(t)
	if got := rep.Describe(ap.Point{Class: 99}); !strings.Contains(got, "99") {
		t.Errorf("Describe = %q", got)
	}
	if rep.ConflictsWith(ap.Point{Class: 99}, ap.Point{Class: 0}) {
		t.Error("unknown class cannot conflict")
	}
	if pts := rep.Conflicts(nil, ap.Point{Class: -1}); len(pts) != 0 {
		t.Error("unknown class has no conflicts")
	}
}

// setSrc is a set specification — the paper notes sets are expressible in
// ECL but not in SIMPLE.
const setSrc = `
object set
method add(x) / (ok)
method remove(x) / (ok)
method contains(x) / (ok)
method size() / (n)
commute add(x1)/(k1), add(x2)/(k2) when x1 != x2 || (k1 == false && k2 == false)
commute add(x1)/(k1), remove(x2)/(k2) when x1 != x2 || (k1 == false && k2 == false)
commute add(x1)/(k1), contains(x2)/(k2) when x1 != x2 || k1 == false
commute add(x1)/(k1), size()/(n) when k1 == false
commute remove(x1)/(k1), remove(x2)/(k2) when x1 != x2 || (k1 == false && k2 == false)
commute remove(x1)/(k1), contains(x2)/(k2) when x1 != x2 || k1 == false
commute remove(x1)/(k1), size()/(n) when k1 == false
commute contains(x1)/(k1), contains(x2)/(k2) when true
commute contains(x1)/(k1), size()/(n) when true
commute size()/(n1), size()/(n2) when true
`

func TestSetSpecTranslates(t *testing.T) {
	spec, err := ecl.ParseSpec(setSrc)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Translate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxConflicts() > 6 {
		t.Errorf("set representation max conflicts = %d; expected a small constant\n%s",
			rep.MaxConflicts(), rep.Dump())
	}
	add := func(x trace.Value, ok bool) trace.Action {
		return trace.Action{Method: "add", Args: []trace.Value{x}, Rets: []trace.Value{trace.BoolValue(ok)}}
	}
	szAct := trace.Action{Method: "size", Rets: []trace.Value{trace.IntValue(1)}}
	if !conflictBetween(t, rep, add(v1, true), add(v1, true)) {
		t.Error("two successful adds of the same element conflict")
	}
	if conflictBetween(t, rep, add(v1, false), add(v1, false)) {
		t.Error("two failed adds commute")
	}
	if conflictBetween(t, rep, add(v1, true), add(v2, true)) {
		t.Error("adds of different elements commute")
	}
	if !conflictBetween(t, rep, add(v1, true), szAct) {
		t.Error("successful add conflicts with size")
	}
	if conflictBetween(t, rep, add(v1, false), szAct) {
		t.Error("failed add commutes with size")
	}
}

func TestPropSetEquivalence(t *testing.T) {
	spec := ecl.MustParseSpec(setSrc)
	rep, err := Translate(spec)
	if err != nil {
		t.Fatal(err)
	}
	elems := []trace.Value{v1, v2, trace.IntValue(3)}
	randAct := func(r *rand.Rand) trace.Action {
		ok := trace.BoolValue(r.Intn(2) == 0)
		switch r.Intn(4) {
		case 0:
			return trace.Action{Method: "add", Args: []trace.Value{elems[r.Intn(3)]}, Rets: []trace.Value{ok}}
		case 1:
			return trace.Action{Method: "remove", Args: []trace.Value{elems[r.Intn(3)]}, Rets: []trace.Value{ok}}
		case 2:
			return trace.Action{Method: "contains", Args: []trace.Value{elems[r.Intn(3)]}, Rets: []trace.Value{ok}}
		default:
			return trace.Action{Method: "size", Rets: []trace.Value{trace.IntValue(int64(r.Intn(3)))}}
		}
	}
	err = quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randAct(r), randAct(r)
		commutes, err := spec.Commutes(a, b)
		if err != nil {
			t.Log(err)
			return false
		}
		return conflictBetween(t, rep, a, b) != commutes
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTranslateDictionary(b *testing.B) {
	spec := ecl.MustParseSpec(dictSrc)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Translate(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTouch(b *testing.B) {
	spec := ecl.MustParseSpec(dictSrc)
	rep, err := Translate(spec)
	if err != nil {
		b.Fatal(err)
	}
	a := put(kA, v1, vNil)
	var buf []ap.Point
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		if buf, err = rep.Touch(buf, a); err != nil {
			b.Fatal(err)
		}
	}
}
