// Package translate implements the paper's Section 6.2: the automatic
// translation of an ECL commutativity specification Φ into an access point
// representation ⟨Xo, ηo, Co⟩, together with the simplification steps of
// Appendix A.3.
//
// The translation enumerates, for every method m, the β vectors over
// B(Φ, m) (the truth assignments of the method's LB atoms) and builds two
// kinds of point classes:
//
//	o.m:β:ds   — witnesses that m was invoked with LB-atom valuation β
//	o.m:β:i    — witnesses operand i's value w_i under valuation β
//
// For every method pair and every β pair the residual ϕ[β1; β2] (an LS
// formula, Lemma 6.4) decides the conflict relation:
//
//	ds–ds conflict    iff ϕ[β1; β2] ≡ false
//	(i, u)–(j, u)     iff ϕ[β1; β2] ≢ false and contains conjunct x_i ≠ y_j
//
// Two of the appendix's optimizations are applied directly:
//
//	cleanup    — classes that appear in no conflict are never generated
//	congruence — classes with identical conflict neighborhoods are merged
//	             (iterated to a fixpoint)
//
// The appendix's consolidation and dropping steps fall out of congruence:
// β vectors that differ only in atoms irrelevant to a point kind induce
// identical conflict rows and therefore merge. On the Fig 6 dictionary
// specification the result is exactly the four-class representation of
// Fig 7 (o:r:k, o:w:k, o:size, o:resize); see the tests.
//
// Every class keeps a bounded neighbor list, so the produced representation
// satisfies Theorem 6.6 and the detector performs Θ(1) conflict checks per
// action.
package translate

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ap"
	"repro/internal/ecl"
	"repro/internal/trace"
)

// MaxAtomsPerMethod bounds |B(Φ, m)|; the β space is enumerated exhaustively
// (2^n valuations), so specifications beyond this are rejected.
const MaxAtomsPerMethod = 16

// Options selects which appendix optimizations to apply. The zero value
// disables both (the raw Section 6.2 translation); Translate uses both.
type Options struct {
	Cleanup    bool // remove classes that occur in no conflict
	Congruence bool // merge classes with identical conflict neighborhoods
}

// Rep is a translated access point representation. It implements ap.Rep and
// is immutable after construction.
type Rep struct {
	spec    *ecl.Spec
	methods map[string]*methodRep
	classes []classRep
}

var _ ap.Rep = (*Rep)(nil)

type methodRep struct {
	m         *ecl.Method
	atoms     []ecl.AtomKey
	templates []template // indexed by β mask
}

// template maps one (method, β) to final class ids; -1 means the point was
// cleaned away.
type template struct {
	ds  int
	ops []int
}

type classRep struct {
	name      string // full name: all merged members joined with ≡
	short     string // first member, for compact race reports
	isValue   bool   // positional class (carries a witnessed value)
	neighbors []int  // conflicting class ids, sorted
}

// Translate converts the specification with all optimizations enabled.
func Translate(spec *ecl.Spec) (*Rep, error) {
	return TranslateOpts(spec, Options{Cleanup: true, Congruence: true})
}

// TranslateOpts converts the specification with explicit optimization
// choices.
func TranslateOpts(spec *ecl.Spec, opts Options) (*Rep, error) {
	if err := spec.CheckECL(); err != nil {
		return nil, fmt.Errorf("translate: %w", err)
	}
	b := &builder{spec: spec, opts: opts}
	return b.build()
}

// MustTranslate is Translate, panicking on error; for compiled-in specs.
func MustTranslate(spec *ecl.Spec) *Rep {
	r, err := Translate(spec)
	if err != nil {
		panic(err)
	}
	return r
}

// builder carries the intermediate state of a translation.
type builder struct {
	spec *ecl.Spec
	opts Options

	methodAtoms map[string][]ecl.AtomKey
	rawBase     map[string]int // first raw id of each method's block
	rawCount    int
	rawNames    []string
	rawIsValue  []bool
	edges       []map[int]struct{} // raw conflict adjacency
}

// rawID computes the dense raw class id of (method, β, kind) where kind -1
// is ds and 0..n-1 are operand positions.
func (b *builder) rawID(method string, beta ecl.Beta, kind int) int {
	m, _ := b.spec.Method(method)
	perBeta := 1 + m.NumOps()
	return b.rawBase[method] + int(beta)*perBeta + 1 + kind
}

func (b *builder) build() (*Rep, error) {
	// Raw class universe.
	b.methodAtoms = map[string][]ecl.AtomKey{}
	b.rawBase = map[string]int{}
	for _, m := range b.spec.Methods {
		atoms := b.spec.AtomsFor(m.Name)
		if len(atoms) > MaxAtomsPerMethod {
			return nil, fmt.Errorf("translate: method %q has %d LB atoms; max %d", m.Name, len(atoms), MaxAtomsPerMethod)
		}
		b.methodAtoms[m.Name] = atoms
		b.rawBase[m.Name] = b.rawCount
		betas := 1 << uint(len(atoms))
		perBeta := 1 + m.NumOps()
		for beta := 0; beta < betas; beta++ {
			b.rawNames = append(b.rawNames, b.rawName(m, ecl.Beta(beta), -1))
			b.rawIsValue = append(b.rawIsValue, false)
			for i := 0; i < m.NumOps(); i++ {
				b.rawNames = append(b.rawNames, b.rawName(m, ecl.Beta(beta), i))
				b.rawIsValue = append(b.rawIsValue, true)
			}
		}
		b.rawCount += betas * perBeta
	}
	b.edges = make([]map[int]struct{}, b.rawCount)

	// Conflict edges from residuals, over every unordered method pair
	// (missing pairs default to ϕ = false, conservatively).
	for i1, m1 := range b.spec.Methods {
		for i2 := i1; i2 < len(b.spec.Methods); i2++ {
			m2 := b.spec.Methods[i2]
			if err := b.pairEdges(m1, m2); err != nil {
				return nil, err
			}
		}
	}

	// Optimization passes over the raw relation.
	alive := make([]bool, b.rawCount)
	for i := range alive {
		alive[i] = !b.opts.Cleanup || len(b.edges[i]) > 0
	}
	rep := b.mergeAndAssemble(alive)
	return rep, nil
}

// pairEdges adds the conflict edges contributed by the pair (m1, m2).
func (b *builder) pairEdges(m1, m2 *ecl.Method) error {
	f, _ := b.spec.FormulaFor(m1.Name, m2.Name)
	atoms1, atoms2 := b.methodAtoms[m1.Name], b.methodAtoms[m2.Name]
	n1, n2 := 1<<uint(len(atoms1)), 1<<uint(len(atoms2))
	for beta1 := 0; beta1 < n1; beta1++ {
		env1 := ecl.EnvFromBeta(atoms1, ecl.Beta(beta1))
		for beta2 := 0; beta2 < n2; beta2++ {
			env2 := ecl.EnvFromBeta(atoms2, ecl.Beta(beta2))
			res, err := ecl.ResidualOf(f, m1.Name, m2.Name, env1, env2)
			if err != nil {
				return fmt.Errorf("translate: pair (%s, %s): %w", m1.Name, m2.Name, err)
			}
			if res.False {
				b.addEdge(
					b.rawID(m1.Name, ecl.Beta(beta1), -1),
					b.rawID(m2.Name, ecl.Beta(beta2), -1))
				continue
			}
			for _, nq := range res.Neqs {
				b.addEdge(
					b.rawID(m1.Name, ecl.Beta(beta1), nq[0]),
					b.rawID(m2.Name, ecl.Beta(beta2), nq[1]))
			}
		}
	}
	return nil
}

func (b *builder) addEdge(x, y int) {
	if b.edges[x] == nil {
		b.edges[x] = map[int]struct{}{}
	}
	if b.edges[y] == nil {
		b.edges[y] = map[int]struct{}{}
	}
	b.edges[x][y] = struct{}{}
	b.edges[y][x] = struct{}{}
}

func (b *builder) rawName(m *ecl.Method, beta ecl.Beta, kind int) string {
	atoms := b.methodAtoms[m.Name]
	betaDesc := "∅"
	if len(atoms) > 0 {
		betaDesc = ecl.DescribeBeta(atoms, m, beta)
	}
	pos := "ds"
	if kind >= 0 {
		if names := m.OpNames(); kind < len(names) {
			pos = names[kind]
		} else {
			pos = fmt.Sprintf("%d", kind+1)
		}
	}
	return fmt.Sprintf("o.%s:%s:%s", m.Name, betaDesc, pos)
}

// mergeAndAssemble runs the congruence fixpoint over the alive raw classes
// and assembles the final representation.
func (b *builder) mergeAndAssemble(alive []bool) *Rep {
	// rep[i] is the current representative of raw class i.
	rep := make([]int, b.rawCount)
	for i := range rep {
		rep[i] = i
	}
	find := func(i int) int {
		for rep[i] != i {
			rep[i] = rep[rep[i]]
			i = rep[i]
		}
		return i
	}

	if b.opts.Congruence {
		for {
			// Group alive representatives by their neighbor signature.
			groups := map[string][]int{}
			for i := 0; i < b.rawCount; i++ {
				if !alive[i] || find(i) != i {
					continue
				}
				sig := b.signature(i, alive, find)
				groups[sig] = append(groups[sig], i)
			}
			changed := false
			for _, members := range groups {
				if len(members) < 2 {
					continue
				}
				sort.Ints(members)
				for _, m := range members[1:] {
					rep[m] = members[0]
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}

	// Assign final ids to surviving representatives, in raw order.
	finalOf := make([]int, b.rawCount)
	for i := range finalOf {
		finalOf[i] = -1
	}
	var classes []classRep
	members := map[int][]int{}
	for i := 0; i < b.rawCount; i++ {
		if !alive[i] {
			continue
		}
		r := find(i)
		members[r] = append(members[r], i)
	}
	reps := make([]int, 0, len(members))
	for r := range members {
		reps = append(reps, r)
	}
	sort.Ints(reps)
	for _, r := range reps {
		finalOf[r] = len(classes)
		names := make([]string, len(members[r]))
		for k, m := range members[r] {
			names[k] = b.rawNames[m]
		}
		short := names[0]
		if len(names) > 1 {
			short += fmt.Sprintf(" (+%d merged)", len(names)-1)
		}
		classes = append(classes, classRep{
			name:    strings.Join(names, " ≡ "),
			short:   short,
			isValue: b.rawIsValue[r],
		})
	}
	// Neighbor lists: union over members' edges, mapped to final ids.
	for _, r := range reps {
		seen := map[int]struct{}{}
		for _, m := range members[r] {
			for n := range b.edges[m] {
				if !alive[n] {
					continue
				}
				seen[finalOf[find(n)]] = struct{}{}
			}
		}
		ns := make([]int, 0, len(seen))
		for n := range seen {
			ns = append(ns, n)
		}
		sort.Ints(ns)
		classes[finalOf[r]].neighbors = ns
	}

	// Touch templates.
	out := &Rep{spec: b.spec, methods: map[string]*methodRep{}, classes: classes}
	for _, m := range b.spec.Methods {
		atoms := b.methodAtoms[m.Name]
		betas := 1 << uint(len(atoms))
		mr := &methodRep{m: m, atoms: atoms, templates: make([]template, betas)}
		for beta := 0; beta < betas; beta++ {
			t := template{ds: -1, ops: make([]int, m.NumOps())}
			raw := b.rawID(m.Name, ecl.Beta(beta), -1)
			if alive[raw] {
				t.ds = finalOf[find(raw)]
			}
			for i := 0; i < m.NumOps(); i++ {
				raw := b.rawID(m.Name, ecl.Beta(beta), i)
				t.ops[i] = -1
				if alive[raw] {
					t.ops[i] = finalOf[find(raw)]
				}
			}
			mr.templates[beta] = t
		}
		out.methods[m.Name] = mr
	}
	return out
}

// signature renders a class's conflict neighborhood (up to current merging)
// for congruence grouping. Classes of different kinds never share a
// signature.
func (b *builder) signature(i int, alive []bool, find func(int) int) string {
	ns := map[int]struct{}{}
	for n := range b.edges[i] {
		if alive[n] {
			ns[find(n)] = struct{}{}
		}
	}
	ids := make([]int, 0, len(ns))
	for n := range ns {
		ids = append(ids, n)
	}
	sort.Ints(ids)
	kind := "v"
	if !b.rawIsValue[i] {
		kind = "d"
	}
	parts := make([]string, len(ids))
	for k, id := range ids {
		parts[k] = fmt.Sprint(id)
	}
	return kind + ":" + strings.Join(parts, ",")
}

// Touch implements ap.Rep: η(a) = {o.m:β:ds} ∪ {o.m:β:i:w_i}, restricted to
// classes that survived the optimizations.
func (r *Rep) Touch(dst []ap.Point, a trace.Action) ([]ap.Point, error) {
	if err := r.spec.CheckAction(a); err != nil {
		return nil, err
	}
	mr := r.methods[a.Method]
	beta, err := ecl.BetaOf(mr.atoms, a)
	if err != nil {
		return nil, err
	}
	t := mr.templates[beta]
	if t.ds >= 0 {
		dst = append(dst, ap.Point{Class: t.ds})
	}
	for i, c := range t.ops {
		if c >= 0 {
			v, ok := a.Operand(i)
			if !ok {
				return nil, fmt.Errorf("translate: %s: operand %d out of range", a, i)
			}
			dst = append(dst, ap.Point{Class: c, Val: v})
		}
	}
	return dst, nil
}

// Bounded reports true: translated representations satisfy Theorem 6.6.
func (r *Rep) Bounded() bool { return true }

// Conflicts enumerates the bounded conflict set of pt.
func (r *Rep) Conflicts(dst []ap.Point, pt ap.Point) []ap.Point {
	if pt.Class < 0 || pt.Class >= len(r.classes) {
		return dst
	}
	c := r.classes[pt.Class]
	for _, n := range c.neighbors {
		if r.classes[n].isValue {
			dst = append(dst, ap.Point{Class: n, Val: pt.Val})
		} else {
			dst = append(dst, ap.Point{Class: n})
		}
	}
	return dst
}

// ConflictsWith reports whether two points conflict: their classes must be
// neighbors and, for positional classes, the witnessed values must be equal.
func (r *Rep) ConflictsWith(p, q ap.Point) bool {
	if p.Class < 0 || p.Class >= len(r.classes) || q.Class < 0 || q.Class >= len(r.classes) {
		return false
	}
	cp := r.classes[p.Class]
	found := false
	for _, n := range cp.neighbors {
		if n == q.Class {
			found = true
			break
		}
	}
	if !found {
		return false
	}
	if cp.isValue && r.classes[q.Class].isValue {
		return p.Val == q.Val
	}
	return true
}

// Describe renders a point compactly for race reports: the class's first
// member name (with a merge count) and the witnessed value. Dump shows the
// full merged class names.
func (r *Rep) Describe(pt ap.Point) string {
	if pt.Class < 0 || pt.Class >= len(r.classes) {
		return fmt.Sprintf("class#%d", pt.Class)
	}
	c := r.classes[pt.Class]
	if c.isValue {
		return fmt.Sprintf("[%s]=%s", c.short, pt.Val)
	}
	return "[" + c.short + "]"
}

// NumClasses returns the number of final point classes.
func (r *Rep) NumClasses() int { return len(r.classes) }

// MaxConflicts returns the largest conflict-set size over all classes — the
// constant of Theorem 6.6 for this specification.
func (r *Rep) MaxConflicts() int {
	max := 0
	for _, c := range r.classes {
		if len(c.neighbors) > max {
			max = len(c.neighbors)
		}
	}
	return max
}

// Class describes one final point class for tooling.
type Class struct {
	ID        int
	Name      string
	Value     bool
	Neighbors []int
}

// Classes returns the final classes in id order.
func (r *Rep) Classes() []Class {
	out := make([]Class, len(r.classes))
	for i, c := range r.classes {
		out[i] = Class{ID: i, Name: c.name, Value: c.isValue,
			Neighbors: append([]int{}, c.neighbors...)}
	}
	return out
}

// Dump renders the representation: every class with its kind and conflict
// neighbors. Used by the ecl2ap tool.
func (r *Rep) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "object %s: %d point classes, max conflicts %d\n",
		r.spec.Object, r.NumClasses(), r.MaxConflicts())
	for i, c := range r.classes {
		kind := "ds"
		if c.isValue {
			kind = "value"
		}
		fmt.Fprintf(&b, "  class %d (%s): %s\n", i, kind, c.name)
		if len(c.neighbors) == 0 {
			fmt.Fprintf(&b, "    no conflicts\n")
		}
		for _, n := range c.neighbors {
			cond := ""
			if c.isValue && r.classes[n].isValue {
				cond = " when values equal"
			}
			fmt.Fprintf(&b, "    conflicts with class %d%s\n", n, cond)
		}
	}
	return b.String()
}

// Spec returns the specification this representation was translated from.
func (r *Rep) Spec() *ecl.Spec { return r.spec }
