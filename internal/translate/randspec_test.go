package translate

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ecl"
	"repro/internal/trace"
)

// randSpec builds a random specification: 2–3 methods with random arities
// and a random ECL formula per pair (some pairs deliberately omitted to
// exercise the conservative default).
func randSpec(r *rand.Rand) (*ecl.Spec, error) {
	spec := ecl.NewSpec("rand")
	nMethods := 2 + r.Intn(2)
	for m := 0; m < nMethods; m++ {
		nArgs := 1 + r.Intn(2)
		nRets := r.Intn(2)
		args := make([]string, nArgs)
		for i := range args {
			args[i] = fmt.Sprintf("a%d", i)
		}
		rets := make([]string, nRets)
		for i := range rets {
			rets[i] = fmt.Sprintf("r%d", i)
		}
		if _, err := spec.AddMethod(fmt.Sprintf("m%d", m), args, rets); err != nil {
			return nil, err
		}
	}
	for i := 0; i < nMethods; i++ {
		for j := i; j < nMethods; j++ {
			if r.Intn(5) == 0 {
				continue // leave unspecified: defaults to false
			}
			mi, _ := spec.Method(fmt.Sprintf("m%d", i))
			mj, _ := spec.Method(fmt.Sprintf("m%d", j))
			f := ecl.RandECL(r, 1+r.Intn(3), mi.NumOps(), mj.NumOps())
			if i == j {
				// Definition 4.1 requires same-method formulas to be
				// symmetric; conjoining with the swap enforces it without
				// leaving ECL.
				f = ecl.And{L: f, R: ecl.Swap(f)}
			}
			if err := spec.SetPair(mi.Name, mj.Name, f); err != nil {
				return nil, err
			}
		}
	}
	return spec, nil
}

// randAction draws a random action of a random method with small integer
// operands.
func randAction(r *rand.Rand, spec *ecl.Spec) trace.Action {
	m := spec.Methods[r.Intn(len(spec.Methods))]
	mk := func(n int) []trace.Value {
		out := make([]trace.Value, n)
		for i := range out {
			out[i] = trace.IntValue(int64(r.Intn(3)))
		}
		return out
	}
	return trace.Action{Method: m.Name, Args: mk(len(m.Args)), Rets: mk(len(m.Rets))}
}

// TestPropRandomSpecsTranslateEquivalently is Theorem 6.5 over arbitrary
// random ECL specifications and all optimization settings: the translated
// representation conflicts exactly when the specification denies
// commutativity.
func TestPropRandomSpecsTranslateEquivalently(t *testing.T) {
	optSettings := []Options{
		{},
		{Cleanup: true},
		{Cleanup: true, Congruence: true},
	}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec, err := randSpec(r)
		if err != nil {
			t.Log(err)
			return false
		}
		for _, opts := range optSettings {
			rep, err := TranslateOpts(spec, opts)
			if err != nil {
				t.Logf("seed %d: translate: %v", seed, err)
				return false
			}
			if !rep.Bounded() {
				return false
			}
			for k := 0; k < 30; k++ {
				a, b := randAction(r, spec), randAction(r, spec)
				commutes, err := spec.Commutes(a, b)
				if err != nil {
					t.Log(err)
					return false
				}
				if conflictBetween(t, rep, a, b) == commutes {
					t.Logf("seed %d opts %+v: a=%s b=%s commutes=%v but conflict=%v\nspec:\n%s",
						seed, opts, a, b, commutes, commutes, spec)
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPropTheorem66Boundedness: for random specs, every point class has a
// bounded conflict list, and optimization never increases the bound.
func TestPropTheorem66Boundedness(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec, err := randSpec(r)
		if err != nil {
			return false
		}
		raw, err := TranslateOpts(spec, Options{})
		if err != nil {
			t.Log(err)
			return false
		}
		opt, err := Translate(spec)
		if err != nil {
			t.Log(err)
			return false
		}
		if opt.NumClasses() > raw.NumClasses() {
			t.Logf("seed %d: optimization grew classes %d → %d", seed, raw.NumClasses(), opt.NumClasses())
			return false
		}
		// The bound must be a function of the spec, far below the number
		// of distinct values an execution could touch.
		return opt.MaxConflicts() <= raw.NumClasses()
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPropSymmetricConflicts: the conflict relation is symmetric for random
// specs (Co is a symmetric closure by construction).
func TestPropSymmetricConflicts(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec, err := randSpec(r)
		if err != nil {
			return false
		}
		rep, err := Translate(spec)
		if err != nil {
			return false
		}
		for k := 0; k < 20; k++ {
			a, b := randAction(r, spec), randAction(r, spec)
			pa, err := rep.Touch(nil, a)
			if err != nil {
				return false
			}
			pb, err := rep.Touch(nil, b)
			if err != nil {
				return false
			}
			for _, p := range pa {
				for _, q := range pb {
					if rep.ConflictsWith(p, q) != rep.ConflictsWith(q, p) {
						return false
					}
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}
