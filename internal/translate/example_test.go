package translate_test

import (
	"fmt"

	"repro/internal/ecl"
	"repro/internal/specs"
	"repro/internal/translate"
)

// Example_dictionary translates the paper's Fig 6 dictionary specification;
// the optimized result is the four-class representation of Fig 7 in which
// every point conflicts with at most two others.
func Example_dictionary() {
	spec := specs.MustSpec("dict")
	rep, err := translate.Translate(spec)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d classes, max %d conflicts per point\n",
		rep.NumClasses(), rep.MaxConflicts())

	raw, err := translate.TranslateOpts(spec, translate.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("without the appendix optimizations: %d classes\n", raw.NumClasses())
	// Output:
	// 4 classes, max 2 conflicts per point
	// without the appendix optimizations: 37 classes
}

// Example_nonECL shows that the translator rejects specifications outside
// the ECL fragment, which the complexity guarantee depends on.
func Example_nonECL() {
	spec := ecl.NewSpec("pair")
	if _, err := spec.AddMethod("m", []string{"a", "b"}, nil); err != nil {
		fmt.Println(err)
		return
	}
	f := ecl.Or{L: ecl.Neq{I: 0, J: 0}, R: ecl.Neq{I: 1, J: 1}} // X ∨ X
	if err := spec.SetPair("m", "m", f); err != nil {
		fmt.Println(err)
		return
	}
	_, err := translate.Translate(spec)
	fmt.Println(err != nil)
	// Output: true
}
