package fleet

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// enableObs flips the global instrumentation switch for tests that
// assert on fleet.* counters, restoring it afterwards.
func enableObs(t *testing.T) {
	t.Helper()
	old := obs.Enabled()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(old) })
}

// testClock is a manually advanced clock injected as Scheduler.now, so
// bucket refills are deterministic. It starts at the real current time
// because New seeds the global bucket from the real clock.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock { return &testClock{t: time.Now()} }

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBucket(t *testing.T) {
	now := time.Now()
	b := newBucket(100, 10, now) // 100 tok/s, depth 10, starts full

	if d := b.take(10, now); d != 0 {
		t.Fatalf("full bucket refused burst: wait %v", d)
	}
	if d := b.take(1, now); d == 0 {
		t.Fatal("empty bucket granted a token")
	}
	// 50ms accrues 5 tokens.
	now = now.Add(50 * time.Millisecond)
	if d := b.take(5, now); d != 0 {
		t.Fatalf("refill missing: wait %v", d)
	}
	// Overdraft: forceTake always lands, then overdrawn until repaid.
	b.forceTake(20, now)
	if !b.overdrawn(now) {
		t.Fatal("bucket not overdrawn after forceTake")
	}
	if !b.overdrawn(now.Add(100 * time.Millisecond)) {
		t.Fatal("overdraft repaid too early")
	}
	if b.overdrawn(now.Add(300 * time.Millisecond)) {
		t.Fatal("overdraft not repaid by refill")
	}
	// Refill clamps at burst.
	b2 := newBucket(100, 10, now)
	b2.take(10, now)
	b2.refill(now.Add(time.Hour))
	if b2.tok != 10 {
		t.Fatalf("burst clamp: tok = %v, want 10", b2.tok)
	}
}

func TestAdmitSessionTable(t *testing.T) {
	enableObs(t)
	s := New(Config{MaxSessions: 2})
	defer s.Stop()

	rel1, err := s.Admit("a")
	if err != nil {
		t.Fatalf("admit 1: %v", err)
	}
	rel2, err := s.Admit("b")
	if err != nil {
		t.Fatalf("admit 2: %v", err)
	}
	_, err = s.Admit("c")
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("admit over cap: err = %v, want *BusyError", err)
	}
	if busy.Tenant != "c" {
		t.Fatalf("busy tenant = %q, want c", busy.Tenant)
	}
	if got := s.ob.rejects.Load(); got != 1 {
		t.Fatalf("fleet.rejects = %d, want 1", got)
	}

	rel1()
	rel1() // idempotent: must not free a second slot
	if _, err := s.Admit("c"); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	if _, err := s.Admit("d"); err == nil {
		t.Fatal("double release freed two slots")
	}
	rel2()
}

func TestAdmitTenantQuotas(t *testing.T) {
	s := New(Config{
		Tenants: map[string]Quota{"small": {MaxSessions: 1}},
	})
	defer s.Stop()

	rel, err := s.Admit("small")
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	if _, err := s.Admit("small"); err == nil {
		t.Fatal("tenant session quota not enforced")
	}
	// Other tenants are unaffected.
	if _, err := s.Admit("other"); err != nil {
		t.Fatalf("admit other tenant: %v", err)
	}
	rel()
	if _, err := s.Admit("small"); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
}

func TestAdmitArenaQuota(t *testing.T) {
	s := New(Config{
		Tenants: map[string]Quota{"mem": {MaxArenaBytes: 1 << 20}},
	})
	defer s.Stop()

	e := s.Register("mem", runFunc(func(n int) (int, bool) { return 0, false }))
	e.SetArenaBytes(2 << 20)
	if _, err := s.Admit("mem"); err == nil {
		t.Fatal("arena quota not enforced")
	}
	e.SetArenaBytes(1 << 19)
	if _, err := s.Admit("mem"); err != nil {
		t.Fatalf("admit under quota: %v", err)
	}
	e.Close()
	if got := s.Tenants()[0].ArenaBytes; got != 0 {
		t.Fatalf("arena bytes after entry close = %d, want 0", got)
	}
}

func TestAdmitGlobalOverdraft(t *testing.T) {
	clk := newTestClock()
	s := New(Config{GlobalEventsPerSec: 100, GlobalBurst: 10})
	s.now = clk.Now
	defer s.Stop()

	th := s.Throttle("a")
	th.Wait(50) // tenant unlimited: never blocks, overdrafts the global budget
	if _, err := s.Admit("b"); err == nil {
		t.Fatal("admission open while global budget overdrawn")
	}
	clk.Advance(2 * time.Second) // budget repaid
	if _, err := s.Admit("b"); err != nil {
		t.Fatalf("admit after budget repaid: %v", err)
	}
}

// runFunc adapts a function to Runnable.
type runFunc func(n int) (int, bool)

func (f runFunc) RunQuantum(n int) (int, bool) { return f(n) }

// drainRun is a Runnable with a fixed amount of work; it also snapshots
// a peer's progress at the moment it finishes, for fairness assertions.
type drainRun struct {
	mu        sync.Mutex
	remaining int
	used      int
	grants    []int
	onDone    func()
	done      chan struct{}
}

func newDrainRun(work int) *drainRun {
	return &drainRun{remaining: work, done: make(chan struct{})}
}

func (r *drainRun) RunQuantum(n int) (int, bool) {
	r.mu.Lock()
	u := n
	if u > r.remaining {
		u = r.remaining
	}
	r.remaining -= u
	r.used += u
	r.grants = append(r.grants, u)
	fin := r.remaining == 0
	onDone := r.onDone
	r.mu.Unlock()
	if fin {
		if onDone != nil {
			onDone()
		}
		close(r.done)
		return u, false
	}
	return u, true
}

func (r *drainRun) usedNow() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.used
}

func waitDone(t *testing.T, r *drainRun) {
	t.Helper()
	select {
	case <-r.done:
	case <-time.After(10 * time.Second):
		t.Fatal("runnable did not drain")
	}
}

// With one worker and one entry per tenant, DRR is strict alternation:
// each tenant gets exactly one quantum per round.
func TestDRRAlternation(t *testing.T) {
	const quantum = 10
	s := New(Config{Workers: 1, Quantum: quantum})
	ra, rb := newDrainRun(100), newDrainRun(100)
	ea := s.Register("a", ra)
	eb := s.Register("b", rb)
	ea.Wake()
	eb.Wake()
	waitDone(t, ra)
	waitDone(t, rb)
	s.Stop()

	for _, r := range []*drainRun{ra, rb} {
		if len(r.grants) != 10 {
			t.Fatalf("grants = %v, want ten rounds of %d", r.grants, quantum)
		}
		for _, g := range r.grants {
			if g != quantum {
				t.Fatalf("grants = %v, want all %d", r.grants, quantum)
			}
		}
	}
	ea.Close()
	eb.Close()
	if st := ea.State(); st != "closed" {
		t.Fatalf("closed entry state = %q", st)
	}
}

// A tenant with many queued sessions earns the same per-round grant as
// a tenant with one: when the single-session tenant finishes its N
// events, the three-session tenant must not have consumed more than
// N + O(quantum) events in total.
func TestDRRTenantFairness(t *testing.T) {
	const quantum = 10
	s := New(Config{Workers: 1, Quantum: quantum})

	hot := []*drainRun{newDrainRun(100), newDrainRun(100), newDrainRun(100)}
	bg := newDrainRun(100)
	var hotAtBgDone atomic.Int64
	bg.onDone = func() {
		var sum int
		for _, r := range hot {
			sum += r.usedNow()
		}
		hotAtBgDone.Store(int64(sum))
	}
	for _, r := range hot {
		s.Register("hot", r).Wake()
	}
	s.Register("bg", bg).Wake()

	waitDone(t, bg)
	for _, r := range hot {
		waitDone(t, r)
	}
	s.Stop()

	// While bg drained its 100 events, tenant "hot" should have been
	// granted ~100 events total across its three sessions (one quantum
	// per round for each tenant), not ~300.
	got := hotAtBgDone.Load()
	if got < 100-2*quantum || got > 100+2*quantum {
		t.Fatalf("hot tenant consumed %d events while bg consumed 100; want ~100", got)
	}
}

// A parked (idle) entry re-runs when woken, and work enqueued around
// the park/run boundary is never lost.
func TestWakeAfterIdle(t *testing.T) {
	s := New(Config{Workers: 2, Quantum: 4})
	defer s.Stop()

	var processed atomic.Int64
	var pending atomic.Int64
	r := runFunc(func(n int) (int, bool) {
		used := 0
		for used < n && pending.Load() > 0 {
			pending.Add(-1)
			processed.Add(1)
			used++
		}
		return used, pending.Load() > 0
	})
	e := s.Register("a", r)

	const total = 5000
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/4; i++ {
				pending.Add(1)
				e.Wake()
			}
		}()
	}
	wg.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for processed.Load() < total {
		if time.Now().After(deadline) {
			t.Fatalf("processed %d/%d events", processed.Load(), total)
		}
		e.Wake() // pending>0 guarantees a wake is legal; loop covers lost-wake bugs
		time.Sleep(time.Millisecond)
	}
}

// Stop drains queued quanta before the workers exit.
func TestStopDrains(t *testing.T) {
	s := New(Config{Workers: 2, Quantum: 8})
	runs := make([]*drainRun, 6)
	for i := range runs {
		runs[i] = newDrainRun(64)
		s.Register("t", runs[i]).Wake()
	}
	s.Stop()
	for i, r := range runs {
		select {
		case <-r.done:
		default:
			t.Fatalf("entry %d not drained at Stop: used %d/64", i, r.usedNow())
		}
	}
	if _, err := s.Admit("t"); err == nil {
		t.Fatal("admission open after Stop")
	}
}

// A panicking Runnable is absorbed: counted, dropped, and the worker
// keeps serving other entries.
func TestRunnablePanicBackstop(t *testing.T) {
	enableObs(t)
	var logged atomic.Int64
	s := New(Config{
		Workers: 1,
		Logf:    func(string, ...any) { logged.Add(1) },
	})
	s.Register("bad", runFunc(func(int) (int, bool) { panic("boom") })).Wake()
	good := newDrainRun(10)
	s.Register("good", good).Wake()
	waitDone(t, good)
	s.Stop()
	if got := s.ob.panics.Load(); got != 1 {
		t.Fatalf("fleet.panics = %d, want 1", got)
	}
	if logged.Load() == 0 {
		t.Fatal("panic not logged")
	}
}

// Throttle.Wait blocks a hot tenant at its events/s quota but leaves an
// unlimited tenant untouched; sleeps route through the injectable
// sleeper so the test is fast and deterministic.
func TestThrottleWait(t *testing.T) {
	clk := newTestClock()
	s := New(Config{
		Tenants: map[string]Quota{"hot": {EventsPerSec: 1000, Burst: 100}},
	})
	s.now = clk.Now
	var slept atomic.Int64
	s.sleep = func(d time.Duration) {
		slept.Add(int64(d))
		clk.Advance(d)
	}
	defer s.Stop()

	free := s.Throttle("free")
	free.Wait(1 << 20)
	if slept.Load() != 0 {
		t.Fatal("unlimited tenant slept")
	}

	hot := s.Throttle("hot")
	hot.Wait(100) // burst covers this
	if slept.Load() != 0 {
		t.Fatalf("burst not honored: slept %v", time.Duration(slept.Load()))
	}
	hot.Wait(500) // must wait ~500ms at 1000 ev/s
	got := time.Duration(slept.Load())
	if got < 300*time.Millisecond || got > 800*time.Millisecond {
		t.Fatalf("throttle slept %v for 500 events at 1000/s; want ~500ms", got)
	}
	if hot.Stalling() {
		t.Fatal("Stalling still set after Wait returned")
	}
}

func TestTenantsSnapshot(t *testing.T) {
	enableObs(t)
	s := New(Config{MaxSessions: 1})
	defer s.Stop()
	rel, err := s.Admit("b")
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	defer rel()
	s.Throttle("a").Wait(7)
	ts := s.Tenants()
	if len(ts) != 2 || ts[0].Name != "a" || ts[1].Name != "b" {
		t.Fatalf("tenants = %+v, want [a b]", ts)
	}
	if ts[0].Events != 7 {
		t.Fatalf("tenant a events = %d, want 7", ts[0].Events)
	}
	if ts[1].Sessions != 1 {
		t.Fatalf("tenant b sessions = %d, want 1", ts[1].Sessions)
	}
}
