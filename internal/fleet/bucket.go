package fleet

import (
	"sync/atomic"
	"time"
)

// bucket is a token bucket over an externally supplied clock (callers
// pass the current time in, so tests drive it deterministically and the
// scheduler can indirect through its own now func). Callers also
// provide mutual exclusion — tenantState.bmu or Scheduler.gmu.
type bucket struct {
	rate  float64 // tokens per second
	burst float64 // bucket depth
	tok   float64
	last  time.Time
}

func newBucket(rate float64, burst int, now time.Time) *bucket {
	b := &bucket{rate: rate, burst: float64(burst), last: now}
	if b.burst <= 0 {
		b.burst = rate // default depth: one second of budget
		if b.burst < 1 {
			b.burst = 1
		}
	}
	b.tok = b.burst
	return b
}

func (b *bucket) refill(now time.Time) {
	dt := now.Sub(b.last).Seconds()
	if dt <= 0 {
		return
	}
	b.last = now
	b.tok += dt * b.rate
	if b.tok > b.burst {
		b.tok = b.burst
	}
}

// take removes n tokens if available and returns 0; otherwise it takes
// nothing and returns how long until n tokens will have accrued.
func (b *bucket) take(n float64, now time.Time) time.Duration {
	b.refill(now)
	if b.tok >= n {
		b.tok -= n
		return 0
	}
	d := time.Duration((n - b.tok) / b.rate * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// forceTake removes n tokens unconditionally, driving the bucket into
// overdraft (tok < 0) when they are not there. The global budget uses
// this: resident sessions never block on it, but Admit rejects new
// sessions while it is overdrawn.
func (b *bucket) forceTake(n float64, now time.Time) {
	b.refill(now)
	b.tok -= n
}

func (b *bucket) overdrawn(now time.Time) bool {
	b.refill(now)
	return b.tok < 0
}

// maxThrottleSleep caps one throttle nap so a conn stuck behind a hot
// tenant still notices daemon shutdown and conn deadlines promptly.
const maxThrottleSleep = 250 * time.Millisecond

// Throttle is one connection's handle on its tenant's ingest budget.
// Call Wait(n) before enqueuing n decoded events; it blocks (in batched
// bucket visits) while the tenant is over its events/s quota, which
// stalls that connection's read loop and pushes TCP backpressure onto
// exactly that tenant's producer. The global budget is debited on the
// same visits but never blocks — it only flips admission away.
//
// A Throttle is owned by a single read loop; it is not safe for
// concurrent use (per-conn credit is unsynchronized by design).
type Throttle struct {
	s       *Scheduler
	t       *tenantState
	limited bool
	batch   int // events debited per bucket visit
	credit  int // events already paid for

	stalling atomic.Bool
}

// Throttle returns a new ingest-throttle handle for tenant.
func (s *Scheduler) Throttle(tenant string) *Throttle {
	s.mu.Lock()
	t := s.tenantLocked(tenant)
	s.mu.Unlock()
	th := &Throttle{s: s, t: t, limited: t.bucket != nil || s.global != nil}
	if !th.limited {
		return th
	}
	// Batch bucket visits to ~20 per second at the governing rate, so the
	// hot path is a couple of subtractions per event, not a lock.
	rate := t.quota.EventsPerSec
	if g := s.cfg.GlobalEventsPerSec; g > 0 && (rate == 0 || g < rate) {
		rate = g
	}
	th.batch = int(rate / 20)
	if th.batch < 1 {
		th.batch = 1
	}
	if th.batch > 64 {
		th.batch = 64
	}
	return th
}

// Wait blocks until the tenant's budget covers n more events, then
// charges them (and force-charges the global budget).
func (th *Throttle) Wait(n int) {
	th.t.ob.events.Add(uint64(n))
	if !th.limited {
		return
	}
	for n > 0 {
		if th.credit >= n {
			th.credit -= n
			return
		}
		n -= th.credit
		th.credit = 0
		th.acquireBatch()
		th.credit = th.batch
	}
}

func (th *Throttle) acquireBatch() {
	s := th.s
	n := float64(th.batch)
	if b := th.t.bucket; b != nil {
		stalled := false
		var start int64
		for {
			th.t.bmu.Lock()
			d := b.take(n, s.now())
			th.t.bmu.Unlock()
			if d == 0 {
				break
			}
			if !stalled {
				stalled = true
				th.stalling.Store(true)
				start = s.ob.throttle.Start()
			}
			if d > maxThrottleSleep {
				d = maxThrottleSleep
			}
			s.sleep(d)
		}
		if stalled {
			th.stalling.Store(false)
			s.ob.throttle.ObserveSince(start)
			th.t.ob.throttle.ObserveSince(start)
		}
	}
	if s.global != nil {
		s.gmu.Lock()
		s.global.forceTake(n, s.now())
		s.gmu.Unlock()
	}
}

// Stalling reports whether the owning connection is currently blocked
// in Wait (read by /sessions to render the "throttled" state).
func (th *Throttle) Stalling() bool { return th.stalling.Load() }
