// Package fleet is the multi-tenant session scheduler behind rd2d's
// -fleet mode. It multiplexes many logical detection sessions over a
// fixed pool of workers and enforces three policies at the daemon's
// front door:
//
//   - Admission control: a bounded session table plus a global events/s
//     budget. When either is exhausted, Admit returns a *BusyError and
//     the daemon turns it into an explicit wire-level busy reject
//     (retryable from the client's point of view) instead of letting
//     load degrade every resident session.
//
//   - Per-tenant quotas: token-bucket rate limits on ingested events/s
//     and caps on resident sessions and detector arena bytes. Rate
//     limits are enforced by Throttle at the ingest loop, so TCP
//     backpressure lands only on the offending tenant's producers.
//
//   - Fair scheduling: sessions register as run-queue entries holding
//     quanta of decoded work; a deficit-round-robin dispatcher over
//     per-tenant queues feeds the worker pool, so one hot tenant with
//     many sessions cannot starve a background tenant — each tenant in
//     the ring earns one quantum per round, regardless of how many
//     sessions it has queued.
//
// The scheduler owns no goroutines beyond its workers: total daemon
// goroutine count in fleet mode is O(workers + connections), not
// O(sessions x shards). With Workers == 0 the scheduler still provides
// admission and quota enforcement (rd2d uses that for -max-sessions
// with -fleet off); Register must not be used in that configuration,
// as queued entries would never run.
package fleet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

const (
	// DefaultTenant is the tenant id charged for streams whose hello
	// carries no tenant field (or no hello at all).
	DefaultTenant = "default"

	// DefaultQuantum is the per-round DRR grant, in events, when
	// Config.Quantum is zero.
	DefaultQuantum = 512

	// deficitCapRounds bounds how many unused rounds of quantum a tenant
	// may bank, so an idle-ish tenant cannot save up an arbitrarily large
	// grant and then monopolize a worker for one long burst.
	deficitCapRounds = 8
)

// Quota limits one tenant. Zero values mean unlimited.
type Quota struct {
	// EventsPerSec bounds the tenant's aggregate ingest rate across all
	// its connections, enforced by Throttle with token buckets.
	EventsPerSec float64
	// Burst is the bucket depth in events; defaults to one second of
	// EventsPerSec when zero.
	Burst int
	// MaxSessions caps the tenant's resident (admitted, unreleased)
	// sessions.
	MaxSessions int
	// MaxArenaBytes caps the sum of detector arena footprints across the
	// tenant's registered sessions. It is enforced at admission: new
	// sessions are rejected while the tenant is over the cap (resident
	// sessions keep running — the arena bound is monotone, so shedding
	// them would not reclaim memory anyway).
	MaxArenaBytes int64
}

// Config configures a Scheduler.
type Config struct {
	// Workers is the size of the detection worker pool. Zero means no
	// workers: admission and quota enforcement only.
	Workers int
	// MaxSessions bounds the global resident session table. Zero means
	// unbounded.
	MaxSessions int
	// GlobalEventsPerSec is a daemon-wide ingest budget. Unlike tenant
	// buckets it never blocks ingest — resident sessions overdraft it —
	// but while it is overdrawn, Admit rejects new sessions.
	GlobalEventsPerSec float64
	// GlobalBurst is the global bucket depth; defaults to one second of
	// GlobalEventsPerSec when zero.
	GlobalBurst int
	// Quantum is the DRR grant per tenant round, in events.
	Quantum int
	// Default is the quota for tenants absent from Tenants.
	Default Quota
	// Tenants holds per-tenant quota overrides.
	Tenants map[string]Quota
	// Obs is the registry fleet.* instruments and per-tenant scopes hang
	// off; nil means a private registry (instruments still exist, just
	// unexported).
	Obs *obs.Registry
	// Logf, when non-nil, receives scheduler diagnostics (worker panics).
	Logf func(format string, args ...any)
}

// BusyError is the admission reject: the daemon is at capacity for this
// tenant (or globally). It is retryable — the condition clears as
// resident sessions finish or the event budget refills.
type BusyError struct {
	Tenant string
	Reason string
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("fleet: busy: %s (tenant %q)", e.Reason, e.Tenant)
}

// Runnable is one session's work loop as the scheduler sees it.
// RunQuantum processes up to n events and reports how many it consumed
// and whether more work was immediately available when it stopped. It
// must not block: return (used, false) when the input queue runs dry —
// the producer re-Wakes the entry after every enqueue, so no work is
// lost. Entries hop between workers across quanta; the scheduler's
// mutex hand-off orders each quantum after the previous one, so
// Runnables may keep goroutine-confined state without their own locks.
type Runnable interface {
	RunQuantum(n int) (used int, more bool)
}

type entryState int32

const (
	entryIdle entryState = iota
	entryQueued
	entryRunning
	entryRunningWake // running, with a wake pending: requeue on finish
	entryClosed
)

// Entry is a registered session in the run queue.
type Entry struct {
	s *Scheduler
	t *tenantState
	r Runnable

	state entryState // guarded by s.mu

	// wakePending short-circuits Wake without taking the scheduler lock:
	// true whenever the entry is queued or has a wake recorded, i.e. the
	// next (or current) quantum is already guaranteed to observe any work
	// enqueued before the flag was read.
	wakePending atomic.Bool

	arenaBytes atomic.Int64
}

type tenantState struct {
	name  string
	quota Quota

	// Guarded by Scheduler.mu:
	deficit  int
	queue    []*Entry
	inRing   bool
	sessions int

	arena atomic.Int64 // sum of registered entries' arena bytes

	bmu    sync.Mutex
	bucket *bucket // per-tenant rate bucket; nil when unlimited

	ob tenantObs
}

// Scheduler is the fleet dispatcher. See the package comment for the
// policies it enforces.
type Scheduler struct {
	cfg     Config
	quantum int

	// now and sleep are indirected for deterministic tests.
	now   func() time.Time
	sleep func(time.Duration)

	mu       sync.Mutex
	cond     *sync.Cond // worker wakeup: ring non-empty or stopped
	tenants  map[string]*tenantState
	ring     []*tenantState // tenants with queued entries, round-robin order
	sessions int            // resident (admitted, unreleased) sessions
	stopped  bool
	wg       sync.WaitGroup

	gmu    sync.Mutex
	global *bucket // global overdraft budget; nil when unlimited

	reg *obs.Registry
	ob  fleetObs
}

type fleetObs struct {
	sessions *obs.Gauge   // fleet.sessions: resident sessions
	runnable *obs.Gauge   // fleet.runnable: entries queued for a worker
	running  *obs.Gauge   // fleet.running: entries on a worker now
	rejects  *obs.Counter // fleet.rejects: admission rejects
	quanta   *obs.Counter // fleet.quanta: run quanta executed
	panics   *obs.Counter // fleet.panics: Runnable panics absorbed
	throttle *obs.Timer   // fleet.throttle_wait_ns: ingest stall time
	sched    *obs.Span    // stage.schedule: quantum latency / events
}

type tenantObs struct {
	sessions *obs.Gauge   // tenant.sessions
	events   *obs.Counter // tenant.events: ingested (throttled) events
	rejects  *obs.Counter // tenant.rejects
	throttle *obs.Timer   // tenant.throttle_wait_ns
	arena    *obs.Gauge   // tenant.arena_bytes
}

// New builds a Scheduler and starts its worker pool.
func New(cfg Config) *Scheduler {
	s := &Scheduler{
		cfg:     cfg,
		quantum: cfg.Quantum,
		now:     time.Now,
		sleep:   time.Sleep,
		tenants: make(map[string]*tenantState),
		reg:     cfg.Obs,
	}
	if s.quantum <= 0 {
		s.quantum = DefaultQuantum
	}
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	s.cond = sync.NewCond(&s.mu)
	s.ob = fleetObs{
		sessions: s.reg.Gauge("fleet.sessions"),
		runnable: s.reg.Gauge("fleet.runnable"),
		running:  s.reg.Gauge("fleet.running"),
		rejects:  s.reg.Counter("fleet.rejects"),
		quanta:   s.reg.Counter("fleet.quanta"),
		panics:   s.reg.Counter("fleet.panics"),
		throttle: s.reg.Timer("fleet.throttle_wait_ns"),
		sched:    s.reg.Span(obs.StageSchedule),
	}
	if cfg.GlobalEventsPerSec > 0 {
		s.global = newBucket(cfg.GlobalEventsPerSec, cfg.GlobalBurst, s.now())
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Workers reports the configured worker pool size.
func (s *Scheduler) Workers() int { return s.cfg.Workers }

// tenantLocked returns the tenant record, creating it on first sight.
// Caller holds s.mu.
func (s *Scheduler) tenantLocked(name string) *tenantState {
	if t, ok := s.tenants[name]; ok {
		return t
	}
	q, ok := s.cfg.Tenants[name]
	if !ok {
		q = s.cfg.Default
	}
	t := &tenantState{name: name, quota: q}
	if q.EventsPerSec > 0 {
		t.bucket = newBucket(q.EventsPerSec, q.Burst, s.now())
	}
	scope := s.reg.Scope("tenant", name)
	t.ob = tenantObs{
		sessions: scope.Gauge("tenant.sessions"),
		events:   scope.Counter("tenant.events"),
		rejects:  scope.Counter("tenant.rejects"),
		throttle: scope.Timer("tenant.throttle_wait_ns"),
		arena:    scope.Gauge("tenant.arena_bytes"),
	}
	s.tenants[name] = t
	return t
}

// Admit reserves a resident-session slot for tenant, or rejects with a
// *BusyError when the global table, the tenant's session cap, the
// tenant's arena-byte cap, or the (overdrawn) global event budget says
// no. The returned release function frees the slot; it is idempotent
// and must be called exactly when the session leaves the resident table
// (finalized or expired), not merely when its connection drops.
func (s *Scheduler) Admit(tenant string) (release func(), err error) {
	s.mu.Lock()
	t := s.tenantLocked(tenant)
	reject := func(reason string) (func(), error) {
		s.mu.Unlock()
		s.ob.rejects.Inc()
		t.ob.rejects.Inc()
		return nil, &BusyError{Tenant: tenant, Reason: reason}
	}
	if s.stopped {
		return reject("daemon shutting down")
	}
	if s.cfg.MaxSessions > 0 && s.sessions >= s.cfg.MaxSessions {
		return reject("session table full")
	}
	if t.quota.MaxSessions > 0 && t.sessions >= t.quota.MaxSessions {
		return reject("tenant session quota reached")
	}
	if t.quota.MaxArenaBytes > 0 && t.arena.Load() >= t.quota.MaxArenaBytes {
		return reject("tenant arena bytes over quota")
	}
	if s.global != nil {
		s.gmu.Lock()
		over := s.global.overdrawn(s.now())
		s.gmu.Unlock()
		if over {
			return reject("global event budget exhausted")
		}
	}
	s.sessions++
	t.sessions++
	s.mu.Unlock()
	s.ob.sessions.Add(1)
	t.ob.sessions.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			s.sessions--
			t.sessions--
			s.mu.Unlock()
			s.ob.sessions.Add(-1)
			t.ob.sessions.Add(-1)
		})
	}, nil
}

// Register adds a session's Runnable to the scheduler under tenant. The
// entry starts idle; Wake it whenever work is enqueued for it.
func (s *Scheduler) Register(tenant string, r Runnable) *Entry {
	s.mu.Lock()
	t := s.tenantLocked(tenant)
	s.mu.Unlock()
	return &Entry{s: s, t: t, r: r}
}

// Wake marks the entry runnable. It is the producer-side edge of the
// scheduler: call it after every enqueue to the session's input queue.
// The fast path is one atomic load when a wake is already pending.
func (e *Entry) Wake() {
	if e.wakePending.Load() {
		return
	}
	s := e.s
	s.mu.Lock()
	switch e.state {
	case entryIdle:
		e.state = entryQueued
		e.wakePending.Store(true)
		s.enqueueLocked(e)
		s.cond.Signal()
	case entryRunning:
		e.state = entryRunningWake
		e.wakePending.Store(true)
	}
	s.mu.Unlock()
}

// SetArenaBytes publishes the session's current detector arena
// footprint; the delta is charged to its tenant's arena total for
// admission-time quota checks.
func (e *Entry) SetArenaBytes(n int64) {
	old := e.arenaBytes.Swap(n)
	if d := n - old; d != 0 {
		e.t.ob.arena.Set(e.t.arena.Add(d))
	}
}

// State reports the entry's scheduler state for status endpoints:
// "idle", "runnable", "running", or "closed".
func (e *Entry) State() string {
	e.s.mu.Lock()
	st := e.state
	e.s.mu.Unlock()
	switch st {
	case entryQueued:
		return "runnable"
	case entryRunning, entryRunningWake:
		return "running"
	case entryClosed:
		return "closed"
	default:
		return "idle"
	}
}

// Close removes the entry from the scheduler permanently (later Wakes
// are no-ops) and returns its arena bytes to the tenant total. If the
// entry is mid-quantum the running worker finishes it and drops it.
func (e *Entry) Close() {
	s := e.s
	s.mu.Lock()
	if e.state == entryQueued {
		q := e.t.queue
		for i, x := range q {
			if x == e {
				copy(q[i:], q[i+1:])
				q[len(q)-1] = nil
				e.t.queue = q[:len(q)-1]
				s.ob.runnable.Add(-1)
				break
			}
		}
	}
	closed := e.state == entryClosed
	e.state = entryClosed
	e.wakePending.Store(false)
	s.mu.Unlock()
	if !closed {
		e.SetArenaBytes(0)
	}
}

// enqueueLocked appends e to its tenant's queue, entering the tenant
// into the DRR ring if it was absent. Caller holds s.mu.
func (s *Scheduler) enqueueLocked(e *Entry) {
	t := e.t
	t.queue = append(t.queue, e)
	s.ob.runnable.Add(1)
	if !t.inRing {
		t.inRing = true
		t.deficit = 0
		s.ring = append(s.ring, t)
	}
}

// worker is the DRR dispatch loop: pop the head tenant, bank one
// quantum of deficit, run its head entry with the banked grant, settle
// the deficit with what was actually used, requeue as needed. Workers
// drain the ring fully before honoring Stop, so pending quanta finish.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		for !s.stopped && len(s.ring) == 0 {
			s.cond.Wait()
		}
		if len(s.ring) == 0 { // stopped, nothing queued
			s.mu.Unlock()
			return
		}
		t := s.ring[0]
		s.ring[0] = nil
		s.ring = s.ring[1:]
		if len(t.queue) == 0 { // emptied by Entry.Close while ringed
			t.inRing = false
			t.deficit = 0
			continue
		}
		t.deficit += s.quantum
		if max := deficitCapRounds * s.quantum; t.deficit > max {
			t.deficit = max
		}
		e := t.queue[0]
		t.queue[0] = nil
		t.queue = t.queue[1:]
		s.ob.runnable.Add(-1)
		if len(t.queue) > 0 {
			s.ring = append(s.ring, t)
		} else {
			t.inRing = false
		}
		grant := t.deficit
		e.state = entryRunning
		e.wakePending.Store(false)
		s.mu.Unlock()

		s.ob.running.Add(1)
		used, more := s.runQuantum(e, grant)
		s.ob.running.Add(-1)

		s.mu.Lock()
		t.deficit -= used
		if t.deficit < 0 {
			t.deficit = 0
		}
		switch e.state {
		case entryRunning:
			if more {
				e.state = entryQueued
				e.wakePending.Store(true)
				s.enqueueLocked(e)
				s.cond.Signal()
			} else {
				e.state = entryIdle
			}
		case entryRunningWake:
			e.state = entryQueued
			s.enqueueLocked(e)
			s.cond.Signal()
		}
		// entryClosed: dropped.
	}
}

// runQuantum runs one grant with a panic backstop: a panicking Runnable
// is counted, logged, and treated as finished — it must carry its own
// degrade-and-drain recovery (rd2d's session runner does) if it wants
// to keep its connection alive.
func (s *Scheduler) runQuantum(e *Entry, grant int) (used int, more bool) {
	defer func() {
		if r := recover(); r != nil {
			s.ob.panics.Inc()
			if s.cfg.Logf != nil {
				s.cfg.Logf("fleet: runnable panic (tenant %q): %v", e.t.name, r)
			}
			used, more = 0, false
		}
	}()
	start := s.ob.sched.Start()
	used, more = e.r.RunQuantum(grant)
	s.ob.sched.End(start, used)
	s.ob.quanta.Inc()
	return used, more
}

// Stop shuts the worker pool down after draining all queued quanta.
// Entries must stop producing first (rd2d calls Stop after every
// session has finalized). Admission rejects from the moment Stop is
// called.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// TenantStats is a point-in-time view of one tenant for status
// endpoints.
type TenantStats struct {
	Name       string `json:"tenant"`
	Sessions   int    `json:"sessions"`
	Queued     int    `json:"queued"`
	ArenaBytes int64  `json:"arenaBytes"`
	Events     uint64 `json:"events"`
	Rejects    uint64 `json:"rejects"`
}

// Tenants snapshots every tenant the scheduler has seen, sorted by
// name.
func (s *Scheduler) Tenants() []TenantStats {
	s.mu.Lock()
	out := make([]TenantStats, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, TenantStats{
			Name:       t.name,
			Sessions:   t.sessions,
			Queued:     len(t.queue),
			ArenaBytes: t.arena.Load(),
			Events:     t.ob.events.Load(),
			Rejects:    t.ob.rejects.Load(),
		})
	}
	s.mu.Unlock()
	sortTenantStats(out)
	return out
}

func sortTenantStats(ts []TenantStats) {
	for i := 1; i < len(ts); i++ { // insertion sort; tenant counts are tiny
		for j := i; j > 0 && ts[j].Name < ts[j-1].Name; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
