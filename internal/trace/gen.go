package trace

import (
	"math/rand"

	"repro/internal/vclock"
)

// GenConfig controls the random well-formed trace generator used by property
// tests. The generator produces traces that a real execution could have
// produced: threads exist between their fork and join, lock acquire/release
// pairs are balanced per thread, and dictionary action return values are
// consistent with the dictionary's abstract state (Fig 5) under the chosen
// interleaving.
type GenConfig struct {
	Threads int // worker threads in addition to the main thread 0
	Objects int // number of dictionary objects
	Keys    int // key universe size (string keys k0..k{Keys-1})
	Vals    int // value universe size (int values 1..Vals; puts may also write nil)
	Locks   int // lock universe size (0 disables locking)
	OpsMin  int // minimum ops per worker thread
	OpsMax  int // maximum ops per worker thread
	PSize   int // percentage of size() ops
	PGet    int // percentage of get() ops (remainder are puts)
	PLocked int // percentage of ops wrapped in a random lock
	PRemove int // percentage of puts that write nil (a removal)
}

// DefaultGenConfig returns a configuration that exercises the interesting
// cases: shared keys, resizes, sizes, and partial locking.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Threads: 3, Objects: 2, Keys: 4, Vals: 3, Locks: 2,
		OpsMin: 2, OpsMax: 6, PSize: 15, PGet: 35, PLocked: 30, PRemove: 25,
	}
}

// genOp is one pending operation of a worker thread.
type genOp struct {
	kind   int // 0 put, 1 get, 2 size
	obj    ObjID
	key    Value
	val    Value
	lock   LockID
	locked bool
}

// Generate produces a random well-formed trace. Thread 0 is the main thread:
// it forks every worker, then joins every worker, then performs one final
// size() per object, mimicking the Fig 1 program shape. The interleaving of
// worker operations is random, and dictionary returns are computed from the
// evolving abstract state so the trace is realizable.
func Generate(r *rand.Rand, cfg GenConfig) *Trace {
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.Objects < 1 {
		cfg.Objects = 1
	}
	if cfg.Keys < 1 {
		cfg.Keys = 1
	}
	if cfg.OpsMax < cfg.OpsMin {
		cfg.OpsMax = cfg.OpsMin
	}

	// Draft each worker's program.
	progs := make([][]genOp, cfg.Threads)
	for t := range progs {
		n := cfg.OpsMin
		if cfg.OpsMax > cfg.OpsMin {
			n += r.Intn(cfg.OpsMax - cfg.OpsMin + 1)
		}
		ops := make([]genOp, n)
		for i := range ops {
			op := genOp{obj: ObjID(r.Intn(cfg.Objects))}
			p := r.Intn(100)
			switch {
			case p < cfg.PSize:
				op.kind = 2
			case p < cfg.PSize+cfg.PGet:
				op.kind = 1
				op.key = genKey(r, cfg)
			default:
				op.kind = 0
				op.key = genKey(r, cfg)
				if r.Intn(100) < cfg.PRemove {
					op.val = NilValue
				} else {
					op.val = IntValue(int64(1 + r.Intn(maxInt(cfg.Vals, 1))))
				}
			}
			if cfg.Locks > 0 && r.Intn(100) < cfg.PLocked {
				op.locked = true
				op.lock = LockID(r.Intn(cfg.Locks))
			}
			ops[i] = op
		}
		progs[t] = ops
	}

	// Interleave while tracking abstract dictionary states.
	b := NewBuilder()
	dicts := make([]map[Value]Value, cfg.Objects)
	for i := range dicts {
		dicts[i] = map[Value]Value{}
	}
	size := func(o ObjID) int64 {
		var n int64
		for _, v := range dicts[o] {
			if !v.IsNil() {
				n++
			}
		}
		return n
	}
	lookup := func(o ObjID, k Value) Value {
		if v, ok := dicts[o][k]; ok {
			return v
		}
		return NilValue
	}

	live := make([]int, cfg.Threads) // next op index per worker
	for t := 1; t <= cfg.Threads; t++ {
		b.Fork(0, vclock.Tid(t))
	}
	remaining := 0
	for _, p := range progs {
		remaining += len(p)
	}
	for remaining > 0 {
		// Pick a random worker that still has work.
		w := r.Intn(cfg.Threads)
		for live[w] >= len(progs[w]) {
			w = (w + 1) % cfg.Threads
		}
		op := progs[w][live[w]]
		live[w]++
		remaining--
		tid := vclock.Tid(w + 1)
		if op.locked {
			b.Acquire(tid, op.lock)
		}
		switch op.kind {
		case 0:
			prev := lookup(op.obj, op.key)
			dicts[op.obj][op.key] = op.val
			b.Put(tid, op.obj, op.key, op.val, prev)
		case 1:
			b.Get(tid, op.obj, op.key, lookup(op.obj, op.key))
		case 2:
			b.Size(tid, op.obj, size(op.obj))
		}
		if op.locked {
			b.Release(tid, op.lock)
		}
	}
	for t := 1; t <= cfg.Threads; t++ {
		b.Join(0, vclock.Tid(t))
	}
	for o := 0; o < cfg.Objects; o++ {
		b.Size(0, ObjID(o), size(ObjID(o)))
	}
	return b.Trace()
}

func genKey(r *rand.Rand, cfg GenConfig) Value {
	return StrValue("k" + string(rune('0'+r.Intn(minInt(cfg.Keys, 10)))))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
