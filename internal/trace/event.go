package trace

import (
	"fmt"
	"strings"

	"repro/internal/vclock"
)

// ObjID identifies a shared object. Objects are assigned small dense ids by
// whoever constructs the trace (the monitored runtime, a parser, a test).
type ObjID int

// LockID identifies a lock.
type LockID int

// Action is a method invocation o.m(ū)/v̄ on a shared object (Section 3.1).
// Args and Rets carry the concrete arguments and return values.
type Action struct {
	Obj    ObjID
	Method string
	Args   []Value
	Rets   []Value
}

// String renders the action as o3.put("a", 1)/nil.
func (a Action) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "o%d.%s(%s)", int(a.Obj), a.Method, Values(a.Args))
	if len(a.Rets) > 0 {
		b.WriteByte('/')
		b.WriteString(Values(a.Rets))
	}
	return b.String()
}

// Operands returns the concatenation ū·v̄ numbered w_1..w_n as in the
// translation of Section 6.2 (1-based indexing is applied by callers).
func (a Action) Operands() []Value {
	out := make([]Value, 0, len(a.Args)+len(a.Rets))
	out = append(out, a.Args...)
	return append(out, a.Rets...)
}

// Operand returns the i-th operand (arguments then returns) without
// allocating; ok is false when i is out of range.
func (a Action) Operand(i int) (Value, bool) {
	if i < 0 {
		return Value{}, false
	}
	if i < len(a.Args) {
		return a.Args[i], true
	}
	i -= len(a.Args)
	if i < len(a.Rets) {
		return a.Rets[i], true
	}
	return Value{}, false
}

// Kind discriminates the event variants consumed by the analyses.
type EventKind uint8

// The event kinds. Fork/Join/Acquire/Release are the synchronization events
// of Table 1; ActionEvent is a shared-object method invocation; ReadEvent
// and WriteEvent are low-level memory accesses (consumed by the FASTTRACK
// baseline); BeginEvent and EndEvent delimit a thread's lifetime; DieEvent
// reclaims a shared object's analysis state (the Section 5.3 optimization).
const (
	ForkEvent EventKind = iota
	JoinEvent
	AcquireEvent
	ReleaseEvent
	ActionEvent
	ReadEvent
	WriteEvent
	BeginEvent
	EndEvent
	DieEvent
	// SendEvent and RecvEvent are FIFO channel operations: the i-th
	// receive on a channel happens after the i-th send (message-passing
	// edges in the happens-before relation). They extend Table 1's
	// synchronization vocabulary for Go-style programs.
	SendEvent
	RecvEvent
)

func (k EventKind) String() string {
	switch k {
	case ForkEvent:
		return "fork"
	case JoinEvent:
		return "join"
	case AcquireEvent:
		return "acq"
	case ReleaseEvent:
		return "rel"
	case ActionEvent:
		return "act"
	case ReadEvent:
		return "read"
	case WriteEvent:
		return "write"
	case BeginEvent:
		return "begin"
	case EndEvent:
		return "end"
	case DieEvent:
		return "die"
	case SendEvent:
		return "send"
	case RecvEvent:
		return "recv"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// VarID identifies a memory location for low-level read/write events.
type VarID int

// ChanID identifies a channel for send/recv events.
type ChanID int

// Event is one transition label τ:a of a trace. Exactly the fields relevant
// to Kind are meaningful:
//
//	Fork, Join:        Thread (actor) and Other (forked/awaited thread)
//	Acquire, Release:  Thread and Lock
//	Action, Die:       Thread and Act (Die uses only Act.Obj)
//	Read, Write:       Thread and Var
//	Send, Recv:        Thread and Chan
//	Begin, End:        Thread
//
// Clock is filled in by the happens-before engine when the event is stamped;
// it is nil on raw (unstamped) events. Seq is the event's position in its
// trace, assigned by Trace.Append.
type Event struct {
	Seq    int
	Kind   EventKind
	Thread vclock.Tid
	Other  vclock.Tid
	Lock   LockID
	Var    VarID
	Chan   ChanID
	Act    Action
	Clock  vclock.VC
}

// String renders the event in the trace file syntax (without the clock).
func (e Event) String() string {
	switch e.Kind {
	case ForkEvent:
		return fmt.Sprintf("t%d fork t%d", e.Thread, e.Other)
	case JoinEvent:
		return fmt.Sprintf("t%d join t%d", e.Thread, e.Other)
	case AcquireEvent:
		return fmt.Sprintf("t%d acq l%d", e.Thread, e.Lock)
	case ReleaseEvent:
		return fmt.Sprintf("t%d rel l%d", e.Thread, e.Lock)
	case ActionEvent:
		return fmt.Sprintf("t%d act %s", e.Thread, e.Act)
	case ReadEvent:
		return fmt.Sprintf("t%d read v%d", e.Thread, e.Var)
	case WriteEvent:
		return fmt.Sprintf("t%d write v%d", e.Thread, e.Var)
	case BeginEvent:
		return fmt.Sprintf("t%d begin", e.Thread)
	case EndEvent:
		return fmt.Sprintf("t%d end", e.Thread)
	case DieEvent:
		return fmt.Sprintf("t%d die o%d", e.Thread, e.Act.Obj)
	case SendEvent:
		return fmt.Sprintf("t%d send c%d", e.Thread, e.Chan)
	case RecvEvent:
		return fmt.Sprintf("t%d recv c%d", e.Thread, e.Chan)
	default:
		return fmt.Sprintf("t%d ?%d", e.Thread, e.Kind)
	}
}

// Fork constructs a fork event.
func Fork(t, u vclock.Tid) Event { return Event{Kind: ForkEvent, Thread: t, Other: u} }

// Join constructs a join event.
func Join(t, u vclock.Tid) Event { return Event{Kind: JoinEvent, Thread: t, Other: u} }

// Acquire constructs a lock-acquire event.
func Acquire(t vclock.Tid, l LockID) Event { return Event{Kind: AcquireEvent, Thread: t, Lock: l} }

// Release constructs a lock-release event.
func Release(t vclock.Tid, l LockID) Event { return Event{Kind: ReleaseEvent, Thread: t, Lock: l} }

// Act constructs an action event.
func Act(t vclock.Tid, a Action) Event { return Event{Kind: ActionEvent, Thread: t, Act: a} }

// Read constructs a memory-read event.
func Read(t vclock.Tid, v VarID) Event { return Event{Kind: ReadEvent, Thread: t, Var: v} }

// Write constructs a memory-write event.
func Write(t vclock.Tid, v VarID) Event { return Event{Kind: WriteEvent, Thread: t, Var: v} }

// Die constructs an object-death event for o.
func Die(t vclock.Tid, o ObjID) Event {
	return Event{Kind: DieEvent, Thread: t, Act: Action{Obj: o}}
}

// Send constructs a channel-send event.
func Send(t vclock.Tid, c ChanID) Event { return Event{Kind: SendEvent, Thread: t, Chan: c} }

// Recv constructs a channel-receive event.
func Recv(t vclock.Tid, c ChanID) Event { return Event{Kind: RecvEvent, Thread: t, Chan: c} }

// Trace is a finite sequence of events (Section 3.1). The zero value is an
// empty trace ready to use.
type Trace struct {
	Events []Event
}

// Append adds an event, assigning its sequence number, and returns a pointer
// to the stored copy.
func (tr *Trace) Append(e Event) *Event {
	e.Seq = len(tr.Events)
	tr.Events = append(tr.Events, e)
	return &tr.Events[len(tr.Events)-1]
}

// Len returns the number of events.
func (tr *Trace) Len() int { return len(tr.Events) }

// Threads returns the highest thread id mentioned, plus one.
func (tr *Trace) Threads() int {
	max := -1
	for _, e := range tr.Events {
		if int(e.Thread) > max {
			max = int(e.Thread)
		}
		if (e.Kind == ForkEvent || e.Kind == JoinEvent) && int(e.Other) > max {
			max = int(e.Other)
		}
	}
	return max + 1
}

// Actions returns the action events in order.
func (tr *Trace) Actions() []Event {
	var out []Event
	for _, e := range tr.Events {
		if e.Kind == ActionEvent {
			out = append(out, e)
		}
	}
	return out
}
