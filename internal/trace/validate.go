package trace

import (
	"fmt"

	"repro/internal/vclock"
)

// Validate checks structural well-formedness of a trace:
//
//   - a thread is forked at most once and never by itself;
//   - no thread acts before an implicit root start or after being joined;
//   - a join names a thread that exists (forked or a root) and a thread is
//     not joined twice by the same thread before... (multiple joiners are
//     permitted — joining an already-terminated thread is fine);
//   - lock acquire/release alternate per lock: a release must come from the
//     current holder, an acquire requires the lock to be free;
//   - transaction Begin/End alternate per thread.
//
// Threads that appear without a fork are treated as roots (allowed; they
// start concurrent with everything). Validate returns the first problem
// found, or nil.
func Validate(tr *Trace) error {
	forked := map[vclock.Tid]int{}  // thread → fork event seq
	joined := map[vclock.Tid]bool{} // thread → has been joined
	seen := map[vclock.Tid]bool{}   // thread has produced events
	holder := map[LockID]vclock.Tid{}
	held := map[LockID]bool{}
	inTxn := map[vclock.Tid]bool{}
	pending := map[ChanID]int{} // sends not yet received

	for i, e := range tr.Events {
		t := e.Thread
		if joined[t] {
			return fmt.Errorf("trace: event %d (%s): thread t%d acts after being joined", i, e.String(), t)
		}
		seen[t] = true
		switch e.Kind {
		case ForkEvent:
			if e.Other == t {
				return fmt.Errorf("trace: event %d: thread t%d forks itself", i, t)
			}
			if _, dup := forked[e.Other]; dup {
				return fmt.Errorf("trace: event %d: thread t%d forked twice", i, e.Other)
			}
			if seen[e.Other] {
				return fmt.Errorf("trace: event %d: thread t%d forked after it already acted", i, e.Other)
			}
			forked[e.Other] = i
		case JoinEvent:
			if e.Other == t {
				return fmt.Errorf("trace: event %d: thread t%d joins itself", i, t)
			}
			if _, wasForked := forked[e.Other]; !wasForked && !seen[e.Other] {
				return fmt.Errorf("trace: event %d: join of unknown thread t%d", i, e.Other)
			}
			joined[e.Other] = true
		case AcquireEvent:
			if held[e.Lock] {
				return fmt.Errorf("trace: event %d: lock l%d acquired by t%d while held by t%d",
					i, e.Lock, t, holder[e.Lock])
			}
			held[e.Lock] = true
			holder[e.Lock] = t
		case ReleaseEvent:
			if !held[e.Lock] {
				return fmt.Errorf("trace: event %d: lock l%d released while free", i, e.Lock)
			}
			if holder[e.Lock] != t {
				return fmt.Errorf("trace: event %d: lock l%d released by t%d but held by t%d",
					i, e.Lock, t, holder[e.Lock])
			}
			held[e.Lock] = false
		case SendEvent:
			pending[e.Chan]++
		case RecvEvent:
			if pending[e.Chan] == 0 {
				return fmt.Errorf("trace: event %d: receive on channel c%d with no pending send", i, e.Chan)
			}
			pending[e.Chan]--
		case BeginEvent:
			if inTxn[t] {
				return fmt.Errorf("trace: event %d: nested transaction begin by t%d", i, t)
			}
			inTxn[t] = true
		case EndEvent:
			if !inTxn[t] {
				return fmt.Errorf("trace: event %d: transaction end without begin by t%d", i, t)
			}
			inTxn[t] = false
		}
	}
	for l, h := range held {
		if h {
			return fmt.Errorf("trace: lock l%d still held by t%d at end of trace", l, holder[l])
		}
	}
	for t, open := range inTxn {
		if open {
			return fmt.Errorf("trace: transaction of t%d still open at end of trace", t)
		}
	}
	return nil
}
