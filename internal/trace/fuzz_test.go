package trace

import (
	"strings"
	"testing"
)

// FuzzParseEvent feeds arbitrary lines to the text parser. ParseEvent must
// return an error for malformed lines — never panic — and any line that
// parses must survive a String → ParseEvent round trip.
func FuzzParseEvent(f *testing.F) {
	f.Add("t0 fork t1")
	f.Add("t1 acq l0")
	f.Add("t1 o0.put(\"a.com\", 1)/nil")
	f.Add("t2 o0.size()/7")
	f.Add("t1 o1.contains(\"k\")/true")
	f.Add("t0 send c3")
	f.Add("t0 recv c3")
	f.Add("t0 read v5")
	f.Add("t0 write v5")
	f.Add("t0 join t1")
	f.Add("t0 die t0")
	f.Add("t1 begin")
	f.Add("t1 end")
	f.Add("")
	f.Add("# comment")
	f.Add("t99999999999999999999 fork t1")
	f.Add("t1 o0.put(\"unterminated")
	f.Add("t1 o0.m(\"\\\"esc\\\\\")/nil")
	f.Add("t-1 acq l-1")

	f.Fuzz(func(t *testing.T, line string) {
		e, err := ParseEvent(line)
		if err != nil {
			return // malformed: fine, as long as we didn't panic
		}
		s := e.String()
		e2, err := ParseEvent(s)
		if err != nil {
			t.Fatalf("String() %q of parsed %q does not re-parse: %v", s, line, err)
		}
		if e2.String() != s {
			t.Fatalf("String round trip unstable: %q -> %q", s, e2.String())
		}
		_ = strings.TrimSpace(line)
	})
}
