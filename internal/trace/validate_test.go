package trace

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestValidateAcceptsWellFormed(t *testing.T) {
	tr := NewBuilder().
		Fork(0, 1).Fork(0, 2).
		Acquire(1, 0).
		Put(1, 0, StrValue("k"), IntValue(1), NilValue).
		Release(1, 0).
		Acquire(2, 0).
		Get(2, 0, StrValue("k"), IntValue(1)).
		Release(2, 0).
		JoinAll(0, 1, 2).
		Size(0, 0, 1).
		Trace()
	if err := Validate(tr); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRootThreadsAllowed(t *testing.T) {
	tr := NewBuilder().
		Get(3, 0, StrValue("k"), NilValue). // root thread, never forked
		Get(7, 0, StrValue("k"), NilValue).
		Join(3, 7). // joining a root that has acted is fine
		Trace()
	if err := Validate(tr); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		tr   *Trace
		frag string
	}{
		{"self-fork", NewBuilder().Fork(1, 1).Trace(), "forks itself"},
		{"double-fork", NewBuilder().Fork(0, 1).Fork(2, 1).Trace(), "forked twice"},
		{"fork-after-act", NewBuilder().Size(1, 0, 0).Fork(0, 1).Trace(), "already acted"},
		{"self-join", NewBuilder().Join(1, 1).Trace(), "joins itself"},
		{"join-unknown", NewBuilder().Join(0, 9).Trace(), "unknown thread"},
		{"act-after-join", NewBuilder().Fork(0, 1).Join(0, 1).Size(1, 0, 0).Trace(), "after being joined"},
		{"double-acquire", NewBuilder().Fork(0, 1).Acquire(0, 0).Acquire(1, 0).Trace(), "while held"},
		{"free-release", NewBuilder().Release(0, 0).Trace(), "released while free"},
		{"wrong-releaser", NewBuilder().Fork(0, 1).Acquire(0, 0).Release(1, 0).Trace(), "held by"},
		{"held-at-end", NewBuilder().Acquire(0, 0).Trace(), "still held"},
	}
	for _, c := range cases {
		err := Validate(c.tr)
		if err == nil {
			t.Errorf("%s: should be rejected", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q should mention %q", c.name, err, c.frag)
		}
	}
}

func TestValidateTransactions(t *testing.T) {
	good := &Trace{}
	good.Append(Event{Kind: BeginEvent, Thread: 0})
	good.Append(Act(0, Action{Obj: 0, Method: "size", Rets: []Value{IntValue(0)}}))
	good.Append(Event{Kind: EndEvent, Thread: 0})
	if err := Validate(good); err != nil {
		t.Fatal(err)
	}

	nested := &Trace{}
	nested.Append(Event{Kind: BeginEvent, Thread: 0})
	nested.Append(Event{Kind: BeginEvent, Thread: 0})
	if err := Validate(nested); err == nil || !strings.Contains(err.Error(), "nested") {
		t.Errorf("nested begin: %v", err)
	}

	stray := &Trace{}
	stray.Append(Event{Kind: EndEvent, Thread: 0})
	if err := Validate(stray); err == nil || !strings.Contains(err.Error(), "without begin") {
		t.Errorf("stray end: %v", err)
	}

	open := &Trace{}
	open.Append(Event{Kind: BeginEvent, Thread: 0})
	if err := Validate(open); err == nil || !strings.Contains(err.Error(), "still open") {
		t.Errorf("open txn: %v", err)
	}
}

func TestPropGeneratedTracesValidate(t *testing.T) {
	cfg := DefaultGenConfig()
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := Generate(r, cfg)
		if err := Validate(tr); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}, &quick.Config{MaxCount: 80})
	if err != nil {
		t.Fatal(err)
	}
}
