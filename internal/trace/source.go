package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Source yields the events of a trace one at a time, in trace order. Next
// returns io.EOF after the last event. It is the streaming front door of
// the detectors: core.Detector.RunSource and pipeline.Pipeline.RunSource
// consume a Source directly, so traces never have to be materialized in
// memory (the wire decoder, the text scanner, and the rd2d ingestion
// daemon all produce events incrementally).
//
// A Source assigns each event its Seq in stream order, exactly like
// Trace.Append does for in-memory traces.
type Source interface {
	Next() (Event, error)
}

// SliceSource adapts an in-memory trace to the Source interface.
type SliceSource struct {
	events []Event
	pos    int
}

// Source returns a Source over the trace's events.
func (tr *Trace) Source() *SliceSource { return &SliceSource{events: tr.Events} }

// Next returns the next event, or io.EOF.
func (s *SliceSource) Next() (Event, error) {
	if s.pos >= len(s.events) {
		return Event{}, io.EOF
	}
	e := s.events[s.pos]
	s.pos++
	return e, nil
}

// TextSource streams events out of the text trace format without holding
// the whole trace: one line is decoded per Next call. Blank lines and '#'
// comments are skipped, and errors carry the 1-based line number, exactly
// like Parse.
type TextSource struct {
	sc     *bufio.Scanner
	lineNo int
	seq    int
	err    error
}

// NewTextSource returns a streaming decoder for the text trace format.
func NewTextSource(r io.Reader) *TextSource {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &TextSource{sc: sc}
}

// Next decodes the next event line, or returns io.EOF at end of input.
func (s *TextSource) Next() (Event, error) {
	if s.err != nil {
		return Event{}, s.err
	}
	for s.sc.Scan() {
		s.lineNo++
		line := strings.TrimSpace(s.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := ParseEvent(line)
		if err != nil {
			s.err = fmt.Errorf("trace: line %d: %v", s.lineNo, err)
			return Event{}, s.err
		}
		e.Seq = s.seq
		s.seq++
		return e, nil
	}
	if err := s.sc.Err(); err != nil {
		s.err = err
	} else {
		s.err = io.EOF
	}
	return Event{}, s.err
}

// LimitSource yields at most n events from an underlying source, then
// io.EOF. The fault-injection harness uses it to truncate event streams at
// exact event boundaries (as opposed to byte-level truncation, which the
// wire-format injectors cover).
type LimitSource struct {
	src Source
	n   int
}

// Limit wraps src so that at most n events are yielded.
func Limit(src Source, n int) *LimitSource { return &LimitSource{src: src, n: n} }

// Next returns the next event while the budget lasts, then io.EOF.
func (l *LimitSource) Next() (Event, error) {
	if l.n <= 0 {
		return Event{}, io.EOF
	}
	l.n--
	return l.src.Next()
}

// ReadAll drains a Source into an in-memory trace.
func ReadAll(src Source) (*Trace, error) {
	tr := &Trace{}
	for {
		e, err := src.Next()
		if err == io.EOF {
			return tr, nil
		}
		if err != nil {
			return nil, err
		}
		tr.Append(e)
	}
}
