// Package trace defines the execution model of the paper (Section 3.1):
// runtime values, actions o.m(ū)/v̄, events, and traces, together with a
// deterministic text encoding used by the command-line tools and tests.
package trace

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates the variants of a Value.
type Kind uint8

// The value kinds. Nil is the special no-value of the paper's dictionaries.
const (
	Nil Kind = iota
	Int
	Str
	Bool
)

func (k Kind) String() string {
	switch k {
	case Nil:
		return "nil"
	case Int:
		return "int"
	case Str:
		return "string"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a runtime argument or return value of an action. It is a small
// comparable variant type, so Values can be compared with == and used as map
// keys (access points embed the witnessed value).
type Value struct {
	kind Kind
	i    int64
	s    string
}

// NilValue is the distinguished no-value nil.
var NilValue = Value{}

// IntValue returns the integer value v.
func IntValue(v int64) Value { return Value{kind: Int, i: v} }

// StrValue returns the string value s.
func StrValue(s string) Value { return Value{kind: Str, s: s} }

// BoolValue returns the boolean value b.
func BoolValue(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{kind: Bool, i: i}
}

// Kind returns the variant of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNil reports whether the value is the no-value nil.
func (v Value) IsNil() bool { return v.kind == Nil }

// Int returns the integer payload; it is zero for non-integer values.
func (v Value) Int() int64 { return v.i }

// Str returns the string payload; it is empty for non-string values.
func (v Value) Str() string { return v.s }

// Bool returns the boolean payload; it is false for non-boolean values.
func (v Value) Bool() bool { return v.kind == Bool && v.i != 0 }

// Hash returns a 64-bit structural hash of the value, suitable for
// open-addressed tables keyed by values (or by structs embedding them,
// like ap.Point). Equal values hash equal; the hash never allocates and
// never formats. String payloads are hashed with FNV-1a, scalar payloads
// are mixed through a splitmix64 finalizer so dense integer keys spread
// over power-of-two tables.
func (v Value) Hash() uint64 {
	h := uint64(v.kind)
	if v.kind == Str {
		// FNV-1a over the string bytes, seeded with the kind.
		h ^= 14695981039346656037
		for i := 0; i < len(v.s); i++ {
			h ^= uint64(v.s[i])
			h *= 1099511628211
		}
		return h
	}
	return mix64(h<<56 ^ uint64(v.i))
}

// mix64 is the splitmix64 finalizer: a cheap bijective scrambler.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Less imposes a total order on values: by kind, then payload. It exists so
// specs may use ordered atoms (x < y) in the LB fragment and so dumps are
// deterministic.
func (v Value) Less(w Value) bool {
	if v.kind != w.kind {
		return v.kind < w.kind
	}
	switch v.kind {
	case Str:
		return v.s < w.s
	default:
		return v.i < w.i
	}
}

// String renders the value in the trace syntax: nil, integers, true/false,
// or a double-quoted string.
func (v Value) String() string {
	switch v.kind {
	case Nil:
		return "nil"
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Bool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case Str:
		return strconv.Quote(v.s)
	default:
		return fmt.Sprintf("?kind%d", v.kind)
	}
}

// ParseValue parses the String form of a value.
func ParseValue(s string) (Value, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "nil":
		return NilValue, nil
	case s == "true":
		return BoolValue(true), nil
	case s == "false":
		return BoolValue(false), nil
	case len(s) >= 2 && s[0] == '"':
		u, err := strconv.Unquote(s)
		if err != nil {
			return Value{}, fmt.Errorf("trace: bad string value %s: %v", s, err)
		}
		return StrValue(u), nil
	default:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("trace: bad value %q", s)
		}
		return IntValue(i), nil
	}
}

// Values formats a tuple of values as "a, b, c".
func Values(vs []Value) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	return strings.Join(parts, ", ")
}
