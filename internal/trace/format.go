package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/vclock"
)

// The text trace format is one event per line:
//
//	t0 fork t1
//	t1 act o0.put("a.com", 1)/nil
//	t0 join t1
//	t0 acq l2
//	t0 rel l2
//	t0 read v7
//	t0 write v7
//	t0 die o0
//
// Blank lines and lines starting with '#' are ignored. Write and Parse
// round-trip.

// Encode writes the trace in the text format.
func Encode(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	for _, e := range tr.Events {
		if _, err := fmt.Fprintln(bw, e.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Format returns the text encoding of the trace as a string.
func Format(tr *Trace) string {
	var b strings.Builder
	// Encoding into a strings.Builder never fails.
	_ = Encode(&b, tr)
	return b.String()
}

// Parse decodes a trace from the text format by draining a TextSource.
func Parse(r io.Reader) (*Trace, error) {
	return ReadAll(NewTextSource(r))
}

// ParseString decodes a trace from a string.
func ParseString(s string) (*Trace, error) {
	return Parse(strings.NewReader(s))
}

// ParseEvent decodes one event line.
func ParseEvent(line string) (Event, error) {
	rest, tid, err := parseID(line, 't')
	if err != nil {
		return Event{}, err
	}
	t := vclock.Tid(tid)
	rest = strings.TrimSpace(rest)
	verb := rest
	arg := ""
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		verb, arg = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	switch verb {
	case "fork", "join":
		_, u, err := parseID(arg, 't')
		if err != nil {
			return Event{}, fmt.Errorf("%s: %v", verb, err)
		}
		if verb == "fork" {
			return Fork(t, vclock.Tid(u)), nil
		}
		return Join(t, vclock.Tid(u)), nil
	case "acq", "rel":
		_, l, err := parseID(arg, 'l')
		if err != nil {
			return Event{}, fmt.Errorf("%s: %v", verb, err)
		}
		if verb == "acq" {
			return Acquire(t, LockID(l)), nil
		}
		return Release(t, LockID(l)), nil
	case "read", "write":
		_, v, err := parseID(arg, 'v')
		if err != nil {
			return Event{}, fmt.Errorf("%s: %v", verb, err)
		}
		if verb == "read" {
			return Read(t, VarID(v)), nil
		}
		return Write(t, VarID(v)), nil
	case "send", "recv":
		_, c, err := parseID(arg, 'c')
		if err != nil {
			return Event{}, fmt.Errorf("%s: %v", verb, err)
		}
		if verb == "send" {
			return Send(t, ChanID(c)), nil
		}
		return Recv(t, ChanID(c)), nil
	case "begin":
		return Event{Kind: BeginEvent, Thread: t}, nil
	case "end":
		return Event{Kind: EndEvent, Thread: t}, nil
	case "die":
		_, o, err := parseID(arg, 'o')
		if err != nil {
			return Event{}, fmt.Errorf("die: %v", err)
		}
		return Die(t, ObjID(o)), nil
	case "act":
		a, err := ParseAction(arg)
		if err != nil {
			return Event{}, err
		}
		return Act(t, a), nil
	default:
		return Event{}, fmt.Errorf("unknown event verb %q", verb)
	}
}

// parseID consumes a prefixed id like t3, o12, l0, v7 from the start of s,
// returning the remainder.
func parseID(s string, prefix byte) (rest string, id int, err error) {
	s = strings.TrimSpace(s)
	if len(s) == 0 || s[0] != prefix {
		return "", 0, fmt.Errorf("expected %c-id, got %q", prefix, s)
	}
	i := 1
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i == 1 {
		return "", 0, fmt.Errorf("expected digits after %c in %q", prefix, s)
	}
	n, err := strconv.Atoi(s[1:i])
	if err != nil {
		return "", 0, err
	}
	return s[i:], n, nil
}

// ParseAction decodes an action of the form o0.put("a.com", 1)/nil. The
// return tuple after '/' is optional; multiple returns are comma-separated.
func ParseAction(s string) (Action, error) {
	s = strings.TrimSpace(s)
	rest, obj, err := parseID(s, 'o')
	if err != nil {
		return Action{}, fmt.Errorf("action: %v", err)
	}
	if len(rest) == 0 || rest[0] != '.' {
		return Action{}, fmt.Errorf("action: expected '.' after object in %q", s)
	}
	rest = rest[1:]
	open := strings.IndexByte(rest, '(')
	if open < 0 {
		return Action{}, fmt.Errorf("action: expected '(' in %q", s)
	}
	method := strings.TrimSpace(rest[:open])
	if method == "" {
		return Action{}, fmt.Errorf("action: empty method name in %q", s)
	}
	close, err := matchParen(rest, open)
	if err != nil {
		return Action{}, fmt.Errorf("action: %v in %q", err, s)
	}
	args, err := splitValues(rest[open+1 : close])
	if err != nil {
		return Action{}, err
	}
	var rets []Value
	tail := strings.TrimSpace(rest[close+1:])
	if tail != "" {
		if tail[0] != '/' {
			return Action{}, fmt.Errorf("action: expected '/' before returns in %q", s)
		}
		retsStr := strings.TrimSpace(tail[1:])
		if retsStr == "" {
			return Action{}, fmt.Errorf("action: empty return tuple after '/' in %q", s)
		}
		rets, err = splitValues(retsStr)
		if err != nil {
			return Action{}, err
		}
	}
	return Action{Obj: ObjID(obj), Method: method, Args: args, Rets: rets}, nil
}

// matchParen finds the index of the ')' matching the '(' at open, skipping
// over quoted strings.
func matchParen(s string, open int) (int, error) {
	inStr := false
	for i := open + 1; i < len(s); i++ {
		switch {
		case inStr:
			if s[i] == '\\' {
				i++
			} else if s[i] == '"' {
				inStr = false
			}
		case s[i] == '"':
			inStr = true
		case s[i] == ')':
			return i, nil
		}
	}
	return 0, fmt.Errorf("unbalanced parentheses")
}

// splitValues parses a comma-separated value tuple, honoring quoted strings.
func splitValues(s string) ([]Value, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []Value
	start := 0
	inStr := false
	flush := func(end int) error {
		v, err := ParseValue(s[start:end])
		if err != nil {
			return err
		}
		out = append(out, v)
		start = end + 1
		return nil
	}
	for i := 0; i < len(s); i++ {
		switch {
		case inStr:
			if s[i] == '\\' {
				i++
			} else if s[i] == '"' {
				inStr = false
			}
		case s[i] == '"':
			inStr = true
		case s[i] == ',':
			if err := flush(i); err != nil {
				return nil, err
			}
		}
	}
	if inStr {
		return nil, fmt.Errorf("trace: unterminated string in %q", s)
	}
	if err := flush(len(s)); err != nil {
		return nil, err
	}
	return out, nil
}
