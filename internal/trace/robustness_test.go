package trace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropTraceParserNeverPanics feeds the trace parser random byte soup
// and mutations of valid traces: clean return or error, never a panic.
func TestPropTraceParserNeverPanics(t *testing.T) {
	valid := `t0 fork t1
t1 act o0.put("a.com", 1)/nil
t0 join t1
t0 act o0.size()/1
`
	alphabet := []byte("t0123456789 forkjinacrelwd.vo()/,\"\\nil#\n")
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var src string
		if r.Intn(2) == 0 {
			n := r.Intn(200)
			b := make([]byte, n)
			for i := range b {
				b[i] = alphabet[r.Intn(len(alphabet))]
			}
			src = string(b)
		} else {
			src = valid
			i := r.Intn(len(src) - 5)
			j := i + 1 + r.Intn(4)
			switch r.Intn(3) {
			case 0:
				src = src[:i] + src[j:]
			case 1:
				src = src[:j] + src[i:j] + src[j:]
			default:
				src = src[:i] + "\"" + src[j:]
			}
		}
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("seed %d: parser panicked on %q: %v", seed, src, p)
			}
		}()
		if tr, err := ParseString(src); err == nil {
			// Whatever parsed must re-render and re-parse.
			if _, err := ParseString(Format(tr)); err != nil {
				t.Logf("seed %d: round trip broke: %v", seed, err)
				return false
			}
			_ = Validate(tr)
		}
		return true
	}, &quick.Config{MaxCount: 3000})
	if err != nil {
		t.Fatal(err)
	}
}
