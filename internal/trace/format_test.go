package trace

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestActionString(t *testing.T) {
	a := Action{Obj: 3, Method: "put", Args: []Value{StrValue("a.com"), IntValue(1)}, Rets: []Value{NilValue}}
	if got, want := a.String(), `o3.put("a.com", 1)/nil`; got != want {
		t.Fatalf("got %q want %q", got, want)
	}
	b := Action{Obj: 0, Method: "size", Rets: []Value{IntValue(2)}}
	if got, want := b.String(), "o0.size()/2"; got != want {
		t.Fatalf("got %q want %q", got, want)
	}
	c := Action{Obj: 1, Method: "clear"}
	if got, want := c.String(), "o1.clear()"; got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestActionOperands(t *testing.T) {
	a := Action{Method: "put", Args: []Value{IntValue(1), IntValue(2)}, Rets: []Value{IntValue(3)}}
	ops := a.Operands()
	if len(ops) != 3 || ops[0] != IntValue(1) || ops[2] != IntValue(3) {
		t.Fatalf("Operands = %v", ops)
	}
}

func TestParseAction(t *testing.T) {
	cases := []string{
		`o0.put("a.com", 1)/nil`,
		`o12.get("k")/nil`,
		`o1.size()/7`,
		`o2.transfer(1, 2, 50)/true, 950`,
		`o3.reset()`,
		`o4.put("comma, (paren", nil)/"x"`,
	}
	for _, s := range cases {
		a, err := ParseAction(s)
		if err != nil {
			t.Fatalf("ParseAction(%q): %v", s, err)
		}
		if got := a.String(); got != s {
			t.Fatalf("round trip %q -> %q", s, got)
		}
	}
}

func TestParseActionErrors(t *testing.T) {
	for _, s := range []string{
		"", "put(1)", "o.put(1)", "o1put(1)", "o1.(1)", "o1.put 1",
		"o1.put(1", `o1.put("x)`, "o1.put(1)2", "o1.put(1)/",
	} {
		if _, err := ParseAction(s); err == nil {
			t.Errorf("ParseAction(%q) should fail", s)
		}
	}
}

func TestEventStringParseRoundTrip(t *testing.T) {
	lines := []string{
		"t0 fork t1",
		"t1 join t2",
		"t3 acq l0",
		"t3 rel l0",
		"t2 read v7",
		"t2 write v7",
		"t0 begin",
		"t0 end",
		"t1 die o4",
		"t0 send c2",
		"t1 recv c2",
		`t1 act o0.put("a.com", 1)/nil`,
		"t0 act o0.size()/1",
	}
	for _, line := range lines {
		e, err := ParseEvent(line)
		if err != nil {
			t.Fatalf("ParseEvent(%q): %v", line, err)
		}
		if got := e.String(); got != line {
			t.Fatalf("round trip %q -> %q", line, got)
		}
	}
}

func TestParseEventErrors(t *testing.T) {
	for _, line := range []string{
		"", "fork t1", "t0 fork", "t0 fork l1", "t0 frob t1",
		"t0 acq t1", "t0 read o1", "t0 die t1", "tx act o0.f()",
		"t0 act", "t0 act put(1)",
	} {
		if _, err := ParseEvent(line); err == nil {
			t.Errorf("ParseEvent(%q) should fail", line)
		}
	}
}

func TestTraceParseIgnoresCommentsAndBlanks(t *testing.T) {
	src := `
# a comment
t0 fork t1

t1 act o0.get("k")/nil
# done
`
	tr, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("got %d events, want 2", tr.Len())
	}
	if tr.Events[0].Seq != 0 || tr.Events[1].Seq != 1 {
		t.Fatal("sequence numbers not assigned")
	}
}

func TestTraceParseReportsLine(t *testing.T) {
	_, err := ParseString("t0 fork t1\nbogus line\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 error, got %v", err)
	}
}

func TestTraceFormatRoundTrip(t *testing.T) {
	b := NewBuilder().
		Fork(0, 1).Fork(0, 2).
		Put(1, 0, StrValue("a.com"), IntValue(1), NilValue).
		Put(2, 0, StrValue("a.com"), IntValue(2), IntValue(1)).
		Acquire(1, 3).Release(1, 3).
		Join(0, 1).Join(0, 2).
		Size(0, 0, 1).
		Die(0, 0)
	tr := b.Trace()
	text := Format(tr)
	back, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("length %d -> %d", tr.Len(), back.Len())
	}
	for i := range tr.Events {
		if tr.Events[i].String() != back.Events[i].String() {
			t.Fatalf("event %d: %q -> %q", i, tr.Events[i].String(), back.Events[i].String())
		}
	}
}

func TestTraceHelpers(t *testing.T) {
	tr := NewBuilder().
		Fork(0, 5).
		Get(5, 1, StrValue("k"), NilValue).
		Size(0, 1, 0).
		Trace()
	if got := tr.Threads(); got != 6 {
		t.Fatalf("Threads = %d, want 6", got)
	}
	if got := len(tr.Actions()); got != 2 {
		t.Fatalf("Actions = %d, want 2", got)
	}
	empty := &Trace{}
	if empty.Threads() != 0 || empty.Len() != 0 {
		t.Fatal("empty trace accounting broken")
	}
}

func TestJoinAllBuilder(t *testing.T) {
	tr := NewBuilder().JoinAll(0, 1, 2, 3).Trace()
	if tr.Len() != 3 {
		t.Fatalf("JoinAll emitted %d events", tr.Len())
	}
	for i, e := range tr.Events {
		if e.Kind != JoinEvent || e.Thread != 0 || int(e.Other) != i+1 {
			t.Fatalf("event %d = %v", i, e)
		}
	}
}

func TestEventKindString(t *testing.T) {
	kinds := map[EventKind]string{
		ForkEvent: "fork", JoinEvent: "join", AcquireEvent: "acq",
		ReleaseEvent: "rel", ActionEvent: "act", ReadEvent: "read",
		WriteEvent: "write", BeginEvent: "begin", EndEvent: "end",
		DieEvent: "die", EventKind(77): "EventKind(77)",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("EventKind %d: got %q want %q", k, got, want)
		}
	}
}

func TestPropGeneratedTracesRoundTrip(t *testing.T) {
	cfg := DefaultGenConfig()
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := Generate(r, cfg)
		back, err := ParseString(Format(tr))
		if err != nil {
			t.Logf("parse error: %v", err)
			return false
		}
		if back.Len() != tr.Len() {
			return false
		}
		for i := range tr.Events {
			if tr.Events[i].String() != back.Events[i].String() {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropGeneratedTracesWellFormed(t *testing.T) {
	cfg := DefaultGenConfig()
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := Generate(r, cfg)
		// Every worker action happens after its fork and before its join;
		// lock ops are balanced per thread.
		forked := map[int]bool{0: true}
		joined := map[int]bool{}
		held := map[int]map[LockID]bool{}
		for _, e := range tr.Events {
			tid := int(e.Thread)
			if !forked[tid] || joined[tid] {
				return false
			}
			switch e.Kind {
			case ForkEvent:
				if forked[int(e.Other)] {
					return false
				}
				forked[int(e.Other)] = true
			case JoinEvent:
				joined[int(e.Other)] = true
			case AcquireEvent:
				if held[tid] == nil {
					held[tid] = map[LockID]bool{}
				}
				if held[tid][e.Lock] {
					return false
				}
				held[tid][e.Lock] = true
			case ReleaseEvent:
				if !held[tid][e.Lock] {
					return false
				}
				delete(held[tid], e.Lock)
			}
		}
		for _, h := range held {
			if len(h) != 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropGeneratedDictReturnsConsistent(t *testing.T) {
	// Replaying the generated trace against a reference dictionary must
	// reproduce the recorded return values (the trace is realizable).
	cfg := DefaultGenConfig()
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := Generate(r, cfg)
		dicts := map[ObjID]map[Value]Value{}
		stateOf := func(o ObjID) map[Value]Value {
			if dicts[o] == nil {
				dicts[o] = map[Value]Value{}
			}
			return dicts[o]
		}
		for _, e := range tr.Events {
			if e.Kind != ActionEvent {
				continue
			}
			d := stateOf(e.Act.Obj)
			switch e.Act.Method {
			case "put":
				prev, ok := d[e.Act.Args[0]]
				if !ok {
					prev = NilValue
				}
				if e.Act.Rets[0] != prev {
					return false
				}
				d[e.Act.Args[0]] = e.Act.Args[1]
			case "get":
				cur, ok := d[e.Act.Args[0]]
				if !ok {
					cur = NilValue
				}
				if e.Act.Rets[0] != cur {
					return false
				}
			case "size":
				var n int64
				for _, v := range d {
					if !v.IsNil() {
						n++
					}
				}
				if e.Act.Rets[0] != IntValue(n) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}
