package trace

import (
	"testing"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !NilValue.IsNil() || NilValue.Kind() != Nil {
		t.Fatal("NilValue must be nil-kinded")
	}
	v := IntValue(42)
	if v.Kind() != Int || v.Int() != 42 || v.IsNil() {
		t.Fatalf("IntValue broken: %v", v)
	}
	s := StrValue("hi")
	if s.Kind() != Str || s.Str() != "hi" {
		t.Fatalf("StrValue broken: %v", s)
	}
	bt, bf := BoolValue(true), BoolValue(false)
	if !bt.Bool() || bf.Bool() {
		t.Fatal("BoolValue broken")
	}
	if bt == bf {
		t.Fatal("true and false must differ")
	}
}

func TestValueComparable(t *testing.T) {
	if IntValue(1) != IntValue(1) {
		t.Fatal("equal ints must be ==")
	}
	if IntValue(0) == NilValue {
		t.Fatal("int 0 is not nil")
	}
	if StrValue("") == NilValue {
		t.Fatal("empty string is not nil")
	}
	m := map[Value]int{IntValue(1): 1, StrValue("1"): 2, NilValue: 3}
	if len(m) != 3 {
		t.Fatal("values must be distinct map keys")
	}
}

func TestValueString(t *testing.T) {
	cases := map[Value]string{
		NilValue:            "nil",
		IntValue(-3):        "-3",
		BoolValue(true):     "true",
		BoolValue(false):    "false",
		StrValue("a.com"):   `"a.com"`,
		StrValue(`q"uo,te`): `"q\"uo,te"`,
	}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", v, got, want)
		}
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	vals := []Value{
		NilValue, IntValue(0), IntValue(-17), IntValue(1 << 40),
		BoolValue(true), BoolValue(false),
		StrValue(""), StrValue("a.com"), StrValue(`comma, "quote"`),
	}
	for _, v := range vals {
		got, err := ParseValue(v.String())
		if err != nil {
			t.Fatalf("ParseValue(%s): %v", v, err)
		}
		if got != v {
			t.Fatalf("round trip %s -> %v", v, got)
		}
	}
}

func TestParseValueErrors(t *testing.T) {
	for _, s := range []string{"", "abc", `"unterminated`, "12x"} {
		if _, err := ParseValue(s); err == nil {
			t.Errorf("ParseValue(%q) should fail", s)
		}
	}
}

func TestValueLessTotalOrder(t *testing.T) {
	ordered := []Value{
		NilValue,
		IntValue(-1), IntValue(0), IntValue(5),
		StrValue("a"), StrValue("b"),
		BoolValue(false), BoolValue(true),
	}
	for i := range ordered {
		for j := range ordered {
			want := i < j
			if got := ordered[i].Less(ordered[j]); got != want {
				t.Errorf("%v < %v = %v, want %v", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestValuesFormat(t *testing.T) {
	got := Values([]Value{IntValue(1), StrValue("x"), NilValue})
	if got != `1, "x", nil` {
		t.Fatalf("Values = %q", got)
	}
	if Values(nil) != "" {
		t.Fatal("empty tuple should render empty")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Nil: "nil", Int: "int", Str: "string", Bool: "bool", Kind(99): "Kind(99)"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
