package trace

import "repro/internal/vclock"

// Builder offers a fluent way to construct traces in tests and examples.
//
//	tr := trace.NewBuilder().
//		Fork(0, 1).Fork(0, 2).
//		Put(2, dict, trace.StrValue("a.com"), c1, trace.NilValue).
//		Join(0, 1).
//		Trace()
type Builder struct {
	tr Trace
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Fork appends t fork u.
func (b *Builder) Fork(t, u vclock.Tid) *Builder {
	b.tr.Append(Fork(t, u))
	return b
}

// Join appends t join u.
func (b *Builder) Join(t, u vclock.Tid) *Builder {
	b.tr.Append(Join(t, u))
	return b
}

// JoinAll appends a join of t on each thread in us, modeling the paper's
// joinall statement.
func (b *Builder) JoinAll(t vclock.Tid, us ...vclock.Tid) *Builder {
	for _, u := range us {
		b.tr.Append(Join(t, u))
	}
	return b
}

// Acquire appends t acq l.
func (b *Builder) Acquire(t vclock.Tid, l LockID) *Builder {
	b.tr.Append(Acquire(t, l))
	return b
}

// Release appends t rel l.
func (b *Builder) Release(t vclock.Tid, l LockID) *Builder {
	b.tr.Append(Release(t, l))
	return b
}

// Act appends an action event by thread t.
func (b *Builder) Act(t vclock.Tid, o ObjID, method string, args []Value, rets []Value) *Builder {
	b.tr.Append(Act(t, Action{Obj: o, Method: method, Args: args, Rets: rets}))
	return b
}

// Read appends a memory read.
func (b *Builder) Read(t vclock.Tid, v VarID) *Builder {
	b.tr.Append(Read(t, v))
	return b
}

// Write appends a memory write.
func (b *Builder) Write(t vclock.Tid, v VarID) *Builder {
	b.tr.Append(Write(t, v))
	return b
}

// Die appends an object-death event.
func (b *Builder) Die(t vclock.Tid, o ObjID) *Builder {
	b.tr.Append(Die(t, o))
	return b
}

// Put appends the dictionary action o.put(k, v)/p.
func (b *Builder) Put(t vclock.Tid, o ObjID, k, v, p Value) *Builder {
	return b.Act(t, o, "put", []Value{k, v}, []Value{p})
}

// Get appends the dictionary action o.get(k)/v.
func (b *Builder) Get(t vclock.Tid, o ObjID, k, v Value) *Builder {
	return b.Act(t, o, "get", []Value{k}, []Value{v})
}

// Size appends the dictionary action o.size()/r.
func (b *Builder) Size(t vclock.Tid, o ObjID, r int64) *Builder {
	return b.Act(t, o, "size", nil, []Value{IntValue(r)})
}

// Trace returns the built trace.
func (b *Builder) Trace() *Trace { return &b.tr }
