package replay

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/specs"
	"repro/internal/trace"
)

func dictKinds(n int) map[trace.ObjID]string {
	out := map[trace.ObjID]string{}
	for i := 0; i < n; i++ {
		out[trace.ObjID(i)] = "dict"
	}
	return out
}

func TestRaceFreeTraceIsDeterministic(t *testing.T) {
	// Distinct hosts: no races, so all linearizations agree (Theorem 5.2).
	tr := trace.NewBuilder().
		Fork(0, 1).Fork(0, 2).
		Put(1, 0, trace.StrValue("a.com"), trace.IntValue(1), trace.NilValue).
		Put(2, 0, trace.StrValue("b.com"), trace.IntValue(2), trace.NilValue).
		JoinAll(0, 1, 2).
		Size(0, 0, 2).
		Trace()
	res, err := Check(tr, dictKinds(1), Config{Samples: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic {
		t.Fatalf("race-free trace flagged non-deterministic: %s", res.Witness)
	}
	if res.Samples != 50 {
		t.Errorf("samples = %d", res.Samples)
	}
}

func TestRacyTraceSection1IsNonDeterministic(t *testing.T) {
	// The Section 1 example: put(5,7) and get(5)/7 are concurrent. In the
	// linearization where the get runs first it must return nil, so the
	// recorded return is inconsistent — the replay finds a witness.
	tr := trace.NewBuilder().
		Fork(0, 1).
		Put(0, 0, trace.IntValue(5), trace.IntValue(7), trace.NilValue).
		Get(1, 0, trace.IntValue(5), trace.IntValue(7)).
		Trace()
	res, err := Check(tr, dictKinds(1), Config{Samples: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deterministic {
		t.Fatal("racy trace not caught")
	}
	if !strings.Contains(res.Witness, "get") && !strings.Contains(res.Witness, "ends in") {
		t.Errorf("witness: %s", res.Witness)
	}
}

func TestFig3RacyTraceNonDeterministic(t *testing.T) {
	// Fig 3: the overwriting put's return depends on the order.
	tr := trace.NewBuilder().
		Fork(0, 1).Fork(0, 2).
		Put(2, 0, trace.StrValue("a.com"), trace.IntValue(1), trace.NilValue).
		Put(1, 0, trace.StrValue("a.com"), trace.IntValue(2), trace.IntValue(1)).
		JoinAll(0, 1, 2).
		Size(0, 0, 1).
		Trace()
	res, err := Check(tr, dictKinds(1), Config{Samples: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deterministic {
		t.Fatal("Fig 3 race not caught by replay")
	}
}

func TestObservedOrderInconsistent(t *testing.T) {
	// A trace whose own order is already impossible.
	tr := trace.NewBuilder().
		Get(0, 0, trace.StrValue("k"), trace.IntValue(9)).
		Trace()
	res, err := Check(tr, dictKinds(1), Config{Samples: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deterministic || !strings.Contains(res.Witness, "observed order") {
		t.Fatalf("res = %+v", res)
	}
}

func TestMissingKindErrors(t *testing.T) {
	tr := trace.NewBuilder().Size(0, 7, 0).Trace()
	if _, err := Check(tr, dictKinds(1), Config{}); err == nil {
		t.Fatal("missing kind must error")
	}
}

func TestMultipleObjects(t *testing.T) {
	tr := trace.NewBuilder().
		Fork(0, 1).
		Put(0, 0, trace.StrValue("x"), trace.IntValue(1), trace.NilValue).
		Put(1, 1, trace.StrValue("y"), trace.IntValue(2), trace.NilValue).
		Trace()
	res, err := Check(tr, dictKinds(2), Config{Samples: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic {
		t.Fatalf("independent objects must be deterministic: %s", res.Witness)
	}
}

// TestPropTheorem52RaceFreeImpliesDeterministic is the Theorem 5.2 property
// test: generate random realizable dictionary traces, keep the race-free
// ones (per the detector), and check that replay finds them deterministic.
func TestPropTheorem52RaceFreeImpliesDeterministic(t *testing.T) {
	cfg := trace.DefaultGenConfig()
	rep := specs.MustRep("dict")
	kinds := dictKinds(cfg.Objects)
	raceFree := 0
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := trace.Generate(r, cfg)
		d := core.New(core.Config{MaxRaces: 1})
		for o := 0; o < cfg.Objects; o++ {
			d.Register(trace.ObjID(o), rep)
		}
		if err := d.RunTrace(tr); err != nil {
			t.Log(err)
			return false
		}
		if d.Stats().Races > 0 {
			return true // theorem only speaks about race-free traces
		}
		raceFree++
		res, err := Check(tr, kinds, Config{Samples: 15, Seed: seed})
		if err != nil {
			t.Log(err)
			return false
		}
		if !res.Deterministic {
			t.Logf("seed %d: race-free trace diverged: %s\n%s", seed, res.Witness, trace.Format(tr))
		}
		return res.Deterministic
	}, &quick.Config{MaxCount: 120})
	if err != nil {
		t.Fatal(err)
	}
	if raceFree == 0 {
		t.Error("no race-free traces generated; property is vacuous")
	}
}

// TestPropNonDeterminismImpliesRace is the contrapositive: whenever replay
// finds a divergence, the detector must have reported a race on that trace.
func TestPropNonDeterminismImpliesRace(t *testing.T) {
	cfg := trace.DefaultGenConfig()
	rep := specs.MustRep("dict")
	kinds := dictKinds(cfg.Objects)
	divergences := 0
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := trace.Generate(r, cfg)
		res, err := Check(tr, kinds, Config{Samples: 15, Seed: seed})
		if err != nil {
			t.Log(err)
			return false
		}
		if res.Deterministic {
			return true
		}
		divergences++
		d := core.New(core.Config{MaxRaces: 1})
		for o := 0; o < cfg.Objects; o++ {
			d.Register(trace.ObjID(o), rep)
		}
		if err := d.RunTrace(tr); err != nil {
			t.Log(err)
			return false
		}
		if d.Stats().Races == 0 {
			t.Logf("seed %d: divergence (%s) without any reported race\n%s",
				seed, res.Witness, trace.Format(tr))
			return false
		}
		return true
	}, &quick.Config{MaxCount: 120})
	if err != nil {
		t.Fatal(err)
	}
	if divergences == 0 {
		t.Log("note: no divergent traces sampled (racy traces may still replay equal)")
	}
}

func BenchmarkCheck(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	cfg := trace.DefaultGenConfig()
	cfg.OpsMin, cfg.OpsMax = 30, 30
	tr := trace.Generate(r, cfg)
	kinds := dictKinds(cfg.Objects)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Check(tr, kinds, Config{Samples: 10, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
