// Package replay implements a checker for Theorem 5.2 of the paper: if an
// observed trace has no commutativity races with respect to its
// happens-before relation and a sound specification, then every trace that
// admits the same happens-before relation (every linearization of the
// partial order) starts from the same state, stays well-defined, and ends
// in the same final state.
//
// The checker samples random linear extensions of a stamped trace's
// happens-before order and replays each against the reference semantics
// (package semantics). Stamped clocks may be shared segment snapshots (the
// hb Event.Clock immutability contract); the checker only compares them. A linearization "fails" when an action's recorded
// return values are impossible in the replayed state — exactly the
// observable symptom of non-determinism (e.g. the get(5) of Section 1
// returning 7 in one schedule and nil in another) — or when two
// linearizations reach different final states.
package replay

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/hb"
	"repro/internal/semantics"
	"repro/internal/trace"
)

// Config controls the determinism check.
type Config struct {
	// Samples is the number of random linearizations to replay (default 20).
	Samples int
	// Seed drives the linearization sampler.
	Seed int64
}

// Result reports the outcome of a determinism check.
type Result struct {
	// Deterministic is true when every sampled linearization replayed
	// without inconsistency and all reached the same final fingerprints.
	Deterministic bool
	// Witness describes the first divergence found (empty if none).
	Witness string
	// Samples is the number of linearizations actually replayed.
	Samples int
}

// Check stamps the trace (if needed) and samples linearizations of its
// happens-before order, replaying each. kinds maps every object appearing
// in the trace to its semantics kind (see semantics.New).
func Check(tr *trace.Trace, kinds map[trace.ObjID]string, cfg Config) (Result, error) {
	if cfg.Samples <= 0 {
		cfg.Samples = 20
	}
	// Stamp if the trace has unstamped events.
	needStamp := false
	for i := range tr.Events {
		if tr.Events[i].Clock == nil {
			needStamp = true
			break
		}
	}
	if needStamp {
		if err := hb.StampAll(tr); err != nil {
			return Result{}, err
		}
	}

	// Collect action events and their happens-before edges.
	var acts []*trace.Event
	for i := range tr.Events {
		e := &tr.Events[i]
		if e.Kind != trace.ActionEvent {
			continue
		}
		if _, ok := kinds[e.Act.Obj]; !ok {
			return Result{}, fmt.Errorf("replay: object o%d has no semantics kind", e.Act.Obj)
		}
		acts = append(acts, e)
	}
	n := len(acts)
	// preds[j] lists indices i with acts[i] ≺ acts[j].
	preds := make([][]int, n)
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			if happensBefore(acts[i], acts[j]) {
				preds[j] = append(preds[j], i)
			}
		}
	}

	// Reference replay: trace order itself (a valid linearization).
	baseline, err := replayOrder(acts, identity(n), kinds)
	if err != nil {
		return Result{Deterministic: false,
			Witness: fmt.Sprintf("the observed order itself is inconsistent: %v", err)}, nil
	}

	r := rand.New(rand.NewSource(cfg.Seed))
	res := Result{Deterministic: true, Samples: 1}
	for s := 1; s < cfg.Samples; s++ {
		order := randomLinearization(r, n, preds)
		res.Samples++
		fp, err := replayOrder(acts, order, kinds)
		if err != nil {
			res.Deterministic = false
			res.Witness = fmt.Sprintf("linearization %d: %v", s, err)
			return res, nil
		}
		if fp != baseline {
			res.Deterministic = false
			res.Witness = fmt.Sprintf("linearization %d ends in %s; observed order ends in %s",
				s, fp, baseline)
			return res, nil
		}
	}
	return res, nil
}

// happensBefore uses the stamped clocks: ei ≺ ej (for i earlier in the
// trace) iff vc(ei) ⊑ vc(ej).
func happensBefore(ei, ej *trace.Event) bool {
	return ei.Clock.LEQ(ej.Clock)
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// randomLinearization draws a uniform-ish random topological order of the
// precedence DAG.
func randomLinearization(r *rand.Rand, n int, preds [][]int) []int {
	remaining := make([]int, n) // unsatisfied predecessor counts
	succs := make([][]int, n)
	for j, ps := range preds {
		remaining[j] = len(ps)
		for _, i := range ps {
			succs[i] = append(succs[i], j)
		}
	}
	var ready []int
	for i := 0; i < n; i++ {
		if remaining[i] == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		k := r.Intn(len(ready))
		next := ready[k]
		ready[k] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, next)
		for _, s := range succs[next] {
			remaining[s]--
			if remaining[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return order
}

// replayOrder replays the actions in the given order against fresh
// machines and returns the combined final fingerprint.
func replayOrder(acts []*trace.Event, order []int, kinds map[trace.ObjID]string) (string, error) {
	machines := map[trace.ObjID]semantics.Machine{}
	for _, idx := range order {
		e := acts[idx]
		m, ok := machines[e.Act.Obj]
		if !ok {
			var err error
			m, err = semantics.New(kinds[e.Act.Obj])
			if err != nil {
				return "", err
			}
			machines[e.Act.Obj] = m
		}
		if err := m.Apply(e.Act); err != nil {
			return "", fmt.Errorf("event %d (%s): %w", e.Seq, e.Act, err)
		}
	}
	ids := make([]int, 0, len(machines))
	for o := range machines {
		ids = append(ids, int(o))
	}
	sort.Ints(ids)
	var b strings.Builder
	for _, o := range ids {
		fmt.Fprintf(&b, "o%d=%s;", o, machines[trace.ObjID(o)].Fingerprint())
	}
	return b.String(), nil
}
