package ecl

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// dictSrc is the Fig 6 dictionary specification in the spec language.
const dictSrc = `
# Dictionary commutativity specification (Fig 6 of the paper).
object dict

method put(k, v) / (p)
method get(k) / (v)
method size() / (r)

commute put(k1, v1)/(p1), put(k2, v2)/(p2)
    when k1 != k2 || (v1 == p1 && v2 == p2)
commute put(k1, v1)/(p1), get(k2)/(v2) when k1 != k2 || v1 == p1
commute put(k1, v1)/(p1), size()/(r)
    when (v1 == nil && p1 == nil) || (v1 != nil && p1 != nil)
commute get(k1)/(v1), get(k2)/(v2) when true
commute get(k1)/(v1), size()/(r) when true
commute size()/(r1), size()/(r2) when true
`

func parseDict(t *testing.T) *Spec {
	t.Helper()
	s, err := ParseSpec(dictSrc)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseDictionarySpec(t *testing.T) {
	s := parseDict(t)
	if s.Object != "dict" {
		t.Errorf("object = %q", s.Object)
	}
	if len(s.Methods) != 3 {
		t.Fatalf("methods = %d", len(s.Methods))
	}
	put, ok := s.Method("put")
	if !ok || len(put.Args) != 2 || len(put.Rets) != 1 || put.NumOps() != 3 {
		t.Fatalf("put signature wrong: %+v", put)
	}
	if len(s.Pairs) != 6 {
		t.Fatalf("pairs = %d, want 6", len(s.Pairs))
	}
	if err := s.CheckECL(); err != nil {
		t.Fatal(err)
	}
}

func put(k, v, p trace.Value) trace.Action {
	return trace.Action{Method: "put", Args: []trace.Value{k, v}, Rets: []trace.Value{p}}
}

func get(k, v trace.Value) trace.Action {
	return trace.Action{Method: "get", Args: []trace.Value{k}, Rets: []trace.Value{v}}
}

func sizeAct(r int64) trace.Action {
	return trace.Action{Method: "size", Rets: []trace.Value{trace.IntValue(r)}}
}

func TestDictSpecCommutes(t *testing.T) {
	s := parseDict(t)
	kA, kB := trace.StrValue("a"), trace.StrValue("b")
	cases := []struct {
		a, b trace.Action
		want bool
	}{
		{put(kA, v1, vNil), put(kB, v2, vNil), true}, // different keys
		{put(kA, v1, vNil), put(kA, v2, v1), false},  // same key writes
		{put(kA, v1, v1), put(kA, v1, v1), true},     // both no-ops
		{put(kA, v1, vNil), get(kA, v1), false},      // write vs read same key
		{put(kA, v1, vNil), get(kB, vNil), true},     // different keys
		{put(kA, v1, v1), get(kA, v1), true},         // no-op put vs get
		{put(kA, v1, vNil), sizeAct(1), false},       // resize vs size
		{put(kA, v2, v1), sizeAct(1), true},          // non-resizing put vs size
		{put(kA, vNil, v1), sizeAct(1), false},       // removal vs size
		{get(kA, v1), get(kA, v1), true},             // reads commute
		{get(kA, v1), sizeAct(0), true},
		{sizeAct(0), sizeAct(0), true},
	}
	for _, c := range cases {
		got, err := s.Commutes(c.a, c.b)
		if err != nil {
			t.Fatalf("Commutes(%s, %s): %v", c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("Commutes(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
		// Symmetry of the evaluation.
		rev, err := s.Commutes(c.b, c.a)
		if err != nil {
			t.Fatal(err)
		}
		if rev != got {
			t.Errorf("Commutes(%s, %s) asymmetric", c.a, c.b)
		}
	}
}

func TestCommutesErrors(t *testing.T) {
	s := parseDict(t)
	if _, err := s.Commutes(trace.Action{Method: "frob"}, sizeAct(0)); err == nil {
		t.Error("unknown method must error")
	}
	badArity := trace.Action{Method: "put", Args: []trace.Value{v1}}
	if _, err := s.Commutes(badArity, sizeAct(0)); err == nil {
		t.Error("arity mismatch must error")
	}
	if _, err := s.Commutes(sizeAct(0), badArity); err == nil {
		t.Error("arity mismatch on second action must error")
	}
}

func TestMissingPairDefaultsToFalse(t *testing.T) {
	src := `
object counter
method inc() / (r)
method dec() / (r)
commute inc()/(r1), inc()/(r2) when false
`
	s, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	f, defaulted := s.FormulaFor("inc", "dec")
	if !defaulted {
		t.Error("missing pair must be defaulted")
	}
	if b, ok := f.(Bool); !ok || bool(b) {
		t.Errorf("defaulted formula = %v, want false", f)
	}
	f2, d2 := s.FormulaFor("inc", "inc")
	if d2 {
		t.Error("specified pair reported defaulted")
	}
	if b, ok := f2.(Bool); !ok || bool(b) {
		t.Errorf("inc/inc formula = %v", f2)
	}
}

func TestFormulaForOrientation(t *testing.T) {
	// An asymmetric-looking pair: a's arg must differ from b's ret.
	src := `
object thing
method a(x)
method b() / (y)
commute a(x), b()/(y) when x != y
`
	s, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	fab, _ := s.FormulaFor("a", "b")
	if nq, ok := fab.(Neq); !ok || nq.I != 0 || nq.J != 0 {
		t.Fatalf("a-b formula = %v", fab)
	}
	fba, _ := s.FormulaFor("b", "a")
	if nq, ok := fba.(Neq); !ok || nq.I != 0 || nq.J != 0 {
		t.Fatalf("b-a formula = %v", fba)
	}
	// Evaluate both orientations on concrete actions.
	aAct := trace.Action{Method: "a", Args: []trace.Value{v1}}
	bAct := trace.Action{Method: "b", Rets: []trace.Value{v1}}
	c1, err := s.Commutes(aAct, bAct)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.Commutes(bAct, aAct)
	if err != nil {
		t.Fatal(err)
	}
	if c1 || c2 {
		t.Errorf("equal values must not commute: %v %v", c1, c2)
	}
}

func TestParseWordOperators(t *testing.T) {
	src := `
object s
method add(x) / (ok)
commute add(x1)/(o1), add(x2)/(o2) when x1 != x2 or not (o1 == true) and not (o2 == true)
`
	s, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	a1 := trace.Action{Method: "add", Args: []trace.Value{v1}, Rets: []trace.Value{trace.BoolValue(false)}}
	a2 := trace.Action{Method: "add", Args: []trace.Value{v1}, Rets: []trace.Value{trace.BoolValue(false)}}
	got, err := s.Commutes(a1, a2)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("two failed adds of the same element commute")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"", "missing 'object'"},
		{"object x", "declares no methods"},
		{"object x object y\nmethod m()", "duplicate object"},
		{"method m()", ""}, // missing object decl
		{"object x\nmethod m()\nmethod m()", "declared twice"},
		{"object x\nmethod m(a, a)", "duplicate operand"},
		{"object x\nmethod m()\ncommute q(), m() when true", "not declared"},
		{"object x\nmethod m(a)\ncommute m(), m(b) when true", "arity"},
		{"object x\nmethod m(a)\ncommute m(v), m(v) when true", "bound twice"},
		{"object x\nmethod m(a)\ncommute m(v), m(w) when z == 1", "unbound variable"},
		{"object x\nmethod m(a)\ncommute m(v), m(w) when v == w", "ECL only permits '!='"},
		{"object x\nmethod m(a)\ncommute m(v), m(w) when v < w", "ECL only permits '!='"},
		{"object x\nmethod m(a)\ncommute m(v), m(w) when v !=", "expected variable or literal"},
		{"object x\nmethod m(a)\ncommute m(v), m(w) when (v != w", "expected \")\""},
		{"object x\nmethod m(a)\ncommute m(v), m(w) if true", "expected 'when'"},
		{"object x\nmethod m(a)\ncommute m(v), m(w) when true\ncommute m(v), m(w) when true", "specified twice"},
		{"object x\nmethod m(a)\ncommute m(v), m(w) when v w", "expected comparison"},
		{"object x\n$", "unexpected character"},
		{"object x\nmethod m(a)\ncommute m(v), m(w) when v != \"unterminated", "unterminated string"},
	}
	for _, c := range cases {
		_, err := ParseSpecAny(c.src)
		if err == nil {
			t.Errorf("ParseSpecAny(%q) should fail", c.src)
			continue
		}
		if c.frag != "" && !strings.Contains(err.Error(), c.frag) {
			t.Errorf("ParseSpecAny(%q) error %q should mention %q", c.src, err, c.frag)
		}
	}
}

func TestParseSpecRejectsNonECL(t *testing.T) {
	// x1 != y2 || x1' != y2' is an X ∨ X disjunction: fine for the direct
	// detector (ParseSpecAny) but outside ECL (ParseSpec).
	src := `
object p
method m(a, b)
commute m(a1, b1), m(a2, b2) when a1 != a2 || b1 != b2
`
	if _, err := ParseSpecAny(src); err != nil {
		t.Fatalf("ParseSpecAny: %v", err)
	}
	_, err := ParseSpec(src)
	if err == nil || !strings.Contains(err.Error(), "disjunction") {
		t.Fatalf("ParseSpec should reject with a disjunction diagnostic, got %v", err)
	}
}

func TestParseErrorsCarryPositions(t *testing.T) {
	src := "object x\nmethod m(a)\ncommute m(v), m(w) when v == w"
	_, err := ParseSpecAny(src)
	if err == nil || !strings.Contains(err.Error(), "spec:3:") {
		t.Fatalf("want spec:3: position, got %v", err)
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	s := parseDict(t)
	rendered := s.String()
	back, err := ParseSpec(rendered)
	if err != nil {
		t.Fatalf("re-parse of rendered spec failed: %v\nrendered:\n%s", err, rendered)
	}
	// The re-parsed spec must agree with the original on a spread of action
	// pairs.
	kA, kB := trace.StrValue("a"), trace.StrValue("b")
	actions := []trace.Action{
		put(kA, v1, vNil), put(kA, v2, v1), put(kB, v1, v1), put(kA, vNil, v1),
		get(kA, v1), get(kB, vNil), sizeAct(0), sizeAct(2),
	}
	for _, a := range actions {
		for _, b := range actions {
			x, err := s.Commutes(a, b)
			if err != nil {
				t.Fatal(err)
			}
			y, err := back.Commutes(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if x != y {
				t.Errorf("round-trip disagreement on (%s, %s): %v vs %v", a, b, x, y)
			}
		}
	}
}

func TestMustParseSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseSpec should panic on bad input")
		}
	}()
	MustParseSpec("object x")
}

func TestParseLiteralKinds(t *testing.T) {
	src := `
object lits
method m(a) / (r)
commute m(a1)/(r1), m(a2)/(r2)
    when a1 == -5 && r1 == "str" && a2 == true && r2 == nil || a1 != a2
`
	s, err := ParseSpecAny(src)
	if err != nil {
		t.Fatal(err)
	}
	a := trace.Action{Method: "m", Args: []trace.Value{trace.IntValue(-5)}, Rets: []trace.Value{trace.StrValue("str")}}
	b := trace.Action{Method: "m", Args: []trace.Value{trace.BoolValue(true)}, Rets: []trace.Value{trace.NilValue}}
	got, err := s.Commutes(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("literal atoms should all hold")
	}
}

func TestMethodString(t *testing.T) {
	m := &Method{Name: "put", Args: []string{"k", "v"}, Rets: []string{"p"}}
	if got := m.String(); got != "put(k, v) / (p)" {
		t.Errorf("Method.String() = %q", got)
	}
	n := &Method{Name: "clear"}
	if got := n.String(); got != "clear()" {
		t.Errorf("Method.String() = %q", got)
	}
}

func TestVoidMethodAndEmptyReturns(t *testing.T) {
	src := `
object q
method clear()
method push(x)
commute clear(), clear() when false
commute clear(), push(x) when false
commute push(x1), push(x2) when x1 != x2
`
	s, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	c := trace.Action{Method: "clear"}
	p := trace.Action{Method: "push", Args: []trace.Value{v1}}
	got, err := s.Commutes(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("clear/push specified false")
	}
}

func TestParseSpecRejectsAsymmetricSameMethod(t *testing.T) {
	// ϕ_mm depends only on side 1: not symmetric (Definition 4.1).
	src := `
object x
method m(a)
commute m(a1), m(a2) when a1 == 0
`
	if _, err := ParseSpecAny(src); err != nil {
		t.Fatalf("ParseSpecAny must accept it: %v", err)
	}
	_, err := ParseSpec(src)
	if err == nil || !strings.Contains(err.Error(), "not symmetric") {
		t.Fatalf("want symmetry rejection, got %v", err)
	}
}

func TestCheckSymmetryAcceptsSymmetricSpecs(t *testing.T) {
	s := parseDict(t)
	if err := s.CheckSymmetry(500); err != nil {
		t.Fatalf("dictionary spec is symmetric: %v", err)
	}
}
