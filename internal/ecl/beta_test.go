package ecl

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func norm(t *testing.T, a Atom, m string) AtomKey {
	t.Helper()
	k, _ := NormalizeAtom(a, m)
	return k
}

func TestNormalizeAtomCanonicalizes(t *testing.T) {
	// v == p and p == v normalize identically.
	a := Atom{Side: 1, Op: OpEq, L: Var(1, 1), R: Var(1, 2)}
	b := Atom{Side: 2, Op: OpEq, L: Var(2, 2), R: Var(2, 1)}
	if norm(t, a, "put") != norm(t, b, "put") {
		t.Error("symmetric == operands must normalize identically")
	}
	// x != y reduces to negated x == y.
	ne := Atom{Side: 1, Op: OpNe, L: Var(1, 1), R: Var(1, 2)}
	kNe, negNe := NormalizeAtom(ne, "put")
	kEq, negEq := NormalizeAtom(a, "put")
	if kNe != kEq || !negNe || negEq {
		t.Error("!= must normalize to negated ==")
	}
	// x > 5 normalizes to 5 < x.
	g := Atom{Side: 1, Op: OpGt, L: Var(1, 0), R: Const(trace.IntValue(5))}
	l := Atom{Side: 1, Op: OpLt, L: Const(trace.IntValue(5)), R: Var(1, 0)}
	if norm(t, g, "m") != norm(t, l, "m") {
		t.Error("> must normalize to flipped <")
	}
	// x >= y and y <= x both reduce to ¬(x < y).
	ge := Atom{Side: 1, Op: OpGe, L: Var(1, 0), R: Var(1, 1)}
	le := Atom{Side: 1, Op: OpLe, L: Var(1, 1), R: Var(1, 0)}
	lt := Atom{Side: 1, Op: OpLt, L: Var(1, 0), R: Var(1, 1)}
	kGe, negGe := NormalizeAtom(ge, "m")
	kLe, negLe := NormalizeAtom(le, "m")
	kLt, negLt := NormalizeAtom(lt, "m")
	if kGe != kLe || negGe != negLe {
		t.Error(">= and flipped <= must coincide")
	}
	if kGe != kLt || !negGe || negLt {
		t.Error("x >= y must be the negation of the x < y atom")
	}
	// Ordered comparisons are not symmetric: x < y stays distinct from y < x.
	lt2 := Atom{Side: 1, Op: OpLt, L: Var(1, 1), R: Var(1, 0)}
	if norm(t, lt, "m") == norm(t, lt2, "m") {
		t.Error("x < y must differ from y < x")
	}
	// Sides are dropped: the same atom from side 1 or side 2 coincides.
	s1 := Atom{Side: 1, Op: OpEq, L: Var(1, 0), R: Const(trace.NilValue)}
	s2 := Atom{Side: 2, Op: OpEq, L: Var(2, 0), R: Const(trace.NilValue)}
	if norm(t, s1, "put") != norm(t, s2, "put") {
		t.Error("normalization must drop the side distinction")
	}
	// Different methods never collide.
	if norm(t, s1, "put") == norm(t, s1, "get") {
		t.Error("atoms of different methods must differ")
	}
}

func TestAtomKeyEvalAndDescribe(t *testing.T) {
	k := norm(t, Atom{Side: 1, Op: OpEq, L: Var(1, 1), R: Var(1, 2)}, "put")
	got, err := k.Eval([]trace.Value{trace.StrValue("a"), v1, v1})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("v == p should hold")
	}
	got, err = k.Eval([]trace.Value{trace.StrValue("a"), v1, v2})
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("v == p should fail")
	}
	if _, err := k.Eval([]trace.Value{v1}); err == nil {
		t.Error("short operand tuple must error")
	}
	m := &Method{Name: "put", Args: []string{"k", "v"}, Rets: []string{"p"}}
	if d := k.Describe(m); d != "v == p" {
		t.Errorf("Describe = %q", d)
	}
	if d := k.String(); d != "w2 == w3" {
		t.Errorf("String = %q", d)
	}
}

func TestAtomsForDictionary(t *testing.T) {
	s := parseDict(t)
	// B(Φ, put) = {v = p, v = nil, p = nil} (the paper's example in §6.2).
	atoms := s.AtomsFor("put")
	if len(atoms) != 3 {
		t.Fatalf("B(Φ, put) has %d atoms: %v", len(atoms), atoms)
	}
	putM, _ := s.Method("put")
	rendered := make([]string, len(atoms))
	for i, a := range atoms {
		rendered[i] = a.Describe(putM)
	}
	joined := strings.Join(rendered, "; ")
	for _, want := range []string{"v == p", "v == nil", "p == nil"} {
		if !strings.Contains(joined, want) {
			t.Errorf("B(Φ, put) = %q missing %q", joined, want)
		}
	}
	// get and size have no LB atoms.
	if got := s.AtomsFor("get"); len(got) != 0 {
		t.Errorf("B(Φ, get) = %v, want empty", got)
	}
	if got := s.AtomsFor("size"); len(got) != 0 {
		t.Errorf("B(Φ, size) = %v, want empty", got)
	}
}

func TestBetaOfPaperExample(t *testing.T) {
	// §6.2 example: a = o.put(5, 6)/nil gives
	// β = {v = p ↦ false, v = nil ↦ false, p = nil ↦ true}.
	s := parseDict(t)
	atoms := s.AtomsFor("put")
	a := put(trace.IntValue(5), trace.IntValue(6), trace.NilValue)
	beta, err := BetaOf(atoms, a)
	if err != nil {
		t.Fatal(err)
	}
	env := EnvFromBeta(atoms, beta)
	vEqP := norm(t, Atom{Side: 1, Op: OpEq, L: Var(1, 1), R: Var(1, 2)}, "put")
	vNilA := norm(t, Atom{Side: 1, Op: OpEq, L: Var(1, 1), R: Const(trace.NilValue)}, "put")
	pNilA := norm(t, Atom{Side: 1, Op: OpEq, L: Var(1, 2), R: Const(trace.NilValue)}, "put")
	if env(vEqP) {
		t.Error("v = p must be false")
	}
	if env(vNilA) {
		t.Error("v = nil must be false")
	}
	if !env(pNilA) {
		t.Error("p = nil must be true")
	}
	putM, _ := s.Method("put")
	desc := DescribeBeta(atoms, putM, beta)
	if !strings.Contains(desc, "↦") {
		t.Errorf("DescribeBeta = %q", desc)
	}
}

func TestDescribeBetaEmpty(t *testing.T) {
	if got := DescribeBeta(nil, nil, 0); got != "∅" {
		t.Errorf("empty β = %q", got)
	}
}

func TestBetaOfErrors(t *testing.T) {
	s := parseDict(t)
	atoms := s.AtomsFor("put")
	short := trace.Action{Method: "put", Args: []trace.Value{v1}}
	if _, err := BetaOf(atoms, short); err == nil {
		t.Error("short action must error")
	}
	many := make([]AtomKey, MaxAtoms+1)
	if _, err := BetaOf(many, put(v1, v1, v1)); err == nil {
		t.Error("too many atoms must error")
	}
}

func TestResidualOfFig6PutPut(t *testing.T) {
	// ϕ_put_put[β1; β2] = k1 ≠ k2 ∨ (β1(v=p) ∧ β2(v=p)).
	s := parseDict(t)
	f, _ := s.FormulaFor("put", "put")
	atoms := s.AtomsFor("put")
	noop := put(trace.StrValue("a"), v1, v1)    // v = p true
	write := put(trace.StrValue("a"), v1, vNil) // v = p false
	betaOf := func(a trace.Action) func(AtomKey) bool {
		b, err := BetaOf(atoms, a)
		if err != nil {
			t.Fatal(err)
		}
		return EnvFromBeta(atoms, b)
	}
	// Both no-ops: residual ≡ true.
	r, err := ResidualOf(f, "put", "put", betaOf(noop), betaOf(noop))
	if err != nil {
		t.Fatal(err)
	}
	if !r.True() {
		t.Errorf("noop/noop residual = %v, want true", r)
	}
	// One write: residual = k1 ≠ k2.
	r, err = ResidualOf(f, "put", "put", betaOf(write), betaOf(noop))
	if err != nil {
		t.Fatal(err)
	}
	if r.False || len(r.Neqs) != 1 || r.Neqs[0] != [2]int{0, 0} {
		t.Errorf("write/noop residual = %v, want k1 != k2", r)
	}
}

func TestResidualOfFig6PutSize(t *testing.T) {
	s := parseDict(t)
	f, _ := s.FormulaFor("put", "size")
	atoms := s.AtomsFor("put")
	noEnv := func(AtomKey) bool { return false }
	resize := put(trace.StrValue("a"), v1, vNil) // v ≠ nil, p = nil: resizes
	same := put(trace.StrValue("a"), v2, v1)     // both non-nil: size unchanged
	betaOf := func(a trace.Action) func(AtomKey) bool {
		b, err := BetaOf(atoms, a)
		if err != nil {
			t.Fatal(err)
		}
		return EnvFromBeta(atoms, b)
	}
	r, err := ResidualOf(f, "put", "size", betaOf(resize), noEnv)
	if err != nil {
		t.Fatal(err)
	}
	if !r.False {
		t.Errorf("resizing put vs size residual = %v, want false", r)
	}
	r, err = ResidualOf(f, "put", "size", betaOf(same), noEnv)
	if err != nil {
		t.Fatal(err)
	}
	if !r.True() {
		t.Errorf("non-resizing put vs size residual = %v, want true", r)
	}
}

func TestResidualStringAndEval(t *testing.T) {
	r := Residual{Neqs: [][2]int{{0, 0}, {1, 2}}}
	if s := r.String(); !strings.Contains(s, "x1.0 != x2.0") || !strings.Contains(s, "&&") {
		t.Errorf("String = %q", s)
	}
	if (Residual{False: true}).String() != "false" {
		t.Error("false residual string")
	}
	if (Residual{}).String() != "true" {
		t.Error("true residual string")
	}
	ok, err := r.Eval([]trace.Value{v1, v2, v1}, []trace.Value{v2, v1, v2})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("second conjunct 2 != 2 fails: want false")
	}
	ok, err = r.Eval([]trace.Value{v1, v2, v1}, []trace.Value{v2, v1, trace.IntValue(9)})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("all conjuncts hold: want true")
	}
	if ok, _ := (Residual{False: true}).Eval(nil, nil); ok {
		t.Error("false residual must evaluate false")
	}
	if _, err := r.Eval([]trace.Value{v2}, []trace.Value{v1, v1, v1}); err == nil {
		t.Error("short tuple must error")
	}
}

func TestConjoinDedupes(t *testing.T) {
	l := Residual{Neqs: [][2]int{{0, 0}}}
	r := Residual{Neqs: [][2]int{{0, 0}, {1, 1}}}
	got := conjoin(l, r)
	if len(got.Neqs) != 2 {
		t.Errorf("conjoin = %v", got)
	}
	if got = conjoin(l, Residual{False: true}); !got.False {
		t.Error("conjoin with false must be false")
	}
}

func TestPropLemma64ResidualAgreesWithEval(t *testing.T) {
	// Lemma 6.4: fixing the LB atom values reduces an ECL formula to LS.
	// Concretely: for any pair of dictionary actions, evaluating the full
	// formula must equal evaluating the residual computed from the two β
	// vectors.
	s := parseDict(t)
	methods := []string{"put", "get", "size"}
	atomsOf := map[string][]AtomKey{}
	for _, m := range methods {
		atomsOf[m] = s.AtomsFor(m)
	}
	keys := []trace.Value{trace.StrValue("a"), trace.StrValue("b"), trace.StrValue("c")}
	vals := []trace.Value{vNil, v1, v2}
	randAct := func(r *rand.Rand) trace.Action {
		switch r.Intn(3) {
		case 0:
			return put(keys[r.Intn(3)], vals[r.Intn(3)], vals[r.Intn(3)])
		case 1:
			return get(keys[r.Intn(3)], vals[r.Intn(3)])
		default:
			return sizeAct(int64(r.Intn(3)))
		}
	}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randAct(r), randAct(r)
		f, _ := s.FormulaFor(a.Method, b.Method)
		want, err := Eval(f, a.Operands(), b.Operands())
		if err != nil {
			t.Log(err)
			return false
		}
		ba, err := BetaOf(atomsOf[a.Method], a)
		if err != nil {
			t.Log(err)
			return false
		}
		bb, err := BetaOf(atomsOf[b.Method], b)
		if err != nil {
			t.Log(err)
			return false
		}
		res, err := ResidualOf(f, a.Method, b.Method,
			EnvFromBeta(atomsOf[a.Method], ba), EnvFromBeta(atomsOf[b.Method], bb))
		if err != nil {
			t.Log(err)
			return false
		}
		got, err := res.Eval(a.Operands(), b.Operands())
		if err != nil {
			t.Log(err)
			return false
		}
		if got != want {
			t.Logf("a=%s b=%s full=%v residual(%s)=%v", a, b, want, res, got)
		}
		return got == want
	}, &quick.Config{MaxCount: 3000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestResidualOfRejectsNonECL(t *testing.T) {
	bad := Or{Neq{0, 0}, Neq{1, 1}}
	env := func(AtomKey) bool { return false }
	if _, err := ResidualOf(bad, "m", "m", env, env); err == nil {
		t.Error("X ∨ X must be rejected")
	}
	if _, err := ResidualOf(Not{Neq{0, 0}}, "m", "m", env, env); err == nil {
		t.Error("¬S must be rejected")
	}
}

func TestEnvFromBetaUnknownAtomFailsClosed(t *testing.T) {
	env := EnvFromBeta(nil, 0)
	if env(AtomKey{Method: "x"}) {
		t.Error("unknown atom must read false")
	}
}
