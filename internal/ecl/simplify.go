package ecl

// Simplify performs semantics-preserving structural simplification:
// constant folding (true ∧ X = X, false ∨ X = X, ¬¬X = X, …), folding of
// atoms whose operands are both constants, and pruning of short-circuited
// branches. The result is logically equivalent to the input and never
// leaves a fragment (simplifying an LS/LB/ECL formula yields a formula in
// the same fragment, or a smaller one).
func Simplify(f Formula) Formula {
	switch f := f.(type) {
	case Bool, Neq:
		return f
	case Atom:
		if !f.L.IsVar && !f.R.IsVar {
			return Bool(f.Op.apply(f.L.Val, f.R.Val))
		}
		// A variable compared to itself folds for reflexive operators.
		if f.L.IsVar && f.R.IsVar && f.L.Side == f.R.Side && f.L.Index == f.R.Index {
			switch f.Op {
			case OpEq, OpLe, OpGe:
				return Bool(true)
			case OpNe, OpLt, OpGt:
				return Bool(false)
			}
		}
		return f
	case Not:
		inner := Simplify(f.F)
		if b, ok := inner.(Bool); ok {
			return Bool(!bool(b))
		}
		if n, ok := inner.(Not); ok {
			return n.F
		}
		return Not{inner}
	case And:
		l, r := Simplify(f.L), Simplify(f.R)
		if lb, ok := l.(Bool); ok {
			if !bool(lb) {
				return Bool(false)
			}
			return r
		}
		if rb, ok := r.(Bool); ok {
			if !bool(rb) {
				return Bool(false)
			}
			return l
		}
		return And{l, r}
	case Or:
		l, r := Simplify(f.L), Simplify(f.R)
		if lb, ok := l.(Bool); ok {
			if bool(lb) {
				return Bool(true)
			}
			return r
		}
		if rb, ok := r.(Bool); ok {
			if bool(rb) {
				return Bool(true)
			}
			return l
		}
		return Or{l, r}
	default:
		return f
	}
}

// Size counts the AST nodes of a formula.
func Size(f Formula) int {
	switch f := f.(type) {
	case Not:
		return 1 + Size(f.F)
	case And:
		return 1 + Size(f.L) + Size(f.R)
	case Or:
		return 1 + Size(f.L) + Size(f.R)
	default:
		return 1
	}
}
