package ecl

import (
	"fmt"
	"strconv"

	"repro/internal/trace"
)

// ParseSpec parses a specification source file into a Spec and verifies
// that every commute formula lies in the ECL fragment and that same-method
// formulas are symmetric (probabilistically; Definition 4.1). Use
// ParseSpecAny to accept arbitrary (non-ECL) specifications for the direct
// detector.
func ParseSpec(src string) (*Spec, error) {
	s, err := ParseSpecAny(src)
	if err != nil {
		return nil, err
	}
	if err := s.CheckECL(); err != nil {
		return nil, err
	}
	if err := s.CheckSymmetry(0); err != nil {
		return nil, err
	}
	return s, nil
}

// ParseSpecAny parses a specification without requiring ECL membership.
func ParseSpecAny(src string) (*Spec, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.spec()
}

// MustParseSpec is ParseSpec, panicking on error; intended for compiled-in
// specifications.
func MustParseSpec(src string) *Spec {
	s, err := ParseSpec(src)
	if err != nil {
		panic(err)
	}
	return s
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(t token, format string, args ...interface{}) error {
	return fmt.Errorf("spec:%d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != s {
		return p.errf(t, "expected %q, got %s", s, t)
	}
	return nil
}

func (p *parser) atPunct(s string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) atIdent(s string) bool {
	t := p.cur()
	return t.kind == tokIdent && t.text == s
}

// spec := { "object" IDENT | "method" sig | "commute" clause }
func (p *parser) spec() (*Spec, error) {
	spec := NewSpec("")
	sawObject := false
	for {
		t := p.cur()
		if t.kind == tokEOF {
			break
		}
		if t.kind != tokIdent {
			return nil, p.errf(t, "expected declaration keyword, got %s", t)
		}
		switch t.text {
		case "object":
			p.next()
			name := p.next()
			if name.kind != tokIdent {
				return nil, p.errf(name, "expected object name, got %s", name)
			}
			if sawObject {
				return nil, p.errf(t, "duplicate object declaration")
			}
			sawObject = true
			spec.Object = name.text
		case "method":
			p.next()
			if err := p.methodDecl(spec); err != nil {
				return nil, err
			}
		case "commute":
			p.next()
			if err := p.commuteClause(spec); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf(t, "expected 'object', 'method' or 'commute', got %s", t)
		}
	}
	if !sawObject {
		return nil, fmt.Errorf("spec: missing 'object' declaration")
	}
	if len(spec.Methods) == 0 {
		return nil, fmt.Errorf("spec: object %q declares no methods", spec.Object)
	}
	return spec, nil
}

// methodDecl := IDENT "(" [names] ")" [ "/" retNames ]
func (p *parser) methodDecl(spec *Spec) error {
	name := p.next()
	if name.kind != tokIdent {
		return p.errf(name, "expected method name, got %s", name)
	}
	args, err := p.nameTuple()
	if err != nil {
		return err
	}
	var rets []string
	if p.atPunct("/") {
		p.next()
		rets, err = p.retNames()
		if err != nil {
			return err
		}
	}
	if _, err := spec.AddMethod(name.text, args, rets); err != nil {
		return p.errf(name, "%v", err)
	}
	return nil
}

// nameTuple := "(" [ IDENT { "," IDENT } ] ")"
func (p *parser) nameTuple() ([]string, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var names []string
	if p.atPunct(")") {
		p.next()
		return nil, nil
	}
	for {
		t := p.next()
		if t.kind != tokIdent {
			return nil, p.errf(t, "expected name, got %s", t)
		}
		names = append(names, t.text)
		t = p.next()
		if t.kind == tokPunct && t.text == ")" {
			return names, nil
		}
		if t.kind != tokPunct || t.text != "," {
			return nil, p.errf(t, "expected ',' or ')', got %s", t)
		}
	}
}

// retNames := IDENT | nameTuple
func (p *parser) retNames() ([]string, error) {
	if p.atPunct("(") {
		return p.nameTuple()
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, p.errf(t, "expected return name or '(', got %s", t)
	}
	return []string{t.text}, nil
}

// binding maps a variable name to its invocation side and operand index.
type binding struct {
	side  int
	index int
}

// commuteClause := inv "," inv "when" formula
func (p *parser) commuteClause(spec *Spec) error {
	bindings := map[string]binding{}
	m1, err := p.invocation(spec, 1, bindings)
	if err != nil {
		return err
	}
	if err := p.expectPunct(","); err != nil {
		return err
	}
	m2, err := p.invocation(spec, 2, bindings)
	if err != nil {
		return err
	}
	t := p.next()
	if t.kind != tokIdent || t.text != "when" {
		return p.errf(t, "expected 'when', got %s", t)
	}
	f, err := p.formula(bindings)
	if err != nil {
		return err
	}
	if err := spec.SetPair(m1, m2, f); err != nil {
		return p.errf(t, "%v", err)
	}
	return nil
}

// invocation := IDENT "(" [names] ")" [ "/" retNames ] with arity checked
// against the declared method; binds each name to (side, operand index).
func (p *parser) invocation(spec *Spec, side int, bindings map[string]binding) (string, error) {
	name := p.next()
	if name.kind != tokIdent {
		return "", p.errf(name, "expected method name, got %s", name)
	}
	m, ok := spec.Method(name.text)
	if !ok {
		return "", p.errf(name, "method %q not declared", name.text)
	}
	args, err := p.nameTuple()
	if err != nil {
		return "", err
	}
	var rets []string
	if p.atPunct("/") {
		p.next()
		rets, err = p.retNames()
		if err != nil {
			return "", err
		}
	}
	if len(args) != len(m.Args) || len(rets) != len(m.Rets) {
		return "", p.errf(name, "invocation of %s has arity (%d)/(%d); declared %s", m.Name, len(args), len(rets), m)
	}
	all := append(append([]string{}, args...), rets...)
	for i, n := range all {
		if _, dup := bindings[n]; dup {
			return "", p.errf(name, "variable %q bound twice in commute clause", n)
		}
		bindings[n] = binding{side: side, index: i}
	}
	return m.Name, nil
}

// formula  := disj
// disj     := conj { ("||" | "or") conj }
// conj     := unary { ("&&" | "and") unary }
// unary    := ("!" | "not") unary | "(" formula ")" | "true" | "false" | atom
// atom     := term cmp term
// term     := IDENT | literal
func (p *parser) formula(b map[string]binding) (Formula, error) {
	return p.disj(b)
}

func (p *parser) disj(b map[string]binding) (Formula, error) {
	l, err := p.conj(b)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if (t.kind == tokOp && t.text == "||") || (t.kind == tokIdent && t.text == "or") {
			p.next()
			r, err := p.conj(b)
			if err != nil {
				return nil, err
			}
			l = Or{l, r}
			continue
		}
		return l, nil
	}
}

func (p *parser) conj(b map[string]binding) (Formula, error) {
	l, err := p.unary(b)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if (t.kind == tokOp && t.text == "&&") || (t.kind == tokIdent && t.text == "and") {
			p.next()
			r, err := p.unary(b)
			if err != nil {
				return nil, err
			}
			l = And{l, r}
			continue
		}
		return l, nil
	}
}

func (p *parser) unary(b map[string]binding) (Formula, error) {
	t := p.cur()
	if (t.kind == tokOp && t.text == "!") || (t.kind == tokIdent && t.text == "not") {
		p.next()
		f, err := p.unary(b)
		if err != nil {
			return nil, err
		}
		return Not{f}, nil
	}
	if p.atPunct("(") {
		p.next()
		f, err := p.formula(b)
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	if p.atIdent("true") {
		p.next()
		return Bool(true), nil
	}
	if p.atIdent("false") {
		p.next()
		return Bool(false), nil
	}
	return p.atom(b)
}

func (p *parser) atom(b map[string]binding) (Formula, error) {
	l, err := p.term(b)
	if err != nil {
		return nil, err
	}
	opTok := p.next()
	if opTok.kind != tokOp {
		return nil, p.errf(opTok, "expected comparison operator, got %s", opTok)
	}
	var op CmpOp
	switch opTok.text {
	case "==":
		op = OpEq
	case "!=":
		op = OpNe
	case "<":
		op = OpLt
	case "<=":
		op = OpLe
	case ">":
		op = OpGt
	case ">=":
		op = OpGe
	default:
		return nil, p.errf(opTok, "expected comparison operator, got %s", opTok)
	}
	r, err := p.term(b)
	if err != nil {
		return nil, err
	}
	return p.buildAtom(opTok, op, l, r)
}

// buildAtom classifies an atom: constant folding, single-side LB atom, or
// the cross-side LS inequality.
func (p *parser) buildAtom(opTok token, op CmpOp, l, r Term) (Formula, error) {
	switch {
	case !l.IsVar && !r.IsVar:
		return Bool(op.apply(l.Val, r.Val)), nil
	case l.IsVar && r.IsVar && l.Side != r.Side:
		if op != OpNe {
			return nil, p.errf(opTok,
				"comparison %q relates variables of both invocations; ECL only permits '!=' across invocations", opTok.text)
		}
		if l.Side == 1 {
			return Neq{I: l.Index, J: r.Index}, nil
		}
		return Neq{I: r.Index, J: l.Index}, nil
	default:
		side := l.Side
		if !l.IsVar {
			side = r.Side
		}
		return Atom{Side: side, Op: op, L: l, R: r}, nil
	}
}

func (p *parser) term(b map[string]binding) (Term, error) {
	t := p.next()
	switch t.kind {
	case tokIdent:
		switch t.text {
		case "nil":
			return Const(trace.NilValue), nil
		case "true":
			return Const(trace.BoolValue(true)), nil
		case "false":
			return Const(trace.BoolValue(false)), nil
		}
		bind, ok := b[t.text]
		if !ok {
			return Term{}, p.errf(t, "unbound variable %q", t.text)
		}
		return Var(bind.side, bind.index), nil
	case tokInt:
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Term{}, p.errf(t, "bad integer %s", t)
		}
		return Const(trace.IntValue(n)), nil
	case tokStr:
		s, err := strconv.Unquote(t.text)
		if err != nil {
			return Term{}, p.errf(t, "bad string %s", t)
		}
		return Const(trace.StrValue(s)), nil
	default:
		return Term{}, p.errf(t, "expected variable or literal, got %s", t)
	}
}
