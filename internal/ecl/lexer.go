package ecl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// The specification language is line-oriented only in its comments; tokens
// otherwise flow freely:
//
//	# Dictionary commutativity (Fig 6 of the paper).
//	object dict
//
//	method put(k, v) / (p)
//	method get(k) / (v)
//	method size() / (r)
//
//	commute put(k1, v1)/(p1), put(k2, v2)/(p2)
//	    when k1 != k2 || (v1 == p1 && v2 == p2)
//	commute put(k, v)/(p), get(k2)/(v2)   when k != k2 || v == p
//	commute put(k, v)/(p), size()/(r)
//	    when (v == nil && p == nil) || (v != nil && p != nil)
//	commute get(k1)/(v1), get(k2)/(v2)    when true
//	commute get(k)/(v), size()/(r)        when true
//	commute size()/(r1), size()/(r2)      when true
//
// Keywords: object, method, commute, when, true, false, nil, and, or, not.
// Operators: == != < <= > >= && || ! and the punctuation ( ) , /.
// Comments run from '#' or '//' to end of line.

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokStr
	tokPunct // ( ) , /
	tokOp    // == != < <= > >= && || !
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return strconv.Quote(t.text)
}

type lexError struct {
	line, col int
	msg       string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("spec:%d:%d: %s", e.line, e.col, e.msg)
}

func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	advance := func(n int) {
		for k := 0; k < n; k++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '#' || (c == '/' && i+1 < len(src) && src[i+1] == '/'):
			for i < len(src) && src[i] != '\n' {
				advance(1)
			}
		case c == '(' || c == ')' || c == ',' || c == '/':
			toks = append(toks, token{tokPunct, string(c), line, col})
			advance(1)
		case c == '"':
			start, sl, sc := i, line, col
			advance(1)
			for i < len(src) && src[i] != '"' {
				if src[i] == '\\' && i+1 < len(src) {
					advance(1)
				}
				advance(1)
			}
			if i >= len(src) {
				return nil, &lexError{sl, sc, "unterminated string literal"}
			}
			advance(1)
			text := src[start:i]
			if _, err := strconv.Unquote(text); err != nil {
				return nil, &lexError{sl, sc, "bad string literal " + text}
			}
			toks = append(toks, token{tokStr, text, sl, sc})
		case strings.IndexByte("=!<>&|", c) >= 0:
			sl, sc := line, col
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=", "&&", "||":
				toks = append(toks, token{tokOp, two, sl, sc})
				advance(2)
				continue
			}
			switch c {
			case '<', '>', '!':
				toks = append(toks, token{tokOp, string(c), sl, sc})
				advance(1)
			default:
				return nil, &lexError{sl, sc, fmt.Sprintf("unexpected character %q", c)}
			}
		case c == '-' || unicode.IsDigit(rune(c)):
			start, sl, sc := i, line, col
			advance(1)
			for i < len(src) && unicode.IsDigit(rune(src[i])) {
				advance(1)
			}
			text := src[start:i]
			if text == "-" {
				return nil, &lexError{sl, sc, "expected digits after '-'"}
			}
			toks = append(toks, token{tokInt, text, sl, sc})
		case unicode.IsLetter(rune(c)) || c == '_':
			start, sl, sc := i, line, col
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				advance(1)
			}
			toks = append(toks, token{tokIdent, src[start:i], sl, sc})
		default:
			return nil, &lexError{line, col, fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{tokEOF, "", line, col})
	return toks, nil
}
