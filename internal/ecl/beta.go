package ecl

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
)

// AtomKey is a normalized single-invocation atom: the side distinction is
// dropped (Section 6.2, "let each formula in B(Φ) be normalized by dropping
// the distinction between the two types of variables") and the comparison is
// put in a canonical orientation so syntactically different but identical
// atoms (e.g. v1 = p1 in one clause and p2 = v2 in another) coincide.
// AtomKey is comparable and belongs to a specific method's operand space.
type AtomKey struct {
	Method string
	Op     CmpOp
	LVar   bool
	LIdx   int
	LVal   trace.Value
	RVar   bool
	RIdx   int
	RVal   trace.Value
}

// NormalizeAtom converts a single-side atom of the given method into its
// canonical AtomKey plus a negation flag: the original atom holds iff the
// key's base comparison XOR negated. Negative and inverted comparisons
// reduce to a base form (== and < / <=) so that, as in the paper, v ≠ nil
// and v = nil share the single normalized atom v = nil.
func NormalizeAtom(a Atom, method string) (AtomKey, bool) {
	l := normTerm(a.L)
	r := normTerm(a.R)
	op := a.Op
	negated := false
	// Reduce != to negated ==.
	if op == OpNe {
		op, negated = OpEq, true
	}
	// Put ordered comparisons into < / <= orientation.
	switch op {
	case OpGt:
		op, l, r = OpLt, r, l
	case OpGe:
		op, l, r = OpLe, r, l
	}
	// x <= y ≡ ¬(y < x): reduce to a single ordered base op.
	if op == OpLe {
		op, l, r = OpLt, r, l
		negated = !negated
	}
	// Order the operands of the symmetric ==.
	if op == OpEq && termLess(r, l) {
		l, r = r, l
	}
	return AtomKey{
		Method: method,
		Op:     op,
		LVar:   l.IsVar, LIdx: l.Index, LVal: l.Val,
		RVar: r.IsVar, RIdx: r.Index, RVal: r.Val,
	}, negated
}

func normTerm(t Term) Term {
	t.Side = 0
	return t
}

// termLess orders terms: variables before constants, variables by index,
// constants by the Value total order.
func termLess(a, b Term) bool {
	if a.IsVar != b.IsVar {
		return a.IsVar
	}
	if a.IsVar {
		return a.Index < b.Index
	}
	return a.Val.Less(b.Val)
}

// Eval evaluates the atom on an invocation's operand tuple.
func (k AtomKey) Eval(ops []trace.Value) (bool, error) {
	l, err := k.side(k.LVar, k.LIdx, k.LVal, ops)
	if err != nil {
		return false, err
	}
	r, err := k.side(k.RVar, k.RIdx, k.RVal, ops)
	if err != nil {
		return false, err
	}
	return k.Op.apply(l, r), nil
}

func (k AtomKey) side(isVar bool, idx int, val trace.Value, ops []trace.Value) (trace.Value, error) {
	if !isVar {
		return val, nil
	}
	if idx < 0 || idx >= len(ops) {
		return trace.Value{}, fmt.Errorf("ecl: atom %s: operand %d out of range (%d operands)", k, idx, len(ops))
	}
	return ops[idx], nil
}

// String renders the atom with positional operand names.
func (k AtomKey) String() string {
	return k.Describe(nil)
}

// Describe renders the atom using the method's operand names when given.
func (k AtomKey) Describe(m *Method) string {
	name := func(isVar bool, idx int, val trace.Value) string {
		if !isVar {
			return val.String()
		}
		if m != nil {
			if names := m.OpNames(); idx < len(names) {
				return names[idx]
			}
		}
		return fmt.Sprintf("w%d", idx+1)
	}
	return name(k.LVar, k.LIdx, k.LVal) + " " + k.Op.String() + " " + name(k.RVar, k.RIdx, k.RVal)
}

// AtomsFor computes B(Φ, m): the normalized LB atoms relevant to method m —
// the atoms over m's operands occurring in any pair formula involving m
// (Section 6.2). The result is deterministically ordered.
func (s *Spec) AtomsFor(method string) []AtomKey {
	seen := map[AtomKey]bool{}
	var collect func(f Formula, m1, m2 string)
	collect = func(f Formula, m1, m2 string) {
		switch f := f.(type) {
		case Atom:
			m := m1
			if f.Side == 2 {
				m = m2
			}
			if m == method {
				key, _ := NormalizeAtom(f, m)
				seen[key] = true
			}
		case Not:
			collect(f.F, m1, m2)
		case And:
			collect(f.L, m1, m2)
			collect(f.R, m1, m2)
		case Or:
			collect(f.L, m1, m2)
			collect(f.R, m1, m2)
		}
	}
	for _, key := range s.pairKeys() {
		if key.A != method && key.B != method {
			continue
		}
		collect(s.Pairs[key].Formula, key.A, key.B)
	}
	out := make([]AtomKey, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return atomKeyLess(out[i], out[j]) })
	return out
}

func atomKeyLess(a, b AtomKey) bool {
	// Any deterministic order will do; compare the rendered form first and
	// break ties on the raw fields.
	sa, sb := a.String(), b.String()
	if sa != sb {
		return sa < sb
	}
	return fmt.Sprintf("%v", a) < fmt.Sprintf("%v", b)
}

// Beta is the β vector of one action: the truth values of the method's
// B(Φ, m) atoms, packed as a bitmask aligned with the AtomsFor order
// (bit i set ⇔ atom i true).
type Beta uint64

// MaxAtoms bounds the number of LB atoms per method (the β vector is packed
// in a uint64).
const MaxAtoms = 64

// BetaOf evaluates the atoms on the action's operands.
func BetaOf(atoms []AtomKey, a trace.Action) (Beta, error) {
	if len(atoms) > MaxAtoms {
		return 0, fmt.Errorf("ecl: method %q has %d LB atoms; max %d", a.Method, len(atoms), MaxAtoms)
	}
	var beta Beta
	for i, at := range atoms {
		v, err := at.EvalAction(a)
		if err != nil {
			return 0, err
		}
		if v {
			beta |= 1 << uint(i)
		}
	}
	return beta, nil
}

// EvalAction evaluates the atom directly on an action's operands without
// materializing the operand slice.
func (k AtomKey) EvalAction(a trace.Action) (bool, error) {
	l := k.LVal
	if k.LVar {
		var ok bool
		if l, ok = a.Operand(k.LIdx); !ok {
			return false, fmt.Errorf("ecl: atom %s: operand %d out of range for %s", k, k.LIdx, a)
		}
	}
	r := k.RVal
	if k.RVar {
		var ok bool
		if r, ok = a.Operand(k.RIdx); !ok {
			return false, fmt.Errorf("ecl: atom %s: operand %d out of range for %s", k, k.RIdx, a)
		}
	}
	return k.Op.apply(l, r), nil
}

// DescribeBeta renders a β vector against its atom list, e.g.
// "{v == p ↦ false, p == nil ↦ true}".
func DescribeBeta(atoms []AtomKey, m *Method, beta Beta) string {
	if len(atoms) == 0 {
		return "∅"
	}
	parts := make([]string, len(atoms))
	for i, at := range atoms {
		v := "false"
		if beta&(1<<uint(i)) != 0 {
			v = "true"
		}
		parts[i] = at.Describe(m) + " ↦ " + v
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Residual is a formula of the SIMPLE fragment LS in canonical form: either
// false, or a (possibly empty, meaning true) conjunction of cross-side
// inequalities x1.I ≠ x2.J. By Lemma 6.4, fixing the truth values of all LB
// atoms reduces any ECL formula to such a residual.
type Residual struct {
	False bool
	Neqs  [][2]int
}

// True reports whether the residual is the constant true.
func (r Residual) True() bool { return !r.False && len(r.Neqs) == 0 }

// String renders the residual.
func (r Residual) String() string {
	if r.False {
		return "false"
	}
	if len(r.Neqs) == 0 {
		return "true"
	}
	parts := make([]string, len(r.Neqs))
	for i, nq := range r.Neqs {
		parts[i] = fmt.Sprintf("x1.%d != x2.%d", nq[0], nq[1])
	}
	return strings.Join(parts, " && ")
}

// Eval evaluates the residual on concrete operand tuples.
func (r Residual) Eval(ops1, ops2 []trace.Value) (bool, error) {
	if r.False {
		return false, nil
	}
	for _, nq := range r.Neqs {
		l, err := operand(ops1, nq[0], 1)
		if err != nil {
			return false, err
		}
		rv, err := operand(ops2, nq[1], 2)
		if err != nil {
			return false, err
		}
		if l == rv {
			return false, nil
		}
	}
	return true, nil
}

// ResidualOf computes ϕ[β1; β2] (Section 6.2): it substitutes the LB atoms
// of the ECL formula by their truth values under the per-side environments
// and simplifies the result to canonical LS form. m1 and m2 name the
// methods of the two sides (needed to normalize atoms into their method's
// atom space).
func ResidualOf(f Formula, m1, m2 string, env1, env2 func(AtomKey) bool) (Residual, error) {
	if Classify(f).LB {
		v, err := evalLB(f, m1, m2, env1, env2)
		if err != nil {
			return Residual{}, err
		}
		return Residual{False: !v}, nil
	}
	switch f := f.(type) {
	case Neq:
		return Residual{Neqs: [][2]int{{f.I, f.J}}}, nil
	case And:
		l, err := ResidualOf(f.L, m1, m2, env1, env2)
		if err != nil {
			return Residual{}, err
		}
		r, err := ResidualOf(f.R, m1, m2, env1, env2)
		if err != nil {
			return Residual{}, err
		}
		return conjoin(l, r), nil
	case Or:
		// ECL guarantees at least one disjunct is LB; substitute it.
		if Classify(f.R).LB {
			v, err := evalLB(f.R, m1, m2, env1, env2)
			if err != nil {
				return Residual{}, err
			}
			if v {
				return Residual{}, nil
			}
			return ResidualOf(f.L, m1, m2, env1, env2)
		}
		if Classify(f.L).LB {
			v, err := evalLB(f.L, m1, m2, env1, env2)
			if err != nil {
				return Residual{}, err
			}
			if v {
				return Residual{}, nil
			}
			return ResidualOf(f.R, m1, m2, env1, env2)
		}
		return Residual{}, fmt.Errorf("ecl: disjunction %q is outside ECL", f)
	default:
		return Residual{}, fmt.Errorf("ecl: formula %q is outside ECL", f)
	}
}

func conjoin(l, r Residual) Residual {
	if l.False || r.False {
		return Residual{False: true}
	}
	out := Residual{Neqs: append([][2]int{}, l.Neqs...)}
	for _, nq := range r.Neqs {
		dup := false
		for _, have := range out.Neqs {
			if have == nq {
				dup = true
				break
			}
		}
		if !dup {
			out.Neqs = append(out.Neqs, nq)
		}
	}
	return out
}

// evalLB evaluates a pure-LB formula under the atom environments.
func evalLB(f Formula, m1, m2 string, env1, env2 func(AtomKey) bool) (bool, error) {
	switch f := f.(type) {
	case Bool:
		return bool(f), nil
	case Atom:
		m, env := m1, env1
		if f.Side == 2 {
			m, env = m2, env2
		}
		key, negated := NormalizeAtom(f, m)
		return env(key) != negated, nil
	case Not:
		v, err := evalLB(f.F, m1, m2, env1, env2)
		return !v, err
	case And:
		l, err := evalLB(f.L, m1, m2, env1, env2)
		if err != nil || !l {
			return false, err
		}
		return evalLB(f.R, m1, m2, env1, env2)
	case Or:
		l, err := evalLB(f.L, m1, m2, env1, env2)
		if err != nil || l {
			return l, err
		}
		return evalLB(f.R, m1, m2, env1, env2)
	default:
		return false, fmt.Errorf("ecl: %q is not an LB formula", f)
	}
}

// EnvFromBeta builds an atom environment from a packed β vector and its atom
// ordering.
func EnvFromBeta(atoms []AtomKey, beta Beta) func(AtomKey) bool {
	idx := make(map[AtomKey]int, len(atoms))
	for i, a := range atoms {
		idx[a] = i
	}
	return func(k AtomKey) bool {
		i, ok := idx[k]
		if !ok {
			// Unknown atoms cannot arise for environments built from
			// AtomsFor of the same spec; fail closed.
			return false
		}
		return beta&(1<<uint(i)) != 0
	}
}
