package ecl_test

import (
	"fmt"

	"repro/internal/ecl"
	"repro/internal/trace"
)

// Example_parseAndEvaluate parses a small specification and evaluates a
// commutativity condition on two concrete actions.
func Example_parseAndEvaluate() {
	spec, err := ecl.ParseSpec(`
object set
method add(x) / (ok)
commute add(x1)/(k1), add(x2)/(k2) when x1 != x2 || (k1 == false && k2 == false)
`)
	if err != nil {
		fmt.Println(err)
		return
	}
	success := trace.Action{Method: "add",
		Args: []trace.Value{trace.IntValue(7)},
		Rets: []trace.Value{trace.BoolValue(true)}}
	failed := trace.Action{Method: "add",
		Args: []trace.Value{trace.IntValue(7)},
		Rets: []trace.Value{trace.BoolValue(false)}}
	c1, _ := spec.Commutes(success, failed)
	c2, _ := spec.Commutes(failed, failed)
	fmt.Println(c1, c2)
	// Output: false true
}

// ExampleCheckECL shows the fragment boundary: disjunctions of
// cross-invocation inequalities are outside ECL.
func ExampleCheckECL() {
	inside := ecl.Or{L: ecl.Neq{I: 0, J: 0},
		R: ecl.Atom{Side: 1, Op: ecl.OpEq, L: ecl.Var(1, 1), R: ecl.Var(1, 2)}}
	outside := ecl.Or{L: ecl.Neq{I: 0, J: 0}, R: ecl.Neq{I: 1, J: 1}}
	fmt.Println(ecl.CheckECL(inside) == nil, ecl.CheckECL(outside) == nil)
	// Output: true false
}

// ExampleSimplify folds constants out of a formula.
func ExampleSimplify() {
	f := ecl.And{L: ecl.Bool(true), R: ecl.Or{L: ecl.Neq{I: 0, J: 0}, R: ecl.Bool(false)}}
	fmt.Println(ecl.Simplify(f))
	// Output: x1.0 != x2.0
}
