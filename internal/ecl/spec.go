package ecl

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/trace"
)

// Method describes one method signature of the specified object. Operand
// indices used by formulas address Args followed by Rets, 0-based.
type Method struct {
	Name string
	Args []string
	Rets []string
}

// NumOps returns the number of operands (arguments plus returns).
func (m *Method) NumOps() int { return len(m.Args) + len(m.Rets) }

// OpNames returns the operand names, arguments first.
func (m *Method) OpNames() []string {
	out := make([]string, 0, m.NumOps())
	out = append(out, m.Args...)
	return append(out, m.Rets...)
}

// String renders the signature in the spec language syntax.
func (m *Method) String() string {
	s := m.Name + "(" + strings.Join(m.Args, ", ") + ")"
	if len(m.Rets) > 0 {
		s += " / (" + strings.Join(m.Rets, ", ") + ")"
	}
	return s
}

// PairKey identifies an unordered method pair, stored with A ≤ B.
type PairKey struct{ A, B string }

// MakePairKey orders the two method names canonically.
func MakePairKey(m1, m2 string) PairKey {
	if m1 <= m2 {
		return PairKey{m1, m2}
	}
	return PairKey{m2, m1}
}

// PairSpec is the commutativity condition of one method pair, oriented so
// that side 1 of the formula refers to Key.A and side 2 to Key.B.
type PairSpec struct {
	Key       PairKey
	Formula   Formula
	Defaulted bool // no clause in the source; conservatively false
}

// Spec is a logical commutativity specification Φ for one object type
// (Definition 4.1). Method pairs without a clause conservatively do not
// commute (ϕ = false), which keeps the specification sound.
type Spec struct {
	Object  string
	Methods []*Method
	byName  map[string]*Method
	Pairs   map[PairKey]*PairSpec
}

// NewSpec returns an empty specification for the named object type.
func NewSpec(object string) *Spec {
	return &Spec{
		Object: object,
		byName: map[string]*Method{},
		Pairs:  map[PairKey]*PairSpec{},
	}
}

// AddMethod declares a method. It fails on duplicate names or duplicate
// operand names within the method.
func (s *Spec) AddMethod(name string, args, rets []string) (*Method, error) {
	if _, dup := s.byName[name]; dup {
		return nil, fmt.Errorf("ecl: method %q declared twice", name)
	}
	seen := map[string]bool{}
	for _, n := range append(append([]string{}, args...), rets...) {
		if seen[n] {
			return nil, fmt.Errorf("ecl: method %q has duplicate operand name %q", name, n)
		}
		seen[n] = true
	}
	m := &Method{Name: name, Args: append([]string{}, args...), Rets: append([]string{}, rets...)}
	s.Methods = append(s.Methods, m)
	s.byName[name] = m
	return m, nil
}

// Method looks up a declared method.
func (s *Spec) Method(name string) (*Method, bool) {
	m, ok := s.byName[name]
	return m, ok
}

// SetPair installs the commutativity formula for the pair (m1, m2), given
// oriented so that side 1 refers to m1. It validates that the variables fit
// the signatures and stores the formula canonically.
func (s *Spec) SetPair(m1, m2 string, f Formula) error {
	mm1, ok := s.byName[m1]
	if !ok {
		return fmt.Errorf("ecl: unknown method %q in commute clause", m1)
	}
	mm2, ok := s.byName[m2]
	if !ok {
		return fmt.Errorf("ecl: unknown method %q in commute clause", m2)
	}
	for _, v := range Vars(f) {
		n := mm1.NumOps()
		if v[0] == 2 {
			n = mm2.NumOps()
		}
		if v[1] < 0 || v[1] >= n {
			return fmt.Errorf("ecl: commute(%s, %s): variable index %d out of range for side %d", m1, m2, v[1], v[0])
		}
	}
	key := MakePairKey(m1, m2)
	if _, dup := s.Pairs[key]; dup {
		return fmt.Errorf("ecl: pair (%s, %s) specified twice", key.A, key.B)
	}
	if key.A != m1 {
		f = Swap(f)
	}
	s.Pairs[key] = &PairSpec{Key: key, Formula: f}
	return nil
}

// FormulaFor returns the formula for the pair oriented so side 1 refers to
// m1 and side 2 to m2. Missing pairs yield false (never commute) and are
// marked defaulted.
func (s *Spec) FormulaFor(m1, m2 string) (f Formula, defaulted bool) {
	key := MakePairKey(m1, m2)
	p, ok := s.Pairs[key]
	if !ok {
		return Bool(false), true
	}
	if key.A == m1 {
		return p.Formula, false
	}
	return Swap(p.Formula), false
}

// CheckAction verifies that the action matches a declared method signature.
func (s *Spec) CheckAction(a trace.Action) error {
	m, ok := s.byName[a.Method]
	if !ok {
		return fmt.Errorf("ecl: object %q has no method %q", s.Object, a.Method)
	}
	if len(a.Args) != len(m.Args) || len(a.Rets) != len(m.Rets) {
		return fmt.Errorf("ecl: %s: arity mismatch: declared %s", a, m)
	}
	return nil
}

// Commutes evaluates ϕ_m1_m2(a, b): whether the two actions are specified
// to commute.
func (s *Spec) Commutes(a, b trace.Action) (bool, error) {
	if err := s.CheckAction(a); err != nil {
		return false, err
	}
	if err := s.CheckAction(b); err != nil {
		return false, err
	}
	f, _ := s.FormulaFor(a.Method, b.Method)
	return Eval(f, a.Operands(), b.Operands())
}

// CheckSymmetry probabilistically verifies the Definition 4.1 requirement
// that same-method formulas are symmetric: ϕ_mm(x̄1; x̄2) must be logically
// equivalent to ϕ_mm(x̄2; x̄1). It samples random operand tuples and reports
// a witness on the first asymmetry found; it never rejects a symmetric
// specification.
func (s *Spec) CheckSymmetry(samples int) error {
	if samples <= 0 {
		samples = 200
	}
	universe := []trace.Value{
		trace.NilValue, trace.IntValue(0), trace.IntValue(1), trace.IntValue(2),
		trace.BoolValue(true), trace.BoolValue(false),
		trace.StrValue("a"), trace.StrValue("b"),
	}
	r := rand.New(rand.NewSource(1))
	for _, key := range s.pairKeys() {
		if key.A != key.B {
			continue
		}
		m := s.byName[key.A]
		f := s.Pairs[key].Formula
		for i := 0; i < samples; i++ {
			o1 := make([]trace.Value, m.NumOps())
			o2 := make([]trace.Value, m.NumOps())
			for k := range o1 {
				o1[k] = universe[r.Intn(len(universe))]
				o2[k] = universe[r.Intn(len(universe))]
			}
			x, err := Eval(f, o1, o2)
			if err != nil {
				return fmt.Errorf("ecl: pair (%s, %s): %w", key.A, key.B, err)
			}
			y, err := Eval(f, o2, o1)
			if err != nil {
				return fmt.Errorf("ecl: pair (%s, %s): %w", key.A, key.B, err)
			}
			if x != y {
				return fmt.Errorf(
					"ecl: ϕ_%s_%s is not symmetric: ϕ(%s; %s) = %v but ϕ(%s; %s) = %v (Definition 4.1 requires equivalence)",
					key.A, key.B, trace.Values(o1), trace.Values(o2), x,
					trace.Values(o2), trace.Values(o1), y)
			}
		}
	}
	return nil
}

// CheckECL verifies that every pair formula of the specification lies in the
// ECL fragment.
func (s *Spec) CheckECL() error {
	for _, key := range s.pairKeys() {
		if err := CheckECL(s.Pairs[key].Formula); err != nil {
			return fmt.Errorf("pair (%s, %s): %w", key.A, key.B, err)
		}
	}
	return nil
}

// pairKeys returns the specified pairs in deterministic order.
func (s *Spec) pairKeys() []PairKey {
	keys := make([]PairKey, 0, len(s.Pairs))
	for k := range s.Pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].A != keys[j].A {
			return keys[i].A < keys[j].A
		}
		return keys[i].B < keys[j].B
	})
	return keys
}

// String renders the specification in the spec language syntax.
func (s *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "object %s\n\n", s.Object)
	for _, m := range s.Methods {
		fmt.Fprintf(&b, "method %s\n", m)
	}
	b.WriteByte('\n')
	for _, key := range s.pairKeys() {
		p := s.Pairs[key]
		ma, mb := s.byName[key.A], s.byName[key.B]
		na := suffixed(ma.OpNames(), "1")
		nb := suffixed(mb.OpNames(), "2")
		fmt.Fprintf(&b, "commute %s, %s when %s\n",
			invHeader(ma, na), invHeader(mb, nb), renderWith(p.Formula, na, nb))
	}
	return b.String()
}

func suffixed(names []string, suffix string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = n + suffix
	}
	return out
}

func invHeader(m *Method, names []string) string {
	args := strings.Join(names[:len(m.Args)], ", ")
	s := m.Name + "(" + args + ")"
	if len(m.Rets) > 0 {
		s += " / (" + strings.Join(names[len(m.Args):], ", ") + ")"
	}
	return s
}

func renderWith(f Formula, names1, names2 []string) string {
	name := func(side, idx int) string {
		names := names1
		if side == 2 {
			names = names2
		}
		if idx < len(names) {
			return names[idx]
		}
		return fmt.Sprintf("x%d.%d", side, idx)
	}
	var render func(Formula) string
	render = func(f Formula) string {
		switch f := f.(type) {
		case Bool:
			return f.String()
		case Neq:
			return name(1, f.I) + " != " + name(2, f.J)
		case Atom:
			l, r := f.L.Val.String(), f.R.Val.String()
			if f.L.IsVar {
				l = name(f.L.Side, f.L.Index)
			}
			if f.R.IsVar {
				r = name(f.R.Side, f.R.Index)
			}
			return l + " " + f.Op.String() + " " + r
		case Not:
			return "!(" + render(f.F) + ")"
		case And:
			return "(" + render(f.L) + " && " + render(f.R) + ")"
		case Or:
			return "(" + render(f.L) + " || " + render(f.R) + ")"
		default:
			return "?"
		}
	}
	return render(f)
}
