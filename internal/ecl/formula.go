// Package ecl implements the paper's commutativity specification logic
// (Section 4.1) and the ECL fragment (Section 6.1).
//
// A commutativity specification Φ gives, for every pair of methods m1, m2 of
// an object, a formula ϕ_m1_m2(x̄1; x̄2) over the arguments and returns of
// the two invocations; ϕ(a, b) true means a and b commute. ECL restricts
// formulas to
//
//	S ::= V1 ≠ V2 | S ∧ S | true | false          (the SIMPLE fragment LS)
//	B ::= P_V1 | P_V2 | ¬B | B ∧ B | B ∨ B | true | false   (LB)
//	X ::= S | B | X ∧ X | X ∨ B                   (ECL)
//
// where every LB atom constrains the operands of one invocation only. The
// payoff (Theorem 6.6) is that translated representations have bounded
// conflict sets, so the detector does a constant number of checks per
// action.
//
// The package provides the formula AST, a textual specification language
// with lexer and parser, ECL classification with precise diagnostics,
// direct evaluation ϕ(a, b), β-vector machinery (the truth values of the
// LB atoms on one action), and residual simplification to LS (Lemma 6.4).
package ecl

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// CmpOp is a comparison operator usable in atoms.
type CmpOp uint8

// The comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// apply evaluates the operator on two runtime values using the total order
// trace.Value.Less for the ordered comparisons.
func (op CmpOp) apply(l, r trace.Value) bool {
	switch op {
	case OpEq:
		return l == r
	case OpNe:
		return l != r
	case OpLt:
		return l.Less(r)
	case OpLe:
		return l.Less(r) || l == r
	case OpGt:
		return r.Less(l)
	case OpGe:
		return r.Less(l) || l == r
	default:
		return false
	}
}

// Term is an operand of an atom: either a variable, identified by the side
// (1 or 2) of the invocation it comes from and a 0-based index into that
// invocation's operand tuple (arguments followed by returns), or a constant.
type Term struct {
	IsVar bool
	Side  int
	Index int
	Val   trace.Value
}

// Var returns a variable term.
func Var(side, index int) Term { return Term{IsVar: true, Side: side, Index: index} }

// Const returns a constant term.
func Const(v trace.Value) Term { return Term{Val: v} }

func (t Term) String() string {
	if t.IsVar {
		return fmt.Sprintf("x%d.%d", t.Side, t.Index)
	}
	return t.Val.String()
}

// Formula is a node of the specification logic AST.
type Formula interface {
	formula()
	String() string
}

// Bool is the constant true or false.
type Bool bool

// Neq is the cross-side LS atom x1.I ≠ x2.J.
type Neq struct{ I, J int }

// Atom is a single-side LB atom: a comparison whose variables all belong to
// the invocation on Side.
type Atom struct {
	Side int
	Op   CmpOp
	L, R Term
}

// Not is logical negation (LB only).
type Not struct{ F Formula }

// And is conjunction.
type And struct{ L, R Formula }

// Or is disjunction.
type Or struct{ L, R Formula }

func (Bool) formula() {}
func (Neq) formula()  {}
func (Atom) formula() {}
func (Not) formula()  {}
func (And) formula()  {}
func (Or) formula()   {}

func (b Bool) String() string {
	if b {
		return "true"
	}
	return "false"
}
func (n Neq) String() string  { return fmt.Sprintf("x1.%d != x2.%d", n.I, n.J) }
func (a Atom) String() string { return fmt.Sprintf("%s %s %s", a.L, a.Op, a.R) }
func (n Not) String() string  { return "!(" + n.F.String() + ")" }
func (a And) String() string  { return "(" + a.L.String() + " && " + a.R.String() + ")" }
func (o Or) String() string   { return "(" + o.L.String() + " || " + o.R.String() + ")" }

// Conj folds a conjunction over fs (true for the empty list).
func Conj(fs ...Formula) Formula {
	var out Formula = Bool(true)
	for i, f := range fs {
		if i == 0 {
			out = f
		} else {
			out = And{out, f}
		}
	}
	return out
}

// Disj folds a disjunction over fs (false for the empty list).
func Disj(fs ...Formula) Formula {
	var out Formula = Bool(false)
	for i, f := range fs {
		if i == 0 {
			out = f
		} else {
			out = Or{out, f}
		}
	}
	return out
}

// Class is the fragment classification of a formula.
type Class struct {
	LS  bool // in the SIMPLE fragment
	LB  bool // in the LB fragment
	ECL bool // in ECL
}

// Classify determines which fragments the formula belongs to, per the
// grammars above.
func Classify(f Formula) Class {
	switch f := f.(type) {
	case Bool:
		return Class{LS: true, LB: true, ECL: true}
	case Neq:
		return Class{LS: true, ECL: true}
	case Atom:
		return Class{LB: true, ECL: true}
	case Not:
		c := Classify(f.F)
		return Class{LB: c.LB, ECL: c.LB}
	case And:
		l, r := Classify(f.L), Classify(f.R)
		return Class{LS: l.LS && r.LS, LB: l.LB && r.LB, ECL: l.ECL && r.ECL}
	case Or:
		l, r := Classify(f.L), Classify(f.R)
		lb := l.LB && r.LB
		return Class{LB: lb, ECL: lb || (l.ECL && r.LB) || (l.LB && r.ECL)}
	default:
		return Class{}
	}
}

// CheckECL returns a descriptive error when f is outside ECL, naming the
// offending subformula.
func CheckECL(f Formula) error {
	if Classify(f).ECL {
		return nil
	}
	// Locate a minimal offending node for the diagnostic.
	switch f := f.(type) {
	case Not:
		if !Classify(f.F).LB {
			if err := CheckECL(f.F); err != nil {
				return err
			}
			return fmt.Errorf("ecl: negation may only wrap single-invocation (LB) subformulas, but %q mixes invocations", f.F)
		}
	case And:
		if err := CheckECL(f.L); err != nil {
			return err
		}
		if err := CheckECL(f.R); err != nil {
			return err
		}
	case Or:
		if err := CheckECL(f.L); err != nil {
			return err
		}
		if err := CheckECL(f.R); err != nil {
			return err
		}
		return fmt.Errorf("ecl: disjunction %q needs at least one side fully over a single invocation (LB); X ∨ X is outside ECL", f)
	}
	return fmt.Errorf("ecl: formula %q is outside ECL", f)
}

// Eval evaluates the formula on concrete operand tuples for the two
// invocations (arguments followed by returns). It works for arbitrary
// formulas, not only ECL.
func Eval(f Formula, ops1, ops2 []trace.Value) (bool, error) {
	switch f := f.(type) {
	case Bool:
		return bool(f), nil
	case Neq:
		l, err := operand(ops1, f.I, 1)
		if err != nil {
			return false, err
		}
		r, err := operand(ops2, f.J, 2)
		if err != nil {
			return false, err
		}
		return l != r, nil
	case Atom:
		l, err := termValue(f.L, ops1, ops2)
		if err != nil {
			return false, err
		}
		r, err := termValue(f.R, ops1, ops2)
		if err != nil {
			return false, err
		}
		return f.Op.apply(l, r), nil
	case Not:
		v, err := Eval(f.F, ops1, ops2)
		return !v, err
	case And:
		l, err := Eval(f.L, ops1, ops2)
		if err != nil || !l {
			return false, err
		}
		return Eval(f.R, ops1, ops2)
	case Or:
		l, err := Eval(f.L, ops1, ops2)
		if err != nil || l {
			return l, err
		}
		return Eval(f.R, ops1, ops2)
	default:
		return false, fmt.Errorf("ecl: unknown formula node %T", f)
	}
}

func termValue(t Term, ops1, ops2 []trace.Value) (trace.Value, error) {
	if !t.IsVar {
		return t.Val, nil
	}
	if t.Side == 1 {
		return operand(ops1, t.Index, 1)
	}
	return operand(ops2, t.Index, 2)
}

func operand(ops []trace.Value, i, side int) (trace.Value, error) {
	if i < 0 || i >= len(ops) {
		return trace.Value{}, fmt.Errorf("ecl: operand index %d out of range for invocation %d (have %d operands)", i, side, len(ops))
	}
	return ops[i], nil
}

// Vars returns the set of (side, index) variables occurring in f, sorted.
func Vars(f Formula) [][2]int {
	seen := map[[2]int]bool{}
	var walk func(Formula)
	addTerm := func(t Term) {
		if t.IsVar {
			seen[[2]int{t.Side, t.Index}] = true
		}
	}
	walk = func(f Formula) {
		switch f := f.(type) {
		case Neq:
			seen[[2]int{1, f.I}] = true
			seen[[2]int{2, f.J}] = true
		case Atom:
			addTerm(f.L)
			addTerm(f.R)
		case Not:
			walk(f.F)
		case And:
			walk(f.L)
			walk(f.R)
		case Or:
			walk(f.L)
			walk(f.R)
		}
	}
	walk(f)
	out := make([][2]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Swap exchanges the two invocation sides of the formula: variables flip
// side, and Neq(i, j) becomes Neq(j, i). Swap(Swap(f)) == f structurally.
func Swap(f Formula) Formula {
	swapTerm := func(t Term) Term {
		if t.IsVar {
			t.Side = 3 - t.Side
		}
		return t
	}
	switch f := f.(type) {
	case Bool:
		return f
	case Neq:
		return Neq{I: f.J, J: f.I}
	case Atom:
		return Atom{Side: 3 - f.Side, Op: f.Op, L: swapTerm(f.L), R: swapTerm(f.R)}
	case Not:
		return Not{Swap(f.F)}
	case And:
		return And{Swap(f.L), Swap(f.R)}
	case Or:
		return Or{Swap(f.L), Swap(f.R)}
	default:
		return f
	}
}

// Format renders a formula with method variable names when available.
func Format(f Formula, names1, names2 []string) string {
	name := func(t Term) string {
		if !t.IsVar {
			return t.Val.String()
		}
		names := names1
		suffix := "₁"
		if t.Side == 2 {
			names = names2
			suffix = "₂"
		}
		if t.Index < len(names) {
			return names[t.Index] + suffix
		}
		return t.String()
	}
	var render func(Formula) string
	render = func(f Formula) string {
		switch f := f.(type) {
		case Bool:
			return f.String()
		case Neq:
			return name(Term{IsVar: true, Side: 1, Index: f.I}) + " != " + name(Term{IsVar: true, Side: 2, Index: f.J})
		case Atom:
			return name(f.L) + " " + f.Op.String() + " " + name(f.R)
		case Not:
			return "!(" + render(f.F) + ")"
		case And:
			return "(" + render(f.L) + " && " + render(f.R) + ")"
		case Or:
			return "(" + render(f.L) + " || " + render(f.R) + ")"
		default:
			return "?"
		}
	}
	return render(f)
}
