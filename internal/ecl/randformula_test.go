package ecl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

// genECL is a local alias for the exported generator in gen.go.
func genECL(r *rand.Rand, depth, ops1, ops2 int) Formula {
	return RandECL(r, depth, ops1, ops2)
}

func randOps(r *rand.Rand, n int) []trace.Value {
	out := make([]trace.Value, n)
	for i := range out {
		out[i] = trace.IntValue(int64(r.Intn(3)))
	}
	return out
}

// TestPropGeneratedFormulasAreECL: the generator must stay inside the
// fragment (it follows the grammar, so Classify must agree).
func TestPropGeneratedFormulasAreECL(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := genECL(r, 1+r.Intn(4), 3, 2)
		if !Classify(f).ECL {
			t.Logf("seed %d: generated non-ECL formula %s", seed, f)
			return false
		}
		return CheckECL(f) == nil
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPropLemma64OnRandomFormulas generalizes the Lemma 6.4 test: for any
// random ECL formula and any concrete operand tuples, evaluating the full
// formula equals evaluating its residual under the β environments induced
// by the operands.
func TestPropLemma64OnRandomFormulas(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ops1N, ops2N := 1+r.Intn(3), 1+r.Intn(3)
		f := genECL(r, 1+r.Intn(4), ops1N, ops2N)
		ops1, ops2 := randOps(r, ops1N), randOps(r, ops2N)

		want, err := Eval(f, ops1, ops2)
		if err != nil {
			t.Log(err)
			return false
		}
		env := func(ops []trace.Value) func(AtomKey) bool {
			return func(k AtomKey) bool {
				v, err := k.Eval(ops)
				if err != nil {
					return false
				}
				return v
			}
		}
		res, err := ResidualOf(f, "m1", "m2", env(ops1), env(ops2))
		if err != nil {
			t.Logf("seed %d: residual of %s: %v", seed, f, err)
			return false
		}
		got, err := res.Eval(ops1, ops2)
		if err != nil {
			t.Log(err)
			return false
		}
		if got != want {
			t.Logf("seed %d: %s on %v;%v → full %v, residual(%s) %v",
				seed, f, ops1, ops2, want, res, got)
		}
		return got == want
	}, &quick.Config{MaxCount: 3000})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPropSwapOnRandomFormulas: Eval(f, a, b) == Eval(Swap(f), b, a) and
// Swap is an involution, for random ECL formulas.
func TestPropSwapOnRandomFormulas(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ops1N, ops2N := 1+r.Intn(3), 1+r.Intn(3)
		f := genECL(r, 1+r.Intn(4), ops1N, ops2N)
		ops1, ops2 := randOps(r, ops1N), randOps(r, ops2N)
		x, err := Eval(f, ops1, ops2)
		if err != nil {
			return false
		}
		y, err := Eval(Swap(f), ops2, ops1)
		if err != nil {
			return false
		}
		if x != y {
			return false
		}
		return Swap(Swap(f)).String() == f.String()
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPropClassifyClosedUnderSwap: swapping sides preserves fragment
// membership.
func TestPropClassifyClosedUnderSwap(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := genECL(r, 1+r.Intn(4), 3, 3)
		return Classify(f) == Classify(Swap(f))
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}
