package ecl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimplifyCases(t *testing.T) {
	x := Neq{I: 0, J: 0}
	a := Atom{Side: 1, Op: OpEq, L: Var(1, 0), R: Const(v1)}
	cases := []struct {
		in   Formula
		want string
	}{
		{And{Bool(true), x}, x.String()},
		{And{x, Bool(true)}, x.String()},
		{And{Bool(false), x}, "false"},
		{And{x, Bool(false)}, "false"},
		{Or{Bool(false), a}, a.String()},
		{Or{a, Bool(false)}, a.String()},
		{Or{Bool(true), a}, "true"},
		{Or{a, Bool(true)}, "true"},
		{Not{Bool(true)}, "false"},
		{Not{Not{a}}, a.String()},
		{Atom{Side: 1, Op: OpLt, L: Const(v1), R: Const(v2)}, "true"},
		{Atom{Side: 1, Op: OpEq, L: Const(v1), R: Const(v2)}, "false"},
		{Atom{Side: 1, Op: OpEq, L: Var(1, 2), R: Var(1, 2)}, "true"},
		{Atom{Side: 1, Op: OpLt, L: Var(1, 2), R: Var(1, 2)}, "false"},
		{And{Or{Bool(false), Bool(false)}, x}, "false"},
	}
	for _, c := range cases {
		if got := Simplify(c.in).String(); got != c.want {
			t.Errorf("Simplify(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestSizeCounts(t *testing.T) {
	f := And{Or{Neq{0, 0}, Bool(true)}, Not{Bool(false)}}
	if got := Size(f); got != 6 {
		t.Errorf("Size = %d, want 6", got)
	}
}

func TestPropSimplifyPreservesSemantics(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ops1N, ops2N := 1+r.Intn(3), 1+r.Intn(3)
		f := RandECL(r, 1+r.Intn(4), ops1N, ops2N)
		s := Simplify(f)
		if Size(s) > Size(f) {
			t.Logf("seed %d: simplification grew %s", seed, f)
			return false
		}
		ops1, ops2 := randOps(r, ops1N), randOps(r, ops2N)
		x, err := Eval(f, ops1, ops2)
		if err != nil {
			return false
		}
		y, err := Eval(s, ops1, ops2)
		if err != nil {
			t.Logf("seed %d: simplified %s of %s fails: %v", seed, s, f, err)
			return false
		}
		if x != y {
			t.Logf("seed %d: %s vs %s disagree on %v;%v", seed, f, s, ops1, ops2)
			return false
		}
		return true
	}, &quick.Config{MaxCount: 3000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropSimplifyPreservesFragment(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := RandECL(r, 1+r.Intn(4), 3, 3)
		if !Classify(f).ECL {
			return true
		}
		return Classify(Simplify(f)).ECL
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropSimplifyIdempotent(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := RandECL(r, 1+r.Intn(4), 3, 3)
		once := Simplify(f)
		twice := Simplify(once)
		return once.String() == twice.String()
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}
