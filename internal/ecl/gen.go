package ecl

import (
	"math/rand"

	"repro/internal/trace"
)

// RandECL draws a random formula from the ECL grammar X ::= S | B | X∧X |
// X∨B over two invocations with ops1 and ops2 operands. It is used by the
// property tests of this package and of the translator to validate the
// theorems on arbitrary specifications, not just the built-in ones.
func RandECL(r *rand.Rand, depth, ops1, ops2 int) Formula {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return Neq{I: r.Intn(ops1), J: r.Intn(ops2)}
		case 1:
			return randLB(r, 0, ops1, ops2)
		case 2:
			return Bool(true)
		default:
			return Bool(false)
		}
	}
	switch r.Intn(4) {
	case 0:
		return randS(r, depth-1, ops1, ops2)
	case 1:
		return randLB(r, depth-1, ops1, ops2)
	case 2:
		return And{RandECL(r, depth-1, ops1, ops2), RandECL(r, depth-1, ops1, ops2)}
	default:
		return Or{RandECL(r, depth-1, ops1, ops2), randLB(r, depth-1, ops1, ops2)}
	}
}

// randS draws from S ::= V1 ≠ V2 | S ∧ S | true | false.
func randS(r *rand.Rand, depth, ops1, ops2 int) Formula {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			return Bool(true)
		case 1:
			return Bool(false)
		default:
			return Neq{I: r.Intn(ops1), J: r.Intn(ops2)}
		}
	}
	return And{randS(r, depth-1, ops1, ops2), randS(r, depth-1, ops1, ops2)}
}

// randLB draws from B ::= P_V1 | P_V2 | ¬B | B∧B | B∨B | true | false.
func randLB(r *rand.Rand, depth, ops1, ops2 int) Formula {
	if depth <= 0 || r.Intn(3) == 0 {
		if r.Intn(5) == 0 {
			return Bool(r.Intn(2) == 0)
		}
		side := 1 + r.Intn(2)
		n := ops1
		if side == 2 {
			n = ops2
		}
		ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
		l := Var(side, r.Intn(n))
		var rt Term
		if r.Intn(2) == 0 {
			rt = Var(side, r.Intn(n))
		} else {
			rt = Const(trace.IntValue(int64(r.Intn(3))))
		}
		return Atom{Side: side, Op: ops[r.Intn(len(ops))], L: l, R: rt}
	}
	switch r.Intn(3) {
	case 0:
		return Not{randLB(r, depth-1, ops1, ops2)}
	case 1:
		return And{randLB(r, depth-1, ops1, ops2), randLB(r, depth-1, ops1, ops2)}
	default:
		return Or{randLB(r, depth-1, ops1, ops2), randLB(r, depth-1, ops1, ops2)}
	}
}
