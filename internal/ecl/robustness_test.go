package ecl

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestPropParserNeverPanics feeds the spec parser random byte soup and
// random mutations of a valid specification: it must return cleanly (spec
// or error), never panic.
func TestPropParserNeverPanics(t *testing.T) {
	alphabet := []byte("obj mthd cmue whn()/,=!<>&|\"0123456789\n\t#abcxyz_")
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var src string
		if r.Intn(2) == 0 {
			// Pure soup.
			n := r.Intn(200)
			b := make([]byte, n)
			for i := range b {
				b[i] = alphabet[r.Intn(len(alphabet))]
			}
			src = string(b)
		} else {
			// Mutated valid spec: delete, duplicate, or flip a chunk.
			src = dictSrc
			if len(src) > 10 {
				i := r.Intn(len(src) - 8)
				j := i + 1 + r.Intn(7)
				switch r.Intn(3) {
				case 0:
					src = src[:i] + src[j:]
				case 1:
					src = src[:j] + src[i:j] + src[j:]
				default:
					src = src[:i] + strings.ToUpper(src[i:j]) + src[j:]
				}
			}
		}
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("seed %d: parser panicked on %q: %v", seed, src, p)
			}
		}()
		_, _ = ParseSpecAny(src)
		_, _ = ParseSpec(src)
		return true
	}, &quick.Config{MaxCount: 3000})
	if err != nil {
		t.Fatal(err)
	}
}
