package ecl

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

var (
	vNil = trace.NilValue
	v1   = trace.IntValue(1)
	v2   = trace.IntValue(2)
)

func TestCmpOpApply(t *testing.T) {
	cases := []struct {
		op   CmpOp
		l, r trace.Value
		want bool
	}{
		{OpEq, v1, v1, true},
		{OpEq, v1, v2, false},
		{OpNe, v1, v2, true},
		{OpNe, vNil, vNil, false},
		{OpLt, v1, v2, true},
		{OpLt, v2, v1, false},
		{OpLe, v1, v1, true},
		{OpGt, v2, v1, true},
		{OpGe, v1, v1, true},
		{OpGe, v1, v2, false},
		{OpLt, vNil, v1, true}, // nil sorts first in the total order
	}
	for _, c := range cases {
		if got := c.op.apply(c.l, c.r); got != c.want {
			t.Errorf("%s %s %s = %v, want %v", c.l, c.op, c.r, got, c.want)
		}
	}
}

func TestCmpOpString(t *testing.T) {
	want := map[CmpOp]string{OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", CmpOp(9): "CmpOp(9)"}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("CmpOp(%d).String() = %q, want %q", op, op.String(), s)
		}
	}
}

func TestClassify(t *testing.T) {
	// Atoms for building cases: a1 side-1 LB atom, a2 side-2 LB atom.
	a1 := Atom{Side: 1, Op: OpEq, L: Var(1, 1), R: Var(1, 2)}
	a2 := Atom{Side: 2, Op: OpEq, L: Var(2, 0), R: Const(vNil)}
	nq := Neq{I: 0, J: 0}
	cases := []struct {
		name string
		f    Formula
		want Class
	}{
		{"true", Bool(true), Class{LS: true, LB: true, ECL: true}},
		{"false", Bool(false), Class{LS: true, LB: true, ECL: true}},
		{"neq", nq, Class{LS: true, ECL: true}},
		{"atom1", a1, Class{LB: true, ECL: true}},
		{"atom2", a2, Class{LB: true, ECL: true}},
		{"neq-and-neq", And{nq, nq}, Class{LS: true, ECL: true}},
		{"not-atom", Not{a1}, Class{LB: true, ECL: true}},
		{"not-neq", Not{nq}, Class{}},
		{"atom-or-atom", Or{a1, a2}, Class{LB: true, ECL: true}},
		{"neq-or-atom", Or{nq, a1}, Class{ECL: true}},
		{"atom-or-neq", Or{a1, nq}, Class{ECL: true}},
		{"neq-or-neq", Or{nq, nq}, Class{}},
		{"and-mixed", And{nq, a1}, Class{ECL: true}},
		{"fig6-putput", Or{nq, And{a1, a2}}, Class{ECL: true}},
		{"nested-bad-or", And{Or{nq, Or{nq, nq}}, a1}, Class{}},
		{"not-around-mixed", Not{And{nq, a1}}, Class{}},
	}
	for _, c := range cases {
		if got := Classify(c.f); got != c.want {
			t.Errorf("%s: Classify(%s) = %+v, want %+v", c.name, c.f, got, c.want)
		}
	}
}

func TestCheckECLDiagnostics(t *testing.T) {
	nq := Neq{I: 0, J: 0}
	a1 := Atom{Side: 1, Op: OpEq, L: Var(1, 1), R: Var(1, 2)}
	if err := CheckECL(Or{nq, And{a1, a1}}); err != nil {
		t.Errorf("ECL formula rejected: %v", err)
	}
	err := CheckECL(Or{nq, nq})
	if err == nil || !strings.Contains(err.Error(), "disjunction") {
		t.Errorf("want disjunction diagnostic, got %v", err)
	}
	err = CheckECL(Not{nq})
	if err == nil || !strings.Contains(err.Error(), "negation") {
		t.Errorf("want negation diagnostic, got %v", err)
	}
	// The error should name the innermost offending node.
	err = CheckECL(And{a1, Or{nq, nq}})
	if err == nil || !strings.Contains(err.Error(), "disjunction") {
		t.Errorf("nested diagnostic: %v", err)
	}
}

func TestEval(t *testing.T) {
	// ϕ_put_put of Fig 6: k1 != k2 || (v1 == p1 && v2 == p2) with operand
	// layout put(k, v)/p → indices 0, 1, 2.
	f := Or{
		Neq{I: 0, J: 0},
		And{
			Atom{Side: 1, Op: OpEq, L: Var(1, 1), R: Var(1, 2)},
			Atom{Side: 2, Op: OpEq, L: Var(2, 1), R: Var(2, 2)},
		},
	}
	kA, kB := trace.StrValue("a"), trace.StrValue("b")
	cases := []struct {
		ops1, ops2 []trace.Value
		want       bool
	}{
		{[]trace.Value{kA, v1, vNil}, []trace.Value{kB, v2, vNil}, true},  // different keys
		{[]trace.Value{kA, v1, vNil}, []trace.Value{kA, v2, vNil}, false}, // same key, both writes
		{[]trace.Value{kA, v1, v1}, []trace.Value{kA, v2, v2}, true},      // both no-ops
		{[]trace.Value{kA, v1, v1}, []trace.Value{kA, v2, vNil}, false},   // one real write
	}
	for _, c := range cases {
		got, err := Eval(f, c.ops1, c.ops2)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Eval(%v; %v) = %v, want %v", c.ops1, c.ops2, got, c.want)
		}
	}
}

func TestEvalOperandRangeError(t *testing.T) {
	if _, err := Eval(Neq{I: 5, J: 0}, []trace.Value{v1}, []trace.Value{v1}); err == nil {
		t.Error("out-of-range operand must error")
	}
	bad := Atom{Side: 1, Op: OpEq, L: Var(1, 9), R: Const(v1)}
	if _, err := Eval(bad, []trace.Value{v1}, nil); err == nil {
		t.Error("out-of-range atom var must error")
	}
}

func TestEvalNotAndShortCircuit(t *testing.T) {
	tt := Bool(true)
	ff := Bool(false)
	got, err := Eval(Not{ff}, nil, nil)
	if err != nil || !got {
		t.Errorf("!false = %v, %v", got, err)
	}
	got, err = Eval(And{ff, Neq{I: 9, J: 9}}, nil, nil)
	if err != nil || got {
		t.Errorf("false && <bad> should short-circuit: %v, %v", got, err)
	}
	got, err = Eval(Or{tt, Neq{I: 9, J: 9}}, nil, nil)
	if err != nil || !got {
		t.Errorf("true || <bad> should short-circuit: %v, %v", got, err)
	}
}

func TestSwap(t *testing.T) {
	f := Or{
		Neq{I: 0, J: 1},
		And{
			Atom{Side: 1, Op: OpEq, L: Var(1, 1), R: Var(1, 2)},
			Not{Atom{Side: 2, Op: OpLt, L: Var(2, 0), R: Const(v1)}},
		},
	}
	sw := Swap(f)
	or, ok := sw.(Or)
	if !ok {
		t.Fatalf("Swap changed shape: %T", sw)
	}
	if nq := or.L.(Neq); nq.I != 1 || nq.J != 0 {
		t.Errorf("swapped Neq = %v", nq)
	}
	and := or.R.(And)
	if a := and.L.(Atom); a.Side != 2 || a.L.Side != 2 {
		t.Errorf("swapped atom side = %v", a)
	}
	// Involution.
	back := Swap(sw)
	if back.String() != f.String() {
		t.Errorf("Swap not involutive: %s vs %s", back, f)
	}
	// Eval symmetry: Eval(f, a, b) == Eval(Swap(f), b, a).
	ops1 := []trace.Value{v1, v2, v2}
	ops2 := []trace.Value{v2, v1, vNil}
	x, err := Eval(f, ops1, ops2)
	if err != nil {
		t.Fatal(err)
	}
	y, err := Eval(sw, ops2, ops1)
	if err != nil {
		t.Fatal(err)
	}
	if x != y {
		t.Errorf("Eval(f,a,b)=%v but Eval(Swap(f),b,a)=%v", x, y)
	}
}

func TestVars(t *testing.T) {
	f := Or{
		Neq{I: 0, J: 1},
		And{
			Atom{Side: 1, Op: OpEq, L: Var(1, 2), R: Const(v1)},
			Atom{Side: 2, Op: OpEq, L: Var(2, 0), R: Var(2, 1)},
		},
	}
	got := Vars(f)
	want := [][2]int{{1, 0}, {1, 2}, {2, 0}, {2, 1}}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
}

func TestConjDisj(t *testing.T) {
	if got, _ := Eval(Conj(), nil, nil); !got {
		t.Error("empty Conj must be true")
	}
	if got, _ := Eval(Disj(), nil, nil); got {
		t.Error("empty Disj must be false")
	}
	f := Conj(Bool(true), Bool(true), Bool(false))
	if got, _ := Eval(f, nil, nil); got {
		t.Error("Conj with a false must be false")
	}
	g := Disj(Bool(false), Bool(true))
	if got, _ := Eval(g, nil, nil); !got {
		t.Error("Disj with a true must be true")
	}
	if Conj(Neq{0, 0}).String() != (Neq{0, 0}).String() {
		t.Error("singleton Conj should be the formula itself")
	}
}

func TestFormulaStrings(t *testing.T) {
	f := Or{Neq{I: 0, J: 0}, Not{And{Bool(true), Atom{Side: 1, Op: OpLe, L: Var(1, 0), R: Const(v1)}}}}
	s := f.String()
	for _, frag := range []string{"x1.0 != x2.0", "!(", "&&", "||", "<="} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func TestFormat(t *testing.T) {
	f := Or{Neq{I: 0, J: 0}, Atom{Side: 1, Op: OpEq, L: Var(1, 1), R: Var(1, 2)}}
	got := Format(f, []string{"k", "v", "p"}, []string{"k", "v", "p"})
	if !strings.Contains(got, "k₁ != k₂") || !strings.Contains(got, "v₁ == p₁") {
		t.Errorf("Format = %q", got)
	}
}
