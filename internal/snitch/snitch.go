// Package snitch is the reproduction's substitute for Apache Cassandra 2.0's
// DynamicEndpointSnitch, the second application of the paper's evaluation
// (Table 2, last row).
//
// Cassandra ranks database nodes by observed latency. The
// DynamicEndpointSnitch accumulates per-host latency samples in a
// ConcurrentHashMap (`samples`) from many request threads via
// receiveTiming, while a scheduled task (updateScores) periodically
// recomputes per-host scores into a second map. The paper's RD2 found that
// "new entries to the samples map ... could be added while its size is
// concurrently used as a performance hint during node rank recalculation,
// causing the performance hint to become obsolete" — a commutativity race
// between samples.put (resizing) and samples.size.
//
// The simulator reproduces that structure: worker threads deliver latency
// timings, a scorer thread recalculates ranks using size() as a capacity
// hint, and the whole thing runs on monitored dictionaries so both
// detectors see exactly the event stream the paper's tools saw.
package snitch

import (
	"fmt"
	"math/rand"

	"repro/internal/monitor"
	"repro/internal/trace"
)

// Snitch is the simulated DynamicEndpointSnitch.
type Snitch struct {
	rt *monitor.Runtime
	// samples maps host → accumulated latency info (encoded as an int
	// token: count*1e6 + ewma).
	samples *monitor.Dict
	// scores maps host → last computed score.
	scores *monitor.Dict
	// registered approximates an unsynchronized registration counter
	// (low-level race fodder for the FASTTRACK baseline).
	registered *monitor.Cell
	// lastUpdate approximates an unsynchronized "last recalculated"
	// timestamp field read by request threads.
	lastUpdate *monitor.Cell
}

// New creates a snitch on the runtime.
func New(rt *monitor.Runtime) *Snitch {
	return &Snitch{
		rt:         rt,
		samples:    rt.NewDict(),
		scores:     rt.NewDict(),
		registered: rt.NewCell(),
		lastUpdate: rt.NewCell(),
	}
}

// SamplesID returns the object id of the samples map.
func (s *Snitch) SamplesID() trace.ObjID { return s.samples.ID() }

// ScoresID returns the object id of the scores map.
func (s *Snitch) ScoresID() trace.ObjID { return s.scores.ID() }

// ReceiveTiming records a latency observation for a host — Cassandra's
// receiveTiming, called from every request thread. New hosts insert into
// the samples map (resizing it); known hosts update their accumulator with
// an unsynchronized read-modify-write.
func (s *Snitch) ReceiveTiming(t *monitor.Thread, host string, latencyMicros int64) {
	key := trace.StrValue(host)
	cur := s.samples.Get(t, key)
	var count, ewma int64
	if !cur.IsNil() {
		count, ewma = cur.Int()/1_000_000, cur.Int()%1_000_000
	}
	count++
	if ewma == 0 {
		ewma = latencyMicros % 1_000_000
	} else {
		ewma = (ewma*3 + latencyMicros%1_000_000) / 4
	}
	s.samples.Put(t, key, trace.IntValue(count*1_000_000+ewma))
	_ = s.lastUpdate.Load(t) // request threads consult the last-update stamp
	s.registered.Add(t, 1)
}

// UpdateScores recalculates every host's score — Cassandra's scheduled
// updateScores task. It reads the samples map's size as a capacity hint
// (the racy performance hint of the paper's finding #3), then scores each
// host.
func (s *Snitch) UpdateScores(t *monitor.Thread, hosts []string) int64 {
	hint := s.samples.Size(t) // the obsolete-able performance hint
	for _, h := range hosts {
		key := trace.StrValue(h)
		sample := s.samples.Get(t, key)
		if sample.IsNil() {
			continue
		}
		score := sample.Int() % 1_000_000
		s.scores.Put(t, key, trace.IntValue(score))
	}
	s.lastUpdate.Add(t, 1)
	return hint
}

// Score reads a host's current score — Cassandra's getScore, called by
// request routing.
func (s *Snitch) Score(t *monitor.Thread, host string) (int64, bool) {
	v := s.scores.Get(t, trace.StrValue(host))
	if v.IsNil() {
		return 0, false
	}
	return v.Int(), true
}

// TestConfig parameterizes the DynamicEndpointSnitch test workload.
type TestConfig struct {
	Hosts          int // simulated cluster size
	Workers        int // request threads delivering timings
	TimingsPerHost int // timings each worker delivers
	ScoreRounds    int // score recalculation rounds by the scorer thread
}

// DefaultTestConfig mirrors the scale of Cassandra's
// DynamicEndpointSnitch test.
func DefaultTestConfig() TestConfig {
	return TestConfig{Hosts: 32, Workers: 6, TimingsPerHost: 40, ScoreRounds: 50}
}

// RunTest executes the DynamicEndpointSnitch test: workers deliver
// dynamically changing node latencies while a scorer thread concurrently
// recalculates ranks. It returns the number of simulated operations.
func RunTest(rt *monitor.Runtime, cfg TestConfig, seed int64) int {
	main := rt.Main()
	sn := New(rt)
	hosts := make([]string, cfg.Hosts)
	for i := range hosts {
		hosts[i] = fmt.Sprintf("10.0.0.%d", i+1)
	}
	// Half the cluster is known at startup (gossip-seeded); the rest joins
	// while the test runs, so the samples map keeps resizing under the
	// scorer's size hint no matter how the threads interleave.
	for _, h := range hosts[:cfg.Hosts/2] {
		sn.ReceiveTiming(main, h, 250)
	}

	ops := 0
	var workers []*monitor.Thread
	for w := 0; w < cfg.Workers; w++ {
		w := w
		workers = append(workers, main.Go(func(t *monitor.Thread) {
			r := rand.New(rand.NewSource(seed + int64(w)))
			for i := 0; i < cfg.TimingsPerHost; i++ {
				for _, h := range hosts {
					// Request routing consults the current score, then the
					// completed request reports its latency.
					sn.Score(t, h)
					lat := int64(100 + r.Intn(900))
					sn.ReceiveTiming(t, h, lat)
				}
			}
		}))
	}
	scorer := main.Go(func(t *monitor.Thread) {
		for i := 0; i < cfg.ScoreRounds; i++ {
			sn.UpdateScores(t, hosts)
			for _, h := range hosts[:4] {
				sn.Score(t, h)
			}
		}
	})
	main.JoinAll(append(workers, scorer)...)
	ops = 2*cfg.Workers*cfg.TimingsPerHost*cfg.Hosts + cfg.ScoreRounds*(cfg.Hosts+4)
	return ops
}
