package snitch

import (
	"testing"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/trace"
)

func TestSnitchSequentialSemantics(t *testing.T) {
	rt := monitor.NewRuntime()
	main := rt.Main()
	sn := New(rt)
	if _, ok := sn.Score(main, "h"); ok {
		t.Fatal("score before any update")
	}
	sn.ReceiveTiming(main, "h", 500)
	sn.ReceiveTiming(main, "h", 100)
	hint := sn.UpdateScores(main, []string{"h", "missing"})
	if hint != 1 {
		t.Fatalf("size hint = %d, want 1", hint)
	}
	score, ok := sn.Score(main, "h")
	if !ok || score <= 0 {
		t.Fatalf("score = %d, %v", score, ok)
	}
	// EWMA moves toward the latest sample.
	if score >= 500 {
		t.Errorf("score %d should have decayed toward the faster sample", score)
	}
	if _, ok := sn.Score(main, "missing"); ok {
		t.Error("missing host must have no score")
	}
}

// TestSnitchRaceNumber3 is experiment E6 for Cassandra: the samples map's
// size hint races with concurrent insertions, and the scores map races
// between the scorer's writes and request threads' reads.
func TestSnitchRaceNumber3(t *testing.T) {
	rt := monitor.NewRuntime()
	rd2 := monitor.AttachRD2(rt, core.Config{})
	main := rt.Main()
	sn := New(rt)
	hosts := []string{"a", "b", "c", "d"}
	workers := []*monitor.Thread{
		main.Go(func(th *monitor.Thread) {
			for i := 0; i < 50; i++ {
				for _, h := range hosts {
					sn.ReceiveTiming(th, h, int64(100+i))
				}
			}
		}),
		main.Go(func(th *monitor.Thread) {
			for i := 0; i < 20; i++ {
				sn.UpdateScores(th, hosts)
			}
		}),
	}
	main.JoinAll(workers...)
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	racing := map[trace.ObjID]bool{}
	sawSizeRace := false
	for _, r := range rd2.Detector.Races() {
		racing[r.Obj] = true
		if r.Obj == sn.SamplesID() &&
			(r.Second.Method == "size" || r.First.Method == "size") {
			sawSizeRace = true
		}
	}
	if !racing[sn.SamplesID()] {
		t.Error("samples map race not found")
	}
	if !sawSizeRace {
		t.Error("the size-hint commutativity race (paper race #3) not found")
	}
}

func TestRunTestFindsTwoDistinctObjects(t *testing.T) {
	rt := monitor.NewRuntime()
	rd2 := monitor.AttachRD2(rt, core.Config{})
	cfg := DefaultTestConfig()
	cfg.Workers, cfg.TimingsPerHost, cfg.ScoreRounds = 4, 10, 20
	ops := RunTest(rt, cfg, 11)
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	if ops == 0 {
		t.Fatal("no ops")
	}
	if rd2.Detector.Stats().Races == 0 {
		t.Fatal("snitch test should race")
	}
	if got := rd2.Detector.DistinctObjects(); got != 2 {
		objs := map[trace.ObjID]int{}
		for _, r := range rd2.Detector.Races() {
			objs[r.Obj]++
		}
		t.Errorf("distinct racing objects = %d, want 2 (samples + scores); breakdown %v", got, objs)
	}
}

func TestRunTestFastTrack(t *testing.T) {
	rt := monitor.NewRuntime()
	ft := monitor.AttachFastTrack(rt)
	cfg := DefaultTestConfig()
	cfg.Workers, cfg.TimingsPerHost, cfg.ScoreRounds = 4, 5, 10
	RunTest(rt, cfg, 13)
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	if ft.Stats().Races == 0 {
		t.Error("FASTTRACK should flag the unsynchronized counter fields")
	}
}

func TestRunTestUninstrumented(t *testing.T) {
	rt := monitor.NewRuntime()
	cfg := DefaultTestConfig()
	cfg.Workers, cfg.TimingsPerHost, cfg.ScoreRounds = 2, 3, 3
	if ops := RunTest(rt, cfg, 1); ops == 0 {
		t.Fatal("no ops")
	}
}
