package pipeline

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hb"
	"repro/internal/specs"
	"repro/internal/trace"
)

var dictRep = specs.MustRep("dict")

// raceKey is the (Obj, FirstSeq, SecondSeq) triple the differential
// acceptance criterion compares.
func raceKey(r core.Race) [3]int {
	return [3]int{int(r.Obj), r.FirstSeq, r.SecondSeq}
}

// runSerial runs the serial detector over tr with every object registered.
func runSerial(t *testing.T, tr *trace.Trace, objects int, cfg core.Config) *core.Detector {
	t.Helper()
	d := core.New(cfg)
	for o := 0; o < objects; o++ {
		d.Register(trace.ObjID(o), dictRep)
	}
	if err := d.RunTrace(tr); err != nil {
		t.Fatal(err)
	}
	return d
}

// runParallel runs the pipeline over tr with every object registered.
func runParallel(t *testing.T, tr *trace.Trace, objects int, cfg Config) *Pipeline {
	t.Helper()
	p := New(cfg)
	for o := 0; o < objects; o++ {
		p.Register(trace.ObjID(o), dictRep)
	}
	if err := p.RunTrace(tr); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDifferentialRandomTraces is the acceptance differential: on
// randomized multi-object traces, the sharded pipeline reports the exact
// same race set (as (Obj, FirstSeq, SecondSeq) triples), Races, Checks, and
// DistinctObjects as the serial detector. Five seeds, several shard counts.
func TestDifferentialRandomTraces(t *testing.T) {
	gcfg := trace.DefaultGenConfig()
	gcfg.Threads, gcfg.Objects, gcfg.Keys = 4, 6, 3
	gcfg.OpsMin, gcfg.OpsMax = 8, 20
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		tr := trace.Generate(rand.New(rand.NewSource(seed)), gcfg)
		serial := runSerial(t, tr, gcfg.Objects, core.Config{})
		wantRaces := append([]core.Race(nil), serial.Races()...)
		core.SortRaces(wantRaces)

		for _, shards := range []int{1, 2, 3, 7} {
			p := runParallel(t, tr, gcfg.Objects, Config{Shards: shards, BatchSize: 4})
			name := fmt.Sprintf("seed=%d shards=%d", seed, shards)
			if got, want := p.Stats().Races, serial.Stats().Races; got != want {
				t.Errorf("%s: races = %d, want %d", name, got, want)
			}
			if got, want := p.Stats().Checks, serial.Stats().Checks; got != want {
				t.Errorf("%s: checks = %d, want %d", name, got, want)
			}
			if got, want := p.Stats().Actions, serial.Stats().Actions; got != want {
				t.Errorf("%s: actions = %d, want %d", name, got, want)
			}
			if got, want := p.DistinctObjects(), serial.DistinctObjects(); got != want {
				t.Errorf("%s: distinct = %d, want %d", name, got, want)
			}
			got := p.Races()
			if len(got) != len(wantRaces) {
				t.Fatalf("%s: %d retained races, want %d", name, len(got), len(wantRaces))
			}
			for i := range got {
				if raceKey(got[i]) != raceKey(wantRaces[i]) {
					t.Errorf("%s: race[%d] = %v, want %v", name, i, raceKey(got[i]), raceKey(wantRaces[i]))
				}
			}
		}
	}
}

// TestSingleShardByteForByte: with -shards 1 the pipeline's merged report
// must render byte-for-byte identically to the serial detector's reports
// after both are put in the canonical (SecondSeq, FirstSeq) order.
func TestSingleShardByteForByte(t *testing.T) {
	gcfg := trace.DefaultGenConfig()
	gcfg.Objects = 3
	for _, seed := range []int64{11, 22, 33} {
		tr := trace.Generate(rand.New(rand.NewSource(seed)), gcfg)
		serial := runSerial(t, tr, gcfg.Objects, core.Config{})
		sorted := append([]core.Race(nil), serial.Races()...)
		core.SortRaces(sorted)
		var want strings.Builder
		for _, r := range sorted {
			fmt.Fprintln(&want, r)
		}

		p := runParallel(t, tr, gcfg.Objects, Config{Shards: 1})
		var got strings.Builder
		for _, r := range p.Races() {
			fmt.Fprintln(&got, r)
		}
		if got.String() != want.String() {
			t.Errorf("seed %d: single-shard report differs from serial:\n--- serial ---\n%s--- shards=1 ---\n%s",
				seed, want.String(), got.String())
		}
	}
}

// TestShardCountEdgeCases: more shards than objects, and a shard count of
// exactly the object count, still produce the serial verdicts.
func TestShardCountEdgeCases(t *testing.T) {
	gcfg := trace.DefaultGenConfig()
	gcfg.Objects = 2
	tr := trace.Generate(rand.New(rand.NewSource(7)), gcfg)
	serial := runSerial(t, tr, gcfg.Objects, core.Config{})
	for _, shards := range []int{2, 16} {
		p := runParallel(t, tr, gcfg.Objects, Config{Shards: shards, BatchSize: 1, QueueLen: 1})
		if p.Stats().Races != serial.Stats().Races {
			t.Errorf("shards=%d: races = %d, want %d", shards, p.Stats().Races, serial.Stats().Races)
		}
		if p.Shards() != shards {
			t.Errorf("Shards() = %d, want %d", p.Shards(), shards)
		}
	}
}

// TestPipelineFig3 pins the running example: the pipeline finds exactly the
// fig 3 race.
func TestPipelineFig3(t *testing.T) {
	tr := trace.NewBuilder().
		Fork(0, 1).Fork(0, 2).
		Put(2, 0, trace.StrValue("a.com"), trace.IntValue(1), trace.NilValue).
		Put(1, 0, trace.StrValue("a.com"), trace.IntValue(2), trace.IntValue(1)).
		JoinAll(0, 1, 2).
		Size(0, 0, 1).
		Trace()
	p := runParallel(t, tr, 1, Config{Shards: 4})
	races := p.Races()
	if len(races) != 1 {
		t.Fatalf("races = %v", races)
	}
	if races[0].First.Method != "put" || races[0].Second.Method != "put" {
		t.Errorf("race = %v, want the two puts", races[0])
	}
	if !races[0].FirstClock.Concurrent(races[0].SecondClock) {
		t.Errorf("reported clocks must be concurrent: %s vs %s",
			races[0].FirstClock, races[0].SecondClock)
	}
}

// TestCompactThroughPipeline: compaction requests travel the shard streams
// without changing verdicts, and reclamation totals surface in the merged
// stats.
func TestCompactThroughPipeline(t *testing.T) {
	gcfg := trace.DefaultGenConfig()
	gcfg.Objects = 4
	tr := trace.Generate(rand.New(rand.NewSource(99)), gcfg)

	serial := runSerial(t, tr, gcfg.Objects, core.Config{})

	p := New(Config{Shards: 3, BatchSize: 2})
	for o := 0; o < gcfg.Objects; o++ {
		p.Register(trace.ObjID(o), dictRep)
	}
	en := hb.New()
	for i := range tr.Events {
		e := &tr.Events[i]
		if _, err := en.Process(e); err != nil {
			t.Fatal(err)
		}
		if err := p.Process(e); err != nil {
			t.Fatal(err)
		}
		if e.Kind == trace.JoinEvent {
			p.Compact(en.MeetLive())
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Races != serial.Stats().Races {
		t.Errorf("races with compaction = %d, want %d", p.Stats().Races, serial.Stats().Races)
	}
	if p.Stats().Reclaimed == 0 {
		t.Error("the joinall trace shape must reclaim dominated points")
	}
}

// TestErrorPropagation: an action on an unregistered object surfaces as the
// merged error, tagged with the earliest failing event.
func TestErrorPropagation(t *testing.T) {
	tr := trace.NewBuilder().
		Put(0, 5, trace.StrValue("k"), trace.IntValue(1), trace.NilValue).
		Trace()
	p := New(Config{Shards: 2})
	err := p.RunTrace(tr)
	if err == nil || !strings.Contains(err.Error(), "no registered representation") {
		t.Fatalf("err = %v, want registration failure", err)
	}
	// Close is idempotent and keeps returning the error.
	if err2 := p.Close(); err2 == nil {
		t.Fatal("second Close lost the error")
	}
}

// TestMaxRacesCap: the merged retention honors the configured cap while the
// counters stay exact.
func TestMaxRacesCap(t *testing.T) {
	b := trace.NewBuilder().Fork(0, 1).Fork(0, 2)
	for i := 0; i < 20; i++ {
		b.Put(1, trace.ObjID(i%4), trace.StrValue("k"), trace.IntValue(int64(i+1)), trace.IntValue(int64(i)))
		b.Put(2, trace.ObjID(i%4), trace.StrValue("k"), trace.IntValue(int64(i+100)), trace.IntValue(int64(i+1)))
	}
	tr := b.Trace()
	p := New(Config{Shards: 3, Core: core.Config{MaxRaces: 5}})
	for o := 0; o < 4; o++ {
		p.Register(trace.ObjID(o), dictRep)
	}
	if err := p.RunTrace(tr); err != nil {
		t.Fatal(err)
	}
	if len(p.Races()) > 5 {
		t.Errorf("retained %d races, cap is 5", len(p.Races()))
	}
	if p.Stats().Races <= 5 {
		t.Errorf("race counter %d should exceed the retention cap", p.Stats().Races)
	}
}

// TestOnRaceFromShards: the OnRace callback fires once per race from shard
// goroutines; a mutex-protected counter must observe all of them.
func TestOnRaceFromShards(t *testing.T) {
	var mu chan struct{} = make(chan struct{}, 1)
	mu <- struct{}{}
	count := 0
	cfg := Config{Shards: 4, Core: core.Config{OnRace: func(core.Race) {
		<-mu
		count++
		mu <- struct{}{}
	}}}
	gcfg := trace.DefaultGenConfig()
	gcfg.Objects = 5
	tr := trace.Generate(rand.New(rand.NewSource(13)), gcfg)
	p := runParallel(t, tr, gcfg.Objects, cfg)
	if count != p.Stats().Races {
		t.Errorf("OnRace fired %d times for %d races", count, p.Stats().Races)
	}
}

// TestDieEventsRouted: object death reaches the owning shard and reclaims
// its points.
func TestDieEventsRouted(t *testing.T) {
	b := trace.NewBuilder()
	for o := 0; o < 8; o++ {
		b.Put(0, trace.ObjID(o), trace.StrValue("k"), trace.IntValue(1), trace.NilValue)
		b.Die(0, trace.ObjID(o))
	}
	p := New(Config{Shards: 4})
	for o := 0; o < 8; o++ {
		p.Register(trace.ObjID(o), dictRep)
	}
	if err := p.RunTrace(b.Trace()); err != nil {
		t.Fatal(err)
	}
	if p.Stats().ActivePoints != 0 {
		t.Errorf("active points = %d after all objects died", p.Stats().ActivePoints)
	}
	if p.Stats().Reclaimed == 0 {
		t.Error("die events must reclaim points")
	}
}

// TestBottomCompactIsNoop mirrors the serial detector's contract.
func TestBottomCompactIsNoop(t *testing.T) {
	p := New(Config{Shards: 2})
	if p.Compact(nil) != 0 {
		t.Fatal("bottom threshold must be a no-op")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
