package pipeline

import (
	"sort"
	"strings"
	"sync"
	"testing"

	"math/rand"

	"repro/internal/ap"
	"repro/internal/core"
	"repro/internal/hb"
	"repro/internal/trace"
)

// raceCollector accumulates OnRace renderings from shard goroutines.
type raceCollector struct {
	mu  sync.Mutex
	log []string
}

func (rc *raceCollector) onRace(r core.Race) {
	rc.mu.Lock()
	rc.log = append(rc.log, r.String())
	rc.mu.Unlock()
}

func (rc *raceCollector) sorted() []string {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	out := append([]string(nil), rc.log...)
	sort.Strings(out)
	return out
}

// runBarrierSplit drives tr through a pipeline that hands its sharded
// detector state off through Barrier at the split point (split < 0 disables
// the handoff): export on the first pipeline, import into a fresh one with
// the same shard count, exactly as rd2d's durable checkpoint/restore does.
// Returns the final pipeline's stats, distinct-object count, and the
// concatenated OnRace multiset.
func runBarrierSplit(t *testing.T, tr *trace.Trace, objects, shards, split, compactEvery int) (core.Stats, int, []string) {
	t.Helper()
	rc := &raceCollector{}
	cfg := Config{Shards: shards, BatchSize: 4,
		Core: core.Config{MaxRaces: 1 << 20, OnRace: rc.onRace}}
	repFor := func(trace.ObjID) (ap.Rep, error) { return dictRep, nil }

	p := New(cfg)
	for o := 0; o < objects; o++ {
		p.Register(trace.ObjID(o), dictRep)
	}
	en := hb.New()
	for i := range tr.Events {
		if i == split {
			states := make([]*core.DetectorState, shards)
			if err := p.Barrier(func(si int, det *core.Detector) {
				states[si] = det.ExportState()
			}); err != nil {
				t.Fatalf("export Barrier: %v", err)
			}
			if err := p.Close(); err != nil {
				t.Fatalf("Close after export: %v", err)
			}
			p2 := New(cfg)
			if err := p2.Barrier(func(si int, det *core.Detector) {
				if err := det.ImportState(states[si], repFor); err != nil {
					t.Errorf("shard %d ImportState: %v", si, err)
				}
			}); err != nil {
				t.Fatalf("import Barrier: %v", err)
			}
			for o := 0; o < objects; o++ {
				p2.Register(trace.ObjID(o), dictRep)
			}
			p = p2
		}
		e := &tr.Events[i]
		if _, err := en.Process(e); err != nil {
			t.Fatal(err)
		}
		if err := p.Process(e); err != nil {
			t.Fatal(err)
		}
		if compactEvery > 0 && i > 0 && i%compactEvery == 0 {
			p.Compact(en.MeetLive())
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	return p.Stats(), p.DistinctObjects(), rc.sorted()
}

// A pipeline rebuilt from a Barrier export at any split point must report
// the same race multiset and land on the same merged stats as the
// uninterrupted run — the sharded-session recovery path in rd2d.
func TestBarrierExportImportDifferential(t *testing.T) {
	gcfg := trace.DefaultGenConfig()
	gcfg.Threads, gcfg.Objects, gcfg.Keys = 4, 6, 3
	gcfg.OpsMin, gcfg.OpsMax = 60, 120
	for _, seed := range []int64{7, 8} {
		for _, compactEvery := range []int{0, 25} {
			mk := func() *trace.Trace {
				return trace.Generate(rand.New(rand.NewSource(seed)), gcfg)
			}
			tr := mk()
			const shards = 3
			wantStats, wantDistinct, wantLog := runBarrierSplit(t, tr, gcfg.Objects, shards, -1, compactEvery)
			for split := 0; split <= tr.Len(); split += 1 + tr.Len()/4 {
				gotStats, gotDistinct, gotLog := runBarrierSplit(t, mk(), gcfg.Objects, shards, split, compactEvery)
				if gotStats != wantStats {
					t.Fatalf("seed %d compact %d split %d: stats diverge:\n  got  %+v\n  want %+v",
						seed, compactEvery, split, gotStats, wantStats)
				}
				if gotDistinct != wantDistinct {
					t.Fatalf("seed %d compact %d split %d: distinct %d, want %d",
						seed, compactEvery, split, gotDistinct, wantDistinct)
				}
				if strings.Join(gotLog, "\n") != strings.Join(wantLog, "\n") {
					t.Fatalf("seed %d compact %d split %d: race multiset diverges:\n  got  %v\n  want %v",
						seed, compactEvery, split, gotLog, wantLog)
				}
			}
		}
	}
}

// Barrier must observe every previously produced item: after N events, each
// shard's detector has processed its share of exactly N actions.
func TestBarrierQuiescesAtBoundary(t *testing.T) {
	b := trace.NewBuilder()
	const n = 50
	for i := 0; i < n; i++ {
		b.Put(0, trace.ObjID(i%5), trace.StrValue("k"), trace.IntValue(int64(i+1)), trace.NilValue)
	}
	tr := b.Trace()
	p := New(Config{Shards: 3, BatchSize: 8})
	for o := 0; o < 5; o++ {
		p.Register(trace.ObjID(o), dictRep)
	}
	en := hb.New()
	for i := range tr.Events {
		e := &tr.Events[i]
		if _, err := en.Process(e); err != nil {
			t.Fatal(err)
		}
		if err := p.Process(e); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	var mu sync.Mutex
	if err := p.Barrier(func(_ int, det *core.Detector) {
		mu.Lock()
		total += det.Stats().Actions
		mu.Unlock()
	}); err != nil {
		t.Fatalf("Barrier: %v", err)
	}
	if total != n {
		t.Fatalf("barrier observed %d actions, want %d", total, n)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Barrier(func(int, *core.Detector) {}); err == nil {
		t.Fatal("Barrier after Close must fail")
	}
}

// boomRep panics on first touch, retiring its shard.
type boomRep struct{ ap.Rep }

func (boomRep) Touch([]ap.Point, trace.Action) ([]ap.Point, error) { panic("boom") }

// A shard retired by a panic must not deadlock Barrier: the control item is
// acknowledged as skipped and Barrier reports the degraded shard, so the
// caller abandons the checkpoint instead of persisting partial state.
func TestBarrierDeadShardNoDeadlock(t *testing.T) {
	p := New(Config{Shards: 2, BatchSize: 1})
	p.Register(0, boomRep{dictRep})
	for o := 1; o < 6; o++ {
		p.Register(trace.ObjID(o), dictRep)
	}
	b := trace.NewBuilder()
	b.Put(0, 0, trace.StrValue("k"), trace.IntValue(1), trace.NilValue) // panics its shard
	for o := 1; o < 6; o++ {
		b.Put(0, trace.ObjID(o), trace.StrValue("k"), trace.IntValue(1), trace.NilValue)
	}
	tr := b.Trace()
	en := hb.New()
	for i := range tr.Events {
		e := &tr.Events[i]
		if _, err := en.Process(e); err != nil {
			t.Fatal(err)
		}
		if err := p.Process(e); err != nil {
			t.Fatal(err)
		}
	}
	ran := make([]bool, 2)
	err := p.Barrier(func(si int, _ *core.Detector) { ran[si] = true })
	if err == nil || !strings.Contains(err.Error(), "degraded") {
		t.Fatalf("Barrier on degraded pipeline: err = %v, want degraded-shard error", err)
	}
	live := 0
	for _, r := range ran {
		if r {
			live++
		}
	}
	if live != 1 {
		t.Fatalf("barrier ran on %d shards, want exactly the 1 surviving shard", live)
	}
	p.Close()
	if !p.Degraded() {
		t.Fatal("pipeline must report Degraded after the shard panic")
	}
}

// A panic inside the barrier fn itself must still acknowledge the control
// item (as skipped) and retire the shard, never hang the producer.
func TestBarrierFnPanicRetiresShard(t *testing.T) {
	p := New(Config{Shards: 2})
	err := p.Barrier(func(si int, _ *core.Detector) {
		if si == 0 {
			panic("ctl boom")
		}
	})
	if err == nil || !strings.Contains(err.Error(), "degraded") {
		t.Fatalf("err = %v, want degraded-shard error", err)
	}
	p.Close()
	if p.ShardPanics() != 1 {
		t.Fatalf("ShardPanics = %d, want 1", p.ShardPanics())
	}
}
