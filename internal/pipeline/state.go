package pipeline

// Durable-session state transfer for the sharded pipeline (DESIGN.md §15).
// The pipeline's resumable state is the union of its shard detectors'
// exports; ExportState quiesces every shard at the producer's current
// stream position (Barrier) and merges the per-shard exports into one
// core.DetectorState, so a snapshot is independent of the shard count it
// was taken under. ImportState routes the merged state back out by the
// pipeline's own object→shard hash — under a different -shards the objects
// simply land on their new owners.
//
// Per-object state (points, clocks, racy ids) survives the round trip
// exactly. The historical scalar counters cannot be re-attributed to shards
// once merged, so the import folds them into shard 0; merged totals after
// Close remain exact, except PeakActive, whose merged value is the sum of
// per-shard peaks and may drift low across a restore (the per-shard peak
// history is gone). Race verdicts are unaffected.

import (
	"sort"

	"repro/internal/ap"
	"repro/internal/core"
	"repro/internal/trace"
)

// ExportState quiesces every shard after all previously produced items and
// merges their detector exports into one deterministic, shard-count
// independent DetectorState. Must be called from the producing goroutine.
// It fails if any shard was retired by a panic or stopped by an error —
// partial state must never be checkpointed.
func (p *Pipeline) ExportState() (*core.DetectorState, error) {
	states := make([]*core.DetectorState, len(p.shards))
	err := p.Barrier(func(i int, det *core.Detector) {
		states[i] = det.ExportState()
	})
	if err != nil {
		return nil, err
	}
	merged := &core.DetectorState{}
	for _, st := range states {
		merged.Objects = append(merged.Objects, st.Objects...)
		merged.RacyObjs = append(merged.RacyObjs, st.RacyObjs...)
		merged.DeadRacy += st.DeadRacy
		merged.Stats.Actions += st.Stats.Actions
		merged.Stats.Checks += st.Stats.Checks
		merged.Stats.Races += st.Stats.Races
		merged.Stats.RacyEvents += st.Stats.RacyEvents
		merged.Stats.ActivePoints += st.Stats.ActivePoints
		merged.Stats.PeakActive += st.Stats.PeakActive
		merged.Stats.Reclaimed += st.Stats.Reclaimed
	}
	sort.Slice(merged.Objects, func(i, j int) bool { return merged.Objects[i].Obj < merged.Objects[j].Obj })
	sort.Slice(merged.RacyObjs, func(i, j int) bool { return merged.RacyObjs[i] < merged.RacyObjs[j] })
	return merged, nil
}

// ImportState loads a merged export into the pipeline's fresh shard
// detectors: each object's state goes to its owning shard (the same routing
// Process uses), historical counters and the dead-racy count to shard 0.
// repFor resolves each object's representation, exactly as at Register
// time. Must be called from the producing goroutine before any events are
// produced.
func (p *Pipeline) ImportState(st *core.DetectorState, repFor func(trace.ObjID) (ap.Rep, error)) error {
	parts := make([]core.DetectorState, len(p.shards))
	for _, oe := range st.Objects {
		sh := p.shardOf(oe.Obj)
		parts[sh].Objects = append(parts[sh].Objects, oe)
	}
	for _, obj := range st.RacyObjs {
		sh := p.shardOf(obj)
		parts[sh].RacyObjs = append(parts[sh].RacyObjs, obj)
	}
	parts[0].DeadRacy = st.DeadRacy
	parts[0].Stats = st.Stats
	errs := make([]error, len(p.shards))
	if err := p.Barrier(func(i int, det *core.Detector) {
		errs[i] = det.ImportState(&parts[i], repFor)
	}); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
