package pipeline

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/trace"
)

// BenchmarkPipelineFrontend measures the full producer path end-to-end:
// happens-before stamping plus routing every stamped event into the shard
// detectors (RunTrace), on an action-dominated multi-object trace. One op is
// one whole-trace run, so allocs/op is the total allocation count of the
// stamp-and-feed front-end plus detection.
func BenchmarkPipelineFrontend(b *testing.B) {
	gcfg := trace.GenConfig{
		Threads: 8, Objects: 32, Keys: 64, Vals: 8, Locks: 4,
		OpsMin: 1500, OpsMax: 1500,
		PSize: 5, PGet: 45, PLocked: 10, PRemove: 20,
	}
	tr := trace.Generate(rand.New(rand.NewSource(7)), gcfg)

	shardCounts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		shardCounts = append(shardCounts, p)
	}
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := New(Config{Shards: shards})
				for o := 0; o < gcfg.Objects; o++ {
					p.Register(trace.ObjID(o), dictRep)
				}
				if err := p.RunTrace(tr); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(tr.Len()*b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}

	// The two-pass parallel front end: parallel stamping plus zero-copy
	// chunk dispatch. The benchgate ratio check (ci.sh) pins
	// shards=4/stamp=2 at or below shards=1 on multi-CPU hosts — the
	// Amdahl wall this path removes must not silently return — and bounds
	// the two-pass overhead on single-CPU hosts, where no parallel
	// speedup is physically possible.
	for _, pc := range []struct{ shards, stamp int }{{4, 2}, {4, 4}} {
		b.Run(fmt.Sprintf("shards=%d/stamp=%d", pc.shards, pc.stamp), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := New(Config{Shards: pc.shards, StampWorkers: pc.stamp})
				for o := 0; o < gcfg.Objects; o++ {
					p.Register(trace.ObjID(o), dictRep)
				}
				if err := p.RunTrace(tr); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(tr.Len()*b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}
