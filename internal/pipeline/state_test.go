package pipeline

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ap"
	"repro/internal/core"
	"repro/internal/hb"
	"repro/internal/trace"
)

// runMergedSplit drives tr through a pipeline whose merged state is handed
// off at the split point via ExportState/ImportState — possibly into a
// pipeline with a different shard count, as a durable restore under a
// changed -shards does.
func runMergedSplit(t *testing.T, tr *trace.Trace, objects, shards1, shards2, split int) (core.Stats, []string) {
	t.Helper()
	rc := &raceCollector{}
	mk := func(shards int) *Pipeline {
		p := New(Config{Shards: shards, BatchSize: 4,
			Core: core.Config{MaxRaces: 1 << 20, OnRace: rc.onRace}})
		for o := 0; o < objects; o++ {
			p.Register(trace.ObjID(o), dictRep)
		}
		return p
	}
	repFor := func(trace.ObjID) (ap.Rep, error) { return dictRep, nil }
	p := mk(shards1)
	en := hb.New()
	for i := range tr.Events {
		if i == split {
			st, err := p.ExportState()
			if err != nil {
				t.Fatalf("ExportState: %v", err)
			}
			if err := p.Close(); err != nil {
				t.Fatalf("Close after export: %v", err)
			}
			p = mk(shards2)
			if err := p.ImportState(st, repFor); err != nil {
				t.Fatalf("ImportState: %v", err)
			}
		}
		e := &tr.Events[i]
		if _, err := en.Process(e); err != nil {
			t.Fatal(err)
		}
		if err := p.Process(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	return p.Stats(), rc.sorted()
}

// A pipeline rebuilt from a merged export must agree with the uninterrupted
// run on race verdicts and counters, even when the restore uses a different
// shard count. PeakActive is excluded: merged it is a sum of per-shard
// peaks, which legitimately depends on sharding history.
func TestMergedExportImportAcrossShardCounts(t *testing.T) {
	gcfg := trace.DefaultGenConfig()
	gcfg.Threads, gcfg.Objects, gcfg.Keys = 4, 8, 3
	gcfg.OpsMin, gcfg.OpsMax = 80, 160
	mk := func(seed int64) *trace.Trace {
		return trace.Generate(rand.New(rand.NewSource(seed)), gcfg)
	}
	for _, seed := range []int64{11, 12} {
		tr := mk(seed)
		wantStats, wantLog := runMergedSplit(t, mk(seed), gcfg.Objects, 3, 3, -1)
		for _, shards2 := range []int{1, 3, 4} {
			for split := 0; split <= tr.Len(); split += 1 + tr.Len()/3 {
				gotStats, gotLog := runMergedSplit(t, mk(seed), gcfg.Objects, 3, shards2, split)
				gotStats.PeakActive, wantStats.PeakActive = 0, 0
				if gotStats != wantStats {
					t.Fatalf("seed %d shards 3→%d split %d: stats diverge:\n  got  %+v\n  want %+v",
						seed, shards2, split, gotStats, wantStats)
				}
				if strings.Join(gotLog, "\n") != strings.Join(wantLog, "\n") {
					t.Fatalf("seed %d shards 3→%d split %d: race multiset diverges:\n  got  %v\n  want %v",
						seed, shards2, split, gotLog, wantLog)
				}
			}
		}
	}
}

// ExportState on a degraded pipeline must fail rather than hand back
// partial state.
func TestMergedExportDegradedFails(t *testing.T) {
	p := New(Config{Shards: 2, BatchSize: 1})
	p.Register(0, boomRep{dictRep})
	b := trace.NewBuilder()
	b.Put(0, 0, trace.StrValue("k"), trace.IntValue(1), trace.NilValue)
	tr := b.Trace()
	en := hb.New()
	e := &tr.Events[0]
	if _, err := en.Process(e); err != nil {
		t.Fatal(err)
	}
	if err := p.Process(e); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ExportState(); err == nil {
		t.Fatal("ExportState on degraded pipeline must fail")
	}
	p.Close()
}
