package pipeline

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/core"
	"repro/internal/hb"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// cloneStampAll is the historical clone-per-event happens-before stamper
// (Table 1 with a fresh Clone for every stamped clock), kept verbatim as
// the differential reference for the segment-snapshot engine in internal/hb.
func cloneStampAll(tr *trace.Trace) error {
	threads := map[vclock.Tid]vclock.VC{}
	locks := map[trace.LockID]vclock.VC{}
	chans := map[trace.ChanID][]vclock.VC{}
	clockOf := func(t vclock.Tid) vclock.VC {
		c, ok := threads[t]
		if !ok {
			c = vclock.VC(nil).Inc(t)
			threads[t] = c
		}
		return c
	}
	for i := range tr.Events {
		e := &tr.Events[i]
		t := e.Thread
		ct := clockOf(t)
		switch e.Kind {
		case trace.ForkEvent:
			if _, exists := threads[e.Other]; exists {
				return fmt.Errorf("thread t%d forked twice", e.Other)
			}
			e.Clock = ct.Clone()
			threads[e.Other] = ct.Clone().Inc(e.Other)
			threads[t] = ct.Inc(t)
		case trace.JoinEvent:
			cu, ok := threads[e.Other]
			if !ok {
				return fmt.Errorf("join on unknown thread t%d", e.Other)
			}
			threads[t] = ct.Join(cu)
			e.Clock = threads[t].Clone()
		case trace.AcquireEvent:
			threads[t] = ct.Join(locks[e.Lock])
			e.Clock = threads[t].Clone()
		case trace.ReleaseEvent:
			e.Clock = ct.Clone()
			locks[e.Lock] = ct.Clone()
			threads[t] = ct.Inc(t)
		case trace.SendEvent:
			e.Clock = ct.Clone()
			chans[e.Chan] = append(chans[e.Chan], ct.Clone())
			threads[t] = ct.Inc(t)
		case trace.RecvEvent:
			q := chans[e.Chan]
			if len(q) == 0 {
				return fmt.Errorf("receive on channel c%d with no pending send", e.Chan)
			}
			msg := q[0]
			chans[e.Chan] = q[1:]
			threads[t] = ct.Join(msg)
			e.Clock = threads[t].Clone()
		default:
			e.Clock = ct.Clone()
		}
	}
	return nil
}

// detectStamped runs a serial detector over an already-stamped trace
// without re-stamping it.
func detectStamped(t *testing.T, tr *trace.Trace, objects int) *core.Detector {
	t.Helper()
	d := core.New(core.Config{})
	for o := 0; o < objects; o++ {
		d.Register(trace.ObjID(o), dictRep)
	}
	for i := range tr.Events {
		if err := d.Process(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// TestDifferentialSnapshotVsCloneStamping is the stamping differential the
// tentpole's acceptance criterion requires: on randomized traces, the
// zero-clone snapshot stamper must produce byte-identical Event.Clock
// values to the historical clone-per-event stamper, and both stampings must
// drive the serial detector and the sharded pipeline to identical race
// verdicts.
func TestDifferentialSnapshotVsCloneStamping(t *testing.T) {
	gcfg := trace.DefaultGenConfig()
	gcfg.Threads, gcfg.Objects, gcfg.Keys = 5, 4, 3
	gcfg.OpsMin, gcfg.OpsMax = 10, 30
	for _, seed := range []int64{41, 42, 43, 44, 45, 46, 47, 48} {
		r := rand.New(rand.NewSource(seed))
		snapTr := trace.Generate(r, gcfg)
		cloneTr := trace.Generate(rand.New(rand.NewSource(seed)), gcfg) // identical trace

		if err := hb.StampAll(snapTr); err != nil {
			t.Fatal(err)
		}
		if err := cloneStampAll(cloneTr); err != nil {
			t.Fatal(err)
		}

		for i := range snapTr.Events {
			got, want := snapTr.Events[i].Clock, cloneTr.Events[i].Clock
			if !slices.Equal(got, want) {
				t.Fatalf("seed %d: event %d (%s): snapshot clock %s != clone clock %s",
					seed, i, snapTr.Events[i].String(), got, want)
			}
		}

		// Identical race verdicts: serial on both stampings, sharded on the
		// snapshot stamping.
		serialClone := detectStamped(t, cloneTr, gcfg.Objects)
		serialSnap := detectStamped(t, snapTr, gcfg.Objects)
		if got, want := serialSnap.Stats().Races, serialClone.Stats().Races; got != want {
			t.Fatalf("seed %d: serial races differ: snapshot %d, clone %d", seed, got, want)
		}
		wantRaces := append([]core.Race(nil), serialClone.Races()...)
		core.SortRaces(wantRaces)
		gotRaces := append([]core.Race(nil), serialSnap.Races()...)
		core.SortRaces(gotRaces)
		for i := range wantRaces {
			if raceKey(gotRaces[i]) != raceKey(wantRaces[i]) {
				t.Fatalf("seed %d: serial race[%d] differs: %v vs %v",
					seed, i, raceKey(gotRaces[i]), raceKey(wantRaces[i]))
			}
		}

		for _, shards := range []int{1, 3} {
			p := runParallel(t, snapTr, gcfg.Objects, Config{Shards: shards, BatchSize: 8})
			if got, want := p.Stats().Races, serialClone.Stats().Races; got != want {
				t.Errorf("seed %d shards %d: races = %d, want %d", seed, shards, got, want)
			}
			got := p.Races()
			if len(got) != len(wantRaces) {
				t.Fatalf("seed %d shards %d: %d retained races, want %d", seed, shards, len(got), len(wantRaces))
			}
			for i := range got {
				if raceKey(got[i]) != raceKey(wantRaces[i]) {
					t.Errorf("seed %d shards %d: race[%d] = %v, want %v",
						seed, shards, i, raceKey(got[i]), raceKey(wantRaces[i]))
				}
			}
		}
	}
}
