package pipeline

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/wire"
)

// unstampedCopy returns a private raw copy of the trace so each run stamps
// its own events.
func unstampedCopy(tr *trace.Trace) *trace.Trace {
	ev := make([]trace.Event, len(tr.Events))
	copy(ev, tr.Events)
	for i := range ev {
		ev[i].Clock = nil
	}
	return &trace.Trace{Events: ev}
}

// requireSameVerdicts compares a serial detector's results to a pipeline's.
func requireSameVerdicts(t *testing.T, label string, serial *core.Detector, p *Pipeline) {
	t.Helper()
	keys := func(rs []core.Race) [][3]int {
		out := make([][3]int, len(rs))
		for i, r := range rs {
			out[i] = raceKey(r)
		}
		// Discovery order vs canonical order can differ on ties; compare
		// as sets of keys.
		slices.SortFunc(out, func(a, b [3]int) int { return slices.Compare(a[:], b[:]) })
		return out
	}
	want, have := keys(serial.Races()), keys(p.Races())
	if len(want) != len(have) {
		t.Fatalf("%s: race count mismatch: serial %d, pipeline %d", label, len(want), len(have))
	}
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("%s: race %d mismatch: serial %v, pipeline %v", label, i, want[i], have[i])
		}
	}
	ws, hs := serial.Stats(), p.Stats()
	if ws.Races != hs.Races || ws.Checks != hs.Checks || ws.Actions != hs.Actions {
		t.Fatalf("%s: stats mismatch: serial %+v, pipeline %+v", label, ws, hs)
	}
	if serial.DistinctObjects() != p.DistinctObjects() {
		t.Fatalf("%s: distinct objects mismatch: %d vs %d",
			label, serial.DistinctObjects(), p.DistinctObjects())
	}
}

// TestDifferentialParallelFrontend is ISSUE 6's acceptance differential
// inside the pipeline: with the two-pass parallel front end (StampWorkers
// >= 2, zero-copy chunk dispatch), the sharded pipeline must report the
// identical race set and stats as the serial detector, over both RunTrace
// and the chunked RunSource (with chunk sizes that slice through thread
// segments).
func TestDifferentialParallelFrontend(t *testing.T) {
	gcfg := trace.DefaultGenConfig()
	gcfg.Threads, gcfg.Objects, gcfg.Keys = 5, 8, 3
	gcfg.OpsMin, gcfg.OpsMax = 20, 60
	for _, seed := range []int64{1, 2, 3} {
		tr := trace.Generate(rand.New(rand.NewSource(seed)), gcfg)
		serial := runSerial(t, unstampedCopy(tr), gcfg.Objects, core.Config{})
		for _, shards := range []int{1, 3, 4} {
			for _, workers := range []int{2, 4} {
				label := fmt.Sprintf("seed=%d shards=%d stamp=%d", seed, shards, workers)
				cfg := Config{Shards: shards, StampWorkers: workers, Core: core.Config{}}
				p := runParallel(t, unstampedCopy(tr), gcfg.Objects, cfg)
				requireSameVerdicts(t, label+" trace", serial, p)

				scfg := cfg
				scfg.StampChunk = 23 // force many chunks and cross-chunk segments
				ps := New(scfg)
				for o := 0; o < gcfg.Objects; o++ {
					ps.Register(trace.ObjID(o), dictRep)
				}
				if err := ps.RunSource(unstampedCopy(tr).Source()); err != nil {
					t.Fatalf("%s source: %v", label, err)
				}
				requireSameVerdicts(t, label+" source", serial, ps)
			}
		}
	}
}

// TestCorpusParallelFrontend runs the full examples/traces corpus through
// serial detection and the parallel-front-end pipeline and requires
// identical race sets — the corpus leg of the satellite differential
// (ci.sh runs this under -race and -tags=clockcheck).
func TestCorpusParallelFrontend(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "traces")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty trace corpus")
	}
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		f, err := os.Open(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		tr, err := wire.ParseAny(f)
		f.Close()
		if err != nil {
			t.Fatalf("parsing %s: %v", ent.Name(), err)
		}
		var objs []trace.ObjID
		seen := map[trace.ObjID]bool{}
		for _, e := range tr.Events {
			if e.Kind == trace.ActionEvent && !seen[e.Act.Obj] {
				seen[e.Act.Obj] = true
				objs = append(objs, e.Act.Obj)
			}
		}
		slices.Sort(objs)

		serial := core.New(core.Config{})
		for _, o := range objs {
			serial.Register(o, dictRep)
		}
		if err := serial.RunTrace(unstampedCopy(tr)); err != nil {
			t.Fatalf("%s: serial: %v", ent.Name(), err)
		}
		for _, shards := range []int{1, 4} {
			p := New(Config{Shards: shards, StampWorkers: 2, StampChunk: 13})
			for _, o := range objs {
				p.Register(o, dictRep)
			}
			if err := p.RunSource(unstampedCopy(tr).Source()); err != nil {
				t.Fatalf("%s shards=%d: %v", ent.Name(), shards, err)
			}
			requireSameVerdicts(t, fmt.Sprintf("%s shards=%d", ent.Name(), shards), serial, p)
		}
	}
}

// TestParallelFrontendError checks error parity: a malformed trace yields
// the same positioned error through the parallel front end as through the
// serial one, with the valid prefix still detected.
func TestParallelFrontendError(t *testing.T) {
	tr := &trace.Trace{}
	tr.Append(trace.Fork(0, 1))
	tr.Append(trace.Act(1, trace.Action{Obj: 0, Method: "size", Rets: []trace.Value{trace.IntValue(0)}}))
	tr.Append(trace.Recv(1, 7)) // no pending send

	serialP := New(Config{Shards: 2})
	serialP.Register(0, dictRep)
	serialErr := serialP.RunTrace(unstampedCopy(tr))
	if serialErr == nil {
		t.Fatal("serial front end unexpectedly succeeded")
	}

	parP := New(Config{Shards: 2, StampWorkers: 2})
	parP.Register(0, dictRep)
	parErr := parP.RunTrace(unstampedCopy(tr))
	if parErr == nil {
		t.Fatal("parallel front end unexpectedly succeeded")
	}
	if serialErr.Error() != parErr.Error() {
		t.Fatalf("error mismatch:\n  serial:   %v\n  parallel: %v", serialErr, parErr)
	}
	if s, p := serialP.Stats().Actions, parP.Stats().Actions; s != p || s != 1 {
		t.Fatalf("prefix actions mismatch: serial %d, parallel %d (want 1)", s, p)
	}
}
