// Package pipeline parallelizes commutativity race detection (Algorithm 1)
// across CPU cores.
//
// Happens-before stamping (internal/hb) is inherently order-dependent — the
// auxiliary maps T and L of Table 1 evolve with every synchronization event
// — so it stays serial. Detection, however, is strictly per-object: all of
// Algorithm 1's state lives in the per-object objState (active points and
// their accumulated clocks), and an action on object o reads and writes
// only o's state. Hash-partitioning objects onto N shards, each owning a
// private core.Detector, therefore preserves every race verdict: each
// shard sees exactly the subsequence of stamped events for its objects, in
// trace order, which is indistinguishable (to a per-object algorithm) from
// the serial run. The differential tests in this package assert that
// equivalence on randomized traces.
//
// The producer (whoever calls Process — the monitored runtime's emit path
// or RunTrace) batches events per shard and hands them over bounded
// channels, amortizing channel synchronization over BatchSize events.
// Registrations and compaction thresholds travel the same ordered streams,
// so a shard never sees an action before its object's registration.
//
// Determinism: per-shard race reports are merged and sorted with
// core.SortRaces, so the merged report is independent of shard count and
// goroutine scheduling. Stats are summed across shards; Checks, Races,
// Actions, and DistinctObjects are exactly the serial counts (disjoint
// object partitions), while PeakActive becomes the sum of per-shard peaks
// (an upper bound on the serial peak, as shards peak at different times).
//
// Access point representations must be immutable after construction (the
// ap.Rep contract); ap.NaiveRep interns state inside Touch and is therefore
// not safe under the pipeline — use it only with the serial detector.
package pipeline

import (
	"fmt"
	"io"
	"log"
	"runtime"
	"runtime/debug"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/ap"
	"repro/internal/core"
	"repro/internal/hb"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// pipeObs bundles the pipeline-wide obs instruments, resolved once per
// pipeline from Config.Obs (per-shard instruments live on each shard so
// every worker updates its own cache line). Pipelines built against an rd2d
// session scope produce per-session series that roll up into the globals.
type pipeObs struct {
	events  *obs.Counter
	batches *obs.Counter
	// panics counts recovered detector-shard panics (supervision): each
	// one degrades its pipeline to a partial-but-honest result.
	panics *obs.Counter
	// dispatch spans batch handoffs to shard queues (items = batch length;
	// latency includes backpressure blocking on a full queue). detect spans
	// each shard batch through its private detector (items = events).
	dispatch *obs.Span
	detect   *obs.Span
}

func newPipeObs(reg *obs.Registry) *pipeObs {
	if reg == nil {
		reg = obs.Default
	}
	return &pipeObs{
		events:   reg.Counter("pipeline.events"),
		batches:  reg.Counter("pipeline.batches"),
		panics:   reg.Counter("pipeline.shard_panics"),
		dispatch: reg.Span(obs.StageDispatch),
		detect:   reg.Span(obs.StageDetect),
	}
}

// Defaults for Config fields left zero.
const (
	DefaultBatchSize = 128
	DefaultQueueLen  = 8
)

// Config configures a Pipeline.
type Config struct {
	// Shards is the number of detector shards; <= 0 means GOMAXPROCS.
	Shards int
	// BatchSize is the number of items handed to a shard per channel send;
	// <= 0 means DefaultBatchSize.
	BatchSize int
	// QueueLen is the per-shard channel depth in batches; <= 0 means
	// DefaultQueueLen. The producer blocks when a shard falls this far
	// behind (backpressure instead of unbounded buffering).
	QueueLen int
	// StampWorkers, when >= 2, switches RunTrace and RunSource to the
	// two-pass parallel front end (hb.StampAllParallel / hb.ParallelStream)
	// with that many body-stamping workers, and to zero-copy chunk
	// dispatch: shards receive index lists into the shared stamped chunk
	// instead of per-event copies. <= 1 keeps the serial stamper. The
	// stamped clocks and race verdicts are identical either way (the
	// differential tests in this package assert both).
	StampWorkers int
	// StampChunk is the events-per-chunk target of the parallel RunSource
	// front end; <= 0 means hb.DefaultChunkSize. RunTrace always stamps
	// the whole trace as one chunk.
	StampChunk int
	// Core configures each shard's private detector. MaxRaces caps both the
	// per-shard retention and the merged report. OnRace, when set, is
	// invoked from shard goroutines and must be safe for concurrent use.
	Core core.Config
	// Obs is the registry the pipeline's counters, gauges, and stage spans
	// record into (an rd2d session scope, say); nil means obs.Default. When
	// Core.Obs is nil it inherits this registry, so shard detectors report
	// into the same scope.
	Obs *obs.Registry
}

// itemKind discriminates the messages on a shard's stream.
type itemKind uint8

const (
	itemEvent    itemKind = iota // ev: a stamped action or die event
	itemRegister                 // ev.Act.Obj + rep: object registration
	itemCompact                  // threshold: compaction request
	itemChunk                    // chunk + idxs: events read in place from a shared chunk
	itemCtl                      // ctl: barrier control function (Barrier)
)

// ctlItem is one shard's share of a Barrier: fn runs on the shard goroutine
// against its private detector, then done receives whether it actually ran
// (false when the shard was retired by a panic or stopped by an error). The
// channel is buffered so the shard never blocks on a slow barrier caller.
type ctlItem struct {
	fn   func(*core.Detector)
	done chan bool
}

// item is one ordered message to a shard.
type item struct {
	kind      itemKind
	ev        trace.Event
	rep       ap.Rep
	threshold vclock.VC
	chunk     *eventChunk
	idxs      []int32
	ctl       *ctlItem
}

// eventChunk is a stamped run of events shared by every shard whose
// objects appear in it. Shards index into events through their private
// idxs list and never copy the ~136-byte Event; refs counts the shard
// items in flight, and the last unref fires the release hook (recycling
// the underlying hb.Chunk in the streaming path). Events are read-only for
// all holders, exactly like a shared Event.Clock.
type eventChunk struct {
	events  []trace.Event
	refs    atomic.Int32
	release func()
}

// unref drops one shard's reference, firing the release hook on the last.
func (c *eventChunk) unref() {
	if c.refs.Add(-1) == 0 && c.release != nil {
		c.release()
	}
}

// shard is one worker: a private detector fed over a bounded channel. Each
// shard owns its obs instruments (distinct cache lines, no cross-shard
// contention): queue depth in batches (producer increments on send, worker
// decrements after processing — the peak is the high-water backlog),
// events processed, and races found, updated once per batch.
//
// The detector's back-end arena (recycled object states, spill tables, and
// promoted clocks — see core/arena.go) is detector-private and unlocked,
// which is sound here because the detector is goroutine-confined: only the
// shard worker calls Process/Compact, and the merge path reads Races and
// Stats strictly after the worker's done channel closes. Race records
// themselves carry clocks from the arena's never-recycled report slab, so
// merged reports stay valid after further shard processing.
type shard struct {
	det    *core.Detector
	ch     chan []item
	done   chan struct{}
	err    error // first processing error (shard keeps draining)
	errSeq int
	panics int  // recovered panics (first one retires the detector)
	dead   bool // detector retired after a panic; shard drains only

	obsQueue  *obs.Gauge   // pipeline.shard.<i>.queue_batches
	obsEvents *obs.Counter // pipeline.shard.<i>.events
	obsRaces  *obs.Counter // pipeline.shard.<i>.races
	lastRaces int          // detector race count at last batch boundary
}

// Pipeline is a sharded parallel commutativity race detector. The producer
// side (Register, Process, Compact, Close) must be called from a single
// goroutine, or externally serialized — the monitored runtime's emit lock
// provides exactly that. Results (Races, Stats, DistinctObjects) are
// available after Close; calling them closes the pipeline implicitly.
type Pipeline struct {
	cfg     Config
	ob      *pipeObs
	shards  []*shard
	pending [][]item     // per-shard batch under construction (producer-owned)
	free    chan []item  // recycled batch buffers
	idxfree chan []int32 // recycled chunk index lists
	closed  bool

	// Merged results, filled by Close.
	races    []core.Race
	stats    core.Stats
	distinct int
	panics   int
	err      error
}

// New starts a pipeline with cfg.Shards detector goroutines.
func New(cfg Config) *Pipeline {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = DefaultQueueLen
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.Default
	}
	if cfg.Core.Obs == nil {
		cfg.Core.Obs = reg
	}
	p := &Pipeline{
		cfg:     cfg,
		ob:      newPipeObs(reg),
		pending: make([][]item, cfg.Shards),
		free:    make(chan []item, cfg.Shards*(cfg.QueueLen+2)),
		idxfree: make(chan []int32, cfg.Shards*4),
	}
	for i := 0; i < cfg.Shards; i++ {
		s := &shard{
			det:       core.New(cfg.Core),
			ch:        make(chan []item, cfg.QueueLen),
			done:      make(chan struct{}),
			obsQueue:  reg.Gauge(fmt.Sprintf("pipeline.shard.%d.queue_batches", i)),
			obsEvents: reg.Counter(fmt.Sprintf("pipeline.shard.%d.events", i)),
			obsRaces:  reg.Counter(fmt.Sprintf("pipeline.shard.%d.races", i)),
		}
		p.shards = append(p.shards, s)
		go p.run(s)
	}
	return p
}

// Shards returns the shard count.
func (p *Pipeline) Shards() int { return len(p.shards) }

// run is the shard goroutine: drain batches, feed the private detector.
// The detector work is supervised (runBatch): a panic retires the detector
// but never kills the goroutine, so the producer is never left blocking on
// a dead shard and the session degrades instead of crashing.
func (p *Pipeline) run(s *shard) {
	defer close(s.done)
	for batch := range s.ch {
		start := p.ob.detect.Start()
		nEvents := p.runBatch(s, batch)
		p.ob.detect.End(start, nEvents)
		// Metrics once per batch, not per item: queue depth drops, and the
		// shard's event/race counters advance by this batch's delta.
		if obs.Enabled() {
			s.obsQueue.Add(-1)
			p.ob.batches.Inc()
			if nEvents > 0 {
				s.obsEvents.Add(uint64(nEvents))
				p.ob.events.Add(uint64(nEvents))
			}
			if !s.dead {
				if r := s.det.Stats().Races; r > s.lastRaces {
					s.obsRaces.Add(uint64(r - s.lastRaces))
					s.lastRaces = r
				}
			}
		}
		// Drop chunk references and recycle index lists outside the panic
		// guard, so a mid-batch panic can never leak a chunk (stalling the
		// streaming front end's buffer recycling) or double-release one.
		for i := range batch {
			if batch[i].kind == itemChunk && batch[i].chunk != nil {
				batch[i].chunk.unref()
				p.putIdx(batch[i].idxs)
			}
		}
		// Recycle the buffer; drop item contents so clocks and reps are not
		// retained past their batch.
		clear(batch)
		select {
		case p.free <- batch[:0]:
		default:
		}
	}
	// Publish the detector's batched deltas once the stream drains, so
	// post-run snapshots are exact. A retired detector may be mid-update:
	// leave it alone.
	if !s.dead {
		s.det.FlushObs()
	}
}

// runBatch feeds one batch to the shard's detector under a panic guard and
// returns the number of events it carried. A recovered panic is logged with
// the offending item and stack, counted (pipeline.shard_panics), and
// retires the detector: the shard keeps draining so the producer never
// blocks, the races found before the panic are still merged (best-effort,
// see Close), and the pipeline reports Degraded.
func (p *Pipeline) runBatch(s *shard, batch []item) (nEvents int) {
	i := 0
	defer func() {
		if r := recover(); r != nil {
			s.panics++
			s.dead = true
			p.ob.panics.Inc()
			at := "batch boundary"
			if i < len(batch) {
				switch batch[i].kind {
				case itemEvent:
					at = fmt.Sprintf("event %d (%s)", batch[i].ev.Seq, &batch[i].ev)
				case itemRegister:
					at = fmt.Sprintf("register obj %d", batch[i].ev.Act.Obj)
				case itemCompact:
					at = "compact"
				case itemChunk:
					at = fmt.Sprintf("chunk item (%d events)", len(batch[i].idxs))
				case itemCtl:
					at = "barrier ctl"
				}
			}
			log.Printf("pipeline: recovered shard panic at %s: %v\n%s", at, r, debug.Stack())
		}
	}()
	for ; i < len(batch); i++ {
		it := &batch[i]
		switch it.kind {
		case itemEvent:
			nEvents++
			// After a failure or a panic the shard keeps draining (so the
			// producer never blocks) but stops detecting.
			if s.err != nil || s.dead {
				continue
			}
			if err := s.det.Process(&it.ev); err != nil {
				s.err, s.errSeq = err, it.ev.Seq
			}
		case itemChunk:
			// Zero-copy dispatch: the shard's events are read in place from
			// the shared stamped chunk through its private index list — no
			// per-event item copies, one channel message per shard per
			// chunk. The chunk reference is dropped by the caller (run)
			// outside this panic guard.
			nEvents += len(it.idxs)
			if s.err != nil || s.dead {
				continue
			}
			for _, ix := range it.idxs {
				ev := &it.chunk.events[ix]
				if err := s.det.Process(ev); err != nil {
					s.err, s.errSeq = err, ev.Seq
					break
				}
			}
		case itemRegister:
			if s.dead {
				continue
			}
			s.det.Register(it.ev.Act.Obj, it.rep)
		case itemCompact:
			if s.dead {
				continue
			}
			s.det.Compact(it.threshold)
		case itemCtl:
			// The done send rides a defer so a panicking fn still signals
			// (as skipped) before the outer recover retires the shard —
			// Barrier must never deadlock on a dying shard.
			func() {
				ran := false
				defer func() { it.ctl.done <- ran }()
				if s.err == nil && !s.dead {
					it.ctl.fn(s.det)
					ran = true
				}
			}()
		}
	}
	return nEvents
}

// splitmix64 is the shard hash: cheap, and scrambles the low bits so dense
// sequential object ids spread evenly over any shard count.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// shardOf maps an object to its owning shard.
func (p *Pipeline) shardOf(obj trace.ObjID) int {
	return int(splitmix64(uint64(int64(obj))) % uint64(len(p.shards)))
}

// send hands one finished batch to shard i under the stage.dispatch span
// (items = batch length; the latency includes blocking on a full shard
// queue, so dispatch p99 is the backpressure signal).
func (p *Pipeline) send(i int, buf []item) {
	start := p.ob.dispatch.Start()
	p.shards[i].obsQueue.Add(1)
	p.shards[i].ch <- buf
	p.ob.dispatch.End(start, len(buf))
}

// push appends an item to a shard's pending batch, flushing when full.
func (p *Pipeline) push(i int, it item) {
	buf := p.pending[i]
	if buf == nil {
		select {
		case buf = <-p.free:
		default:
			buf = make([]item, 0, p.cfg.BatchSize)
		}
	}
	buf = append(buf, it)
	if len(buf) >= p.cfg.BatchSize {
		p.send(i, buf)
		p.pending[i] = nil
		return
	}
	p.pending[i] = buf
}

// getIdx returns a recycled (or fresh) chunk index list.
func (p *Pipeline) getIdx() []int32 {
	select {
	case b := <-p.idxfree:
		return b[:0]
	default:
		return make([]int32, 0, 512)
	}
}

// putIdx recycles a chunk index list (shard side, after processing).
func (p *Pipeline) putIdx(b []int32) {
	if cap(b) == 0 {
		return
	}
	select {
	case p.idxfree <- b[:0]:
	default:
	}
}

// unroutable marks events the chunk router drops (synchronization events,
// already folded into clocks upstream). It also caps the shard count of
// the chunk-dispatch path at 255.
const unroutable = 0xFF

// routeOf computes the chunk-dispatch routing byte for one event: the
// owning shard for action/die events, unroutable for everything else. It
// runs inside stamping workers, so it must only read the event.
func (p *Pipeline) routeOf(e *trace.Event) uint8 {
	switch e.Kind {
	case trace.ActionEvent, trace.DieEvent:
		return uint8(p.shardOf(e.Act.Obj))
	}
	return unroutable
}

// dispatchChunk fans one stamped chunk out to the shards: a private index
// list per shard, one item per shard per chunk, events read in place.
// routes[i] is events[i]'s shard (unroutable to drop); release, if
// non-nil, fires when the last shard finishes with the chunk.
func (p *Pipeline) dispatchChunk(events []trace.Event, routes []uint8, release func()) {
	lists := make([][]int32, len(p.shards))
	n := 0
	for i, r := range routes {
		if r == unroutable {
			continue
		}
		if lists[r] == nil {
			lists[r] = p.getIdx()
			n++
		}
		lists[r] = append(lists[r], int32(i))
	}
	if n == 0 {
		if release != nil {
			release()
		}
		return
	}
	c := &eventChunk{events: events, release: release}
	c.refs.Store(int32(n))
	for sh, idxs := range lists {
		if idxs == nil {
			continue
		}
		// The chunk item rides the shard's ordered stream (after any
		// pending registrations/compactions) and flushes it immediately:
		// a chunk is a whole batch worth of events by itself, and prompt
		// delivery keeps the streaming front end's buffer recycling and
		// backpressure tight.
		p.push(sh, item{kind: itemChunk, chunk: c, idxs: idxs})
		if buf := p.pending[sh]; buf != nil {
			p.send(sh, buf)
			p.pending[sh] = nil
		}
	}
}

// Register associates an object with its access point representation. Like
// the serial detector, objects must be registered before their first
// action; the registration travels the owning shard's ordered stream. The
// rep must be immutable (safe for concurrent use from other shards that
// share it for other objects).
func (p *Pipeline) Register(obj trace.ObjID, rep ap.Rep) {
	p.push(p.shardOf(obj), item{
		kind: itemRegister,
		ev:   trace.Event{Act: trace.Action{Obj: obj}},
		rep:  rep,
	})
}

// Process routes one stamped event to its object's shard. Synchronization
// events are dropped here — the serial happens-before engine upstream has
// already folded them into every event's clock. The event's clock is a
// segment snapshot shared with every other event of the same thread
// segment (and possibly with lock clocks and in-flight channel messages);
// it travels into the shard by reference with zero copying, which is safe
// because both the engine and all shard detectors honor the hb package's
// Event.Clock immutability contract (verified by the -tags=clockcheck
// build). The event must not be mutated by the caller afterwards.
func (p *Pipeline) Process(e *trace.Event) error {
	switch e.Kind {
	case trace.ActionEvent, trace.DieEvent:
		p.push(p.shardOf(e.Act.Obj), item{kind: itemEvent, ev: *e})
	}
	return nil
}

// Compact broadcasts a compaction threshold to every shard. It is
// asynchronous — each shard compacts when the request reaches the head of
// its stream — so it returns 0; reclamation totals surface in the merged
// Stats after Close. The threshold must not be mutated afterwards.
func (p *Pipeline) Compact(threshold vclock.VC) int {
	if threshold.Bottom() {
		return 0
	}
	for i := range p.shards {
		p.push(i, item{kind: itemCompact, threshold: threshold})
	}
	return 0
}

// Flush sends every pending partial batch to its shard.
func (p *Pipeline) Flush() {
	for i, buf := range p.pending {
		if buf != nil {
			p.send(i, buf)
			p.pending[i] = nil
		}
	}
}

// Barrier quiesces every shard at the current stream position and runs fn on
// each shard's goroutine against its private detector — after everything
// produced so far, before anything produced later. It flushes pending partial
// batches, broadcasts a control item, and blocks until all shards have
// executed (or skipped) it; like the rest of the producer surface it must be
// called from the producing goroutine. rd2d's durable checkpointing uses it
// to export the sharded detectors at an exact event boundary, and to import
// restored shard states before the first event. fn sees each detector
// exclusively and must not retain it. A shard retired by a panic or stopped
// by a processing error skips fn and Barrier reports it: state gathered from
// the surviving shards would be incomplete, so the caller must abandon the
// checkpoint (the session is degraded anyway).
func (p *Pipeline) Barrier(fn func(i int, det *core.Detector)) error {
	if p.closed {
		return fmt.Errorf("pipeline: Barrier after Close")
	}
	p.Flush()
	ctls := make([]*ctlItem, len(p.shards))
	for i := range p.shards {
		i := i
		c := &ctlItem{
			fn:   func(det *core.Detector) { fn(i, det) },
			done: make(chan bool, 1),
		}
		ctls[i] = c
		p.send(i, []item{{kind: itemCtl, ctl: c}})
	}
	var skipped []int
	for i, c := range ctls {
		if !<-c.done {
			skipped = append(skipped, i)
		}
	}
	if len(skipped) > 0 {
		return fmt.Errorf("pipeline: barrier skipped on degraded shards %v", skipped)
	}
	return nil
}

// Close flushes pending batches, waits for every shard to drain, and merges
// results. It is idempotent; the first call returns the first error (by
// event sequence) any shard hit.
func (p *Pipeline) Close() error {
	if p.closed {
		return p.err
	}
	p.closed = true
	p.Flush()
	for _, s := range p.shards {
		close(s.ch)
	}
	for _, s := range p.shards {
		<-s.done
	}

	// Merge: stats sum exactly (disjoint object partitions) except
	// PeakActive, which becomes the sum of per-shard peaks. A shard whose
	// detector was retired by a panic may hold inconsistent state, so its
	// merge is itself supervised: whatever it can still report is kept,
	// and a second panic forfeits only that shard's contribution.
	// Pre-size the merged report: appending shard by shard would
	// re-copy the fat Race structs on every growth doubling.
	total := 0
	for _, s := range p.shards {
		total += len(s.det.Races())
	}
	p.races = make([]core.Race, 0, total)
	errSeq := 0
	for _, s := range p.shards {
		p.panics += s.panics
		p.mergeShard(s)
		if s.err != nil && (p.err == nil || s.errSeq < errSeq) {
			p.err = fmt.Errorf("pipeline: event %d: %w", s.errSeq, s.err)
			errSeq = s.errSeq
		}
	}
	core.SortRaces(p.races)
	if max := p.cfg.Core.MaxRaces; max == 0 && len(p.races) > core.DefaultMaxRaces {
		p.races = p.races[:core.DefaultMaxRaces]
	} else if max > 0 && len(p.races) > max {
		p.races = p.races[:max]
	}
	return p.err
}

// mergeShard folds one shard's results into the pipeline totals, under a
// panic guard so a detector corrupted by a recovered panic cannot take
// down the merge. The races snapshot is taken first — if the detector dies
// midway, whatever was already copied out is still reported.
func (p *Pipeline) mergeShard(s *shard) {
	defer func() {
		if r := recover(); r != nil {
			s.panics++
			p.panics++
			p.ob.panics.Inc()
			log.Printf("pipeline: recovered shard panic during merge: %v\n%s", r, debug.Stack())
		}
	}()
	p.races = append(p.races, s.det.Races()...)
	st := s.det.Stats()
	p.stats.Actions += st.Actions
	p.stats.Checks += st.Checks
	p.stats.Races += st.Races
	p.stats.RacyEvents += st.RacyEvents
	p.stats.ActivePoints += st.ActivePoints
	p.stats.PeakActive += st.PeakActive
	p.stats.Reclaimed += st.Reclaimed
	p.distinct += s.det.DistinctObjects()
}

// Degraded reports whether any shard lost work to a recovered panic: the
// merged race set is then partial but honest — every race listed was
// found, none are invented, some may be missing. Valid after Close.
func (p *Pipeline) Degraded() bool { return p.panics > 0 }

// ShardPanics returns the number of recovered shard panics (after Close).
func (p *Pipeline) ShardPanics() int { return p.panics }

// Races returns the merged race reports in canonical order (closing the
// pipeline if still open), capped like the serial detector's retention.
func (p *Pipeline) Races() []core.Race {
	p.Close()
	return p.races
}

// Stats returns the merged counters (closing the pipeline if still open).
func (p *Pipeline) Stats() core.Stats {
	p.Close()
	return p.stats
}

// DistinctObjects returns the number of distinct racy objects across all
// shards (closing the pipeline if still open).
func (p *Pipeline) DistinctObjects() int {
	p.Close()
	return p.distinct
}

// StatSnapshot implements obs.StatSource over the merged counters (closing
// the pipeline if still open), so harness tables render the pipeline with
// the same code path as the serial detectors.
func (p *Pipeline) StatSnapshot() []obs.Stat {
	p.Close()
	return append(p.stats.StatSnapshot(),
		obs.Stat{Name: "distinct_objects", Value: int64(p.distinct)},
		obs.Stat{Name: "shards", Value: int64(len(p.shards))})
}

// Err returns the merged error after Close (nil before).
func (p *Pipeline) Err() error { return p.err }

// RunTrace stamps the trace with a fresh happens-before engine, feeds
// every event through the shards, and closes the pipeline. Objects must
// already be registered. Stamping reuses one frozen snapshot per thread
// segment end-to-end: the same clock slice flows from the engine through
// the per-shard batches into the detectors without a single clone. With
// Config.StampWorkers >= 2 the trace is stamped by the two-pass parallel
// engine and dispatched as one zero-copy chunk (identical clocks, races,
// and error positions).
func (p *Pipeline) RunTrace(tr *trace.Trace) error {
	if p.cfg.StampWorkers >= 2 && len(p.shards) <= unroutable {
		return p.runTraceParallel(tr)
	}
	en := hb.NewObs(p.cfg.Obs)
	for i := range tr.Events {
		e := &tr.Events[i]
		if _, err := en.Process(e); err != nil {
			p.Close()
			return fmt.Errorf("pipeline: event %d (%s): %w", i, e, err)
		}
		if err := p.Process(e); err != nil {
			p.Close()
			return err
		}
	}
	return p.Close()
}

// runTraceParallel is RunTrace's two-pass front end: the whole trace is
// stamped as one chunk, and the per-shard index lists are built inside the
// stamping workers themselves — each worker routes its freshly stamped
// (cache-warm) span, so dispatch needs no pass of its own over the events.
// Spans are pushed in ascending order, so each shard still sees its events
// in trace order.
func (p *Pipeline) runTraceParallel(tr *trace.Trace) error {
	type span struct {
		lo    int
		lists [][]int32
	}
	var (
		mu    sync.Mutex
		spans []span
	)
	ps := hb.NewParallelStamperObs(p.cfg.StampWorkers, p.cfg.Obs)
	n, serr := ps.StampChunkPost(tr.Events, func(lo, hi int) {
		lists := make([][]int32, len(p.shards))
		for i := lo; i < hi; i++ {
			if r := p.routeOf(&tr.Events[i]); r != unroutable {
				if lists[r] == nil {
					lists[r] = p.getIdx()
				}
				lists[r] = append(lists[r], int32(i))
			}
		}
		mu.Lock()
		spans = append(spans, span{lo, lists})
		mu.Unlock()
	})
	ps.Engine().VerifySnapshots()
	slices.SortFunc(spans, func(a, b span) int { return a.lo - b.lo })
	// The stamped valid prefix is dispatched either way, matching the
	// serial loop's stop-at-first-error behavior.
	refs := 0
	for _, sp := range spans {
		for _, idxs := range sp.lists {
			if idxs != nil {
				refs++
			}
		}
	}
	if refs > 0 {
		c := &eventChunk{events: tr.Events[:n]}
		c.refs.Store(int32(refs))
		for _, sp := range spans {
			for sh, idxs := range sp.lists {
				if idxs == nil {
					continue
				}
				p.push(sh, item{kind: itemChunk, chunk: c, idxs: idxs})
				if buf := p.pending[sh]; buf != nil {
					p.send(sh, buf)
					p.pending[sh] = nil
				}
			}
		}
	}
	if serr != nil {
		p.Close()
		return fmt.Errorf("pipeline: event %d (%s): %w", n, &tr.Events[n], serr)
	}
	return p.Close()
}

// RunSource stamps a streaming event source, feeds every event through the
// shards, and closes the pipeline — the bounded-memory ingestion path: the
// shard queues provide backpressure. Objects must already be registered.
// Reports the identical race set as RunTrace over the same events. With
// Config.StampWorkers >= 2 stamping runs on the chunked two-pass front end
// (hb.ParallelStream): the skeleton pass of chunk N+1 overlaps body
// stamping and zero-copy shard dispatch of chunk N.
func (p *Pipeline) RunSource(src trace.Source) error {
	if p.cfg.StampWorkers >= 2 && len(p.shards) <= unroutable {
		return p.runSourceParallel(src)
	}
	st := hb.NewStreamObs(src, p.cfg.Obs)
	for {
		e, err := st.Next()
		if err == io.EOF {
			return p.Close()
		}
		if err != nil {
			p.Close()
			return fmt.Errorf("pipeline: %w", err)
		}
		if err := p.Process(&e); err != nil {
			p.Close()
			return err
		}
	}
}

// runSourceParallel is RunSource's chunked two-pass front end. Chunk
// buffers are recycled: the hb.Chunk is released when the last shard
// finishes reading events out of it.
func (p *Pipeline) runSourceParallel(src trace.Source) error {
	st := hb.NewParallelStream(src, hb.ParallelStreamConfig{
		Workers:   p.cfg.StampWorkers,
		ChunkSize: p.cfg.StampChunk,
		Route:     p.routeOf,
		Obs:       p.cfg.Obs,
	})
	defer st.Close()
	for {
		c, err := st.NextChunk()
		if err == io.EOF {
			return p.Close()
		}
		if err != nil {
			p.Close()
			return fmt.Errorf("pipeline: %w", err)
		}
		p.dispatchChunk(c.Events, c.Routes, c.Release)
	}
}
