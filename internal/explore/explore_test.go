package explore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ap"
	"repro/internal/specs"
	"repro/internal/trace"
)

func specReps(kind string) (ap.Rep, error) { return specs.Rep(kind) }

var (
	kA = trace.StrValue("a")
	kB = trace.StrValue("b")
	v1 = trace.IntValue(1)
	v2 = trace.IntValue(2)
)

func putOp(o trace.ObjID, k, v trace.Value) Op {
	return Op{Obj: o, Method: "put", Args: []trace.Value{k, v}}
}

func getOp(o trace.ObjID, k trace.Value) Op {
	return Op{Obj: o, Method: "get", Args: []trace.Value{k}}
}

func TestDuplicatePutsAllInterleavingsRacy(t *testing.T) {
	// Fig 1 with duplicate hosts: both interleavings racy, states agree on
	// the key set but the traces race.
	p := Program{
		Kinds: map[trace.ObjID]string{0: "dict"},
		Threads: [][]Op{
			{putOp(0, kA, v1)},
			{putOp(0, kA, v2)},
		},
	}
	out, err := Run(p, specReps, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Interleavings != 2 {
		t.Fatalf("interleavings = %d", out.Interleavings)
	}
	if out.Racy != out.Interleavings {
		t.Fatalf("racy = %d of %d; Theorem 5.2 says all or none", out.Racy, out.Interleavings)
	}
	if out.Deterministic {
		t.Error("final value of the key depends on the order; must be non-deterministic")
	}
}

func TestDistinctKeysRaceFreeAndDeterministic(t *testing.T) {
	p := Program{
		Kinds: map[trace.ObjID]string{0: "dict"},
		Threads: [][]Op{
			{putOp(0, kA, v1), getOp(0, kA)},
			{putOp(0, kB, v2), getOp(0, kB)},
		},
	}
	out, err := Run(p, specReps, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Interleavings != 6 { // C(4,2)
		t.Fatalf("interleavings = %d, want 6", out.Interleavings)
	}
	if out.Racy != 0 {
		t.Fatalf("racy = %d, want 0", out.Racy)
	}
	if !out.Deterministic || len(out.FinalStates) != 1 {
		t.Fatalf("final states: %v", out.FinalStates)
	}
}

func TestWriteReadRace(t *testing.T) {
	// The Section 1 program: put(5,7) ∥ get(5).
	p := Program{
		Kinds: map[trace.ObjID]string{0: "dict"},
		Threads: [][]Op{
			{putOp(0, trace.IntValue(5), trace.IntValue(7))},
			{getOp(0, trace.IntValue(5))},
		},
	}
	out, err := Run(p, specReps, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Both interleavings racy; final dictionary state identical (the get
	// does not mutate) — the non-determinism is in the get's return.
	if out.Racy != 2 {
		t.Fatalf("racy = %d", out.Racy)
	}
	if !out.Deterministic {
		t.Fatal("state is deterministic (only the observed return differs)")
	}
}

func TestMultipleObjects(t *testing.T) {
	p := Program{
		Kinds: map[trace.ObjID]string{0: "dict", 1: "counter"},
		Threads: [][]Op{
			{putOp(0, kA, v1), {Obj: 1, Method: "add", Args: []trace.Value{v1}}},
			{{Obj: 1, Method: "add", Args: []trace.Value{v1}}},
		},
	}
	out, err := Run(p, specReps, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The two counter adds expose order via returns: racy everywhere.
	if out.Racy != out.Interleavings {
		t.Fatalf("racy = %d of %d", out.Racy, out.Interleavings)
	}
	// But the final state is the same (both adds applied).
	if !out.Deterministic {
		t.Fatal("counter sum is order-independent")
	}
}

func TestTruncation(t *testing.T) {
	ops := func(n int, key trace.Value) []Op {
		out := make([]Op, n)
		for i := range out {
			out[i] = getOp(0, key)
		}
		return out
	}
	p := Program{
		Kinds:   map[trace.ObjID]string{0: "dict"},
		Threads: [][]Op{ops(6, kA), ops(6, kB)},
	}
	out, err := Run(p, specReps, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Truncated || out.Interleavings != 10 {
		t.Fatalf("out = %+v", out)
	}
}

func TestErrors(t *testing.T) {
	p := Program{
		Kinds:   map[trace.ObjID]string{0: "martian"},
		Threads: [][]Op{{getOp(0, kA)}},
	}
	if _, err := Run(p, specReps, 0); err == nil {
		t.Error("unknown kind must fail")
	}
	p2 := Program{
		Kinds:   map[trace.ObjID]string{0: "dict"},
		Threads: [][]Op{{{Obj: 0, Method: "frob"}}},
	}
	if _, err := Run(p2, specReps, 0); err == nil {
		t.Error("unknown method must fail")
	}
}

// TestPropAllOrNoneRacy is the schedule-generalization corollary of
// Theorem 5.2 on random small programs: the interleavings of a fork–join
// program are either all racy or all race-free, and race-free programs are
// state-deterministic.
func TestPropAllOrNoneRacy(t *testing.T) {
	keys := []trace.Value{kA, kB}
	vals := []trace.Value{trace.NilValue, v1, v2}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nThreads := 2 + r.Intn(2)
		threads := make([][]Op, nThreads)
		for i := range threads {
			n := 1 + r.Intn(2)
			for j := 0; j < n; j++ {
				k := keys[r.Intn(len(keys))]
				switch r.Intn(3) {
				case 0:
					threads[i] = append(threads[i], putOp(0, k, vals[r.Intn(len(vals))]))
				case 1:
					threads[i] = append(threads[i], getOp(0, k))
				default:
					threads[i] = append(threads[i], Op{Obj: 0, Method: "size"})
				}
			}
		}
		p := Program{Kinds: map[trace.ObjID]string{0: "dict"}, Threads: threads}
		out, err := Run(p, specReps, 5000)
		if err != nil {
			t.Log(err)
			return false
		}
		if out.Truncated {
			return true
		}
		if out.Racy != 0 && out.Racy != out.Interleavings {
			t.Logf("seed %d: %d racy of %d interleavings — violates all-or-none", seed, out.Racy, out.Interleavings)
			return false
		}
		if out.Racy == 0 && !out.Deterministic {
			t.Logf("seed %d: race-free but non-deterministic: %v", seed, out.FinalStates)
			return false
		}
		return true
	}, &quick.Config{MaxCount: 120})
	if err != nil {
		t.Fatal(err)
	}
}
