// Package explore enumerates the interleavings of a small multi-threaded
// program over monitored objects, executing each interleaving against the
// reference semantics and running the commutativity race detector on the
// induced trace.
//
// It serves two purposes. As a library feature it tests the atomicity of
// composed operations the way Shacham et al. (OOPSLA'11, discussed in the
// paper's Section 8) do: drive a composed operation from several threads,
// enumerate schedules, and compare outcomes. As a validation harness it
// checks the schedule-generalization corollary of Theorem 5.2: all
// interleavings of a fork–join program share the same happens-before
// relation, so either every interleaving is commutativity-race-free and
// they all end in the same state, or every interleaving contains a race.
//
// Induced traces are stamped by internal/hb, whose segment snapshots are
// shared across events (the Event.Clock immutability contract); everything
// here treats stamped clocks as read-only.
package explore

import (
	"fmt"
	"sort"

	"repro/internal/ap"
	"repro/internal/core"
	"repro/internal/semantics"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Op is one operation of a program thread: a method call whose return
// values are computed per interleaving by the reference semantics.
type Op struct {
	Obj    trace.ObjID
	Method string
	Args   []trace.Value
}

// Program is a fork–join program: the main thread forks one thread per
// entry of Threads, each runs its operation list, and main joins them all.
type Program struct {
	// Kinds maps each object to its semantics kind (and spec name).
	Kinds map[trace.ObjID]string
	// Threads lists each worker thread's operations in program order.
	Threads [][]Op
}

// Outcome summarizes the exploration.
type Outcome struct {
	// Interleavings is the number of schedules explored.
	Interleavings int
	// Truncated reports whether the limit stopped the enumeration.
	Truncated bool
	// FinalStates counts interleavings per final combined state.
	FinalStates map[string]int
	// Racy counts interleavings whose trace contains a commutativity race.
	Racy int
	// Deterministic is true when every explored interleaving reached the
	// same final state.
	Deterministic bool
}

// Run explores up to limit interleavings of the program, using reps to
// resolve each object kind's access point representation.
func Run(p Program, reps func(kind string) (ap.Rep, error), limit int) (Outcome, error) {
	if limit <= 0 {
		limit = 10000
	}
	repOf := map[trace.ObjID]ap.Rep{}
	for obj, kind := range p.Kinds {
		rep, err := reps(kind)
		if err != nil {
			return Outcome{}, fmt.Errorf("explore: object o%d: %w", obj, err)
		}
		repOf[obj] = rep
	}

	out := Outcome{FinalStates: map[string]int{}}
	machines := map[trace.ObjID]semantics.Machine{}
	for obj, kind := range p.Kinds {
		m, err := semantics.New(kind)
		if err != nil {
			return Outcome{}, err
		}
		machines[obj] = m
	}
	pcs := make([]int, len(p.Threads))
	var events []trace.Event
	var dfsErr error

	var dfs func()
	dfs = func() {
		if dfsErr != nil || out.Interleavings >= limit {
			out.Truncated = out.Truncated || out.Interleavings >= limit && !done(p, pcs)
			return
		}
		if done(p, pcs) {
			if err := out.record(p, events, machines, repOf); err != nil {
				dfsErr = err
			}
			return
		}
		for t := range p.Threads {
			if pcs[t] >= len(p.Threads[t]) {
				continue
			}
			op := p.Threads[t][pcs[t]]
			m := machines[op.Obj]
			act, err := completeAction(m, op)
			if err != nil {
				dfsErr = fmt.Errorf("explore: thread %d op %d: %w", t+1, pcs[t], err)
				return
			}
			// Apply.
			saved := m.Clone()
			if err := m.Apply(act); err != nil {
				dfsErr = err
				return
			}
			pcs[t]++
			events = append(events, trace.Act(vclock.Tid(t+1), act))
			dfs()
			// Undo.
			events = events[:len(events)-1]
			pcs[t]--
			machines[op.Obj] = saved
			if dfsErr != nil {
				return
			}
		}
	}
	dfs()
	if dfsErr != nil {
		return Outcome{}, dfsErr
	}
	out.Deterministic = len(out.FinalStates) <= 1
	return out, nil
}

func done(p Program, pcs []int) bool {
	for t := range p.Threads {
		if pcs[t] < len(p.Threads[t]) {
			return false
		}
	}
	return true
}

// record runs the detector over the interleaving's trace and accounts the
// final state.
func (out *Outcome) record(p Program, events []trace.Event,
	machines map[trace.ObjID]semantics.Machine, repOf map[trace.ObjID]ap.Rep) error {

	out.Interleavings++
	// Final state fingerprint over all objects in id order.
	ids := make([]int, 0, len(machines))
	for obj := range machines {
		ids = append(ids, int(obj))
	}
	sort.Ints(ids)
	fp := ""
	for _, id := range ids {
		fp += fmt.Sprintf("o%d=%s;", id, machines[trace.ObjID(id)].Fingerprint())
	}
	out.FinalStates[fp]++

	// Build the fork–join trace and detect.
	tr := &trace.Trace{}
	for t := range p.Threads {
		tr.Append(trace.Fork(0, vclock.Tid(t+1)))
	}
	for _, e := range events {
		tr.Append(e)
	}
	for t := range p.Threads {
		tr.Append(trace.Join(0, vclock.Tid(t+1)))
	}
	det := core.New(core.Config{MaxRaces: 1})
	for obj, rep := range repOf {
		det.Register(obj, rep)
	}
	if err := det.RunTrace(tr); err != nil {
		return err
	}
	if det.Stats().Races > 0 {
		out.Racy++
	}
	return nil
}

// completeAction computes the return values the operation produces at the
// machine's current state.
func completeAction(m semantics.Machine, op Op) (trace.Action, error) {
	rets, err := semantics.Returns(m, op.Method, op.Args)
	if err != nil {
		return trace.Action{}, err
	}
	return trace.Action{Obj: op.Obj, Method: op.Method, Args: op.Args, Rets: rets}, nil
}
