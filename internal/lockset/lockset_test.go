package lockset

import (
	"strings"
	"testing"

	"repro/internal/fasttrack"
	"repro/internal/trace"
)

func run(t *testing.T, tr *trace.Trace) *Detector {
	t.Helper()
	d := New()
	if err := d.RunTrace(tr); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConsistentLockingClean(t *testing.T) {
	tr := trace.NewBuilder().
		Fork(0, 1).Fork(0, 2).
		Acquire(1, 0).Write(1, 0).Release(1, 0).
		Acquire(2, 0).Write(2, 0).Read(2, 0).Release(2, 0).
		Trace()
	d := run(t, tr)
	if len(d.Violations()) != 0 {
		t.Fatalf("violations: %v", d.Violations())
	}
	if got := d.Candidates(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("candidates = %v, want [l0]", got)
	}
}

func TestUnprotectedSharingViolates(t *testing.T) {
	tr := trace.NewBuilder().
		Fork(0, 1).Fork(0, 2).
		Write(1, 0).
		Write(2, 0).
		Trace()
	d := run(t, tr)
	if len(d.Violations()) != 1 {
		t.Fatalf("violations: %v", d.Violations())
	}
	v := d.Violations()[0]
	if !v.Write || v.Var != 0 {
		t.Errorf("violation = %+v", v)
	}
	if !strings.Contains(v.String(), "unprotected write") {
		t.Errorf("string = %q", v.String())
	}
}

func TestInconsistentLocksViolate(t *testing.T) {
	// Each thread holds a lock — but different ones. Note the Eraser
	// initialization escape hatch: the exclusive owner's locks are
	// forgotten at the sharing transition, so the candidate set becomes
	// {l1} at t2's write and only empties at the next differently-locked
	// access.
	tr := trace.NewBuilder().
		Fork(0, 1).Fork(0, 2).
		Acquire(1, 0).Write(1, 0).Release(1, 0).
		Acquire(2, 1).Write(2, 0).Release(2, 1).
		Acquire(1, 0).Write(1, 0).Release(1, 0).
		Trace()
	d := run(t, tr)
	if len(d.Violations()) != 1 {
		t.Fatalf("violations: %v", d.Violations())
	}
	if got := d.Candidates(0); len(got) != 0 {
		t.Fatalf("candidates = %v, want empty", got)
	}
}

func TestExclusivePhaseNeverViolates(t *testing.T) {
	// One thread, no locks: initialization pattern, allowed by Eraser.
	tr := trace.NewBuilder().
		Write(0, 0).Write(0, 0).Read(0, 0).
		Trace()
	d := run(t, tr)
	if len(d.Violations()) != 0 {
		t.Fatalf("violations: %v", d.Violations())
	}
	if d.Candidates(0) != nil {
		t.Fatal("exclusive variable has no candidate set yet")
	}
}

func TestReadSharingWithoutWritesClean(t *testing.T) {
	tr := trace.NewBuilder().
		Write(0, 0). // init by t0
		Fork(0, 1).Fork(0, 2).
		Read(1, 0).
		Read(2, 0).
		Trace()
	d := run(t, tr)
	if len(d.Violations()) != 0 {
		t.Fatalf("read sharing flagged: %v", d.Violations())
	}
}

func TestViolationReportedOnce(t *testing.T) {
	tr := trace.NewBuilder().
		Fork(0, 1).Fork(0, 2).
		Write(1, 0).
		Write(2, 0).Write(2, 0).Write(2, 0).
		Trace()
	d := run(t, tr)
	if len(d.Violations()) != 1 {
		t.Fatalf("violations: %v", d.Violations())
	}
}

// TestLocksetFalsePositiveVsHappensBefore shows why the paper builds on
// happens-before: fork/join-ordered unlocked accesses satisfy no locking
// discipline (lockset flags them) yet can never race (FASTTRACK and RD2
// stay silent).
func TestLocksetFalsePositiveVsHappensBefore(t *testing.T) {
	tr := trace.NewBuilder().
		Fork(0, 1).
		Write(1, 0).
		Join(0, 1). // join orders the two writes
		Write(0, 0).
		Trace()
	ls := run(t, tr)
	if len(ls.Violations()) == 0 {
		t.Fatal("lockset should flag the discipline violation (its false positive)")
	}
	ft := fasttrack.New(nil)
	if err := ft.RunTrace(tr); err != nil {
		t.Fatal(err)
	}
	if len(ft.Races()) != 0 {
		t.Fatalf("happens-before detector must stay silent: %v", ft.Races())
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[state]string{
		virgin: "virgin", exclusive: "exclusive", shared: "shared",
		sharedModified: "shared-modified", state(9): "state(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d: %q != %q", s, got, want)
		}
	}
}

func TestNonMemoryEventsIgnored(t *testing.T) {
	d := New()
	a := trace.Act(0, trace.Action{Obj: 0, Method: "m"})
	if err := d.Process(&a); err != nil {
		t.Fatal(err)
	}
	rel := trace.Release(0, 5) // release without acquire: harmless
	if err := d.Process(&rel); err != nil {
		t.Fatal(err)
	}
}
