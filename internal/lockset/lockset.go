// Package lockset implements the classic Eraser lockset algorithm
// (Savage et al., TOCS'97) as a second low-level baseline beside FASTTRACK.
// It exists to contrast detection disciplines: lockset checking enforces a
// locking *policy* (every shared variable is consistently protected by some
// lock) and therefore reports false positives on fork/join- or
// channel-ordered accesses, while the happens-before detectors (FASTTRACK
// and the paper's RD2) are precise for the observed trace. The tests
// demonstrate exactly that divergence.
//
// State machine per variable (the Eraser refinement):
//
//	Virgin → Exclusive(first thread) → Shared (reads by others)
//	                                 → SharedModified (writes by others)
//
// The candidate set C(v) starts as "all locks" and is intersected with the
// accessor's held locks on every access once the variable leaves the
// Exclusive state; an empty C(v) in SharedModified reports a violation.
package lockset

import (
	"fmt"
	"sort"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// state is the Eraser per-variable state.
type state uint8

const (
	virgin state = iota
	exclusive
	shared
	sharedModified
)

func (s state) String() string {
	switch s {
	case virgin:
		return "virgin"
	case exclusive:
		return "exclusive"
	case shared:
		return "shared"
	case sharedModified:
		return "shared-modified"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Violation is one lockset discipline violation: a variable in the
// shared-modified state whose candidate lockset became empty.
type Violation struct {
	Var    trace.VarID
	Thread vclock.Tid
	Seq    int
	Write  bool
}

func (v Violation) String() string {
	kind := "read"
	if v.Write {
		kind = "write"
	}
	return fmt.Sprintf("lockset violation on v%d: unprotected %s by t%d (event %d)",
		int(v.Var), kind, v.Thread, v.Seq)
}

// varState is the shadow word of one variable.
type varState struct {
	st       state
	owner    vclock.Tid
	cands    map[trace.LockID]struct{} // nil means "all locks" (⊤)
	reported bool
}

// Detector is an Eraser lockset analysis. Single-threaded like the other
// detectors; drive it from a serialized event stream.
type Detector struct {
	vars       map[trace.VarID]*varState
	held       map[vclock.Tid]map[trace.LockID]struct{}
	violations []Violation
	max        int
}

// New returns a lockset detector.
func New() *Detector {
	return &Detector{
		vars: map[trace.VarID]*varState{},
		held: map[vclock.Tid]map[trace.LockID]struct{}{},
		max:  10000,
	}
}

// Process consumes one event; clocks are not needed.
func (d *Detector) Process(e *trace.Event) error {
	switch e.Kind {
	case trace.AcquireEvent:
		hs := d.held[e.Thread]
		if hs == nil {
			hs = map[trace.LockID]struct{}{}
			d.held[e.Thread] = hs
		}
		hs[e.Lock] = struct{}{}
	case trace.ReleaseEvent:
		if hs := d.held[e.Thread]; hs != nil {
			delete(hs, e.Lock)
		}
	case trace.ReadEvent:
		d.access(e, false)
	case trace.WriteEvent:
		d.access(e, true)
	}
	return nil
}

// access applies the Eraser transition for one read or write.
func (d *Detector) access(e *trace.Event, write bool) {
	vs := d.vars[e.Var]
	if vs == nil {
		vs = &varState{st: virgin}
		d.vars[e.Var] = vs
	}
	switch vs.st {
	case virgin:
		vs.st = exclusive
		vs.owner = e.Thread
		return
	case exclusive:
		if e.Thread == vs.owner {
			return
		}
		if write {
			vs.st = sharedModified
		} else {
			vs.st = shared
		}
		// Initialize candidates on first sharing, then refine below.
		vs.cands = nil
	case shared:
		if write {
			vs.st = sharedModified
		}
	case sharedModified:
	}
	d.refine(vs, e.Thread)
	if vs.st == sharedModified && len(vs.cands) == 0 && vs.cands != nil && !vs.reported {
		vs.reported = true
		v := Violation{Var: e.Var, Thread: e.Thread, Seq: e.Seq, Write: write}
		if len(d.violations) < d.max {
			d.violations = append(d.violations, v)
		}
	}
}

// refine intersects the candidate set with the thread's held locks. A nil
// candidate set means ⊤ (not yet initialized) and becomes the held set.
func (d *Detector) refine(vs *varState, t vclock.Tid) {
	heldSet := d.held[t]
	if vs.cands == nil {
		vs.cands = map[trace.LockID]struct{}{}
		for l := range heldSet {
			vs.cands[l] = struct{}{}
		}
		return
	}
	for l := range vs.cands {
		if _, ok := heldSet[l]; !ok {
			delete(vs.cands, l)
		}
	}
}

// Violations returns the reported violations.
func (d *Detector) Violations() []Violation { return d.violations }

// Candidates returns the surviving candidate locks for a variable, sorted
// (nil when the variable never left the exclusive state).
func (d *Detector) Candidates(v trace.VarID) []trace.LockID {
	vs := d.vars[v]
	if vs == nil || vs.cands == nil {
		return nil
	}
	out := make([]trace.LockID, 0, len(vs.cands))
	for l := range vs.cands {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RunTrace feeds the whole trace through the detector.
func (d *Detector) RunTrace(tr *trace.Trace) error {
	for i := range tr.Events {
		if err := d.Process(&tr.Events[i]); err != nil {
			return err
		}
	}
	return nil
}
