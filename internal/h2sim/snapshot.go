package h2sim

import (
	"repro/internal/monitor"
	"repro/internal/trace"
)

// H2's MVStore "permits read operations to examine older versions (i.e.
// Snapshot Isolation)" (Section 7 of the paper). This file adds that layer:
// writes are tagged with the store's open version, Commit publishes them,
// and a Snapshot reads the state as of a committed version.
//
// The instrumentation boundary mirrors H2's: the monitored operation of a
// versioned read is the backing concurrent-map get (which returns the
// latest entry — the version chain's head); walking the chain to the
// snapshot's version is thread-local and invisible to the detectors, just
// as it is in H2 where RoadRunner instruments the ConcurrentHashMaps, not
// the undo log walk.

// versioned is one entry of a key's version chain.
type versioned struct {
	version int64 // the commit version that published this value
	val     trace.Value
}

// Snapshot is a read view of the store at a committed version.
type Snapshot struct {
	store   *Store
	version int64
}

// Snapshot captures the current committed version.
func (s *Store) Snapshot() Snapshot {
	return Snapshot{store: s, version: s.version.Load()}
}

// Version returns the snapshot's committed version.
func (sn Snapshot) Version() int64 { return sn.version }

// recordVersion appends the value to the key's chain at the store's open
// (uncommitted) version. Called by MVMap.Put under the simulator-internal
// page mutex.
func (m *MVMap) recordVersion(k, v trace.Value) {
	if m.history == nil {
		m.history = map[trace.Value][]versioned{}
	}
	open := m.store.version.Load() + 1
	chain := m.history[k]
	if n := len(chain); n > 0 && chain[n-1].version == open {
		chain[n-1].val = v // overwrite within the open version
	} else {
		chain = append(chain, versioned{version: open, val: v})
	}
	m.history[k] = chain
}

// GetAt reads k as of the snapshot. The monitored access is the backing
// map's get (chain head); the version walk is local. Values written after
// the snapshot's version — including uncommitted ones — are invisible; a
// key with no committed value at the snapshot reads nil.
func (m *MVMap) GetAt(t *monitor.Thread, sn Snapshot, k trace.Value) trace.Value {
	m.Get(t, k) // the instrumented concurrent-map access
	m.pmu.Lock()
	defer m.pmu.Unlock()
	chain := m.history[k]
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i].version <= sn.version {
			return chain[i].val
		}
	}
	return trace.NilValue
}

// SelectAt reads a row at the snapshot through the table layer.
func (tb *Table) SelectAt(t *monitor.Thread, sn Snapshot, id int64) (string, bool) {
	tb.db.cacheHits.Add(t, 1)
	v := tb.rows.GetAt(t, sn, trace.IntValue(id))
	if v.IsNil() {
		return "", false
	}
	return v.Str(), true
}
