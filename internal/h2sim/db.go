package h2sim

import (
	"fmt"
	"sync"

	"repro/internal/monitor"
	"repro/internal/trace"
)

// SplitEvery makes every n-th write to a map rewrite an earlier page (a
// B-tree page split), freeing its space — so pure-insert workloads also
// exercise the freedPageSpace accounting, as they do in H2.
const SplitEvery = 8

// DB is the SQL-ish layer over the simulated MVStore: named tables with a
// primary-key map and a secondary index. Like H2's MVStore, the backing
// maps are lock-free concurrent maps: callers isolate rows by key ownership
// (the circuits give each client its own row band, as Pole Position does),
// while the store-global bookkeeping — where the paper's races live — is
// shared by every table and accessed without synchronization.
type DB struct {
	rt    *monitor.Runtime
	store *Store

	// cacheHits approximates an unsynchronized page-cache hit counter
	// bumped on every read — a low-level data race with no commutativity
	// counterpart (reads still commute at the table interface).
	cacheHits *monitor.Cell

	mu     sync.Mutex
	tables map[string]*Table
}

// NewDB opens a simulated database on the runtime.
func NewDB(rt *monitor.Runtime) *DB {
	return &DB{rt: rt, store: NewStore(rt), cacheHits: rt.NewCell(), tables: map[string]*Table{}}
}

// Store exposes the underlying MVStore.
func (db *DB) Store() *Store { return db.store }

// Table opens (or creates) a table.
func (db *DB) Table(name string) *Table {
	db.mu.Lock()
	defer db.mu.Unlock()
	if t, ok := db.tables[name]; ok {
		return t
	}
	t := &Table{
		db:       db,
		name:     name,
		rows:     db.store.OpenMap(name + ".rows"),
		index:    db.store.OpenMap(name + ".idx"),
		rowCount: db.rt.NewCell(),
		puts:     map[*MVMap]int{},
	}
	db.tables[name] = t
	return t
}

// Table is one simulated SQL table.
type Table struct {
	db    *DB
	name  string
	rows  *MVMap
	index *MVMap
	// rowCount is a plain counter updated without synchronization — a
	// low-level race for the FASTTRACK baseline.
	rowCount *monitor.Cell

	pmu  sync.Mutex
	puts map[*MVMap]int
}

// Name returns the table name.
func (tb *Table) Name() string { return tb.name }

// RowsID returns the object id of the primary-key map.
func (tb *Table) RowsID() trace.ObjID { return tb.rows.ID() }

// maybeSplit triggers the page-split rewrite every SplitEvery writes.
func (tb *Table) maybeSplit(t *monitor.Thread, m *MVMap) {
	tb.pmu.Lock()
	tb.puts[m]++
	split := tb.puts[m]%SplitEvery == 0
	tb.pmu.Unlock()
	if split {
		// Rewriting an interior page frees its old space.
		_, chunk := tb.db.store.allocPage()
		tb.db.store.freePage(t, chunk)
	}
}

// Insert adds a row (id → payload) and indexes the payload.
func (tb *Table) Insert(t *monitor.Thread, id int64, payload string) {
	tb.rows.Put(t, trace.IntValue(id), trace.StrValue(payload))
	tb.index.Put(t, trace.StrValue(payload), trace.IntValue(id))
	tb.maybeSplit(t, tb.rows)
	tb.rowCount.Add(t, 1)
}

// Select reads a row by primary key; it returns the payload and whether the
// row exists.
func (tb *Table) Select(t *monitor.Thread, id int64) (string, bool) {
	tb.db.cacheHits.Add(t, 1)
	v := tb.rows.Get(t, trace.IntValue(id))
	if v.IsNil() {
		return "", false
	}
	return v.Str(), true
}

// Update rewrites a row's payload; it reports whether the row existed and
// leaves absent rows untouched.
func (tb *Table) Update(t *monitor.Thread, id int64, payload string) bool {
	cur := tb.rows.Get(t, trace.IntValue(id))
	if cur.IsNil() {
		return false
	}
	tb.rows.Put(t, trace.IntValue(id), trace.StrValue(payload))
	tb.index.Remove(t, cur)
	tb.index.Put(t, trace.StrValue(payload), trace.IntValue(id))
	return true
}

// Delete removes a row; it reports whether the row existed.
func (tb *Table) Delete(t *monitor.Thread, id int64) bool {
	prev := tb.rows.Remove(t, trace.IntValue(id))
	if prev.IsNil() {
		return false
	}
	tb.index.Remove(t, prev)
	tb.rowCount.Add(t, -1)
	return true
}

// Scan reads n consecutive rows starting at from, returning how many exist.
func (tb *Table) Scan(t *monitor.Thread, from int64, n int) int {
	tb.db.cacheHits.Add(t, 1)
	hits := 0
	for i := int64(0); i < int64(n); i++ {
		if v := tb.rows.Get(t, trace.IntValue(from+i)); !v.IsNil() {
			hits++
		}
	}
	return hits
}

// LookupByPayload resolves a row id through the secondary index.
func (tb *Table) LookupByPayload(t *monitor.Thread, payload string) (int64, bool) {
	v := tb.index.Get(t, trace.StrValue(payload))
	if v.IsNil() {
		return 0, false
	}
	return v.Int(), true
}

// Count returns the row count via the map's size — the high-level size
// observation that conflicts with concurrent resizes.
func (tb *Table) Count(t *monitor.Thread) int64 {
	return tb.rows.Size(t)
}

// payload renders a deterministic row payload.
func payload(table string, id int64, rev int) string {
	return fmt.Sprintf("%s-row%%%d@%d", table, id, rev)
}
