// Package h2sim is the reproduction's substitute for the H2 database server
// used in the paper's evaluation (Section 7). H2 1.3.174's Multi-Version
// Store (MVStore) keeps its bookkeeping in ConcurrentHashMaps; the paper's
// RD2 found two harmful commutativity races there:
//
//  1. freedPageSpace — commit paths account freed page space with an
//     unsynchronized get-then-put (check-then-act), so concurrent commits
//     can lose updates ("could lead to incorrect state of the server").
//  2. chunks — readers populate chunk metadata with get-miss-then-put, so
//     concurrent readers recompute and overwrite the same entry ("the same
//     result being computed multiple times").
//
// The simulator reproduces those usage patterns structurally on monitored
// dictionaries, along with a minimal versioned map and SQL-ish table layer
// sufficient to drive the Pole Position benchmark circuits of Table 2.
package h2sim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/monitor"
	"repro/internal/trace"
)

// Layout constants of the simulated store.
const (
	// PageSize is the simulated byte size of one page.
	PageSize = 4096
	// PagesPerChunk groups pages into chunks; chunk metadata lives in the
	// chunks map.
	PagesPerChunk = 64
	// MaxChunks bounds the live chunk id space: H2 compacts and reuses
	// chunk slots, so ids wrap. (This also makes the bookkeeping races
	// schedule-independent: threads revisit the same chunk keys no matter
	// how their page allocations interleave in real time.)
	MaxChunks = 16
)

// chunkOf maps a page id to its (reused) chunk id.
func chunkOf(page int64) int64 {
	return (page / PagesPerChunk) % MaxChunks
}

// Store is the MVStore substitute: a versioned page store whose
// bookkeeping maps are monitored dictionaries.
type Store struct {
	rt *monitor.Runtime

	// chunks maps chunk id → metadata token. Populated lazily by readers
	// and writers with get-miss-then-put: the paper's race #2.
	chunks *monitor.Dict
	// freedPageSpace maps chunk id → freed bytes. Updated by commit paths
	// with get-then-put: the paper's race #1.
	freedPageSpace *monitor.Dict

	// unsavedMemory approximates H2's unsavedMemory field: a plain field
	// updated without synchronization on the write path (grist for the
	// FASTTRACK baseline).
	unsavedMemory *monitor.Cell
	// lastCommit approximates lastCommitTime, read unsynchronized by
	// queries and written by commits.
	lastCommit *monitor.Cell

	nextPage atomic.Int64
	version  atomic.Int64

	mu   sync.Mutex
	maps map[string]*MVMap
}

// NewStore opens a simulated MVStore on the runtime.
func NewStore(rt *monitor.Runtime) *Store {
	return &Store{
		rt:             rt,
		chunks:         rt.NewDict(),
		freedPageSpace: rt.NewDict(),
		unsavedMemory:  rt.NewCell(),
		lastCommit:     rt.NewCell(),
		maps:           map[string]*MVMap{},
	}
}

// ChunksID returns the object id of the chunks map (for race attribution).
func (s *Store) ChunksID() trace.ObjID { return s.chunks.ID() }

// FreedPageSpaceID returns the object id of the freedPageSpace map.
func (s *Store) FreedPageSpaceID() trace.ObjID { return s.freedPageSpace.ID() }

// OpenMap opens (or creates) a named versioned map.
func (s *Store) OpenMap(name string) *MVMap {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.maps[name]; ok {
		return m
	}
	m := &MVMap{store: s, name: name, data: s.rt.NewDict()}
	s.maps[name] = m
	return m
}

// allocPage allocates a fresh page id and returns it with its chunk id.
func (s *Store) allocPage() (page, chunk int64) {
	p := s.nextPage.Add(1) - 1
	return p, chunkOf(p)
}

// ensureChunk simulates loading chunk metadata on demand: a get that, on
// miss, "reads the chunk header from disk" and publishes it with put. Two
// concurrent missers both compute and both publish — the paper's chunks
// race (#2 in Section 7).
func (s *Store) ensureChunk(t *monitor.Thread, chunk int64) trace.Value {
	key := trace.IntValue(chunk)
	if meta := s.chunks.Get(t, key); !meta.IsNil() {
		return meta
	}
	meta := trace.IntValue(chunk*1000 + 1) // simulated header decode
	s.chunks.Put(t, key, meta)
	return meta
}

// chunkRetireThreshold is the freed-byte count at which a chunk is retired
// (compacted): its metadata is dropped from the chunks map and its space
// accounting resets. Readers that hit a retired chunk re-load its metadata,
// which keeps the chunks race live on the lock-free read path, as in H2.
const chunkRetireThreshold = PageSize * PagesPerChunk / 2

// freePage accounts freed space for a page's chunk using the H2 1.3.174
// pattern: read the accumulated count, add, write it back — unsynchronized
// check-then-act on the freedPageSpace map (#1 in Section 7). Concurrent
// frees of pages in the same chunk lose updates. Crossing the retirement
// threshold compacts the chunk.
func (s *Store) freePage(t *monitor.Thread, chunk int64) {
	key := trace.IntValue(chunk)
	freed := s.freedPageSpace.Get(t, key)
	total := int64(PageSize)
	if !freed.IsNil() {
		total += freed.Int()
	}
	if total >= chunkRetireThreshold {
		// Retire the chunk: drop its metadata and reset its accounting —
		// more unsynchronized writes on both maps.
		s.chunks.Put(t, key, trace.NilValue)
		s.freedPageSpace.Put(t, key, trace.IntValue(0))
		return
	}
	s.freedPageSpace.Put(t, key, trace.IntValue(total))
}

// Commit advances the store version and updates the unsynchronized
// bookkeeping fields.
func (s *Store) Commit(t *monitor.Thread) int64 {
	v := s.version.Add(1)
	s.lastCommit.Store(t, v)
	s.unsavedMemory.Store(t, 0)
	return v
}

// Version returns the current store version.
func (s *Store) Version() int64 { return s.version.Load() }

// MVMap is a named versioned key-value map backed by the store. Every write
// allocates a page, loads the page's chunk metadata, and — when replacing an
// existing row — frees the old page's space, exercising the two buggy
// bookkeeping paths.
type MVMap struct {
	store *Store
	name  string
	data  *monitor.Dict

	// pageOf tracks which page currently holds each key so replacements
	// free the right chunk; history keeps each key's version chain for
	// snapshot reads. Both are guarded by pmu: simulator-internal
	// bookkeeping, not part of the modeled application state.
	pmu     sync.Mutex
	pageOf  map[trace.Value]int64
	history map[trace.Value][]versioned
}

// Name returns the map name.
func (m *MVMap) Name() string { return m.name }

// ID returns the object id of the backing dictionary.
func (m *MVMap) ID() trace.ObjID { return m.data.ID() }

// Put writes k → v at the current version and returns the previous value.
func (m *MVMap) Put(t *monitor.Thread, k, v trace.Value) trace.Value {
	page, chunk := m.store.allocPage()
	m.store.ensureChunk(t, chunk)
	prev := m.data.Put(t, k, v)
	m.store.unsavedMemory.Add(t, PageSize)
	m.pmu.Lock()
	m.recordVersion(k, v)
	if m.pageOf == nil {
		m.pageOf = map[trace.Value]int64{}
	}
	oldPage, had := m.pageOf[k]
	if v.IsNil() {
		delete(m.pageOf, k)
	} else {
		m.pageOf[k] = page
	}
	m.pmu.Unlock()
	if had {
		m.store.freePage(t, chunkOf(oldPage))
	}
	return prev
}

// Get reads the value for k, touching the chunk metadata of the page that
// holds it.
func (m *MVMap) Get(t *monitor.Thread, k trace.Value) trace.Value {
	m.pmu.Lock()
	page, had := m.pageOf[k]
	m.pmu.Unlock()
	if had {
		m.store.ensureChunk(t, chunkOf(page))
	}
	_ = m.store.lastCommit.Load(t)
	return m.data.Get(t, k)
}

// Remove deletes k, freeing its page space, and returns the old value.
func (m *MVMap) Remove(t *monitor.Thread, k trace.Value) trace.Value {
	return m.Put(t, k, trace.NilValue)
}

// Size returns the number of live keys.
func (m *MVMap) Size(t *monitor.Thread) int64 {
	return m.data.Size(t)
}

// String identifies the map.
func (m *MVMap) String() string {
	return fmt.Sprintf("mvmap(%s, o%d)", m.name, int(m.data.ID()))
}
