package h2sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/trace"
)

func TestStoreChunkAndFreeSpaceBookkeeping(t *testing.T) {
	rt := monitor.NewRuntime()
	main := rt.Main()
	s := NewStore(rt)
	m := s.OpenMap("m")
	// First write allocates a page in chunk 0.
	if prev := m.Put(main, trace.IntValue(1), trace.StrValue("x")); !prev.IsNil() {
		t.Fatalf("prev = %v", prev)
	}
	// Overwrite frees the old page's space.
	if prev := m.Put(main, trace.IntValue(1), trace.StrValue("y")); prev != trace.StrValue("x") {
		t.Fatalf("prev = %v", prev)
	}
	if got := m.Get(main, trace.IntValue(1)); got != trace.StrValue("y") {
		t.Fatalf("get = %v", got)
	}
	if got := m.Remove(main, trace.IntValue(1)); got != trace.StrValue("y") {
		t.Fatalf("remove = %v", got)
	}
	if got := m.Get(main, trace.IntValue(1)); !got.IsNil() {
		t.Fatalf("after remove = %v", got)
	}
	if m.Size(main) != 0 {
		t.Fatal("size should be 0")
	}
	if v := s.Commit(main); v != 1 || s.Version() != 1 {
		t.Fatalf("commit version = %d", v)
	}
	if s.OpenMap("m") != m {
		t.Fatal("OpenMap must return the same map")
	}
	if m.Name() != "m" || m.String() == "" {
		t.Fatal("map identity accessors broken")
	}
}

func TestTableCRUD(t *testing.T) {
	rt := monitor.NewRuntime()
	main := rt.Main()
	db := NewDB(rt)
	tb := db.Table("t")
	if db.Table("t") != tb {
		t.Fatal("Table must memoize")
	}
	tb.Insert(main, 1, "one")
	tb.Insert(main, 2, "two")
	if got, ok := tb.Select(main, 1); !ok || got != "one" {
		t.Fatalf("select = %q, %v", got, ok)
	}
	if _, ok := tb.Select(main, 99); ok {
		t.Fatal("missing row should not select")
	}
	if !tb.Update(main, 1, "ONE") {
		t.Fatal("update of present row must succeed")
	}
	if tb.Update(main, 99, "nope") {
		t.Fatal("update of absent row must fail")
	}
	if id, ok := tb.LookupByPayload(main, "ONE"); !ok || id != 1 {
		t.Fatalf("index lookup = %d, %v", id, ok)
	}
	if _, ok := tb.LookupByPayload(main, "one"); ok {
		t.Fatal("stale index entry survived update")
	}
	if got := tb.Scan(main, 1, 4); got != 2 {
		t.Fatalf("scan hits = %d, want 2", got)
	}
	if n := tb.Count(main); n != 2 {
		t.Fatalf("count = %d", n)
	}
	if !tb.Delete(main, 2) || tb.Delete(main, 2) {
		t.Fatal("delete semantics broken")
	}
	if n := tb.Count(main); n != 1 {
		t.Fatalf("count after delete = %d", n)
	}
}

// runUnderRD2 runs a circuit with an attached commutativity detector and
// returns the analysis.
func runUnderRD2(t *testing.T, c Circuit) *monitor.RD2 {
	t.Helper()
	rt := monitor.NewRuntime()
	rd2 := monitor.AttachRD2(rt, core.Config{})
	res := c.Run(rt, 42)
	if err := rt.Err(); err != nil {
		t.Fatalf("%s: %v", c.Name, err)
	}
	if res.Ops != maxInt(c.Threads, 1)*c.Ops {
		t.Fatalf("%s: ops = %d", c.Name, res.Ops)
	}
	return rd2
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestSingleThreadedCircuitsRaceFree(t *testing.T) {
	for _, name := range []string{"Complex", "NestedLists"} {
		c, ok := CircuitByName(name)
		if !ok {
			t.Fatalf("circuit %s missing", name)
		}
		rd2 := runUnderRD2(t, c.Scaled(400))
		if n := rd2.Detector.Stats().Races; n != 0 {
			t.Errorf("%s: %d commutativity races in a single-threaded circuit", name, n)
		}
	}
}

func TestQueryCentricRaceFree(t *testing.T) {
	c, _ := CircuitByName("QueryCentricConcurrency")
	rd2 := runUnderRD2(t, c.Scaled(100))
	if n := rd2.Detector.Stats().Races; n != 0 {
		t.Errorf("QueryCentric: %d commutativity races, want 0 (Table 2)", n)
	}
}

// TestConcurrencyCircuitsFindTheTwoStoreRaces is experiment E6 for H2: the
// racing objects must be exactly the chunks map and the freedPageSpace map
// — the two harmful races of Section 7.
func TestConcurrencyCircuitsFindTheTwoStoreRaces(t *testing.T) {
	for _, name := range []string{
		"ComplexConcurrency",
		"ComplexConcurrency (alternate query distrib.)",
		"InsertCentricConcurrency",
	} {
		c, ok := CircuitByName(name)
		if !ok {
			t.Fatalf("circuit %s missing", name)
		}
		// Rebuild the scenario manually so we can capture the store ids.
		rt := monitor.NewRuntime()
		rd2 := monitor.AttachRD2(rt, core.Config{})
		res := c.Scaled(100).Run(rt, 7)
		if err := rt.Err(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Ops == 0 || res.Duration <= 0 || res.QPS() <= 0 {
			t.Fatalf("%s: bad result %+v", name, res)
		}
		stats := rd2.Detector.Stats()
		if stats.Races == 0 {
			t.Errorf("%s: no commutativity races found", name)
			continue
		}
		distinct := rd2.Detector.DistinctObjects()
		if distinct != 2 {
			objs := map[trace.ObjID]int{}
			for _, r := range rd2.Detector.Races() {
				objs[r.Obj]++
			}
			t.Errorf("%s: %d distinct racing objects, want 2 (chunks + freedPageSpace); breakdown %v",
				name, distinct, objs)
		}
	}
}

func TestChunksAndFreedPageSpaceAreTheRacingObjects(t *testing.T) {
	// Run a minimal two-writer scenario with direct store access and check
	// the racing object ids against the store's maps.
	rt := monitor.NewRuntime()
	rd2 := monitor.AttachRD2(rt, core.Config{})
	main := rt.Main()
	db := NewDB(rt)
	ta, tbl := db.Table("wa"), db.Table("wb")
	w1 := main.Go(func(t *monitor.Thread) {
		for i := int64(0); i < 200; i++ {
			ta.Insert(t, i, payload("wa", i, 0))
			ta.Update(t, i, payload("wa", i, 1))
		}
	})
	w2 := main.Go(func(t *monitor.Thread) {
		for i := int64(0); i < 200; i++ {
			tbl.Insert(t, i, payload("wb", i, 0))
			tbl.Update(t, i, payload("wb", i, 1))
		}
	})
	main.JoinAll(w1, w2)
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	racing := map[trace.ObjID]bool{}
	for _, r := range rd2.Detector.Races() {
		racing[r.Obj] = true
	}
	if !racing[db.Store().FreedPageSpaceID()] {
		t.Error("freedPageSpace race (paper race #1) not found")
	}
	if !racing[db.Store().ChunksID()] {
		t.Error("chunks race (paper race #2) not found")
	}
	for obj := range racing {
		if obj != db.Store().FreedPageSpaceID() && obj != db.Store().ChunksID() {
			t.Errorf("unexpected racing object o%d", obj)
		}
	}
}

func TestFastTrackFindsLowLevelRaces(t *testing.T) {
	rt := monitor.NewRuntime()
	ft := monitor.AttachFastTrack(rt)
	c, _ := CircuitByName("QueryCentricConcurrency")
	c.Scaled(50).Run(rt, 3)
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	if ft.Stats().Races == 0 {
		t.Error("FASTTRACK should flag the unsynchronized cache-hit counter")
	}
}

func TestCircuitsSuiteComplete(t *testing.T) {
	cs := Circuits()
	if len(cs) != 6 {
		t.Fatalf("suite has %d circuits, want 6 (Table 2 H2 rows)", len(cs))
	}
	names := map[string]bool{}
	for _, c := range cs {
		names[c.Name] = true
		if c.Ops <= 0 {
			t.Errorf("%s: no ops", c.Name)
		}
	}
	for _, want := range []string{
		"ComplexConcurrency", "QueryCentricConcurrency",
		"InsertCentricConcurrency", "Complex", "NestedLists",
	} {
		if !names[want] {
			t.Errorf("missing circuit %s", want)
		}
	}
	if _, ok := CircuitByName("nope"); ok {
		t.Error("CircuitByName should miss")
	}
}

func TestResultQPS(t *testing.T) {
	r := Result{Ops: 1000, Duration: 2e9}
	if got := r.QPS(); got != 500 {
		t.Errorf("QPS = %v", got)
	}
	if (Result{Ops: 5}).QPS() != 0 {
		t.Error("zero duration guards division")
	}
}

func TestUninstrumentedCircuitsRun(t *testing.T) {
	for _, c := range Circuits() {
		rt := monitor.NewRuntime()
		res := c.Scaled(30).Run(rt, 1)
		if res.Ops == 0 {
			t.Errorf("%s: no ops", c.Name)
		}
	}
}
