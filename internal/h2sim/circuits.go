package h2sim

import (
	"math/rand"
	"time"

	"repro/internal/monitor"
)

// Circuit is one Pole Position benchmark scenario. Ops counts queries per
// worker thread; single-threaded circuits use Threads == 0 and run on the
// main thread.
type Circuit struct {
	Name    string
	Threads int
	Ops     int
	run     func(c Circuit, rt *monitor.Runtime, seed int64) int
}

// Result is the outcome of one circuit run.
type Result struct {
	Name     string
	Ops      int
	Duration time.Duration
}

// QPS returns queries (operations) per second.
func (r Result) QPS() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Duration.Seconds()
}

// Run executes the circuit on the runtime and measures it.
func (c Circuit) Run(rt *monitor.Runtime, seed int64) Result {
	start := time.Now()
	ops := c.run(c, rt, seed)
	return Result{Name: c.Name, Ops: ops, Duration: time.Since(start)}
}

// Scaled returns a copy with the per-thread operation count replaced.
func (c Circuit) Scaled(ops int) Circuit {
	c.Ops = ops
	return c
}

// Circuits returns the benchmark suite of Table 2: three concurrency
// circuits (plus the alternate query distribution), and the two
// single-threaded circuits.
func Circuits() []Circuit {
	return []Circuit{
		{Name: "ComplexConcurrency", Threads: 8, Ops: 400, run: runComplexConcurrency(false)},
		{Name: "ComplexConcurrency (alternate query distrib.)", Threads: 8, Ops: 400, run: runComplexConcurrency(true)},
		{Name: "QueryCentricConcurrency", Threads: 8, Ops: 400, run: runQueryCentric},
		{Name: "InsertCentricConcurrency", Threads: 8, Ops: 400, run: runInsertCentric},
		{Name: "Complex", Threads: 0, Ops: 3000, run: runComplex},
		{Name: "NestedLists", Threads: 0, Ops: 3000, run: runNestedLists},
	}
}

// CircuitByName finds a circuit by name.
func CircuitByName(name string) (Circuit, bool) {
	for _, c := range Circuits() {
		if c.Name == name {
			return c, true
		}
	}
	return Circuit{}, false
}

// runComplexConcurrency: worker threads issue a mixed query stream against
// a handful of shared tables. The standard distribution is read-heavy with
// a write tail; the alternate distribution shifts weight toward updates and
// deletes (the paper's "alternate query distrib." row).
func runComplexConcurrency(alternate bool) func(Circuit, *monitor.Runtime, int64) int {
	return func(c Circuit, rt *monitor.Runtime, seed int64) int {
		db := NewDB(rt)
		main := rt.Main()
		tables := []*Table{db.Table("orders"), db.Table("items"), db.Table("users")}
		// Pole Position gives each client its own rows: preload one 64-row
		// band per worker, and keep each worker inside its band. Row maps
		// then never race across workers (as with H2's MVCC row access);
		// the store-global chunks and freedPageSpace bookkeeping still
		// does.
		const band = 64
		for _, tb := range tables {
			for id := int64(0); id < int64(c.Threads*band); id++ {
				tb.Insert(main, id, payload(tb.name, id, 0))
			}
		}
		// Query mix: select, update, insert, delete (percent thresholds).
		sel, upd, ins := 55, 80, 92
		if alternate {
			sel, upd, ins = 30, 70, 85
		}
		var workers []*monitor.Thread
		for w := 0; w < c.Threads; w++ {
			w := w
			workers = append(workers, main.Go(func(t *monitor.Thread) {
				r := rand.New(rand.NewSource(seed + int64(w)))
				base := int64(w * band)
				nextID := int64(1_000_000 + w*100_000)
				for i := 0; i < c.Ops; i++ {
					tb := tables[r.Intn(len(tables))]
					switch p := r.Intn(100); {
					case p < sel:
						tb.Select(t, base+int64(r.Intn(band)))
					case p < upd:
						id := base + int64(r.Intn(band))
						if !tb.Update(t, id, payload(tb.name, id, i)) {
							tb.Insert(t, id, payload(tb.name, id, i))
						}
					case p < ins:
						tb.Insert(t, nextID, payload(tb.name, nextID, i))
						nextID++
					default:
						tb.Delete(t, base+int64(r.Intn(band)))
					}
				}
			}))
		}
		main.JoinAll(workers...)
		db.store.Commit(main)
		return c.Threads * c.Ops
	}
}

// runQueryCentric: workers only read pre-populated tables. At the table
// interface everything commutes — the commutativity race detector must
// report nothing — while the unsynchronized cache-hit counter still gives
// the low-level detector plenty to flag.
func runQueryCentric(c Circuit, rt *monitor.Runtime, seed int64) int {
	db := NewDB(rt)
	main := rt.Main()
	tb := db.Table("catalog")
	const rows = 256
	for id := int64(0); id < rows; id++ {
		tb.Insert(main, id, payload("catalog", id, 0))
	}
	var workers []*monitor.Thread
	for w := 0; w < c.Threads; w++ {
		w := w
		workers = append(workers, main.Go(func(t *monitor.Thread) {
			r := rand.New(rand.NewSource(seed + int64(w)))
			for i := 0; i < c.Ops; i++ {
				if r.Intn(100) < 85 {
					tb.Select(t, int64(r.Intn(rows)))
				} else {
					tb.Scan(t, int64(r.Intn(rows-8)), 8)
				}
			}
		}))
	}
	main.JoinAll(workers...)
	return c.Threads * c.Ops
}

// runInsertCentric: workers bulk-insert into their own tables. Row maps
// never conflict across workers, but every insert exercises the shared
// chunks map and periodic page splits hit freedPageSpace — the two store
// bookkeeping races.
func runInsertCentric(c Circuit, rt *monitor.Runtime, seed int64) int {
	db := NewDB(rt)
	main := rt.Main()
	tables := make([]*Table, c.Threads)
	for w := range tables {
		tables[w] = db.Table("bulk" + string(rune('A'+w%26)))
	}
	var workers []*monitor.Thread
	for w := 0; w < c.Threads; w++ {
		w := w
		workers = append(workers, main.Go(func(t *monitor.Thread) {
			tb := tables[w]
			for i := 0; i < c.Ops; i++ {
				id := int64(w*1_000_000 + i)
				tb.Insert(t, id, payload(tb.name, id, 0))
			}
		}))
	}
	main.JoinAll(workers...)
	db.store.Commit(main)
	return c.Threads * c.Ops
}

// runComplex: the single-threaded Complex circuit — a mixed workload over
// several tables with secondary-index lookups and counts. No concurrency,
// hence no races of either kind.
func runComplex(c Circuit, rt *monitor.Runtime, seed int64) int {
	db := NewDB(rt)
	main := rt.Main()
	tables := []*Table{db.Table("a"), db.Table("b"), db.Table("c")}
	r := rand.New(rand.NewSource(seed))
	live := int64(0)
	for i := 0; i < c.Ops; i++ {
		tb := tables[r.Intn(len(tables))]
		switch p := r.Intn(100); {
		case p < 40:
			tb.Select(main, int64(r.Intn(200)))
		case p < 60:
			id := live
			live++
			tb.Insert(main, id, payload(tb.name, id, i))
		case p < 75:
			tb.Update(main, int64(r.Intn(200)), payload(tb.name, int64(i), i))
		case p < 85:
			if id, ok := tb.LookupByPayload(main, payload(tb.name, int64(r.Intn(200)), 0)); ok {
				tb.Select(main, id)
			}
		case p < 95:
			tb.Delete(main, int64(r.Intn(200)))
		default:
			tb.Count(main)
		}
	}
	db.store.Commit(main)
	return c.Ops
}

// runNestedLists: the single-threaded NestedLists circuit — builds and
// traverses nested list structures stored as (listID, index) cells in a
// single map.
func runNestedLists(c Circuit, rt *monitor.Runtime, seed int64) int {
	db := NewDB(rt)
	main := rt.Main()
	tb := db.Table("lists")
	r := rand.New(rand.NewSource(seed))
	lengths := map[int64]int64{}
	for i := 0; i < c.Ops; i++ {
		list := int64(r.Intn(32))
		switch p := r.Intn(100); {
		case p < 50: // append
			idx := lengths[list]
			lengths[list]++
			tb.Insert(main, list*10_000+idx, payload("lists", list, int(idx)))
		case p < 90: // walk
			n := lengths[list]
			for j := int64(0); j < n && j < 16; j++ {
				tb.Select(main, list*10_000+j)
			}
		default: // clear
			for j := int64(0); j < lengths[list]; j++ {
				tb.Delete(main, list*10_000+j)
			}
			lengths[list] = 0
		}
	}
	return c.Ops
}
