package h2sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/trace"
)

func TestSnapshotIsolation(t *testing.T) {
	rt := monitor.NewRuntime()
	main := rt.Main()
	s := NewStore(rt)
	m := s.OpenMap("rows")
	k := trace.IntValue(1)

	// Version 1: k = "old".
	m.Put(main, k, trace.StrValue("old"))
	s.Commit(main)
	snap := s.Snapshot()
	if snap.Version() != 1 {
		t.Fatalf("snapshot version = %d", snap.Version())
	}

	// Later committed and uncommitted writes are invisible to the snapshot.
	m.Put(main, k, trace.StrValue("newer"))
	s.Commit(main)
	m.Put(main, k, trace.StrValue("uncommitted"))

	if got := m.GetAt(main, snap, k); got != trace.StrValue("old") {
		t.Fatalf("snapshot read = %v, want \"old\"", got)
	}
	// A fresh snapshot sees version 2 but not the open write.
	snap2 := s.Snapshot()
	if got := m.GetAt(main, snap2, k); got != trace.StrValue("newer") {
		t.Fatalf("snapshot-2 read = %v, want \"newer\"", got)
	}
	// The latest read sees the open write.
	if got := m.Get(main, k); got != trace.StrValue("uncommitted") {
		t.Fatalf("latest read = %v", got)
	}
}

func TestSnapshotMissingKeyAndPreHistory(t *testing.T) {
	rt := monitor.NewRuntime()
	main := rt.Main()
	s := NewStore(rt)
	m := s.OpenMap("rows")
	empty := s.Snapshot()
	m.Put(main, trace.IntValue(1), trace.StrValue("x"))
	// Written at open version 1, snapshot is at version 0: invisible.
	if got := m.GetAt(main, empty, trace.IntValue(1)); !got.IsNil() {
		t.Fatalf("pre-history snapshot read = %v", got)
	}
	if got := m.GetAt(main, empty, trace.IntValue(99)); !got.IsNil() {
		t.Fatalf("missing key = %v", got)
	}
}

func TestSnapshotRemovalVisible(t *testing.T) {
	rt := monitor.NewRuntime()
	main := rt.Main()
	s := NewStore(rt)
	m := s.OpenMap("rows")
	k := trace.IntValue(7)
	m.Put(main, k, trace.StrValue("v"))
	s.Commit(main)
	m.Remove(main, k)
	s.Commit(main)
	before := Snapshot{store: s, version: 1}
	after := s.Snapshot()
	if got := m.GetAt(main, before, k); got != trace.StrValue("v") {
		t.Fatalf("pre-removal snapshot = %v", got)
	}
	if got := m.GetAt(main, after, k); !got.IsNil() {
		t.Fatalf("post-removal snapshot = %v", got)
	}
}

func TestTableSelectAt(t *testing.T) {
	rt := monitor.NewRuntime()
	main := rt.Main()
	db := NewDB(rt)
	tb := db.Table("t")
	tb.Insert(main, 1, "one-v1")
	db.Store().Commit(main)
	snap := db.Store().Snapshot()
	tb.Update(main, 1, "one-v2")
	db.Store().Commit(main)

	if got, ok := tb.SelectAt(main, snap, 1); !ok || got != "one-v1" {
		t.Fatalf("SelectAt = %q, %v", got, ok)
	}
	if got, ok := tb.Select(main, 1); !ok || got != "one-v2" {
		t.Fatalf("Select = %q, %v", got, ok)
	}
	if _, ok := tb.SelectAt(main, snap, 99); ok {
		t.Fatal("missing row selected")
	}
}

// TestSnapshotReadersStayRaceFreeAgainstDisjointWriters: snapshot readers
// touch the same backing maps via gets; as long as writers work on other
// keys, no commutativity race arises — and the snapshot values stay frozen
// while the writers proceed.
func TestSnapshotReadersConcurrentWithWriters(t *testing.T) {
	rt := monitor.NewRuntime()
	rd2 := monitor.AttachRD2(rt, core.Config{})
	main := rt.Main()
	db := NewDB(rt)
	tb := db.Table("t")
	for id := int64(0); id < 16; id++ {
		tb.Insert(main, id, payload("t", id, 0))
	}
	db.Store().Commit(main)
	snap := db.Store().Snapshot()

	writer := main.Go(func(th *monitor.Thread) {
		for id := int64(100); id < 140; id++ {
			tb.Insert(th, id, payload("t", id, 1))
		}
	})
	reader := main.Go(func(th *monitor.Thread) {
		for id := int64(0); id < 16; id++ {
			if got, ok := tb.SelectAt(th, snap, id); !ok || got != payload("t", id, 0) {
				t.Errorf("snapshot read of row %d = %q, %v", id, got, ok)
			}
		}
	})
	main.JoinAll(writer, reader)
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	// The reader's gets and the writer's disjoint-key puts commute; races
	// may only involve the store bookkeeping (chunks/freedPageSpace).
	for _, r := range rd2.Detector.Races() {
		if r.Obj == tb.RowsID() {
			t.Errorf("row map raced despite disjoint keys: %s", r)
		}
	}
}
