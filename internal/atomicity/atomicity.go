// Package atomicity generalizes dynamic atomicity checking (Velodrome,
// PLDI'08) from read/write conflicts to commutativity conflicts, as the
// paper's Section 8 proposes: "this low-level definition of conflict can be
// extended to handle much richer commutativity specifications (with the
// appropriate modifications of the atomicity algorithms to deal with access
// points)".
//
// The checker builds the transactional happens-before graph: one node per
// transaction (a Begin…End span of a thread; actions outside any span are
// unary transactions), with an edge A → B whenever an action of B touches
// an access point that conflicts with a point touched earlier by A. A
// transaction is serializable iff it is never part of a cycle; a cycle
// means the transactions' conflicting operations interleaved in both
// directions, so no serial order of the transactions explains the observed
// trace.
package atomicity

import (
	"fmt"

	"repro/internal/ap"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// txnID identifies a transaction node.
type txnID int

// Violation reports one atomicity violation: two transactions with
// conflict edges in both directions.
type Violation struct {
	// First and Second are representative actions of the two transactions
	// on the cyclic path (the conflicting pair that closed the cycle).
	First        trace.Action
	FirstThread  vclock.Tid
	Second       trace.Action
	SecondThread vclock.Tid
	// Points are the conflicting access point descriptions.
	FirstPoint  string
	SecondPoint string
}

func (v Violation) String() string {
	return fmt.Sprintf(
		"atomicity violation: t%d's transaction (%s touching %s) and t%d's transaction (%s touching %s) conflict in both directions",
		v.FirstThread, v.First, v.FirstPoint, v.SecondThread, v.Second, v.SecondPoint)
}

// txn is one transaction node.
type txn struct {
	id     txnID
	thread vclock.Tid
	open   bool
	// succs are outgoing conflict edges.
	succs map[txnID]struct{}
	// repAct is a representative action for reports.
	repAct trace.Action
}

// Checker is the commutativity-atomicity analysis. Like core.Detector it is
// single-threaded and driven by a serialized event stream.
type Checker struct {
	reps          map[trace.ObjID]ap.Rep
	objects       map[trace.ObjID]map[ap.Point][]txnID // touchers per point
	txns          []*txn
	current       map[vclock.Tid]txnID // open transaction per thread
	last          map[vclock.Tid]txnID // most recent transaction per thread
	violations    []Violation
	maxViolations int
	ptBuf         []ap.Point
	cfBuf         []ap.Point
}

// New returns an atomicity checker.
func New() *Checker {
	return &Checker{
		reps:          map[trace.ObjID]ap.Rep{},
		objects:       map[trace.ObjID]map[ap.Point][]txnID{},
		current:       map[vclock.Tid]txnID{},
		last:          map[vclock.Tid]txnID{},
		maxViolations: 1000,
	}
}

// Register associates an object with its access point representation.
func (c *Checker) Register(obj trace.ObjID, rep ap.Rep) {
	c.reps[obj] = rep
}

// Process consumes one event. Begin/End delimit transactions; actions feed
// the conflict graph; other events are ignored (atomicity is about
// serializability of the spans, not the synchronization order).
func (c *Checker) Process(e *trace.Event) error {
	switch e.Kind {
	case trace.BeginEvent:
		if _, open := c.current[e.Thread]; open {
			return fmt.Errorf("atomicity: t%d begins a transaction inside a transaction", e.Thread)
		}
		c.current[e.Thread] = c.newTxn(e.Thread, true)
		return nil
	case trace.EndEvent:
		id, open := c.current[e.Thread]
		if !open {
			return fmt.Errorf("atomicity: t%d ends a transaction it never began", e.Thread)
		}
		c.txns[id].open = false
		delete(c.current, e.Thread)
		return nil
	case trace.ActionEvent:
		return c.action(e)
	default:
		return nil
	}
}

// newTxn creates a transaction node, adding the program-order edge from the
// thread's previous transaction (a thread's own transactions are serial).
func (c *Checker) newTxn(t vclock.Tid, open bool) txnID {
	id := txnID(len(c.txns))
	c.txns = append(c.txns, &txn{id: id, thread: t, open: open, succs: map[txnID]struct{}{}})
	if prev, ok := c.last[t]; ok {
		c.txns[prev].succs[id] = struct{}{}
	}
	c.last[t] = id
	return id
}

// action attributes the event to its transaction and adds conflict edges.
func (c *Checker) action(e *trace.Event) error {
	rep, ok := c.reps[e.Act.Obj]
	if !ok {
		return fmt.Errorf("atomicity: object o%d has no registered representation", e.Act.Obj)
	}
	cur, open := c.current[e.Thread]
	if !open {
		cur = c.newTxn(e.Thread, false) // unary transaction
	}
	node := c.txns[cur]
	node.repAct = e.Act

	pts, err := rep.Touch(c.ptBuf[:0], e.Act)
	if err != nil {
		return err
	}
	c.ptBuf = pts[:0]
	touched := c.objects[e.Act.Obj]
	if touched == nil {
		touched = map[ap.Point][]txnID{}
		c.objects[e.Act.Obj] = touched
	}

	if !rep.Bounded() {
		return fmt.Errorf("atomicity: object o%d needs a bounded representation", e.Act.Obj)
	}
	for _, pt := range pts {
		cands := rep.Conflicts(c.cfBuf[:0], pt)
		c.cfBuf = cands[:0]
		for _, cand := range cands {
			for _, prev := range touched[cand] {
				if prev == cur {
					continue
				}
				// Edge prev → cur: an earlier op of prev conflicts with
				// this op of cur.
				if _, dup := c.txns[prev].succs[cur]; !dup {
					c.txns[prev].succs[cur] = struct{}{}
					if c.reaches(cur, prev) {
						c.report(e, rep, pt, cand, prev)
					}
				}
			}
		}
	}
	for _, pt := range pts {
		list := touched[pt]
		if len(list) == 0 || list[len(list)-1] != cur {
			touched[pt] = append(list, cur)
		}
	}
	return nil
}

// reaches reports whether from reaches to in the conflict graph (DFS).
func (c *Checker) reaches(from, to txnID) bool {
	if from == to {
		return true
	}
	seen := map[txnID]bool{from: true}
	stack := []txnID{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for s := range c.txns[n].succs {
			if s == to {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

func (c *Checker) report(e *trace.Event, rep ap.Rep, pt, cand ap.Point, prev txnID) {
	if len(c.violations) >= c.maxViolations {
		return
	}
	c.violations = append(c.violations, Violation{
		First:        c.txns[prev].repAct,
		FirstThread:  c.txns[prev].thread,
		FirstPoint:   rep.Describe(cand),
		Second:       e.Act,
		SecondThread: e.Thread,
		SecondPoint:  rep.Describe(pt),
	})
}

// Violations returns the reported violations.
func (c *Checker) Violations() []Violation { return c.violations }

// Transactions returns the number of transaction nodes created.
func (c *Checker) Transactions() int { return len(c.txns) }

// RunTrace feeds every event of the trace through the checker.
func (c *Checker) RunTrace(tr *trace.Trace) error {
	for i := range tr.Events {
		if err := c.Process(&tr.Events[i]); err != nil {
			return fmt.Errorf("atomicity: event %d (%s): %w", i, tr.Events[i].String(), err)
		}
	}
	return nil
}
