package atomicity

import (
	"strings"
	"testing"

	"repro/internal/specs"
	"repro/internal/trace"
)

func newDictChecker() *Checker {
	c := New()
	c.Register(0, specs.MustRep("dict"))
	return c
}

var (
	kA = trace.StrValue("a")
	v1 = trace.IntValue(1)
	v2 = trace.IntValue(2)
)

func run(t *testing.T, events []trace.Event) *Checker {
	t.Helper()
	c := newDictChecker()
	tr := &trace.Trace{}
	for _, e := range events {
		tr.Append(e)
	}
	if err := c.RunTrace(tr); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCheckThenActViolation(t *testing.T) {
	// Thread 1's transaction: get(k)/nil … put(k,1)/nil (check-then-act).
	// Thread 2's put interleaves between the check and the act: t1's txn
	// conflicts into and out of t2's put — a cycle, not serializable.
	tr := trace.NewBuilder().
		Act(1, 0, "get", []trace.Value{kA}, []trace.Value{trace.NilValue}).
		Put(2, 0, kA, v2, trace.NilValue).
		Put(1, 0, kA, v1, v2).
		Trace()
	// Wrap t1's two actions in a transaction.
	events := []trace.Event{
		{Kind: trace.BeginEvent, Thread: 1},
		tr.Events[0],
		tr.Events[1],
		tr.Events[2],
		{Kind: trace.EndEvent, Thread: 1},
	}
	c := run(t, events)
	if len(c.Violations()) == 0 {
		t.Fatal("check-then-act interleaving must violate atomicity")
	}
	v := c.Violations()[0]
	if !strings.Contains(v.String(), "atomicity violation") {
		t.Errorf("violation string: %s", v)
	}
}

func TestSerialTransactionsClean(t *testing.T) {
	// The same check-then-act with the interfering put before the
	// transaction: serializable.
	tr := trace.NewBuilder().
		Put(2, 0, kA, v2, trace.NilValue).
		Act(1, 0, "get", []trace.Value{kA}, []trace.Value{v2}).
		Put(1, 0, kA, v1, v2).
		Trace()
	events := []trace.Event{
		tr.Events[0],
		{Kind: trace.BeginEvent, Thread: 1},
		tr.Events[1],
		tr.Events[2],
		{Kind: trace.EndEvent, Thread: 1},
	}
	c := run(t, events)
	if n := len(c.Violations()); n != 0 {
		t.Fatalf("serial interleaving flagged: %v", c.Violations())
	}
}

func TestCommutingInterleavingClean(t *testing.T) {
	// An interleaved operation that COMMUTES with the transaction's
	// operations is no violation — the commutativity generalization at
	// work. Thread 2 touches a different key inside t1's transaction.
	kB := trace.StrValue("b")
	tr := trace.NewBuilder().
		Act(1, 0, "get", []trace.Value{kA}, []trace.Value{trace.NilValue}).
		Put(2, 0, kB, v2, v1). // different key, non-resizing overwrite
		Put(1, 0, kA, v1, trace.NilValue).
		Trace()
	events := []trace.Event{
		{Kind: trace.BeginEvent, Thread: 1},
		tr.Events[0],
		tr.Events[1],
		tr.Events[2],
		{Kind: trace.EndEvent, Thread: 1},
	}
	c := run(t, events)
	if n := len(c.Violations()); n != 0 {
		t.Fatalf("commuting interleaving flagged: %v", c.Violations())
	}
}

func TestReadOnlyInterleavingClean(t *testing.T) {
	// A concurrent read of the same key between two reads of a transaction
	// commutes (reads don't conflict): serializable.
	tr := trace.NewBuilder().
		Act(1, 0, "get", []trace.Value{kA}, []trace.Value{v1}).
		Act(2, 0, "get", []trace.Value{kA}, []trace.Value{v1}).
		Act(1, 0, "get", []trace.Value{kA}, []trace.Value{v1}).
		Trace()
	events := []trace.Event{
		{Kind: trace.BeginEvent, Thread: 1},
		tr.Events[0],
		tr.Events[1],
		tr.Events[2],
		{Kind: trace.EndEvent, Thread: 1},
	}
	c := run(t, events)
	if n := len(c.Violations()); n != 0 {
		t.Fatalf("read-only interleaving flagged: %v", c.Violations())
	}
	// With a WRITE interleaved instead, it violates.
	tr2 := trace.NewBuilder().
		Act(1, 0, "get", []trace.Value{kA}, []trace.Value{v1}).
		Put(2, 0, kA, v2, v1).
		Act(1, 0, "get", []trace.Value{kA}, []trace.Value{v2}).
		Trace()
	events2 := []trace.Event{
		{Kind: trace.BeginEvent, Thread: 1},
		tr2.Events[0],
		tr2.Events[1],
		tr2.Events[2],
		{Kind: trace.EndEvent, Thread: 1},
	}
	c2 := run(t, events2)
	if len(c2.Violations()) == 0 {
		t.Fatal("non-repeatable read must violate atomicity")
	}
}

func TestUnaryTransactionsNeverCycle(t *testing.T) {
	// Without Begin/End every action is unary; conflicts give one-way
	// edges only.
	tr := trace.NewBuilder().
		Put(1, 0, kA, v1, trace.NilValue).
		Put(2, 0, kA, v2, v1).
		Put(1, 0, kA, v1, v2).
		Trace()
	c := newDictChecker()
	if err := c.RunTrace(tr); err != nil {
		t.Fatal(err)
	}
	if n := len(c.Violations()); n != 0 {
		t.Fatalf("unary actions flagged: %v", c.Violations())
	}
	if c.Transactions() != 3 {
		t.Errorf("transactions = %d", c.Transactions())
	}
}

func TestProgramOrderEdgesCatchSplitInterference(t *testing.T) {
	// t2 performs two separate unary writes bracketing t1's transaction's
	// two accesses: A(get) … u1(put) … A(put) is covered by the direct
	// cycle; the subtler case is u1 before A's first op and u2 after it,
	// where the cycle runs through t2's program order.
	tr := trace.NewBuilder().
		Act(1, 0, "get", []trace.Value{kA}, []trace.Value{trace.NilValue}). // A reads
		Put(2, 0, kA, v2, trace.NilValue).                                  // u1 writes (A → u1? no: u1 after A's read ⇒ A→u1)
		Put(2, 0, kA, v1, v2).                                              // u2 writes
		Put(1, 0, kA, v2, v1).                                              // A writes: u2 → A and A → u1 with u1 →po u2 ⇒ cycle
		Trace()
	events := []trace.Event{
		{Kind: trace.BeginEvent, Thread: 1},
		tr.Events[0],
		tr.Events[1],
		tr.Events[2],
		tr.Events[3],
		{Kind: trace.EndEvent, Thread: 1},
	}
	c := run(t, events)
	if len(c.Violations()) == 0 {
		t.Fatal("split interference must violate atomicity via program-order edges")
	}
}

func TestErrors(t *testing.T) {
	c := newDictChecker()
	e1 := trace.Event{Kind: trace.BeginEvent, Thread: 1}
	if err := c.Process(&e1); err != nil {
		t.Fatal(err)
	}
	e2 := trace.Event{Kind: trace.BeginEvent, Thread: 1}
	if err := c.Process(&e2); err == nil {
		t.Error("nested begin must fail")
	}
	e3 := trace.Event{Kind: trace.EndEvent, Thread: 2}
	if err := c.Process(&e3); err == nil {
		t.Error("end without begin must fail")
	}
	e4 := trace.Act(1, trace.Action{Obj: 9, Method: "get"})
	if err := c.Process(&e4); err == nil {
		t.Error("unregistered object must fail")
	}
	// Sync events are ignored.
	e5 := trace.Fork(0, 3)
	if err := c.Process(&e5); err != nil {
		t.Fatal(err)
	}
}

func TestMaxViolationsCap(t *testing.T) {
	c := newDictChecker()
	c.maxViolations = 1
	var events []trace.Event
	events = append(events, trace.Event{Kind: trace.BeginEvent, Thread: 1})
	events = append(events, trace.Act(1, trace.Action{Obj: 0, Method: "get",
		Args: []trace.Value{kA}, Rets: []trace.Value{trace.NilValue}}))
	for i := 0; i < 5; i++ {
		events = append(events, trace.Act(2, trace.Action{Obj: 0, Method: "put",
			Args: []trace.Value{kA, v2}, Rets: []trace.Value{v1}}))
		events = append(events, trace.Act(1, trace.Action{Obj: 0, Method: "put",
			Args: []trace.Value{kA, v1}, Rets: []trace.Value{v2}}))
	}
	events = append(events, trace.Event{Kind: trace.EndEvent, Thread: 1})
	tr := &trace.Trace{}
	for _, e := range events {
		tr.Append(e)
	}
	if err := c.RunTrace(tr); err != nil {
		t.Fatal(err)
	}
	if len(c.Violations()) != 1 {
		t.Fatalf("violations = %d, want capped 1", len(c.Violations()))
	}
}
