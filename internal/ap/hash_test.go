package ap

// Tests for the structural Point/Value hashing behind the detector's
// open-addressed tables, and for NaiveRep's allocation-free structural
// interning (the ISSUE-7 satellite: the old a.String() key charged the
// unbounded baseline a format+alloc per event).

import (
	"testing"

	"repro/internal/trace"
)

func TestPointHashEqualPointsHashEqual(t *testing.T) {
	pts := []Point{
		{Class: DictRead, Val: trace.StrValue("k")},
		{Class: DictWrite, Val: trace.StrValue("k")},
		{Class: DictWrite, Val: trace.IntValue(1)},
		{Class: DictWrite, Val: trace.BoolValue(true)},
		{Class: DictSize},
		{Class: DictResize},
	}
	for _, p := range pts {
		q := Point{Class: p.Class, Val: p.Val}
		if p.Hash() != q.Hash() {
			t.Fatalf("equal points hash differently: %+v", p)
		}
	}
	// Distinctness is probabilistic, but these few must not collide — they
	// are exactly the near-miss pairs a weak mix would merge.
	seen := map[uint64]Point{}
	for _, p := range pts {
		if prev, dup := seen[p.Hash()]; dup {
			t.Fatalf("hash collision between %+v and %+v", prev, p)
		}
		seen[p.Hash()] = p
	}
}

func TestValueHashDistinguishesKinds(t *testing.T) {
	// int 1, bool true, string "1": same scalar payload or rendering,
	// different kinds.
	vals := []trace.Value{
		trace.IntValue(1), trace.BoolValue(true), trace.StrValue("1"),
		trace.NilValue, trace.IntValue(0), trace.StrValue(""),
	}
	seen := map[uint64]trace.Value{}
	for _, v := range vals {
		if prev, dup := seen[v.Hash()]; dup {
			t.Fatalf("hash collision between %s and %s", prev, v)
		}
		seen[v.Hash()] = v
	}
}

func TestValueHashSpreadsDenseInts(t *testing.T) {
	// Dense integer keys are the wide-key benchmark's workload; the
	// splitmix finalizer must spread them over low bits (power-of-two
	// masks). With 1024 sequential keys over a 4096-slot mask, collisions
	// should be far below the pigeonhole disaster of an identity hash's
	// perfect packing — just require no slot gets piled on.
	const mask = 1<<12 - 1
	counts := map[uint64]int{}
	for i := 0; i < 1024; i++ {
		counts[trace.IntValue(int64(i)).Hash()&mask]++
	}
	for slot, n := range counts {
		if n > 8 {
			t.Fatalf("slot %d received %d of 1024 dense keys; hash is not spreading", slot, n)
		}
	}
}

func naiveDict() *NaiveRep {
	return NewNaiveRep(func(a, b trace.Action) bool { return false })
}

func TestNaiveInterningAssignsStableIDs(t *testing.T) {
	n := naiveDict()
	a1 := trace.Action{Obj: 0, Method: "put",
		Args: []trace.Value{trace.StrValue("k"), trace.IntValue(1)},
		Rets: []trace.Value{trace.NilValue}}
	a2 := trace.Action{Obj: 0, Method: "get",
		Args: []trace.Value{trace.StrValue("k")},
		Rets: []trace.Value{trace.IntValue(1)}}
	id := func(a trace.Action) int {
		pts, err := n.Touch(nil, a)
		if err != nil || len(pts) != 1 {
			t.Fatalf("touch %s: %v %v", a, pts, err)
		}
		return pts[0].Class
	}
	i1, i2 := id(a1), id(a2)
	if i1 == i2 {
		t.Fatal("distinct actions interned to one id")
	}
	if id(a1) != i1 || id(a2) != i2 || id(a1) != i1 {
		t.Fatal("repeated touches must return the first-assigned id")
	}
}

func TestNaiveInterningDistinguishesLikeStrings(t *testing.T) {
	// The structural key must keep apart everything the old rendered-string
	// key kept apart: same rendering shape, different structure.
	n := naiveDict()
	cases := []trace.Action{
		{Obj: 0, Method: "m", Args: []trace.Value{trace.IntValue(1)}},
		{Obj: 0, Method: "m", Args: []trace.Value{trace.StrValue("1")}},
		{Obj: 0, Method: "m", Args: []trace.Value{trace.BoolValue(true)}},
		{Obj: 0, Method: "m", Args: []trace.Value{trace.StrValue("true")}},
		{Obj: 0, Method: "m", Args: []trace.Value{trace.NilValue}},
		{Obj: 0, Method: "m", Args: []trace.Value{trace.StrValue("nil")}},
		{Obj: 1, Method: "m", Args: []trace.Value{trace.IntValue(1)}}, // other object
		{Obj: 0, Method: "m", Args: nil, Rets: []trace.Value{trace.IntValue(1)}},
	}
	seen := map[int]trace.Action{}
	for _, a := range cases {
		pts, err := n.Touch(nil, a)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[pts[0].Class]; dup {
			t.Fatalf("actions %s and %s interned to one id", prev, a)
		}
		seen[pts[0].Class] = a
	}
}

func TestNaiveInterningOverflowArity(t *testing.T) {
	// More operands than the inline key holds: the string fallback must
	// still intern stably.
	n := naiveDict()
	wide := trace.Action{Obj: 0, Method: "m", Args: []trace.Value{
		trace.IntValue(1), trace.IntValue(2), trace.IntValue(3), trace.IntValue(4),
		trace.IntValue(5), trace.IntValue(6), trace.IntValue(7)}}
	pts1, err := n.Touch(nil, wide)
	if err != nil {
		t.Fatal(err)
	}
	pts2, err := n.Touch(nil, wide)
	if err != nil {
		t.Fatal(err)
	}
	if pts1[0].Class != pts2[0].Class {
		t.Fatal("overflow interning is unstable")
	}
}

func TestNaiveInterningAllocationFree(t *testing.T) {
	n := naiveDict()
	a := trace.Action{Obj: 0, Method: "put",
		Args: []trace.Value{trace.StrValue("k"), trace.IntValue(1)},
		Rets: []trace.Value{trace.NilValue}}
	buf := make([]Point, 0, 4)
	if _, err := n.Touch(buf, a); err != nil { // interning miss: allocates once
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := n.Touch(buf, a); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("interned touch allocates %.1f times; want 0", allocs)
	}
}
