// Package ap defines access point representations ⟨Xo, ηo, Co⟩ (Section 4.2
// of the paper): the structural form of a commutativity specification
// consumed by the race detector.
//
// An access point witnesses a "micro action" relevant to commutativity
// checking — e.g. a successful o.put(k,v)/nil touches o:w:k ("the value at k
// changed") and o:resize ("the size changed"). Conflict checking happens on
// points instead of whole invocations, which lets many invocations share
// state and, for representations derived from ECL specifications, bounds the
// number of checks per action by a constant (Theorem 6.6).
//
// A representation is shared by all objects of one specification; the
// detector keeps per-object state, so points do not embed the object id.
package ap

import (
	"fmt"

	"repro/internal/trace"
)

// Point is one access point of a representation, without the object
// component (the detector tracks objects separately). Class identifies the
// point class — for translated representations a (method, β, position)
// triple, for hand-written representations whatever the author chose — and
// Val is the witnessed operand value for positional points (the zero Value
// for ds-style points). Point is comparable and used as a map key.
type Point struct {
	Class int
	Val   trace.Value
}

// Hash returns a 64-bit structural hash of the point for the detector's
// open-addressed active tables (internal/core). Equal points hash equal;
// hashing never allocates.
func (p Point) Hash() uint64 {
	// The class usually occupies few low bits; rotate it away from the
	// value hash's low bits before mixing so (class, val) pairs that share
	// a value still land in distinct slots.
	return p.Val.Hash() ^ (uint64(p.Class)*0x9e3779b97f4a7c15 + 0x94d049bb133111eb)
}

// Rep is an access point representation. Implementations must be safe for
// concurrent readers (they are immutable after construction).
type Rep interface {
	// Touch appends to dst the access points η(a) touched by the action
	// and returns the extended slice. It fails on actions of unknown
	// methods or malformed arity.
	Touch(dst []Point, a trace.Action) ([]Point, error)

	// Bounded reports whether Conflicts enumerates a complete finite
	// candidate set for every point. Representations translated from ECL
	// are bounded (Theorem 6.6); naive representations are not.
	Bounded() bool

	// Conflicts appends to dst every point that conflicts with pt. Only
	// meaningful when Bounded returns true.
	Conflicts(dst []Point, pt Point) []Point

	// ConflictsWith reports (p, q) ∈ C. Always available; the detector's
	// enumerating engine uses it to scan active sets.
	ConflictsWith(p, q Point) bool

	// Describe renders a point for race reports, e.g. "o:w:\"a.com\"".
	Describe(pt Point) string
}

// The point classes of the hand-written dictionary representation (Fig 7).
const (
	DictRead   = iota // o:r:k — the value at key k was read
	DictWrite         // o:w:k — the value at key k changed
	DictSize          // o:size — the size was observed
	DictResize        // o:resize — the size changed
)

// DictRep is the optimized dictionary representation of Fig 7, written by
// hand. The translator-produced representation for the Fig 6 specification
// is equivalent (tested in internal/translate); this one exists as ground
// truth and as the fast path used by the benchmarks.
type DictRep struct{}

var _ Rep = DictRep{}

// Touch implements ηo of Fig 7(b).
func (DictRep) Touch(dst []Point, a trace.Action) ([]Point, error) {
	switch a.Method {
	case "put":
		if len(a.Args) != 2 || len(a.Rets) != 1 {
			return nil, fmt.Errorf("ap: put arity %d/%d", len(a.Args), len(a.Rets))
		}
		k, v, p := a.Args[0], a.Args[1], a.Rets[0]
		if v == p {
			// No-op put: observationally a read of the key.
			return append(dst, Point{Class: DictRead, Val: k}), nil
		}
		dst = append(dst, Point{Class: DictWrite, Val: k})
		if v.IsNil() != p.IsNil() {
			dst = append(dst, Point{Class: DictResize})
		}
		return dst, nil
	case "get":
		if len(a.Args) != 1 || len(a.Rets) != 1 {
			return nil, fmt.Errorf("ap: get arity %d/%d", len(a.Args), len(a.Rets))
		}
		return append(dst, Point{Class: DictRead, Val: a.Args[0]}), nil
	case "size":
		if len(a.Args) != 0 || len(a.Rets) != 1 {
			return nil, fmt.Errorf("ap: size arity %d/%d", len(a.Args), len(a.Rets))
		}
		return append(dst, Point{Class: DictSize}), nil
	default:
		return nil, fmt.Errorf("ap: dictionary has no method %q", a.Method)
	}
}

// Bounded reports true: every dictionary point conflicts with at most two
// others (Fig 7(c)).
func (DictRep) Bounded() bool { return true }

// Conflicts implements Co of Fig 7(c).
func (DictRep) Conflicts(dst []Point, pt Point) []Point {
	switch pt.Class {
	case DictRead:
		return append(dst, Point{Class: DictWrite, Val: pt.Val})
	case DictWrite:
		return append(dst,
			Point{Class: DictRead, Val: pt.Val},
			Point{Class: DictWrite, Val: pt.Val})
	case DictSize:
		return append(dst, Point{Class: DictResize})
	case DictResize:
		return append(dst, Point{Class: DictSize})
	default:
		return dst
	}
}

// ConflictsWith implements the symmetric relation of Fig 7(c).
func (DictRep) ConflictsWith(p, q Point) bool {
	switch {
	case p.Class == DictWrite && q.Class == DictWrite:
		return p.Val == q.Val
	case p.Class == DictWrite && q.Class == DictRead,
		p.Class == DictRead && q.Class == DictWrite:
		return p.Val == q.Val
	case p.Class == DictSize && q.Class == DictResize,
		p.Class == DictResize && q.Class == DictSize:
		return true
	default:
		return false
	}
}

// Describe renders points in the paper's o:w:k notation.
func (DictRep) Describe(pt Point) string {
	switch pt.Class {
	case DictRead:
		return "o:r:" + pt.Val.String()
	case DictWrite:
		return "o:w:" + pt.Val.String()
	case DictSize:
		return "o:size"
	case DictResize:
		return "o:resize"
	default:
		return fmt.Sprintf("o:?%d:%s", pt.Class, pt.Val)
	}
}

// NaiveRep is the unbounded baseline of Section 5.4: one access point per
// whole action, with conflicts decided by evaluating a commutativity
// predicate on the two recorded actions. It demonstrates the Θ(|A|) direct
// approach: Conflicts cannot enumerate, so the detector must scan active(o).
type NaiveRep struct {
	// Commute reports whether two actions are specified to commute.
	Commute func(a, b trace.Action) bool
	// actions interns recorded actions; point Class indexes into it.
	actions []trace.Action
	// index interns by structural key — no per-event formatting. Actions
	// with more operands than a naiveKey holds (rare; no shipped spec has
	// any) fall back to the rendered-string key in overflow.
	index    map[naiveKey]int
	overflow map[string]int
}

// naiveKeyOps bounds the operands a structural interning key carries
// inline. Actions with at most this many operands (every shipped spec)
// intern without allocating or formatting.
const naiveKeyOps = 6

// naiveKey is the comparable structural identity of an action: object,
// method, arity, and the operand values ū·v̄ inline. It distinguishes
// exactly what the old a.String() key distinguished (trace.Value renders
// injectively per kind), so interned ids are assigned identically.
type naiveKey struct {
	obj          trace.ObjID
	method       string
	nargs, nrets int
	w            [naiveKeyOps]trace.Value
}

// NewNaiveRep returns a NaiveRep over the given commutativity predicate.
func NewNaiveRep(commute func(a, b trace.Action) bool) *NaiveRep {
	return &NaiveRep{Commute: commute, index: map[naiveKey]int{}}
}

// Touch interns the action and returns its singleton point. Interning is
// structural and allocation-free for already-seen actions: the previous
// implementation rendered a.String() on every event, charging the
// unbounded-engine baseline an allocation plus a format per action and
// distorting the naive-vs-bounded comparison (Fig 8).
func (n *NaiveRep) Touch(dst []Point, a trace.Action) ([]Point, error) {
	if len(a.Args)+len(a.Rets) > naiveKeyOps {
		return n.touchOverflow(dst, a)
	}
	k := naiveKey{obj: a.Obj, method: a.Method, nargs: len(a.Args), nrets: len(a.Rets)}
	copy(k.w[:], a.Args)
	copy(k.w[len(a.Args):], a.Rets)
	id, ok := n.index[k]
	if !ok {
		id = len(n.actions)
		n.actions = append(n.actions, a)
		n.index[k] = id
	}
	return append(dst, Point{Class: id}), nil
}

// touchOverflow interns wide actions by rendered string (the old path).
func (n *NaiveRep) touchOverflow(dst []Point, a trace.Action) ([]Point, error) {
	if n.overflow == nil {
		n.overflow = map[string]int{}
	}
	key := a.String()
	id, ok := n.overflow[key]
	if !ok {
		id = len(n.actions)
		n.actions = append(n.actions, a)
		n.overflow[key] = id
	}
	return append(dst, Point{Class: id}), nil
}

// Bounded reports false: the conflict set of a naive point is unbounded.
func (n *NaiveRep) Bounded() bool { return false }

// Conflicts is unsupported for the naive representation.
func (n *NaiveRep) Conflicts(dst []Point, pt Point) []Point { return dst }

// ConflictsWith evaluates the commutativity predicate on the interned
// actions.
func (n *NaiveRep) ConflictsWith(p, q Point) bool {
	if p.Class < 0 || p.Class >= len(n.actions) || q.Class < 0 || q.Class >= len(n.actions) {
		return false
	}
	return !n.Commute(n.actions[p.Class], n.actions[q.Class])
}

// Describe renders the interned action.
func (n *NaiveRep) Describe(pt Point) string {
	if pt.Class >= 0 && pt.Class < len(n.actions) {
		return n.actions[pt.Class].String()
	}
	return fmt.Sprintf("action#%d", pt.Class)
}
