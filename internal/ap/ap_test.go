package ap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func act(method string, args, rets []trace.Value) trace.Action {
	return trace.Action{Obj: 0, Method: method, Args: args, Rets: rets}
}

func put(k, v, p trace.Value) trace.Action {
	return act("put", []trace.Value{k, v}, []trace.Value{p})
}

func get(k, v trace.Value) trace.Action {
	return act("get", []trace.Value{k}, []trace.Value{v})
}

func size(r int64) trace.Action {
	return act("size", nil, []trace.Value{trace.IntValue(r)})
}

var (
	kA = trace.StrValue("a.com")
	kB = trace.StrValue("b.com")
	v1 = trace.IntValue(1)
	v2 = trace.IntValue(2)
)

func touch(t *testing.T, r Rep, a trace.Action) []Point {
	t.Helper()
	pts, err := r.Touch(nil, a)
	if err != nil {
		t.Fatalf("Touch(%s): %v", a, err)
	}
	return pts
}

func TestDictTouchResizingPut(t *testing.T) {
	// o.put(k, v)/nil with v ≠ nil changes the value and the size: Fig 7(b)
	// says it touches o:w:k and o:resize.
	pts := touch(t, DictRep{}, put(kA, v1, trace.NilValue))
	if len(pts) != 2 {
		t.Fatalf("points = %v", pts)
	}
	if pts[0] != (Point{Class: DictWrite, Val: kA}) {
		t.Errorf("first point = %v", pts[0])
	}
	if pts[1] != (Point{Class: DictResize}) {
		t.Errorf("second point = %v", pts[1])
	}
}

func TestDictTouchOverwritePut(t *testing.T) {
	// Overwriting a present key with a different present value: only o:w:k.
	pts := touch(t, DictRep{}, put(kA, v2, v1))
	if len(pts) != 1 || pts[0] != (Point{Class: DictWrite, Val: kA}) {
		t.Fatalf("points = %v", pts)
	}
}

func TestDictTouchRemovalPut(t *testing.T) {
	// put(k, nil)/v removes the key: o:w:k and o:resize.
	pts := touch(t, DictRep{}, put(kA, trace.NilValue, v1))
	if len(pts) != 2 || pts[1] != (Point{Class: DictResize}) {
		t.Fatalf("points = %v", pts)
	}
}

func TestDictTouchNoopPut(t *testing.T) {
	// put(k, v)/v leaves the state unchanged: behaves as a read (v = p row
	// of Fig 7(b)).
	pts := touch(t, DictRep{}, put(kA, v1, v1))
	if len(pts) != 1 || pts[0] != (Point{Class: DictRead, Val: kA}) {
		t.Fatalf("points = %v", pts)
	}
	// Also for the nil/nil no-op.
	pts = touch(t, DictRep{}, put(kA, trace.NilValue, trace.NilValue))
	if len(pts) != 1 || pts[0] != (Point{Class: DictRead, Val: kA}) {
		t.Fatalf("nil-noop points = %v", pts)
	}
}

func TestDictTouchGetAndSize(t *testing.T) {
	pts := touch(t, DictRep{}, get(kA, v1))
	if len(pts) != 1 || pts[0] != (Point{Class: DictRead, Val: kA}) {
		t.Fatalf("get points = %v", pts)
	}
	pts = touch(t, DictRep{}, size(3))
	if len(pts) != 1 || pts[0] != (Point{Class: DictSize}) {
		t.Fatalf("size points = %v", pts)
	}
}

func TestDictTouchErrors(t *testing.T) {
	bad := []trace.Action{
		act("frob", nil, nil),
		act("put", []trace.Value{kA}, []trace.Value{v1}),
		act("get", nil, []trace.Value{v1}),
		act("size", []trace.Value{v1}, []trace.Value{v1}),
	}
	for _, a := range bad {
		if _, err := (DictRep{}).Touch(nil, a); err == nil {
			t.Errorf("Touch(%s) should fail", a)
		}
	}
}

func TestDictConflictMatrix(t *testing.T) {
	r := DictRep{}
	wA := Point{Class: DictWrite, Val: kA}
	wB := Point{Class: DictWrite, Val: kB}
	rA := Point{Class: DictRead, Val: kA}
	sz := Point{Class: DictSize}
	rs := Point{Class: DictResize}
	cases := []struct {
		p, q Point
		want bool
	}{
		{wA, wA, true},  // w:k vs w:k, k = l
		{wA, wB, false}, // different keys
		{wA, rA, true},  // w:k vs r:k
		{rA, rA, false}, // reads never conflict
		{sz, rs, true},  // size vs resize
		{sz, sz, false}, // Fig 7(c): size does not conflict with size
		{rs, rs, false}, // nor resize with resize
		{wA, sz, false}, // across groups: no conflicts
		{rA, rs, false},
	}
	for _, c := range cases {
		if got := r.ConflictsWith(c.p, c.q); got != c.want {
			t.Errorf("ConflictsWith(%s, %s) = %v, want %v", r.Describe(c.p), r.Describe(c.q), got, c.want)
		}
		if got := r.ConflictsWith(c.q, c.p); got != c.want {
			t.Errorf("symmetric ConflictsWith(%s, %s) = %v, want %v", r.Describe(c.q), r.Describe(c.p), got, c.want)
		}
	}
}

func TestDictConflictsEnumerationAgreesWithMatrix(t *testing.T) {
	// For every touched point, Conflicts must enumerate exactly the points
	// q with ConflictsWith(p, q) among a representative universe.
	r := DictRep{}
	universe := []Point{
		{Class: DictRead, Val: kA}, {Class: DictRead, Val: kB},
		{Class: DictWrite, Val: kA}, {Class: DictWrite, Val: kB},
		{Class: DictSize}, {Class: DictResize},
	}
	for _, p := range universe {
		enum := map[Point]bool{}
		for _, q := range r.Conflicts(nil, p) {
			enum[q] = true
		}
		if !r.Bounded() {
			t.Fatal("DictRep must be bounded")
		}
		if len(enum) > 2 {
			t.Errorf("point %s conflicts with %d > 2 points", r.Describe(p), len(enum))
		}
		for _, q := range universe {
			if got := enum[q]; got != r.ConflictsWith(p, q) {
				t.Errorf("point %s vs %s: enum %v, matrix %v", r.Describe(p), r.Describe(q), got, r.ConflictsWith(p, q))
			}
		}
	}
}

func TestDictDescribe(t *testing.T) {
	r := DictRep{}
	cases := map[Point]string{
		{Class: DictWrite, Val: kA}: `o:w:"a.com"`,
		{Class: DictRead, Val: v1}:  "o:r:1",
		{Class: DictSize}:           "o:size",
		{Class: DictResize}:         "o:resize",
	}
	for p, want := range cases {
		if got := r.Describe(p); got != want {
			t.Errorf("Describe(%v) = %q, want %q", p, got, want)
		}
	}
}

// dictCommutes is the Fig 6 logical specification, evaluated directly.
func dictCommutes(a, b trace.Action) bool {
	if a.Method > b.Method {
		a, b = b, a
	}
	switch {
	case a.Method == "put" && b.Method == "put":
		return a.Args[0] != b.Args[0] || (a.Args[1] == a.Rets[0] && b.Args[1] == b.Rets[0])
	case a.Method == "get" && b.Method == "put":
		return b.Args[0] != a.Args[0] || b.Args[1] == b.Rets[0]
	case a.Method == "put" && b.Method == "size":
		return a.Args[1].IsNil() == a.Rets[0].IsNil()
	default:
		return true
	}
}

// randDictAction draws a random dictionary action (returns unconstrained —
// representation equivalence is a per-action-pair property and does not
// require a realizable trace).
func randDictAction(r *rand.Rand) trace.Action {
	keys := []trace.Value{kA, kB, trace.StrValue("c.com")}
	vals := []trace.Value{trace.NilValue, v1, v2}
	switch r.Intn(3) {
	case 0:
		return put(keys[r.Intn(len(keys))], vals[r.Intn(len(vals))], vals[r.Intn(len(vals))])
	case 1:
		return get(keys[r.Intn(len(keys))], vals[r.Intn(len(vals))])
	default:
		return size(int64(r.Intn(3)))
	}
}

func TestPropDictRepRepresentsFig6Spec(t *testing.T) {
	// Definition 4.5: (η(a) × η(b)) ∩ C = ∅ iff ϕ(a, b). The hand-written
	// representation must agree with the direct evaluation of the Fig 6
	// formulas on all action pairs.
	r := DictRep{}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randDictAction(rng), randDictAction(rng)
		pa, err := r.Touch(nil, a)
		if err != nil {
			return false
		}
		pb, err := r.Touch(nil, b)
		if err != nil {
			return false
		}
		conflict := false
		for _, p := range pa {
			for _, q := range pb {
				if r.ConflictsWith(p, q) {
					conflict = true
				}
			}
		}
		want := !dictCommutes(a, b)
		if conflict != want {
			t.Logf("a=%s b=%s rep=%v spec=%v", a, b, conflict, want)
		}
		return conflict == want
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNaiveRepInternsAndConflicts(t *testing.T) {
	n := NewNaiveRep(dictCommutes)
	a := put(kA, v1, trace.NilValue)
	b := size(0)
	pa, err := n.Touch(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := n.Touch(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	if n.Bounded() {
		t.Fatal("naive representation must be unbounded")
	}
	if !n.ConflictsWith(pa[0], pb[0]) {
		t.Error("resizing put must conflict with size")
	}
	// Re-touching the same action yields the same interned point.
	pa2, err := n.Touch(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	if pa2[0] != pa[0] {
		t.Error("interning broken")
	}
	if got := n.Describe(pa[0]); got != a.String() {
		t.Errorf("Describe = %q", got)
	}
	if n.ConflictsWith(Point{Class: 99}, pa[0]) {
		t.Error("out-of-range class must not conflict")
	}
	if len(n.Conflicts(nil, pa[0])) != 0 {
		t.Error("naive Conflicts must be empty")
	}
	if n.Describe(Point{Class: 42}) == "" {
		t.Error("Describe of unknown point should still render")
	}
}

func TestPropNaiveAgreesWithDictRep(t *testing.T) {
	n := NewNaiveRep(dictCommutes)
	d := DictRep{}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randDictAction(rng), randDictAction(rng)
		pa, _ := n.Touch(nil, a)
		pb, _ := n.Touch(nil, b)
		naive := n.ConflictsWith(pa[0], pb[0])
		da, _ := d.Touch(nil, a)
		db, _ := d.Touch(nil, b)
		dict := false
		for _, p := range da {
			for _, q := range db {
				if d.ConflictsWith(p, q) {
					dict = true
				}
			}
		}
		return naive == dict
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Fatal(err)
	}
}
