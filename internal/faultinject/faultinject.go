// Package faultinject is the deterministic, seed-driven fault-injection
// toolkit behind the chaos smoke (ci.sh -chaos) and the fault-tolerance
// tests: wire-level corruption (bit flips, truncation, zeroed regions,
// junk insertion), connection faults (severed and delayed conns), detector
// faults (access-point representations that panic on cue), and memory
// pressure (heap ballast).
//
// Every injector is a pure function of its seed: the same seed yields the
// same fault, so a chaos failure reproduces with its logged seed. No
// injector runs unless explicitly armed — the daemon and harness expose
// opt-in hooks (rd2d -inject, harness.Config.WrapRep) that are nil in
// normal operation.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/ap"
	"repro/internal/trace"
)

// ErrInjected marks every error produced by an injector, so tests can
// distinguish injected faults from real ones.
var ErrInjected = errors.New("faultinject: injected fault")

// NewRand returns the deterministic random stream for a seed.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// --- Byte-level corruption -------------------------------------------------

// FlipBits returns a copy of data with n random single-bit flips at offsets
// >= skip (use skip to protect a header from corruption, or 0 to include
// it).
func FlipBits(data []byte, seed int64, n, skip int) []byte {
	out := append([]byte(nil), data...)
	if len(out) <= skip {
		return out
	}
	rng := NewRand(seed)
	for i := 0; i < n; i++ {
		pos := skip + rng.Intn(len(out)-skip)
		out[pos] ^= 1 << uint(rng.Intn(8))
	}
	return out
}

// Truncate returns data cut at a random offset in [min, len(data)).
func Truncate(data []byte, seed int64, min int) []byte {
	if len(data) <= min {
		return append([]byte(nil), data...)
	}
	cut := min + NewRand(seed).Intn(len(data)-min)
	return append([]byte(nil), data[:cut]...)
}

// ZeroRegion returns a copy of data with a random n-byte region (at offset
// >= skip) overwritten with zeros.
func ZeroRegion(data []byte, seed int64, n, skip int) []byte {
	out := append([]byte(nil), data...)
	if len(out) <= skip {
		return out
	}
	start := skip + NewRand(seed).Intn(len(out)-skip)
	end := start + n
	if end > len(out) {
		end = len(out)
	}
	for i := start; i < end; i++ {
		out[i] = 0
	}
	return out
}

// InsertJunk returns data with n random bytes spliced in at a random
// offset >= skip.
func InsertJunk(data []byte, seed int64, n, skip int) []byte {
	rng := NewRand(seed)
	junk := make([]byte, n)
	rng.Read(junk)
	pos := skip
	if len(data) > skip {
		pos = skip + rng.Intn(len(data)-skip)
	}
	out := make([]byte, 0, len(data)+n)
	out = append(out, data[:pos]...)
	out = append(out, junk...)
	out = append(out, data[pos:]...)
	return out
}

// Variant is one labeled corruption of a byte stream.
type Variant struct {
	Name string
	Data []byte
}

// CorruptStream derives a deterministic family of corruptions from one
// valid wire stream: the exact fault classes the RDB2 decoder must survive
// (payload bit flips breaking the CRC, zeroed frame headers losing sync,
// truncation mid-frame, junk splices, and a lying length field). It seeds
// the internal/wire fuzz corpus and drives the resync chaos tests. skip
// protects the first skip bytes (the stream header) so the variant still
// enters frame decoding.
func CorruptStream(data []byte, seed int64, skip int) []Variant {
	variants := []Variant{
		{Name: "bitflip1", Data: FlipBits(data, seed, 1, skip)},
		{Name: "bitflip8", Data: FlipBits(data, seed+1, 8, skip)},
		{Name: "zero16", Data: ZeroRegion(data, seed+2, 16, skip)},
		{Name: "truncate", Data: Truncate(data, seed+3, skip)},
		{Name: "junk32", Data: InsertJunk(data, seed+4, 32, skip)},
	}
	// A frame header that announces an absurd payload length: overwrite
	// bytes right after the header region with a maximal uvarint.
	if len(data) > skip+12 {
		lie := append([]byte(nil), data...)
		copy(lie[skip+3:], []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
		variants = append(variants, Variant{Name: "lyinglen", Data: lie})
	}
	return variants
}

// --- Connection faults -----------------------------------------------------

// SeverWriter fails every Write (with ErrInjected) once n bytes have been
// written — a deterministic mid-stream connection loss for io.Writer
// plumbing.
type SeverWriter struct {
	W      io.Writer
	n      int64
	budget int64
}

// NewSeverWriter returns a writer that dies after budget bytes.
func NewSeverWriter(w io.Writer, budget int64) *SeverWriter {
	return &SeverWriter{W: w, budget: budget}
}

// Write forwards to the underlying writer until the budget is spent.
func (s *SeverWriter) Write(p []byte) (int, error) {
	if s.n >= s.budget {
		return 0, fmt.Errorf("%w: connection severed after %d bytes", ErrInjected, s.n)
	}
	if rem := s.budget - s.n; int64(len(p)) > rem {
		n, _ := s.W.Write(p[:rem])
		s.n += int64(n)
		return n, fmt.Errorf("%w: connection severed after %d bytes", ErrInjected, s.n)
	}
	n, err := s.W.Write(p)
	s.n += int64(n)
	return n, err
}

// SeverConn wraps a net.Conn so it hard-closes after budget written bytes:
// the peer sees a mid-stream disconnect at a deterministic byte offset.
type SeverConn struct {
	net.Conn
	n      int64
	budget int64
}

// NewSeverConn returns a conn that dies after budget written bytes.
func NewSeverConn(c net.Conn, budget int64) *SeverConn {
	return &SeverConn{Conn: c, budget: budget}
}

// Write forwards until the budget is spent, then closes the connection and
// fails with ErrInjected.
func (s *SeverConn) Write(p []byte) (int, error) {
	if s.n >= s.budget {
		s.Conn.Close()
		return 0, fmt.Errorf("%w: conn severed after %d bytes", ErrInjected, s.n)
	}
	if rem := s.budget - s.n; int64(len(p)) > rem {
		n, _ := s.Conn.Write(p[:rem])
		s.n += int64(n)
		s.Conn.Close()
		return n, fmt.Errorf("%w: conn severed after %d bytes", ErrInjected, s.n)
	}
	n, err := s.Conn.Write(p)
	s.n += int64(n)
	return n, err
}

// DelayConn wraps a net.Conn adding a fixed latency before every write —
// the slow-network injector for timeout paths.
type DelayConn struct {
	net.Conn
	Delay time.Duration
}

// Write sleeps, then forwards.
func (d *DelayConn) Write(p []byte) (int, error) {
	time.Sleep(d.Delay)
	return d.Conn.Write(p)
}

// --- Detector faults -------------------------------------------------------

// PanicRep wraps an access-point representation so that one Touch call —
// the countdown-th — panics. Embedding forwards every other Rep method to
// the wrapped representation unchanged, so detection is bit-identical up
// to the injected panic. The countdown is atomic: under the sharded
// pipeline, whichever shard reaches it first panics, and exactly once.
type PanicRep struct {
	ap.Rep
	remaining atomic.Int64
}

// NewPanicRep arms rep to panic on the after-th Touch (1 = first touch).
func NewPanicRep(rep ap.Rep, after int64) *PanicRep {
	p := &PanicRep{Rep: rep}
	p.remaining.Store(after)
	return p
}

// Touch forwards to the wrapped representation, panicking when the
// countdown strikes zero.
func (p *PanicRep) Touch(dst []ap.Point, a trace.Action) ([]ap.Point, error) {
	if p.remaining.Add(-1) == 0 {
		panic(fmt.Sprintf("faultinject: injected rep panic at obj %d method %s", a.Obj, a.Method))
	}
	return p.Rep.Touch(dst, a)
}

// WrapAllReps returns a WrapRep hook arming every registered representation
// with one shared countdown: the after-th Touch across all objects panics.
func WrapAllReps(after int64) func(ap.Rep) ap.Rep {
	shared := &atomic.Int64{}
	shared.Store(after)
	return func(rep ap.Rep) ap.Rep {
		return &sharedPanicRep{Rep: rep, remaining: shared}
	}
}

// sharedPanicRep is PanicRep with a countdown shared across many reps.
type sharedPanicRep struct {
	ap.Rep
	remaining *atomic.Int64
}

// Touch forwards, panicking when the shared countdown strikes zero.
func (p *sharedPanicRep) Touch(dst []ap.Point, a trace.Action) ([]ap.Point, error) {
	if p.remaining.Add(-1) == 0 {
		panic(fmt.Sprintf("faultinject: injected rep panic at obj %d method %s", a.Obj, a.Method))
	}
	return p.Rep.Touch(dst, a)
}

// --- Memory pressure -------------------------------------------------------

// Ballast allocates and touches n bytes of heap, returning a release
// function — a deterministic way to trigger allocation pressure and GC
// activity under a running session.
func Ballast(n int) (release func()) {
	b := make([]byte, n)
	for i := 0; i < len(b); i += 4096 {
		b[i] = 1
	}
	return func() {
		// Keep b reachable until release; then let the GC take it.
		_ = b[0]
		b = nil
		_ = b
	}
}
