package faultinject

// Process- and file-level injectors for the durable-session chaos harness
// (ci.sh -durable, DESIGN.md §15): hard process kills simulating a daemon
// crash at a chosen write, and deterministic on-disk corruption of WAL and
// snapshot files between a kill and the restart.

import (
	"fmt"
	"os"
	"syscall"
	"time"
)

// KillSelf delivers SIGKILL to the current process — the injected
// equivalent of a crash: no deferred functions, no flushes, no graceful
// drain. It never returns; the brief sleep loop covers signal delivery
// latency.
func KillSelf() {
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
	for {
		time.Sleep(time.Second)
	}
}

// TruncateFile cuts the file at a random offset in [min, size) — a torn
// append tail, as a machine crash mid-write leaves behind.
func TruncateFile(path string, seed int64, min int) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := int(fi.Size())
	if size <= min {
		return fmt.Errorf("%w: %s has %d bytes, nothing to truncate past %d", ErrInjected, path, size, min)
	}
	cut := min + NewRand(seed).Intn(size-min)
	return os.Truncate(path, int64(cut))
}

// FlipFileBits applies n random single-bit flips to the file at offsets
// >= skip — bitrot in a snapshot or WAL that CRC validation must catch.
func FlipFileBits(path string, seed int64, n, skip int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) <= skip {
		return fmt.Errorf("%w: %s has %d bytes, nothing past skip %d", ErrInjected, path, len(data), skip)
	}
	return os.WriteFile(path, FlipBits(data, seed, n, skip), 0o644)
}
