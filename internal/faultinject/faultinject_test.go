package faultinject

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/ap"
	"repro/internal/specs"
	"repro/internal/trace"
)

func sample() []byte {
	b := make([]byte, 256)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

func TestInjectorsAreDeterministic(t *testing.T) {
	data := sample()
	if !bytes.Equal(FlipBits(data, 7, 4, 8), FlipBits(data, 7, 4, 8)) {
		t.Error("FlipBits not deterministic for a fixed seed")
	}
	if bytes.Equal(FlipBits(data, 7, 4, 8), FlipBits(data, 8, 4, 8)) {
		t.Error("FlipBits ignored the seed")
	}
	if !bytes.Equal(Truncate(data, 3, 8), Truncate(data, 3, 8)) {
		t.Error("Truncate not deterministic")
	}
	if !bytes.Equal(InsertJunk(data, 5, 16, 8), InsertJunk(data, 5, 16, 8)) {
		t.Error("InsertJunk not deterministic")
	}
	if !bytes.Equal(ZeroRegion(data, 9, 16, 8), ZeroRegion(data, 9, 16, 8)) {
		t.Error("ZeroRegion not deterministic")
	}
}

func TestInjectorsRespectSkip(t *testing.T) {
	data := sample()
	const skip = 16
	for name, out := range map[string][]byte{
		"FlipBits":   FlipBits(data, 1, 32, skip),
		"ZeroRegion": ZeroRegion(data, 2, 64, skip),
		"InsertJunk": InsertJunk(data, 3, 32, skip),
		"Truncate":   Truncate(data, 4, skip),
	} {
		if len(out) < skip || !bytes.Equal(out[:skip], data[:skip]) {
			t.Errorf("%s corrupted the protected prefix", name)
		}
	}
	// Each injector must actually change something past the prefix.
	if bytes.Equal(FlipBits(data, 1, 32, skip), data) {
		t.Error("FlipBits changed nothing")
	}
	if len(Truncate(data, 4, skip)) >= len(data) {
		t.Error("Truncate cut nothing")
	}
}

func TestCorruptStreamVariants(t *testing.T) {
	data := sample()
	vs := CorruptStream(data, 42, 5)
	if len(vs) < 6 {
		t.Fatalf("CorruptStream produced %d variants, want >= 6", len(vs))
	}
	seen := map[string]bool{}
	for _, v := range vs {
		if seen[v.Name] {
			t.Errorf("duplicate variant name %q", v.Name)
		}
		seen[v.Name] = true
		if v.Name != "truncate" && bytes.Equal(v.Data, data) {
			t.Errorf("variant %q did not change the stream", v.Name)
		}
	}
}

func TestSeverWriter(t *testing.T) {
	var sink bytes.Buffer
	w := NewSeverWriter(&sink, 10)
	if n, err := w.Write(make([]byte, 6)); n != 6 || err != nil {
		t.Fatalf("first write = (%d, %v), want (6, nil)", n, err)
	}
	n, err := w.Write(make([]byte, 6))
	if n != 4 || !errors.Is(err, ErrInjected) {
		t.Fatalf("budget-crossing write = (%d, %v), want (4, ErrInjected)", n, err)
	}
	if _, err := w.Write([]byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-budget write error = %v, want ErrInjected", err)
	}
	if sink.Len() != 10 {
		t.Fatalf("sink got %d bytes, want exactly the 10-byte budget", sink.Len())
	}
}

func TestPanicRepCountdown(t *testing.T) {
	rep := NewPanicRep(specs.MustRep("dict"), 3)
	act := trace.Action{Obj: 0, Method: "put",
		Args: []trace.Value{trace.StrValue("k"), trace.IntValue(1)},
		Rets: []trace.Value{trace.NilValue}}
	for i := 0; i < 2; i++ {
		if _, err := rep.Touch(nil, act); err != nil {
			t.Fatalf("touch %d: %v", i, err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("third Touch did not panic")
		}
	}()
	rep.Touch(nil, act)
}

func TestWrapAllRepsSharedCountdown(t *testing.T) {
	wrap := WrapAllReps(4)
	a := wrap(specs.MustRep("dict"))
	b := wrap(specs.MustRep("set"))
	act := trace.Action{Obj: 0, Method: "size",
		Rets: []trace.Value{trace.IntValue(0)}}
	// Countdown is shared: touches across both reps consume it.
	touch := func(r ap.Rep) (panicked bool) {
		defer func() { panicked = recover() != nil }()
		r.Touch(nil, act)
		return
	}
	for i, r := range []ap.Rep{a, b, a} {
		if touch(r) {
			t.Fatalf("touch %d panicked early", i)
		}
	}
	if !touch(b) {
		t.Fatal("4th touch across wrapped reps did not panic")
	}
	if touch(a) || touch(b) {
		t.Fatal("countdown fired more than once")
	}
}

func TestBallast(t *testing.T) {
	release := Ballast(1 << 20)
	release()
}
