package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/trace"
)

// Summary is the one-line JSON acknowledgment rd2d writes back on the
// connection when a session ends: how many events it ingested, how many
// commutativity races it found, and whether the stream terminated with an
// explicit end-of-stream frame.
type Summary struct {
	Events int    `json:"events"`
	Races  int    `json:"races"`
	Clean  bool   `json:"clean"`
	Error  string `json:"error,omitempty"` // first stamping/detection error, if any

	// Busy means the daemon refused the session at admission (session table
	// full, global ingest budget exhausted, or tenant quota exceeded): no
	// events were ingested and the client may retry after a backoff. The
	// clients surface it as ErrBusy.
	Busy bool `json:"busy,omitempty"`

	// Fault-tolerance annotations (version 2 sessions). Degraded means the
	// race set may be incomplete — corruption resync skipped data, or a
	// detection shard panicked and was recovered — and the counts say why.
	// A degraded report is partial but honest: every race listed was found;
	// none are invented; some may be missing.
	Degraded      bool   `json:"degraded,omitempty"`
	SkippedFrames int    `json:"skipped_frames,omitempty"`
	SkippedBytes  int64  `json:"skipped_bytes,omitempty"`
	ShardPanics   int    `json:"shard_panics,omitempty"`
	Resumes       int    `json:"resumes,omitempty"` // times the session was re-attached
	SessionID     string `json:"session,omitempty"`
	// Seq is the session's last race record sequence number (the monotonic
	// per-session counter stamped on every JSONL race record), so a client
	// can cross-check the streamed report against the daemon's corpus.
	Seq uint64 `json:"seq,omitempty"`
}

// Client streams events to an rd2d ingestion daemon over TCP in the RDB2
// wire format. Not safe for concurrent use.
type Client struct {
	conn net.Conn
	enc  *Encoder
}

// Dial connects to an rd2d daemon.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, enc: NewEncoder(conn)}, nil
}

// SetTenant declares the stream's tenant id for the daemon's per-tenant
// admission and quotas. Must be called before the first write.
func (c *Client) SetTenant(tenant string) error { return c.enc.SetTenant(tenant) }

// WriteEvent streams one event to the daemon.
func (c *Client) WriteEvent(e *trace.Event) error { return c.enc.WriteEvent(e) }

// Flush pushes buffered events onto the socket.
func (c *Client) Flush() error { return c.enc.Flush() }

// SendSource streams an entire event source.
func (c *Client) SendSource(src trace.Source) error {
	for {
		e, err := src.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := c.WriteEvent(&e); err != nil {
			return err
		}
	}
}

// Close finishes the stream (end-of-stream frame), half-closes the write
// side, reads the daemon's summary line, and closes the connection. The
// summary read honors timeout (0 means no deadline).
//
// A transport-level write failure does not abort the summary read: a
// daemon that rejected the session at admission writes its busy summary
// and stops reading, so the client's writes fail while the answer already
// sits in its receive buffer. Close salvages that line and returns the
// summary with ErrBusy; only when no summary can be read does the write
// error surface.
func (c *Client) Close(timeout time.Duration) (Summary, error) {
	defer c.conn.Close()
	werr := c.enc.Close()
	if werr == nil {
		if tc, ok := c.conn.(*net.TCPConn); ok {
			werr = tc.CloseWrite()
		}
	}
	if werr != nil && !retryable(werr) {
		return Summary{}, werr
	}
	if timeout > 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return Summary{}, err
		}
	}
	line, err := bufio.NewReader(c.conn).ReadBytes('\n')
	if err != nil {
		if werr != nil {
			return Summary{}, fmt.Errorf("wire: stream write failed: %w", werr)
		}
		return Summary{}, fmt.Errorf("wire: reading summary: %w", err)
	}
	var s Summary
	if err := json.Unmarshal(line, &s); err != nil {
		return Summary{}, fmt.Errorf("wire: bad summary %q: %w", line, err)
	}
	if s.Busy {
		return s, ErrBusy
	}
	return s, nil
}

// Abort closes the connection without finishing the stream (the daemon
// sees an unclean end and still reports what it ingested).
func (c *Client) Abort() error { return c.conn.Close() }
