package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// This file is the durable-session side of the wire format (DESIGN.md §15):
//
//   - AppendFrame / AppendStreamHeader / FrameWireSize let cmd/rd2d keep a
//     per-session write-ahead log that *is* an RDB2 stream — accepted frames
//     are re-serialized verbatim, so recovery replays the WAL through an
//     ordinary Decoder and reproduces the exact event sequence (including
//     duplicate-chunk drops) the live connection produced.
//   - DecoderState / Decoder.State / ResumeDecoder checkpoint and restore
//     the cross-frame decoder state (interning table, event/chunk cursors,
//     degradation counters), so WAL replay can start mid-file at a
//     snapshot's offset instead of from genesis.
//   - StateWriter / StateReader are a CRC-framed section codec for snapshot
//     files ("RDS1"): each section is framed exactly like an RDB2 frame
//     (sync, kind, length, payload, CRC-32C) and the file ends with an
//     explicit end marker, so truncation anywhere — even at a section
//     boundary — is detected and the reader fails instead of returning a
//     silently shortened snapshot.

// StateMagic identifies a snapshot (checkpoint) file written by StateWriter.
const StateMagic = "RDS1"

// MaxStateSection bounds a single snapshot section payload. Snapshot
// sections carry whole engine/detector exports, so the bound is far looser
// than MaxFrame while still rejecting corrupt length fields before they
// turn into huge allocations.
const MaxStateSection = 1 << 30

// stateEnd is the reserved section kind closing a snapshot file; callers
// must use kinds >= 1.
const stateEnd byte = 0x00

// ErrStateTruncated reports a snapshot file that ends without its end
// marker — a torn checkpoint write.
var ErrStateTruncated = errors.New("wire: snapshot truncated")

// AppendFrame appends one complete RDB2 frame (sync marker, kind, length,
// payload, CRC-32C) to dst and returns the extended slice. It is the
// allocation-controlled twin of the Encoder's internal frame serializer,
// exported for WAL appends that must re-emit an accepted frame verbatim.
func AppendFrame(dst []byte, kind byte, payload []byte) []byte {
	var tmp [binary.MaxVarintLen64]byte
	dst = append(dst, sync0, sync1, kind)
	n := binary.PutUvarint(tmp[:], uint64(len(payload)))
	dst = append(dst, tmp[:n]...)
	dst = append(dst, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, castagnoli))
	return append(dst, crc[:]...)
}

// FrameWireSize returns the on-wire size of a frame with a payload of
// payloadLen bytes: sync (2) + kind (1) + uvarint length + payload + CRC (4).
// WAL replay uses it to advance its byte-offset accounting one accepted
// frame at a time without re-reading the file.
func FrameWireSize(payloadLen int) int {
	var tmp [binary.MaxVarintLen64]byte
	return 3 + binary.PutUvarint(tmp[:], uint64(payloadLen)) + payloadLen + 4
}

// AppendStreamHeader appends an RDB2 stream header — magic, current
// version, and (when sid or tenant is non-empty) the hello frame a client
// with that identity would send — to dst and returns the extended slice.
// Writing it at offset 0 of a fresh WAL makes the log a self-describing
// RDB2 stream that NewDecoder accepts directly.
func AppendStreamHeader(dst []byte, sid, tenant string) []byte {
	var tmp [binary.MaxVarintLen64]byte
	dst = append(dst, Magic...)
	dst = append(dst, Version)
	if sid == "" && tenant == "" {
		return dst
	}
	hello := make([]byte, 0, len(sid)+len(tenant)+2*binary.MaxVarintLen64)
	n := binary.PutUvarint(tmp[:], uint64(len(sid)))
	hello = append(hello, tmp[:n]...)
	hello = append(hello, sid...)
	if tenant != "" {
		n = binary.PutUvarint(tmp[:], uint64(len(tenant)))
		hello = append(hello, tmp[:n]...)
		hello = append(hello, tenant...)
	}
	return AppendFrame(dst, frameHello, hello)
}

// DecoderState is the portable cross-frame state of a Decoder: everything a
// later decoder needs to continue the same logical stream — after a
// connection handoff persisted across a daemon restart — with interning
// references resolving and duplicate chunks deduplicating exactly as they
// would have on the uninterrupted stream.
type DecoderState struct {
	Version       byte
	SID           string
	Tenant        string
	Intern        []string
	Events        int
	Frames        int
	ExpectChunk   uint64
	SeenChunk     bool
	DupChunks     int
	SkippedBytes  int64
	SkippedFrames int
	Resyncs       int
}

// State captures the decoder's cross-frame state. The interning slice is
// shared, not copied: its populated prefix is immutable (the decoder only
// appends), so a snapshot taken between frames stays valid while the live
// decoder keeps interning.
func (d *Decoder) State() DecoderState {
	return DecoderState{
		Version:       d.version,
		SID:           d.sid,
		Tenant:        d.tenant,
		Intern:        d.intern[:len(d.intern):len(d.intern)],
		Events:        d.seq,
		Frames:        d.frames,
		ExpectChunk:   d.expectChunk,
		SeenChunk:     d.seenChunk,
		DupChunks:     d.dups,
		SkippedBytes:  d.skippedBytes,
		SkippedFrames: d.skippedFrames,
		Resyncs:       d.resyncs,
	}
}

// ResumeDecoder returns a decoder that continues a stream from a captured
// DecoderState: r must be positioned at a frame boundary of the same
// logical stream (a WAL at a snapshot's frame offset). No header or hello
// is expected — identity and version come from the state.
func ResumeDecoder(r io.Reader, st DecoderState) *Decoder {
	d := &Decoder{r: bufio.NewReaderSize(r, ResyncWindow), ob: defaultWireObs}
	d.version = st.Version
	d.sid = st.SID
	d.tenant = st.Tenant
	d.intern = st.Intern
	d.seq = st.Events
	d.frames = st.Frames
	d.expectChunk = st.ExpectChunk
	d.seenChunk = st.SeenChunk
	d.dups = st.DupChunks
	d.skippedBytes = st.SkippedBytes
	d.skippedFrames = st.SkippedFrames
	d.resyncs = st.Resyncs
	return d
}

// StateWriter writes a CRC-framed snapshot file: the RDS1 magic, a sequence
// of sections (Begin … primitives … End), and an end marker (Close). Errors
// are sticky; the first failure is returned by the call that hit it and by
// every later End/Close.
type StateWriter struct {
	w       io.Writer
	buf     []byte
	tmp     [binary.MaxVarintLen64]byte
	started bool
	open    bool
	kind    byte
	err     error
}

// NewStateWriter returns a snapshot writer over w. Nothing is written until
// the first section begins.
func NewStateWriter(w io.Writer) *StateWriter {
	return &StateWriter{w: w}
}

// Begin opens a section of the given kind (>= 1). Any previously open
// section must have been ended.
func (sw *StateWriter) Begin(kind byte) {
	if sw.err != nil {
		return
	}
	if sw.open {
		sw.err = errors.New("wire: StateWriter.Begin with open section")
		return
	}
	if kind == stateEnd {
		sw.err = errors.New("wire: StateWriter section kind 0 is reserved")
		return
	}
	sw.open = true
	sw.kind = kind
	sw.buf = sw.buf[:0]
}

// Uvarint appends an unsigned varint to the open section.
func (sw *StateWriter) Uvarint(v uint64) {
	if sw.err != nil {
		return
	}
	n := binary.PutUvarint(sw.tmp[:], v)
	sw.buf = append(sw.buf, sw.tmp[:n]...)
}

// Varint appends a zigzag varint to the open section.
func (sw *StateWriter) Varint(v int64) {
	if sw.err != nil {
		return
	}
	n := binary.PutVarint(sw.tmp[:], v)
	sw.buf = append(sw.buf, sw.tmp[:n]...)
}

// Bool appends a boolean byte to the open section.
func (sw *StateWriter) Bool(b bool) {
	var v uint64
	if b {
		v = 1
	}
	sw.Uvarint(v)
}

// String appends a length-prefixed string to the open section.
func (sw *StateWriter) String(s string) {
	sw.Uvarint(uint64(len(s)))
	if sw.err != nil {
		return
	}
	sw.buf = append(sw.buf, s...)
}

// Bytes appends a length-prefixed byte string to the open section.
func (sw *StateWriter) Bytes(b []byte) {
	sw.Uvarint(uint64(len(b)))
	if sw.err != nil {
		return
	}
	sw.buf = append(sw.buf, b...)
}

// End frames and writes the open section.
func (sw *StateWriter) End() error {
	if sw.err != nil {
		return sw.err
	}
	if !sw.open {
		sw.err = errors.New("wire: StateWriter.End without open section")
		return sw.err
	}
	sw.open = false
	return sw.writeFrame(sw.kind, sw.buf)
}

// Close writes the end marker. The caller owns closing/syncing the
// underlying file.
func (sw *StateWriter) Close() error {
	if sw.err != nil {
		return sw.err
	}
	if sw.open {
		sw.err = errors.New("wire: StateWriter.Close with open section")
		return sw.err
	}
	return sw.writeFrame(stateEnd, nil)
}

// Err returns the sticky error, if any.
func (sw *StateWriter) Err() error { return sw.err }

func (sw *StateWriter) writeFrame(kind byte, payload []byte) error {
	if !sw.started {
		sw.started = true
		if _, err := io.WriteString(sw.w, StateMagic); err != nil {
			sw.err = err
			return err
		}
	}
	frame := AppendFrame(nil, kind, payload)
	if _, err := sw.w.Write(frame); err != nil {
		sw.err = err
		return err
	}
	return nil
}

// StateReader reads a snapshot file written by StateWriter. Next loads one
// section at a time; the field accessors consume the current section with a
// sticky error (check Err, or rely on the zero values they return after a
// failure). Any framing violation — bad magic, CRC mismatch, short read,
// missing end marker — is an error: a torn snapshot never reads as a valid
// shorter one.
type StateReader struct {
	r       *bufio.Reader
	payload []byte
	pos     int
	tmp     [binary.MaxVarintLen64]byte
	err     error
}

// NewStateReader verifies the RDS1 magic and returns a section reader.
func NewStateReader(r io.Reader) (*StateReader, error) {
	sr := &StateReader{r: bufio.NewReader(r)}
	var magic [len(StateMagic)]byte
	if _, err := io.ReadFull(sr.r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrStateTruncated, err)
	}
	if string(magic[:]) != StateMagic {
		return nil, fmt.Errorf("wire: bad snapshot magic %q", magic[:])
	}
	return sr, nil
}

// Next loads the next section and returns its kind. It returns io.EOF at
// the end marker, ErrStateTruncated if the file ends early, and ErrCRC on
// checksum mismatch. The previous section must be fully consumed or its
// remainder is discarded.
func (sr *StateReader) Next() (byte, error) {
	if sr.err != nil {
		return 0, sr.err
	}
	var hdr [3]byte
	if _, err := io.ReadFull(sr.r, hdr[:]); err != nil {
		return 0, sr.fail(fmt.Errorf("%w: section header: %v", ErrStateTruncated, err))
	}
	if hdr[0] != sync0 || hdr[1] != sync1 {
		return 0, sr.fail(fmt.Errorf("%w: got %02x %02x", ErrSync, hdr[0], hdr[1]))
	}
	kind := hdr[2]
	size, err := binary.ReadUvarint(sr.r)
	if err != nil {
		return 0, sr.fail(fmt.Errorf("%w: section length: %v", ErrStateTruncated, err))
	}
	if size > MaxStateSection {
		return 0, sr.fail(fmt.Errorf("wire: snapshot section of %d bytes exceeds limit", size))
	}
	if cap(sr.payload) < int(size) {
		sr.payload = make([]byte, size)
	}
	sr.payload = sr.payload[:size]
	if _, err := io.ReadFull(sr.r, sr.payload); err != nil {
		return 0, sr.fail(fmt.Errorf("%w: section payload: %v", ErrStateTruncated, err))
	}
	var crc [4]byte
	if _, err := io.ReadFull(sr.r, crc[:]); err != nil {
		return 0, sr.fail(fmt.Errorf("%w: section CRC: %v", ErrStateTruncated, err))
	}
	want := binary.LittleEndian.Uint32(crc[:])
	if got := crc32.Checksum(sr.payload, castagnoli); got != want {
		return 0, sr.fail(fmt.Errorf("%w: got %08x want %08x", ErrCRC, got, want))
	}
	sr.pos = 0
	if kind == stateEnd {
		sr.err = io.EOF
		return 0, io.EOF
	}
	return kind, nil
}

// Err returns the sticky error, if any (io.EOF after a clean end marker).
func (sr *StateReader) Err() error {
	if sr.err == io.EOF {
		return nil
	}
	return sr.err
}

// Remaining returns the unconsumed bytes of the current section.
func (sr *StateReader) Remaining() int { return len(sr.payload) - sr.pos }

func (sr *StateReader) fail(err error) error {
	sr.err = err
	return err
}

// Uvarint consumes an unsigned varint from the current section.
func (sr *StateReader) Uvarint() uint64 {
	if sr.err != nil {
		return 0
	}
	v, n := binary.Uvarint(sr.payload[sr.pos:])
	if n <= 0 {
		sr.fail(fmt.Errorf("%w: bad uvarint in section", ErrStateTruncated))
		return 0
	}
	sr.pos += n
	return v
}

// Varint consumes a zigzag varint from the current section.
func (sr *StateReader) Varint() int64 {
	if sr.err != nil {
		return 0
	}
	v, n := binary.Varint(sr.payload[sr.pos:])
	if n <= 0 {
		sr.fail(fmt.Errorf("%w: bad varint in section", ErrStateTruncated))
		return 0
	}
	sr.pos += n
	return v
}

// Bool consumes a boolean.
func (sr *StateReader) Bool() bool { return sr.Uvarint() != 0 }

// Int consumes a varint bounded to the int range.
func (sr *StateReader) Int() int {
	v := sr.Varint()
	if sr.err == nil && int64(int(v)) != v {
		sr.fail(fmt.Errorf("wire: snapshot int %d overflows", v))
		return 0
	}
	return int(v)
}

// String consumes a length-prefixed string.
func (sr *StateReader) String() string {
	n := sr.Uvarint()
	if sr.err != nil {
		return ""
	}
	if int(n) > sr.Remaining() {
		sr.fail(fmt.Errorf("%w: string crosses section end", ErrStateTruncated))
		return ""
	}
	s := string(sr.payload[sr.pos : sr.pos+int(n)])
	sr.pos += int(n)
	return s
}

// Bytes consumes a length-prefixed byte string into a fresh slice.
func (sr *StateReader) Bytes() []byte {
	n := sr.Uvarint()
	if sr.err != nil {
		return nil
	}
	if int(n) > sr.Remaining() {
		sr.fail(fmt.Errorf("%w: bytes cross section end", ErrStateTruncated))
		return nil
	}
	b := make([]byte, n)
	copy(b, sr.payload[sr.pos:sr.pos+int(n)])
	sr.pos += int(n)
	return b
}
