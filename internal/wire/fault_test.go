package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/trace"
)

// faultTrace builds a trace whose interned strings (method + keys) all
// appear within the first few events, so dropping a later frame cannot
// shift the interning table — post-resync events must decode exactly.
func faultTrace(n int) *trace.Trace {
	tr := &trace.Trace{}
	tr.Append(trace.Fork(0, 1))
	for i := 0; i < n; i++ {
		tr.Append(trace.Act(1, trace.Action{Obj: 0, Method: "put",
			Args: []trace.Value{trace.StrValue(fmt.Sprintf("key-%d", i%7)), trace.IntValue(int64(i))},
			Rets: []trace.Value{trace.NilValue}}))
	}
	tr.Append(trace.Join(0, 1))
	return tr
}

// encodeFrames encodes tr as a plain v2 stream with small frames.
func encodeFrames(t *testing.T, tr *trace.Trace, frameSize int) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	enc.FrameSize = frameSize
	for i := range tr.Events {
		if err := enc.WriteEvent(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// frameOffsets walks a v2 stream structurally and returns the byte offset
// of each frame start (after the 5-byte header).
func frameOffsets(t *testing.T, data []byte) []int {
	t.Helper()
	var offs []int
	pos := len(Magic) + 1
	for pos < len(data) {
		offs = append(offs, pos)
		if data[pos] != sync0 || data[pos+1] != sync1 {
			t.Fatalf("no sync marker at offset %d", pos)
		}
		size, n := binary.Uvarint(data[pos+3:])
		if n <= 0 {
			t.Fatalf("bad frame length at offset %d", pos)
		}
		pos += 3 + n + int(size) + 4
	}
	return offs
}

func drain(d *Decoder) ([]trace.Event, error) {
	var events []trace.Event
	for {
		e, err := d.Next()
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return events, err
		}
		events = append(events, e)
	}
}

// TestResyncSkipsCorruptFrame corrupts one middle frame's payload. Strict
// decoding must fail on the CRC; resync decoding must lose exactly that
// frame's events and decode everything around it bit-exactly, with honest
// degradation counters.
func TestResyncSkipsCorruptFrame(t *testing.T) {
	tr := faultTrace(300)
	data := encodeFrames(t, tr, 64)
	offs := frameOffsets(t, data)
	if len(offs) < 6 {
		t.Fatalf("want many frames, got %d", len(offs))
	}
	// Flip a payload byte of a middle frame (past sync+kind+len).
	victim := len(offs) / 2
	corrupt := append([]byte(nil), data...)
	corrupt[offs[victim]+6] ^= 0x40

	if _, err := DecodeTrace(bytes.NewReader(corrupt)); !errors.Is(err, ErrCRC) {
		t.Fatalf("strict decode error = %v, want ErrCRC", err)
	}

	d, err := NewDecoder(bytes.NewReader(corrupt))
	if err != nil {
		t.Fatal(err)
	}
	d.SetResync(true)
	events, err := drain(d)
	if err != nil {
		t.Fatalf("resync decode failed: %v", err)
	}
	if !d.Clean() {
		t.Error("resync decode should still reach the end-of-stream frame")
	}
	if !d.Degraded() || d.SkippedFrames() < 1 || d.Resyncs() != 1 {
		t.Errorf("degradation counters: frames=%d bytes=%d resyncs=%d degraded=%v",
			d.SkippedFrames(), d.SkippedBytes(), d.Resyncs(), d.Degraded())
	}
	lost := len(tr.Events) - len(events)
	if lost <= 0 || lost > 16 {
		t.Fatalf("lost %d events, want one small frame's worth", lost)
	}
	// The surviving events must be the original sequence with one contiguous
	// gap: an untouched prefix, then the tail shifted by the lost count.
	m := 0
	for m < len(events) && events[m].String() == tr.Events[m].String() {
		m++
	}
	if m == len(events) {
		t.Fatal("no gap found despite lost events")
	}
	for i := m; i < len(events); i++ {
		if events[i].String() != tr.Events[i+lost].String() {
			t.Fatalf("post-gap event %d = %q, want %q (gap at %d, lost=%d)",
				i, events[i].String(), tr.Events[i+lost].String(), m, lost)
		}
	}
}

// TestResyncSkipsInjectedJunk splices junk at a frame boundary: the decoder
// must lose sync, scan past the junk, and carry on.
func TestResyncSkipsInjectedJunk(t *testing.T) {
	tr := faultTrace(100)
	data := encodeFrames(t, tr, 64)
	offs := frameOffsets(t, data)
	at := offs[len(offs)/2]
	junk := bytes.Repeat([]byte{0xAA, 0x00, 0x17}, 13)
	spliced := append(append(append([]byte(nil), data[:at]...), junk...), data[at:]...)

	d, err := NewDecoder(bytes.NewReader(spliced))
	if err != nil {
		t.Fatal(err)
	}
	d.SetResync(true)
	events, err := drain(d)
	if err != nil {
		t.Fatalf("resync decode failed: %v", err)
	}
	// Junk between frames destroys no frame: every event survives.
	if len(events) != len(tr.Events) {
		t.Fatalf("decoded %d events, want all %d", len(events), len(tr.Events))
	}
	// The first two junk bytes are consumed by the failing frame parse
	// (ErrSync); the scan discards the rest.
	if !d.Clean() || d.SkippedBytes() < int64(len(junk)-2) {
		t.Errorf("clean=%v skippedBytes=%d (junk was %d)", d.Clean(), d.SkippedBytes(), len(junk))
	}
}

// sessionChunks encodes tr in resumable mode with tiny chunks, returning
// the header+hello prefix, the serialized chunks, and the end frame.
func sessionChunks(t *testing.T, tr *trace.Trace, frameSize int) (prefix []byte, chunks [][]byte, end []byte) {
	t.Helper()
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	enc.FrameSize = frameSize
	if err := enc.SetSession("s-test"); err != nil {
		t.Fatal(err)
	}
	enc.OnFrame = func(seq uint64, frame []byte) error {
		if seq != uint64(len(chunks)) {
			t.Fatalf("OnFrame seq %d, want %d", seq, len(chunks))
		}
		chunks = append(chunks, append([]byte(nil), frame...))
		return nil
	}
	for i := range tr.Events {
		if err := enc.WriteEvent(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	var total int
	for _, c := range chunks {
		total += len(c)
	}
	prefix = append([]byte(nil), buf.Bytes()[:buf.Len()-total]...)
	var endBuf bytes.Buffer
	e2 := NewEncoder(&endBuf)
	end = append([]byte(nil), e2.serializeFrame(frameEnd, nil)...)
	return prefix, chunks, end
}

func concat(parts ...[]byte) []byte {
	var out []byte
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// TestSessionDedupAndAcks replays a chunk (as a resuming client would): the
// decoder must skip the duplicate, re-ack it, and count no event twice.
func TestSessionDedupAndAcks(t *testing.T) {
	tr := faultTrace(60)
	prefix, chunks, end := sessionChunks(t, tr, 64)
	if len(chunks) < 3 {
		t.Fatalf("want >= 3 chunks, got %d", len(chunks))
	}
	stream := concat(prefix, chunks[0], chunks[0]) // dup replay of chunk 0
	for _, c := range chunks[1:] {
		stream = append(stream, c...)
	}
	stream = append(stream, end...)

	d, err := NewDecoder(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	var acks []uint64
	d.OnChunk = func(acked uint64) { acks = append(acks, acked) }
	sid, err := d.ReadHello()
	if err != nil || sid != "s-test" {
		t.Fatalf("ReadHello = (%q, %v), want (s-test, nil)", sid, err)
	}
	events, err := drain(d)
	if err != nil {
		t.Fatalf("decode failed: %v", err)
	}
	if len(events) != len(tr.Events) {
		t.Fatalf("decoded %d events, want %d (dups must not double-count)", len(events), len(tr.Events))
	}
	if d.DupChunks() != 1 || d.Degraded() {
		t.Errorf("dups=%d degraded=%v, want 1/false (dedup is protocol-normal)", d.DupChunks(), d.Degraded())
	}
	if len(acks) != len(chunks)+1 || acks[0] != 0 || acks[1] != 0 {
		t.Errorf("acks = %v, want 0 (accept), 0 (dup re-ack), then 1..%d", acks, len(chunks)-1)
	}
	if got, ok := d.AckedChunk(); !ok || got != uint64(len(chunks)-1) {
		t.Errorf("AckedChunk = (%d, %v)", got, ok)
	}
}

// TestChunkGap: a missing chunk is a protocol error on a healthy stream and
// an honestly counted loss under resync.
func TestChunkGap(t *testing.T) {
	tr := faultTrace(60)
	prefix, chunks, end := sessionChunks(t, tr, 64)
	stream := concat(prefix, chunks[0]) // chunk 1 lost
	for _, c := range chunks[2:] {
		stream = append(stream, c...)
	}
	stream = append(stream, end...)

	d, err := NewDecoder(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := drain(d); !errors.Is(err, ErrChunkGap) {
		t.Fatalf("strict gap error = %v, want ErrChunkGap", err)
	}

	d2, err := NewDecoder(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	d2.SetResync(true)
	events, err := drain(d2)
	if err != nil {
		t.Fatalf("resync decode failed: %v", err)
	}
	if len(events) >= len(tr.Events) || len(events) == 0 {
		t.Fatalf("decoded %d events, want some but not all of %d", len(events), len(tr.Events))
	}
	if !d2.Degraded() || d2.SkippedFrames() < 1 {
		t.Errorf("gap not counted: degraded=%v skippedFrames=%d", d2.Degraded(), d2.SkippedFrames())
	}
}

// TestAdoptStateResumesAcrossConnections simulates the daemon's resume
// path: connection 1 dies mid-stream, connection 2 replays the unacked
// chunk and carries on. The adopted decoder must dedup the replay, keep the
// interning table, and reassemble the exact original event sequence.
func TestAdoptStateResumesAcrossConnections(t *testing.T) {
	tr := faultTrace(90)
	prefix, chunks, end := sessionChunks(t, tr, 64)
	if len(chunks) < 4 {
		t.Fatalf("want >= 4 chunks, got %d", len(chunks))
	}

	// Connection 1 delivers chunks 0..1 then dies (no end frame).
	conn1 := concat(prefix, chunks[0], chunks[1])
	d1, err := NewDecoder(bytes.NewReader(conn1))
	if err != nil {
		t.Fatal(err)
	}
	if sid, err := d1.ReadHello(); err != nil || sid != "s-test" {
		t.Fatalf("conn1 ReadHello = (%q, %v)", sid, err)
	}
	events1, err := drain(d1)
	if err != nil {
		t.Fatalf("conn1 decode = %v, want frame-aligned EOF", err)
	}
	if d1.Clean() {
		t.Fatal("conn1 must end unclean (no end frame)")
	}
	if acked, ok := d1.AckedChunk(); !ok || acked != 1 {
		t.Fatalf("conn1 AckedChunk = (%d, %v), want (1, true)", acked, ok)
	}

	// Connection 2: the client never saw an ack for chunk 1, so it replays
	// it, then sends the rest and the end frame.
	conn2 := concat(prefix, chunks[1])
	for _, c := range chunks[2:] {
		conn2 = append(conn2, c...)
	}
	conn2 = append(conn2, end...)
	d2, err := NewDecoder(bytes.NewReader(conn2))
	if err != nil {
		t.Fatal(err)
	}
	if sid, err := d2.ReadHello(); err != nil || sid != "s-test" {
		t.Fatalf("conn2 ReadHello = (%q, %v)", sid, err)
	}
	d2.AdoptState(d1)
	events2, err := drain(d2)
	if err != nil {
		t.Fatalf("conn2 decode failed: %v", err)
	}
	if !d2.Clean() || d2.Degraded() {
		t.Errorf("conn2 clean=%v degraded=%v, want true/false", d2.Clean(), d2.Degraded())
	}
	if d2.DupChunks() != 1 {
		t.Errorf("conn2 dups = %d, want 1 (the replayed chunk)", d2.DupChunks())
	}
	all := append(events1, events2...)
	if len(all) != len(tr.Events) {
		t.Fatalf("reassembled %d events, want %d", len(all), len(tr.Events))
	}
	for i := range all {
		if all[i].String() != tr.Events[i].String() {
			t.Fatalf("event %d = %q, want %q", i, all[i].String(), tr.Events[i].String())
		}
	}
}

// TestResumableClientSurvivesSeveredConn runs the full client resume loop
// against an in-test server that hard-closes the first connection after one
// chunk, then serves the resumed connection to completion.
func TestResumableClientSurvivesSeveredConn(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	tr := faultTrace(200)
	serverErr := make(chan error, 1)
	go func() {
		serverErr <- func() error {
			// Connection 1: accept one chunk's worth of events, then sever.
			conn, err := ln.Accept()
			if err != nil {
				return err
			}
			d1, err := NewDecoder(conn)
			if err != nil {
				return err
			}
			if _, err := d1.ReadHello(); err != nil {
				return err
			}
			for i := 0; i < 5; i++ {
				if _, err := d1.Next(); err != nil {
					return fmt.Errorf("conn1 event %d: %v", i, err)
				}
			}
			conn.Close()

			// Connection 2: adopt, ack, drain to the clean end, summarize.
			conn2, err := ln.Accept()
			if err != nil {
				return err
			}
			defer conn2.Close()
			d2, err := NewDecoder(conn2)
			if err != nil {
				return err
			}
			if _, err := d2.ReadHello(); err != nil {
				return err
			}
			d2.AdoptState(d1)
			d2.OnChunk = func(acked uint64) { fmt.Fprintf(conn2, "{\"ack\":%d}\n", acked) }
			if _, err := drain(d2); err != nil {
				return fmt.Errorf("conn2 drain: %v", err)
			}
			if !d2.Clean() {
				return fmt.Errorf("conn2 stream did not end cleanly")
			}
			_, err = fmt.Fprintf(conn2, "{\"events\":%d,\"races\":0,\"clean\":true,\"resumes\":1}\n", d2.Events())
			return err
		}()
	}()

	c, err := DialSession(ln.Addr().String(), "s-e2e", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Backoff = time.Millisecond
	for i := range tr.Events {
		if err := c.WriteEvent(&tr.Events[i]); err != nil {
			t.Fatalf("WriteEvent %d: %v", i, err)
		}
		if (i+1)%5 == 0 { // exactly one chunk per 5 events
			if err := c.Flush(); err != nil {
				t.Fatalf("Flush at %d: %v", i, err)
			}
		}
	}
	sum, err := c.Close(10 * time.Second)
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := <-serverErr; err != nil {
		t.Fatalf("server: %v", err)
	}
	if sum.Events != len(tr.Events) || !sum.Clean {
		t.Fatalf("summary = %+v, want %d events clean (no loss, no duplication)", sum, len(tr.Events))
	}
	if c.Resumes() < 1 {
		t.Fatalf("resumes = %d, want >= 1", c.Resumes())
	}
}
