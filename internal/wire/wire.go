// Package wire implements the RDB2 streaming binary trace format: a
// compact, framed, CRC-protected encoding of internal/trace events designed
// for online ingestion (cmd/rd2d) and for on-disk binary traces (.rdb).
//
// # Stream layout (DESIGN.md §8)
//
//	stream  := magic version frame*
//	magic   := "RDB2"                        (4 bytes)
//	version := 0x01                          (1 byte)
//	frame   := kind len payload crc
//	kind    := 0x01 events | 0x02 end-of-stream (1 byte)
//	len     := uvarint                       (payload length in bytes)
//	payload := event*                        (empty for end-of-stream)
//	crc     := CRC-32C of payload            (4 bytes little-endian)
//
// Events are varint records; all ids (threads, objects, locks, vars,
// channels) are unsigned varints, integer values are zigzag varints, and
// strings (method names, string values) go through a per-stream interning
// table so each distinct string is transmitted once:
//
//	event      := kind:u8 body
//	fork|join  := tid other
//	acq|rel    := tid lock
//	read|write := tid var
//	send|recv  := tid chan
//	begin|end  := tid
//	die        := tid obj
//	act        := tid obj method:str nargs val* nrets val*
//	val        := 0x00            (nil)
//	            | 0x01 zigzag     (int)
//	            | 0x02 str        (string)
//	            | 0x03 u8         (bool)
//	str        := ref             (ref > 0: interned string #ref)
//	            | 0x00 len byte*  (ref = 0: new string, assigned the next id)
//
// Sequence numbers are not transmitted: the decoder assigns them in stream
// order, exactly like trace.Trace.Append. Vector clocks are never encoded
// (they are an analysis artifact, recomputed by the happens-before engine
// on the receiving side).
//
// The Decoder is a trace.Source: it yields one event per Next call and
// holds at most one frame (≤ MaxFrame bytes) plus the interning table in
// memory, so arbitrarily long traces stream in bounded space. It returns
// errors — never panics — on truncated, corrupt, or adversarial input
// (FuzzWireRoundTrip keeps it honest).
//
// An explicit end-of-stream frame distinguishes a clean end from a
// truncated stream: Decoder.Clean reports whether one was seen. The
// Encoder writes it from Close; a stream that merely stops at a frame
// boundary still decodes fully but reports Clean() == false.
package wire

import "errors"

// Magic is the 4-byte stream header identifying the RDB2 binary format.
const Magic = "RDB2"

// Version is the wire format version written and accepted.
const Version = 1

// Frame kinds.
const (
	frameEvents byte = 0x01
	frameEnd    byte = 0x02
)

// Value kind tags (mirror trace.Kind but are an independent wire contract).
const (
	wireNil  byte = 0x00
	wireInt  byte = 0x01
	wireStr  byte = 0x02
	wireBool byte = 0x03
)

// Limits bounding decoder memory against corrupt or hostile streams.
const (
	// MaxFrame is the largest accepted frame payload. The encoder flushes
	// frames well below this (DefaultFrameSize).
	MaxFrame = 1 << 24
	// MaxString is the largest accepted interned string.
	MaxString = 1 << 20
	// MaxStrings caps the interning table size.
	MaxStrings = 1 << 20
	// MaxTuple caps the argument/return tuple length of one action.
	MaxTuple = 1 << 16
)

// DefaultFrameSize is the payload size at which the encoder emits a frame.
const DefaultFrameSize = 16 * 1024

// ErrCRC is returned (wrapped) when a frame fails its checksum.
var ErrCRC = errors.New("wire: frame CRC mismatch")

// ErrTruncated is returned (wrapped) when the stream ends inside a frame.
var ErrTruncated = errors.New("wire: truncated stream")

// SniffLen is the number of bytes needed to recognize the format (Sniff).
const SniffLen = len(Magic)

// Sniff reports whether the prefix bytes identify an RDB2 binary stream.
func Sniff(prefix []byte) bool {
	return len(prefix) >= len(Magic) && string(prefix[:len(Magic)]) == Magic
}
