// Package wire implements the RDB2 streaming binary trace format: a
// compact, framed, CRC-protected encoding of internal/trace events designed
// for online ingestion (cmd/rd2d) and for on-disk binary traces (.rdb).
//
// # Stream layout (DESIGN.md §8, §9)
//
//	stream  := magic version frame*
//	magic   := "RDB2"                        (4 bytes)
//	version := 0x01 | 0x02 | 0x03            (1 byte)
//	frame   := sync kind len payload crc     (sync only in version >= 2)
//	sync    := 0xE5 0x4D                     (per-frame resync marker)
//	kind    := 0x01 events | 0x02 end-of-stream
//	         | 0x03 hello  | 0x04 seq'd events (version >= 2 only)
//	len     := uvarint                       (payload length in bytes)
//	payload := event*                        (empty for end-of-stream)
//	crc     := CRC-32C of payload            (4 bytes little-endian)
//
// Version 2 (version 1 streams are still read) prefixes every frame with a
// two-byte sync marker and adds two frame kinds in support of fault
// tolerance:
//
//	hello   := sidlen:uvarint sid:bytes      (client-chosen session id)
//	          [tidlen:uvarint tid:bytes]     (tenant id, version 3 only)
//	seq'd   := seq:uvarint event*            (chunk sequence number)
//
// A hello frame, sent immediately after the stream header, opens a
// resumable session: every events frame then carries a chunk sequence
// number, the daemon acknowledges chunks with JSON lines ({"ack":N}) on
// the return path, and a client that loses its connection can redial,
// replay the header + hello + its unacknowledged chunks, and continue —
// the receiver skips chunks whose sequence number it has already consumed,
// so no event is duplicated or lost (ResumableClient implements the client
// side, with exponential backoff + jitter).
//
// Version 3 (written by this package) extends the hello payload with an
// optional trailing tenant id for multi-tenant admission and quotas
// (cmd/rd2d -fleet): a version 3 hello may carry a tenant id after the
// session id, and — uniquely in version 3 — an empty session id (sidlen 0)
// is permitted when a tenant id follows, declaring the tenant of a plain
// non-resumable stream. A daemon that refuses a new session (admission
// control: session table full, global ingest budget exhausted, or tenant
// quota exceeded) answers with its usual one-line JSON summary carrying
// "busy":true and closes; clients surface that as ErrBusy, a retryable
// condition distinct from every transport failure.
//
// Events are varint records; all ids (threads, objects, locks, vars,
// channels) are unsigned varints, integer values are zigzag varints, and
// strings (method names, string values) go through a per-stream interning
// table so each distinct string is transmitted once:
//
//	event      := kind:u8 body
//	fork|join  := tid other
//	acq|rel    := tid lock
//	read|write := tid var
//	send|recv  := tid chan
//	begin|end  := tid
//	die        := tid obj
//	act        := tid obj method:str nargs val* nrets val*
//	val        := 0x00            (nil)
//	            | 0x01 zigzag     (int)
//	            | 0x02 str        (string)
//	            | 0x03 u8         (bool)
//	str        := ref             (ref > 0: interned string #ref)
//	            | 0x00 len byte*  (ref = 0: new string, assigned the next id)
//
// Sequence numbers are not transmitted: the decoder assigns them in stream
// order, exactly like trace.Trace.Append. Vector clocks are never encoded
// (they are an analysis artifact, recomputed by the happens-before engine
// on the receiving side).
//
// The Decoder is a trace.Source: it yields one event per Next call and
// holds at most one frame (≤ MaxFrame bytes) plus the interning table in
// memory, so arbitrarily long traces stream in bounded space. It returns
// errors — never panics — on truncated, corrupt, or adversarial input
// (FuzzWireRoundTrip keeps it honest).
//
// # Corruption resync
//
// By default a corrupt frame (CRC mismatch, lost sync, unparseable header)
// is a fatal decode error. With SetResync(true) the decoder instead scans
// forward for the next sync marker that starts a CRC-valid frame and
// continues from there; the bytes skipped and frames dropped are counted
// (SkippedBytes, SkippedFrames) and reported through internal/obs, and
// Degraded() reports that the decoded event stream is incomplete. A
// candidate frame is accepted during the scan only after its checksum has
// been verified in the decoder's lookahead window (ResyncWindow), so a
// false sync marker inside corrupt data can never desynchronize the
// decoder further; valid frames larger than the window are skipped rather
// than trusted. Resync requires a version 2 stream (version 1 frames have
// no sync marker).
//
// An explicit end-of-stream frame distinguishes a clean end from a
// truncated stream: Decoder.Clean reports whether one was seen. The
// Encoder writes it from Close; a stream that merely stops at a frame
// boundary still decodes fully but reports Clean() == false.
package wire

import (
	"errors"

	"repro/internal/obs"
)

// Magic is the 4-byte stream header identifying the RDB2 binary format.
const Magic = "RDB2"

// Version is the wire format version written. The decoder accepts every
// version from MinVersion (no per-frame sync marker, no resumable
// sessions) through Version; version 2 streams differ from version 3 only
// in that their hello frames cannot carry a tenant id.
const (
	Version    = 3
	MinVersion = 1
)

// Per-frame sync marker bytes (version 2): every frame header starts with
// these, giving the corruption resync scan an anchor to search for.
const (
	sync0 byte = 0xE5
	sync1 byte = 0x4D
)

// Frame kinds.
const (
	frameEvents    byte = 0x01
	frameEnd       byte = 0x02
	frameHello     byte = 0x03 // resumable session id (version 2)
	frameEventsSeq byte = 0x04 // events with a chunk sequence number (version 2)
)

// Value kind tags (mirror trace.Kind but are an independent wire contract).
const (
	wireNil  byte = 0x00
	wireInt  byte = 0x01
	wireStr  byte = 0x02
	wireBool byte = 0x03
)

// Limits bounding decoder memory against corrupt or hostile streams.
const (
	// MaxFrame is the largest accepted frame payload. The encoder flushes
	// frames well below this (DefaultFrameSize).
	MaxFrame = 1 << 24
	// MaxString is the largest accepted interned string.
	MaxString = 1 << 20
	// MaxStrings caps the interning table size.
	MaxStrings = 1 << 20
	// MaxTuple caps the argument/return tuple length of one action.
	MaxTuple = 1 << 16
	// MaxSessionID caps the hello frame's session id length.
	MaxSessionID = 256
	// MaxTenantID caps the hello frame's tenant id length (version 3).
	MaxTenantID = 64
)

// DefaultFrameSize is the payload size at which the encoder emits a frame.
const DefaultFrameSize = 16 * 1024

// ResyncWindow is the decoder's lookahead during corruption resync: a
// candidate frame is accepted only if it fits the window and its CRC
// verifies there. Larger valid frames inside corrupt regions are skipped
// (counted, reported) rather than trusted.
const ResyncWindow = 128 * 1024

// ErrCRC is returned (wrapped) when a frame fails its checksum.
var ErrCRC = errors.New("wire: frame CRC mismatch")

// ErrTruncated is returned (wrapped) when the stream ends inside a frame.
var ErrTruncated = errors.New("wire: truncated stream")

// ErrSync is returned (wrapped) when a version 2 frame does not start with
// the sync marker (stream corruption), in strict (non-resync) mode.
var ErrSync = errors.New("wire: lost frame sync")

// ErrChunkGap is returned when a seq'd events frame skips ahead of the next
// expected chunk (a resuming client replayed too little), in strict mode.
var ErrChunkGap = errors.New("wire: chunk sequence gap")

// ErrBusy is returned (wrapped) by the clients when the daemon refused the
// session at admission — session table full, global ingest budget
// exhausted, or a tenant quota exceeded (Summary.Busy on the wire). The
// condition is retryable: the stream was never ingested, so resending the
// whole trace after a backoff is safe.
var ErrBusy = errors.New("wire: daemon busy, session rejected at admission")

// wireObs bundles the resync metrics: bytes skipped scanning for a sync
// marker, whole frames dropped (undecodable but CRC-valid, or lost in a
// chunk-sequence gap), and resync scans entered. Duplicate chunks skipped
// during a session resume are counted separately — they are
// protocol-normal, not corruption. Decoders record into the process-global
// set until SetObs points them at a scope (an rd2d session registry).
type wireObs struct {
	skippedBytes  *obs.Counter
	skippedFrames *obs.Counter
	resyncs       *obs.Counter
	dupChunks     *obs.Counter
}

func newWireObs(reg *obs.Registry) *wireObs {
	if reg == nil {
		reg = obs.Default
	}
	return &wireObs{
		skippedBytes:  reg.Counter("wire.resync_skipped_bytes"),
		skippedFrames: reg.Counter("wire.resync_skipped_frames"),
		resyncs:       reg.Counter("wire.resyncs"),
		dupChunks:     reg.Counter("wire.dup_chunks"),
	}
}

// defaultWireObs is the process-global instrument set, shared by every
// decoder not pointed at a scope via SetObs.
var defaultWireObs = newWireObs(nil)

// SniffLen is the number of bytes needed to recognize the format (Sniff).
const SniffLen = len(Magic)

// Sniff reports whether the prefix bytes identify an RDB2 binary stream.
func Sniff(prefix []byte) bool {
	return len(prefix) >= len(Magic) && string(prefix[:len(Magic)]) == Magic
}
