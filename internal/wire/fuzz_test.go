package wire

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/trace"
)

// encodeMultiFrame builds a small-frame stream of n action events for the
// corruption seeds.
func encodeMultiFrame(f *testing.F, n int) []byte {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	enc.FrameSize = 64
	for i := 0; i < n; i++ {
		e := trace.Act(1, trace.Action{Obj: 0, Method: "put",
			Args: []trace.Value{trace.IntValue(int64(i))},
			Rets: []trace.Value{trace.NilValue}})
		if err := enc.WriteEvent(&e); err != nil {
			f.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzWireRoundTrip feeds arbitrary bytes to the decoder. The decoder must
// return an error for malformed input — never panic, never allocate
// unboundedly — and any prefix that happens to decode must round-trip
// byte-identically through encode.
func FuzzWireRoundTrip(f *testing.F) {
	// Seed with valid encodings of real traces plus interesting corruptions.
	var buf bytes.Buffer
	tr := &trace.Trace{}
	tr.Append(trace.Fork(0, 1))
	tr.Append(trace.Act(1, trace.Action{Obj: 0, Method: "put",
		Args: []trace.Value{trace.StrValue("k"), trace.IntValue(1)},
		Rets: []trace.Value{trace.NilValue}}))
	tr.Append(trace.Join(0, 1))
	if err := EncodeTrace(&buf, tr); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte(Magic))
	f.Add([]byte{'R', 'D', 'B', '2', 1})
	f.Add([]byte{'R', 'D', 'B', '2', 1, 0x01, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{})
	f.Add([]byte("t0 fork t1\n"))
	corrupt := append([]byte(nil), valid...)
	if len(corrupt) > 12 {
		corrupt[12] ^= 0x40
	}
	f.Add(corrupt)
	// The fault injector's corruption family: bad CRCs (bit flips), zeroed
	// sync markers, truncated end-of-stream, junk splices, and a lying
	// length field — seeded past the 5-byte header so every variant reaches
	// frame decoding.
	for _, v := range faultinject.CorruptStream(valid, 1, len(Magic)+1) {
		f.Add(v.Data)
	}
	// A longer multi-frame stream corrupted the same ways (exercises the
	// resync scan across frame boundaries).
	long := encodeMultiFrame(f, 50)
	f.Add(long)
	for _, v := range faultinject.CorruptStream(long, 2, len(Magic)+1) {
		f.Add(v.Data)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Resync mode first: must never panic, never loop forever, and stay
		// within the decoded-event bound whatever the input.
		if rd, err := NewDecoder(bytes.NewReader(data)); err == nil {
			rd.SetResync(true)
			for n := 0; ; n++ {
				if _, err := rd.Next(); err != nil {
					break
				}
				if n > 1<<16 {
					t.Skip("unrealistically long decoded stream")
				}
			}
		}

		d, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			return // malformed header: fine, as long as we didn't panic
		}
		var events []trace.Event
		for {
			e, err := d.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return // malformed stream: fine
			}
			events = append(events, e)
			if len(events) > 1<<16 {
				t.Skip("unrealistically long decoded stream")
			}
		}
		// Everything decoded: re-encoding and re-decoding must agree.
		var out bytes.Buffer
		enc := NewEncoder(&out)
		for i := range events {
			if err := enc.WriteEvent(&events[i]); err != nil {
				t.Fatalf("re-encode of decoded event failed: %v", err)
			}
		}
		if err := enc.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeTrace(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(got.Events) != len(events) {
			t.Fatalf("re-decode has %d events, want %d", len(got.Events), len(events))
		}
		for i := range events {
			if events[i].String() != got.Events[i].String() {
				t.Fatalf("event %d differs: %q vs %q", i,
					events[i].String(), got.Events[i].String())
			}
		}
	})
}
