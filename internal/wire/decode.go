package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// Decoder streams events out of an RDB2 binary stream. It implements
// trace.Source: Next yields one event at a time and returns io.EOF after
// the end-of-stream frame (or a clean underlying EOF at a frame boundary).
// Memory is bounded by one frame plus the interning table; the whole trace
// is never materialized. All failure modes — truncation, CRC mismatch,
// unknown tags, over-limit lengths — surface as errors, never panics.
type Decoder struct {
	r      *bufio.Reader
	frame  []byte   // current frame payload
	pos    int      // read position within frame
	intern []string // 1-based string table (index id-1)
	seq    int
	frames int
	clean  bool // end-of-stream frame seen
	err    error
}

// NewDecoder reads and verifies the stream header and returns a streaming
// decoder for the events that follow.
func NewDecoder(r io.Reader) (*Decoder, error) {
	d := &Decoder{r: bufio.NewReader(r)}
	var hdr [len(Magic) + 1]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrTruncated, err)
	}
	if !Sniff(hdr[:len(Magic)]) {
		return nil, fmt.Errorf("wire: bad magic %q (not an RDB2 stream)", hdr[:len(Magic)])
	}
	if v := hdr[len(Magic)]; v != Version {
		return nil, fmt.Errorf("wire: unsupported version %d (want %d)", v, Version)
	}
	return d, nil
}

// Clean reports whether an explicit end-of-stream frame terminated the
// stream (false while decoding, and after a bare EOF at a frame boundary).
func (d *Decoder) Clean() bool { return d.clean }

// Events returns the number of events decoded so far.
func (d *Decoder) Events() int { return d.seq }

// Frames returns the number of frames read so far (including the
// end-of-stream frame).
func (d *Decoder) Frames() int { return d.frames }

// fail records and returns a sticky error.
func (d *Decoder) fail(err error) error {
	d.err = err
	return err
}

// nextFrame loads the next events frame into d.frame. It returns io.EOF on
// an end-of-stream frame or a clean EOF at a frame boundary.
func (d *Decoder) nextFrame() error {
	for {
		kind, err := d.r.ReadByte()
		if err == io.EOF {
			return d.fail(io.EOF) // no end frame, but a frame-aligned end
		}
		if err != nil {
			return d.fail(err)
		}
		size, err := binary.ReadUvarint(d.r)
		if err != nil {
			return d.fail(fmt.Errorf("%w: frame length: %v", ErrTruncated, err))
		}
		if size > MaxFrame {
			return d.fail(fmt.Errorf("wire: frame of %d bytes exceeds MaxFrame", size))
		}
		if cap(d.frame) < int(size) {
			d.frame = make([]byte, size)
		}
		d.frame = d.frame[:size]
		if _, err := io.ReadFull(d.r, d.frame); err != nil {
			return d.fail(fmt.Errorf("%w: frame payload: %v", ErrTruncated, err))
		}
		var crc [4]byte
		if _, err := io.ReadFull(d.r, crc[:]); err != nil {
			return d.fail(fmt.Errorf("%w: frame CRC: %v", ErrTruncated, err))
		}
		want := binary.LittleEndian.Uint32(crc[:])
		if got := crc32.Checksum(d.frame, castagnoli); got != want {
			return d.fail(fmt.Errorf("%w: got %08x want %08x", ErrCRC, got, want))
		}
		d.frames++
		switch kind {
		case frameEnd:
			d.clean = true
			return d.fail(io.EOF)
		case frameEvents:
			if len(d.frame) == 0 {
				continue // empty frame: keep scanning
			}
			d.pos = 0
			return nil
		default:
			return d.fail(fmt.Errorf("wire: unknown frame kind 0x%02x", kind))
		}
	}
}

func (d *Decoder) remaining() int { return len(d.frame) - d.pos }

func (d *Decoder) readByte() (byte, error) {
	if d.remaining() < 1 {
		return 0, fmt.Errorf("%w: event record crosses frame end", ErrTruncated)
	}
	b := d.frame[d.pos]
	d.pos++
	return b, nil
}

func (d *Decoder) readUvarint() (uint64, error) {
	v, n := binary.Uvarint(d.frame[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint in frame", ErrTruncated)
	}
	d.pos += n
	return v, nil
}

func (d *Decoder) readVarint() (int64, error) {
	v, n := binary.Varint(d.frame[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint in frame", ErrTruncated)
	}
	d.pos += n
	return v, nil
}

// readID decodes a non-negative id bounded to the int range.
func (d *Decoder) readID() (int, error) {
	v, err := d.readUvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(int(^uint(0)>>1)) {
		return 0, fmt.Errorf("wire: id %d overflows int", v)
	}
	return int(v), nil
}

// readString decodes an interned string reference or a new table entry.
func (d *Decoder) readString() (string, error) {
	ref, err := d.readUvarint()
	if err != nil {
		return "", err
	}
	if ref > 0 {
		if ref > uint64(len(d.intern)) {
			return "", fmt.Errorf("wire: string ref %d out of range (table has %d)", ref, len(d.intern))
		}
		return d.intern[ref-1], nil
	}
	n, err := d.readUvarint()
	if err != nil {
		return "", err
	}
	if n > MaxString {
		return "", fmt.Errorf("wire: string of %d bytes exceeds MaxString", n)
	}
	if int(n) > d.remaining() {
		return "", fmt.Errorf("%w: string crosses frame end", ErrTruncated)
	}
	if len(d.intern) >= MaxStrings {
		return "", fmt.Errorf("wire: interning table full (%d strings)", MaxStrings)
	}
	s := string(d.frame[d.pos : d.pos+int(n)])
	d.pos += int(n)
	d.intern = append(d.intern, s)
	return s, nil
}

func (d *Decoder) readValue() (trace.Value, error) {
	tag, err := d.readByte()
	if err != nil {
		return trace.Value{}, err
	}
	switch tag {
	case wireNil:
		return trace.NilValue, nil
	case wireInt:
		v, err := d.readVarint()
		if err != nil {
			return trace.Value{}, err
		}
		return trace.IntValue(v), nil
	case wireStr:
		s, err := d.readString()
		if err != nil {
			return trace.Value{}, err
		}
		return trace.StrValue(s), nil
	case wireBool:
		b, err := d.readByte()
		if err != nil {
			return trace.Value{}, err
		}
		if b > 1 {
			return trace.Value{}, fmt.Errorf("wire: bad bool byte 0x%02x", b)
		}
		return trace.BoolValue(b == 1), nil
	default:
		return trace.Value{}, fmt.Errorf("wire: unknown value tag 0x%02x", tag)
	}
}

func (d *Decoder) readTuple() ([]trace.Value, error) {
	n, err := d.readUvarint()
	if err != nil {
		return nil, err
	}
	if n > MaxTuple {
		return nil, fmt.Errorf("wire: tuple of %d values exceeds MaxTuple", n)
	}
	if n == 0 {
		return nil, nil
	}
	// A value takes at least one payload byte: bound the allocation by what
	// the frame can actually hold before trusting the declared count.
	if int(n) > d.remaining() {
		return nil, fmt.Errorf("%w: tuple crosses frame end", ErrTruncated)
	}
	out := make([]trace.Value, 0, n)
	for i := uint64(0); i < n; i++ {
		v, err := d.readValue()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// Next decodes the next event. It returns io.EOF at the end of the stream;
// any other error is sticky.
func (d *Decoder) Next() (trace.Event, error) {
	if d.err != nil {
		return trace.Event{}, d.err
	}
	if d.remaining() == 0 {
		if err := d.nextFrame(); err != nil {
			return trace.Event{}, err
		}
	}
	e, err := d.decodeEvent()
	if err != nil {
		return trace.Event{}, d.fail(err)
	}
	e.Seq = d.seq
	d.seq++
	return e, nil
}

func (d *Decoder) decodeEvent() (trace.Event, error) {
	kb, err := d.readByte()
	if err != nil {
		return trace.Event{}, err
	}
	kind := trace.EventKind(kb)
	tid, err := d.readID()
	if err != nil {
		return trace.Event{}, err
	}
	e := trace.Event{Kind: kind, Thread: vclock.Tid(tid)}
	switch kind {
	case trace.ForkEvent, trace.JoinEvent:
		id, err := d.readID()
		if err != nil {
			return trace.Event{}, err
		}
		e.Other = vclock.Tid(id)
	case trace.AcquireEvent, trace.ReleaseEvent:
		id, err := d.readID()
		if err != nil {
			return trace.Event{}, err
		}
		e.Lock = trace.LockID(id)
	case trace.ReadEvent, trace.WriteEvent:
		id, err := d.readID()
		if err != nil {
			return trace.Event{}, err
		}
		e.Var = trace.VarID(id)
	case trace.SendEvent, trace.RecvEvent:
		id, err := d.readID()
		if err != nil {
			return trace.Event{}, err
		}
		e.Chan = trace.ChanID(id)
	case trace.BeginEvent, trace.EndEvent:
	case trace.DieEvent:
		id, err := d.readID()
		if err != nil {
			return trace.Event{}, err
		}
		e.Act.Obj = trace.ObjID(id)
	case trace.ActionEvent:
		id, err := d.readID()
		if err != nil {
			return trace.Event{}, err
		}
		e.Act.Obj = trace.ObjID(id)
		if e.Act.Method, err = d.readString(); err != nil {
			return trace.Event{}, err
		}
		if e.Act.Args, err = d.readTuple(); err != nil {
			return trace.Event{}, err
		}
		if e.Act.Rets, err = d.readTuple(); err != nil {
			return trace.Event{}, err
		}
	default:
		return trace.Event{}, fmt.Errorf("wire: unknown event kind 0x%02x", kb)
	}
	return e, nil
}

// DecodeTrace drains an RDB2 stream into an in-memory trace.
func DecodeTrace(r io.Reader) (*trace.Trace, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return nil, err
	}
	return trace.ReadAll(d)
}

// NewSource sniffs the input and returns a streaming event source: a wire
// Decoder when the RDB2 magic is present, a text TextSource otherwise.
// This is the auto-detection used by rd2, rd2bench, and rd2d tooling to
// accept .rdb binary traces and text traces interchangeably.
func NewSource(r io.Reader) (trace.Source, error) {
	br := bufio.NewReader(r)
	prefix, err := br.Peek(SniffLen)
	if err != nil && len(prefix) < SniffLen {
		// Too short to be a wire stream; let the text parser handle it
		// (an empty input is a valid empty text trace).
		return trace.NewTextSource(br), nil
	}
	if Sniff(prefix) {
		return NewDecoder(br)
	}
	return trace.NewTextSource(br), nil
}

// ParseAny decodes a whole trace with format auto-detection (see
// NewSource).
func ParseAny(r io.Reader) (*trace.Trace, error) {
	src, err := NewSource(r)
	if err != nil {
		return nil, err
	}
	return trace.ReadAll(src)
}
