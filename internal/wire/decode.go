package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// errCorrupt classifies decode failures that corruption resync can recover
// from (vs. IO-level truncation, which only more bytes could fix).
var errCorrupt = errors.New("wire: corrupt frame")

// errAgain is an internal sentinel: readFrame consumed a non-event frame
// (hello, empty, duplicate chunk) or entered a resync scan; call it again.
var errAgain = errors.New("wire: internal again")

// Decoder streams events out of an RDB2 binary stream. It implements
// trace.Source: Next yields one event at a time and returns io.EOF after
// the end-of-stream frame (or a clean underlying EOF at a frame boundary).
// Memory is bounded by one frame plus the interning table; the whole trace
// is never materialized. All failure modes — truncation, CRC mismatch,
// unknown tags, over-limit lengths — surface as errors, never panics.
//
// With SetResync(true), corrupt frames are skipped instead (see the
// package comment); with a resuming client on the other end, seq'd chunks
// are deduplicated and acknowledged through OnChunk.
type Decoder struct {
	r       *bufio.Reader
	ob      *wireObs
	version byte
	frame   []byte   // current frame payload
	pos     int      // read position within frame
	intern  []string // 1-based string table (index id-1)
	seq     int
	frames  int
	clean   bool // end-of-stream frame seen
	err     error

	// Corruption resync state.
	resync        bool
	scanning      bool
	skippedBytes  int64
	skippedFrames int
	resyncs       int

	// Resumable session state.
	sid         string
	tenant      string
	expectChunk uint64 // next expected chunk sequence number
	seenChunk   bool   // at least one seq'd chunk accepted
	dups        int

	// OnChunk, when set, is invoked with the highest contiguous chunk
	// sequence number accepted so far, each time a seq'd events frame is
	// accepted or a duplicate is skipped — the daemon's ack hook. Called
	// from within Next.
	OnChunk func(acked uint64)

	// OnFrameAccepted, when set, is invoked with each events frame's kind
	// and payload after the frame passes its CRC and before it is
	// dispatched — in particular before a seq'd chunk is deduplicated or
	// acknowledged through OnChunk. A WAL hook that appends the frame here
	// therefore makes every acknowledged chunk durable first; duplicates
	// are logged too, and replay drops them exactly as the live stream
	// did. The payload slice is only valid for the duration of the call.
	// A non-nil error fails the decode (sticky, no resync).
	OnFrameAccepted func(kind byte, payload []byte) error
}

// NewDecoder reads and verifies the stream header and returns a streaming
// decoder for the events that follow.
func NewDecoder(r io.Reader) (*Decoder, error) {
	d := &Decoder{r: bufio.NewReaderSize(r, ResyncWindow), ob: defaultWireObs}
	var hdr [len(Magic) + 1]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrTruncated, err)
	}
	if !Sniff(hdr[:len(Magic)]) {
		return nil, fmt.Errorf("wire: bad magic %q (not an RDB2 stream)", hdr[:len(Magic)])
	}
	v := hdr[len(Magic)]
	if v < MinVersion || v > Version {
		return nil, fmt.Errorf("wire: unsupported version %d (want %d..%d)", v, MinVersion, Version)
	}
	d.version = v
	return d, nil
}

// SetResync enables (or disables) corruption resync: on a corrupt frame
// the decoder scans forward to the next verifiable frame instead of
// failing. Only effective on version 2 streams (version 1 frames carry no
// sync marker).
func (d *Decoder) SetResync(on bool) { d.resync = on }

// SetObs points the decoder's resync/dedup metrics at reg (an rd2d session
// scope, say); nil restores the process-global set. Call before Next.
func (d *Decoder) SetObs(reg *obs.Registry) {
	if reg == nil {
		d.ob = defaultWireObs
		return
	}
	d.ob = newWireObs(reg)
}

// Clean reports whether an explicit end-of-stream frame terminated the
// stream (false while decoding, and after a bare EOF at a frame boundary).
func (d *Decoder) Clean() bool { return d.clean }

// Events returns the number of events decoded so far.
func (d *Decoder) Events() int { return d.seq }

// Frames returns the number of frames read so far (including the
// end-of-stream frame).
func (d *Decoder) Frames() int { return d.frames }

// SessionID returns the session id from the stream's hello frame, or ""
// for a plain (non-resumable) stream.
func (d *Decoder) SessionID() string { return d.sid }

// Tenant returns the tenant id from the stream's hello frame (version 3),
// or "" when none was declared (the daemon's default tenant).
func (d *Decoder) Tenant() string { return d.tenant }

// SkippedBytes returns the bytes discarded by corruption resync scans.
func (d *Decoder) SkippedBytes() int64 { return d.skippedBytes }

// SkippedFrames returns the number of frames known to be lost: resync
// episodes, CRC-valid but undecodable frames dropped, and chunk-sequence
// gaps observed after a resync.
func (d *Decoder) SkippedFrames() int { return d.skippedFrames }

// Resyncs returns the number of corruption resync scans entered.
func (d *Decoder) Resyncs() int { return d.resyncs }

// DupChunks returns the number of duplicate chunks skipped (a resuming
// client replaying already-received data — protocol-normal, not loss).
func (d *Decoder) DupChunks() int { return d.dups }

// Degraded reports whether the decoded event stream is known to be
// incomplete: resync skipped bytes or dropped frames.
func (d *Decoder) Degraded() bool { return d.skippedBytes > 0 || d.skippedFrames > 0 }

// AckedChunk returns the highest contiguous chunk sequence number accepted
// and whether any chunk has been accepted at all.
func (d *Decoder) AckedChunk() (uint64, bool) {
	if d.expectChunk == 0 {
		return 0, false
	}
	return d.expectChunk - 1, true
}

// AdoptState transplants the cross-connection stream state — interning
// table, event sequence, chunk cursor, and degradation counters — from the
// decoder of a previous connection of the same resumable session. The
// receiving decoder must be freshly constructed (header read, no events
// consumed); the previous decoder must not be used afterwards.
func (d *Decoder) AdoptState(prev *Decoder) {
	d.intern = prev.intern
	d.seq = prev.seq
	d.frames += prev.frames
	d.expectChunk = prev.expectChunk
	d.seenChunk = prev.seenChunk
	d.skippedBytes += prev.skippedBytes
	d.skippedFrames += prev.skippedFrames
	d.resyncs += prev.resyncs
	d.dups += prev.dups
}

// fail records and returns a sticky error.
func (d *Decoder) fail(err error) error {
	d.err = err
	return err
}

// canResync reports whether err is a corruption (not an IO condition) that
// a forward scan can recover from on this stream.
func (d *Decoder) canResync(err error) bool {
	if !d.resync || d.version < 2 {
		return false
	}
	return errors.Is(err, ErrCRC) || errors.Is(err, ErrSync) ||
		errors.Is(err, ErrChunkGap) || errors.Is(err, errCorrupt)
}

// enterScan switches into resync scanning, accounting one lost frame.
func (d *Decoder) enterScan() {
	d.scanning = true
	d.resyncs++
	d.skippedFrames++
	d.ob.resyncs.Inc()
	d.ob.skippedFrames.Inc()
}

// discard consumes n bytes as resync junk.
func (d *Decoder) discard(n int) {
	d.r.Discard(n)
	d.skippedBytes += int64(n)
	d.ob.skippedBytes.Add(uint64(n))
}

// scan advances the reader to the next sync marker that begins a frame
// whose checksum verifies inside the lookahead window. Bytes passed over
// are counted as skipped. Returns io.EOF when the stream ends first.
func (d *Decoder) scan() error {
	for {
		pre, err := d.r.Peek(2)
		if len(pre) < 2 {
			// Tail too short for any frame: consume and end unclean.
			d.discard(len(pre))
			if err == nil || err == io.EOF {
				return io.EOF
			}
			return err
		}
		if pre[0] != sync0 || pre[1] != sync1 || !d.peekValidFrame() {
			d.discard(1)
			continue
		}
		return nil
	}
}

// peekValidFrame reports whether the bytes at the current read position
// (starting with a sync marker) form a complete frame with a valid
// checksum, verified entirely within the lookahead window.
func (d *Decoder) peekValidFrame() bool {
	buf, _ := d.r.Peek(ResyncWindow)
	if len(buf) < 2+1+1+4 {
		return false
	}
	kind := buf[2]
	if kind < frameEvents || kind > frameEventsSeq {
		return false
	}
	size, n := binary.Uvarint(buf[3:])
	if n <= 0 || size > MaxFrame {
		return false
	}
	total := 3 + n + int(size) + 4
	if total > len(buf) {
		return false // cannot verify inside the window: treat as junk
	}
	payload := buf[3+n : 3+n+int(size)]
	want := binary.LittleEndian.Uint32(buf[3+n+int(size):])
	return crc32.Checksum(payload, castagnoli) == want
}

// parseFrame reads one frame (sync marker, kind, length, payload, CRC)
// into d.frame and returns its kind. io.EOF is returned only for a clean
// EOF before any frame byte.
func (d *Decoder) parseFrame() (byte, error) {
	first, err := d.r.ReadByte()
	if err == io.EOF {
		return 0, io.EOF // frame-aligned end without an end frame
	}
	if err != nil {
		return 0, err
	}
	var kind byte
	if d.version >= 2 {
		second, err := d.r.ReadByte()
		if err != nil {
			return 0, fmt.Errorf("%w: frame sync: %v", ErrTruncated, err)
		}
		if first != sync0 || second != sync1 {
			return 0, fmt.Errorf("%w: got %02x %02x", ErrSync, first, second)
		}
		if kind, err = d.r.ReadByte(); err != nil {
			return 0, fmt.Errorf("%w: frame kind: %v", ErrTruncated, err)
		}
	} else {
		kind = first
	}
	size, err := binary.ReadUvarint(d.r)
	if err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, fmt.Errorf("%w: frame length: %v", ErrTruncated, err)
		}
		return 0, fmt.Errorf("%w: frame length: %v", errCorrupt, err)
	}
	if size > MaxFrame {
		return 0, fmt.Errorf("%w: frame of %d bytes exceeds MaxFrame", errCorrupt, size)
	}
	if cap(d.frame) < int(size) {
		d.frame = make([]byte, size)
	}
	d.frame = d.frame[:size]
	if _, err := io.ReadFull(d.r, d.frame); err != nil {
		return 0, fmt.Errorf("%w: frame payload: %v", ErrTruncated, err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(d.r, crc[:]); err != nil {
		return 0, fmt.Errorf("%w: frame CRC: %v", ErrTruncated, err)
	}
	want := binary.LittleEndian.Uint32(crc[:])
	if got := crc32.Checksum(d.frame, castagnoli); got != want {
		return 0, fmt.Errorf("%w: got %08x want %08x", ErrCRC, got, want)
	}
	d.frames++
	return kind, nil
}

// readFrame advances the stream by one frame. It returns nil when an
// events frame is loaded (d.frame/d.pos ready), errAgain when a non-event
// frame was consumed (call again), io.EOF at the end of the stream, and a
// sticky error otherwise.
func (d *Decoder) readFrame() error {
	if d.scanning {
		if err := d.scan(); err != nil {
			return d.fail(err)
		}
		d.scanning = false
	}
	kind, err := d.parseFrame()
	if err != nil {
		if err == io.EOF {
			return d.fail(io.EOF)
		}
		if d.canResync(err) {
			d.scanning = true
			d.resyncs++
			d.skippedFrames++
			d.ob.resyncs.Inc()
			d.ob.skippedFrames.Inc()
			return errAgain
		}
		return d.fail(err)
	}
	if (kind == frameEvents || kind == frameEventsSeq) && d.OnFrameAccepted != nil {
		if err := d.OnFrameAccepted(kind, d.frame); err != nil {
			return d.fail(err)
		}
	}
	switch kind {
	case frameEnd:
		d.clean = true
		return d.fail(io.EOF)
	case frameEvents:
		if len(d.frame) == 0 {
			return errAgain
		}
		d.pos = 0
		return nil
	case frameHello:
		err := d.parseHello()
		// Whatever the outcome, the hello frame is fully consumed: mark the
		// frame buffer drained so a caller leaving the read loop right after
		// (ReadHello) cannot misdecode the hello payload as events.
		d.frame = d.frame[:0]
		d.pos = 0
		if err != nil {
			if d.canResync(err) {
				d.scanning = true
				d.resyncs++
				d.skippedFrames++
				d.ob.resyncs.Inc()
				d.ob.skippedFrames.Inc()
				return errAgain
			}
			return d.fail(err)
		}
		return errAgain
	case frameEventsSeq:
		return d.acceptChunk()
	default:
		err := fmt.Errorf("%w: unknown frame kind 0x%02x", errCorrupt, kind)
		if d.canResync(err) {
			d.scanning = true
			d.resyncs++
			d.skippedFrames++
			d.ob.resyncs.Inc()
			d.ob.skippedFrames.Inc()
			return errAgain
		}
		return d.fail(err)
	}
}

// parseHello decodes a hello frame payload from d.frame: the session id,
// and in version 3 an optional trailing tenant id. Version 2 hellos are
// exactly `sidlen sid` with a non-empty sid; version 3 additionally allows
// `sidlen sid tidlen tid`, with an empty sid permitted only when a tenant
// follows (a tenant-declaring plain stream).
func (d *Decoder) parseHello() error {
	if d.version < 2 {
		return fmt.Errorf("%w: hello frame in version %d stream", errCorrupt, d.version)
	}
	n, w := binary.Uvarint(d.frame)
	if w <= 0 || n > MaxSessionID || w+int(n) > len(d.frame) {
		return fmt.Errorf("%w: malformed hello frame", errCorrupt)
	}
	rest := d.frame[w+int(n):]
	if len(rest) == 0 {
		if n == 0 {
			return fmt.Errorf("%w: malformed hello frame", errCorrupt)
		}
		d.sid = string(d.frame[w : w+int(n)])
		return nil
	}
	if d.version < 3 {
		return fmt.Errorf("%w: malformed hello frame", errCorrupt)
	}
	tn, tw := binary.Uvarint(rest)
	if tw <= 0 || tn == 0 || tn > MaxTenantID || int(tn) != len(rest)-tw {
		return fmt.Errorf("%w: malformed hello frame", errCorrupt)
	}
	if n > 0 {
		d.sid = string(d.frame[w : w+int(n)])
	}
	d.tenant = string(rest[tw : tw+int(tn)])
	return nil
}

// acceptChunk handles a seq'd events frame: deduplicate replays, detect
// gaps, position the payload, and fire the ack hook.
func (d *Decoder) acceptChunk() error {
	if d.version < 2 {
		return d.fail(fmt.Errorf("%w: seq'd frame in version %d stream", errCorrupt, d.version))
	}
	seq, w := binary.Uvarint(d.frame)
	if w <= 0 {
		err := fmt.Errorf("%w: bad chunk sequence", errCorrupt)
		if d.canResync(err) {
			d.scanning = true
			d.resyncs++
			d.skippedFrames++
			d.ob.resyncs.Inc()
			d.ob.skippedFrames.Inc()
			return errAgain
		}
		return d.fail(err)
	}
	switch {
	case seq < d.expectChunk:
		// A resuming client replayed a chunk we already consumed: skip it
		// (marking the frame fully drained), but re-ack so the client can
		// trim its resend buffer.
		d.pos = len(d.frame)
		d.dups++
		d.ob.dupChunks.Inc()
		if d.OnChunk != nil {
			d.OnChunk(d.expectChunk - 1)
		}
		return errAgain
	case seq > d.expectChunk:
		if !d.resync {
			return d.fail(fmt.Errorf("%w: got chunk %d, expected %d", ErrChunkGap, seq, d.expectChunk))
		}
		// After a resync scan the lost region may have swallowed whole
		// chunks; account for them and carry on — the stream is already
		// marked degraded.
		gap := int(seq - d.expectChunk)
		d.skippedFrames += gap
		d.ob.skippedFrames.Add(uint64(gap))
	}
	d.expectChunk = seq + 1
	d.seenChunk = true
	if d.OnChunk != nil {
		d.OnChunk(seq)
	}
	d.pos = w
	if d.remaining() == 0 {
		return errAgain // empty chunk (timer flush with no events)
	}
	return nil
}

// nextFrame loads the next events frame into d.frame. It returns io.EOF on
// an end-of-stream frame or a clean EOF at a frame boundary.
func (d *Decoder) nextFrame() error {
	for {
		err := d.readFrame()
		if err != errAgain {
			return err
		}
	}
}

// ReadHello reads frames until the stream's intent is known: it returns
// the session id as soon as a hello frame is seen (before consuming any
// events frame that follows), or "" once the first events frame, end
// frame, or EOF shows this is a plain stream. The daemon calls it before
// Next to route resumable sessions to their session state.
func (d *Decoder) ReadHello() (string, error) {
	for d.sid == "" {
		if d.err != nil || d.remaining() > 0 {
			return d.sid, nil
		}
		err := d.readFrame()
		if err == errAgain {
			continue
		}
		if err == io.EOF {
			return d.sid, nil // empty/ended stream; Next returns the sticky EOF
		}
		if err != nil {
			return d.sid, err
		}
		return d.sid, nil // events frame loaded: plain stream
	}
	return d.sid, nil
}

func (d *Decoder) remaining() int { return len(d.frame) - d.pos }

func (d *Decoder) readByte() (byte, error) {
	if d.remaining() < 1 {
		return 0, fmt.Errorf("%w: event record crosses frame end", ErrTruncated)
	}
	b := d.frame[d.pos]
	d.pos++
	return b, nil
}

func (d *Decoder) readUvarint() (uint64, error) {
	v, n := binary.Uvarint(d.frame[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint in frame", ErrTruncated)
	}
	d.pos += n
	return v, nil
}

func (d *Decoder) readVarint() (int64, error) {
	v, n := binary.Varint(d.frame[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint in frame", ErrTruncated)
	}
	d.pos += n
	return v, nil
}

// readID decodes a non-negative id bounded to the int range.
func (d *Decoder) readID() (int, error) {
	v, err := d.readUvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(int(^uint(0)>>1)) {
		return 0, fmt.Errorf("wire: id %d overflows int", v)
	}
	return int(v), nil
}

// readString decodes an interned string reference or a new table entry.
func (d *Decoder) readString() (string, error) {
	ref, err := d.readUvarint()
	if err != nil {
		return "", err
	}
	if ref > 0 {
		if ref > uint64(len(d.intern)) {
			return "", fmt.Errorf("wire: string ref %d out of range (table has %d)", ref, len(d.intern))
		}
		return d.intern[ref-1], nil
	}
	n, err := d.readUvarint()
	if err != nil {
		return "", err
	}
	if n > MaxString {
		return "", fmt.Errorf("wire: string of %d bytes exceeds MaxString", n)
	}
	if int(n) > d.remaining() {
		return "", fmt.Errorf("%w: string crosses frame end", ErrTruncated)
	}
	if len(d.intern) >= MaxStrings {
		return "", fmt.Errorf("wire: interning table full (%d strings)", MaxStrings)
	}
	s := string(d.frame[d.pos : d.pos+int(n)])
	d.pos += int(n)
	d.intern = append(d.intern, s)
	return s, nil
}

func (d *Decoder) readValue() (trace.Value, error) {
	tag, err := d.readByte()
	if err != nil {
		return trace.Value{}, err
	}
	switch tag {
	case wireNil:
		return trace.NilValue, nil
	case wireInt:
		v, err := d.readVarint()
		if err != nil {
			return trace.Value{}, err
		}
		return trace.IntValue(v), nil
	case wireStr:
		s, err := d.readString()
		if err != nil {
			return trace.Value{}, err
		}
		return trace.StrValue(s), nil
	case wireBool:
		b, err := d.readByte()
		if err != nil {
			return trace.Value{}, err
		}
		if b > 1 {
			return trace.Value{}, fmt.Errorf("wire: bad bool byte 0x%02x", b)
		}
		return trace.BoolValue(b == 1), nil
	default:
		return trace.Value{}, fmt.Errorf("wire: unknown value tag 0x%02x", tag)
	}
}

func (d *Decoder) readTuple() ([]trace.Value, error) {
	n, err := d.readUvarint()
	if err != nil {
		return nil, err
	}
	if n > MaxTuple {
		return nil, fmt.Errorf("wire: tuple of %d values exceeds MaxTuple", n)
	}
	if n == 0 {
		return nil, nil
	}
	// A value takes at least one payload byte: bound the allocation by what
	// the frame can actually hold before trusting the declared count.
	if int(n) > d.remaining() {
		return nil, fmt.Errorf("%w: tuple crosses frame end", ErrTruncated)
	}
	out := make([]trace.Value, 0, n)
	for i := uint64(0); i < n; i++ {
		v, err := d.readValue()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// Next decodes the next event. It returns io.EOF at the end of the stream;
// any other error is sticky — except in resync mode, where a CRC-valid but
// undecodable frame is dropped (counted as skipped) and decoding carries
// on at the next frame boundary.
func (d *Decoder) Next() (trace.Event, error) {
	if d.err != nil {
		return trace.Event{}, d.err
	}
	for {
		if d.remaining() == 0 {
			if err := d.nextFrame(); err != nil {
				return trace.Event{}, err
			}
		}
		e, err := d.decodeEvent()
		if err != nil {
			if d.resync && d.version >= 2 {
				// The frame passed its CRC but does not decode (producer
				// bug or interning drift after an earlier skip): drop the
				// rest of it, honestly counted.
				d.pos = len(d.frame)
				d.skippedFrames++
				d.ob.skippedFrames.Inc()
				continue
			}
			return trace.Event{}, d.fail(err)
		}
		e.Seq = d.seq
		d.seq++
		return e, nil
	}
}

func (d *Decoder) decodeEvent() (trace.Event, error) {
	kb, err := d.readByte()
	if err != nil {
		return trace.Event{}, err
	}
	kind := trace.EventKind(kb)
	tid, err := d.readID()
	if err != nil {
		return trace.Event{}, err
	}
	e := trace.Event{Kind: kind, Thread: vclock.Tid(tid)}
	switch kind {
	case trace.ForkEvent, trace.JoinEvent:
		id, err := d.readID()
		if err != nil {
			return trace.Event{}, err
		}
		e.Other = vclock.Tid(id)
	case trace.AcquireEvent, trace.ReleaseEvent:
		id, err := d.readID()
		if err != nil {
			return trace.Event{}, err
		}
		e.Lock = trace.LockID(id)
	case trace.ReadEvent, trace.WriteEvent:
		id, err := d.readID()
		if err != nil {
			return trace.Event{}, err
		}
		e.Var = trace.VarID(id)
	case trace.SendEvent, trace.RecvEvent:
		id, err := d.readID()
		if err != nil {
			return trace.Event{}, err
		}
		e.Chan = trace.ChanID(id)
	case trace.BeginEvent, trace.EndEvent:
	case trace.DieEvent:
		id, err := d.readID()
		if err != nil {
			return trace.Event{}, err
		}
		e.Act.Obj = trace.ObjID(id)
	case trace.ActionEvent:
		id, err := d.readID()
		if err != nil {
			return trace.Event{}, err
		}
		e.Act.Obj = trace.ObjID(id)
		if e.Act.Method, err = d.readString(); err != nil {
			return trace.Event{}, err
		}
		if e.Act.Args, err = d.readTuple(); err != nil {
			return trace.Event{}, err
		}
		if e.Act.Rets, err = d.readTuple(); err != nil {
			return trace.Event{}, err
		}
	default:
		return trace.Event{}, fmt.Errorf("wire: unknown event kind 0x%02x", kb)
	}
	return e, nil
}

// DecodeTrace drains an RDB2 stream into an in-memory trace.
func DecodeTrace(r io.Reader) (*trace.Trace, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return nil, err
	}
	return trace.ReadAll(d)
}

// NewSource sniffs the input and returns a streaming event source: a wire
// Decoder when the RDB2 magic is present, a text TextSource otherwise.
// This is the auto-detection used by rd2, rd2bench, and rd2d tooling to
// accept .rdb binary traces and text traces interchangeably.
func NewSource(r io.Reader) (trace.Source, error) {
	br := bufio.NewReader(r)
	prefix, err := br.Peek(SniffLen)
	if err != nil && len(prefix) < SniffLen {
		// Too short to be a wire stream; let the text parser handle it
		// (an empty input is a valid empty text trace).
		return trace.NewTextSource(br), nil
	}
	if Sniff(prefix) {
		return NewDecoder(br)
	}
	return trace.NewTextSource(br), nil
}

// ParseAny decodes a whole trace with format auto-detection (see
// NewSource).
func ParseAny(r io.Reader) (*trace.Trace, error) {
	src, err := NewSource(r)
	if err != nil {
		return nil, err
	}
	return trace.ReadAll(src)
}
