package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/trace"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encoder writes events in the RDB2 binary format. Events are buffered
// into frames of roughly FrameSize bytes; Flush forces a partial frame out
// (the rd2d client flushes on timer so the daemon sees events promptly),
// and Close writes the end-of-stream frame. Not safe for concurrent use.
type Encoder struct {
	w      *bufio.Writer
	buf    []byte // current frame payload under construction
	tmp    [binary.MaxVarintLen64]byte
	intern map[string]uint64 // string → 1-based id
	// FrameSize is the payload size that triggers a frame write; set
	// between NewEncoder and the first WriteEvent. 0 means DefaultFrameSize.
	FrameSize int
	started   bool
	closed    bool
	events    int
}

// NewEncoder returns an Encoder over w. The stream header is written
// lazily by the first WriteEvent/Flush/Close.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriter(w), intern: map[string]uint64{}}
}

// start writes the magic + version header once.
func (enc *Encoder) start() error {
	if enc.started {
		return nil
	}
	enc.started = true
	if _, err := enc.w.WriteString(Magic); err != nil {
		return err
	}
	return enc.w.WriteByte(Version)
}

func (enc *Encoder) frameSize() int {
	if enc.FrameSize > 0 {
		return enc.FrameSize
	}
	return DefaultFrameSize
}

func (enc *Encoder) putUvarint(v uint64) {
	n := binary.PutUvarint(enc.tmp[:], v)
	enc.buf = append(enc.buf, enc.tmp[:n]...)
}

func (enc *Encoder) putVarint(v int64) {
	n := binary.PutVarint(enc.tmp[:], v)
	enc.buf = append(enc.buf, enc.tmp[:n]...)
}

// putID encodes a non-negative id; negative ids are a caller bug the text
// format cannot express either, and are rejected rather than corrupting
// the stream.
func (enc *Encoder) putID(v int) error {
	if v < 0 {
		return fmt.Errorf("wire: negative id %d", v)
	}
	enc.putUvarint(uint64(v))
	return nil
}

// putString encodes s through the interning table: a back-reference for a
// known string, or ref 0 + bytes for a new one (which is assigned the next
// 1-based id on both sides).
func (enc *Encoder) putString(s string) error {
	if id, ok := enc.intern[s]; ok {
		enc.putUvarint(id)
		return nil
	}
	if len(s) > MaxString {
		return fmt.Errorf("wire: string of %d bytes exceeds MaxString", len(s))
	}
	if len(enc.intern) >= MaxStrings {
		return fmt.Errorf("wire: interning table full (%d strings)", MaxStrings)
	}
	enc.buf = append(enc.buf, 0)
	enc.putUvarint(uint64(len(s)))
	enc.buf = append(enc.buf, s...)
	enc.intern[s] = uint64(len(enc.intern) + 1)
	return nil
}

func (enc *Encoder) putValue(v trace.Value) error {
	switch v.Kind() {
	case trace.Nil:
		enc.buf = append(enc.buf, wireNil)
	case trace.Int:
		enc.buf = append(enc.buf, wireInt)
		enc.putVarint(v.Int())
	case trace.Str:
		enc.buf = append(enc.buf, wireStr)
		return enc.putString(v.Str())
	case trace.Bool:
		b := byte(0)
		if v.Bool() {
			b = 1
		}
		enc.buf = append(enc.buf, wireBool, b)
	default:
		return fmt.Errorf("wire: unknown value kind %v", v.Kind())
	}
	return nil
}

// WriteEvent appends one event to the stream. The event's Seq and Clock
// are not transmitted (the decoder reassigns Seq; clocks are recomputed).
func (enc *Encoder) WriteEvent(e *trace.Event) error {
	if enc.closed {
		return fmt.Errorf("wire: write on closed encoder")
	}
	mark := len(enc.buf)
	if err := enc.encodeEvent(e); err != nil {
		enc.buf = enc.buf[:mark] // drop the partial record
		return err
	}
	enc.events++
	if len(enc.buf) >= enc.frameSize() {
		return enc.flushFrame()
	}
	return nil
}

func (enc *Encoder) encodeEvent(e *trace.Event) error {
	enc.buf = append(enc.buf, byte(e.Kind))
	if err := enc.putID(int(e.Thread)); err != nil {
		return err
	}
	switch e.Kind {
	case trace.ForkEvent, trace.JoinEvent:
		return enc.putID(int(e.Other))
	case trace.AcquireEvent, trace.ReleaseEvent:
		return enc.putID(int(e.Lock))
	case trace.ReadEvent, trace.WriteEvent:
		return enc.putID(int(e.Var))
	case trace.SendEvent, trace.RecvEvent:
		return enc.putID(int(e.Chan))
	case trace.BeginEvent, trace.EndEvent:
		return nil
	case trace.DieEvent:
		return enc.putID(int(e.Act.Obj))
	case trace.ActionEvent:
		if err := enc.putID(int(e.Act.Obj)); err != nil {
			return err
		}
		if err := enc.putString(e.Act.Method); err != nil {
			return err
		}
		if len(e.Act.Args) > MaxTuple || len(e.Act.Rets) > MaxTuple {
			return fmt.Errorf("wire: action tuple exceeds MaxTuple")
		}
		enc.putUvarint(uint64(len(e.Act.Args)))
		for _, v := range e.Act.Args {
			if err := enc.putValue(v); err != nil {
				return err
			}
		}
		enc.putUvarint(uint64(len(e.Act.Rets)))
		for _, v := range e.Act.Rets {
			if err := enc.putValue(v); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("wire: unknown event kind %v", e.Kind)
	}
}

// flushFrame writes the buffered payload as one events frame.
func (enc *Encoder) flushFrame() error {
	if len(enc.buf) == 0 {
		return nil
	}
	if err := enc.start(); err != nil {
		return err
	}
	if err := enc.writeFrame(frameEvents, enc.buf); err != nil {
		return err
	}
	enc.buf = enc.buf[:0]
	return nil
}

func (enc *Encoder) writeFrame(kind byte, payload []byte) error {
	if err := enc.w.WriteByte(kind); err != nil {
		return err
	}
	n := binary.PutUvarint(enc.tmp[:], uint64(len(payload)))
	if _, err := enc.w.Write(enc.tmp[:n]); err != nil {
		return err
	}
	if _, err := enc.w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, castagnoli))
	_, err := enc.w.Write(crc[:])
	return err
}

// Flush writes any buffered partial frame and flushes the underlying
// writer, making everything written so far visible to the reader.
func (enc *Encoder) Flush() error {
	if err := enc.start(); err != nil {
		return err
	}
	if err := enc.flushFrame(); err != nil {
		return err
	}
	return enc.w.Flush()
}

// Events returns the number of events written so far.
func (enc *Encoder) Events() int { return enc.events }

// Close flushes buffered events and writes the end-of-stream frame. The
// underlying writer is not closed. Close is idempotent.
func (enc *Encoder) Close() error {
	if enc.closed {
		return nil
	}
	if err := enc.start(); err != nil {
		return err
	}
	if err := enc.flushFrame(); err != nil {
		return err
	}
	enc.closed = true
	if err := enc.writeFrame(frameEnd, nil); err != nil {
		return err
	}
	return enc.w.Flush()
}

// EncodeTrace writes a whole in-memory trace as one RDB2 stream (header,
// event frames, end-of-stream frame).
func EncodeTrace(w io.Writer, tr *trace.Trace) error {
	enc := NewEncoder(w)
	for i := range tr.Events {
		if err := enc.WriteEvent(&tr.Events[i]); err != nil {
			return err
		}
	}
	return enc.Close()
}
