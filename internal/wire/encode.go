package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/trace"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encoder writes events in the RDB2 binary format (version 2). Events are
// buffered into frames of roughly FrameSize bytes; Flush forces a partial
// frame out (the rd2d client flushes on timer so the daemon sees events
// promptly), and Close writes the end-of-stream frame. Not safe for
// concurrent use.
//
// SetSession switches the encoder into resumable mode: the stream header is
// followed by a hello frame carrying the session id, every events frame
// becomes a seq'd chunk, and the complete serialized bytes of each chunk
// are handed to the OnFrame hook before they are written — the hook owner
// (ResumableClient) keeps them until the receiver acknowledges the chunk,
// so they can be replayed verbatim over a new connection after Reset.
type Encoder struct {
	w       *bufio.Writer
	buf     []byte // current frame payload under construction
	tmp     [binary.MaxVarintLen64]byte
	scratch []byte            // serialized frame under construction
	intern  map[string]uint64 // string → 1-based id
	// FrameSize is the payload size that triggers a frame write; set
	// between NewEncoder and the first WriteEvent. 0 means DefaultFrameSize.
	FrameSize int
	// OnFrame, when set together with SetSession, receives the chunk
	// sequence number and the complete serialized frame bytes of every
	// seq'd events frame, before the frame is written to the underlying
	// writer. The slice is only valid during the call and must be copied
	// to be retained.
	OnFrame func(seq uint64, frame []byte) error

	sid        string // resumable session id ("" = plain stream)
	tenant     string // tenant id ("" = default tenant, no hello field)
	nextSeq    uint64 // next chunk sequence number (resumable mode)
	started    bool   // header (+hello) written on the current writer
	endWritten bool   // end-of-stream frame written on the current writer
	closed     bool
	events     int
}

// NewEncoder returns an Encoder over w. The stream header is written
// lazily by the first WriteEvent/Flush/Close.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriter(w), intern: map[string]uint64{}}
}

// SetSession switches the encoder into resumable mode under the given
// client-chosen session id. Must be called before the first write.
func (enc *Encoder) SetSession(sid string) error {
	if enc.started {
		return fmt.Errorf("wire: SetSession after stream start")
	}
	if sid == "" || len(sid) > MaxSessionID {
		return fmt.Errorf("wire: bad session id %q", sid)
	}
	enc.sid = sid
	return nil
}

// SetTenant declares the stream's tenant id, carried in the hello frame
// for the daemon's per-tenant admission and quotas. Works with or without
// SetSession (a tenant-only hello declares the tenant of a plain stream).
// Must be called before the first write.
func (enc *Encoder) SetTenant(tenant string) error {
	if enc.started {
		return fmt.Errorf("wire: SetTenant after stream start")
	}
	if tenant == "" || len(tenant) > MaxTenantID {
		return fmt.Errorf("wire: bad tenant id %q", tenant)
	}
	enc.tenant = tenant
	return nil
}

// Reset points the encoder at a new writer (a freshly dialed connection).
// The stream header — and, in resumable mode, the hello frame — is written
// again by the next write; the interning table, the chunk sequence, and
// any partially buffered frame are preserved, so a resumed stream carries
// on exactly where the dead connection left off once the unacknowledged
// chunks have been replayed (WriteRaw).
func (enc *Encoder) Reset(w io.Writer) {
	enc.w = bufio.NewWriter(w)
	enc.started = false
	enc.endWritten = false
	enc.closed = false
}

// Start writes the stream header (and hello frame, in resumable mode) if
// it has not been written on the current writer yet, and flushes it.
func (enc *Encoder) Start() error {
	if err := enc.start(); err != nil {
		return err
	}
	return enc.w.Flush()
}

// start writes the magic + version header (+ hello) once per writer.
func (enc *Encoder) start() error {
	if enc.started {
		return nil
	}
	enc.started = true
	if _, err := enc.w.WriteString(Magic); err != nil {
		return err
	}
	if err := enc.w.WriteByte(Version); err != nil {
		return err
	}
	if enc.sid != "" || enc.tenant != "" {
		hello := make([]byte, 0, len(enc.sid)+len(enc.tenant)+2*binary.MaxVarintLen64)
		n := binary.PutUvarint(enc.tmp[:], uint64(len(enc.sid)))
		hello = append(hello, enc.tmp[:n]...)
		hello = append(hello, enc.sid...)
		if enc.tenant != "" {
			n = binary.PutUvarint(enc.tmp[:], uint64(len(enc.tenant)))
			hello = append(hello, enc.tmp[:n]...)
			hello = append(hello, enc.tenant...)
		}
		return enc.writeFrame(frameHello, hello)
	}
	return nil
}

// WriteRaw replays previously captured frame bytes (OnFrame) verbatim —
// the resend path of a session resume. The header is written first if the
// current writer has not seen it.
func (enc *Encoder) WriteRaw(frame []byte) error {
	if err := enc.start(); err != nil {
		return err
	}
	if _, err := enc.w.Write(frame); err != nil {
		return err
	}
	return enc.w.Flush()
}

func (enc *Encoder) frameSize() int {
	if enc.FrameSize > 0 {
		return enc.FrameSize
	}
	return DefaultFrameSize
}

func (enc *Encoder) putUvarint(v uint64) {
	n := binary.PutUvarint(enc.tmp[:], v)
	enc.buf = append(enc.buf, enc.tmp[:n]...)
}

func (enc *Encoder) putVarint(v int64) {
	n := binary.PutVarint(enc.tmp[:], v)
	enc.buf = append(enc.buf, enc.tmp[:n]...)
}

// putID encodes a non-negative id; negative ids are a caller bug the text
// format cannot express either, and are rejected rather than corrupting
// the stream.
func (enc *Encoder) putID(v int) error {
	if v < 0 {
		return fmt.Errorf("wire: negative id %d", v)
	}
	enc.putUvarint(uint64(v))
	return nil
}

// putString encodes s through the interning table: a back-reference for a
// known string, or ref 0 + bytes for a new one (which is assigned the next
// 1-based id on both sides).
func (enc *Encoder) putString(s string) error {
	if id, ok := enc.intern[s]; ok {
		enc.putUvarint(id)
		return nil
	}
	if len(s) > MaxString {
		return fmt.Errorf("wire: string of %d bytes exceeds MaxString", len(s))
	}
	if len(enc.intern) >= MaxStrings {
		return fmt.Errorf("wire: interning table full (%d strings)", MaxStrings)
	}
	enc.buf = append(enc.buf, 0)
	enc.putUvarint(uint64(len(s)))
	enc.buf = append(enc.buf, s...)
	enc.intern[s] = uint64(len(enc.intern) + 1)
	return nil
}

func (enc *Encoder) putValue(v trace.Value) error {
	switch v.Kind() {
	case trace.Nil:
		enc.buf = append(enc.buf, wireNil)
	case trace.Int:
		enc.buf = append(enc.buf, wireInt)
		enc.putVarint(v.Int())
	case trace.Str:
		enc.buf = append(enc.buf, wireStr)
		return enc.putString(v.Str())
	case trace.Bool:
		b := byte(0)
		if v.Bool() {
			b = 1
		}
		enc.buf = append(enc.buf, wireBool, b)
	default:
		return fmt.Errorf("wire: unknown value kind %v", v.Kind())
	}
	return nil
}

// WriteEvent appends one event to the stream. The event's Seq and Clock
// are not transmitted (the decoder reassigns Seq; clocks are recomputed).
func (enc *Encoder) WriteEvent(e *trace.Event) error {
	if enc.closed {
		return fmt.Errorf("wire: write on closed encoder")
	}
	mark := len(enc.buf)
	if err := enc.encodeEvent(e); err != nil {
		enc.buf = enc.buf[:mark] // drop the partial record
		return err
	}
	enc.events++
	if len(enc.buf) >= enc.frameSize() {
		return enc.flushFrame()
	}
	return nil
}

func (enc *Encoder) encodeEvent(e *trace.Event) error {
	enc.buf = append(enc.buf, byte(e.Kind))
	if err := enc.putID(int(e.Thread)); err != nil {
		return err
	}
	switch e.Kind {
	case trace.ForkEvent, trace.JoinEvent:
		return enc.putID(int(e.Other))
	case trace.AcquireEvent, trace.ReleaseEvent:
		return enc.putID(int(e.Lock))
	case trace.ReadEvent, trace.WriteEvent:
		return enc.putID(int(e.Var))
	case trace.SendEvent, trace.RecvEvent:
		return enc.putID(int(e.Chan))
	case trace.BeginEvent, trace.EndEvent:
		return nil
	case trace.DieEvent:
		return enc.putID(int(e.Act.Obj))
	case trace.ActionEvent:
		if err := enc.putID(int(e.Act.Obj)); err != nil {
			return err
		}
		if err := enc.putString(e.Act.Method); err != nil {
			return err
		}
		if len(e.Act.Args) > MaxTuple || len(e.Act.Rets) > MaxTuple {
			return fmt.Errorf("wire: action tuple exceeds MaxTuple")
		}
		enc.putUvarint(uint64(len(e.Act.Args)))
		for _, v := range e.Act.Args {
			if err := enc.putValue(v); err != nil {
				return err
			}
		}
		enc.putUvarint(uint64(len(e.Act.Rets)))
		for _, v := range e.Act.Rets {
			if err := enc.putValue(v); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("wire: unknown event kind %v", e.Kind)
	}
}

// flushFrame writes the buffered payload as one events frame. In resumable
// mode the chunk is sequenced and handed to OnFrame before the connection
// write — and the encoder state (cleared buffer, advanced sequence) is
// committed regardless of the write's outcome, so a failed write leaves
// the chunk safely in the resend buffer rather than duplicated in the
// next frame.
func (enc *Encoder) flushFrame() error {
	if len(enc.buf) == 0 {
		return nil
	}
	if err := enc.start(); err != nil {
		return err
	}
	if enc.sid == "" {
		if err := enc.writeFrame(frameEvents, enc.buf); err != nil {
			return err
		}
		enc.buf = enc.buf[:0]
		return nil
	}
	seq := enc.nextSeq
	payload := make([]byte, 0, len(enc.buf)+binary.MaxVarintLen64)
	n := binary.PutUvarint(enc.tmp[:], seq)
	payload = append(payload, enc.tmp[:n]...)
	payload = append(payload, enc.buf...)
	frame := enc.serializeFrame(frameEventsSeq, payload)
	enc.nextSeq++
	enc.buf = enc.buf[:0]
	if enc.OnFrame != nil {
		if err := enc.OnFrame(seq, frame); err != nil {
			return err
		}
	}
	if _, err := enc.w.Write(frame); err != nil {
		return err
	}
	// Per-chunk flush: resumable streams want errors surfaced promptly so
	// the client can reconnect with a tight unacked window.
	return enc.w.Flush()
}

// serializeFrame renders a complete frame (sync, kind, length, payload,
// CRC) into the scratch buffer and returns it.
func (enc *Encoder) serializeFrame(kind byte, payload []byte) []byte {
	enc.scratch = enc.scratch[:0]
	enc.scratch = append(enc.scratch, sync0, sync1, kind)
	n := binary.PutUvarint(enc.tmp[:], uint64(len(payload)))
	enc.scratch = append(enc.scratch, enc.tmp[:n]...)
	enc.scratch = append(enc.scratch, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, castagnoli))
	enc.scratch = append(enc.scratch, crc[:]...)
	return enc.scratch
}

func (enc *Encoder) writeFrame(kind byte, payload []byte) error {
	_, err := enc.w.Write(enc.serializeFrame(kind, payload))
	return err
}

// Flush writes any buffered partial frame and flushes the underlying
// writer, making everything written so far visible to the reader.
func (enc *Encoder) Flush() error {
	if err := enc.start(); err != nil {
		return err
	}
	if err := enc.flushFrame(); err != nil {
		return err
	}
	return enc.w.Flush()
}

// Events returns the number of events written so far.
func (enc *Encoder) Events() int { return enc.events }

// NextSeq returns the next chunk sequence number (resumable mode).
func (enc *Encoder) NextSeq() uint64 { return enc.nextSeq }

// WriteEnd flushes buffered events and writes the end-of-stream frame on
// the current writer, without closing the encoder to further Resets — the
// resume path uses it to re-terminate a replayed stream. Idempotent per
// writer.
func (enc *Encoder) WriteEnd() error {
	if err := enc.start(); err != nil {
		return err
	}
	if err := enc.flushFrame(); err != nil {
		return err
	}
	if !enc.endWritten {
		enc.endWritten = true
		if err := enc.writeFrame(frameEnd, nil); err != nil {
			return err
		}
	}
	return enc.w.Flush()
}

// Close flushes buffered events and writes the end-of-stream frame. The
// underlying writer is not closed. Close is idempotent.
func (enc *Encoder) Close() error {
	if enc.closed {
		return nil
	}
	if err := enc.WriteEnd(); err != nil {
		return err
	}
	enc.closed = true
	return nil
}

// EncodeTrace writes a whole in-memory trace as one RDB2 stream (header,
// event frames, end-of-stream frame).
func EncodeTrace(w io.Writer, tr *trace.Trace) error {
	enc := NewEncoder(w)
	for i := range tr.Events {
		if err := enc.WriteEvent(&tr.Events[i]); err != nil {
			return err
		}
	}
	return enc.Close()
}
