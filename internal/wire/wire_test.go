package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/trace"
)

// sampleTrace covers every event kind and every value kind, with repeated
// method names and string values to exercise the interning table.
func sampleTrace() *trace.Trace {
	tr := &trace.Trace{}
	tr.Append(trace.Fork(0, 1))
	tr.Append(trace.Fork(0, 2))
	tr.Append(trace.Event{Kind: trace.BeginEvent, Thread: 1})
	tr.Append(trace.Act(1, trace.Action{Obj: 0, Method: "put",
		Args: []trace.Value{trace.StrValue("a.com"), trace.IntValue(1)},
		Rets: []trace.Value{trace.NilValue}}))
	tr.Append(trace.Act(2, trace.Action{Obj: 0, Method: "put",
		Args: []trace.Value{trace.StrValue("a.com"), trace.IntValue(-7)},
		Rets: []trace.Value{trace.IntValue(1)}}))
	tr.Append(trace.Acquire(2, 3))
	tr.Append(trace.Act(2, trace.Action{Obj: 1, Method: "contains",
		Args: []trace.Value{trace.StrValue("κλειδί")}, // non-ASCII survives
		Rets: []trace.Value{trace.BoolValue(true)}}))
	tr.Append(trace.Release(2, 3))
	tr.Append(trace.Event{Kind: trace.EndEvent, Thread: 1})
	tr.Append(trace.Send(2, 0))
	tr.Append(trace.Recv(0, 0))
	tr.Append(trace.Read(0, 5))
	tr.Append(trace.Write(0, 5))
	tr.Append(trace.Join(0, 1))
	tr.Append(trace.Join(0, 2))
	tr.Append(trace.Die(0, 0))
	tr.Append(trace.Act(0, trace.Action{Obj: 1, Method: "size",
		Rets: []trace.Value{trace.IntValue(0)}}))
	return tr
}

func encodeBytes(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeTrace(&buf, tr); err != nil {
		t.Fatalf("EncodeTrace: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTripSample(t *testing.T) {
	tr := sampleTrace()
	data := encodeBytes(t, tr)
	got, err := DecodeTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("DecodeTrace: %v", err)
	}
	if want, have := trace.Format(tr), trace.Format(got); want != have {
		t.Fatalf("round trip mismatch:\nwant:\n%s\nhave:\n%s", want, have)
	}
	// Seq must be reassigned in stream order.
	for i, e := range got.Events {
		if e.Seq != i {
			t.Fatalf("event %d has Seq %d", i, e.Seq)
		}
	}
}

func TestRoundTripGenerated(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := trace.GenConfig{
			Threads: 4, Objects: 3, Keys: 5, Vals: 3, Locks: 2,
			OpsMin: 10, OpsMax: 30, PSize: 15, PGet: 35, PLocked: 30, PRemove: 25,
		}
		tr := trace.Generate(rand.New(rand.NewSource(seed)), cfg)
		got, err := DecodeTrace(bytes.NewReader(encodeBytes(t, tr)))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if trace.Format(tr) != trace.Format(got) {
			t.Fatalf("seed %d: round trip mismatch", seed)
		}
	}
}

// TestRoundTripTinyFrames forces one-event frames so the frame machinery
// (length prefixes, CRCs, interning across frame boundaries) is exercised.
func TestRoundTripTinyFrames(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	enc.FrameSize = 1
	for i := range tr.Events {
		if err := enc.WriteEvent(&tr.Events[i]); err != nil {
			t.Fatalf("WriteEvent: %v", err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err := DecodeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("DecodeTrace: %v", err)
	}
	if trace.Format(tr) != trace.Format(got) {
		t.Fatal("tiny-frame round trip mismatch")
	}
}

func TestInterningSharesStrings(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 100; i++ {
		tr.Append(trace.Act(0, trace.Action{Obj: 0, Method: "put",
			Args: []trace.Value{trace.StrValue("the-same-long-key-string"), trace.IntValue(int64(i))},
			Rets: []trace.Value{trace.NilValue}}))
	}
	data := encodeBytes(t, tr)
	if n := bytes.Count(data, []byte("the-same-long-key-string")); n != 1 {
		t.Fatalf("interned string transmitted %d times, want 1", n)
	}
	got, err := DecodeTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if trace.Format(tr) != trace.Format(got) {
		t.Fatal("round trip mismatch")
	}
}

func TestDecoderClean(t *testing.T) {
	tr := sampleTrace()
	data := encodeBytes(t, tr)

	d, err := NewDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.ReadAll(d); err != nil {
		t.Fatal(err)
	}
	if !d.Clean() {
		t.Fatal("Clean() = false after end-of-stream frame")
	}
	if d.Events() != tr.Len() {
		t.Fatalf("Events() = %d, want %d", d.Events(), tr.Len())
	}

	// Dropping the end-of-stream frame (8 bytes: sync2 + kind + len0 + crc4)
	// still decodes everything but reports an unclean end.
	d2, err := NewDecoder(bytes.NewReader(data[:len(data)-8]))
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadAll(d2)
	if err != nil {
		t.Fatalf("frame-aligned truncation should still decode: %v", err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("decoded %d events, want %d", got.Len(), tr.Len())
	}
	if d2.Clean() {
		t.Fatal("Clean() = true without an end-of-stream frame")
	}
}

func TestDecodeErrors(t *testing.T) {
	valid := encodeBytes(t, sampleTrace())

	t.Run("bad magic", func(t *testing.T) {
		_, err := NewDecoder(strings.NewReader("t0 fork t1\n"))
		if err == nil || !strings.Contains(err.Error(), "magic") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		data := append([]byte(nil), valid...)
		data[4] = 99
		if _, err := NewDecoder(bytes.NewReader(data)); err == nil {
			t.Fatal("version 99 accepted")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := NewDecoder(bytes.NewReader(nil)); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("corrupt payload", func(t *testing.T) {
		data := append([]byte(nil), valid...)
		data[10] ^= 0xff // inside the first frame payload
		d, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		_, err = trace.ReadAll(d)
		if !errors.Is(err, ErrCRC) {
			t.Fatalf("err = %v, want ErrCRC", err)
		}
	})
	t.Run("mid-frame truncation", func(t *testing.T) {
		d, err := NewDecoder(bytes.NewReader(valid[:len(valid)/2]))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := trace.ReadAll(d); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("error is sticky", func(t *testing.T) {
		d, err := NewDecoder(bytes.NewReader(valid[:len(valid)/2]))
		if err != nil {
			t.Fatal(err)
		}
		_, err1 := trace.ReadAll(d)
		_, err2 := d.Next()
		if err1 == nil || err2 == nil || !errors.Is(err2, ErrTruncated) {
			t.Fatalf("sticky error broken: %v / %v", err1, err2)
		}
	})
}

func TestEncoderRejectsNegativeIDs(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	e := trace.Acquire(0, trace.LockID(-1))
	if err := enc.WriteEvent(&e); err == nil {
		t.Fatal("negative lock id accepted")
	}
	// The failed record must not corrupt the stream.
	ok := trace.Fork(0, 1)
	if err := enc.WriteEvent(&ok); err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTrace(&buf)
	if err != nil || got.Len() != 1 {
		t.Fatalf("got %d events, err %v", got.Len(), err)
	}
}

func TestNewSourceAutoDetect(t *testing.T) {
	tr := sampleTrace()
	text := trace.Format(tr)

	src, err := NewSource(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := src.(*trace.TextSource); !ok {
		t.Fatalf("text input detected as %T", src)
	}
	got, err := trace.ReadAll(src)
	if err != nil || trace.Format(got) != text {
		t.Fatalf("text auto-parse mismatch (err %v)", err)
	}

	src, err = NewSource(bytes.NewReader(encodeBytes(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := src.(*Decoder); !ok {
		t.Fatalf("wire input detected as %T", src)
	}
	got, err = trace.ReadAll(src)
	if err != nil || trace.Format(got) != text {
		t.Fatalf("wire auto-parse mismatch (err %v)", err)
	}

	// Tiny inputs (shorter than the magic) fall back to text.
	got, err = ParseAny(strings.NewReader(""))
	if err != nil || got.Len() != 0 {
		t.Fatalf("empty input: %d events, err %v", got.Len(), err)
	}
}

func TestFlushMakesEventsVisible(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	e := trace.Fork(0, 1)
	if err := enc.WriteEvent(&e); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatal("event leaked before Flush")
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Next()
	if err != nil || got.Kind != trace.ForkEvent {
		t.Fatalf("flushed event not decodable: %v %v", got, err)
	}
	if _, err := d.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF after flushed prefix, got %v", err)
	}
}
