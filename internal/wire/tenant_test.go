package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/trace"
)

const testDialTimeout = 5 * time.Second

func newLocalListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	return ln
}

// helloStream builds a raw version-`ver` stream consisting of the header,
// one hello frame with the given payload, and an end-of-stream frame.
func helloStream(ver byte, payload []byte) []byte {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.WriteByte(ver)
	enc := NewEncoder(io.Discard)
	buf.Write(append([]byte(nil), enc.serializeFrame(frameHello, payload)...))
	buf.Write(append([]byte(nil), enc.serializeFrame(frameEnd, nil)...))
	return buf.Bytes()
}

// helloPayload renders `sidlen sid [tidlen tid]` as the encoder would.
func helloPayload(sid, tenant string) []byte {
	var tmp [binary.MaxVarintLen64]byte
	out := append([]byte(nil), tmp[:binary.PutUvarint(tmp[:], uint64(len(sid)))]...)
	out = append(out, sid...)
	if tenant != "" {
		out = append(out, tmp[:binary.PutUvarint(tmp[:], uint64(len(tenant)))]...)
		out = append(out, tenant...)
	}
	return out
}

func TestTenantHelloRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.SetSession("sess-1"); err != nil {
		t.Fatalf("SetSession: %v", err)
	}
	if err := enc.SetTenant("team-red"); err != nil {
		t.Fatalf("SetTenant: %v", err)
	}
	for i := range tr.Events {
		if err := enc.WriteEvent(&tr.Events[i]); err != nil {
			t.Fatalf("WriteEvent: %v", err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	sid, err := d.ReadHello()
	if err != nil {
		t.Fatalf("ReadHello: %v", err)
	}
	if sid != "sess-1" {
		t.Fatalf("session id = %q, want sess-1", sid)
	}
	if d.Tenant() != "team-red" {
		t.Fatalf("tenant = %q, want team-red", d.Tenant())
	}
	got, err := trace.ReadAll(d)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if trace.Format(tr) != trace.Format(got) {
		t.Fatal("tenant hello round trip changed the event stream")
	}
	if !d.Clean() {
		t.Fatal("stream not clean")
	}
}

// A tenant-only hello (empty session id) declares the tenant of a plain,
// non-resumable stream: ReadHello returns "" but Tenant() is set, and the
// events that follow decode normally.
func TestTenantOnlyHello(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.SetTenant("team-blue"); err != nil {
		t.Fatalf("SetTenant: %v", err)
	}
	for i := range tr.Events {
		if err := enc.WriteEvent(&tr.Events[i]); err != nil {
			t.Fatalf("WriteEvent: %v", err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	sid, err := d.ReadHello()
	if err != nil {
		t.Fatalf("ReadHello: %v", err)
	}
	if sid != "" {
		t.Fatalf("session id = %q, want empty (plain stream)", sid)
	}
	if d.Tenant() != "team-blue" {
		t.Fatalf("tenant = %q, want team-blue", d.Tenant())
	}
	got, err := trace.ReadAll(d)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if trace.Format(tr) != trace.Format(got) {
		t.Fatal("tenant-only hello changed the event stream")
	}
}

// Version 2 hello parsing must be byte-for-byte unchanged: trailing bytes
// after the session id (the version 3 tenant extension) are malformed in a
// version 2 stream, as is an empty session id.
func TestHelloVersionCompat(t *testing.T) {
	cases := []struct {
		name    string
		ver     byte
		payload []byte
		wantErr bool
		sid     string
		tenant  string
	}{
		{"v2 plain sid", 2, helloPayload("abc", ""), false, "abc", ""},
		{"v2 rejects tenant", 2, helloPayload("abc", "t1"), true, "", ""},
		{"v2 rejects empty sid", 2, helloPayload("", ""), true, "", ""},
		{"v3 plain sid", 3, helloPayload("abc", ""), false, "abc", ""},
		{"v3 sid+tenant", 3, helloPayload("abc", "t1"), false, "abc", "t1"},
		{"v3 tenant only", 3, helloPayload("", "t1"), false, "", "t1"},
		{"v3 rejects empty hello", 3, helloPayload("", ""), true, "", ""},
		{"v3 rejects trailing junk", 3, append(helloPayload("abc", "t1"), 0xFF), true, "", ""},
		{"v3 rejects zero-len tenant", 3, append(helloPayload("abc", ""), 0x00), true, "", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := NewDecoder(bytes.NewReader(helloStream(tc.ver, tc.payload)))
			if err != nil {
				t.Fatalf("NewDecoder: %v", err)
			}
			sid, err := d.ReadHello()
			if tc.wantErr {
				if err == nil {
					// The malformed hello may also surface on the next read.
					if _, err = d.Next(); err == nil || err == io.EOF {
						t.Fatalf("malformed hello accepted (sid %q tenant %q)", sid, d.Tenant())
					}
				}
				return
			}
			if err != nil {
				t.Fatalf("ReadHello: %v", err)
			}
			if sid != tc.sid || d.Tenant() != tc.tenant {
				t.Fatalf("got sid %q tenant %q, want %q/%q", sid, d.Tenant(), tc.sid, tc.tenant)
			}
		})
	}
}

func TestSetTenantValidation(t *testing.T) {
	enc := NewEncoder(io.Discard)
	if err := enc.SetTenant(""); err == nil {
		t.Fatal("empty tenant accepted")
	}
	long := string(make([]byte, MaxTenantID+1))
	if err := enc.SetTenant(long); err == nil {
		t.Fatal("over-long tenant accepted")
	}
	if err := enc.SetTenant("ok"); err != nil {
		t.Fatalf("SetTenant: %v", err)
	}
	if err := enc.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := enc.SetTenant("late"); err == nil {
		t.Fatal("SetTenant after stream start accepted")
	}
}

// A busy summary is surfaced as ErrBusy by Client.Close even when the
// daemon stopped reading before the stream finished (the salvage read).
func TestClientBusySalvage(t *testing.T) {
	ln := newLocalListener(t)
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Reject at admission: write the busy line, then drain and close
		// (the daemon-side shape of rejectBusy).
		conn.Write([]byte(`{"events":0,"busy":true,"error":"busy: session table full"}` + "\n"))
		buf := make([]byte, 4096)
		for {
			if _, err := conn.Read(buf); err != nil {
				break
			}
		}
		conn.Close()
	}()

	cl, err := Dial(ln.Addr().String(), testDialTimeout)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	tr := sampleTrace()
	for i := range tr.Events {
		if err := cl.WriteEvent(&tr.Events[i]); err != nil {
			t.Fatalf("WriteEvent: %v", err)
		}
	}
	sum, err := cl.Close(testDialTimeout)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("Close err = %v, want ErrBusy", err)
	}
	if !sum.Busy {
		t.Fatal("summary not marked busy")
	}
}

// A resumable client that receives a busy summary must not burn reconnect
// attempts: reconnect short-circuits with ErrBusy.
func TestResumableBusyStopsReconnect(t *testing.T) {
	ln := newLocalListener(t)
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conn.Write([]byte(`{"events":0,"busy":true,"session":"s1","error":"busy: tenant quota"}` + "\n"))
		// Leave the conn open long enough for the ack reader to deliver the
		// busy line, then cut it to trigger the client's reconnect path.
		buf := make([]byte, 4096)
		for {
			if _, err := conn.Read(buf); err != nil {
				break
			}
		}
		conn.Close()
	}()

	cl, err := DialSession(ln.Addr().String(), "s1", testDialTimeout)
	if err != nil {
		t.Fatalf("DialSession: %v", err)
	}
	cl.Retries = 2
	sum, err := cl.Close(testDialTimeout)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("Close err = %v (sum %+v), want ErrBusy", err, sum)
	}
	if !cl.Busy() {
		t.Fatal("client Busy() false after busy summary")
	}
}
