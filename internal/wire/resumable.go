package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// Resume-protocol defaults (overridable per client).
const (
	DefaultRetries    = 5
	DefaultBackoff    = 100 * time.Millisecond
	DefaultMaxBackoff = 5 * time.Second
)

// serverMsg is one JSON line from the daemon on the return path: either a
// chunk acknowledgment ({"ack":N}) or the final session summary (which
// always carries "events"). The two never share keys.
type serverMsg struct {
	Ack *uint64 `json:"ack"`

	Events        *int   `json:"events"`
	Races         int    `json:"races"`
	Clean         bool   `json:"clean"`
	Error         string `json:"error"`
	Busy          bool   `json:"busy"`
	Degraded      bool   `json:"degraded"`
	SkippedFrames int    `json:"skipped_frames"`
	SkippedBytes  int64  `json:"skipped_bytes"`
	ShardPanics   int    `json:"shard_panics"`
	Resumes       int    `json:"resumes"`
	SessionID     string `json:"session"`
	Seq           uint64 `json:"seq"`
}

func (m *serverMsg) summary() Summary {
	return Summary{
		Events:        *m.Events,
		Races:         m.Races,
		Clean:         m.Clean,
		Error:         m.Error,
		Busy:          m.Busy,
		Degraded:      m.Degraded,
		SkippedFrames: m.SkippedFrames,
		SkippedBytes:  m.SkippedBytes,
		ShardPanics:   m.ShardPanics,
		Resumes:       m.Resumes,
		SessionID:     m.SessionID,
		Seq:           m.Seq,
	}
}

// chunk is one serialized seq'd events frame held until the daemon acks it.
type chunk struct {
	seq  uint64
	data []byte
}

// ResumableClient streams events to an rd2d daemon under a client-chosen
// session id, surviving mid-stream connection loss: every chunk is kept in
// a resend buffer until the daemon acknowledges its sequence number, and on
// a connection failure the client redials with exponential backoff plus
// jitter, replays the stream header, hello frame, and all unacknowledged
// chunks verbatim, and carries on. The daemon deduplicates replayed chunks
// by sequence number, so no event is lost or double-counted regardless of
// where the connection died.
//
// Correctness does not depend on acks arriving: acks only trim the resend
// buffer. A daemon that never acks just costs the client memory.
//
// Not safe for concurrent use (like Client); the ack reader runs on its own
// goroutine internally.
type ResumableClient struct {
	addr        string
	sid         string
	dialTimeout time.Duration

	// Retries is the number of redial attempts per connection failure.
	Retries int
	// Backoff is the initial redial backoff; it doubles per attempt (with
	// jitter) up to MaxBackoff.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// RetryWindow, when positive, keeps redialing past Retries until this
	// much time has elapsed since the connection failure — covering a
	// daemon restart (crash + rehydrate) whose outage outlasts a fixed
	// attempt budget. Dial refusals during the window are absorbed by the
	// backoff loop rather than surfaced.
	RetryWindow time.Duration
	// OnResume, when set, is called after each successful re-attach with
	// the number of chunks replayed (a CLI progress hook).
	OnResume func(replayed int)

	conn    net.Conn
	enc     *Encoder
	msgs    chan serverMsg
	done    chan struct{} // closed when the current conn's ack reader exits
	resumes int
	busy    atomic.Bool // daemon sent a busy reject; reconnecting is pointless

	mu      sync.Mutex
	unacked []chunk
}

// DialSession connects to an rd2d daemon and opens a resumable session
// under sid (client-chosen; 1..MaxSessionID bytes, unique per client run).
func DialSession(addr, sid string, timeout time.Duration) (*ResumableClient, error) {
	c := &ResumableClient{
		addr:        addr,
		sid:         sid,
		dialTimeout: timeout,
		Retries:     DefaultRetries,
		Backoff:     DefaultBackoff,
		MaxBackoff:  DefaultMaxBackoff,
		msgs:        make(chan serverMsg, 16),
	}
	c.enc = NewEncoder(io.Discard)
	if err := c.enc.SetSession(sid); err != nil {
		return nil, err
	}
	c.enc.OnFrame = c.captureChunk
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	c.attach(conn)
	return c, nil
}

// captureChunk is the Encoder.OnFrame hook: copy the serialized chunk into
// the resend buffer before it touches the connection.
func (c *ResumableClient) captureChunk(seq uint64, frame []byte) error {
	cp := make([]byte, len(frame))
	copy(cp, frame)
	c.mu.Lock()
	c.unacked = append(c.unacked, chunk{seq: seq, data: cp})
	c.mu.Unlock()
	return nil
}

// attach points the encoder at a fresh connection and starts its ack
// reader. The caller replays unacked chunks afterwards (resume path).
func (c *ResumableClient) attach(conn net.Conn) {
	c.conn = conn
	c.enc.Reset(conn)
	done := make(chan struct{})
	c.done = done
	go func() {
		defer close(done)
		c.readAcks(conn)
	}()
}

// readAcks drains the daemon's return path for this connection: ack lines
// trim the resend buffer, and the final summary is forwarded to Close.
// Exits when the connection dies.
func (c *ResumableClient) readAcks(conn net.Conn) {
	br := bufio.NewReader(conn)
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			return
		}
		var m serverMsg
		if json.Unmarshal(line, &m) != nil {
			continue
		}
		if m.Ack != nil {
			c.ackUpTo(*m.Ack)
			continue
		}
		if m.Events != nil {
			if m.Busy {
				// An admission reject: remember it so the reconnect loop
				// stops burning retries against a saturated daemon.
				c.busy.Store(true)
			}
			select {
			case c.msgs <- m:
			default:
			}
		}
	}
}

// ackUpTo drops every buffered chunk with sequence number <= seq.
func (c *ResumableClient) ackUpTo(seq uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	i := 0
	for i < len(c.unacked) && c.unacked[i].seq <= seq {
		i++
	}
	if i > 0 {
		c.unacked = append(c.unacked[:0], c.unacked[i:]...)
	}
}

// SetFrameSize overrides the chunk payload size threshold (tuning, and the
// chunk-boundary differential tests). Call before the first WriteEvent.
func (c *ResumableClient) SetFrameSize(n int) { c.enc.FrameSize = n }

// Unacked returns the number of chunks awaiting acknowledgment.
func (c *ResumableClient) Unacked() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.unacked)
}

// Resumes returns how many times the client re-attached after a failure.
func (c *ResumableClient) Resumes() int { return c.resumes }

// SetTenant declares the session's tenant id, carried in the hello frame
// (and every replayed hello). Must be called before the first WriteEvent.
func (c *ResumableClient) SetTenant(tenant string) error { return c.enc.SetTenant(tenant) }

// Busy reports whether the daemon rejected the session at admission.
func (c *ResumableClient) Busy() bool { return c.busy.Load() }

// retryable reports whether err is a connection-level failure a reconnect
// can fix (vs. an encoding error, which would recur on any connection).
func retryable(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, net.ErrClosed)
}

// reconnect redials with exponential backoff + jitter and replays the
// header, hello, and all unacknowledged chunks on the new connection.
func (c *ResumableClient) reconnect() error {
	c.conn.Close() // stops the old ack reader
	var lastErr error
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = DefaultBackoff
	}
	maxBackoff := c.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = DefaultMaxBackoff
	}
	var deadline time.Time
	if c.RetryWindow > 0 {
		deadline = time.Now().Add(c.RetryWindow)
	}
	for attempt := 0; attempt <= c.Retries || (!deadline.IsZero() && time.Now().Before(deadline)); attempt++ {
		if c.busy.Load() {
			// The daemon told us it will not take this session; surface the
			// reject instead of replaying into more refusals.
			return fmt.Errorf("wire: resume session %q: %w", c.sid, ErrBusy)
		}
		if attempt > 0 {
			// Full jitter over [backoff/2, backoff]: desynchronizes a herd
			// of clients reconnecting after one daemon blip.
			d := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
			time.Sleep(d)
			backoff *= 2
			if backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
		conn, err := net.DialTimeout("tcp", c.addr, c.dialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		if err := c.replay(conn); err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		c.resumes++
		return nil
	}
	if !deadline.IsZero() {
		return fmt.Errorf("wire: resume session %q after %v retry window: %w", c.sid, c.RetryWindow, lastErr)
	}
	return fmt.Errorf("wire: resume session %q after %d attempts: %w", c.sid, c.Retries+1, lastErr)
}

// replay attaches conn and resends header + hello + unacked chunks.
func (c *ResumableClient) replay(conn net.Conn) error {
	c.attach(conn)
	if err := c.enc.Start(); err != nil {
		return err
	}
	c.mu.Lock()
	pending := make([]chunk, len(c.unacked))
	copy(pending, c.unacked)
	c.mu.Unlock()
	for _, ch := range pending {
		if err := c.enc.WriteRaw(ch.data); err != nil {
			return err
		}
	}
	if c.OnResume != nil {
		c.OnResume(len(pending))
	}
	return nil
}

// WriteEvent streams one event, reconnecting and resuming on connection
// failure. When the write fails at the connection, the event is already
// committed to the resend buffer (or the encoder's partial-frame buffer),
// so it is never re-encoded — replay delivers it exactly once.
func (c *ResumableClient) WriteEvent(e *trace.Event) error {
	err := c.enc.WriteEvent(e)
	if err == nil {
		return nil
	}
	if !retryable(err) {
		return err
	}
	return c.reconnect()
}

// Flush pushes buffered events onto the socket, reconnecting on failure.
func (c *ResumableClient) Flush() error {
	err := c.enc.Flush()
	if err == nil {
		return nil
	}
	if !retryable(err) {
		return err
	}
	return c.reconnect()
}

// SendSource streams an entire event source.
func (c *ResumableClient) SendSource(src trace.Source) error {
	for {
		e, err := src.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := c.WriteEvent(&e); err != nil {
			return err
		}
	}
}

// Close terminates the stream (end-of-stream frame) and waits up to
// timeout for the daemon's summary, reconnecting — and re-terminating the
// replayed stream — if the connection dies in between. A completed session
// lingers in the daemon's session table, so a summary lost to a dying
// connection is re-delivered on the next attach.
func (c *ResumableClient) Close(timeout time.Duration) (Summary, error) {
	defer c.conn.Close()
	deadline := time.Now().Add(timeout)
	for {
		if err := c.enc.WriteEnd(); err != nil {
			if !retryable(err) {
				return Summary{}, err
			}
			if err := c.reconnectForClose(deadline, timeout); err != nil {
				return Summary{}, err
			}
			continue
		}
		var wait time.Duration
		if timeout > 0 {
			wait = time.Until(deadline)
			if wait <= 0 {
				return Summary{}, fmt.Errorf("wire: reading summary: timeout")
			}
		} else {
			wait = 365 * 24 * time.Hour
		}
		select {
		case m := <-c.msgs:
			return deliverSummary(m)
		case <-time.After(wait):
			return Summary{}, fmt.Errorf("wire: reading summary: timeout after %v", timeout)
		case <-c.done:
			// The ack reader exited: either the daemon sent the summary and
			// closed (it is already buffered in msgs — the reader forwards
			// before exiting), or the connection died mid-wait.
			select {
			case m := <-c.msgs:
				return deliverSummary(m)
			default:
			}
			if err := c.reconnectForClose(deadline, timeout); err != nil {
				return Summary{}, err
			}
		}
	}
}

// deliverSummary converts a received summary message into Close's return
// pair: a busy reject carries ErrBusy so callers can branch on it.
func deliverSummary(m serverMsg) (Summary, error) {
	sum := m.summary()
	if sum.Busy {
		return sum, ErrBusy
	}
	return sum, nil
}

// reconnectForClose is reconnect with the Close deadline enforced.
func (c *ResumableClient) reconnectForClose(deadline time.Time, timeout time.Duration) error {
	if timeout > 0 && time.Now().After(deadline) {
		return fmt.Errorf("wire: reading summary: timeout")
	}
	return c.reconnect()
}

// Abort closes the connection without finishing the stream. The daemon
// parks the session until its TTL expires, then reports it unclean.
func (c *ResumableClient) Abort() error { return c.conn.Close() }
